package sliceline_test

import (
	"math"
	"strings"
	"testing"

	"sliceline"
)

const toyCSV = `color,weight,label
red,1.0,0
red,1.2,0
red,0.9,1
blue,5.0,1
blue,5.5,1
blue,4.8,1
green,2.0,0
green,2.2,0
red,1.1,0
blue,5.2,1
green,2.1,0
green,1.9,1
red,1.0,0
blue,5.1,1
green,2.0,0
red,0.8,1
`

func toyDataset(t *testing.T) *sliceline.Dataset {
	t.Helper()
	ds, err := sliceline.DatasetFromCSV(strings.NewReader(toyCSV), "label", 4)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestFacadeEndToEnd(t *testing.T) {
	ds := toyDataset(t)
	if ds.NumRows() != 16 || ds.NumFeatures() != 2 {
		t.Fatalf("dataset shape %dx%d, want 16x2", ds.NumRows(), ds.NumFeatures())
	}
	errVec, desc, err := sliceline.TrainAndScore(ds, sliceline.TaskClassification)
	if err != nil {
		t.Fatal(err)
	}
	if desc == "" {
		t.Error("empty model description")
	}
	res, err := sliceline.Run(ds, errVec, sliceline.Config{K: 3, Sigma: 2, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.TopK {
		if s.Score <= 0 || s.Size < 2 {
			t.Errorf("invalid slice in result: %v", s)
		}
	}
}

func TestFacadeMatchesBruteForce(t *testing.T) {
	ds := toyDataset(t)
	e := make([]float64, ds.NumRows())
	for i := range e {
		e[i] = float64(i%3) * 0.5
	}
	cfg := sliceline.Config{K: 4, Sigma: 2, Alpha: 0.8}
	res, err := sliceline.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sliceline.BruteForce(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != len(want) {
		t.Fatalf("got %d slices, brute force %d", len(res.TopK), len(want))
	}
	for i := range want {
		if math.Abs(res.TopK[i].Score-want[i].Score) > 1e-9 {
			t.Errorf("slice %d: score %v vs brute force %v", i, res.TopK[i].Score, want[i].Score)
		}
	}
}

func TestTrainAndScoreRegression(t *testing.T) {
	ds := toyDataset(t)
	errVec, desc, err := sliceline.TrainAndScore(ds, sliceline.TaskRegression)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "linear regression") {
		t.Errorf("desc = %q", desc)
	}
	for i, e := range errVec {
		if e < 0 {
			t.Fatalf("negative error %v at row %d", e, i)
		}
	}
}

func TestTrainAndScoreNoLabels(t *testing.T) {
	ds := toyDataset(t)
	ds.Y = nil
	if _, _, err := sliceline.TrainAndScore(ds, sliceline.TaskClassification); err == nil {
		t.Fatal("expected error for missing labels")
	}
}

func TestTrainAndScoreUnknownTask(t *testing.T) {
	ds := toyDataset(t)
	if _, _, err := sliceline.TrainAndScore(ds, sliceline.Task(99)); err == nil {
		t.Fatal("expected error for unknown task")
	}
}

func TestErrorFunctionsExported(t *testing.T) {
	y := []float64{1, 2}
	yhat := []float64{1, 4}
	if got := sliceline.SquaredLoss(y, yhat); got[1] != 4 {
		t.Errorf("SquaredLoss = %v", got)
	}
	if got := sliceline.Inaccuracy(y, yhat); got[0] != 0 || got[1] != 1 {
		t.Errorf("Inaccuracy = %v", got)
	}
	if got := sliceline.AbsLoss(y, yhat); got[1] != 2 {
		t.Errorf("AbsLoss = %v", got)
	}
}

func TestSliceRowsRoundTrip(t *testing.T) {
	ds := toyDataset(t)
	e := make([]float64, ds.NumRows())
	for i := range e {
		if i%2 == 0 {
			e[i] = 1
		}
	}
	res, err := sliceline.Run(ds, e, sliceline.Config{K: 3, Sigma: 2, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.TopK {
		rows, err := sliceline.SliceRows(ds, s)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != s.Size {
			t.Errorf("SliceRows returned %d rows, slice size %d", len(rows), s.Size)
		}
		for _, r := range rows {
			for _, p := range s.Predicates {
				if ds.X0.At(r, p.Feature) != p.Value {
					t.Errorf("row %d does not satisfy %v", r, p)
				}
			}
		}
	}
}

func TestSliceRowsValidation(t *testing.T) {
	ds := toyDataset(t)
	bad := sliceline.Slice{Predicates: []sliceline.Predicate{{Feature: 99, Value: 1}}}
	if _, err := sliceline.SliceRows(ds, bad); err == nil {
		t.Error("expected error for out-of-range feature")
	}
	bad = sliceline.Slice{Predicates: []sliceline.Predicate{{Feature: 0, Value: 99}}}
	if _, err := sliceline.SliceRows(ds, bad); err == nil {
		t.Error("expected error for out-of-domain value")
	}
}
