module sliceline

go 1.22
