package sliceline_test

import (
	"fmt"
	"strings"

	"sliceline"
)

// ExampleRun demonstrates the full debugging loop on an inline CSV: encode,
// score with a hand-provided error vector, enumerate, and print the worst
// slice.
func ExampleRun() {
	const csvData = `city,plan,churned
north,basic,0
north,basic,0
north,premium,0
south,basic,1
south,basic,1
south,basic,1
south,premium,0
north,premium,0
south,basic,1
north,basic,0
`
	ds, err := sliceline.DatasetFromCSV(strings.NewReader(csvData), "churned", 10)
	if err != nil {
		panic(err)
	}
	// Suppose a model mispredicts exactly the south/basic customers: the
	// error vector marks those rows.
	e := make([]float64, ds.NumRows())
	for i := range e {
		if ds.Y[i] == 1 {
			e[i] = 1
		}
	}
	res, err := sliceline.Run(ds, e, sliceline.Config{K: 1, Sigma: 2, Alpha: 0.9})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.TopK[0])
	// Output: [city=south AND plan=basic] score=1.2000 size=4 avgErr=1.0000
}
