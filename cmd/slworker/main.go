// Command slworker runs a SliceLine evaluation worker: it serves row
// partitions shipped by a driver (dist.Cluster with dist.Dial) and evaluates
// broadcast slice candidates against them over gob-encoded RPC. Start one
// per node, then point the driver at the addresses:
//
//	slworker -addr :7071 &
//	slworker -addr :7072 &
//	sliceline -dataset adult -workers localhost:7071,localhost:7072
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"sliceline/internal/dist"
)

func main() {
	addr := flag.String("addr", ":7071", "listen address (host:port)")
	flag.Parse()

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slworker:", err)
		os.Exit(1)
	}
	fmt.Printf("slworker: serving on %s\n", lis.Addr())
	if err := dist.Serve(lis); err != nil {
		fmt.Fprintln(os.Stderr, "slworker:", err)
		os.Exit(1)
	}
}
