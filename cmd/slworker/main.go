// Command slworker runs a SliceLine evaluation worker: it serves row
// partitions shipped by a driver (dist.Cluster with dist.Dial) and evaluates
// broadcast slice candidates against them over gob-encoded RPC. Start one
// per node, then point the driver at the addresses:
//
//	slworker -addr :7071 &
//	slworker -addr :7072 &
//	sliceline -dataset adult -workers localhost:7071,localhost:7072
//
// With -join, the worker instead announces itself to a driver's membership
// endpoint (slserve -listen-workers) and keeps its lease renewed, so the
// fleet self-forms and the driver needs no -workers list:
//
//	slworker -addr :7071 -join http://driver:7070
//
// On SIGINT or SIGTERM the worker drains gracefully: it stops accepting
// connections, finishes the evaluations already in flight (so no driver is
// left holding a torn half-written reply), then exits 0. If the drain
// exceeds -drain-timeout, remaining connections are cut and the worker
// exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/dist"
	"sliceline/internal/membership"
	"sliceline/internal/obs"
	"sliceline/internal/version"
)

func main() {
	addr := flag.String("addr", ":7071", "listen address (host:port)")
	drainTimeout := flag.Duration("drain-timeout", dist.DefaultDrainTimeout, "max wait for in-flight calls on SIGTERM/SIGINT")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/vars and /debug/pprof on this address")
	bitset := flag.String("bitset", "auto", "slice-membership kernel: auto (by partition density), on (packed bitset), off (fused CSR)")
	join := flag.String("join", "", "driver membership URL (e.g. http://driver:7070): announce this worker and keep the lease renewed")
	id := flag.String("id", "", "stable member identity for -join (default: the advertised address)")
	advertise := flag.String("advertise", "", "address the driver should dial for -join (default: derived from -addr)")
	maxParts := flag.Int("max-parts", 0, "max partitions held before LRU eviction (0 = unbounded)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println("slworker", version.String())
		return
	}
	mode, err := core.ParseBitsetMode(*bitset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slworker:", err)
		os.Exit(2)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slworker:", err)
		os.Exit(1)
	}
	opts := dist.ServerOptions{BitsetEval: mode, MaxPartitions: *maxParts}
	if *metricsAddr != "" {
		opts.Metrics = obs.NewRegistry()
		msrv, maddr, err := obs.Serve(*metricsAddr, opts.Metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slworker:", err)
			os.Exit(1)
		}
		defer msrv.Close()
		fmt.Printf("slworker: serving metrics and pprof on http://%s/\n", maddr)
	}
	srv, err := dist.NewServerOpts(lis, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slworker:", err)
		os.Exit(1)
	}
	fmt.Printf("slworker: serving on %s\n", lis.Addr())

	joinCtx, stopJoin := context.WithCancel(context.Background())
	defer stopJoin()
	if *join != "" {
		self, err := selfMember(*id, *advertise, lis.Addr())
		if err != nil {
			fmt.Fprintln(os.Stderr, "slworker:", err)
			os.Exit(2)
		}
		ann := membership.NewAnnouncer(membership.AnnouncerConfig{
			Self:      self,
			Transport: membership.HTTPTransport(*join, nil),
			OnStateChange: func(connected bool) {
				if connected {
					fmt.Fprintf(os.Stderr, "slworker: joined fleet at %s as %s\n", *join, self.ID)
				} else {
					fmt.Fprintf(os.Stderr, "slworker: lost driver at %s, re-announcing with backoff\n", *join)
				}
			},
		})
		go ann.Run(joinCtx)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve() }()

	select {
	case err := <-serveErr:
		if err != nil {
			fmt.Fprintln(os.Stderr, "slworker:", err)
			os.Exit(1)
		}
		return
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "slworker: %v, draining (max %v)\n", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "slworker: drain timed out, cutting connections")
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "slworker: drained")
		stopJoin() // leave the lease to expire; the driver rebalances off us
	}
}

// selfMember assembles the identity this worker announces. The incarnation is
// the process start time, so a restart (new process, same ID) supersedes the
// old registration and the driver knows not to trust stale warm state.
func selfMember(id, advertise string, lis net.Addr) (membership.Member, error) {
	if advertise == "" {
		host, port, err := net.SplitHostPort(lis.String())
		if err != nil {
			return membership.Member{}, fmt.Errorf("deriving advertise address from %s: %w", lis, err)
		}
		if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
			// Listening on all interfaces: advertise the hostname, which is
			// what other nodes can actually dial.
			if host, err = os.Hostname(); err != nil {
				return membership.Member{}, fmt.Errorf("resolving hostname for advertise address: %w", err)
			}
		}
		advertise = net.JoinHostPort(host, port)
	}
	if id == "" {
		id = advertise
	}
	return membership.Member{ID: id, Addr: advertise, Incarnation: uint64(time.Now().UnixNano())}, nil
}
