package main

import (
	"context"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sliceline/internal/dist"
	"sliceline/internal/matrix"
)

// TestGracefulDrainOnSIGTERM builds the worker binary, runs it, and
// verifies the drain contract: on SIGTERM the process finishes in-flight
// work, stops accepting, and exits 0.
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level drain test skipped in short mode")
	}
	bin := filepath.Join(t.TempDir(), "slworker")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building slworker: %v\n%s", err, out)
	}

	// Pick a free port, release it, and hand it to the worker.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	cmd := exec.Command(bin, "-addr", addr, "-drain-timeout", "20s")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // cleanup on failure paths

	// Wait for the worker to come up.
	var w *dist.RemoteWorker
	for i := 0; i < 100; i++ {
		w, err = dist.Dial(addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("worker never came up on %s: %v", addr, err)
	}
	defer w.Close()

	// Ship a large partition so an Eval is plausibly in flight when the
	// signal lands; the contract holds either way.
	n := 100000
	data := make([]float64, 2*n)
	e := make([]float64, n)
	for i := 0; i < n; i++ {
		data[2*i+i%2] = 1
		e[i] = 1
	}
	x := matrix.CSRFromDense(matrix.NewDenseData(n, 2, data))
	ctx := context.Background()
	if err := w.Load(ctx, 0, x, e); err != nil {
		t.Fatal(err)
	}

	evalDone := make(chan error, 1)
	go func() {
		_, _, _, err := w.Eval(ctx, 0, [][]int{{0}, {1}, {0, 1}}, 2, 0)
		evalDone <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the call reach the worker
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// The in-flight Eval must complete, not be cut off. (If it finished
	// before the signal landed, this still holds trivially.)
	if err := <-evalDone; err != nil {
		t.Fatalf("in-flight Eval failed during drain: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("worker did not exit 0 after drain: %v", err)
	}
	// The drained worker must refuse new connections (it has exited).
	if _, err := dist.Dial(addr); err == nil {
		t.Fatal("worker still accepting connections after drain")
	}
}

// TestDrainRefusesNewConnections: connections attempted during the drain
// window are refused while the in-flight call still completes.
func TestDrainRefusesNewConnections(t *testing.T) {
	// This is covered at the library level (dist.Server.Shutdown tests);
	// here we only pin that slworker wires Shutdown, not Stop, into the
	// signal path — by source inspection of the flag it exposes.
	if !strings.Contains(mustReadSource(t), "Shutdown(") {
		t.Fatal("slworker no longer drains via Server.Shutdown")
	}
}

func mustReadSource(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
