// Command slbenchdiff compares a freshly measured benchmark artifact against
// the committed baseline and fails on regressions in the gated eval-kernel
// benchmarks. It is the CI bench-gate:
//
//	slbench -bench-out /tmp/current.json
//	slbenchdiff -baseline BENCH_2026-08-08.json -current /tmp/current.json
//
// Gated benchmarks fail the gate when ns/op grows beyond -max-regress
// (default 15%) or allocs/op grows at all; improvements pass. A gated
// benchmark missing from the current run — typically a rename without a
// baseline refresh — is an error, never a silent pass.
//
// Exit status: 0 pass, 1 regression, 2 usage or malformed input.
package main

import (
	"flag"
	"fmt"
	"os"

	"sliceline/internal/benchfmt"
)

func main() {
	var (
		baseline   = flag.String("baseline", "", "committed baseline artifact (BENCH_<date>.json)")
		current    = flag.String("current", "", "freshly measured artifact to check")
		maxRegress = flag.Float64("max-regress", benchfmt.DefaultMaxRegress, "allowed fractional ns/op growth on gated benchmarks")
	)
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "slbenchdiff: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	if *maxRegress <= 0 {
		fmt.Fprintf(os.Stderr, "slbenchdiff: -max-regress %v out of domain (want > 0)\n", *maxRegress)
		os.Exit(2)
	}
	base, err := benchfmt.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slbenchdiff:", err)
		os.Exit(2)
	}
	cur, err := benchfmt.ReadFile(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slbenchdiff:", err)
		os.Exit(2)
	}
	if base.Seed != cur.Seed {
		fmt.Fprintf(os.Stderr, "slbenchdiff: seed mismatch: baseline %d vs current %d (different workloads)\n",
			base.Seed, cur.Seed)
		os.Exit(2)
	}
	findings, failed, err := benchfmt.Diff(base, cur, *maxRegress)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slbenchdiff:", err)
		os.Exit(2)
	}
	if err := benchfmt.Report(os.Stdout, findings); err != nil {
		fmt.Fprintln(os.Stderr, "slbenchdiff:", err)
		os.Exit(2)
	}
	if failed {
		fmt.Printf("FAIL: gated benchmark regressed beyond %.0f%% ns/op or grew allocs/op\n", 100**maxRegress)
		os.Exit(1)
	}
	fmt.Println("PASS: no gated regressions")
}
