package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestVersionFlag(t *testing.T) {
	if code := run([]string{"-version"}); code != 0 {
		t.Fatalf("run(-version) = %d, want 0", code)
	}
}

func TestBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}

// testCSV mirrors the server package's deterministic planted-slice dataset.
func testCSV(rows int) string {
	var b strings.Builder
	b.WriteString("dev,os,region,err\n")
	for i := 0; i < rows; i++ {
		e := 0.1
		if i%4 == 0 && i%3 == 0 {
			e = 1.0
		}
		fmt.Fprintf(&b, "d%d,o%d,r%d,%g\n", i%4, i%3, i%2, e)
	}
	return b.String()
}

// TestGracefulDrainOnSIGTERM builds slserve, runs it, submits a job, and
// verifies the drain contract: on SIGTERM the process finishes the in-flight
// job and exits 0.
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level drain test skipped in short mode")
	}
	bin := filepath.Join(t.TempDir(), "slserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building slserve: %v\n%s", err, out)
	}

	// Pick a free port, release it, and hand it to the service.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	cmd := exec.Command(bin, "-addr", addr, "-drain-timeout", "30s")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill() //nolint:errcheck // cleanup on failure paths

	// The startup line confirms the listener is live.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() || !strings.Contains(sc.Text(), "listening on") {
		t.Fatalf("unexpected startup output %q (err %v)", sc.Text(), sc.Err())
	}
	go io.Copy(io.Discard, stdout) //nolint:errcheck // drain remaining output

	base := "http://" + addr
	reg, err := json.Marshal(map[string]string{"err": "err", "csv": testCSV(2000)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/datasets", "application/json", bytes.NewReader(reg))
	if err != nil {
		t.Fatalf("registering dataset: %v", err)
	}
	var ds struct {
		ID string `json:"id"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ds); err != nil {
		t.Fatal(err)
	}

	// Submit a job, then signal while it is plausibly still running; the
	// drain contract holds either way.
	spec := fmt.Sprintf(`{"dataset":%q,"config":{"k":8,"sigma":2}}`, ds.ID)
	resp, err = http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(spec)))
	if err != nil {
		t.Fatalf("submitting job: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("slserve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("slserve did not exit within 60s of SIGTERM")
	}

	// The listener must be gone.
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Error("healthz still answers after drain")
	}
}
