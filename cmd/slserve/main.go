// Command slserve runs the multi-tenant SliceLine HTTP service: clients
// register CSV datasets once (one-hot encoded at upload, content-addressed
// by the core data signature) and submit asynchronous slice-finding jobs
// against them. Jobs run on a bounded worker pool with admission control
// (full queue → HTTP 429), identical resubmissions are answered from the
// result cache, and per-level progress streams over SSE. Datasets registered
// with an err column are streaming: POST /v1/datasets/{id}/rows appends rows
// (advancing the dataset's generation), monitor-mode jobs stay resident
// (capped by -max-monitors) and re-emit the exact maintained top-K over SSE
// after every append, and windowed jobs score only the most recent rows. See
// README.md, "HTTP service", for a curl walkthrough, and API.md for the wire
// contract.
//
//	slserve -addr :8080
//	slserve -addr :8080 -journal /var/lib/slserve -workers localhost:7071,localhost:7072
//	slserve -addr :8080 -listen-workers :7070
//
// With -listen-workers, the service accepts dynamic fleet membership instead
// of a static -workers list: slworker processes started with -join announce
// themselves there, leases expire silent workers, and distributed jobs place
// partitions on whoever is alive — rebalancing mid-run as members join,
// crash, or flap, and degrading to driver-local evaluation if the fleet
// empties. GET /v1/cluster on the main address shows the member table.
//
// With -journal, datasets, job records, and per-level enumeration
// checkpoints persist across restarts: completed jobs are re-served and
// interrupted ones resume from their last finished lattice level.
//
// On SIGINT or SIGTERM the service drains gracefully: the listener stops
// accepting, queued and running jobs finish, then the process exits 0. If
// the drain exceeds -drain-timeout, remaining jobs are cancelled and the
// process exits 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"sliceline/internal/dist"
	"sliceline/internal/membership"
	"sliceline/internal/obs"
	"sliceline/internal/server"
	"sliceline/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("slserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address (host:port)")
		pool         = fs.Int("pool", server.DefaultPool, "concurrent job executors")
		queue        = fs.Int("queue", server.DefaultQueueDepth, "max queued jobs before submissions get HTTP 429")
		maxMonitors  = fs.Int("max-monitors", server.DefaultMaxMonitors, "max resident monitor jobs before submissions get HTTP 429")
		jobTimeout   = fs.Duration("job-timeout", 0, "default per-job execution deadline (0 = none; a spec's timeout_ms overrides)")
		journalDir   = fs.String("journal", "", "persist datasets, jobs and checkpoints in this directory for restart/resume")
		workers      = fs.String("workers", "", "comma-separated worker addresses for distributed evaluation")
		listenWork   = fs.String("listen-workers", "", "accept slworker -join announces on this address (dynamic fleet membership)")
		lease        = fs.Duration("lease", membership.DefaultLeaseInterval, "membership lease renewal interval granted to workers")
		leaseStrikes = fs.Int("lease-strikes", membership.DefaultLeaseStrikes, "missed lease scans before a silent worker is expelled (default confirmed by the committed slsim sweep)")
		callTimeout  = fs.Duration("call-timeout", dist.DefaultCallTimeout, "per-RPC deadline for distributed workers (0 = none)")
		hedgeAfter   = fs.Duration("hedge-after", 0, "speculatively re-execute a partition stuck longer than this fixed delay (0 = adaptive via -hedge-mult)")
		hedgeMult    = fs.Float64("hedge-mult", dist.DefaultHedgeMultiplier, "adaptive hedging: straggler threshold as a multiple of the level median (0 = off; default tuned by the committed slsim sweep)")
		heartbeat    = fs.Duration("heartbeat", dist.DefaultHeartbeatInterval, "probe worker liveness at this interval between levels (0 = off)")
		drainTimeout = fs.Duration("drain-timeout", dist.DefaultDrainTimeout, "max wait for queued and running jobs on SIGTERM/SIGINT")
		tracePath    = fs.String("trace", "", "write a JSON span dump (one tree per job) to this file on exit")
		showVersion  = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Println("slserve", version.String())
		return 0
	}

	cfg := server.Config{
		Pool:        *pool,
		QueueDepth:  *queue,
		MaxMonitors: *maxMonitors,
		JobTimeout:  *jobTimeout,
		JournalDir:  *journalDir,
		Metrics:     obs.NewRegistry(),
		Dist: dist.Options{
			CallTimeout:       *callTimeout,
			HedgeDelay:        *hedgeAfter,
			HedgeMultiplier:   *hedgeMult,
			HeartbeatInterval: *heartbeat,
		},
	}
	if *workers != "" {
		list, err := dist.ParseWorkerList(*workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slserve:", err)
			return 2
		}
		cfg.DistWorkers = list
	}
	if *listenWork != "" {
		reg := membership.NewRegistrar(membership.RegistrarConfig{
			LeaseInterval: *lease,
			Strikes:       *leaseStrikes,
			Metrics:       cfg.Metrics,
		})
		reg.Start()
		defer reg.Close()
		msrv, maddr, err := serveMembership(*listenWork, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slserve:", err)
			return 1
		}
		defer msrv.Close()
		cfg.Membership = reg
		fmt.Printf("slserve: accepting worker announces on http://%s%s\n", maddr, membership.AnnouncePath)
	}
	var tracer *obs.JSONTracer
	if *tracePath != "" {
		tracer = obs.NewJSONTracer()
		cfg.Tracer = tracer
		defer func() {
			if err := writeTrace(*tracePath, tracer); err != nil {
				fmt.Fprintln(os.Stderr, "slserve: writing trace:", err)
			}
		}()
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slserve:", err)
		return 1
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slserve:", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Printf("slserve: listening on %s\n", lis.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(lis) }()

	select {
	case err := <-serveErr:
		// Serve only returns on listener failure (Shutdown is signal-driven
		// below), so any return here is an error.
		fmt.Fprintln(os.Stderr, "slserve:", err)
		return 1
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "slserve: %v, draining (max %v)\n", sig, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop the HTTP front end first (in-flight requests, including open SSE
	// streams, are given the same deadline), then drain the job pool.
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "slserve: http drain:", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "slserve: drain timed out, cancelled remaining jobs")
		return 1
	}
	fmt.Fprintln(os.Stderr, "slserve: drained")
	return 0
}

// serveMembership mounts the announce endpoint on its own listener, so the
// worker-facing surface can sit on an internal interface while the client
// API faces out.
func serveMembership(addr string, reg *membership.Registrar) (*http.Server, string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: membership.Handler(reg)}
	go func() { _ = srv.Serve(lis) }()
	return srv, lis.Addr().String(), nil
}

func writeTrace(path string, tr *obs.JSONTracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
