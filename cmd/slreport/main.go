// Command slreport produces a Markdown model-debugging report: dataset and
// error summaries, the SliceLine top-K with per-slice drill-downs, the
// non-overlapping decision-tree partition, and enumeration statistics.
//
// Usage:
//
//	slreport -dataset adult -k 5 > report.md
//	slreport -csv data.csv -label y -task reg -tree=false
//	slreport -result out.json > report.md   # from `sliceline -json out.json`
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sliceline/internal/core"
	"sliceline/internal/datagen"
	"sliceline/internal/frame"
	"sliceline/internal/ml"
	"sliceline/internal/report"
	"sliceline/internal/version"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "synthetic dataset: salaries|adult|covtype|kdd98|uscensus|criteo")
		rows     = flag.Int("rows", 0, "synthetic row count (0 = dataset default)")
		csvPath  = flag.String("csv", "", "CSV file to load instead of a synthetic dataset")
		label    = flag.String("label", "", "label column name for -csv")
		task     = flag.String("task", "class", "model for -csv: class (mlogit) or reg (linear)")
		bins     = flag.Int("bins", 10, "equi-width bins for continuous features")
		k        = flag.Int("k", 5, "slices to report")
		alpha    = flag.Float64("alpha", 0.95, "error/size weight")
		maxLevel = flag.Int("maxlevel", 3, "maximum lattice level")
		tree     = flag.Bool("tree", true, "include the decision-tree partition section")
		seed     = flag.Int64("seed", 1, "synthetic dataset seed")
		result   = flag.String("result", "", "render from a stored `sliceline -json` result file instead of re-running")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println("slreport", version.String())
		return
	}

	if *result != "" {
		if err := fromResult(*result, *k, *maxLevel); err != nil {
			fmt.Fprintln(os.Stderr, "slreport:", err)
			os.Exit(1)
		}
		return
	}

	ds, errVec, err := load(*dataset, *csvPath, *label, *task, *bins, *rows, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slreport:", err)
		os.Exit(1)
	}
	opt := report.Options{K: *k, Alpha: *alpha, MaxLevel: *maxLevel, IncludeTree: *tree}
	if err := report.Generate(os.Stdout, ds, errVec, opt); err != nil {
		fmt.Fprintln(os.Stderr, "slreport:", err)
		os.Exit(1)
	}
}

// fromResult renders a report from the versioned JSON document written by
// `sliceline -json`. The schema version is enforced by core.Result's
// UnmarshalJSON, so a document from an incompatible build fails loudly here
// rather than rendering garbage.
func fromResult(path string, k, maxLevel int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var res core.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	opt := report.Options{K: k, MaxLevel: maxLevel}
	return report.GenerateFromResult(os.Stdout, name, &res, opt)
}

func load(dataset, csvPath, label, task string, bins, rows int, seed int64) (*frame.Dataset, []float64, error) {
	if csvPath != "" {
		if label == "" {
			return nil, nil, fmt.Errorf("-label is required with -csv")
		}
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		fr, err := frame.ReadCSV(f)
		if err != nil {
			return nil, nil, err
		}
		ds, err := frame.FromFrame(fr, label, bins)
		if err != nil {
			return nil, nil, err
		}
		enc, err := frame.OneHot(ds)
		if err != nil {
			return nil, nil, err
		}
		if task == "reg" {
			m, err := ml.TrainLinReg(enc.X, ds.Y, ml.LinRegConfig{})
			if err != nil {
				return nil, nil, err
			}
			return ds, ml.SquaredLoss(ds.Y, m.Predict(enc.X)), nil
		}
		m, err := ml.TrainMlogit(enc.X, ds.Y, ml.MlogitConfig{})
		if err != nil {
			return nil, nil, err
		}
		return ds, ml.Inaccuracy(ds.Y, m.Predict(enc.X)), nil
	}
	var g *datagen.Generated
	switch strings.ToLower(dataset) {
	case "salaries":
		g = datagen.Salaries(seed)
	case "adult":
		g = datagen.Adult(seed)
	case "covtype":
		g = datagen.Covtype(rows, seed)
	case "kdd98":
		g = datagen.KDD98(rows, seed)
	case "uscensus":
		g = datagen.USCensus(rows, seed)
	case "criteo":
		g = datagen.Criteo(rows, seed)
	case "":
		return nil, nil, fmt.Errorf("either -dataset or -csv is required")
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	return g.DS, g.Err, nil
}
