package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

const testCSV = `color,size,y
red,1,0
blue,2,1
red,1,0
blue,2,1
green,3,0
red,1,1
blue,2,1
green,3,0
red,1,0
blue,2,1
`

func TestLoadCSVClassification(t *testing.T) {
	path := writeTemp(t, testCSV)
	ds, e, err := loadCSV(path, "y", "class", 5)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 10 || ds.NumFeatures() != 2 {
		t.Fatalf("shape %dx%d, want 10x2", ds.NumRows(), ds.NumFeatures())
	}
	if len(e) != 10 {
		t.Fatalf("error vector length %d", len(e))
	}
	for _, v := range e {
		if v != 0 && v != 1 {
			t.Fatalf("classification error %v not 0/1", v)
		}
	}
}

func TestLoadCSVRegression(t *testing.T) {
	path := writeTemp(t, testCSV)
	_, e, err := loadCSV(path, "y", "reg", 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e {
		if v < 0 {
			t.Fatalf("negative squared loss %v", v)
		}
	}
}

func TestLoadCSVErrors(t *testing.T) {
	path := writeTemp(t, testCSV)
	if _, _, err := loadCSV(path, "", "class", 5); err == nil {
		t.Error("expected error for missing label")
	}
	if _, _, err := loadCSV(path, "y", "bogus", 5); err == nil {
		t.Error("expected error for unknown task")
	}
	if _, _, err := loadCSV(filepath.Join(t.TempDir(), "missing.csv"), "y", "class", 5); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestLoadInputSynthetic(t *testing.T) {
	ds, e, err := loadInput("salaries", "", "", "", 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 397 || len(e) != 397 {
		t.Fatalf("salaries shape %d rows, %d errors", ds.NumRows(), len(e))
	}
}

func TestLoadInputUnknown(t *testing.T) {
	if _, _, err := loadInput("nope", "", "", "", 10, 0, 1); err == nil {
		t.Error("expected error for unknown dataset")
	}
	if _, _, err := loadInput("", "", "", "", 10, 0, 1); err == nil {
		t.Error("expected error when neither dataset nor csv given")
	}
}

func TestDialClusterFailure(t *testing.T) {
	if _, err := dialCluster([]string{"127.0.0.1:1"}); err == nil {
		t.Error("expected dial error")
	}
	if _, err := dialCluster([]string{" ", ""}); err == nil {
		t.Error("expected error for empty worker list")
	}
}
