package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sliceline/internal/core"
	"sliceline/internal/dist"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

const testCSV = `color,size,y
red,1,0
blue,2,1
red,1,0
blue,2,1
green,3,0
red,1,1
blue,2,1
green,3,0
red,1,0
blue,2,1
`

func TestLoadCSVClassification(t *testing.T) {
	path := writeTemp(t, testCSV)
	ds, e, err := loadCSV(path, "y", "class", 5)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 10 || ds.NumFeatures() != 2 {
		t.Fatalf("shape %dx%d, want 10x2", ds.NumRows(), ds.NumFeatures())
	}
	if len(e) != 10 {
		t.Fatalf("error vector length %d", len(e))
	}
	for _, v := range e {
		if v != 0 && v != 1 {
			t.Fatalf("classification error %v not 0/1", v)
		}
	}
}

func TestLoadCSVRegression(t *testing.T) {
	path := writeTemp(t, testCSV)
	_, e, err := loadCSV(path, "y", "reg", 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e {
		if v < 0 {
			t.Fatalf("negative squared loss %v", v)
		}
	}
}

func TestLoadCSVErrors(t *testing.T) {
	path := writeTemp(t, testCSV)
	if _, _, err := loadCSV(path, "", "class", 5); err == nil {
		t.Error("expected error for missing label")
	}
	if _, _, err := loadCSV(path, "y", "bogus", 5); err == nil {
		t.Error("expected error for unknown task")
	}
	if _, _, err := loadCSV(filepath.Join(t.TempDir(), "missing.csv"), "y", "class", 5); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestLoadInputSynthetic(t *testing.T) {
	ds, e, err := loadInput("salaries", "", "", "", 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumRows() != 397 || len(e) != 397 {
		t.Fatalf("salaries shape %d rows, %d errors", ds.NumRows(), len(e))
	}
}

func TestLoadInputUnknown(t *testing.T) {
	if _, _, err := loadInput("nope", "", "", "", 10, 0, 1); err == nil {
		t.Error("expected error for unknown dataset")
	}
	if _, _, err := loadInput("", "", "", "", 10, 0, 1); err == nil {
		t.Error("expected error when neither dataset nor csv given")
	}
}

func TestDialClusterFailure(t *testing.T) {
	if _, err := dialCluster([]string{"127.0.0.1:1"}, dist.Options{}); err == nil {
		t.Error("expected dial error")
	}
	if _, err := dialCluster([]string{" ", ""}, dist.Options{}); err == nil {
		t.Error("expected error for empty worker list")
	}
}

// runCLI invokes the command entry point and returns its exit code and
// stdout.
func runCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	var out, errOut strings.Builder
	code := run(args, &out, &errOut)
	if code != 0 {
		t.Logf("stderr: %s", errOut.String())
	}
	return code, out.String()
}

// topKLines extracts the "#i ..." result lines — the part of the output that
// must be byte-identical across resumed runs (headers carry elapsed times).
func topKLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "#") {
			lines = append(lines, l)
		}
	}
	return lines
}

// TestRunResumeByteIdentical: a checkpointed run capped at level 2, resumed
// without the cap, must print exactly the same top-K as one uninterrupted
// run.
func TestRunResumeByteIdentical(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "run.ck")
	code, full := runCLI(t, "-dataset", "salaries", "-k", "4")
	if code != 0 {
		t.Fatalf("reference run exited %d", code)
	}
	want := topKLines(full)
	if len(want) == 0 {
		t.Fatal("reference run found no slices; test exercises nothing")
	}

	if code, _ := runCLI(t, "-dataset", "salaries", "-k", "4", "-maxlevel", "2", "-checkpoint", ck); code != 0 {
		t.Fatalf("checkpointed run exited %d", code)
	}
	if _, err := os.Stat(ck); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	code, resumed := runCLI(t, "-dataset", "salaries", "-k", "4", "-checkpoint", ck, "-resume")
	if code != 0 {
		t.Fatalf("resumed run exited %d", code)
	}
	got := topKLines(resumed)
	if len(got) != len(want) {
		t.Fatalf("resumed run printed %d slices, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slice %d differs after resume:\n got %q\nwant %q", i+1, got[i], want[i])
		}
	}
}

// TestRunResumeRejectsMismatch: resuming against a checkpoint from different
// parameters must fail loudly.
func TestRunResumeRejectsMismatch(t *testing.T) {
	ck := filepath.Join(t.TempDir(), "run.ck")
	if code, _ := runCLI(t, "-dataset", "salaries", "-k", "4", "-checkpoint", ck); code != 0 {
		t.Fatalf("checkpointed run exited %d", code)
	}
	if code, _ := runCLI(t, "-dataset", "salaries", "-k", "4", "-alpha", "0.5", "-checkpoint", ck, "-resume"); code == 0 {
		t.Fatal("resume with different alpha should fail")
	}
}

// TestRunFlagValidation covers the new flag edge cases.
func TestRunFlagValidation(t *testing.T) {
	if code, _ := runCLI(t, "-resume"); code != 2 {
		t.Errorf("-resume without -checkpoint exited %d, want 2", code)
	}
	if code, _ := runCLI(t, "-bogus-flag"); code != 2 {
		t.Errorf("unknown flag exited %d, want 2", code)
	}
	if code, _ := runCLI(t); code != 1 {
		t.Errorf("no dataset exited %d, want 1", code)
	}
}

// TestRunTraceAndMetrics: -trace writes a span dump covering every lattice
// level, -metrics-addr serves Prometheus text with the core metric families,
// and -json emits the versioned result schema — the CLI observability surface
// end to end.
func TestRunTraceAndMetrics(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	var outBuf, errBuf strings.Builder
	code := run([]string{"-dataset", "salaries", "-k", "3",
		"-trace", tracePath, "-metrics-addr", "127.0.0.1:0", "-json"}, &outBuf, &errBuf)
	if code != 0 {
		t.Fatalf("run exited %d, stderr: %s", code, errBuf.String())
	}
	out := outBuf.String()

	var res core.Result
	jsonStart := strings.Index(out, "{")
	if jsonStart < 0 {
		t.Fatalf("no JSON object in output:\n%s", out)
	}
	if err := json.Unmarshal([]byte(out[jsonStart:]), &res); err != nil {
		t.Fatalf("result JSON does not round-trip: %v", err)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace dump not written: %v", err)
	}
	var doc struct {
		SchemaVersion int `json:"schema_version"`
		Spans         []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace dump is not a JSON span document: %v", err)
	}
	if doc.SchemaVersion != 1 {
		t.Errorf("trace schema_version = %d, want 1", doc.SchemaVersion)
	}
	names := make(map[string]int)
	for _, sp := range doc.Spans {
		names[sp.Name]++
	}
	if names["core.run"] != 1 {
		t.Errorf("got %d core.run spans, want 1 (names: %v)", names["core.run"], names)
	}
	if names["core.level"] != len(res.Levels) {
		t.Errorf("got %d core.level spans for %d levels", names["core.level"], len(res.Levels))
	}

	if !strings.Contains(errBuf.String(), "serving metrics and pprof on http://") {
		t.Errorf("metrics server address not announced:\n%s", errBuf.String())
	}
}
