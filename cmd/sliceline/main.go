// Command sliceline finds the top-K problematic data slices of an ML model.
// It either loads a CSV (training a model on it to derive the error vector)
// or generates one of the built-in synthetic datasets, then runs the
// SliceLine enumeration and prints the top-K slices.
//
// Usage:
//
//	sliceline -dataset adult -k 5 -alpha 0.95 -maxlevel 3
//	sliceline -csv data.csv -label y -task reg -k 4
//	sliceline -dataset uscensus -workers localhost:7071,localhost:7072
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sliceline/internal/core"
	"sliceline/internal/datagen"
	"sliceline/internal/dist"
	"sliceline/internal/frame"
	"sliceline/internal/ml"
)

func main() {
	var (
		dataset  = flag.String("dataset", "", "synthetic dataset: salaries|adult|covtype|kdd98|uscensus|criteo")
		rows     = flag.Int("rows", 0, "synthetic row count (0 = dataset default)")
		csvPath  = flag.String("csv", "", "CSV file to load instead of a synthetic dataset")
		label    = flag.String("label", "", "label column name for -csv")
		task     = flag.String("task", "class", "model for -csv: class (mlogit) or reg (linear)")
		bins     = flag.Int("bins", 10, "equi-width bins for continuous features")
		k        = flag.Int("k", 4, "top-K slices")
		alpha    = flag.Float64("alpha", 0.95, "error/size weight in (0,1]")
		sigma    = flag.Int("sigma", 0, "minimum support (0 = max(32, n/100))")
		maxLevel = flag.Int("maxlevel", 0, "maximum lattice level (0 = unbounded)")
		seed     = flag.Int64("seed", 1, "synthetic dataset seed")
		workers  = flag.String("workers", "", "comma-separated worker addresses for distributed evaluation")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON")
		progress = flag.Bool("progress", false, "print per-level progress to stderr")
	)
	flag.Parse()

	ds, errVec, err := loadInput(*dataset, *csvPath, *label, *task, *bins, *rows, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sliceline:", err)
		os.Exit(1)
	}

	cfg := core.Config{K: *k, Alpha: *alpha, Sigma: *sigma, MaxLevel: *maxLevel}
	if *progress {
		cfg.OnLevel = func(ls core.LevelStats) {
			fmt.Fprintf(os.Stderr, "level %d: %d candidates, %d valid, %d pruned (%v)\n",
				ls.Level, ls.Candidates, ls.Valid, ls.Pruned, ls.Elapsed.Round(1e6))
		}
	}
	if *workers != "" {
		cluster, err := dialCluster(strings.Split(*workers, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "sliceline:", err)
			os.Exit(1)
		}
		defer cluster.Close()
		cfg.Evaluator = cluster
	}

	res, err := core.Run(ds, errVec, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sliceline:", err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, "sliceline:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("dataset %s: n=%d m=%d l=%d avg error %.4f sigma=%d alpha=%.2f\n",
		ds.Name, ds.NumRows(), ds.NumFeatures(), ds.OneHotWidth(), res.AvgError, res.Sigma, res.Alpha)
	fmt.Printf("enumerated %d candidates over %d levels in %v\n\n",
		res.TotalCandidates(), len(res.Levels), res.Elapsed.Round(1e6))
	if len(res.TopK) == 0 {
		fmt.Println("no slices with positive score satisfy the support constraint")
		return
	}
	for i, s := range res.TopK {
		fmt.Printf("#%d %s\n", i+1, s)
	}
}

func loadInput(dataset, csvPath, label, task string, bins, rows int, seed int64) (*frame.Dataset, []float64, error) {
	if csvPath != "" {
		return loadCSV(csvPath, label, task, bins)
	}
	var g *datagen.Generated
	switch strings.ToLower(dataset) {
	case "salaries":
		g = datagen.Salaries(seed)
	case "adult":
		g = datagen.Adult(seed)
	case "covtype":
		g = datagen.Covtype(rows, seed)
	case "kdd98":
		g = datagen.KDD98(rows, seed)
	case "uscensus":
		g = datagen.USCensus(rows, seed)
	case "criteo":
		g = datagen.Criteo(rows, seed)
	case "":
		return nil, nil, fmt.Errorf("either -dataset or -csv is required")
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	return g.DS, g.Err, nil
}

func loadCSV(path, label, task string, bins int) (*frame.Dataset, []float64, error) {
	if label == "" {
		return nil, nil, fmt.Errorf("-label is required with -csv")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fr, err := frame.ReadCSV(f)
	if err != nil {
		return nil, nil, err
	}
	ds, err := frame.FromFrame(fr, label, bins)
	if err != nil {
		return nil, nil, err
	}
	enc, err := frame.OneHot(ds)
	if err != nil {
		return nil, nil, err
	}
	switch task {
	case "reg":
		model, err := ml.TrainLinReg(enc.X, ds.Y, ml.LinRegConfig{})
		if err != nil {
			return nil, nil, err
		}
		return ds, ml.SquaredLoss(ds.Y, model.Predict(enc.X)), nil
	case "class":
		model, err := ml.TrainMlogit(enc.X, ds.Y, ml.MlogitConfig{})
		if err != nil {
			return nil, nil, err
		}
		return ds, ml.Inaccuracy(ds.Y, model.Predict(enc.X)), nil
	default:
		return nil, nil, fmt.Errorf("unknown task %q (want class or reg)", task)
	}
}

func dialCluster(addrs []string) (*dist.Cluster, error) {
	workers := make([]dist.Worker, 0, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		w, err := dist.Dial(a)
		if err != nil {
			return nil, err
		}
		workers = append(workers, w)
	}
	return dist.NewCluster(workers, 0)
}
