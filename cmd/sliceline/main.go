// Command sliceline finds the top-K problematic data slices of an ML model.
// It either loads a CSV (training a model on it to derive the error vector)
// or generates one of the built-in synthetic datasets, then runs the
// SliceLine enumeration and prints the top-K slices.
//
// Usage:
//
//	sliceline -dataset adult -k 5 -alpha 0.95 -maxlevel 3
//	sliceline -csv data.csv -label y -task reg -k 4
//	sliceline -dataset uscensus -workers localhost:7071,localhost:7072
//	sliceline -dataset uscensus -budget 2s -progress   # anytime, prints gap
//
// Long enumerations can checkpoint after every lattice level and resume
// after a crash with byte-identical results:
//
//	sliceline -dataset uscensus -checkpoint run.ck        # killed mid-run
//	sliceline -dataset uscensus -checkpoint run.ck -resume
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sliceline/internal/core"
	"sliceline/internal/datagen"
	"sliceline/internal/dist"
	"sliceline/internal/frame"
	"sliceline/internal/ml"
	"sliceline/internal/obs"
	"sliceline/internal/version"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sliceline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dataset  = fs.String("dataset", "", "synthetic dataset: salaries|adult|covtype|kdd98|uscensus|criteo")
		rows     = fs.Int("rows", 0, "synthetic row count (0 = dataset default)")
		csvPath  = fs.String("csv", "", "CSV file to load instead of a synthetic dataset")
		label    = fs.String("label", "", "label column name for -csv")
		task     = fs.String("task", "class", "model for -csv: class (mlogit) or reg (linear)")
		bins     = fs.Int("bins", 10, "equi-width bins for continuous features")
		k        = fs.Int("k", 4, "top-K slices")
		alpha    = fs.Float64("alpha", 0.95, "error/size weight in (0,1]")
		sigma    = fs.Int("sigma", 0, "minimum support (0 = max(32, n/100))")
		maxLevel = fs.Int("maxlevel", 0, "maximum lattice level (0 = unbounded)")
		seed     = fs.Int64("seed", 1, "synthetic dataset seed")
		workers  = fs.String("workers", "", "comma-separated worker addresses for distributed evaluation")
		jsonOut  = fs.Bool("json", false, "emit the result as JSON")
		progress = fs.Bool("progress", false, "print per-level progress to stderr")
		budget   = fs.Duration("budget", 0, "anytime mode: stop enumerating after this wall-clock budget and report the certified optimality gap (0 = run to completion)")

		checkpoint  = fs.String("checkpoint", "", "persist enumeration state to this file after every level")
		resume      = fs.Bool("resume", false, "resume from -checkpoint (missing file starts fresh)")
		tracePath   = fs.String("trace", "", "write a JSON span dump of the run (levels, evaluations, RPCs) to this file")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/vars and /debug/pprof on this address while the run executes")
		callTimeout = fs.Duration("call-timeout", dist.DefaultCallTimeout, "per-RPC deadline for distributed workers (0 = none)")
		hedgeAfter  = fs.Duration("hedge-after", 0, "speculatively re-execute a partition stuck longer than this fixed delay (0 = adaptive via -hedge-mult)")
		hedgeMult   = fs.Float64("hedge-mult", dist.DefaultHedgeMultiplier, "adaptive hedging: straggler threshold as a multiple of the level median (0 = off; default tuned by the committed slsim sweep)")
		heartbeat   = fs.Duration("heartbeat", dist.DefaultHeartbeatInterval, "probe worker liveness at this interval between levels (0 = off)")
		showVersion = fs.Bool("version", false, "print version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *showVersion {
		fmt.Fprintln(stdout, "sliceline", version.String())
		return 0
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(stderr, "sliceline: -resume requires -checkpoint")
		return 2
	}

	ds, errVec, err := loadInput(*dataset, *csvPath, *label, *task, *bins, *rows, *seed)
	if err != nil {
		fmt.Fprintln(stderr, "sliceline:", err)
		return 1
	}

	if *budget < 0 {
		fmt.Fprintln(stderr, "sliceline: -budget must be non-negative")
		return 2
	}
	cfg := core.Config{
		K: *k, Alpha: *alpha, Sigma: *sigma, MaxLevel: *maxLevel,
		CheckpointPath: *checkpoint, Resume: *resume,
		Budget: *budget,
	}
	if *progress {
		cfg.OnLevel = func(ls core.LevelStats) {
			fmt.Fprintf(stderr, "level %d: %d candidates, %d valid, %d pruned (%v)\n",
				ls.Level, ls.Candidates, ls.Valid, ls.Pruned, ls.Elapsed.Round(1e6))
		}
		if *budget > 0 {
			cfg.OnSnapshot = func(s core.Snapshot) {
				best := "-"
				if len(s.TopK) > 0 {
					best = fmt.Sprintf("%.4f", s.TopK[0].Score)
				}
				fmt.Fprintf(stderr, "snapshot after level %d: best score %s, gap %.4f (%v elapsed)\n",
					s.Level, best, s.Gap, s.Elapsed.Round(1e6))
			}
		}
	}
	var tracer *obs.JSONTracer
	if *tracePath != "" {
		tracer = obs.NewJSONTracer()
		cfg.Tracer = tracer
		// Dump whatever was traced even when the run fails partway: a trace
		// of a failed run is exactly when one wants to look at it.
		defer func() {
			if err := writeTrace(*tracePath, tracer); err != nil {
				fmt.Fprintln(stderr, "sliceline:", err)
			}
		}()
	}
	if *metricsAddr != "" {
		cfg.Metrics = obs.NewRegistry()
		srv, addr, err := obs.Serve(*metricsAddr, cfg.Metrics)
		if err != nil {
			fmt.Fprintln(stderr, "sliceline:", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "sliceline: serving metrics and pprof on http://%s/\n", addr)
	}
	if *workers != "" {
		addrs, err := dist.ParseWorkerList(*workers)
		if err != nil {
			fmt.Fprintln(stderr, "sliceline:", err)
			return 2
		}
		cluster, err := dialCluster(addrs, dist.Options{
			CallTimeout:       *callTimeout,
			HedgeDelay:        *hedgeAfter,
			HedgeMultiplier:   *hedgeMult,
			HeartbeatInterval: *heartbeat,
			Tracer:            cfg.Tracer,
			Metrics:           cfg.Metrics,
		})
		if err != nil {
			fmt.Fprintln(stderr, "sliceline:", err)
			return 1
		}
		defer cluster.Close()
		cfg.Evaluator = cluster
	}

	res, err := core.Run(ds, errVec, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "sliceline:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(stderr, "sliceline:", err)
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "dataset %s: n=%d m=%d l=%d avg error %.4f sigma=%d alpha=%.2f\n",
		ds.Name, ds.NumRows(), ds.NumFeatures(), ds.OneHotWidth(), res.AvgError, res.Sigma, res.Alpha)
	fmt.Fprintf(stdout, "enumerated %d candidates over %d levels in %v\n",
		res.TotalCandidates(), len(res.Levels), res.Elapsed.Round(1e6))
	if res.Gap > 0 {
		fmt.Fprintf(stdout, "partial enumeration (budget or level cap); certified optimality gap %.4f\n", res.Gap)
	}
	fmt.Fprintln(stdout)
	if len(res.TopK) == 0 {
		fmt.Fprintln(stdout, "no slices with positive score satisfy the support constraint")
		return 0
	}
	for i, s := range res.TopK {
		fmt.Fprintf(stdout, "#%d %s\n", i+1, s)
	}
	return 0
}

func writeTrace(path string, tr *obs.JSONTracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadInput(dataset, csvPath, label, task string, bins, rows int, seed int64) (*frame.Dataset, []float64, error) {
	if csvPath != "" {
		return loadCSV(csvPath, label, task, bins)
	}
	var g *datagen.Generated
	switch strings.ToLower(dataset) {
	case "salaries":
		g = datagen.Salaries(seed)
	case "adult":
		g = datagen.Adult(seed)
	case "covtype":
		g = datagen.Covtype(rows, seed)
	case "kdd98":
		g = datagen.KDD98(rows, seed)
	case "uscensus":
		g = datagen.USCensus(rows, seed)
	case "criteo":
		g = datagen.Criteo(rows, seed)
	case "":
		return nil, nil, fmt.Errorf("either -dataset or -csv is required")
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	return g.DS, g.Err, nil
}

func loadCSV(path, label, task string, bins int) (*frame.Dataset, []float64, error) {
	if label == "" {
		return nil, nil, fmt.Errorf("-label is required with -csv")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fr, err := frame.ReadCSV(f)
	if err != nil {
		return nil, nil, err
	}
	ds, err := frame.FromFrame(fr, label, bins)
	if err != nil {
		return nil, nil, err
	}
	enc, err := frame.OneHot(ds)
	if err != nil {
		return nil, nil, err
	}
	switch task {
	case "reg":
		model, err := ml.TrainLinReg(enc.X, ds.Y, ml.LinRegConfig{})
		if err != nil {
			return nil, nil, err
		}
		return ds, ml.SquaredLoss(ds.Y, model.Predict(enc.X)), nil
	case "class":
		model, err := ml.TrainMlogit(enc.X, ds.Y, ml.MlogitConfig{})
		if err != nil {
			return nil, nil, err
		}
		return ds, ml.Inaccuracy(ds.Y, model.Predict(enc.X)), nil
	default:
		return nil, nil, fmt.Errorf("unknown task %q (want class or reg)", task)
	}
}

func dialCluster(addrs []string, opts dist.Options) (*dist.Cluster, error) {
	workers := make([]dist.Worker, 0, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		w, err := dist.Dial(a)
		if err != nil {
			return nil, err
		}
		workers = append(workers, w)
	}
	return dist.NewClusterOpts(workers, opts)
}
