// Command slbench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// Usage:
//
//	slbench -list
//	slbench -exp fig3a            # one experiment, quick scale
//	slbench -exp all -full        # everything at the DESIGN.md scales
//	slbench -exp table2 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sliceline/internal/bench"
)

func main() {
	var (
		exp  = flag.String("exp", "", "experiment id to run, or 'all'")
		full = flag.Bool("full", false, "run at full (DESIGN.md) scales instead of quick scales")
		seed = flag.Int64("seed", 1, "dataset generation seed")
		list = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %-50s %s\n", e.ID, e.Title, e.Paper)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
			os.Exit(2)
		}
		return
	}

	opt := bench.Options{Quick: !*full, Seed: *seed}
	if strings.EqualFold(*exp, "all") {
		if err := bench.RunAll(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "slbench:", err)
			os.Exit(1)
		}
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "slbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("=== %s — %s (%s) ===\n", e.ID, e.Title, e.Paper)
	if err := e.Run(os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "slbench:", err)
		os.Exit(1)
	}
}
