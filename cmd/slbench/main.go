// Command slbench regenerates the paper's tables and figures. Each
// experiment prints the same rows/series the paper reports; EXPERIMENTS.md
// records the paper-vs-measured comparison.
//
// Usage:
//
//	slbench -list
//	slbench -exp fig3a            # one experiment, quick scale
//	slbench -exp all -full        # everything at the DESIGN.md scales
//	slbench -exp table2 -seed 7
//	slbench -bench-out BENCH_2026-08-08.json   # measure the kernel suite
//
// -bench-out measures the eval-kernel benchmark suite (single-threaded,
// fixed seed) plus the end-to-end run benchmarks, and writes the versioned
// artifact that gets committed as the repo's perf baseline. CI re-measures
// and compares with cmd/slbenchdiff.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sliceline/internal/bench"
	"sliceline/internal/benchfmt"
	"sliceline/internal/obs"
	"sliceline/internal/version"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment id to run, or 'all'")
		full        = flag.Bool("full", false, "run at full (DESIGN.md) scales instead of quick scales")
		seed        = flag.Int64("seed", 1, "dataset generation seed")
		list        = flag.Bool("list", false, "list available experiments")
		spanOut     = flag.String("span-out", "", "write a JSON span dump (per-level timing breakdowns per experiment) to this file")
		benchOut    = flag.String("bench-out", "", "measure the eval-kernel benchmark suite and write the versioned JSON artifact to this file")
		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()

	if *showVersion {
		fmt.Println("slbench", version.String())
		return
	}

	if *benchOut != "" {
		if err := writeBenchArtifact(*benchOut, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "slbench:", err)
			os.Exit(1)
		}
		return
	}

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.Experiments() {
			fmt.Printf("  %-8s %-50s %s\n", e.ID, e.Title, e.Paper)
		}
		if *exp == "" && !*list {
			fmt.Println("\nrun with -exp <id> or -exp all")
			os.Exit(2)
		}
		return
	}

	opt := bench.Options{Quick: !*full, Seed: *seed}
	var tracer *obs.JSONTracer
	if *spanOut != "" {
		tracer = obs.NewJSONTracer()
		opt.Tracer = tracer
	}
	if strings.EqualFold(*exp, "all") {
		if err := bench.RunAll(os.Stdout, opt); err != nil {
			fmt.Fprintln(os.Stderr, "slbench:", err)
			os.Exit(1)
		}
		dumpSpans(*spanOut, tracer)
		return
	}
	e, ok := bench.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "slbench: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("=== %s — %s (%s) ===\n", e.ID, e.Title, e.Paper)
	if err := bench.RunOne(os.Stdout, e, opt); err != nil {
		fmt.Fprintln(os.Stderr, "slbench:", err)
		os.Exit(1)
	}
	dumpSpans(*spanOut, tracer)
}

// writeBenchArtifact measures the kernel and run suites and writes the
// committed benchmark artifact. Progress goes to stderr so stdout stays
// clean for scripting.
func writeBenchArtifact(path string, seed int64) error {
	fmt.Fprintf(os.Stderr, "slbench: measuring gated kernel suite (seed %d, single-threaded)...\n", seed)
	kernels, err := bench.KernelSuite(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "slbench: measuring end-to-end run suite...")
	runs, err := bench.RunSuite(seed)
	if err != nil {
		return err
	}
	f := benchfmt.File{
		SchemaVersion: benchfmt.SchemaVersion,
		Generated:     time.Now().UTC().Format(time.RFC3339),
		Machine:       bench.MachineInfo(),
		Seed:          seed,
		Benchmarks:    append(kernels, runs...),
	}
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := benchfmt.Write(out, f); err != nil {
		out.Close()
		return err
	}
	if err := out.Close(); err != nil {
		return err
	}
	for _, b := range f.Benchmarks {
		gate := ""
		if b.Gate {
			gate = "  [gated]"
		}
		fmt.Printf("%-32s %12.0f ns/op %8d allocs/op %12.0f rows/s%s\n",
			b.Name, b.NsPerOp, b.AllocsPerOp, b.RowsPerSec, gate)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(f.Benchmarks))
	return nil
}

// dumpSpans writes the collected span dump; a nil tracer writes nothing.
func dumpSpans(path string, tr *obs.JSONTracer) {
	if tr == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slbench:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := tr.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "slbench:", err)
		os.Exit(1)
	}
}
