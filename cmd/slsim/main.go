// Command slsim runs deterministic cluster-scheduling experiments: it loads
// a declarative scenario file (topology, latency/straggler/failure
// distributions, fault script, knob grid), simulates every grid point of the
// scheduling knobs against the real policy code the TCP runtime uses
// (internal/sim drives dist.HedgePolicy, dist.ProbeStep, dist.ReshipPlan,
// membership.LeaseStep in virtual time), and emits a versioned JSON report
// with per-point metrics and a winner table:
//
//	slsim -scenario scenarios/hedge_tuning.json -out report.json
//
// The report is a pure function of the scenario file: same scenario, same
// seed, byte-identical bytes. -check re-runs the sweep and compares against
// a committed report, which is how CI pins both determinism and the data
// behind the runtime's default knobs:
//
//	slsim -scenario scenarios/hedge_tuning.json -check reports/SIM_REPORT_hedge_2026-08-08.json
//
// Exit status: 0 ok, 1 check mismatch, 2 usage or malformed input.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"sliceline/internal/sim"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("slsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scenario = fs.String("scenario", "", "scenario JSON file (required)")
		out      = fs.String("out", "", "write the report to this file (default: stdout)")
		check    = fs.String("check", "", "re-run the sweep and require byte-identity with this committed report")
		quiet    = fs.Bool("quiet", false, "suppress the summary on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scenario == "" {
		fmt.Fprintln(stderr, "slsim: -scenario is required")
		fs.Usage()
		return 2
	}
	sc, err := sim.LoadScenario(*scenario)
	if err != nil {
		fmt.Fprintln(stderr, "slsim:", err)
		return 2
	}
	rep := sim.Sweep(sc)
	var buf bytes.Buffer
	if err := sim.EncodeReport(&buf, rep); err != nil {
		fmt.Fprintln(stderr, "slsim:", err)
		return 2
	}
	if !*quiet {
		summarize(stderr, rep)
	}
	if *check != "" {
		committed, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(stderr, "slsim:", err)
			return 2
		}
		if !bytes.Equal(committed, buf.Bytes()) {
			fmt.Fprintf(stderr, "slsim: report drifted from %s — the scenario, the policy code, or the simulator changed; re-run with -out to refresh it\n", *check)
			return 1
		}
		fmt.Fprintf(stderr, "slsim: %s is byte-identical to a fresh sweep\n", *check)
		return 0
	}
	if *out != "" {
		if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
			fmt.Fprintln(stderr, "slsim:", err)
			return 2
		}
		return 0
	}
	if _, err := stdout.Write(buf.Bytes()); err != nil {
		fmt.Fprintln(stderr, "slsim:", err)
		return 2
	}
	return 0
}

func summarize(w io.Writer, rep sim.Report) {
	fmt.Fprintf(w, "slsim: scenario %q seed %d: %d workers, %d partitions, %d grid points\n",
		rep.Scenario, rep.Seed, rep.Workers, rep.Partitions, len(rep.Runs))
	names := make([]string, 0, len(rep.Winners))
	for name := range rep.Winners {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "slsim:   best %-16s %s\n", name, knobString(rep.Winners[name]))
	}
	fmt.Fprintf(w, "slsim:   recommended      %s\n", knobString(rep.Recommended))
	for _, r := range rep.Runs {
		if r.Error != "" {
			fmt.Fprintf(w, "slsim:   WARNING: grid point %+v failed: %s\n", r.Knobs, r.Error)
		}
	}
}

func knobString(k sim.Knobs) string {
	s := fmt.Sprintf("hedge_after=%dms hedge_mult=%.2g heartbeat=%dms strikes=%d timeout=%dms",
		k.HedgeAfterMS, k.HedgeMult, k.HeartbeatMS, k.Strikes, k.CallTimeoutMS)
	if k.LeaseStrikes > 0 {
		s += fmt.Sprintf(" lease_strikes=%d", k.LeaseStrikes)
	}
	return s
}
