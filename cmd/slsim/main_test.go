package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

const testScenario = `{
  "schema_version": 1,
  "name": "cli-smoke",
  "seed": 7,
  "workers": 4,
  "partitions": 8,
  "rows": 4000,
  "bytes_per_row": 64,
  "bandwidth_mbps": 100,
  "levels": [20, 40],
  "topology": {"kind": "star", "local_ms": {"kind": "uniform", "min": 0.05, "max": 0.2}},
  "service": {"per_pair_ns": {"kind": "lognormal", "mu": 4, "sigma": 0.3}},
  "faults": {"crashes": [{"worker": 2, "at_ms": 5}]},
  "grid": {"hedge_mult": [0, 2.0], "heartbeat_ms": [50]}
}`

func writeScenario(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.json")
	if err := os.WriteFile(path, []byte(testScenario), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunByteIdenticalReports(t *testing.T) {
	sc := writeScenario(t)
	dir := t.TempDir()
	out1, out2 := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", sc, "-out", out1, "-quiet"}, &stdout, &stderr); code != 0 {
		t.Fatalf("first run exit %d: %s", code, stderr.String())
	}
	if code := run([]string{"-scenario", sc, "-out", out2, "-quiet"}, &stdout, &stderr); code != 0 {
		t.Fatalf("second run exit %d: %s", code, stderr.String())
	}
	a, _ := os.ReadFile(out1)
	b, _ := os.ReadFile(out2)
	if len(a) == 0 || !bytes.Equal(a, b) {
		t.Fatalf("reports differ across identical runs (%d vs %d bytes)", len(a), len(b))
	}
}

func TestRunCheck(t *testing.T) {
	sc := writeScenario(t)
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenario", sc, "-out", out, "-quiet"}, &stdout, &stderr); code != 0 {
		t.Fatalf("sweep exit %d: %s", code, stderr.String())
	}
	if code := run([]string{"-scenario", sc, "-check", out, "-quiet"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-check against fresh report exit %d: %s", code, stderr.String())
	}
	// Any drift — here a single flipped byte — must fail the check.
	raw, _ := os.ReadFile(out)
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(out, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-scenario", sc, "-check", out, "-quiet"}, &stdout, &stderr); code != 1 {
		t.Fatalf("-check against tampered report exit %d, want 1", code)
	}
}

func TestRunBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("missing -scenario exit %d, want 2", code)
	}
	if code := run([]string{"-scenario", filepath.Join(t.TempDir(), "missing.json")}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing file exit %d, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-scenario", bad}, &stdout, &stderr); code != 2 {
		t.Fatalf("malformed scenario exit %d, want 2", code)
	}
}
