package datagen

import "fmt"

// Default synthetic scales. The paper's originals are noted alongside;
// scale-sensitive experiments use the relative support σ = n/100, which the
// paper itself argues preserves enumeration characteristics under row
// scaling.
const (
	AdultRows    = 32561  // paper: 32,561 (exact)
	CovtypeRows  = 20000  // paper: 581,012
	KDD98Rows    = 3000   // paper: 95,412
	USCensusRows = 20000  // paper: 2,458,285
	SalariesRows = 397    // paper: 397 (exact)
	CriteoRows   = 100000 // paper: 192,215,183
)

// Salaries reproduces the shape of the Salaries dataset: 397 rows, 5
// features (rank, discipline, two binned year counts, sex), l = 27,
// regression task. It is the ablation-study dataset of Figure 3.
func Salaries(seed int64) *Generated {
	s := spec{
		name: "Salaries",
		n:    SalariesRows,
		feats: []feature{
			{name: "rank", dom: 3, group: 0, noise: 0.3},
			{name: "discipline", dom: 2, group: -1},
			{name: "yrs_since_phd", dom: 10, group: 0, noise: 0.2},
			{name: "yrs_service", dom: 10, group: 0, noise: 0.25},
			{name: "sex", dom: 2, group: -1},
		},
		plants: []plant{
			{preds: map[int]int{0: 3, 4: 1}, rate: 2.5},
			{preds: map[int]int{1: 2, 2: 9}, rate: 2.0},
		},
		baseErr: 0.8,
		nGroups: 1,
		task:    "reg",
	}
	return generate(s, seed)
}

// Adult reproduces the UCI Adult shape: 32,561 rows, 14 features whose
// domains sum to l = 162, 2-class task. Adult has a mix of large and small
// slices and exhibits good pruning with early termination (Figure 4a).
func Adult(seed int64) *Generated {
	doms := []struct {
		name string
		dom  int
		zipf float64
	}{
		{"age", 10, 0},
		{"workclass", 9, 1.8},
		{"fnlwgt", 10, 0},
		{"education", 16, 1.5},
		{"education_num", 10, 0},
		{"marital_status", 7, 1.6},
		{"occupation", 15, 1.3},
		{"relationship", 6, 1.4},
		{"race", 5, 2.2},
		{"sex", 2, 0},
		{"capital_gain", 10, 2.8},
		{"capital_loss", 10, 2.8},
		{"hours_per_week", 10, 1.2},
		{"native_country", 42, 2.5},
	}
	feats := make([]feature, len(doms))
	for j, d := range doms {
		feats[j] = feature{name: d.name, dom: d.dom, zipf: d.zipf, group: -1}
	}
	// Mild correlation between education and occupation-like columns.
	feats[3].group, feats[3].noise = 0, 0.5
	feats[6].group, feats[6].noise = 0, 0.5
	s := spec{
		name:  "Adult",
		n:     AdultRows,
		feats: feats,
		plants: []plant{
			{preds: map[int]int{9: 2, 3: 1}, rate: 0.55},       // sex=2 AND education=1
			{preds: map[int]int{5: 1, 7: 1}, rate: 0.45},       // marital=1 AND relationship=1
			{preds: map[int]int{0: 3, 12: 1, 9: 1}, rate: 0.6}, // age=3 AND hours=1 AND sex=1
		},
		baseErr: 0.12,
		nGroups: 1,
		task:    "2-class",
	}
	return generate(s, seed)
}

// Covtype reproduces the Covtype shape at reduced scale: 54 features with
// l = 188 (10 numeric features binned to 10 plus 44 binary features), 7-class
// task. The binary soil/wilderness indicators derive from two shared latent
// variables, giving the strong column-group correlations that make Covtype
// hard for exact enumeration (the paper caps ⌈L⌉ at 4).
func Covtype(n int, seed int64) *Generated {
	if n <= 0 {
		n = CovtypeRows
	}
	var feats []feature
	for j := 0; j < 10; j++ {
		feats = append(feats, feature{name: fmt.Sprintf("num%02d", j), dom: 10, group: -1})
	}
	// 4 wilderness-area indicators from latent group 0.
	for j := 0; j < 4; j++ {
		feats = append(feats, feature{name: fmt.Sprintf("wild%d", j), dom: 2, group: 0, noise: 0.25})
	}
	// 40 soil-type indicators from latent group 1.
	for j := 0; j < 40; j++ {
		feats = append(feats, feature{name: fmt.Sprintf("soil%02d", j), dom: 2, group: 1, noise: 0.3})
	}
	s := spec{
		name:  "Covtype",
		n:     n,
		feats: feats,
		plants: []plant{
			{preds: map[int]int{0: 7, 10: 2}, rate: 0.7},
			{preds: map[int]int{2: 1, 3: 1}, rate: 0.6},
		},
		baseErr: 0.08,
		nGroups: 2,
		task:    "7-class",
	}
	return generate(s, seed)
}

// KDD98 reproduces the KDD'98 shape at reduced scale: 469 features with
// domains summing to l ≈ 8,378 (the paper's "many features" dataset with
// thousands of qualifying basic slices), regression task.
func KDD98(n int, seed int64) *Generated {
	if n <= 0 {
		n = KDD98Rows
	}
	var feats []feature
	// 300 numeric features binned into 10 equi-width bins each (l += 3000).
	for j := 0; j < 300; j++ {
		feats = append(feats, feature{name: fmt.Sprintf("num%03d", j), dom: 10, zipf: 1.7, group: -1})
	}
	// 169 categorical features with heavy-tailed domains summing to 5378,
	// so l = 3000 + 5378 = 8378 exactly as in Table 1. Domains cycle
	// through {12, 22, 32, 42, 52} (sum 5340 over 169) with the remainder
	// spread over the first features.
	catDoms := make([]int, 169)
	total := 0
	for j := range catDoms {
		catDoms[j] = 11 + (j%5)*10
		total += catDoms[j]
	}
	for j := 0; total < 5378; j++ {
		catDoms[j%169]++
		total++
	}
	for j, dom := range catDoms {
		feats = append(feats, feature{name: fmt.Sprintf("cat%03d", j), dom: dom, zipf: 1.7, group: -1})
	}
	s := spec{
		name:  "KDD98",
		n:     n,
		feats: feats,
		plants: []plant{
			{preds: map[int]int{0: 2, 300: 1}, rate: 3.0},
			{preds: map[int]int{10: 2, 11: 2}, rate: 2.5},
		},
		baseErr: 0.5,
		nGroups: 1,
		task:    "reg",
	}
	return generate(s, seed)
}

// USCensus reproduces the US Census 1990 shape at reduced scale: 68 features
// with l = 378, 4-class task (the paper derives artificial labels by
// k-means). Several correlated column groups make conjunctions of many
// features retain large support (the paper caps ⌈L⌉ at 3).
func USCensus(n int, seed int64) *Generated {
	if n <= 0 {
		n = USCensusRows
	}
	var feats []feature
	// 68 features with domains summing to 378: 34 of domain 4, 22 of
	// domain 7, 12 of domain 7.33→ use 10 to land exactly:
	// 34*4 + 22*7 + 12*? = 136 + 154 = 290; 12 features of domain 7.33 —
	// choose 8 of domain 8 and 4 of domain 6: 64 + 24 = 88 → 378 total.
	mk := func(count, dom, group int, noise float64, prefix string) {
		for j := 0; j < count; j++ {
			feats = append(feats, feature{
				name: fmt.Sprintf("%s%02d", prefix, len(feats)), dom: dom,
				group: group, noise: noise, zipf: 1.7, skew: 3,
			})
			_ = j
		}
	}
	mk(34, 4, 0, 0.5, "a")
	mk(22, 7, 1, 0.5, "b")
	mk(8, 8, 2, 0.55, "c")
	mk(4, 6, 3, 0.55, "d")
	s := spec{
		name:  "USCensus",
		n:     n,
		feats: feats,
		plants: []plant{
			{preds: map[int]int{0: 2, 34: 3}, rate: 0.55},
			{preds: map[int]int{1: 1, 2: 1, 35: 2}, rate: 0.65},
		},
		baseErr: 0.06,
		nGroups: 4,
		task:    "4-class",
	}
	return generate(s, seed)
}

// Criteo reproduces the CriteoD21 shape at laptop scale: 39 features (13
// integer features binned to 10 bins, 26 categorical features with very
// large heavy-tailed domains), yielding an ultra-sparse one-hot encoding
// with around one million columns of which only a few hundred satisfy the
// minimum support constraint — the Table 2 setting.
func Criteo(n int, seed int64) *Generated {
	if n <= 0 {
		n = CriteoRows
	}
	var feats []feature
	for j := 0; j < 13; j++ {
		feats = append(feats, feature{name: fmt.Sprintf("int%02d", j), dom: 10, group: j % 4, noise: 0.3})
	}
	for j := 0; j < 26; j++ {
		dom := 10000 + (j%6)*12000 // 10k..70k, sum ≈ 0.9M
		f := feature{name: fmt.Sprintf("cat%02d", j), dom: dom, zipf: 1.25, group: -1}
		if j < 13 {
			// Correlated categorical groups with skewed latents: frequent
			// codes co-occur, so conjunctions keep large support and the
			// number of valid slices grows with the lattice level (the
			// Table 2 behaviour that hinders early termination).
			f.group = j % 4
			f.noise = 0.25
			f.skew = 25
		}
		feats = append(feats, f)
	}
	s := spec{
		name:  "CriteoD21",
		n:     n,
		feats: feats,
		plants: []plant{
			{preds: map[int]int{0: 3, 13: 1}, rate: 0.5},
			{preds: map[int]int{1: 1, 14: 1}, rate: 0.45},
		},
		baseErr: 0.1,
		nGroups: 4,
		task:    "2-class",
	}
	return generate(s, seed)
}
