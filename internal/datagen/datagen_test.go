package datagen

import (
	"testing"

	"sliceline/internal/frame"
)

func TestGeneratedShapesMatchTable1(t *testing.T) {
	cases := []struct {
		name    string
		gen     func() *Generated
		n, m, l int
	}{
		{"Salaries", func() *Generated { return Salaries(1) }, 397, 5, 27},
		{"Adult", func() *Generated { return Adult(1) }, 32561, 14, 162},
		{"Covtype", func() *Generated { return Covtype(5000, 1) }, 5000, 54, 188},
		{"USCensus", func() *Generated { return USCensus(5000, 1) }, 5000, 68, 378},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := c.gen()
			if got := g.DS.NumRows(); got != c.n {
				t.Errorf("rows = %d, want %d", got, c.n)
			}
			if got := g.DS.NumFeatures(); got != c.m {
				t.Errorf("features = %d, want %d", got, c.m)
			}
			if got := g.DS.OneHotWidth(); got != c.l {
				t.Errorf("one-hot width = %d, want %d", got, c.l)
			}
			if err := g.DS.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
			if len(g.Err) != c.n || len(g.DS.Y) != c.n {
				t.Errorf("err/label lengths %d/%d, want %d", len(g.Err), len(g.DS.Y), c.n)
			}
			for i, e := range g.Err {
				if e < 0 {
					t.Fatalf("negative error %v at row %d", e, i)
				}
			}
		})
	}
}

func TestKDD98Shape(t *testing.T) {
	g := KDD98(2000, 1)
	if got := g.DS.NumFeatures(); got != 469 {
		t.Errorf("features = %d, want 469", got)
	}
	if l := g.DS.OneHotWidth(); l != 8378 {
		t.Errorf("one-hot width = %d, want 8378", l)
	}
	if err := g.DS.Validate(); err != nil {
		t.Error(err)
	}
}

func TestCriteoShape(t *testing.T) {
	g := Criteo(3000, 1)
	if got := g.DS.NumFeatures(); got != 39 {
		t.Errorf("features = %d, want 39", got)
	}
	l := g.DS.OneHotWidth()
	if l < 500000 {
		t.Errorf("one-hot width = %d, want ultra-wide (>= 500k)", l)
	}
	if g.Task != "2-class" {
		t.Errorf("task = %q", g.Task)
	}
}

func TestDeterminismForSeed(t *testing.T) {
	a := Salaries(7)
	b := Salaries(7)
	for i := range a.DS.X0.Data {
		if a.DS.X0.Data[i] != b.DS.X0.Data[i] {
			t.Fatal("same seed produced different features")
		}
	}
	for i := range a.Err {
		if a.Err[i] != b.Err[i] {
			t.Fatal("same seed produced different errors")
		}
	}
	c := Salaries(8)
	same := true
	for i := range a.DS.X0.Data {
		if a.DS.X0.Data[i] != c.DS.X0.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical features")
	}
}

func TestPlantedSliceHasElevatedError(t *testing.T) {
	g := Adult(3)
	// Planted: sex=2 AND education=1 with rate 0.55 vs base 0.12.
	var in, out, inN, outN float64
	for i := 0; i < g.DS.NumRows(); i++ {
		row := g.DS.X0.Row(i)
		if row[9] == 2 && row[3] == 1 {
			in += g.Err[i]
			inN++
		} else {
			out += g.Err[i]
			outN++
		}
	}
	if inN < 30 {
		t.Fatalf("planted slice support %v too small to test", inN)
	}
	if in/inN < 2*(out/outN) {
		t.Fatalf("planted slice error rate %.3f not well above background %.3f", in/inN, out/outN)
	}
}

func TestCorrelatedGroupsCovtype(t *testing.T) {
	g := Covtype(20000, 5)
	// Soil indicators come from one latent: soil00 and soil01 must agree far
	// more often than independence (both are thresholded from one uniform).
	agree := 0
	for i := 0; i < g.DS.NumRows(); i++ {
		row := g.DS.X0.Row(i)
		if row[14] == row[15] {
			agree++
		}
	}
	// With follow-probability 0.7 per feature, expected agreement is about
	// 0.49 + 0.42*0.5 + 0.09*0.5 ≈ 0.745, well above the 0.5 of independent
	// balanced binaries.
	frac := float64(agree) / float64(g.DS.NumRows())
	if frac < 0.65 {
		t.Fatalf("correlated binary features agree only %.2f of rows", frac)
	}
}

func TestReplicateColsCreatesCopies(t *testing.T) {
	g := Salaries(2)
	r := g.ReplicateCols(2)
	if r.DS.NumFeatures() != 10 {
		t.Fatalf("features = %d, want 10", r.DS.NumFeatures())
	}
	if err := r.DS.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.DS.NumRows(); i++ {
		row := r.DS.X0.Row(i)
		for j := 0; j < 5; j++ {
			if row[j] != row[j+5] {
				t.Fatalf("row %d: copy column %d differs", i, j)
			}
		}
	}
	if len(r.Err) != r.DS.NumRows() {
		t.Fatalf("err length %d vs rows %d", len(r.Err), r.DS.NumRows())
	}
}

func TestReplicateRowsGenerated(t *testing.T) {
	g := Salaries(2)
	r := g.ReplicateRows(3)
	if r.DS.NumRows() != 3*397 || len(r.Err) != 3*397 {
		t.Fatalf("rows=%d err=%d, want 1191", r.DS.NumRows(), len(r.Err))
	}
	for i := 0; i < 397; i++ {
		if r.Err[i] != g.Err[i] || r.Err[397+i] != g.Err[i] {
			t.Fatal("replicated errors differ from original")
		}
	}
}

func TestLabelsUsableForTraining(t *testing.T) {
	g := USCensus(3000, 4)
	distinct := map[float64]bool{}
	for _, y := range g.DS.Y {
		distinct[y] = true
	}
	if len(distinct) < 2 || len(distinct) > 4 {
		t.Fatalf("distinct labels = %d, want 2..4 for 4-class task", len(distinct))
	}
}

func TestOneHotOnGenerated(t *testing.T) {
	g := Salaries(6)
	enc, err := frame.OneHot(g.DS)
	if err != nil {
		t.Fatal(err)
	}
	if enc.X.Rows() != 397 || enc.X.Cols() != 27 {
		t.Fatalf("encoding shape %dx%d", enc.X.Rows(), enc.X.Cols())
	}
}
