// Package datagen generates deterministic synthetic datasets whose shape
// matches the paper's evaluation datasets (Table 1): row/feature counts,
// per-feature domains (and thus the one-hot width l), heavy-tailed category
// frequencies, correlated column groups, and planted problematic slices
// where a model's errors concentrate. The real UCI/Criteo files are not
// available offline; DESIGN.md documents why these stand-ins preserve the
// enumeration characteristics the experiments depend on.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"sliceline/internal/frame"
)

// Generated bundles a synthetic dataset with a label vector Y (for training
// real models via package ml) and a synthetic model-error vector Err (for
// enumeration benchmarks that, like the paper's measurements, start from a
// materialized error vector).
type Generated struct {
	DS   *frame.Dataset
	Err  []float64
	Task string // "2-class", "4-class", "7-class", "reg"
}

// feature describes one synthetic feature.
type feature struct {
	name  string
	dom   int     // domain size (distinct 1-based codes)
	zipf  float64 // > 1: Zipf-distributed codes (heavy tail); else uniform
	group int     // >= 0: derives from the latent variable of this group
	noise float64 // probability of ignoring the group latent
	skew  float64 // > 0: group latents map through u^skew, skewing codes low
}

// plant marks a conjunction of predicates whose rows get elevated errors —
// the problematic slices SliceLine should find.
type plant struct {
	preds map[int]int // feature index -> value code
	rate  float64     // error rate (classification) / noise scale (regression)
}

// spec is the full recipe for one synthetic dataset.
type spec struct {
	name    string
	n       int
	feats   []feature
	plants  []plant
	baseErr float64
	nGroups int
	task    string
}

// generate materializes a spec. All randomness is derived from the seed, so
// equal calls produce identical data.
func generate(s spec, seed int64) *Generated {
	rng := rand.New(rand.NewSource(seed))
	m := len(s.feats)
	ds := &frame.Dataset{
		Name:     s.name,
		X0:       frame.NewIntMatrix(s.n, m),
		Features: make([]frame.Feature, m),
	}
	for j, f := range s.feats {
		ds.Features[j] = frame.Feature{Name: f.name, Domain: f.dom}
	}
	zipfs := make([]*rand.Zipf, m)
	for j, f := range s.feats {
		if f.zipf > 1 && f.dom > 1 {
			zipfs[j] = rand.NewZipf(rng, f.zipf, 1, uint64(f.dom-1))
		}
	}
	latents := make([]float64, s.nGroups)
	for i := 0; i < s.n; i++ {
		for g := range latents {
			latents[g] = rng.Float64()
		}
		row := ds.X0.Row(i)
		for j, f := range s.feats {
			switch {
			case f.group >= 0 && rng.Float64() >= f.noise:
				// Correlated: the group latent deterministically selects the
				// code, so features of one group move together. A positive
				// skew concentrates mass on low codes, modelling the skewed
				// value frequencies of real census-style data.
				u := latents[f.group]
				if f.skew > 0 {
					u = math.Pow(u, f.skew)
				}
				row[j] = 1 + int(u*float64(f.dom))
				if row[j] > f.dom {
					row[j] = f.dom
				}
			case zipfs[j] != nil:
				row[j] = 1 + int(zipfs[j].Uint64())
			default:
				row[j] = 1 + rng.Intn(f.dom)
			}
		}
	}

	g := &Generated{DS: ds, Task: s.task, Err: make([]float64, s.n)}
	regression := s.task == "reg"
	for i := 0; i < s.n; i++ {
		rate := s.baseErr
		row := ds.X0.Row(i)
		for _, p := range s.plants {
			match := true
			for f, v := range p.preds {
				if row[f] != v {
					match = false
					break
				}
			}
			if match && p.rate > rate {
				rate = p.rate
			}
		}
		if regression {
			d := rng.NormFloat64() * rate
			g.Err[i] = d * d
		} else if rng.Float64() < rate {
			g.Err[i] = 1
		}
	}
	g.attachLabels(s, seed)
	return g
}

// attachLabels derives a label vector with a hidden rule that flips inside
// the planted slices, so that a real (linear) model trained on Y mislabels
// exactly those subgroups — the mechanism behind problematic slices.
func (g *Generated) attachLabels(s spec, seed int64) {
	rng := rand.New(rand.NewSource(seed + 1))
	n := g.DS.NumRows()
	y := make([]float64, n)
	classes := 2
	switch s.task {
	case "4-class":
		classes = 4
	case "7-class":
		classes = 7
	}
	for i := 0; i < n; i++ {
		row := g.DS.X0.Row(i)
		if s.task == "reg" {
			// Additive signal over the first features plus planted shifts.
			v := 0.0
			for j := 0; j < len(row) && j < 4; j++ {
				v += float64(row[j])
			}
			for _, p := range s.plants {
				match := true
				for f, pv := range p.preds {
					if row[f] != pv {
						match = false
						break
					}
				}
				if match {
					v += 10 * p.rate
				}
			}
			y[i] = v + rng.NormFloat64()*0.5
			continue
		}
		// Classification: label follows feature 0 modulo classes, flipped
		// inside planted slices.
		c := row[0] % classes
		for _, p := range s.plants {
			match := true
			for f, pv := range p.preds {
				if row[f] != pv {
					match = false
					break
				}
			}
			if match {
				c = (c + 1) % classes
			}
		}
		y[i] = float64(c)
	}
	g.DS.Y = y
}

// ReplicateRows scales a generated dataset row-wise (Figure 7a's
// construction), replicating the error and label vectors alongside.
func (g *Generated) ReplicateRows(factor int) *Generated {
	out := &Generated{
		DS:   g.DS.ReplicateRows(factor),
		Task: g.Task,
		Err:  make([]float64, 0, len(g.Err)*factor),
	}
	for r := 0; r < factor; r++ {
		out.Err = append(out.Err, g.Err...)
	}
	return out
}

// ReplicateCols duplicates every feature column factor times (the "2x2"
// Salaries construction of Figure 3, which adds perfectly correlated
// columns). The error vector is unchanged.
func (g *Generated) ReplicateCols(factor int) *Generated {
	m := g.DS.NumFeatures()
	n := g.DS.NumRows()
	out := &Generated{
		Task: g.Task,
		Err:  g.Err,
		DS: &frame.Dataset{
			Name:     fmt.Sprintf("%s_cols_x%d", g.DS.Name, factor),
			X0:       frame.NewIntMatrix(n, m*factor),
			Features: make([]frame.Feature, m*factor),
			Y:        g.DS.Y,
		},
	}
	for r := 0; r < factor; r++ {
		for j, f := range g.DS.Features {
			name := f.Name
			if r > 0 {
				name = fmt.Sprintf("%s_copy%d", f.Name, r)
			}
			out.DS.Features[r*m+j] = frame.Feature{Name: name, Domain: f.Domain, Labels: f.Labels}
		}
	}
	for i := 0; i < n; i++ {
		src := g.DS.X0.Row(i)
		dst := out.DS.X0.Row(i)
		for r := 0; r < factor; r++ {
			copy(dst[r*m:(r+1)*m], src)
		}
	}
	return out
}
