package datagen

import (
	"flag"
	"sync"
)

// The -seed flag pins randomized, seed-driven tests (most importantly the
// differential harness of internal/difftest) to a single reported seed, so a
// failure's one-line reproducer
//
//	go test ./internal/difftest -run TestDiff... -seed=N
//
// replays exactly the failing case. The flag is registered lazily via
// RegisterSeedFlag instead of in an init function: several cmd/ binaries
// that import this package define their own -seed flag, and an
// unconditional registration here would collide with theirs.
var (
	seedOnce sync.Once
	seedVal  *int64
)

// RegisterSeedFlag registers the -seed flag on the default command-line flag
// set. Call it from an init function of the test package that wants seed
// pinning (before flag.Parse runs); repeated calls are no-ops.
func RegisterSeedFlag() {
	seedOnce.Do(func() {
		seedVal = flag.Int64("seed", 0, "pin randomized tests to this single seed (0 = full sweep)")
	})
}

// SeedOverride returns the pinned seed and true when the -seed flag was
// registered and set to a non-zero value; randomized sweeps should then run
// only that seed and skip the rest.
func SeedOverride() (int64, bool) {
	if seedVal == nil || *seedVal == 0 {
		return 0, false
	}
	return *seedVal, true
}
