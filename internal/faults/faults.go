// Package faults provides deterministic fault injection for exercising the
// self-healing Dist-PFor cluster runtime. A fault Schedule scripts, per
// worker operation and call index, exactly which fault fires — either
// explicitly rule by rule, or pseudo-randomly from a seed — so a chaos test
// that fails reproduces from its seed alone, independent of goroutine
// scheduling.
//
// The Worker wrapper injects the faults in-process at the Worker-interface
// boundary (the same boundary the RPC layer crosses), which makes every
// failure mode of a remote worker reproducible without sockets: crashes
// before or after the work executed, indefinite hangs, slow replies, short
// replies, corrupt replies, and flappy workers that fail on some calls and
// answer others. The Listener/Conn wrappers inject transport-level faults
// (read/write delays, mid-stream disconnects) under a real TCP worker.
package faults

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"sync"
	"time"

	"sliceline/internal/dist"
	"sliceline/internal/matrix"
	"sliceline/internal/obs"
)

// Op identifies one Worker operation.
type Op int

// Worker operations faults can target.
const (
	OpLoad Op = iota
	OpEval
	OpPing
	numOps
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpLoad:
		return "Load"
	case OpEval:
		return "Eval"
	case OpPing:
		return "Ping"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Kind is one fault type.
type Kind int

// Fault kinds, modelling the distinct distributed failure modes: a fault-
// free call, added latency, an indefinite hang (released only by the
// caller's deadline), a crash before the work executed, a crash after the
// work executed but before the reply (the classic ambiguous failure),
// a truncated reply, and a garbled reply.
const (
	None Kind = iota
	Delay
	Hang
	CrashBefore
	CrashAfter
	ShortReply
	CorruptReply
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Delay:
		return "delay"
	case Hang:
		return "hang"
	case CrashBefore:
		return "crash-before"
	case CrashAfter:
		return "crash-after"
	case ShortReply:
		return "short-reply"
	case CorruptReply:
		return "corrupt-reply"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the base error of every injected crash; tests can
// errors.Is against it to distinguish injected faults from real bugs.
var ErrInjected = errors.New("faults: injected failure")

// ParseOp resolves an operation by its String name ("Load", "Eval", "Ping",
// case-insensitively also "load" etc.), for declarative fault scripts.
func ParseOp(s string) (Op, error) {
	switch s {
	case "Load", "load":
		return OpLoad, nil
	case "Eval", "eval":
		return OpEval, nil
	case "Ping", "ping":
		return OpPing, nil
	default:
		return 0, fmt.Errorf("faults: unknown op %q", s)
	}
}

// ParseKind resolves a fault kind by its String name ("delay",
// "crash-before", …), for declarative fault scripts.
func ParseKind(s string) (Kind, error) {
	for k := None; k <= CorruptReply; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown fault kind %q", s)
}

// Action is the fault applied to one call.
type Action struct {
	Kind  Kind
	Delay time.Duration // latency for Delay; ignored otherwise
}

// Schedule decides the Action for each (operation, call index) pair. Call
// indices count per operation, starting at 0, in the order the wrapped
// worker receives the calls.
type Schedule struct {
	mu    sync.Mutex
	rules map[Op]map[int]Action

	seed    int64
	profile Profile
}

// NewSchedule returns an empty schedule (every call fault-free) to be
// populated with On.
func NewSchedule() *Schedule {
	return &Schedule{rules: make(map[Op]map[int]Action)}
}

// On scripts an explicit fault: the call-th invocation of op suffers action.
// It returns the schedule for chaining.
func (s *Schedule) On(op Op, call int, action Action) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rules[op] == nil {
		s.rules[op] = make(map[int]Action)
	}
	s.rules[op][call] = action
	return s
}

// Profile shapes a seeded schedule: per-mille probabilities of each fault
// kind per call, applied independently per (op, call) pair.
type Profile struct {
	// DelayPerMille etc. are probabilities out of 1000 per call.
	DelayPerMille, HangPerMille, CrashBeforePerMille, CrashAfterPerMille,
	ShortPerMille, CorruptPerMille int
	// MaxDelay bounds injected latency; 0 defaults to 20ms.
	MaxDelay time.Duration
}

// Chaos is a moderately hostile default profile: roughly one call in four
// suffers some fault, every kind represented.
var Chaos = Profile{
	DelayPerMille:       100,
	HangPerMille:        30,
	CrashBeforePerMille: 50,
	CrashAfterPerMille:  30,
	ShortPerMille:       20,
	CorruptPerMille:     20,
}

// Seeded returns a schedule whose actions are a pure function of
// (seed, op, call index): re-running with the same seed injects the same
// faults at the same call indices regardless of timing or goroutine
// interleaving.
func Seeded(seed int64, p Profile) *Schedule {
	if p.MaxDelay <= 0 {
		p.MaxDelay = 20 * time.Millisecond
	}
	return &Schedule{seed: seed, profile: p}
}

// Action resolves the fault scripted for one (operation, call index) pair.
// It is a pure function of the schedule's rules (or seed), so the cluster
// simulator resolves scenario fault scripts through the very same schedule
// the in-process chaos wrapper uses.
func (s *Schedule) Action(op Op, call int) Action {
	return s.action(op, call)
}

// action resolves the fault for one call.
func (s *Schedule) action(op Op, call int) Action {
	if s == nil {
		return Action{}
	}
	s.mu.Lock()
	if s.rules != nil {
		a := s.rules[op][call]
		s.mu.Unlock()
		return a
	}
	s.mu.Unlock()
	// Seeded mode: hash (seed, op, call) into a uniform draw.
	h := fnv.New64a()
	var b [8]byte
	for i, v := range []uint64{uint64(s.seed), uint64(op), uint64(call)} {
		_ = i
		b[0] = byte(v)
		b[1] = byte(v >> 8)
		b[2] = byte(v >> 16)
		b[3] = byte(v >> 24)
		b[4] = byte(v >> 32)
		b[5] = byte(v >> 40)
		b[6] = byte(v >> 48)
		b[7] = byte(v >> 56)
		h.Write(b[:])
	}
	u := h.Sum64()
	draw := int(u % 1000)
	p := s.profile
	for _, c := range []struct {
		perMille int
		kind     Kind
	}{
		{p.DelayPerMille, Delay},
		{p.HangPerMille, Hang},
		{p.CrashBeforePerMille, CrashBefore},
		{p.CrashAfterPerMille, CrashAfter},
		{p.ShortPerMille, ShortReply},
		{p.CorruptPerMille, CorruptReply},
	} {
		if draw < c.perMille {
			a := Action{Kind: c.kind}
			if c.kind == Delay {
				// Derive the latency from the upper hash bits so it is
				// deterministic too.
				a.Delay = time.Duration(1+(u>>32)%uint64(p.MaxDelay.Milliseconds())) * time.Millisecond
			}
			return a
		}
		draw -= c.perMille
	}
	return Action{}
}

// Worker wraps a dist.Worker and injects scheduled faults. It is safe for
// concurrent use; call indices are assigned in arrival order under a lock.
type Worker struct {
	inner dist.Worker
	sched *Schedule

	mu    sync.Mutex
	calls [numOps]int
}

// Wrap returns a fault-injecting wrapper around w driven by sched. A nil
// schedule injects nothing.
func Wrap(w dist.Worker, sched *Schedule) *Worker {
	return &Worker{inner: w, sched: sched}
}

// next assigns this call's index and resolves its action. A firing fault is
// announced as an event on the span carried by ctx (the cluster's per-RPC
// span), so traces of chaos runs show exactly which calls were sabotaged.
func (w *Worker) next(ctx context.Context, op Op) Action {
	w.mu.Lock()
	call := w.calls[op]
	w.calls[op]++
	w.mu.Unlock()
	a := w.sched.action(op, call)
	if a.Kind != None {
		sp := obs.FromContext(ctx)
		sp.Event(fmt.Sprintf("fault injected: %s on %s call %d", a.Kind, op, call))
		sp.SetStr("fault", a.Kind.String())
	}
	return a
}

// Calls reports how many invocations of op the worker has received,
// including faulted ones.
func (w *Worker) Calls(op Op) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.calls[op]
}

// before applies the pre-execution half of an action. It reports whether
// the call should proceed to the real worker.
func (w *Worker) before(ctx context.Context, op Op, a Action) error {
	switch a.Kind {
	case Delay:
		select {
		case <-time.After(a.Delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	case Hang:
		// Hang until the caller gives up; a deadline-free caller blocks
		// forever, which is exactly the pathology the runtime must bound.
		<-ctx.Done()
		return ctx.Err()
	case CrashBefore:
		return fmt.Errorf("%w: %s crashed before executing", ErrInjected, op)
	}
	return nil
}

// Load implements dist.Worker.
func (w *Worker) Load(ctx context.Context, part int, x *matrix.CSR, e []float64) error {
	a := w.next(ctx, OpLoad)
	if err := w.before(ctx, OpLoad, a); err != nil {
		return err
	}
	err := w.inner.Load(ctx, part, x, e)
	if a.Kind == CrashAfter {
		// The load happened, but the caller never learns: on a reload the
		// worker already holds the partition (idempotent), mirroring a lost
		// ack.
		return fmt.Errorf("%w: Load crashed after executing", ErrInjected)
	}
	return err
}

// Eval implements dist.Worker.
func (w *Worker) Eval(ctx context.Context, part int, cols [][]int, level, blockSize int) (ss, se, sm []float64, err error) {
	a := w.next(ctx, OpEval)
	if err := w.before(ctx, OpEval, a); err != nil {
		return nil, nil, nil, err
	}
	ss, se, sm, err = w.inner.Eval(ctx, part, cols, level, blockSize)
	if err != nil {
		return nil, nil, nil, err
	}
	switch a.Kind {
	case CrashAfter:
		return nil, nil, nil, fmt.Errorf("%w: Eval crashed after executing", ErrInjected)
	case ShortReply:
		half := len(ss) / 2
		return ss[:half], se[:half], sm[:half], nil
	case CorruptReply:
		// Garble the reply the way a torn decode would: out-of-domain
		// values the driver's validation must reject.
		css := append([]float64(nil), ss...)
		cse := append([]float64(nil), se...)
		csm := append([]float64(nil), sm...)
		if len(css) > 0 {
			css[0] = math.NaN()
			cse[len(cse)-1] = -1
			csm[len(csm)/2] = math.Inf(1)
		}
		return css, cse, csm, nil
	}
	return ss, se, sm, nil
}

// Ping implements dist.Worker. Any scheduled fault fails the probe; Delay
// beyond the probe deadline fails it too, via ctx.
func (w *Worker) Ping(ctx context.Context) error {
	a := w.next(ctx, OpPing)
	if err := w.before(ctx, OpPing, a); err != nil {
		return err
	}
	switch a.Kind {
	case CrashAfter, ShortReply, CorruptReply:
		return fmt.Errorf("%w: Ping dropped", ErrInjected)
	}
	return w.inner.Ping(ctx)
}

// Close implements dist.Worker.
func (w *Worker) Close() error { return w.inner.Close() }

var _ dist.Worker = (*Worker)(nil)

// ConnScript scripts transport faults for one accepted connection.
type ConnScript struct {
	ReadDelay       time.Duration // added before every Read
	WriteDelay      time.Duration // added before every Write
	CloseAfterReads int           // close the conn after this many Reads; 0 = never
}

// Listener wraps a net.Listener and applies per-connection scripts in
// accept order: connection i gets Scripts[i]; connections beyond the script
// list are clean. Combined with the RemoteWorker's bounded redial this
// exercises flappy-transport recovery under a real gob/RPC stream.
type Listener struct {
	net.Listener
	Scripts []ConnScript

	mu       sync.Mutex
	accepted int
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	i := l.accepted
	l.accepted++
	l.mu.Unlock()
	if i < len(l.Scripts) {
		return &conn{Conn: c, script: l.Scripts[i]}, nil
	}
	return c, nil
}

// Accepted reports how many connections the listener has accepted.
func (l *Listener) Accepted() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.accepted
}

type conn struct {
	net.Conn
	script ConnScript

	mu    sync.Mutex
	reads int
}

func (c *conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	c.reads++
	kill := c.script.CloseAfterReads > 0 && c.reads > c.script.CloseAfterReads
	c.mu.Unlock()
	if kill {
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection dropped mid-stream", ErrInjected)
	}
	if c.script.ReadDelay > 0 {
		time.Sleep(c.script.ReadDelay)
	}
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if c.script.WriteDelay > 0 {
		time.Sleep(c.script.WriteDelay)
	}
	return c.Conn.Write(p)
}
