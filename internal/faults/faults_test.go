package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"sliceline/internal/dist"
	"sliceline/internal/matrix"
)

func testPartition() (*matrix.CSR, []float64) {
	x := matrix.CSRFromDense(matrix.NewDenseData(4, 2, []float64{
		1, 0,
		0, 1,
		1, 0,
		0, 1,
	}))
	return x, []float64{1, 1, 1, 1}
}

// TestSeededDeterminism: the seeded schedule is a pure function of
// (seed, op, call) — two instances agree call by call, and a different seed
// produces a different fault pattern.
func TestSeededDeterminism(t *testing.T) {
	a := Seeded(7, Chaos)
	b := Seeded(7, Chaos)
	diff := Seeded(8, Chaos)
	same, differs := true, false
	for call := 0; call < 2000; call++ {
		for op := OpLoad; op < numOps; op++ {
			av, bv := a.action(op, call), b.action(op, call)
			if av != bv {
				same = false
			}
			if av != diff.action(op, call) {
				differs = true
			}
		}
	}
	if !same {
		t.Fatal("same seed produced different schedules")
	}
	if !differs {
		t.Fatal("different seeds produced identical schedules; profile not applied")
	}
}

// TestSeededProfileCoverage: over many calls the Chaos profile injects every
// fault kind at least once — the matrix is actually exercised.
func TestSeededProfileCoverage(t *testing.T) {
	s := Seeded(1, Chaos)
	seen := map[Kind]bool{}
	for call := 0; call < 5000; call++ {
		seen[s.action(OpEval, call).Kind] = true
	}
	for _, k := range []Kind{None, Delay, Hang, CrashBefore, CrashAfter, ShortReply, CorruptReply} {
		if !seen[k] {
			t.Errorf("kind %v never drawn in 5000 calls", k)
		}
	}
}

// TestExplicitScheduleFaults: each scripted kind manifests as the right
// observable behavior at the Worker interface.
func TestExplicitScheduleFaults(t *testing.T) {
	ctx := context.Background()
	x, e := testPartition()
	cols := [][]int{{0}, {1}}

	load := func(w *Worker) error { return w.Load(ctx, 0, x, e) }

	t.Run("crash-before", func(t *testing.T) {
		w := Wrap(&dist.InProcessWorker{}, NewSchedule().On(OpEval, 0, Action{Kind: CrashBefore}))
		if err := load(w); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := w.Eval(ctx, 0, cols, 1, 0); !errors.Is(err, ErrInjected) {
			t.Fatalf("want ErrInjected, got %v", err)
		}
		// The next call is fault-free.
		ss, _, _, err := w.Eval(ctx, 0, cols, 1, 0)
		if err != nil || ss[0] != 2 {
			t.Fatalf("recovery call: ss=%v err=%v", ss, err)
		}
	})

	t.Run("crash-after-executes", func(t *testing.T) {
		inner := &dist.InProcessWorker{}
		w := Wrap(inner, NewSchedule().On(OpLoad, 0, Action{Kind: CrashAfter}))
		if err := load(w); !errors.Is(err, ErrInjected) {
			t.Fatalf("want ErrInjected, got %v", err)
		}
		// The load executed despite the reported crash: Eval on the inner
		// worker succeeds without a reload.
		if _, _, _, err := inner.Eval(ctx, 0, cols, 1, 0); err != nil {
			t.Fatalf("partition was not actually loaded: %v", err)
		}
	})

	t.Run("short-reply", func(t *testing.T) {
		w := Wrap(&dist.InProcessWorker{}, NewSchedule().On(OpEval, 0, Action{Kind: ShortReply}))
		if err := load(w); err != nil {
			t.Fatal(err)
		}
		ss, _, _, err := w.Eval(ctx, 0, cols, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ss) != 1 {
			t.Fatalf("short reply returned %d stats for %d candidates", len(ss), len(cols))
		}
	})

	t.Run("corrupt-reply", func(t *testing.T) {
		w := Wrap(&dist.InProcessWorker{}, NewSchedule().On(OpEval, 0, Action{Kind: CorruptReply}))
		if err := load(w); err != nil {
			t.Fatal(err)
		}
		ss, se, _, err := w.Eval(ctx, 0, cols, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ss[0] == ss[0] && se[len(se)-1] >= 0 { // NaN != NaN
			t.Fatalf("reply not corrupted: ss=%v se=%v", ss, se)
		}
	})

	t.Run("hang-respects-context", func(t *testing.T) {
		w := Wrap(&dist.InProcessWorker{}, NewSchedule().On(OpEval, 0, Action{Kind: Hang}))
		if err := load(w); err != nil {
			t.Fatal(err)
		}
		hctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, _, _, err := w.Eval(hctx, 0, cols, 1, 0)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("want DeadlineExceeded, got %v", err)
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("hang did not release on context expiry")
		}
	})

	t.Run("delay", func(t *testing.T) {
		w := Wrap(&dist.InProcessWorker{}, NewSchedule().On(OpEval, 0, Action{Kind: Delay, Delay: 30 * time.Millisecond}))
		if err := load(w); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, _, _, err := w.Eval(ctx, 0, cols, 1, 0); err != nil {
			t.Fatal(err)
		}
		if time.Since(start) < 25*time.Millisecond {
			t.Fatal("delay was not applied")
		}
	})

	t.Run("ping-fault", func(t *testing.T) {
		w := Wrap(&dist.InProcessWorker{}, NewSchedule().On(OpPing, 0, Action{Kind: CrashBefore}))
		if err := w.Ping(ctx); !errors.Is(err, ErrInjected) {
			t.Fatalf("want ErrInjected, got %v", err)
		}
		if err := w.Ping(ctx); err != nil {
			t.Fatalf("second ping should be clean, got %v", err)
		}
	})
}

// TestCallCounting: call indices advance per operation independently.
func TestCallCounting(t *testing.T) {
	ctx := context.Background()
	x, e := testPartition()
	w := Wrap(&dist.InProcessWorker{}, nil)
	if err := w.Load(ctx, 0, x, e); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, _, err := w.Eval(ctx, 0, [][]int{{0}}, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Calls(OpLoad); got != 1 {
		t.Fatalf("Load calls = %d, want 1", got)
	}
	if got := w.Calls(OpEval); got != 3 {
		t.Fatalf("Eval calls = %d, want 3", got)
	}
	if got := w.Calls(OpPing); got != 0 {
		t.Fatalf("Ping calls = %d, want 0", got)
	}
}
