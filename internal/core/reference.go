package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sliceline/internal/frame"
	"sliceline/internal/matrix"
)

// RunReference executes SliceLine as the literal linear-algebra program of
// the paper (Algorithm 1 plus the Section 4.3/4.5 pseudocode): candidate
// generation through the S·Sᵀ self-join with upper.tri extraction, combined
// slices via the P1/P2 extraction matrices, ND-array slice IDs with
// recoding, the dedup matrix M with the Equation 8/9 bound computations, and
// vectorized evaluation as I = ((X·Sᵀ) = L) with colSums/colMaxs aggregates.
//
// It materializes every intermediate the paper's DML script materializes, so
// it is only intended for small inputs; the production path (Run) computes
// the same algebra with fused sparse kernels. The two are cross-checked on
// randomized inputs in the test suite — this function is the executable
// specification.
func RunReference(ds *frame.Dataset, e []float64, cfg Config) (*Result, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	n := ds.NumRows()
	if len(e) != n {
		return nil, fmt.Errorf("core: error vector length %d vs %d rows", len(e), n)
	}
	if n == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	for i, v := range e {
		if v < 0 {
			return nil, fmt.Errorf("core: negative error %v at row %d", v, i)
		}
	}
	cfg = cfg.WithDefaults(n)
	start := time.Now()
	m := ds.NumFeatures()

	// a) Data preparation (Algorithm 1 lines 1-5):
	// fdom ← colMaxs(X0); fb ← cumsum(fdom) − fdom; fe ← cumsum(fdom);
	// X ← onehot(X0 + fb) via the table(rix, cix) contingency primitive.
	fdom := make([]float64, m)
	for j := 0; j < m; j++ {
		fdom[j] = float64(ds.Features[j].Domain)
	}
	cum := matrix.CumSum(fdom)
	fb := make([]int, m)
	fe := make([]int, m)
	for j := 0; j < m; j++ {
		fe[j] = int(cum[j])
		fb[j] = fe[j] - int(fdom[j])
	}
	l := fe[m-1]
	var ts []matrix.Triple
	for i := 0; i < n; i++ {
		row := ds.X0.Row(i)
		for j, code := range row {
			ts = append(ts, matrix.Triple{Row: i, Col: fb[j] + code - 1, Val: 1})
		}
	}
	x := matrix.CSRFromTriples(n, l, ts).ToDense()

	// b) Initialization (Equation 4): ss0 = colSums(X)ᵀ, se0 = (eᵀ X)ᵀ,
	// sm0 = colMaxs(X · e).
	sc := newScorer(n, e, cfg.Alpha, cfg.Sigma)
	ss0 := matrix.ColSums(x)
	se0 := matrix.MatVec(x.T(), e)
	sm0 := matrix.ColMaxs(matrix.ScaleRows(x, e))

	// cI ← ss0 >= σ ∧ se0 > 0; select valid basic slices and project X.
	var cI []int
	for j := 0; j < l; j++ {
		if ss0[j] >= float64(cfg.Sigma) && se0[j] > 0 {
			cI = append(cI, j)
		}
	}
	res := &Result{N: n, AvgError: sc.avgErr, Sigma: cfg.Sigma, Alpha: cfg.Alpha}
	x2 := matrix.SelectCols(x, cI) // X ← X[, cI]

	// S: one-hot slice definitions in the reduced space; R = [sc se sm ss].
	nBasic := len(cI)
	s := matrix.NewDense(nBasic, nBasic)
	r := matrix.NewDense(nBasic, 4)
	for k, j := range cI {
		s.Set(k, k, 1)
		r.Set(k, 0, sc.score(ss0[j], se0[j]))
		r.Set(k, 1, se0[j])
		r.Set(k, 2, sm0[j])
		r.Set(k, 3, ss0[j])
	}
	featOf := make([]int, nBasic)
	valOf := make([]int, nBasic)
	for k, j := range cI {
		featOf[k] = featureOfOffset(j, fb, fe)
		valOf[k] = j - fb[featOf[k]] + 1
	}
	// Reduced-space feature block offsets for validity checks and IDs.
	begR, endR := reducedBlocks(featOf, m)

	tk := newTopK(cfg.K, float64(cfg.Sigma))
	for k := 0; k < nBasic; k++ {
		tk.offer([]int{k}, r.At(k, 0), r.At(k, 3), r.At(k, 1), r.At(k, 2))
	}
	res.Levels = append(res.Levels, LevelStats{
		Level: 1, Candidates: l, Valid: nBasic, Elapsed: time.Since(start),
	})

	maxL := m
	if cfg.MaxLevel > 0 && cfg.MaxLevel < maxL {
		maxL = cfg.MaxLevel
	}

	// c) Level-wise enumeration.
	for lvl := 2; lvl <= maxL && s.Rows() > 0; lvl++ {
		s, r = refPairCandidates(sc, s, r, lvl, tk.threshold(), begR, endR, cfg)
		if s.Rows() == 0 {
			res.Levels = append(res.Levels, LevelStats{Level: lvl, Elapsed: time.Since(start)})
			break
		}
		if s.Rows() > cfg.MaxCandidatesPerLevel {
			res.Truncated = true
			res.Levels = append(res.Levels, LevelStats{
				Level: lvl, Candidates: s.Rows(), Elapsed: time.Since(start),
			})
			break
		}
		// Vectorized evaluation (Equation 10): I = ((X Sᵀ) = L);
		// ss = colSums(I)ᵀ; se = (eᵀ I)ᵀ; sm = colMaxs(I · e).
		prod := matrix.MatMul(x2, s.T())
		ind := matrix.EqScalar(prod, float64(lvl))
		ss := matrix.ColSums(ind)
		se := matrix.MatVec(ind.T(), e)
		sm := matrix.ColMaxs(matrix.ScaleRows(ind, e))
		r = matrix.NewDense(s.Rows(), 4)
		valid := 0
		for k := 0; k < s.Rows(); k++ {
			score := sc.score(ss[k], se[k])
			r.Set(k, 0, score)
			r.Set(k, 1, se[k])
			r.Set(k, 2, sm[k])
			r.Set(k, 3, ss[k])
			if ss[k] >= float64(cfg.Sigma) && se[k] > 0 {
				valid++
			}
			tk.offer(denseRowCols(s, k), score, ss[k], se[k], sm[k])
		}
		res.Levels = append(res.Levels, LevelStats{
			Level: lvl, Candidates: s.Rows(), Valid: valid, Elapsed: time.Since(start),
		})
	}

	// Decode via the shared state machinery.
	st := &state{cfg: cfg, sc: sc, featOf: featOf, valOf: valOf, m: m}
	res.TopK = st.decode(tk, ds.Features)
	res.Elapsed = time.Since(start)
	return res, nil
}

// refPairCandidates is the Section 4.3 pseudocode with materialized
// matrices: input filtering, the SSᵀ self-join, P1/P2 extraction, combined
// slices P, feature-validity filtering, ND-array IDs, the dedup matrix M,
// the Equation 8 bound aggregations and the Equation 9 pruning filter.
func refPairCandidates(sc scorer, s, r *matrix.Dense, lvl int, sck float64, begR, endR []int, cfg Config) (*matrix.Dense, *matrix.Dense) {
	// Step 1: S ← removeEmpty(S · (R[,4] >= σ ∧ R[,2] > 0)).
	var keep []int
	for i := 0; i < s.Rows(); i++ {
		if r.At(i, 3) >= float64(cfg.Sigma) && r.At(i, 1) > 0 {
			keep = append(keep, i)
		}
	}
	s = matrix.SelectRows(s, keep)
	r = matrix.SelectRows(r, keep)
	if s.Rows() == 0 {
		return matrix.NewDense(0, s.Cols()), matrix.NewDense(0, 4)
	}

	// Step 2: pair join — I = upper.tri((S Sᵀ) = (L−2)).
	ssT := matrix.MatMul(s, s.T())
	pi, pj := matrix.UpperTriEq(ssT, float64(lvl-2))
	if len(pi) == 0 {
		return matrix.NewDense(0, s.Cols()), matrix.NewDense(0, 4)
	}

	// Step 3: extraction matrices P1, P2 (table(seq, rix)) and combined
	// slices P = ((P1 S) + (P2 S)) != 0, with bounds as the min of parents
	// (Equation 7).
	nPairs := len(pi)
	t1 := make([]matrix.Triple, nPairs)
	t2 := make([]matrix.Triple, nPairs)
	for k := range pi {
		t1[k] = matrix.Triple{Row: k, Col: pi[k], Val: 1}
		t2[k] = matrix.Triple{Row: k, Col: pj[k], Val: 1}
	}
	p1 := matrix.CSRFromTriples(nPairs, s.Rows(), t1).ToDense()
	p2 := matrix.CSRFromTriples(nPairs, s.Rows(), t2).ToDense()
	p := matrix.CmpScalar(matrix.Add(matrix.MatMul(p1, s), matrix.MatMul(p2, s)), 0,
		func(x, _ float64) bool { return x != 0 })
	ssPair := minPair(matrix.MatVec(p1, r.Col(3)), matrix.MatVec(p2, r.Col(3)))
	sePair := minPair(matrix.MatVec(p1, r.Col(1)), matrix.MatVec(p2, r.Col(1)))
	smPair := minPair(matrix.MatVec(p1, r.Col(2)), matrix.MatVec(p2, r.Col(2)))

	// Step 4: discard slices with multiple assignments per feature — for
	// each original feature check rowSums(P[, beg:end]) <= 1.
	validRow := make([]bool, nPairs)
	for k := range validRow {
		validRow[k] = true
	}
	for f := range begR {
		if begR[f] < 0 {
			continue
		}
		for k := 0; k < nPairs; k++ {
			if !validRow[k] {
				continue
			}
			sum := 0.0
			for c := begR[f]; c < endR[f]; c++ {
				sum += p.At(k, c)
			}
			if sum > 1 {
				validRow[k] = false
			}
		}
	}
	var vIdx []int
	for k, ok := range validRow {
		if ok {
			vIdx = append(vIdx, k)
		}
	}
	p = matrix.SelectRows(p, vIdx)
	p1 = matrix.SelectRows(p1, vIdx)
	p2 = matrix.SelectRows(p2, vIdx)
	ssPair = selectF(ssPair, vIdx)
	sePair = selectF(sePair, vIdx)
	smPair = selectF(smPair, vIdx)
	nPairs = len(vIdx)
	if nPairs == 0 {
		return matrix.NewDense(0, s.Cols()), matrix.NewDense(0, 4)
	}

	// Candidate deduplication: ND-array IDs over the feature blocks
	// (scale · rowIndexMax(P[,beg:end]) · rowMaxs(P[,beg:end])) recoded to
	// consecutive integers, then M = table(ID, seq(1, nrow(P))).
	ids := make([]int64, nPairs)
	scale := int64(1)
	for f := range begR {
		if begR[f] < 0 {
			continue
		}
		block := sliceColsRange(p, begR[f], endR[f])
		idxMax := matrix.RowIndexMax(block)
		rowMax := matrix.RowMaxs(block)
		dom := int64(endR[f] - begR[f] + 1)
		for k := 0; k < nPairs; k++ {
			ids[k] += scale * int64(float64(idxMax[k]+1)*rowMax[k])
		}
		scale *= dom
	}
	recode := map[int64]int{}
	var order []int64
	for _, id := range ids {
		if _, ok := recode[id]; !ok {
			recode[id] = len(order)
			order = append(order, id)
		}
	}
	nGroups := len(order)
	mTrip := make([]matrix.Triple, nPairs)
	for k, id := range ids {
		mTrip[k] = matrix.Triple{Row: recode[id], Col: k, Val: 1}
	}
	mMat := matrix.CSRFromTriples(nGroups, nPairs, mTrip).ToDense()

	// Equation 8: minimize via maximizing reciprocals; np counts distinct
	// parents per group.
	ssUB := recipRowMax(mMat, ssPair)
	seUB := recipRowMax(mMat, sePair)
	smUB := recipRowMax(mMat, smPair)
	parentsHit := matrix.MatMul(mMat, matrix.Add(p1, p2))
	np := matrix.RowSums(matrix.CmpScalar(parentsHit, 0, func(x, _ float64) bool { return x != 0 }))

	// Equation 9 pruning filter on M.
	var keepG []int
	for g := 0; g < nGroups; g++ {
		ub := sc.upperBound(ssUB[g], seUB[g], smUB[g])
		if ssUB[g] >= float64(cfg.Sigma) && ub > sck && ub >= 0 && int(np[g]) == lvl {
			keepG = append(keepG, g)
		}
	}
	if len(keepG) == 0 {
		return matrix.NewDense(0, s.Cols()), matrix.NewDense(0, 4)
	}
	mMat = matrix.SelectRows(mMat, keepG)
	// Deduplicate: S = P[rowIndexMax(M')], one representative per group.
	rep := matrix.RowIndexMax(mMat)
	return matrix.SelectRows(p, rep), matrix.NewDense(len(rep), 4)
}

func featureOfOffset(col int, fb, fe []int) int {
	for j := range fb {
		if col >= fb[j] && col < fe[j] {
			return j
		}
	}
	panic(fmt.Sprintf("core: one-hot column %d outside feature blocks", col))
}

// reducedBlocks computes, per original feature, the half-open column range
// it occupies in the reduced space (-1 begin if absent).
func reducedBlocks(featOf []int, m int) (beg, end []int) {
	beg = make([]int, m)
	end = make([]int, m)
	for f := range beg {
		beg[f] = -1
	}
	for c, f := range featOf {
		if beg[f] < 0 {
			beg[f] = c
		}
		end[f] = c + 1
	}
	return beg, end
}

func minPair(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = math.Min(a[i], b[i])
	}
	return out
}

func selectF(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for k, i := range idx {
		out[k] = v[i]
	}
	return out
}

// recipRowMax computes 1/rowMaxs(M ⊙ (1/vᵀ)) with the ∞→0 handling of
// Equation 8: minimizing over each group's parents by maximizing the
// reciprocals, counting only entries selected by M.
func recipRowMax(m *matrix.Dense, v []float64) []float64 {
	inv := make([]float64, len(v))
	for i, x := range v {
		if x != 0 {
			inv[i] = 1 / x
		}
	}
	out := make([]float64, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		mx := 0.0
		ri := m.Row(i)
		for j, w := range ri {
			if w != 0 && inv[j] > mx {
				mx = inv[j]
			}
		}
		if mx > 0 {
			out[i] = 1 / mx
		}
	}
	return out
}

func denseRowCols(s *matrix.Dense, k int) []int {
	var cols []int
	for j, v := range s.Row(k) {
		if v != 0 {
			cols = append(cols, j)
		}
	}
	sort.Ints(cols)
	return cols
}

func sliceColsRange(a *matrix.Dense, lo, hi int) *matrix.Dense {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return matrix.SelectCols(a, idx)
}
