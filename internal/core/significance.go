package core

import (
	"math"

	"sliceline/internal/stats"
)

// Statistical guardrails: every decoded result slice is annotated with the
// one-sided Welch's t-test p-value of "this slice's mean error exceeds the
// rest of the data's" and its Benjamini–Hochberg q-value over the result's
// top-K family. The test consumes the (weighted) count, sum and
// sum-of-squares summaries of the slice and its complement: count and sum
// are exactly the ss/se accumulators the kernel already produced for every
// top-K entry, and the complement's summaries follow by subtraction from the
// global totals — so no candidate is ever re-scanned during enumeration.
// Only the sum of squares is not tracked by the hot kernels (adding a fourth
// accumulator would tax every candidate of every level for a statistic only
// the K winners need); it is recovered by one O(nnz) pass over the reduced
// matrix for the K final slices, on the driver, identically in every
// execution plan.

// annotate fills PValue/QValue/Significant on the decoded slices, which must
// be aligned index-for-index with the top-K entries they were decoded from.
func (st *state) annotate(slices []Slice, entries []tkEntry) {
	if len(slices) == 0 {
		return
	}
	sq := st.sliceSquares(entries)
	p := make([]float64, len(slices))
	for i := range entries {
		p[i] = st.welchP(entries[i].ss, entries[i].se, sq[i])
	}
	q := stats.BenjaminiHochberg(p)
	for i := range slices {
		slices[i].PValue = p[i]
		slices[i].QValue = q[i]
		slices[i].Significant = q[i] <= st.sigLevel
	}
}

// sliceSquares computes the weighted error sum of squares Σ w_i·e_i² over
// each entry's member rows in one pass over the reduced one-hot matrix. A
// row belongs to an entry iff the row's column set contains all the entry's
// columns (conjunctive predicates).
func (st *state) sliceSquares(entries []tkEntry) []float64 {
	sq := make([]float64, len(entries))
	if len(entries) == 0 {
		return sq
	}
	n := st.x.Rows()
	for i := 0; i < n; i++ {
		ei := st.e[i]
		if ei == 0 {
			continue // contributes nothing to any sum of squares
		}
		wi := 1.0
		if st.w != nil {
			wi = st.w[i]
			if wi == 0 {
				continue // retired row: excluded from every aggregate
			}
		}
		cols, _ := st.x.RowEntries(i)
		wee := wi * ei * ei
		for j := range entries {
			if containsSorted(cols, entries[j].cols) {
				sq[j] += wee
			}
		}
	}
	return sq
}

// containsSorted reports whether the ascending list sup contains every
// element of the ascending list sub.
func containsSorted(sup, sub []int) bool {
	k := 0
	for _, want := range sub {
		for k < len(sup) && sup[k] < want {
			k++
		}
		if k == len(sup) || sup[k] != want {
			return false
		}
		k++
	}
	return true
}

// welchP computes the one-sided p-value for a slice summarized by its
// weighted size n1, error sum se and error sum of squares sq, tested
// against the rest of the data (totals minus the slice). Degenerate
// partitions — fewer than two (weighted) rows on either side — have no
// defined variance and report p = 1: never significant. The returned p is
// floored at the smallest positive float64: an exactly-zero p (both sides
// variance-free with different means) would be indistinguishable from the
// schema-v1 "no statistics" zero value in the JSON interchange form.
func (st *state) welchP(n1, se, sq float64) float64 {
	n2 := st.sc.n - n1
	if n1 <= 1 || n2 <= 1 {
		return 1
	}
	m1 := se / n1
	v1 := (sq - se*m1) / (n1 - 1)
	if v1 < 0 {
		v1 = 0 // cancellation guard; true variance is >= 0
	}
	se2 := st.sc.totalErr - se
	sq2 := st.totSq - sq
	if sq2 < 0 {
		sq2 = 0
	}
	m2 := se2 / n2
	v2 := (sq2 - se2*m2) / (n2 - 1)
	if v2 < 0 {
		v2 = 0
	}
	t, df := stats.Welch(m1, v1, n1, m2, v2, n2)
	return math.Max(stats.TCDFUpper(t, df), math.SmallestNonzeroFloat64)
}
