package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"sliceline/internal/frame"
)

// Diff slicing: given two error vectors for the same rows — a baseline
// model's and a new model's — find the slices where the new model got worse
// (regressions) and where it got better (improvements). Each direction is an
// ordinary SliceLine problem over the rectified error delta:
//
//	regressions:  e⁺ = max(0, eNew − eBase)
//	improvements: e⁻ = max(0, eBase − eNew)
//
// lowered onto the weighted enumeration path with unit weights, so each
// direction is bit-identical to RunWeighted over that delta — the diff
// differential proof. Rows whose error moved the other way contribute zero,
// exactly like rows with zero error in a plain run.

// RunDiff finds the top slices of model-behavior change between two error
// vectors over the same dataset: slices where the new model regressed
// (Slice.DiffSign = +1) and where it improved (DiffSign = -1). Both
// directions are enumerated with the same configuration; the merged top-K
// interleaves them by score. External evaluators are not supported (the
// lowering is weighted); diff runs always evaluate locally.
func RunDiff(ds *frame.Dataset, eBase, eNew []float64, cfg Config) (*Result, error) {
	return RunDiffContext(context.Background(), ds, eBase, eNew, cfg)
}

// RunDiffContext is RunDiff with a caller-supplied context.
func RunDiffContext(ctx context.Context, ds *frame.Dataset, eBase, eNew []float64, cfg Config) (*Result, error) {
	enc, err := frame.OneHot(ds)
	if err != nil {
		return nil, err
	}
	return RunDiffEncodedContext(ctx, enc, ds.Features, eBase, eNew, cfg)
}

// RunDiffEncodedContext is RunDiffContext for callers that already hold the
// one-hot encoding.
func RunDiffEncodedContext(ctx context.Context, enc *frame.Encoding, feats []frame.Feature, eBase, eNew []float64, cfg Config) (*Result, error) {
	n := enc.X.Rows()
	if len(eBase) != n {
		return nil, fmt.Errorf("core: baseline error vector length %d vs %d rows: %w", len(eBase), n, ErrBadErrorVector)
	}
	if len(eNew) != n {
		return nil, fmt.Errorf("core: error vector length %d vs %d rows: %w", len(eNew), n, ErrBadErrorVector)
	}
	if cfg.Evaluator != nil {
		return nil, fmt.Errorf("core: diff slicing %w", ErrWeightedEvaluator)
	}
	reg := make([]float64, n)
	imp := make([]float64, n)
	ones := make([]float64, n)
	for i := 0; i < n; i++ {
		db, dn := eBase[i], eNew[i]
		if math.IsNaN(db) || math.IsInf(db, 0) || math.IsNaN(dn) || math.IsInf(dn, 0) {
			return nil, fmt.Errorf("core: non-finite error at row %d (base %v, new %v): %w", i, db, dn, ErrBadErrorVector)
		}
		if d := dn - db; d > 0 {
			reg[i] = d
		} else {
			imp[i] = -d
		}
		ones[i] = 1
	}
	start := time.Now()
	regRes, err := runEncoded(ctx, enc, feats, reg, ones, cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("core: diff regression direction: %w", err)
	}
	impRes, err := runEncoded(ctx, enc, feats, imp, ones, cfg, nil)
	if err != nil {
		return nil, fmt.Errorf("core: diff improvement direction: %w", err)
	}
	return mergeDiff(regRes, impRes, time.Since(start)), nil
}

// mergeDiff combines the per-direction results into one: slices tagged with
// their direction sign and interleaved by score, level statistics
// concatenated (regressions first), and the weaker of the two certificates
// reported. AvgError is the mean absolute error delta (the two directions'
// rectified means sum to it). Per-slice q-values keep their per-direction
// families, so each direction's annotations equal a standalone run's.
func mergeDiff(regRes, impRes *Result, elapsed time.Duration) *Result {
	out := &Result{
		N:         regRes.N,
		AvgError:  regRes.AvgError + impRes.AvgError,
		Sigma:     regRes.Sigma,
		Alpha:     regRes.Alpha,
		Elapsed:   elapsed,
		Truncated: regRes.Truncated || impRes.Truncated,
		Gap:       math.Max(regRes.Gap, impRes.Gap),
	}
	for _, s := range regRes.TopK {
		s.DiffSign = +1
		out.TopK = append(out.TopK, s)
	}
	for _, s := range impRes.TopK {
		s.DiffSign = -1
		out.TopK = append(out.TopK, s)
	}
	sort.SliceStable(out.TopK, func(i, j int) bool {
		a, b := out.TopK[i], out.TopK[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Size != b.Size {
			return a.Size > b.Size
		}
		return a.DiffSign > b.DiffSign // regressions first on exact ties
	})
	out.Levels = append(out.Levels, regRes.Levels...)
	out.Levels = append(out.Levels, impRes.Levels...)
	return out
}
