// Package core implements SliceLine's exact top-K slice-finding algorithm
// (Algorithm 1 of the paper): score-based problem formulation (Section 2),
// upper bounds and pruning (Section 3), and linear-algebra level-wise
// enumeration with vectorized slice evaluation (Section 4). All candidate
// generation and evaluation is expressed over the sparse one-hot matrices of
// package frame using the kernels of package matrix.
package core

import (
	"fmt"
	"time"

	"sliceline/internal/obs"
)

// Default parameter values from the paper (Algorithm 1 header and §5.2).
const (
	DefaultK         = 4
	DefaultAlpha     = 0.95
	DefaultBlockSize = 16
	minSupportFloor  = 32
)

// DefaultSignificance is the FDR level used to set Slice.Significant when
// Config.Significance is zero — 0.05, the SliceFinder paper's default.
const DefaultSignificance = 0.05

// Config holds the SliceLine parameters and the ablation switches used by
// the pruning study (Figure 3).
type Config struct {
	// K is the number of top slices to return. <= 0 defaults to 4.
	K int
	// Sigma is the minimum support |S| >= sigma. <= 0 defaults to
	// max(32, ceil(n/100)), the paper's default.
	Sigma int
	// Alpha in (0,1] weights average slice error against slice size.
	// <= 0 defaults to 0.95, the paper's experimental default.
	Alpha float64
	// MaxLevel caps the lattice level (the paper's ⌈L⌉). <= 0 means
	// unbounded, i.e. min(m, ...) terminates the loop.
	MaxLevel int
	// BlockSize is the hybrid evaluation block size b of Section 4.4:
	// 1 is pure task-parallel, nrow(S) is pure data-parallel, and the
	// paper's experiments default to 16. <= 0 selects an automatic size
	// that balances scan sharing against parallelism: roughly
	// nrow(S)/(4*workers), at least 16.
	BlockSize int

	// Ablation switches (Figure 3). The zero value enables everything.
	DisableSizePruning    bool // drop ⌈ss⌉ >= σ candidate pruning and σ input filtering
	DisableScorePruning   bool // drop ⌈sc⌉ > sc_k and ⌈sc⌉ >= 0 pruning
	DisableParentHandling bool // drop the np == L missing-parent pruning
	DisableDedup          bool // keep duplicate pair-candidates (config 5)

	// MaxCandidatesPerLevel aborts enumeration when a level would evaluate
	// more candidates than this bound, instead of exhausting memory — the
	// paper's unpruned configs "ran out-of-memory after 4 levels". <= 0
	// defaults to 2 million.
	MaxCandidatesPerLevel int

	// Budget, when positive, bounds the enumeration wall clock: the run
	// stops before starting any lattice level once Budget has elapsed
	// (anytime mode). Levels are never interrupted mid-evaluation, so a
	// budget-stopped run is bit-identical — including Result.Gap — to a
	// batch run with MaxLevel set to its last completed level. Combine with
	// OnSnapshot to stream monotonically-improving top-K prefixes.
	Budget time.Duration

	// Significance is the false-discovery-rate level used to set
	// Slice.Significant from the Benjamini–Hochberg q-values annotated on
	// every result slice. Zero selects DefaultSignificance (0.05); values
	// must otherwise lie in (0, 1).
	Significance float64

	// OnSnapshot, when non-nil, is invoked after every completed lattice
	// level with the current decoded top-K and the certified optimality gap
	// at that point. It runs synchronously on the enumeration goroutine.
	// On a resumed run it fires only for newly enumerated levels.
	OnSnapshot func(Snapshot)

	// PriorityEnumeration evaluates each level's candidates in descending
	// order of their score upper bound, in chunks, re-pruning the remaining
	// candidates with the improved top-K threshold between chunks. This
	// implements the paper's proposed future-work direction of
	// priority-based enumeration (Section 7) inside the level-wise
	// framework; results are identical, only less work may be done.
	PriorityEnumeration bool

	// DenseEval materializes the X·Sᵀ product and indicator I as dense
	// chunked intermediates instead of using the fused sparse kernel,
	// modelling ML systems with limited sparse-operation support (the
	// kernel-quality comparison of Section 5.4). Off by default.
	DenseEval bool

	// BitsetEval selects the slice-membership kernel for the built-in
	// evaluation path: BitsetAuto (the zero value) packs the reduced one-hot
	// columns into []uint64 bitsets and evaluates candidates with
	// AND+popcount whenever the average column density is at least 1/64,
	// falling back to the fused CSR kernel below it; BitsetOn and BitsetOff
	// force one path for ablations and differential tests. Like BlockSize,
	// it changes execution plan, never results. Ignored when DenseEval or an
	// external Evaluator is set; distributed workers apply their own
	// (worker-side) knob.
	BitsetEval BitsetMode

	// Evaluator, when non-nil, delegates slice evaluation — for example to
	// the distributed backends of package dist. The enumeration, pruning
	// and top-K logic stay on the driver.
	Evaluator ExternalEvaluator

	// OnLevel, when non-nil, is invoked after each lattice level completes
	// with that level's statistics — progress reporting for long
	// enumerations. It runs synchronously on the enumeration goroutine.
	// On a resumed run it fires only for newly enumerated levels.
	OnLevel func(LevelStats)

	// CheckpointPath, when non-empty, persists the enumeration state (top-K,
	// candidate frontier, level counters) to this file after every completed
	// lattice level, atomically. An interrupted run restarted with Resume
	// continues from the last completed level and produces byte-identical
	// top-K to an uninterrupted run.
	CheckpointPath string

	// Resume restores state from CheckpointPath before enumerating. A
	// missing checkpoint file starts a fresh run; a checkpoint written for
	// different data or an incompatible configuration is refused with an
	// error rather than silently producing garbage.
	Resume bool

	// Tracer, when non-nil, receives spans for the run, every lattice level,
	// every candidate-evaluation call and every checkpoint operation. The
	// run span is also placed into the context handed to external
	// evaluators, so distributed backends parent their per-RPC spans under
	// the enumeration that issued them. Nil disables tracing at zero cost.
	Tracer obs.Tracer

	// Metrics, when non-nil, receives enumeration counters, the live top-K
	// threshold gauge, and per-level / per-eval latency histograms
	// (sl_core_* families). Nil disables metrics at zero cost.
	Metrics *obs.Registry
}

// WithDefaults resolves the zero-value fields to their defaults for a
// dataset of n (weighted) rows, the resolution Run applies internally. It is
// exported for callers that need the resolved parameters ahead of a run —
// notably ConfigSignature consumers like the server's result cache, where an
// explicit K=4 and a defaulted K must key identically. Applying it twice is
// a no-op.
func (c Config) WithDefaults(n int) Config {
	if c.K <= 0 {
		c.K = DefaultK
	}
	if c.Sigma <= 0 {
		c.Sigma = (n + 99) / 100
		if c.Sigma < minSupportFloor {
			c.Sigma = minSupportFloor
		}
	}
	if c.Alpha <= 0 {
		c.Alpha = DefaultAlpha
	}
	if c.Alpha > 1 {
		c.Alpha = 1
	}
	// BlockSize <= 0 means auto; resolved per level in evalSlices.
	if c.MaxCandidatesPerLevel <= 0 {
		c.MaxCandidatesPerLevel = 2_000_000
	}
	return c
}

// Predicate is one equivalence predicate F_j = v of a slice.
type Predicate struct {
	Feature int    // original feature index (0-based)
	Name    string // feature name
	Value   int    // 1-based integer code
	Label   string // decoded category/bin label when available
}

func (p Predicate) String() string {
	if p.Label != "" {
		return fmt.Sprintf("%s=%s", p.Name, p.Label)
	}
	return fmt.Sprintf("%s=%d", p.Name, p.Value)
}

// Slice is one result slice with its statistics (the paper's TS/TR rows)
// plus the statistical guardrail annotations of the SliceFinder comparison:
// a one-sided Welch's t-test of the slice's error against the rest of the
// data, with Benjamini–Hochberg correction over the result's top-K family.
type Slice struct {
	Predicates []Predicate
	Score      float64
	Size       int     // |S|
	TotalError float64 // se
	MaxError   float64 // sm
	AvgError   float64 // se / |S|

	// PValue is the one-sided Welch's t-test p-value for "this slice's mean
	// error exceeds the rest of the data's", computed from the run's
	// accumulators (weighted mean/variance/count summaries) — no second
	// enumeration pass.
	PValue float64
	// QValue is the Benjamini–Hochberg FDR q-value of PValue over the
	// result's top-K family (per diff direction in RunDiff results).
	QValue float64
	// Significant reports QValue <= the run's significance level
	// (Config.Significance, default 0.05). Tiny-but-extreme slices that a
	// high score surfaces but the data cannot statistically support show up
	// with Significant == false.
	Significant bool
	// DiffSign is 0 for ordinary runs; in RunDiff results it is +1 for
	// slices found on the regression direction (new model worse) and -1 for
	// the improvement direction (new model better).
	DiffSign int
}

func (s Slice) String() string {
	out := ""
	for i, p := range s.Predicates {
		if i > 0 {
			out += " AND "
		}
		out += p.String()
	}
	return fmt.Sprintf("[%s] score=%.4f size=%d avgErr=%.4f", out, s.Score, s.Size, s.AvgError)
}

// Snapshot is one anytime-mode progress point, delivered via
// Config.OnSnapshot after each completed lattice level: the current decoded
// and annotated top-K together with the optimality gap certified at that
// point. Across the snapshots of one run the top-K only improves and Gap is
// monotonically non-increasing.
type Snapshot struct {
	Level   int     // last completed lattice level
	TopK    []Slice // current best K, decoded and annotated
	Gap     float64 // certified optimality gap at this point
	Elapsed time.Duration
}

// LevelStats records the enumeration characteristics of one lattice level,
// the quantities plotted in Figures 3/4 and Table 2.
type LevelStats struct {
	Level      int
	Candidates int           // slices evaluated at this level
	Valid      int           // evaluated slices with |S| >= sigma and se > 0
	Pruned     int           // pair-candidates removed before evaluation
	Elapsed    time.Duration // cumulative elapsed time through this level
}

// Result is the output of a SliceLine run.
type Result struct {
	TopK      []Slice
	Levels    []LevelStats
	N         int     // dataset rows
	AvgError  float64 // ē
	Sigma     int
	Alpha     float64
	Elapsed   time.Duration
	Truncated bool // true if MaxCandidatesPerLevel aborted enumeration

	// Gap is the certified optimality gap: no slice outside the explored
	// part of the lattice can score more than the K-th best score plus Gap.
	// It is derived from the same Equation-3 score upper bounds that drive
	// pruning, evaluated over the surviving frontier of the last completed
	// level. Zero means the top-K is exact (the usual case for a run that
	// exhausted the lattice); a budget- or MaxLevel-bounded run reports the
	// bound it can still certify ("top-K within ε").
	Gap float64
}

// TotalCandidates sums evaluated candidates over all levels.
func (r *Result) TotalCandidates() int {
	total := 0
	for _, l := range r.Levels {
		total += l.Candidates
	}
	return total
}

// TS returns the top-K slices in the paper's output format: a K×m
// integer-encoded matrix with one row per slice where zeros mark free
// features and non-zero entries are the 1-based value codes. m is the
// original feature count.
func (r *Result) TS(m int) [][]int {
	out := make([][]int, len(r.TopK))
	for i, s := range r.TopK {
		row := make([]int, m)
		for _, p := range s.Predicates {
			if p.Feature >= 0 && p.Feature < m {
				row[p.Feature] = p.Value
			}
		}
		out[i] = row
	}
	return out
}

// TR returns the aligned slice statistics in the paper's column order:
// score, total error, max error, size — one row per top-K slice.
func (r *Result) TR() [][4]float64 {
	out := make([][4]float64, len(r.TopK))
	for i, s := range r.TopK {
		out[i] = [4]float64{s.Score, s.TotalError, s.MaxError, float64(s.Size)}
	}
	return out
}
