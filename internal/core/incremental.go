package core

import (
	"context"
	"fmt"

	"sliceline/internal/frame"
	"sliceline/internal/matrix"
)

// memoEntry is the stored evaluation state of one slice candidate: its
// statistics accumulated over rows [0, rows). Entries never go stale — a
// candidate pruned for several generations and re-enumerated later simply
// continues from where its scan stopped.
type memoEntry struct {
	rows       int
	ss, se, sm float64
}

// sliceMemo carries per-candidate slice statistics across generations of an
// incremental run. Keys are the candidate's ORIGINAL one-hot column ids (the
// reduced column space changes per generation as the σ-filter moves, original
// ids are stable modulo domain-growth remaps, which rekey the memo). The
// packed bitset covers the full one-hot width and is grown in place by
// appends.
type sliceMemo struct {
	bits    *matrix.ColumnBits
	entries map[string]memoEntry
	hits    int // candidates continued from a memo entry, cumulative
	misses  int // candidates evaluated from row 0, cumulative
}

// memoKey encodes sorted original column ids into a compact map key.
func memoKey(cols []int) string {
	b := make([]byte, 4*len(cols))
	for i, c := range cols {
		b[i*4] = byte(c)
		b[i*4+1] = byte(c >> 8)
		b[i*4+2] = byte(c >> 16)
		b[i*4+3] = byte(c >> 24)
	}
	return string(b)
}

// memoKeyCols decodes a memo key back into column ids, appending to dst.
func memoKeyCols(dst []int, key string) []int {
	for i := 0; i+4 <= len(key); i += 4 {
		c := int(key[i]) | int(key[i+1])<<8 | int(key[i+2])<<16 | int(key[i+3])<<24
		dst = append(dst, c)
	}
	return dst
}

// rekey rewrites every memo key through a domain-growth column remap.
func (m *sliceMemo) rekey(remap []int) {
	out := make(map[string]memoEntry, len(m.entries))
	var cols []int
	for k, ent := range m.entries {
		cols = memoKeyCols(cols[:0], k)
		for i, c := range cols {
			cols[i] = remap[c]
		}
		out[memoKey(cols)] = ent
	}
	m.entries = out
}

// evalLevel is the incremental counterpart of Kernel.Eval: every candidate of
// a level is looked up by its original column ids; a memoized candidate scans
// only the rows appended since its last evaluation, seeded with the stored
// statistics, an unseen candidate scans from row 0. Both land bit-identical
// to a from-scratch evaluation (see evalBitsetFrom). Candidates are sharded
// across workers like EvalBitsetWeighted — the map is read concurrently and
// updated serially afterwards.
func (m *sliceMemo) evalLevel(orig []int, e []float64, lv *level) {
	nc := lv.size()
	if nc == 0 {
		return
	}
	n := m.bits.Rows()
	keys := make([]string, nc)
	hits := make([]bool, nc)
	matrix.ParallelFor(nc, func(lo, hi int) {
		var buf []int
		for s := lo; s < hi; s++ {
			buf = buf[:0]
			for _, c := range lv.cols[s] {
				buf = append(buf, orig[c])
			}
			key := memoKey(buf)
			keys[s] = key
			var from int
			var ss, se, sm float64
			if ent, ok := m.entries[key]; ok && ent.rows <= n {
				from, ss, se, sm = ent.rows, ent.ss, ent.se, ent.sm
				hits[s] = true
			}
			lv.ss[s], lv.se[s], lv.sm[s] = evalBitsetFrom(m.bits, e, nil, buf, from, ss, se, sm)
		}
	})
	for s := 0; s < nc; s++ {
		m.entries[keys[s]] = memoEntry{rows: n, ss: lv.ss[s], se: lv.se[s], sm: lv.sm[s]}
		if hits[s] {
			m.hits++
		} else {
			m.misses++
		}
	}
}

// IncrementalStats reports the memo state of an incremental run, for
// observability and tests.
type IncrementalStats struct {
	Generation int // appends applied since construction
	Rows       int // accumulated row count
	Entries    int // memoized candidates
	Hits       int // cumulative candidate evaluations continued from the memo
	Misses     int // cumulative candidate evaluations scanned from row 0
}

// Incremental maintains SliceLine top-K across dataset appends. Construction
// captures a base encoding and error vector; Append folds in the output of a
// frame.Appender batch plus the new rows' errors; Run evaluates the current
// generation's exact top-K.
//
// The maintained result is bit-identical to a from-scratch Run over the
// accumulated data at every generation (with Config.BitsetEval = BitsetOn on
// the reference — the row-parallel CSR kernel merges chunk partials in a
// different float-addition order). The mechanism: level-1 statistics, the
// σ-filter, scoring and the pruning/enumeration control flow are recomputed
// from scratch each generation through the exact same code path as a batch
// run — they are O(nnz) and O(candidates), cheap — while the expensive part,
// the per-candidate row scans of levels >= 2, is memoized. A candidate
// evaluated at a prior generation scans only the appended rows, seeded with
// its stored statistics; sequential-continuation accumulation makes that
// bit-identical to a full scan. Lattice regions whose parents stay pruned are
// never scanned at all; a region whose parent statistics move past a stored
// pruning bound re-enters enumeration automatically (the control flow re-runs
// every generation) and resumes from whatever scan state the memo holds.
//
// Incremental is not safe for concurrent use: callers serialize Append and
// Run (the server gives each monitored dataset one owning goroutine).
type Incremental struct {
	cfg   Config
	feats []frame.Feature
	enc   *frame.Encoding
	e     []float64
	memo  *sliceMemo
	gen   int
}

// NewIncremental builds an incremental evaluator over a base encoding,
// feature descriptors and error vector. The configuration is captured once
// and reused every generation (σ defaulting still tracks the growing row
// count, exactly as a batch run would resolve it). Configurations that
// delegate or reorder evaluation — external evaluators, dense evaluation,
// priority enumeration, checkpoint/resume — are rejected: the memo is the
// evaluation path.
func NewIncremental(enc *frame.Encoding, feats []frame.Feature, e []float64, cfg Config) (*Incremental, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch {
	case cfg.Evaluator != nil:
		return nil, fmt.Errorf("core: incremental runs cannot use an external evaluator")
	case cfg.DenseEval:
		return nil, fmt.Errorf("core: incremental runs cannot use dense evaluation")
	case cfg.PriorityEnumeration:
		return nil, fmt.Errorf("core: incremental runs cannot use priority enumeration")
	case cfg.CheckpointPath != "" || cfg.Resume:
		return nil, fmt.Errorf("core: incremental runs cannot use checkpoint/resume")
	}
	if len(e) != enc.X.Rows() {
		return nil, fmt.Errorf("core: error vector length %d vs %d rows: %w", len(e), enc.X.Rows(), ErrBadErrorVector)
	}
	return &Incremental{
		cfg:   cfg,
		feats: append([]frame.Feature(nil), feats...),
		enc:   enc,
		e:     append([]float64(nil), e...),
		memo: &sliceMemo{
			bits:    matrix.PackColumns(enc.X),
			entries: make(map[string]memoEntry),
		},
	}, nil
}

// Generation returns the number of appends applied since construction.
func (inc *Incremental) Generation() int { return inc.gen }

// Rows returns the accumulated row count.
func (inc *Incremental) Rows() int { return len(inc.e) }

// Stats returns the current memo statistics.
func (inc *Incremental) Stats() IncrementalStats {
	return IncrementalStats{
		Generation: inc.gen,
		Rows:       len(inc.e),
		Entries:    len(inc.memo.entries),
		Hits:       inc.memo.hits,
		Misses:     inc.memo.misses,
	}
}

// Append folds one applied frame.Appender batch into the evaluator: the
// packed bitset is column-remapped if a feature domain grew, extended in
// place with the appended rows, the memo rekeyed, and the new rows' errors
// concatenated. errs must align with the batch (len == res.NewRows) and obey
// the same e >= 0 contract as a batch run.
func (inc *Incremental) Append(res *frame.AppendResult, errs []float64) error {
	if res == nil || res.Enc == nil {
		return fmt.Errorf("core: nil append result")
	}
	if len(errs) != res.NewRows {
		return fmt.Errorf("core: %d errors for %d appended rows: %w", len(errs), res.NewRows, ErrBadErrorVector)
	}
	for i, v := range errs {
		if v < 0 || v != v {
			return fmt.Errorf("core: invalid error %v at appended row %d: %w", v, i, ErrBadErrorVector)
		}
	}
	if res.Enc.X.Rows() != len(inc.e)+res.NewRows {
		return fmt.Errorf("core: append result has %d rows, evaluator holds %d + %d new",
			res.Enc.X.Rows(), len(inc.e), res.NewRows)
	}
	if res.ColRemap != nil {
		if err := inc.memo.bits.RemapCols(res.Enc.Width(), res.ColRemap); err != nil {
			return err
		}
		inc.memo.rekey(res.ColRemap)
	}
	if err := inc.memo.bits.AppendRows(res.Enc.X); err != nil {
		return err
	}
	// Full copy, not append-in-place: a Result decoded from the previous
	// generation must keep its view, and the old backing array may be shared.
	e := make([]float64, 0, len(inc.e)+len(errs))
	e = append(append(e, inc.e...), errs...)
	inc.e = e
	inc.enc = res.Enc
	inc.feats = append(inc.feats[:0:0], res.DS.Features...)
	inc.gen++
	return nil
}

// Run evaluates the current generation and returns its exact top-K. The
// result is bit-identical to RunEncoded over the accumulated encoding with
// BitsetEval = BitsetOn.
func (inc *Incremental) Run(ctx context.Context) (*Result, error) {
	return runEncoded(ctx, inc.enc, inc.feats, inc.e, nil, inc.cfg, inc.memo)
}
