package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"

	"sliceline/internal/frame"
)

// This file defines the FNV fingerprints shared by the checkpoint machinery
// and the server-side result cache (internal/server). Both consumers need the
// same question answered — "are these the inputs of that earlier run?" — so
// they share one definition and one test, instead of drifting apart.

// sigHasher wraps an FNV-64a stream with the fixed-width little-endian
// encoders every signature in this package uses.
type sigHasher struct {
	h interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
}

func newSigHasher() sigHasher { return sigHasher{h: fnv.New64a()} }

func (s sigHasher) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	s.h.Write(b[:])
}

func (s sigHasher) f64(v float64) { s.u64(math.Float64bits(v)) }

func (s sigHasher) flag(v bool) {
	if v {
		s.u64(1)
	} else {
		s.u64(0)
	}
}

func (s sigHasher) sum() uint64 { return s.h.Sum64() }

// DataSignature fingerprints the data inputs of an enumeration run: the
// one-hot matrix (dimensions and all three CSR components), the error vector
// and the optional weight vector (nil for unweighted runs). Two datasets with
// the same signature produce the same enumeration under the same
// configuration; content-addressed stores (the server's dataset registry)
// key on it directly.
func DataSignature(enc *frame.Encoding, e, w []float64) uint64 {
	s := newSigHasher()
	s.u64(uint64(enc.X.Rows()))
	s.u64(uint64(enc.X.Cols()))
	rowPtr, colIdx, val := enc.X.Components()
	for _, v := range rowPtr {
		s.u64(uint64(v))
	}
	for _, v := range colIdx {
		s.u64(uint64(v))
	}
	for _, v := range val {
		s.f64(v)
	}
	s.u64(uint64(len(e)))
	for _, v := range e {
		s.f64(v)
	}
	s.u64(uint64(len(w)))
	for _, v := range w {
		s.f64(v)
	}
	return s.sum()
}

// ConfigSignature fingerprints the configuration switches that alter which
// candidates are generated, evaluated, or how their statistics are summed.
// The config must have defaults resolved (WithDefaults) so that, e.g., an
// explicit K=4 and a defaulted K hash identically.
//
// MaxLevel is deliberately excluded — resuming with a deeper level cap
// legitimately extends a shallower run, because the per-level state is
// identical up to the old cap. BlockSize, BitsetEval and the evaluator are
// excluded too: re-running under a different execution plan produces the same
// result, with the usual cross-plan last-ULP caveat on summed statistics.
// Callers that
// must distinguish depth-capped results (the server's result cache) combine
// this with MaxLevel explicitly.
func ConfigSignature(cfg Config) uint64 {
	s := newSigHasher()
	s.u64(uint64(cfg.K))
	s.u64(uint64(cfg.Sigma))
	s.f64(cfg.Alpha)
	s.u64(uint64(cfg.MaxCandidatesPerLevel))
	s.flag(cfg.DisableSizePruning)
	s.flag(cfg.DisableScorePruning)
	s.flag(cfg.DisableParentHandling)
	s.flag(cfg.DisableDedup)
	s.flag(cfg.PriorityEnumeration)
	return s.sum()
}

// Signature combines DataSignature and ConfigSignature into the single
// fingerprint the checkpoint file records: everything a resumed run must
// agree on with the run that wrote the checkpoint.
func Signature(enc *frame.Encoding, e, w []float64, cfg Config) uint64 {
	s := newSigHasher()
	s.u64(DataSignature(enc, e, w))
	s.u64(ConfigSignature(cfg))
	return s.sum()
}
