package core

import (
	"context"
	"sort"
)

// evalWithPriority implements priority-based enumeration (the future-work
// direction of Section 7) inside the level-wise framework: candidates are
// evaluated in descending order of their Equation-3 score upper bound, in
// chunks, and after each chunk the remaining candidates are re-pruned
// against the top-K threshold, which the just-evaluated high-potential
// slices have typically raised. Results are identical to plain evaluation —
// any candidate dropped mid-level has an upper bound at or below the final
// threshold, so neither it nor its descendants can enter the top-K — but
// the evaluated-candidate count can only shrink.
//
// It returns the level restricted to the actually evaluated candidates and
// the number of additionally pruned ones.
func (st *state) evalWithPriority(ctx context.Context, cand *level, lvl int, tk *topK) (*level, int, error) {
	n := cand.size()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if len(cand.ub) == n {
		sort.Slice(order, func(a, b int) bool { return cand.ub[order[a]] > cand.ub[order[b]] })
	}

	chunk := n / 8
	if chunk < 256 {
		chunk = 256
	}
	out := &level{}
	pruned := 0
	scorePruning := !st.cfg.DisableScorePruning && len(cand.ub) == n

	for lo := 0; lo < n; {
		// Collect the next chunk of still-promising candidates.
		sck := tk.threshold()
		var pick []int
		for lo < n && len(pick) < chunk {
			i := order[lo]
			lo++
			if scorePruning && cand.ub[i] <= sck {
				// The bounds are sorted descending, so every remaining
				// candidate fails too.
				pruned += n - lo + 1
				lo = n
				break
			}
			pick = append(pick, i)
		}
		if len(pick) == 0 {
			break
		}
		cols := make([][]int, len(pick))
		for k, i := range pick {
			cols[k] = cand.cols[i]
		}
		sub := &level{
			cols: cols,
			sc:   make([]float64, len(pick)),
			se:   make([]float64, len(pick)),
			sm:   make([]float64, len(pick)),
			ss:   make([]float64, len(pick)),
		}
		if err := st.evalSlices(ctx, sub, lvl); err != nil {
			return nil, 0, err
		}
		for k := range sub.cols {
			tk.offer(sub.cols[k], sub.sc[k], sub.ss[k], sub.se[k], sub.sm[k])
		}
		out.cols = append(out.cols, sub.cols...)
		out.sc = append(out.sc, sub.sc...)
		out.se = append(out.se, sub.se...)
		out.sm = append(out.sm, sub.sm...)
		out.ss = append(out.ss, sub.ss...)
	}
	return out, pruned, nil
}
