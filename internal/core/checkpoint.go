package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
)

// checkpointVersion guards the on-disk layout; a mismatch refuses to resume.
const checkpointVersion = 1

// checkpointState is the gob-encoded on-disk form of a run's state after one
// completed lattice level. Restoring it and re-running the remaining levels
// reproduces the uninterrupted run exactly: enumeration is level-local (the
// level-L candidates depend only on the level-(L-1) frontier and the top-K
// threshold), and gob round-trips float64 bit-exactly, so a resumed run's
// top-K is byte-identical.
type checkpointState struct {
	Version int
	Sig     uint64
	Level   int // last completed lattice level

	TopK     []checkpointEntry
	Frontier checkpointLevel

	Levels    []LevelStats
	Truncated bool
}

type checkpointEntry struct {
	Cols  []int
	Score float64
	SS    float64
	SE    float64
	SM    float64
}

type checkpointLevel struct {
	Cols [][]int
	Sc   []float64
	Se   []float64
	Sm   []float64
	Ss   []float64
}

// checkpointer persists enumeration state level by level. A nil checkpointer
// is valid and does nothing, so the enumeration loop calls it unconditionally.
type checkpointer struct {
	path string
	sig  uint64
}

// save writes the state after completed level lvl, atomically (temp file +
// rename), so a crash mid-write leaves the previous checkpoint intact.
func (c *checkpointer) save(lvl int, tk *topK, frontier *level, res *Result) error {
	if c == nil {
		return nil
	}
	st := checkpointState{
		Version:   checkpointVersion,
		Sig:       c.sig,
		Level:     lvl,
		Levels:    res.Levels,
		Truncated: res.Truncated,
	}
	for _, e := range tk.entries {
		st.TopK = append(st.TopK, checkpointEntry{
			Cols: e.cols, Score: e.score, SS: e.ss, SE: e.se, SM: e.sm,
		})
	}
	st.Frontier = checkpointLevel{
		Cols: frontier.cols,
		Sc:   frontier.sc, Se: frontier.se, Sm: frontier.sm, Ss: frontier.ss,
	}
	tmp := c.path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(&st); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: encoding checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, c.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: committing checkpoint: %w", err)
	}
	return nil
}

// load restores a checkpoint into the run's top-K and frontier, returning the
// last completed level, or 0 when no checkpoint file exists (fresh start).
// A checkpoint written for different data or configuration is an error.
func (c *checkpointer) load(tk *topK, frontier *level, res *Result) (int, error) {
	f, err := os.Open(c.path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("core: opening checkpoint: %w", err)
	}
	defer f.Close()
	var st checkpointState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return 0, fmt.Errorf("core: decoding checkpoint %s: %w", c.path, err)
	}
	if st.Version != checkpointVersion {
		return 0, fmt.Errorf("core: checkpoint %s has version %d, this build writes %d", c.path, st.Version, checkpointVersion)
	}
	if st.Sig != c.sig {
		return 0, fmt.Errorf("core: checkpoint %s was written for different data or configuration (signature %x vs %x); refusing to resume", c.path, st.Sig, c.sig)
	}
	if st.Level < 1 {
		return 0, fmt.Errorf("core: checkpoint %s has invalid level %d", c.path, st.Level)
	}
	tk.entries = tk.entries[:0]
	for _, e := range st.TopK {
		tk.entries = append(tk.entries, tkEntry{
			cols: e.Cols, score: e.Score, ss: e.SS, se: e.SE, sm: e.SM,
		})
	}
	frontier.cols = st.Frontier.Cols
	frontier.sc = st.Frontier.Sc
	frontier.se = st.Frontier.Se
	frontier.sm = st.Frontier.Sm
	frontier.ss = st.Frontier.Ss
	frontier.ub = nil
	res.Levels = st.Levels
	res.Truncated = st.Truncated
	return st.Level, nil
}
