package core

import (
	"fmt"
	"math/bits"
	"sync"

	"sliceline/internal/matrix"
)

// BitsetMode selects the slice-membership kernel: the packed-bitset
// AND+popcount kernel over one-hot columns, the fused CSR kernel, or an
// automatic per-dataset choice by column density (the default).
type BitsetMode int

// BitsetEval knob values.
const (
	// BitsetAuto picks the bitset kernel when the average one-hot column
	// carries at least one set bit per 64-bit word (density >= 1/64), the
	// break-even point against the CSR kernel's O(nnz) scans.
	BitsetAuto BitsetMode = iota
	// BitsetOn forces the packed-bitset kernel.
	BitsetOn
	// BitsetOff forces the fused CSR kernel.
	BitsetOff
)

// String returns the knob spelling accepted by ParseBitsetMode.
func (m BitsetMode) String() string {
	switch m {
	case BitsetAuto:
		return "auto"
	case BitsetOn:
		return "on"
	case BitsetOff:
		return "off"
	default:
		return fmt.Sprintf("BitsetMode(%d)", int(m))
	}
}

// ParseBitsetMode parses a BitsetEval knob value. The empty string parses as
// BitsetAuto so zero-valued wire configs inherit the default.
func ParseBitsetMode(s string) (BitsetMode, error) {
	switch s {
	case "", "auto":
		return BitsetAuto, nil
	case "on":
		return BitsetOn, nil
	case "off":
		return BitsetOff, nil
	default:
		return BitsetAuto, fmt.Errorf("core: unknown bitset mode %q (want auto, on or off)", s)
	}
}

// Kernel evaluates slice candidates against one row partition of the one-hot
// matrix, selecting per evaluation between the fused CSR kernel
// (EvalPartitionWeighted) and the packed-bitset kernel (EvalBitsetWeighted).
// The bitset packing happens at most once per Kernel, on the first
// evaluation that takes the bitset path, and is shared by all subsequent
// levels — the pack cost is O(nnz + rows·cols/64) against per-level scans it
// saves. A Kernel is safe for concurrent Eval calls on disjoint output
// slices.
type Kernel struct {
	x    *matrix.CSR
	e, w []float64
	mode BitsetMode

	profitable bool // density heuristic, fixed at construction
	packOnce   sync.Once
	bits       *matrix.ColumnBits
}

// NewKernel wraps a partition (one-hot matrix, error vector, optional row
// weights) with kernel selection under the given mode.
func NewKernel(x *matrix.CSR, e, w []float64, mode BitsetMode) *Kernel {
	return &Kernel{x: x, e: e, w: w, mode: mode, profitable: bitsetProfitable(x)}
}

// bitsetProfitable reports whether the packed-bitset kernel is expected to
// beat the fused CSR kernel on this matrix. The bitset kernel touches
// ceil(n/64) words per candidate column regardless of sparsity; the CSR
// kernel touches only stored entries. Break-even sits where the average
// column carries one set bit per 64-bit word, i.e. column density 1/64 —
// one-hot features with domains below ~64 are above it, ultra-high-cardinality
// features (large Criteo-style domains) fall below it.
func bitsetProfitable(x *matrix.CSR) bool {
	n, c := x.Rows(), x.Cols()
	if n == 0 || c == 0 {
		return false
	}
	return float64(x.NNZ())*64 >= float64(n)*float64(c)
}

// Rows returns the partition's row count.
func (k *Kernel) Rows() int { return k.x.Rows() }

// UsesBitset reports which path Eval will take under the kernel's mode.
func (k *Kernel) UsesBitset() bool {
	switch k.mode {
	case BitsetOn:
		return true
	case BitsetOff:
		return false
	default:
		return k.profitable
	}
}

// Backend names the selected path for tracing ("bitset" or "fused").
func (k *Kernel) Backend() string {
	if k.UsesBitset() {
		return "bitset"
	}
	return "fused"
}

// Bits returns the packed columns, packing them on first use.
func (k *Kernel) Bits() *matrix.ColumnBits {
	k.packOnce.Do(func() { k.bits = matrix.PackColumns(k.x) })
	return k.bits
}

// Eval evaluates the level-L candidates, accumulating into ss/se/sm (callers
// pass zeroed slices of length len(cols)), with the same statistics contract
// as EvalPartitionWeighted. blockSize only applies to the CSR path; the
// bitset path parallelizes over candidates instead of sharing scans.
func (k *Kernel) Eval(cols [][]int, level, blockSize int, ss, se, sm []float64) {
	if k.UsesBitset() {
		EvalBitsetWeighted(k.Bits(), k.e, k.w, cols, ss, se, sm)
		return
	}
	EvalPartitionWeighted(k.x, k.e, k.w, cols, level, blockSize, ss, se, sm)
}

// EvalBitset evaluates candidates against packed one-hot columns with unit
// row weights. See EvalBitsetWeighted.
func EvalBitset(cb *matrix.ColumnBits, e []float64, cols [][]int, ss, se, sm []float64) {
	EvalBitsetWeighted(cb, e, nil, cols, ss, se, sm)
}

// EvalBitsetWeighted is the packed-bitset evaluation kernel: per candidate,
// the bitsets of its one-hot columns are ANDed word-wise and the surviving
// rows counted with OnesCount64 (slice sizes) and enumerated with
// TrailingZeros64 (error sums and maxima). Candidates are split across
// MaxWorkers goroutines; every candidate is computed whole, in ascending row
// order, so results are deterministic independent of scheduling. It
// accumulates into ss/se/sm like EvalPartitionWeighted (nil w means unit
// weights).
func EvalBitsetWeighted(cb *matrix.ColumnBits, e, w []float64, cols [][]int, ss, se, sm []float64) {
	n := len(cols)
	if n == 0 {
		return
	}
	matrix.ParallelFor(n, func(lo, hi int) {
		evalBitsetRange(cb, e, w, cols, lo, hi, ss, se, sm)
	})
}

// EvalBitsetSerial evaluates all candidates on the calling goroutine. It is
// the allocation-free level loop the bench regression gate pins at
// 0 allocs/op, and the kernel the parallel wrapper shards.
func EvalBitsetSerial(cb *matrix.ColumnBits, e, w []float64, cols [][]int, ss, se, sm []float64) {
	evalBitsetRange(cb, e, w, cols, 0, len(cols), ss, se, sm)
}

// evalBitsetRange evaluates candidates [s0,s1). It performs no allocations:
// the only state is the accumulator scalars and word cursors, so the hot
// loop is AND → OnesCount64 → TrailingZeros64 over the packed words.
func evalBitsetRange(cb *matrix.ColumnBits, e, w []float64, cols [][]int, s0, s1 int, ss, se, sm []float64) {
	words := cb.Words()
	for s := s0; s < s1; s++ {
		cand := cols[s]
		nc := len(cand)
		if nc == 0 {
			continue
		}
		// Hoist the first three column slices; deeper conjunctions (rare —
		// lattice levels beyond 3 have few surviving candidates) index the
		// packed storage per word.
		a := cb.Col(cand[0])
		var b, c []uint64
		if nc > 1 {
			b = cb.Col(cand[1])
		}
		if nc > 2 {
			c = cb.Col(cand[2])
		}
		var sumS, sumE, maxE float64
		for k := 0; k < words; k++ {
			m := a[k]
			if m == 0 {
				continue
			}
			if b != nil {
				m &= b[k]
				if c != nil && m != 0 {
					m &= c[k]
					for j := 3; j < nc && m != 0; j++ {
						m &= cb.Col(cand[j])[k]
					}
				}
			}
			if m == 0 {
				continue
			}
			base := k << 6
			if w == nil {
				sumS += float64(bits.OnesCount64(m))
				for t := m; t != 0; t &= t - 1 {
					ei := e[base+bits.TrailingZeros64(t)]
					sumE += ei
					if ei > maxE {
						maxE = ei
					}
				}
			} else {
				for t := m; t != 0; t &= t - 1 {
					i := base + bits.TrailingZeros64(t)
					wi := w[i]
					ei := e[i]
					sumS += wi
					sumE += wi * ei
					if wi > 0 && ei > maxE {
						maxE = ei
					}
				}
			}
		}
		ss[s] += sumS
		se[s] += sumE
		if maxE > sm[s] {
			sm[s] = maxE
		}
	}
}

// evalBitsetFrom evaluates one candidate (original one-hot column ids over
// the full-width packed matrix) for rows [from, cb.Rows()), seeded with the
// accumulated statistics of rows [0, from). Seeding with a prior generation's
// stored values and continuing in ascending row order produces the same
// float64 addition sequence as one full sequential pass, so the result is
// bit-identical to evaluating all rows from scratch — the property the
// incremental evaluator's differential tests pin. (The one aggregate whose
// addition grouping differs, the unweighted whole-word popcount into sumS,
// stays exact because slice sizes are integers below 2^53.) from = 0 with
// zero seeds is a plain full evaluation.
func evalBitsetFrom(cb *matrix.ColumnBits, e, w []float64, cand []int, from int, seedSS, seedSE, seedSM float64) (float64, float64, float64) {
	sumS, sumE, maxE := seedSS, seedSE, seedSM
	nc := len(cand)
	if nc == 0 || from >= cb.Rows() {
		return sumS, sumE, maxE
	}
	words := cb.Words()
	a := cb.Col(cand[0])
	var b, c []uint64
	if nc > 1 {
		b = cb.Col(cand[1])
	}
	if nc > 2 {
		c = cb.Col(cand[2])
	}
	w0 := from >> 6
	mask0 := ^uint64(0) << uint(from&63)
	for k := w0; k < words; k++ {
		m := a[k]
		if k == w0 {
			m &= mask0
		}
		if m == 0 {
			continue
		}
		if b != nil {
			m &= b[k]
			if c != nil && m != 0 {
				m &= c[k]
				for j := 3; j < nc && m != 0; j++ {
					m &= cb.Col(cand[j])[k]
				}
			}
		}
		if m == 0 {
			continue
		}
		base := k << 6
		if w == nil {
			sumS += float64(bits.OnesCount64(m))
			for t := m; t != 0; t &= t - 1 {
				ei := e[base+bits.TrailingZeros64(t)]
				sumE += ei
				if ei > maxE {
					maxE = ei
				}
			}
		} else {
			for t := m; t != 0; t &= t - 1 {
				i := base + bits.TrailingZeros64(t)
				wi := w[i]
				ei := e[i]
				sumS += wi
				sumE += wi * ei
				if wi > 0 && ei > maxE {
					maxE = ei
				}
			}
		}
	}
	return sumS, sumE, maxE
}
