package core

import (
	"math/rand"
	"strings"
	"testing"

	"sliceline/internal/frame"
)

func TestDecodeUsesFeatureNamesAndLabels(t *testing.T) {
	ds := &frame.Dataset{
		Name: "labeled",
		X0:   frame.NewIntMatrix(40, 2),
		Features: []frame.Feature{
			{Name: "color", Domain: 2, Labels: []string{"red", "blue"}},
			{Name: "shape", Domain: 2, Labels: []string{"circle", "square"}},
		},
	}
	e := make([]float64, 40)
	for i := 0; i < 40; i++ {
		ds.X0.Set(i, 0, 1+i%2)
		ds.X0.Set(i, 1, 1+(i/2)%2)
		if i%2 == 0 && (i/2)%2 == 1 {
			e[i] = 1 // color=red AND shape=square is the bad slice
		}
	}
	res, err := Run(ds, e, Config{K: 1, Sigma: 2, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 1 {
		t.Fatalf("topK = %d, want 1", len(res.TopK))
	}
	s := res.TopK[0].String()
	if !strings.Contains(s, "color=red") || !strings.Contains(s, "shape=square") {
		t.Fatalf("decoded slice %q missing labeled predicates", s)
	}
}

func TestResultTSAndTR(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	ds, e := randomDataset(rng, 150, 3, 3)
	res, err := Run(ds, e, Config{K: 5, Sigma: 3, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 {
		t.Skip("no slices in this draw")
	}
	ts := res.TS(ds.NumFeatures())
	tr := res.TR()
	if len(ts) != len(res.TopK) || len(tr) != len(res.TopK) {
		t.Fatalf("TS/TR lengths %d/%d vs %d slices", len(ts), len(tr), len(res.TopK))
	}
	for i, s := range res.TopK {
		nonzero := 0
		for f, v := range ts[i] {
			if v == 0 {
				continue
			}
			nonzero++
			found := false
			for _, p := range s.Predicates {
				if p.Feature == f && p.Value == v {
					found = true
				}
			}
			if !found {
				t.Errorf("TS row %d has %d@%d not in predicates", i, v, f)
			}
		}
		if nonzero != len(s.Predicates) {
			t.Errorf("TS row %d has %d assignments, want %d", i, nonzero, len(s.Predicates))
		}
		if tr[i][0] != s.Score || tr[i][3] != float64(s.Size) {
			t.Errorf("TR row %d = %v does not match slice stats", i, tr[i])
		}
	}
}

func TestPredicateStringWithoutLabel(t *testing.T) {
	p := Predicate{Name: "age", Value: 3}
	if got := p.String(); got != "age=3" {
		t.Errorf("String = %q, want age=3", got)
	}
	p.Label = "[30,40)"
	if got := p.String(); got != "age=[30,40)" {
		t.Errorf("String = %q, want age=[30,40)", got)
	}
}
