package core

import (
	"errors"
	"math/rand"
	"testing"

	"sliceline/internal/fptol"
	"sliceline/internal/frame"
	"sliceline/internal/matrix"
)

func TestParseBitsetModeRoundTrip(t *testing.T) {
	for _, m := range []BitsetMode{BitsetAuto, BitsetOn, BitsetOff} {
		got, err := ParseBitsetMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseBitsetMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if got, err := ParseBitsetMode(""); err != nil || got != BitsetAuto {
		t.Errorf("empty mode = %v, %v; want BitsetAuto", got, err)
	}
	if _, err := ParseBitsetMode("sometimes"); err == nil {
		t.Error("ParseBitsetMode accepted an unknown spelling")
	}
	if s := BitsetMode(42).String(); s != "BitsetMode(42)" {
		t.Errorf("out-of-domain String() = %q", s)
	}
}

func TestValidateRejectsBadBitsetMode(t *testing.T) {
	cfg := Config{K: 1, Sigma: 1, Alpha: 0.5, BitsetEval: BitsetMode(-1)}
	if err := cfg.Validate(); !errors.Is(err, ErrBadBitsetMode) {
		t.Fatalf("Validate() = %v, want ErrBadBitsetMode", err)
	}
	cfg.BitsetEval = BitsetOn
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate() with BitsetOn = %v", err)
	}
}

// TestKernelModeSelection pins the mode override and the auto heuristic:
// forced modes ignore density, auto follows the 1/64 column-density
// break-even of bitsetProfitable.
func TestKernelModeSelection(t *testing.T) {
	// Dense one-hot block: every row has a 1 in each of 2 columns ->
	// density 1/2, far above 1/64.
	var dense []matrix.Triple
	for i := 0; i < 128; i++ {
		dense = append(dense, matrix.Triple{Row: i, Col: 0, Val: 1}, matrix.Triple{Row: i, Col: 1, Val: 1})
	}
	xDense := matrix.CSRFromTriples(128, 2, dense)
	// Ultra-sparse block: one stored entry in a 128x128 matrix ->
	// density 1/16384, far below 1/64.
	xSparse := matrix.CSRFromTriples(128, 128, []matrix.Triple{{Row: 0, Col: 0, Val: 1}})

	e := make([]float64, 128)
	for _, tc := range []struct {
		name string
		x    *matrix.CSR
		mode BitsetMode
		want bool
	}{
		{"auto dense", xDense, BitsetAuto, true},
		{"auto sparse", xSparse, BitsetAuto, false},
		{"forced on sparse", xSparse, BitsetOn, true},
		{"forced off dense", xDense, BitsetOff, false},
	} {
		k := NewKernel(tc.x, e, nil, tc.mode)
		if k.UsesBitset() != tc.want {
			t.Errorf("%s: UsesBitset() = %v, want %v", tc.name, k.UsesBitset(), tc.want)
		}
		wantBackend := "fused"
		if tc.want {
			wantBackend = "bitset"
		}
		if k.Backend() != wantBackend {
			t.Errorf("%s: Backend() = %q, want %q", tc.name, k.Backend(), wantBackend)
		}
	}
}

func TestBitsetProfitableDegenerate(t *testing.T) {
	if bitsetProfitable(matrix.CSRFromTriples(0, 4, nil)) {
		t.Error("zero-row matrix reported profitable")
	}
	if bitsetProfitable(matrix.CSRFromTriples(4, 0, nil)) {
		t.Error("zero-column matrix reported profitable")
	}
}

// TestBitsetKernelMatchesCSR: the packed-bitset kernel and the fused CSR
// kernel compute the same slice statistics on identical inputs — sizes and
// maxima bit-for-bit, error sums within the repository summation tolerance
// (the two kernels add matching rows in the same ascending order but the CSR
// path accumulates through block partials).
func TestBitsetKernelMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 5; trial++ {
		n := 100 + rng.Intn(400)
		ds, e := randomDataset(rng, n, 4+rng.Intn(3), 4)
		enc, err := frame.OneHot(ds)
		if err != nil {
			t.Fatal(err)
		}
		var w []float64
		if trial%2 == 1 {
			w = make([]float64, n)
			for i := range w {
				w[i] = 0.5 + rng.Float64()*2
			}
		}
		var singles, pairs [][]int
		for c1 := 0; c1 < enc.Width(); c1++ {
			singles = append(singles, []int{c1})
			for c2 := c1 + 1; c2 < enc.Width(); c2++ {
				if enc.FeatureOf(c1) != enc.FeatureOf(c2) {
					pairs = append(pairs, []int{c1, c2})
				}
			}
		}
		cb := matrix.PackColumns(enc.X)
		// The CSR kernel requires a homogeneous candidate list (it counts
		// matched columns against the level), so compare one level at a time.
		for level, cols := range map[int][][]int{1: singles, 2: pairs} {
			nc := len(cols)
			ssB, seB, smB := make([]float64, nc), make([]float64, nc), make([]float64, nc)
			ssC, seC, smC := make([]float64, nc), make([]float64, nc), make([]float64, nc)
			EvalBitsetSerial(cb, e, w, cols, ssB, seB, smB)
			EvalPartitionWeighted(enc.X, e, w, cols, level, 16, ssC, seC, smC)
			for j := 0; j < nc; j++ {
				if ssB[j] != ssC[j] {
					t.Fatalf("trial %d L%d cand %v: size %v (bitset) vs %v (csr)", trial, level, cols[j], ssB[j], ssC[j])
				}
				if smB[j] != smC[j] {
					t.Fatalf("trial %d L%d cand %v: max %v (bitset) vs %v (csr)", trial, level, cols[j], smB[j], smC[j])
				}
				if !fptol.DefaultTol.Close(seB[j], seC[j]) {
					t.Fatalf("trial %d L%d cand %v: error sum %v (bitset) vs %v (csr)", trial, level, cols[j], seB[j], seC[j])
				}
			}
		}
	}
}

// TestKernelPacksOnce: the packed representation is built lazily and shared
// across Eval calls — repeated Bits() returns the same backing object.
func TestKernelPacksOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, e := randomDataset(rng, 200, 4, 3)
	enc, err := frame.OneHot(ds)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKernel(enc.X, e, nil, BitsetOn)
	if k.Bits() != k.Bits() {
		t.Fatal("Bits() repacked on second call")
	}
	if k.Rows() != 200 {
		t.Fatalf("Rows() = %d", k.Rows())
	}
}
