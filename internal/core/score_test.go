package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sliceline/internal/fptol"
)

func TestScoreOfFullDatasetIsZero(t *testing.T) {
	// Independent of alpha, the score of the original X is always 0
	// (Section 2.2, property two).
	e := []float64{1, 2, 3, 4}
	for _, alpha := range []float64{0.1, 0.5, 0.95, 1} {
		sc := newScorer(4, e, alpha, 1)
		if got := sc.score(4, 10); math.Abs(got) > 1e-12 {
			t.Errorf("alpha=%v: score(X) = %v, want 0", alpha, got)
		}
	}
}

func TestScoreGoldenValues(t *testing.T) {
	// n=100, total error 50, ē=0.5. Slice of size 10 with total error 20:
	// avg slice error 2, ratio 4. alpha=0.5:
	// 0.5*(4-1) - 0.5*(100/10-1) = 1.5 - 4.5 = -3.
	sc := newScorer(100, constVec(100, 0.5), 0.5, 1)
	if got := sc.score(10, 20); math.Abs(got-(-3)) > 1e-12 {
		t.Errorf("score = %v, want -3", got)
	}
	// alpha=1: pure error ratio: 1*(4-1) = 3.
	sc1 := newScorer(100, constVec(100, 0.5), 1, 1)
	if got := sc1.score(10, 20); math.Abs(got-3) > 1e-12 {
		t.Errorf("score(alpha=1) = %v, want 3", got)
	}
}

func TestScoreBalanceAtAlphaHalf(t *testing.T) {
	// "A slice with twice the relative error but half the size of another
	// slice has exactly the same score" at alpha = 0.5... this holds for the
	// additive components: err term gain equals size term loss when the
	// ratios double/halve appropriately. Verify the concrete statement:
	// slice A: size s, avg err ratio r. slice B: size s/2, ratio 2r.
	// scA = 0.5(r-1) - 0.5(n/s - 1); scB = 0.5(2r-1) - 0.5(2n/s-1)
	// scB - scA = 0.5 r - 0.5 n/s, equal when r = n/s.
	n := 1000.0
	sc := newScorer(1000, constVec(1000, 1), 0.5, 1)
	s := 100.0
	r := n / s   // ratio where the property holds exactly
	seA := r * s // avg err r with ē=1
	seB := 2 * r * (s / 2)
	a := sc.score(s, seA)
	b := sc.score(s/2, seB)
	if !fptol.DefaultTol.Close(a, b) {
		t.Errorf("balanced scores differ: %v vs %v", a, b)
	}
}

func TestScoreEmptySlice(t *testing.T) {
	sc := newScorer(10, constVec(10, 1), 0.5, 1)
	if got := sc.score(0, 0); got != -math.MaxFloat64 {
		t.Errorf("score(empty) = %v, want most negative", got)
	}
}

func TestScorePerfectModel(t *testing.T) {
	// ē = 0: no slice can be problematic; scores are <= 0.
	sc := newScorer(10, constVec(10, 0), 0.5, 1)
	if got := sc.score(5, 0); got > 0 {
		t.Errorf("score with zero avg error = %v, want <= 0", got)
	}
}

func TestUpperBoundDominatesFeasibleScores(t *testing.T) {
	// For any feasible child (size in [sigma, ssUB], error respecting
	// se <= min(seUB, size*smUB)), the bound must dominate its score.
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 100 + rng.Intn(900)
		sigma := 1 + rng.Intn(20)
		alpha := 0.05 + 0.95*rng.Float64()
		e := make([]float64, n)
		for i := range e {
			e[i] = rng.Float64()
		}
		sc := newScorer(n, e, alpha, sigma)
		ssUB := float64(sigma + rng.Intn(n-sigma+1))
		smUB := rng.Float64()
		seUB := smUB * ssUB * rng.Float64() // consistent with sm bound
		ub := sc.upperBound(ssUB, seUB, smUB)
		for trial := 0; trial < 20; trial++ {
			size := float64(sigma) + rng.Float64()*(ssUB-float64(sigma))
			maxSE := math.Min(seUB, size*smUB)
			se := rng.Float64() * maxSE
			if s := sc.score(size, se); s > ub && !fptol.DefaultTol.Close(s, ub) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUpperBoundInfeasibleSize(t *testing.T) {
	sc := newScorer(100, constVec(100, 1), 0.95, 10)
	if got := sc.upperBound(5, 100, 1); got != -math.MaxFloat64 {
		t.Errorf("upperBound with ssUB < sigma = %v, want most negative", got)
	}
}

func TestUpperBoundTightAtParent(t *testing.T) {
	// The bound evaluated when the child equals the parent exactly must be
	// at least the parent's own score.
	sc := newScorer(1000, constVec(1000, 0.3), 0.9, 10)
	ss, se, sm := 50.0, 40.0, 1.0
	parent := sc.score(ss, se)
	if ub := sc.upperBound(ss, se, sm); ub < parent-1e-12 {
		t.Errorf("upperBound %v < parent score %v", ub, parent)
	}
}

func constVec(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}
