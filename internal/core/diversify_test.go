package core

import (
	"math/rand"
	"testing"

	"sliceline/internal/frame"
)

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []int
		want float64
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, 1},
		{[]int{1, 2}, []int{3, 4}, 0},
		{[]int{1, 2, 3}, []int{2, 3, 4}, 0.5},
		{nil, nil, 0},
		{[]int{1}, nil, 0},
	}
	for i, c := range cases {
		if got := jaccard(c.a, c.b); got != c.want {
			t.Errorf("case %d: jaccard = %v, want %v", i, got, c.want)
		}
	}
}

func TestDiversifyDropsNearDuplicates(t *testing.T) {
	// Duplicate-column dataset: f0 and f1 are identical, so the slices
	// f0=1 and f1=1 cover exactly the same rows.
	n := 100
	ds := &frame.Dataset{
		Name: "dup",
		X0:   frame.NewIntMatrix(n, 2),
		Features: []frame.Feature{
			{Name: "f0", Domain: 2},
			{Name: "f1", Domain: 2},
		},
	}
	e := make([]float64, n)
	for i := 0; i < n; i++ {
		v := 1 + i%2
		ds.X0.Set(i, 0, v)
		ds.X0.Set(i, 1, v)
		if v == 1 {
			e[i] = 1
		}
	}
	res, err := Run(ds, e, Config{K: 4, Sigma: 5, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) < 2 {
		t.Fatalf("need duplicate slices to test, got %d", len(res.TopK))
	}
	div, err := Diversify(ds, res.TopK, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(div) != 1 {
		t.Fatalf("diversified to %d slices, want 1 (all duplicates cover the same rows)", len(div))
	}
	if div[0].Score != res.TopK[0].Score {
		t.Fatal("diversification must keep the best slice")
	}
}

func TestDiversifyKeepsDistinctSlices(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	ds, e := randomDataset(rng, 300, 4, 3)
	res, err := Run(ds, e, Config{K: 8, Sigma: 4, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 {
		t.Skip("no slices in this draw")
	}
	// Threshold 1 - epsilon keeps everything except exact duplicates.
	div, err := Diversify(ds, res.TopK, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if len(div) == 0 {
		t.Fatal("diversification dropped everything")
	}
	// Order and scores must be preserved among kept slices.
	for i := 1; i < len(div); i++ {
		if div[i-1].Score < div[i].Score {
			t.Fatal("diversified slices out of score order")
		}
	}
	// Threshold 0 keeps only pairwise-disjoint slices.
	disjoint, err := Diversify(ds, res.TopK, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(disjoint); i++ {
		ri, _ := SliceRows(ds, disjoint[i])
		for j := i + 1; j < len(disjoint); j++ {
			rj, _ := SliceRows(ds, disjoint[j])
			if jaccard(ri, rj) > 0 {
				t.Fatal("threshold 0 kept overlapping slices")
			}
		}
	}
}

func TestDiversifyInvalidSlice(t *testing.T) {
	ds := &frame.Dataset{
		Name:     "d",
		X0:       frame.NewIntMatrix(1, 1),
		Features: []frame.Feature{{Name: "f", Domain: 1}},
	}
	ds.X0.Set(0, 0, 1)
	bad := []Slice{{Predicates: []Predicate{{Feature: 9, Value: 1}}}}
	if _, err := Diversify(ds, bad, 0.5); err == nil {
		t.Fatal("expected error for invalid predicate")
	}
}
