package core

import (
	"fmt"

	"sliceline/internal/frame"
)

// SliceRows returns the indices of all dataset rows belonging to the slice,
// in ascending order. Model debugging workflows use this to inspect the
// offending tuples, source additional data for the subgroup, or route the
// subgroup to a specialized model.
func SliceRows(ds *frame.Dataset, s Slice) ([]int, error) {
	for _, p := range s.Predicates {
		if p.Feature < 0 || p.Feature >= ds.NumFeatures() {
			return nil, fmt.Errorf("core: predicate feature %d out of range [0,%d)", p.Feature, ds.NumFeatures())
		}
		if p.Value < 1 || p.Value > ds.Features[p.Feature].Domain {
			return nil, fmt.Errorf("core: predicate value %d out of domain [1,%d] for feature %q",
				p.Value, ds.Features[p.Feature].Domain, ds.Features[p.Feature].Name)
		}
	}
	var rows []int
	for i := 0; i < ds.NumRows(); i++ {
		match := true
		for _, p := range s.Predicates {
			if ds.X0.At(i, p.Feature) != p.Value {
				match = false
				break
			}
		}
		if match {
			rows = append(rows, i)
		}
	}
	return rows, nil
}
