package core

import (
	"math/rand"
	"testing"
)

// TestPriorityEnumerationExact: priority-based enumeration must return the
// same top-K scores as both the plain enumerator and brute force.
func TestPriorityEnumerationExact(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	trials := 25
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		ds, e := randomDataset(rng, 60+rng.Intn(120), 2+rng.Intn(4), 4)
		cfg := Config{
			K:     1 + rng.Intn(5),
			Sigma: 2 + rng.Intn(8),
			Alpha: 0.4 + 0.59*rng.Float64(),
		}
		pCfg := cfg
		pCfg.PriorityEnumeration = true
		got, err := Run(ds, e, pCfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForce(ds, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqualScores(scoresOf(got.TopK), scoresOf(want)) {
			t.Fatalf("trial %d: priority %v vs brute force %v", trial, scoresOf(got.TopK), scoresOf(want))
		}
	}
}

// TestPriorityEnumerationNeverEvaluatesMore: the re-pruning between chunks
// can only reduce the number of evaluated candidates.
func TestPriorityEnumerationNeverEvaluatesMore(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 10; trial++ {
		ds, e := randomDataset(rng, 250, 5, 3)
		cfg := Config{K: 3, Sigma: 4, Alpha: 0.9}
		plain, err := Run(ds, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.PriorityEnumeration = true
		prio, err := Run(ds, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prio.TotalCandidates() > plain.TotalCandidates() {
			t.Fatalf("trial %d: priority evaluated %d > plain %d",
				trial, prio.TotalCandidates(), plain.TotalCandidates())
		}
	}
}

// TestPriorityWithScorePruningDisabled: without score pruning the priority
// path degenerates to ordered evaluation but must stay correct.
func TestPriorityWithScorePruningDisabled(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	ds, e := randomDataset(rng, 150, 4, 3)
	cfg := Config{K: 4, Sigma: 3, Alpha: 0.9, PriorityEnumeration: true, DisableScorePruning: true}
	got, err := Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(ds, e, Config{K: 4, Sigma: 3, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqualScores(scoresOf(got.TopK), scoresOf(want)) {
		t.Fatalf("%v vs %v", scoresOf(got.TopK), scoresOf(want))
	}
}
