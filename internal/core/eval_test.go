package core

import (
	"math/rand"
	"testing"

	"sliceline/internal/fptol"
	"sliceline/internal/frame"
)

func encodeForTest(ds *frame.Dataset) (*frame.Encoding, error) {
	return frame.OneHot(ds)
}

// TestDenseEvalMatchesFused: the dense materialized evaluation path (the
// limited-sparsity ML-system model) must produce identical results to the
// fused sparse kernel.
func TestDenseEvalMatchesFused(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		ds, e := randomDataset(rng, 200, 4, 4)
		cfg := Config{K: 6, Sigma: 3, Alpha: 0.9}
		fused, err := Run(ds, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.DenseEval = true
		dense, err := Run(ds, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqualScores(scoresOf(fused.TopK), scoresOf(dense.TopK)) {
			t.Fatalf("trial %d: fused %v vs dense %v", trial, scoresOf(fused.TopK), scoresOf(dense.TopK))
		}
	}
}

// TestEvalPartitionAdditive: evaluating two disjoint row partitions and
// summing the statistics must equal evaluating the whole matrix — the
// property the distributed backend depends on.
func TestEvalPartitionAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	ds, e := randomDataset(rng, 300, 4, 3)
	res, err := Run(ds, e, Config{K: 4, Sigma: 3, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 {
		t.Skip("no slices found in this draw")
	}
	// Rebuild the encoding and evaluate a couple of 2-column candidates
	// both whole and split.
	st := &state{}
	_ = st
	// Use the public kernel directly on the full one-hot matrix.
	enc, errEnc := encodeForTest(ds)
	if errEnc != nil {
		t.Fatal(errEnc)
	}
	cols := [][]int{{0, enc.Beg[1]}, {1, enc.Beg[1] + 1}}
	n := enc.X.Rows()
	ssW := make([]float64, 2)
	seW := make([]float64, 2)
	smW := make([]float64, 2)
	EvalPartition(enc.X, e, cols, 2, 0, ssW, seW, smW)

	half := n / 2
	top := enc.X.SelectRows(seqInts(0, half))
	bot := enc.X.SelectRows(seqInts(half, n))
	ss := make([]float64, 2)
	se := make([]float64, 2)
	sm := make([]float64, 2)
	EvalPartition(top, e[:half], cols, 2, 0, ss, se, sm)
	EvalPartition(bot, e[half:], cols, 2, 0, ss, se, sm)
	for i := 0; i < 2; i++ {
		if ss[i] != ssW[i] {
			t.Errorf("slice %d: partitioned ss %v vs whole %v", i, ss[i], ssW[i])
		}
		if !fptol.DefaultTol.Close(se[i], seW[i]) {
			t.Errorf("slice %d: partitioned se %v vs whole %v", i, se[i], seW[i])
		}
		// sm accumulates via max, which is order-independent.
		if sm[i] != smW[i] {
			t.Errorf("slice %d: partitioned sm %v vs whole %v", i, sm[i], smW[i])
		}
	}
}

func seqInts(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
