package core

import (
	"reflect"
	"testing"
)

func TestMergeCols(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
		out  []int
	}{
		{[]int{1, 2}, []int{1, 3}, 3, []int{1, 2, 3}},
		{[]int{1, 2}, []int{3, 4}, 3, nil},   // union 4 > want
		{[]int{1, 2}, []int{1, 2}, 3, nil},   // union 2 < want
		{[]int{0}, []int{5}, 2, []int{0, 5}}, // level-2 join
		{[]int{1, 4, 9}, []int{1, 4, 7}, 4, []int{1, 4, 7, 9}},
	}
	for i, c := range cases {
		got := mergeCols(c.a, c.b, c.want)
		if !reflect.DeepEqual(got, c.out) {
			t.Errorf("case %d: mergeCols(%v,%v,%d) = %v, want %v", i, c.a, c.b, c.want, got, c.out)
		}
	}
}

func TestEncodeColsUniqueAndEqual(t *testing.T) {
	a := encodeCols([]int{1, 2, 3})
	b := encodeCols([]int{1, 2, 3})
	c := encodeCols([]int{1, 2, 4})
	d := encodeCols([]int{1, 2})
	if a != b {
		t.Error("equal column lists must encode equally")
	}
	if a == c || a == d {
		t.Error("different column lists must encode differently")
	}
	// Large column ids must not collide (the paper's overflow concern).
	x := encodeCols([]int{1 << 20, 1 << 24})
	y := encodeCols([]int{1 << 20, 1<<24 + 1})
	if x == y {
		t.Error("large ids collide")
	}
}

func TestFeaturesDisjoint(t *testing.T) {
	st := &state{featOf: []int{0, 0, 1, 1, 2}}
	if !st.featuresDisjoint([]int{0, 2, 4}) {
		t.Error("columns of distinct features reported as clashing")
	}
	if st.featuresDisjoint([]int{0, 1}) {
		t.Error("two columns of feature 0 reported disjoint")
	}
	if st.featuresDisjoint([]int{2, 3, 4}) {
		t.Error("columns 2,3 share feature 1")
	}
}

func TestLessCols(t *testing.T) {
	if !lessCols([]int{1, 2}, []int{1, 3}) {
		t.Error("lexicographic comparison failed")
	}
	if !lessCols([]int{1}, []int{1, 0}) {
		t.Error("prefix must compare smaller")
	}
	if lessCols([]int{2}, []int{1, 5}) {
		t.Error("ordering inverted")
	}
}

func TestSortLevelDeterministic(t *testing.T) {
	l := &level{
		cols: [][]int{{2, 3}, {0, 1}, {1, 2}},
		sc:   []float64{1, 2, 3},
		se:   []float64{10, 20, 30},
		sm:   []float64{0.1, 0.2, 0.3},
		ss:   []float64{5, 6, 7},
	}
	sortLevel(l)
	if !reflect.DeepEqual(l.cols, [][]int{{0, 1}, {1, 2}, {2, 3}}) {
		t.Fatalf("cols = %v", l.cols)
	}
	if !reflect.DeepEqual(l.sc, []float64{2, 3, 1}) {
		t.Fatalf("sc reordered wrongly: %v", l.sc)
	}
	if !reflect.DeepEqual(l.ss, []float64{6, 7, 5}) {
		t.Fatalf("ss reordered wrongly: %v", l.ss)
	}
}
