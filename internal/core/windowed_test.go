package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"sliceline/internal/frame"
	"sliceline/internal/matrix"
)

// TestWindowedEqualsSuffixRun: a weighted run with the first r rows
// down-weighted to zero must equal an unweighted run over only the surviving
// suffix — bit-identically, because zero-weight rows contribute exact +0.0
// terms to every sum and are excluded from the max. This is the correctness
// contract of windowed slice finding ("worst slices over the last N rows").
func TestWindowedEqualsSuffixRun(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 60 + rng.Intn(60)
		ds, e := randomDataset(rng, n, 3, 4)
		retire := 1 + rng.Intn(n-20) // keep at least 20 live rows
		w := make([]float64, n)
		for i := retire; i < n; i++ {
			w[i] = 1
		}
		// Suffix dataset: same features (and so the same one-hot layout),
		// only the surviving rows.
		live := n - retire
		suffix := &frame.Dataset{
			Name:     ds.Name,
			X0:       &frame.IntMatrix{Rows: live, Cols: ds.X0.Cols, Data: ds.X0.Data[retire*ds.X0.Cols:]},
			Features: ds.Features,
		}
		cfg := Config{K: 5, Sigma: 4, Alpha: 0.9, BitsetEval: BitsetOn}
		windowed, err := RunWeighted(ds, e, w, cfg)
		if err != nil {
			t.Fatalf("trial %d: windowed: %v", trial, err)
		}
		want, err := Run(suffix, e[retire:], cfg)
		if err != nil {
			t.Fatalf("trial %d: suffix: %v", trial, err)
		}
		if !reflect.DeepEqual(windowed.TopK, want.TopK) {
			t.Fatalf("trial %d (retire %d/%d): windowed top-K differs from suffix run:\nwindowed: %+v\nsuffix:   %+v",
				trial, retire, n, windowed.TopK, want.TopK)
		}
		if windowed.N != want.N {
			t.Fatalf("trial %d: weighted N=%d vs suffix N=%d", trial, windowed.N, want.N)
		}
	}
}

// TestZeroWeightExcludedFromMaxError pins the sm contract across all three
// kernels: a retired row carrying the dataset's largest error must not leak
// into any slice's max tuple error.
func TestZeroWeightExcludedFromMaxError(t *testing.T) {
	// 4 rows, 2 one-hot columns; row 0 is in both slices, has a huge error,
	// and is retired (w=0).
	x := matrix.CSRFromTriples(4, 2, []matrix.Triple{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: 1},
		{Row: 2, Col: 0, Val: 1}, {Row: 2, Col: 1, Val: 1},
		{Row: 3, Col: 1, Val: 1},
	})
	e := []float64{100, 0.5, 0.25, 0.125}
	w := []float64{0, 1, 1, 1}
	cols := [][]int{{0}, {1}, {0, 1}}
	check := func(name string, ss, se, sm []float64) {
		t.Helper()
		wantSS := []float64{2, 2, 1}
		wantSE := []float64{0.75, 0.375, 0.25}
		wantSM := []float64{0.5, 0.25, 0.25}
		if !reflect.DeepEqual(ss, wantSS) || !reflect.DeepEqual(se, wantSE) || !reflect.DeepEqual(sm, wantSM) {
			t.Errorf("%s: ss=%v se=%v sm=%v, want ss=%v se=%v sm=%v", name, ss, se, sm, wantSS, wantSE, wantSM)
		}
	}
	ss := make([]float64, 3)
	se := make([]float64, 3)
	sm := make([]float64, 3)
	// EvalPartitionWeighted takes one level for all candidates; evaluate the
	// singles and the pair in separate calls.
	EvalPartitionWeighted(x, e, w, cols[:2], 1, 1, ss[:2], se[:2], sm[:2])
	EvalPartitionWeighted(x, e, w, cols[2:], 2, 1, ss[2:], se[2:], sm[2:])
	check("fused", ss, se, sm)

	for i := range ss {
		ss[i], se[i], sm[i] = 0, 0, 0
	}
	cb := matrix.PackColumns(x)
	EvalBitsetWeighted(cb, e, w, cols, ss, se, sm)
	check("bitset", ss, se, sm)

	for i := range ss {
		ss[i], se[i], sm[i] = 0, 0, 0
	}
	for i, c := range cols {
		ss[i], se[i], sm[i] = evalBitsetFrom(cb, e, w, c, 0, 0, 0, 0)
	}
	check("bitsetFrom", ss, se, sm)
}

// TestWindowedDenseEvalAgrees: the dense ablation path applies the same
// zero-weight exclusion.
func TestWindowedDenseEvalAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds, e := randomDataset(rng, 70, 3, 3)
	w := make([]float64, len(e))
	for i := range w {
		if i >= 20 {
			w[i] = 1
		}
	}
	cfg := Config{K: 4, Sigma: 4, Alpha: 0.9}
	fused, err := RunWeighted(ds, e, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := cfg
	dcfg.DenseEval = true
	dense, err := RunWeighted(ds, e, w, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqualScores(scoresOf(fused.TopK), scoresOf(dense.TopK)) {
		t.Fatalf("dense windowed disagrees: %v vs %v", scoresOf(fused.TopK), scoresOf(dense.TopK))
	}
	for i := range fused.TopK {
		if fused.TopK[i].MaxError != dense.TopK[i].MaxError {
			t.Fatalf("slice %d: max error %v vs %v", i, fused.TopK[i].MaxError, dense.TopK[i].MaxError)
		}
	}
}

// TestWeightValidation pins the relaxed weight contract: zeros are legal,
// negatives and NaN are not, and an all-zero vector still fails.
func TestWeightValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds, e := randomDataset(rng, 50, 3, 3)
	w := make([]float64, len(e))
	for i := range w {
		w[i] = 1
	}
	w[0] = 0
	if _, err := RunWeighted(ds, e, w, Config{Sigma: 4}); err != nil {
		t.Fatalf("zero weight among positives must be legal: %v", err)
	}
	w[1] = -1
	if _, err := RunWeighted(ds, e, w, Config{Sigma: 4}); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("negative weight: got %v, want ErrBadWeight", err)
	}
	w[1] = math.NaN()
	if _, err := RunWeighted(ds, e, w, Config{Sigma: 4}); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("NaN weight: got %v, want ErrBadWeight", err)
	}
	for i := range w {
		w[i] = 0
	}
	if _, err := RunWeighted(ds, e, w, Config{Sigma: 4}); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("all-zero weights: got %v, want ErrBadWeight", err)
	}
}
