package core

import (
	"errors"
	"fmt"
	"math"
)

// Typed sentinel errors for input validation. Every validation failure of
// Run/RunWeighted/RunEncoded wraps one of these, so callers can branch with
// errors.Is instead of matching message strings:
//
//	_, err := sliceline.Run(ds, e, cfg)
//	if errors.Is(err, core.ErrBadErrorVector) { ... }
var (
	// ErrBadAlpha marks a Config.Alpha that is NaN or infinite. (Alpha <= 0
	// selects the default and Alpha > 1 is clamped to 1, both long-standing
	// behaviors that remain accepted.)
	ErrBadAlpha = errors.New("invalid Alpha")
	// ErrEmptyDataset marks a dataset with zero rows.
	ErrEmptyDataset = errors.New("empty dataset")
	// ErrNoFeatures marks a dataset whose feature descriptors do not match
	// its encoding (including the zero-feature case).
	ErrNoFeatures = errors.New("no usable features")
	// ErrBadErrorVector marks an error vector with the wrong length or a
	// negative entry.
	ErrBadErrorVector = errors.New("invalid error vector")
	// ErrBadWeight marks a weight vector with the wrong length or a
	// non-positive entry.
	ErrBadWeight = errors.New("invalid weight vector")
	// ErrWeightedEvaluator marks the unsupported combination of row weights
	// with an external evaluator.
	ErrWeightedEvaluator = errors.New("external evaluators do not support row weights")
	// ErrBadBitsetMode marks a Config.BitsetEval outside auto/on/off.
	ErrBadBitsetMode = errors.New("invalid BitsetEval mode")
	// ErrBadBudget marks a negative Config.Budget. (Zero disables the
	// budget; any positive duration is a valid anytime bound.)
	ErrBadBudget = errors.New("invalid Budget")
	// ErrBadSignificance marks a Config.Significance that is NaN, infinite,
	// negative, or >= 1. (Zero selects DefaultSignificance.)
	ErrBadSignificance = errors.New("invalid Significance level")
)

// Validate checks the statically checkable configuration fields, returning an
// error wrapping one of the sentinel errors above, or nil. Zero values are
// always valid (they select defaults), so Validate accepts Config{}.
// Run and its variants call Validate before touching the data; callers
// building configurations programmatically can call it earlier for a
// fail-fast check.
func (c Config) Validate() error {
	if math.IsNaN(c.Alpha) || math.IsInf(c.Alpha, 0) {
		return fmt.Errorf("core: Alpha = %v: %w", c.Alpha, ErrBadAlpha)
	}
	switch c.BitsetEval {
	case BitsetAuto, BitsetOn, BitsetOff:
	default:
		return fmt.Errorf("core: BitsetEval = %d: %w", int(c.BitsetEval), ErrBadBitsetMode)
	}
	if c.Budget < 0 {
		return fmt.Errorf("core: Budget = %v: %w", c.Budget, ErrBadBudget)
	}
	if math.IsNaN(c.Significance) || math.IsInf(c.Significance, 0) || c.Significance < 0 || c.Significance >= 1 {
		return fmt.Errorf("core: Significance = %v: %w", c.Significance, ErrBadSignificance)
	}
	return nil
}
