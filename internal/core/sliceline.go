package core

import (
	"context"
	"fmt"
	"time"

	"sliceline/internal/frame"
	"sliceline/internal/matrix"
	"sliceline/internal/obs"
)

// level holds the enumerated slices of one lattice level in the reduced
// one-hot column space: per slice its sorted column list and evaluated
// statistics (the paper's S and R = [sc, se, sm, ss]).
type level struct {
	cols [][]int
	sc   []float64
	se   []float64
	sm   []float64
	ss   []float64
	ub   []float64 // score upper bounds, only under PriorityEnumeration
}

func (l *level) size() int { return len(l.cols) }

// state carries the immutable inputs of one enumeration run.
type state struct {
	cfg      Config
	sc       scorer
	x        *matrix.CSR // reduced one-hot matrix, n × l'
	kernel   *Kernel     // built-in evaluation kernel over x (bitset/CSR selection)
	e        []float64
	w        []float64 // optional row weights (nil = unit weights)
	featOf   []int     // original feature per reduced column
	valOf    []int     // 1-based value code per reduced column
	m        int       // original feature count
	eval     ExternalEvaluator
	memo     *sliceMemo // incremental statistics memo (nil on batch runs)
	origCols []int      // original one-hot column per reduced column (= cI)
	ob       coreObs    // pre-resolved metric handles (all nil when metrics are off)
	sigLevel float64    // resolved FDR level for Slice.Significant
	totSq    float64    // Σ w_i·e_i², the global total behind welchP
}

// Run executes SliceLine (Algorithm 1) on an integer-encoded dataset and a
// row-aligned non-negative error vector e, returning the top-K slices and
// per-level enumeration statistics. The error vector typically comes from
// ml.SquaredLoss or ml.Inaccuracy applied to a trained model's predictions.
func Run(ds *frame.Dataset, e []float64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), ds, e, cfg)
}

// RunContext is Run with a caller-supplied context. Cancellation is honored
// between lattice levels and propagated into external evaluators, so a
// cancelled run aborts in-flight distributed evaluations instead of waiting
// for the level to finish.
func RunContext(ctx context.Context, ds *frame.Dataset, e []float64, cfg Config) (*Result, error) {
	enc, err := frame.OneHot(ds)
	if err != nil {
		return nil, err
	}
	return RunEncodedContext(ctx, enc, ds.Features, e, cfg)
}

// RunEncoded is Run for callers that already hold the one-hot encoding,
// avoiding re-encoding across parameter sweeps. feats supplies names and
// decode labels for the result; it must align with the encoding.
func RunEncoded(enc *frame.Encoding, feats []frame.Feature, e []float64, cfg Config) (*Result, error) {
	return runEncoded(context.Background(), enc, feats, e, nil, cfg, nil)
}

// RunEncodedContext is RunEncoded with a caller-supplied context.
func RunEncodedContext(ctx context.Context, enc *frame.Encoding, feats []frame.Feature, e []float64, cfg Config) (*Result, error) {
	return runEncoded(ctx, enc, feats, e, nil, cfg, nil)
}

// RunEncodedWeighted is RunWeighted for callers that already hold the one-hot
// encoding. Weights may include zeros (rows excluded from every aggregate,
// including the max tuple error) as long as the total weight is positive —
// the mechanism behind windowed slice finding, where retired rows are
// down-weighted to zero rather than re-encoding the surviving window.
func RunEncodedWeighted(enc *frame.Encoding, feats []frame.Feature, e, w []float64, cfg Config) (*Result, error) {
	return runEncoded(context.Background(), enc, feats, e, w, cfg, nil)
}

// RunEncodedWeightedContext is RunEncodedWeighted with a caller-supplied
// context.
func RunEncodedWeightedContext(ctx context.Context, enc *frame.Encoding, feats []frame.Feature, e, w []float64, cfg Config) (*Result, error) {
	return runEncoded(ctx, enc, feats, e, w, cfg, nil)
}

// RunWeighted is Run for datasets with row weights: row i counts as w[i]
// identical rows in every size and error aggregate, so a dataset with
// duplicate rows can be deduplicated into (unique rows, weights) and
// produces exactly the same top-K as its expanded form — useful for the
// row-replication scaling setting of Figure 7(a) and for heavily skewed
// production data. Weights must be positive; non-integer weights are
// permitted (Slice.Size then reports the truncated weighted size).
func RunWeighted(ds *frame.Dataset, e, w []float64, cfg Config) (*Result, error) {
	return RunWeightedContext(context.Background(), ds, e, w, cfg)
}

// RunWeightedContext is RunWeighted with a caller-supplied context.
func RunWeightedContext(ctx context.Context, ds *frame.Dataset, e, w []float64, cfg Config) (*Result, error) {
	enc, err := frame.OneHot(ds)
	if err != nil {
		return nil, err
	}
	return runEncoded(ctx, enc, ds.Features, e, w, cfg, nil)
}

func runEncoded(ctx context.Context, enc *frame.Encoding, feats []frame.Feature, e, w []float64, cfg Config, memo *sliceMemo) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := enc.X.Rows()
	if len(e) != n {
		return nil, fmt.Errorf("core: error vector length %d vs %d rows: %w", len(e), n, ErrBadErrorVector)
	}
	if w != nil {
		if len(w) != n {
			return nil, fmt.Errorf("core: weight vector length %d vs %d rows: %w", len(w), n, ErrBadWeight)
		}
		// Zero weights are legal — a zero-weight row is excluded from every
		// aggregate (windowed runs retire rows this way) — but the total must
		// stay positive so the scorer's n and ē are well defined.
		totalW := 0.0
		for i, v := range w {
			if v < 0 || v != v {
				return nil, fmt.Errorf("core: invalid weight %v at row %d: %w", v, i, ErrBadWeight)
			}
			totalW += v
		}
		if totalW <= 0 {
			return nil, fmt.Errorf("core: total weight %v is not positive: %w", totalW, ErrBadWeight)
		}
		if cfg.Evaluator != nil {
			return nil, fmt.Errorf("core: %w", ErrWeightedEvaluator)
		}
	}
	for i, v := range e {
		if v < 0 {
			return nil, fmt.Errorf("core: negative error %v at row %d; SliceLine requires e >= 0: %w", v, i, ErrBadErrorVector)
		}
	}
	if len(feats) != enc.NumFeatures() {
		return nil, fmt.Errorf("core: %d feature descriptors vs %d encoded features: %w", len(feats), enc.NumFeatures(), ErrNoFeatures)
	}
	if n == 0 {
		return nil, fmt.Errorf("core: %w", ErrEmptyDataset)
	}
	var sc scorer
	if w == nil {
		cfg = cfg.WithDefaults(n)
		sc = newScorer(n, e, cfg.Alpha, cfg.Sigma)
	} else {
		totalW := 0.0
		for _, v := range w {
			totalW += v
		}
		cfg = cfg.WithDefaults(int(totalW))
		sc = newWeightedScorer(e, w, cfg.Alpha, cfg.Sigma)
	}
	start := time.Now()

	st := &state{cfg: cfg, sc: sc, e: e, w: w, m: enc.NumFeatures(), memo: memo, ob: newCoreObs(cfg.Metrics)}
	st.sigLevel = cfg.Significance
	if st.sigLevel == 0 {
		st.sigLevel = DefaultSignificance
	}
	for i, v := range e {
		if w != nil {
			st.totSq += w[i] * v * v
		} else {
			st.totSq += v * v
		}
	}
	st.ob.runs.Inc()
	// When the caller's context already carries a span (e.g. the server's
	// per-job span), the run parents under it so one job yields one span
	// tree; otherwise the run starts a root span on the configured tracer.
	var runSpan *obs.Span
	if parent := obs.FromContext(ctx); parent != nil {
		runSpan = parent.Child("core.run")
	} else {
		runSpan = obs.Start(cfg.Tracer, "core.run")
	}
	runSpan.SetInt("rows", int64(n))
	runSpan.SetInt("features", int64(st.m))
	runSpan.SetInt("onehot_width", int64(enc.Width()))
	runSpan.SetInt("nnz", int64(enc.X.NNZ()))
	runSpan.SetInt("k", int64(cfg.K))
	runSpan.SetInt("sigma", int64(cfg.Sigma))
	runSpan.SetFloat("alpha", cfg.Alpha)
	runSpan.SetBool("weighted", w != nil)
	runSpan.SetBool("external_evaluator", cfg.Evaluator != nil)
	defer runSpan.End()

	res := &Result{N: int(sc.n), AvgError: sc.avgErr, Sigma: cfg.Sigma, Alpha: cfg.Alpha}

	// b) Initialization: evaluate all basic (1-predicate) slices in
	// vectorized form (Equation 4): ss0 = colSums(X), se0 = (eᵀ X)ᵀ, and
	// sm0 the per-column max error. With weights, row i contributes w[i]
	// to ss0 and w[i]·e[i] to se0.
	var ss0, se0 []float64
	if w == nil {
		ss0 = matrix.ColSumsCSR(enc.X)
		se0 = matrix.VecMatCSR(e, enc.X)
	} else {
		ss0 = matrix.VecMatCSR(w, enc.X)
		we := make([]float64, n)
		for i := range we {
			we[i] = w[i] * e[i]
		}
		se0 = matrix.VecMatCSR(we, enc.X)
	}
	sm0 := make([]float64, enc.Width())
	for i := 0; i < n; i++ {
		if w != nil && w[i] == 0 {
			continue // retired row: excluded from the max like every aggregate
		}
		ei := e[i]
		colsI, _ := enc.X.RowEntries(i)
		for _, c := range colsI {
			if ei > sm0[c] {
				sm0[c] = ei
			}
		}
	}

	// cI: valid basic slices (line 12 of Algorithm 1). With size pruning
	// disabled for the ablation study, only the non-zero constraints apply.
	minSS := float64(cfg.Sigma)
	if cfg.DisableSizePruning {
		minSS = 1
	}
	var cI []int
	for j := 0; j < enc.Width(); j++ {
		if ss0[j] >= minSS && se0[j] > 0 {
			cI = append(cI, j)
		}
	}

	// Project X, the offsets and statistics to the reduced column space.
	st.x = enc.X.SelectCols(cI)
	st.kernel = NewKernel(st.x, e, w, cfg.BitsetEval)
	// The run span rides the context from here on, so external evaluators
	// (and through them the distributed runtime) parent their spans under
	// the enumeration that issued the work.
	ctx = obs.ContextWith(ctx, runSpan)
	if cfg.Evaluator != nil {
		st.eval = cfg.Evaluator
		if err := st.eval.Setup(ctx, st.x, e); err != nil {
			return nil, fmt.Errorf("core: evaluator setup: %w", err)
		}
	}
	st.origCols = cI
	st.featOf = make([]int, len(cI))
	st.valOf = make([]int, len(cI))
	cur := &level{}
	for k, j := range cI {
		st.featOf[k] = enc.FeatureOf(j)
		st.valOf[k] = enc.ValueOf(j)
		score := sc.score(ss0[j], se0[j])
		cur.cols = append(cur.cols, []int{k})
		cur.sc = append(cur.sc, score)
		cur.se = append(cur.se, se0[j])
		cur.sm = append(cur.sm, sm0[j])
		cur.ss = append(cur.ss, ss0[j])
	}

	tk := newTopK(cfg.K, float64(cfg.Sigma))

	var ck *checkpointer
	if cfg.CheckpointPath != "" {
		ck = &checkpointer{path: cfg.CheckpointPath, sig: Signature(enc, e, w, cfg)}
	}
	resumedLevel := 0
	if cfg.Resume && ck != nil {
		csp := runSpan.Child("core.checkpoint.load")
		lvl, err := ck.load(tk, cur, res)
		csp.SetInt("level", int64(lvl))
		csp.End()
		if err != nil {
			return nil, err
		}
		if lvl > 0 {
			st.ob.ckLoads.Inc()
		}
		resumedLevel = lvl
	}

	if resumedLevel == 0 {
		lsp := runSpan.Child("core.level")
		lsp.SetInt("level", 1)
		for i := range cur.cols {
			tk.offer(cur.cols[i], cur.sc[i], cur.ss[i], cur.se[i], cur.sm[i])
		}
		ls := LevelStats{
			Level:      1,
			Candidates: enc.Width(),
			Valid:      countValid(cur, float64(cfg.Sigma)),
			Elapsed:    time.Since(start),
		}
		res.Levels = append(res.Levels, ls)
		lsp.SetInt("candidates", int64(ls.Candidates))
		lsp.SetInt("valid", int64(ls.Valid))
		lsp.SetFloat("threshold", tk.threshold())
		st.ob.levels.Inc()
		st.ob.candidates.Add(int64(ls.Candidates))
		st.ob.threshold.Set(tk.threshold())
		st.ob.levelSecs.Observe(time.Since(start).Seconds())
		lsp.End()
		// Persist before the progress callback: a run killed inside the
		// callback resumes from the level it just reported.
		if err := st.saveCheckpoint(ck, 1, tk, cur, res, runSpan); err != nil {
			return nil, err
		}
		if st.cfg.OnLevel != nil {
			st.cfg.OnLevel(ls)
		}
		st.emitSnapshot(tk, cur, 1, feats, start)
		resumedLevel = 1
	}

	// c) Level-wise lattice enumeration.
	maxL := st.m
	if cfg.MaxLevel > 0 && cfg.MaxLevel < maxL {
		maxL = cfg.MaxLevel
	}
	completed := resumedLevel
	for lvl := resumedLevel + 1; lvl <= maxL && cur.size() > 0; lvl++ {
		// Anytime boundary: the budget is only consulted between levels, so
		// a budget stop leaves exactly the state of a batch run with
		// MaxLevel = completed — the anytime ≡ batch identity.
		if st.budgetExceeded(start) {
			runSpan.Event("anytime: budget exhausted, stopping enumeration")
			break
		}
		// Cancellation boundary: a checkpoint for the previous level is on
		// disk, so a run aborted here resumes without losing completed work.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: enumeration cancelled before level %d: %w", lvl, err)
		}
		lvlStart := time.Now()
		lsp := runSpan.Child("core.level")
		lsp.SetInt("level", int64(lvl))
		lsp.SetInt("frontier", int64(cur.size()))
		cand, pstats := st.pairCandidates(cur, lvl, tk.threshold())
		pruned := pstats.total()
		setPruneAttrs(lsp, pstats)
		if cand == nil {
			// Generation itself exceeded the candidate budget.
			res.Truncated = true
			lsp.Event("truncated: candidate generation exceeded budget")
			lsp.End()
			st.recordLevel(res, LevelStats{
				Level: lvl, Elapsed: time.Since(start),
			})
			break
		}
		lsp.SetInt("candidates", int64(cand.size()))
		if cand.size() == 0 {
			lsp.End()
			st.recordLevel(res, LevelStats{
				Level: lvl, Pruned: pruned, Elapsed: time.Since(start),
			})
			// Every child was pruned: the frontier is empty and the top-K is
			// certified exact (gap 0).
			cur, completed = cand, lvl
			st.emitSnapshot(tk, cur, lvl, feats, start)
			break
		}
		if cand.size() > cfg.MaxCandidatesPerLevel {
			res.Truncated = true
			lsp.Event("truncated: level exceeds MaxCandidatesPerLevel")
			lsp.End()
			st.recordLevel(res, LevelStats{
				Level: lvl, Candidates: cand.size(), Pruned: pruned, Elapsed: time.Since(start),
			})
			break
		}
		// Evaluation spans parent under the level span via the context.
		lctx := obs.ContextWith(ctx, lsp)
		if cfg.PriorityEnumeration {
			evaluated, extraPruned, err := st.evalWithPriority(lctx, cand, lvl, tk)
			if err != nil {
				lsp.End()
				return nil, err
			}
			cand = evaluated
			pruned += extraPruned
		} else {
			if err := st.evalSlices(lctx, cand, lvl); err != nil {
				lsp.End()
				return nil, err
			}
			for i := range cand.cols {
				tk.offer(cand.cols[i], cand.sc[i], cand.ss[i], cand.se[i], cand.sm[i])
			}
		}
		ls := LevelStats{
			Level:      lvl,
			Candidates: cand.size(),
			Valid:      countValid(cand, float64(cfg.Sigma)),
			Pruned:     pruned,
			Elapsed:    time.Since(start),
		}
		res.Levels = append(res.Levels, ls)
		lsp.SetInt("evaluated", int64(ls.Candidates))
		lsp.SetInt("valid", int64(ls.Valid))
		lsp.SetInt("pruned", int64(ls.Pruned))
		lsp.SetFloat("threshold", tk.threshold())
		st.ob.levels.Inc()
		st.ob.candidates.Add(int64(ls.Candidates))
		st.ob.pruned.Add(int64(ls.Pruned))
		st.ob.threshold.Set(tk.threshold())
		st.ob.levelSecs.Observe(time.Since(lvlStart).Seconds())
		lsp.End()
		if err := st.saveCheckpoint(ck, lvl, tk, cand, res, runSpan); err != nil {
			return nil, err
		}
		if st.cfg.OnLevel != nil {
			st.cfg.OnLevel(ls)
		}
		cur, completed = cand, lvl
		st.emitSnapshot(tk, cur, lvl, feats, start)
	}

	res.TopK = st.decode(tk, feats)
	st.annotate(res.TopK, tk.entries)
	res.Gap = st.gapBound(cur, completed, tk.threshold())
	res.Elapsed = time.Since(start)
	runSpan.SetInt("levels", int64(len(res.Levels)))
	runSpan.SetInt("total_candidates", int64(res.TotalCandidates()))
	runSpan.SetInt("topk", int64(len(res.TopK)))
	runSpan.SetBool("truncated", res.Truncated)
	runSpan.SetFloat("gap", res.Gap)
	return res, nil
}

// saveCheckpoint wraps checkpointer.save with a span and a counter; a nil
// checkpointer stays a no-op.
func (st *state) saveCheckpoint(ck *checkpointer, lvl int, tk *topK, frontier *level, res *Result, parent *obs.Span) error {
	if ck == nil {
		return nil
	}
	sp := parent.Child("core.checkpoint.save")
	sp.SetInt("level", int64(lvl))
	err := ck.save(lvl, tk, frontier, res)
	sp.End()
	if err == nil {
		st.ob.ckSaves.Inc()
	}
	return err
}

// recordLevel appends a level's statistics and fires the progress callback.
func (st *state) recordLevel(res *Result, ls LevelStats) {
	res.Levels = append(res.Levels, ls)
	if st.cfg.OnLevel != nil {
		st.cfg.OnLevel(ls)
	}
}

func countValid(l *level, sigma float64) int {
	valid := 0
	for i := range l.cols {
		if l.ss[i] >= sigma && l.se[i] > 0 {
			valid++
		}
	}
	return valid
}
