package core

import (
	"math"
	"testing"

	"sliceline/internal/fptol"
)

// FuzzScorerUpperBound checks the soundness of the Equation 3 pruning bound:
// for ANY feasible child slice — size in [sigma, ssUB], total error at most
// min(seUB, size*smUB) — the child's true score must not exceed the upper
// bound computed from the parent minima. An unsound bound would silently
// prune slices that belong in the top-K; this property is exactly what makes
// SliceLine's pruning result-preserving.
func FuzzScorerUpperBound(f *testing.F) {
	f.Add(uint16(1000), uint16(500), uint8(32), uint16(300), uint16(200), uint16(400), uint8(100), uint8(200))
	f.Add(uint16(64), uint16(999), uint8(1), uint16(64), uint16(999), uint16(999), uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, n16, te16 uint16, sig8 uint8, ssRaw, seRaw, smRaw uint16, childSSRaw, childSERaw uint8) {
		n := 1 + float64(n16)
		totalErr := float64(te16) / 64 // 0 .. ~1024, includes exact 0
		sigma := float64(1 + int(sig8)%64)
		if sigma > n {
			sigma = n
		}
		sc := scorer{n: n, totalErr: totalErr, avgErr: totalErr / n, alpha: 0.05 + 0.95*float64(sig8)/255, sigma: sigma}

		// Parent minima: ssUB in [0, n], seUB in [0, totalErr], smUB in [0, 1].
		ssUB := n * float64(ssRaw) / 65535
		seUB := totalErr * float64(seRaw) / 65535
		smUB := float64(smRaw) / 65535
		ub := sc.upperBound(ssUB, seUB, smUB)

		if ssUB < sigma {
			// No feasible child exists; the bound must reject everything.
			if ub != -math.MaxFloat64 {
				t.Fatalf("ssUB %v < sigma %v but upper bound %v is not the rejection value", ssUB, sigma, ub)
			}
			return
		}
		// A feasible child: clamp the fuzzed size and error into the region
		// the bound promises to dominate.
		childSS := sigma + (ssUB-sigma)*float64(childSSRaw)/255
		seCap := seUB
		if c := childSS * smUB; c < seCap {
			seCap = c
		}
		childSE := seCap * float64(childSERaw) / 255
		score := sc.score(childSS, childSE)
		if score > ub && !fptol.DefaultTol.Close(score, ub) {
			t.Fatalf("bound unsound: child (ss=%v se=%v) scores %v > upper bound %v (parents ssUB=%v seUB=%v smUB=%v, alpha=%v sigma=%v n=%v avgErr=%v)",
				childSS, childSE, score, ub, ssUB, seUB, smUB, sc.alpha, sigma, n, sc.avgErr)
		}
	})
}

// FuzzTopK checks the top-K accumulator invariants under arbitrary offer
// sequences: at most K entries, scores strictly positive and descending,
// sizes at or above sigma, the threshold equal to the last retained score,
// and no slice identity occupying two slots with identical score — the
// dedup-disabled duplication guard.
func FuzzTopK(f *testing.F) {
	f.Add(uint8(3), uint8(2), []byte{10, 1, 8, 20, 2, 9, 10, 1, 8})
	f.Fuzz(func(t *testing.T, k8, sig8 uint8, data []byte) {
		k := 1 + int(k8)%8
		sigma := float64(1 + int(sig8)%5)
		tk := newTopK(k, sigma)
		for i := 0; i+2 < len(data); i += 3 {
			score := float64(data[i])/16 - 1 // includes zero and negatives
			cols := []int{int(data[i+1]) % 6, 6 + int(data[i+2])%6}
			ss := float64(int(data[i+1])%12) + sigma - 2 // straddles sigma
			se := score * ss
			tk.offer(cols, score, ss, se, 1)
		}
		if len(tk.entries) > k {
			t.Fatalf("%d entries exceed K=%d", len(tk.entries), k)
		}
		for i, e := range tk.entries {
			if e.score <= 0 {
				t.Fatalf("entry %d has non-positive score %v", i, e.score)
			}
			if e.ss < sigma {
				t.Fatalf("entry %d has size %v below sigma %v", i, e.ss, sigma)
			}
			if i > 0 && tk.entries[i-1].score < e.score {
				t.Fatalf("scores not descending at %d: %v after %v", i, e.score, tk.entries[i-1].score)
			}
			for j := i + 1; j < len(tk.entries); j++ {
				o := tk.entries[j]
				if e.score == o.score && equalCols(e.cols, o.cols) {
					t.Fatalf("slice %v occupies slots %d and %d with score %v", e.cols, i, j, e.score)
				}
			}
		}
		th := tk.threshold()
		if len(tk.entries) == k {
			if th != tk.entries[k-1].score {
				t.Fatalf("threshold %v != K-th score %v", th, tk.entries[k-1].score)
			}
		} else if th != 0 {
			t.Fatalf("threshold %v with %d/%d entries, want 0", th, len(tk.entries), k)
		}
	})
}
