package core

import (
	"context"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"sliceline/internal/frame"
)

// catFrameOf builds a categorical-only frame from row-major cells.
func catFrameOf(t *testing.T, names []string, rows [][]string) *frame.Frame {
	t.Helper()
	cols := make([]frame.Column, len(names))
	for j, name := range names {
		c := frame.Column{Name: name, Kind: frame.Categorical}
		for _, r := range rows {
			c.Strings = append(c.Strings, r[j])
		}
		cols[j] = c
	}
	fr, err := frame.NewFrame(cols)
	if err != nil {
		t.Fatalf("NewFrame: %v", err)
	}
	return fr
}

// stripElapsed zeroes the wall-clock fields so Levels can be compared.
func stripElapsed(ls []LevelStats) []LevelStats {
	out := append([]LevelStats(nil), ls...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// requireIdenticalResults asserts bit-identical top-K and identical
// enumeration counts between an incremental and a from-scratch result.
func requireIdenticalResults(t *testing.T, gen int, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.TopK, want.TopK) {
		t.Fatalf("generation %d: top-K differs:\nincremental: %+v\nfrom-scratch: %+v", gen, got.TopK, want.TopK)
	}
	if !reflect.DeepEqual(stripElapsed(got.Levels), stripElapsed(want.Levels)) {
		t.Fatalf("generation %d: level stats differ:\nincremental: %+v\nfrom-scratch: %+v",
			gen, stripElapsed(got.Levels), stripElapsed(want.Levels))
	}
	if got.N != want.N || got.AvgError != want.AvgError || got.Sigma != want.Sigma {
		t.Fatalf("generation %d: header differs: got N=%d ē=%v σ=%d, want N=%d ē=%v σ=%d",
			gen, got.N, got.AvgError, got.Sigma, want.N, want.AvgError, want.Sigma)
	}
}

// randomCatRows generates rows over m features; domains widen as gen grows so
// later batches allocate fresh one-hot columns (domain growth).
func randomCatRows(rng *rand.Rand, n, m, dom, gen int) [][]string {
	rows := make([][]string, n)
	for i := range rows {
		rows[i] = make([]string, m)
		for j := range rows[i] {
			if gen > 0 && rng.Intn(6) == 0 {
				rows[i][j] = "g" + strconv.Itoa(gen) + "v" + strconv.Itoa(j)
			} else {
				rows[i][j] = "v" + strconv.Itoa(rng.Intn(dom))
			}
		}
	}
	return rows
}

func randomErrs(rng *rand.Rand, n int) []float64 {
	e := make([]float64, n)
	for i := range e {
		if rng.Float64() < 0.3 {
			e[i] = 0
		} else {
			e[i] = rng.Float64()
		}
	}
	return e
}

// TestIncrementalMatchesFromScratch is the differential backstop of the
// streaming tentpole: over a seeded schedule of appends — more than five,
// several growing feature domains — the maintained top-K must be
// bit-identical to a from-scratch run over the accumulated data at every
// generation, as must the per-level enumeration counts (proof that pruning
// decisions replay identically, not just the final ranking).
func TestIncrementalMatchesFromScratch(t *testing.T) {
	names := []string{"dev", "os", "region"}
	for _, seed := range []int64{1, 7, 99} {
		rng := rand.New(rand.NewSource(seed))
		base := randomCatRows(rng, 60, len(names), 3, 0)
		ds, err := frame.FromFrame(catFrameOf(t, names, base), "", 5)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := frame.OneHot(ds)
		if err != nil {
			t.Fatal(err)
		}
		ap, err := frame.NewAppender(ds, enc)
		if err != nil {
			t.Fatal(err)
		}
		e := randomErrs(rng, len(base))
		cfg := Config{K: 4, Sigma: 5, Alpha: 0.9}
		inc, err := NewIncremental(enc, ds.Features, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		grown := 0
		for gen := 0; gen <= 6; gen++ {
			if gen > 0 {
				batch := randomCatRows(rng, 5+rng.Intn(10), len(names), 3, gen)
				res, err := ap.AppendRows(batch)
				if err != nil {
					t.Fatalf("seed %d gen %d: AppendRows: %v", seed, gen, err)
				}
				if res.ColRemap != nil {
					grown++
				}
				errs := randomErrs(rng, res.NewRows)
				if err := inc.Append(res, errs); err != nil {
					t.Fatalf("seed %d gen %d: Append: %v", seed, gen, err)
				}
				e = append(e, errs...)
			}
			got, err := inc.Run(ctx)
			if err != nil {
				t.Fatalf("seed %d gen %d: incremental run: %v", seed, gen, err)
			}
			// Reference: BitsetOn pins the from-scratch kernel to whole-row
			// sequential accumulation, the order the memo continues.
			refCfg := cfg
			refCfg.BitsetEval = BitsetOn
			want, err := RunEncoded(ap.Encoding(), ap.Dataset().Features, e, refCfg)
			if err != nil {
				t.Fatalf("seed %d gen %d: reference run: %v", seed, gen, err)
			}
			requireIdenticalResults(t, gen, got, want)
		}
		if grown == 0 {
			t.Fatalf("seed %d: schedule never grew a domain; test is too weak", seed)
		}
		if inc.Generation() != 6 {
			t.Fatalf("generation = %d, want 6", inc.Generation())
		}
	}
}

// TestIncrementalMemoReuse: the second generation must continue most level>=2
// candidates from the memo instead of rescanning from row 0.
func TestIncrementalMemoReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	names := []string{"a", "b", "c"}
	base := randomCatRows(rng, 80, len(names), 3, 0)
	ds, err := frame.FromFrame(catFrameOf(t, names, base), "", 5)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := frame.OneHot(ds)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := frame.NewAppender(ds, enc)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(enc, ds.Features, randomErrs(rng, len(base)), Config{K: 4, Sigma: 4, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if st.Entries == 0 || st.Misses == 0 {
		t.Fatalf("first run: entries=%d misses=%d, want > 0", st.Entries, st.Misses)
	}
	if st.Hits != 0 {
		t.Fatalf("first run: hits=%d, want 0", st.Hits)
	}
	res, err := ap.AppendRows(randomCatRows(rng, 6, len(names), 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Append(res, randomErrs(rng, res.NewRows)); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st2 := inc.Stats()
	if st2.Hits == 0 {
		t.Fatal("second run: no memo hits")
	}
	if st2.Rows != 86 || st2.Generation != 1 {
		t.Fatalf("stats = %+v", st2)
	}
}

func TestIncrementalRejectsConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, e := randomDataset(rng, 40, 3, 3)
	enc, err := frame.OneHot(ds)
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"external":   {Evaluator: stubEvaluator{}},
		"dense":      {DenseEval: true},
		"priority":   {PriorityEnumeration: true},
		"checkpoint": {CheckpointPath: t.TempDir() + "/ck"},
		"resume":     {Resume: true},
	} {
		if _, err := NewIncremental(enc, ds.Features, e, cfg); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
	if _, err := NewIncremental(enc, ds.Features, e[:5], Config{}); err == nil {
		t.Error("short error vector: want error")
	}
}

func TestIncrementalAppendValidation(t *testing.T) {
	names := []string{"f"}
	base := [][]string{{"a"}, {"b"}, {"a"}}
	ds, err := frame.FromFrame(catFrameOf(t, names, base), "", 5)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := frame.OneHot(ds)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := frame.NewAppender(ds, enc)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(enc, ds.Features, []float64{0, 1, 0}, Config{Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ap.AppendRows([][]string{{"b"}, {"c"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Append(res, []float64{1}); err == nil {
		t.Error("short errs: want error")
	}
	if err := inc.Append(res, []float64{1, -2}); err == nil {
		t.Error("negative err: want error")
	}
	if err := inc.Append(nil, nil); err == nil {
		t.Error("nil result: want error")
	}
	if err := inc.Append(res, []float64{1, 0.5}); err != nil {
		t.Errorf("valid append: %v", err)
	}
	// Applying the same generation twice must fail the row-count check.
	if err := inc.Append(res, []float64{1, 0.5}); err == nil {
		t.Error("replayed append: want error")
	}
}
