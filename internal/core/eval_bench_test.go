package core

import (
	"math/rand"
	"testing"

	"sliceline/internal/frame"
	"sliceline/internal/matrix"
)

// benchEvalData builds a one-hot encoded random dataset plus the candidate
// list at the requested level — all cross-feature column pairs at level 2,
// all cross-feature triples at level 3 — the workload of the hottest
// enumeration levels. It also sizes the benchmark via b.SetBytes(rows) so
// `go test -bench` reports throughput in rows/s (as MB/s with 1 byte = 1 row).
func benchEvalData(b *testing.B, n, m, maxDom, level int) (*matrix.CSR, []float64, [][]int) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	ds, e := randomDataset(rng, n, m, maxDom)
	enc, err := frame.OneHot(ds)
	if err != nil {
		b.Fatal(err)
	}
	var cols [][]int
	for c1 := 0; c1 < enc.Width(); c1++ {
		for c2 := c1 + 1; c2 < enc.Width(); c2++ {
			if enc.FeatureOf(c1) == enc.FeatureOf(c2) {
				continue
			}
			if level == 2 {
				cols = append(cols, []int{c1, c2})
				continue
			}
			for c3 := c2 + 1; c3 < enc.Width(); c3++ {
				if enc.FeatureOf(c3) != enc.FeatureOf(c1) && enc.FeatureOf(c3) != enc.FeatureOf(c2) {
					cols = append(cols, []int{c1, c2, c3})
				}
			}
		}
	}
	b.SetBytes(int64(n))
	return enc.X, e, cols
}

func benchWeights(e []float64, weighted bool) []float64 {
	if !weighted {
		return nil
	}
	w := make([]float64, len(e))
	for i := range w {
		w[i] = 1 + float64(i%3)
	}
	return w
}

// benchEvalPartition drives the fused sparse kernel at one block size. The
// allocation report guards the kernel's steady-state footprint: the block
// index and partial vectors are the only expected allocations, and a
// regression here multiplies across every level of every run.
func benchEvalPartition(b *testing.B, blockSize, level int, weighted bool) {
	x, e, cols := benchEvalData(b, 2000, 6, 5, level)
	w := benchWeights(e, weighted)
	ss := make([]float64, len(cols))
	se := make([]float64, len(cols))
	sm := make([]float64, len(cols))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ss {
			ss[j], se[j], sm[j] = 0, 0, 0
		}
		EvalPartitionWeighted(x, e, w, cols, level, blockSize, ss, se, sm)
	}
}

func BenchmarkEvalPartitionBlock1(b *testing.B)   { benchEvalPartition(b, 1, 2, false) }
func BenchmarkEvalPartitionBlock16(b *testing.B)  { benchEvalPartition(b, 16, 2, false) }
func BenchmarkEvalPartitionBlockAll(b *testing.B) { benchEvalPartition(b, 1<<30, 2, false) }
func BenchmarkEvalPartitionWeighted(b *testing.B) { benchEvalPartition(b, 16, 2, true) }
func BenchmarkEvalPartitionTriplesL3(b *testing.B) {
	benchEvalPartition(b, 16, 3, false)
}

// benchEvalBitset drives the packed-bitset kernel over the same candidate
// lists. Packing happens once outside the timed loop, matching how the
// Kernel caches its ColumnBits across levels of a run.
func benchEvalBitset(b *testing.B, level int, weighted bool) {
	x, e, cols := benchEvalData(b, 2000, 6, 5, level)
	w := benchWeights(e, weighted)
	cb := matrix.PackColumns(x)
	ss := make([]float64, len(cols))
	se := make([]float64, len(cols))
	sm := make([]float64, len(cols))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ss {
			ss[j], se[j], sm[j] = 0, 0, 0
		}
		EvalBitsetSerial(cb, e, w, cols, ss, se, sm)
	}
}

func BenchmarkEvalBitsetPairsL2(b *testing.B)    { benchEvalBitset(b, 2, false) }
func BenchmarkEvalBitsetTriplesL3(b *testing.B)  { benchEvalBitset(b, 3, false) }
func BenchmarkEvalBitsetWeightedL2(b *testing.B) { benchEvalBitset(b, 2, true) }

// TestEvalBitsetSerialZeroAlloc pins the bitset level loop's steady-state
// allocation count at exactly zero — the property the committed bench
// baseline gates in CI, asserted here so a plain `go test` catches it too.
func TestEvalBitsetSerialZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds, e := randomDataset(rng, 500, 5, 4)
	enc, err := frame.OneHot(ds)
	if err != nil {
		t.Fatal(err)
	}
	var pairs [][]int
	for c1 := 0; c1 < enc.Width(); c1++ {
		for c2 := c1 + 1; c2 < enc.Width(); c2++ {
			if enc.FeatureOf(c1) != enc.FeatureOf(c2) {
				pairs = append(pairs, []int{c1, c2})
			}
		}
	}
	cb := matrix.PackColumns(enc.X)
	ss := make([]float64, len(pairs))
	se := make([]float64, len(pairs))
	sm := make([]float64, len(pairs))
	for name, w := range map[string][]float64{
		"unweighted": nil,
		"weighted":   benchWeights(e, true),
	} {
		allocs := testing.AllocsPerRun(20, func() {
			EvalBitsetSerial(cb, e, w, pairs, ss, se, sm)
		})
		if allocs != 0 {
			t.Errorf("%s: EvalBitsetSerial allocates %.1f per op, want 0", name, allocs)
		}
	}
}

// benchEvalRun measures a full enumeration through the fused sparse kernel,
// the dense chunked kernel, or the packed-bitset kernel (the Section 4.4
// comparison plus this repo's bitset path).
func benchEvalRun(b *testing.B, dense bool, bitset BitsetMode) {
	rng := rand.New(rand.NewSource(8))
	ds, e := randomDataset(rng, 2000, 5, 4)
	cfg := Config{K: 4, Sigma: 20, Alpha: 0.95, DenseEval: dense, BitsetEval: bitset}
	b.SetBytes(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ds, e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalRunFused(b *testing.B)  { benchEvalRun(b, false, BitsetOff) }
func BenchmarkEvalRunDense(b *testing.B)  { benchEvalRun(b, true, BitsetOff) }
func BenchmarkEvalRunBitset(b *testing.B) { benchEvalRun(b, false, BitsetOn) }
