package core

import (
	"math/rand"
	"testing"

	"sliceline/internal/frame"
	"sliceline/internal/matrix"
)

// benchEvalData builds a one-hot encoded random dataset plus the level-2
// candidate list (all cross-feature column pairs), the workload of the
// hottest enumeration levels.
func benchEvalData(b *testing.B, n, m, maxDom int) (*matrix.CSR, []float64, [][]int) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	ds, e := randomDataset(rng, n, m, maxDom)
	enc, err := frame.OneHot(ds)
	if err != nil {
		b.Fatal(err)
	}
	var pairs [][]int
	for c1 := 0; c1 < enc.Width(); c1++ {
		for c2 := c1 + 1; c2 < enc.Width(); c2++ {
			if enc.FeatureOf(c1) != enc.FeatureOf(c2) {
				pairs = append(pairs, []int{c1, c2})
			}
		}
	}
	return enc.X, e, pairs
}

// benchEvalPartition drives the fused sparse kernel at one block size. The
// allocation report guards the kernel's steady-state footprint: the block
// index and partial vectors are the only expected allocations, and a
// regression here multiplies across every level of every run.
func benchEvalPartition(b *testing.B, blockSize int, weighted bool) {
	x, e, cols := benchEvalData(b, 2000, 6, 5)
	var w []float64
	if weighted {
		w = make([]float64, len(e))
		for i := range w {
			w[i] = 1 + float64(i%3)
		}
	}
	ss := make([]float64, len(cols))
	se := make([]float64, len(cols))
	sm := make([]float64, len(cols))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ss {
			ss[j], se[j], sm[j] = 0, 0, 0
		}
		EvalPartitionWeighted(x, e, w, cols, 2, blockSize, ss, se, sm)
	}
}

func BenchmarkEvalPartitionBlock1(b *testing.B)   { benchEvalPartition(b, 1, false) }
func BenchmarkEvalPartitionBlock16(b *testing.B)  { benchEvalPartition(b, 16, false) }
func BenchmarkEvalPartitionBlockAll(b *testing.B) { benchEvalPartition(b, 1<<30, false) }
func BenchmarkEvalPartitionWeighted(b *testing.B) { benchEvalPartition(b, 16, true) }

// benchEvalRun measures a full enumeration through either the fused sparse
// kernel or the dense chunked kernel (the Section 4.4 comparison).
func benchEvalRun(b *testing.B, dense bool) {
	rng := rand.New(rand.NewSource(8))
	ds, e := randomDataset(rng, 2000, 5, 4)
	cfg := Config{K: 4, Sigma: 20, Alpha: 0.95, DenseEval: dense}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(ds, e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalRunFused(b *testing.B) { benchEvalRun(b, false) }
func BenchmarkEvalRunDense(b *testing.B) { benchEvalRun(b, true) }
