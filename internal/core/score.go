package core

import "math"

// scorer evaluates the paper's scoring function (Equation 1/5) and its upper
// bound (Equation 3). All quantities are kept as float64 for direct use in
// the vectorized kernels.
type scorer struct {
	n        float64 // dataset rows
	totalErr float64 // sum(e)
	avgErr   float64 // ē = sum(e)/n
	alpha    float64
	sigma    float64
}

func newScorer(n int, e []float64, alpha float64, sigma int) scorer {
	total := 0.0
	for _, v := range e {
		total += v
	}
	s := scorer{
		n:        float64(n),
		totalErr: total,
		alpha:    alpha,
		sigma:    float64(sigma),
	}
	if n > 0 {
		s.avgErr = total / float64(n)
	}
	return s
}

// newWeightedScorer treats row i as w[i] identical rows: n = Σw and the
// total error is Σ w_i·e_i.
func newWeightedScorer(e, w []float64, alpha float64, sigma int) scorer {
	totalW, totalErr := 0.0, 0.0
	for i, v := range e {
		totalW += w[i]
		totalErr += w[i] * v
	}
	s := scorer{
		n:        totalW,
		totalErr: totalErr,
		alpha:    alpha,
		sigma:    float64(sigma),
	}
	if totalW > 0 {
		s.avgErr = totalErr / totalW
	}
	return s
}

// score computes sc = α((se/|S|)/ē − 1) − (1−α)(n/|S| − 1) for a slice with
// size ss and total error se. Empty slices score an (arbitrarily) large
// negative value, per the paper's footnote.
func (s scorer) score(ss, se float64) float64 {
	if ss <= 0 {
		return -math.MaxFloat64
	}
	if s.avgErr == 0 {
		// A perfect model has no problematic slices; every score is the pure
		// size penalty, which is <= 0.
		return -(1 - s.alpha) * (s.n/ss - 1)
	}
	return s.alpha*((se/ss)/s.avgErr-1) - (1-s.alpha)*(s.n/ss-1)
}

// scoreAt evaluates the upper-bound objective of Equation 3 at a fixed slice
// size sz, with the error bound ⌈se⌉ = min(seUB, sz·smUB).
func (s scorer) scoreAt(sz, seUB, smUB float64) float64 {
	if sz <= 0 {
		return -math.MaxFloat64
	}
	se := seUB
	if cap := sz * smUB; cap < se {
		se = cap
	}
	return s.score(sz, se)
}

// upperBound computes ⌈sc⌉ per Equation 3: the maximum of the bound
// objective over |S| ∈ [σ, ssUB], with ⌈se⌉ = min(seUB, |S|·smUB) and ssUB,
// seUB, smUB the minima over all enumerated parents. The objective is
// piecewise monotone in |S| with a single breakpoint at seUB/smUB, so the
// maximum is attained at σ, at the (clamped) breakpoint, or at ssUB — the
// three "interesting points" of Section 3.1.
func (s scorer) upperBound(ssUB, seUB, smUB float64) float64 {
	if ssUB < s.sigma {
		// No feasible size: any child violates the support constraint.
		return -math.MaxFloat64
	}
	best := s.scoreAt(s.sigma, seUB, smUB)
	if smUB > 0 {
		bp := seUB / smUB
		if bp < s.sigma {
			bp = s.sigma
		}
		if bp > ssUB {
			bp = ssUB
		}
		if v := s.scoreAt(bp, seUB, smUB); v > best {
			best = v
		}
	}
	if v := s.scoreAt(ssUB, seUB, smUB); v > best {
		best = v
	}
	return best
}
