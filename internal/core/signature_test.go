package core

import (
	"os"
	"path/filepath"
	"testing"

	"sliceline/internal/frame"
)

func sigDataset(t *testing.T) (*frame.Encoding, []float64) {
	t.Helper()
	ds := &frame.Dataset{
		Name: "sig",
		X0:   frame.NewIntMatrix(4, 2),
		Features: []frame.Feature{
			{Name: "a", Domain: 2},
			{Name: "b", Domain: 2},
		},
	}
	codes := [][]int{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	for i, row := range codes {
		for j, v := range row {
			ds.X0.Set(i, j, v)
		}
	}
	enc, err := frame.OneHot(ds)
	if err != nil {
		t.Fatal(err)
	}
	return enc, []float64{1, 0, 0.5, 0}
}

func TestSignatureDeterministic(t *testing.T) {
	enc, e := sigDataset(t)
	cfg := Config{K: 3, Alpha: 0.9}.WithDefaults(4)
	if Signature(enc, e, nil, cfg) != Signature(enc, e, nil, cfg) {
		t.Fatal("same inputs hash differently")
	}
	if DataSignature(enc, e, nil) != DataSignature(enc, e, nil) {
		t.Fatal("same data hashes differently")
	}
	if ConfigSignature(cfg) != ConfigSignature(cfg) {
		t.Fatal("same config hashes differently")
	}
}

func TestDataSignatureSensitivity(t *testing.T) {
	enc, e := sigDataset(t)
	base := DataSignature(enc, e, nil)

	e2 := append([]float64(nil), e...)
	e2[1] = 0.25
	if DataSignature(enc, e2, nil) == base {
		t.Fatal("changed error vector did not change the signature")
	}
	if DataSignature(enc, e, []float64{1, 1, 1, 2}) == base {
		t.Fatal("adding weights did not change the signature")
	}

	// A different matrix changes the signature.
	ds2 := &frame.Dataset{
		Name:     "sig2",
		X0:       frame.NewIntMatrix(4, 2),
		Features: []frame.Feature{{Name: "a", Domain: 2}, {Name: "b", Domain: 2}},
	}
	for i := 0; i < 4; i++ {
		ds2.X0.Set(i, 0, 1)
		ds2.X0.Set(i, 1, 1+i%2)
	}
	enc2, err := frame.OneHot(ds2)
	if err != nil {
		t.Fatal(err)
	}
	if DataSignature(enc2, e, nil) == base {
		t.Fatal("different matrix did not change the signature")
	}
}

func TestConfigSignatureSensitivity(t *testing.T) {
	base := Config{}.WithDefaults(1000)
	baseSig := ConfigSignature(base)

	mutations := map[string]Config{
		"K":           {K: base.K + 1, Sigma: base.Sigma, Alpha: base.Alpha, MaxCandidatesPerLevel: base.MaxCandidatesPerLevel},
		"Sigma":       {K: base.K, Sigma: base.Sigma + 1, Alpha: base.Alpha, MaxCandidatesPerLevel: base.MaxCandidatesPerLevel},
		"Alpha":       {K: base.K, Sigma: base.Sigma, Alpha: base.Alpha / 2, MaxCandidatesPerLevel: base.MaxCandidatesPerLevel},
		"MaxCand":     {K: base.K, Sigma: base.Sigma, Alpha: base.Alpha, MaxCandidatesPerLevel: base.MaxCandidatesPerLevel + 1},
		"SizePrune":   {K: base.K, Sigma: base.Sigma, Alpha: base.Alpha, MaxCandidatesPerLevel: base.MaxCandidatesPerLevel, DisableSizePruning: true},
		"ScorePrune":  {K: base.K, Sigma: base.Sigma, Alpha: base.Alpha, MaxCandidatesPerLevel: base.MaxCandidatesPerLevel, DisableScorePruning: true},
		"ParentPrune": {K: base.K, Sigma: base.Sigma, Alpha: base.Alpha, MaxCandidatesPerLevel: base.MaxCandidatesPerLevel, DisableParentHandling: true},
		"Dedup":       {K: base.K, Sigma: base.Sigma, Alpha: base.Alpha, MaxCandidatesPerLevel: base.MaxCandidatesPerLevel, DisableDedup: true},
		"Priority":    {K: base.K, Sigma: base.Sigma, Alpha: base.Alpha, MaxCandidatesPerLevel: base.MaxCandidatesPerLevel, PriorityEnumeration: true},
	}
	for name, cfg := range mutations {
		if ConfigSignature(cfg) == baseSig {
			t.Errorf("changing %s did not change the config signature", name)
		}
	}

	// Execution-plan and depth fields are excluded by design: MaxLevel
	// extension resume and cross-plan resume both rely on it.
	equiv := base
	equiv.MaxLevel = 3
	equiv.BlockSize = 64
	equiv.DenseEval = true
	equiv.BitsetEval = BitsetOn
	if ConfigSignature(equiv) != baseSig {
		t.Fatal("MaxLevel/BlockSize/DenseEval/BitsetEval must not affect the config signature")
	}
}

func TestDefaultedConfigSignatureMatchesExplicit(t *testing.T) {
	n := 5000
	implicit := Config{}.WithDefaults(n)
	explicit := Config{K: DefaultK, Alpha: DefaultAlpha, Sigma: 50, MaxCandidatesPerLevel: 2_000_000}.WithDefaults(n)
	if ConfigSignature(implicit) != ConfigSignature(explicit) {
		t.Fatal("defaulted config does not hash like its explicit equivalent")
	}
}

// TestCheckpointUsesSharedSignature pins that the checkpoint file records
// exactly Signature(...): a checkpoint written through the public run path
// must load under the shared helper's value and be refused under any other.
func TestCheckpointUsesSharedSignature(t *testing.T) {
	enc, e := sigDataset(t)
	cfg := Config{K: 2, Sigma: 1, Alpha: 0.9}.WithDefaults(4)
	path := filepath.Join(t.TempDir(), "sig.ck")

	ck := &checkpointer{path: path, sig: Signature(enc, e, nil, cfg)}
	if err := ck.save(1, newTopK(2, 1), &level{}, &Result{}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	// Same signature loads.
	load := &checkpointer{path: path, sig: Signature(enc, e, nil, cfg)}
	if lvl, err := load.load(newTopK(2, 1), &level{}, &Result{}); err != nil || lvl != 1 {
		t.Fatalf("load with matching signature: level %d, err %v", lvl, err)
	}

	// A different config signature is refused.
	other := cfg
	other.K = cfg.K + 1
	bad := &checkpointer{path: path, sig: Signature(enc, e, nil, other)}
	if _, err := bad.load(newTopK(2, 1), &level{}, &Result{}); err == nil {
		t.Fatal("checkpoint with mismatched signature was accepted")
	}
}
