package core

import (
	"encoding/binary"
	"math"
	"sort"
)

// group accumulates the per-candidate state of the deduplication matrix M of
// Section 4.3: the minima over all enumerated parents (used by the upper
// bounds of Equation 3/8) and the set of distinct parents (np).
type group struct {
	cols    []int
	ssUB    float64
	seUB    float64
	smUB    float64
	parents map[int]struct{}
	dead    bool // a pair-level bound already failed; the group bound can only be tighter
}

// pruneStats breaks the pruned pair-candidates of one level down by the rule
// that removed them — the per-rule numbers behind Figure 3, exposed as level
// span attributes by the observability layer.
type pruneStats struct {
	pairSize  int // failed the size bound at pair level (dedup off or L == 2)
	pairScore int // failed the score bound at pair level (dedup off or L == 2)
	dead      int // group condemned by a failing pair-level bound
	size      int // failed the group size bound ⌈ss⌉ >= σ
	score     int // failed the group score bound ⌈sc⌉ > sc_k ∧ ⌈sc⌉ >= 0
	parents   int // missing-parent handling (np != L)
}

// total is the overall pruned count recorded in LevelStats.Pruned.
func (p pruneStats) total() int {
	return p.pairSize + p.pairScore + p.dead + p.size + p.score + p.parents
}

// pairCandidates generates, deduplicates and prunes the level-L slice
// candidates from the evaluated level-(L-1) slices, following Section 4.3:
//
//  1. prune invalid inputs by minimum support and non-zero error
//     (S = removeEmpty(S · (R[,4] >= σ ∧ R[,2] > 0))),
//  2. self-join compatible slices — pairs with exactly L-2 overlapping
//     predicates (I = upper.tri((S Sᵀ) = L-2), Equation 6), realized as a
//     sparse row-wise join over per-column posting lists,
//  3. merge pairs into combined slices (P) and discard slices with multiple
//     assignments per original feature,
//  4. deduplicate via canonical slice identity (the paper's ND-array IDs
//     followed by recoding; here the sorted column list is the ID) while
//     accumulating min-bounds and the distinct-parent count, and
//  5. prune by Equation 9: ⌈ss⌉ >= σ ∧ ⌈sc⌉ > sc_k ∧ ⌈sc⌉ >= 0 ∧ np = L.
//
// It returns the surviving candidates and a per-rule pruning breakdown. A
// nil level signals that candidate generation exceeded MaxCandidatesPerLevel
// and enumeration must truncate.
func (st *state) pairCandidates(prev *level, L int, sck float64) (*level, pruneStats) {
	cfg := st.cfg

	// Step 1: input filtering.
	var keep []int
	minSS := float64(cfg.Sigma)
	if cfg.DisableSizePruning {
		minSS = 1
	}
	for i := range prev.cols {
		if prev.ss[i] >= minSS && prev.se[i] > 0 {
			keep = append(keep, i)
		}
	}

	byKey := make(map[string]int) // canonical slice identity → index in list
	var list []*group             // insertion order for deterministic output
	var pr pruneStats

	addPair := func(i, j int, union []int) {
		ssUB := math.Min(prev.ss[i], prev.ss[j])
		seUB := math.Min(prev.se[i], prev.se[j])
		smUB := math.Min(prev.sm[i], prev.sm[j])
		// Early pair-level pruning: the group bound is the min over all its
		// pairs, so one failing pair condemns the whole candidate. Only
		// applicable when the corresponding pruning is enabled.
		dead, deadBySize := false, false
		if !cfg.DisableSizePruning && ssUB < float64(cfg.Sigma) {
			dead, deadBySize = true, true
		}
		if !dead && !cfg.DisableScorePruning {
			ub := st.sc.upperBound(ssUB, seUB, smUB)
			if ub <= sck || ub < 0 {
				dead = true
			}
		}
		if cfg.DisableDedup || L == 2 {
			// No dedup matrix M needed: either the ablation disabled it
			// (config 5: every pair is its own candidate, bounds from its
			// two parents only), or L == 2, where the 2-column union
			// uniquely identifies its basic-slice pair so no duplicates can
			// arise and both parents are always enumerated (np = 2 = L).
			if dead {
				if deadBySize {
					pr.pairSize++
				} else {
					pr.pairScore++
				}
				return
			}
			list = append(list, &group{cols: union, ssUB: ssUB, seUB: seUB, smUB: smUB})
			return
		}
		key := encodeCols(union)
		idx, ok := byKey[key]
		if !ok {
			idx = len(list)
			byKey[key] = idx
			list = append(list, &group{cols: union, ssUB: math.Inf(1), seUB: math.Inf(1), smUB: math.Inf(1),
				parents: make(map[int]struct{}, L)})
		}
		g := list[idx]
		if dead {
			g.dead = true
		}
		if ssUB < g.ssUB {
			g.ssUB = ssUB
		}
		if seUB < g.seUB {
			g.seUB = seUB
		}
		if smUB < g.smUB {
			g.smUB = smUB
		}
		g.parents[i] = struct{}{}
		g.parents[j] = struct{}{}
	}

	if L == 2 {
		// Basic slices overlap in L-2 = 0 predicates: every cross-feature
		// pair is compatible.
		for a := 0; a < len(keep); a++ {
			if len(list) > cfg.MaxCandidatesPerLevel {
				return nil, pruneStats{}
			}
			i := keep[a]
			fi := st.featOf[prev.cols[i][0]]
			for b := a + 1; b < len(keep); b++ {
				j := keep[b]
				if st.featOf[prev.cols[j][0]] == fi {
					continue
				}
				union := mergeCols(prev.cols[i], prev.cols[j], L)
				if union != nil {
					addPair(i, j, union)
				}
			}
		}
	} else {
		// Sparse self-join: for each kept slice, count co-occurrences with
		// later kept slices through per-column posting lists; partners are
		// those sharing exactly L-2 columns (the = (L-2) comparison on SSᵀ).
		postings := make(map[int][]int)
		for a, i := range keep {
			for _, c := range prev.cols[i] {
				postings[c] = append(postings[c], a)
			}
		}
		counts := make([]int, len(keep))
		stamp := make([]int, len(keep))
		for s := range stamp {
			stamp[s] = -1
		}
		var touched []int
		for a, i := range keep {
			if len(list) > cfg.MaxCandidatesPerLevel {
				return nil, pruneStats{}
			}
			touched = touched[:0]
			for _, c := range prev.cols[i] {
				for _, b := range postings[c] {
					if b <= a {
						continue
					}
					if stamp[b] != a {
						stamp[b] = a
						counts[b] = 0
						touched = append(touched, b)
					}
					counts[b]++
				}
			}
			for _, b := range touched {
				if counts[b] != L-2 {
					continue
				}
				j := keep[b]
				union := mergeCols(prev.cols[i], prev.cols[j], L)
				if union == nil {
					continue // multiple assignments for one feature
				}
				// Reject unions where two columns map to the same original
				// feature (step 3's rowSums(P[,beg:end]) <= 1 check).
				if !st.featuresDisjoint(union) {
					continue
				}
				addPair(i, j, union)
			}
		}
	}

	// For L == 2 the feature-validity check happened inline (cross-feature
	// pairs only); for L >= 3 it happened before addPair. Now apply the
	// group-level pruning of Equation 9.
	out := &level{}
	var ubs []float64
	for _, g := range list {
		if g.dead {
			pr.dead++
			continue
		}
		if !cfg.DisableSizePruning && g.ssUB < float64(cfg.Sigma) {
			pr.size++
			continue
		}
		ub := st.sc.upperBound(g.ssUB, g.seUB, g.smUB)
		if !cfg.DisableScorePruning {
			if ub <= sck || ub < 0 {
				pr.score++
				continue
			}
		}
		if L > 2 && !cfg.DisableParentHandling && !cfg.DisableDedup && len(g.parents) != L {
			// Missing-parent handling: a level-L slice has L parents; if any
			// was pruned earlier, every extension is prunable too.
			pr.parents++
			continue
		}
		out.cols = append(out.cols, g.cols)
		if cfg.PriorityEnumeration {
			ubs = append(ubs, ub)
		}
	}
	out.ub = ubs
	out.sc = make([]float64, out.size())
	out.se = make([]float64, out.size())
	out.sm = make([]float64, out.size())
	out.ss = make([]float64, out.size())
	return out, pr
}

// featuresDisjoint reports whether every column of a sorted union belongs to
// a distinct original feature. Columns of one feature are contiguous, so in
// sorted order any clash is adjacent.
func (st *state) featuresDisjoint(union []int) bool {
	for k := 1; k < len(union); k++ {
		if st.featOf[union[k-1]] == st.featOf[union[k]] {
			return false
		}
	}
	return true
}

// mergeCols merges two sorted column lists, returning nil if the union does
// not have exactly want entries.
func mergeCols(a, b []int, want int) []int {
	out := make([]int, 0, want)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
		if len(out) > want {
			return nil
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	if len(out) != want {
		return nil
	}
	return out
}

// encodeCols produces the canonical string identity of a sorted column list.
// It plays the role of the paper's overflow-free ND-array slice IDs plus
// frame recoding: equal slices map to equal keys.
func encodeCols(cols []int) string {
	buf := make([]byte, 4*len(cols))
	for k, c := range cols {
		binary.LittleEndian.PutUint32(buf[4*k:], uint32(c))
	}
	return string(buf)
}

// sortLevel orders the slices of a level lexicographically by column list;
// used by tests for deterministic comparison.
func sortLevel(l *level) {
	idx := make([]int, l.size())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return lessCols(l.cols[idx[a]], l.cols[idx[b]])
	})
	reorder := func(v []float64) []float64 {
		out := make([]float64, len(v))
		for k, i := range idx {
			out[k] = v[i]
		}
		return out
	}
	cols := make([][]int, l.size())
	for k, i := range idx {
		cols[k] = l.cols[i]
	}
	l.cols = cols
	l.sc = reorder(l.sc)
	l.se = reorder(l.se)
	l.sm = reorder(l.sm)
	l.ss = reorder(l.ss)
}

// equalCols reports whether two sorted column lists denote the same slice.
func equalCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lessCols(a, b []int) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}
