package core

import "testing"

func TestTopKRejectsInvalid(t *testing.T) {
	tk := newTopK(3, 10)
	tk.offer([]int{0}, -1, 50, 5, 1) // non-positive score
	tk.offer([]int{1}, 2, 5, 5, 1)   // below sigma
	if len(tk.entries) != 0 {
		t.Fatalf("entries = %d, want 0", len(tk.entries))
	}
	if tk.threshold() != 0 {
		t.Fatalf("threshold = %v, want 0 while not full", tk.threshold())
	}
}

func TestTopKOrdersAndTruncates(t *testing.T) {
	tk := newTopK(2, 1)
	tk.offer([]int{0}, 1, 10, 1, 1)
	tk.offer([]int{1}, 3, 10, 1, 1)
	tk.offer([]int{2}, 2, 10, 1, 1)
	if len(tk.entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(tk.entries))
	}
	if tk.entries[0].score != 3 || tk.entries[1].score != 2 {
		t.Fatalf("scores = %v, %v; want 3, 2", tk.entries[0].score, tk.entries[1].score)
	}
	if tk.threshold() != 2 {
		t.Fatalf("threshold = %v, want 2", tk.threshold())
	}
}

func TestTopKThresholdMonotone(t *testing.T) {
	tk := newTopK(2, 1)
	prev := tk.threshold()
	for _, sc := range []float64{0.5, 1.5, 1.0, 2.5, 3.0, 0.2} {
		tk.offer([]int{int(sc * 10)}, sc, 10, 1, 1)
		if th := tk.threshold(); th < prev {
			t.Fatalf("threshold decreased from %v to %v", prev, th)
		} else {
			prev = th
		}
	}
}

func TestTopKTieBreakPrefersLargerSlices(t *testing.T) {
	tk := newTopK(1, 1)
	tk.offer([]int{0}, 1, 10, 1, 1)
	tk.offer([]int{1}, 1, 20, 1, 1)
	if tk.entries[0].ss != 20 {
		t.Fatalf("kept size %v, want 20 (larger wins ties)", tk.entries[0].ss)
	}
}

func TestTopKSkipsWhenFullAndWorse(t *testing.T) {
	tk := newTopK(1, 1)
	tk.offer([]int{0}, 5, 10, 1, 1)
	tk.offer([]int{1}, 4, 10, 1, 1)
	if len(tk.entries) != 1 || tk.entries[0].score != 5 {
		t.Fatalf("entries = %+v", tk.entries)
	}
}
