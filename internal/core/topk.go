package core

import "sort"

// topK maintains the current best K slices under the problem constraints
// sc > 0 and |S| >= sigma (Section 4.5). Its minimum retained score is the
// monotonically increasing pruning bound sc_k of Section 3.2.
type topK struct {
	k       int
	sigma   float64
	entries []tkEntry
}

type tkEntry struct {
	cols  []int
	score float64
	ss    float64
	se    float64
	sm    float64
}

func newTopK(k int, sigma float64) *topK {
	return &topK{k: k, sigma: sigma}
}

// offer considers one evaluated slice for inclusion.
func (t *topK) offer(cols []int, score, ss, se, sm float64) {
	if score <= 0 || ss < t.sigma {
		return
	}
	if len(t.entries) == t.k {
		last := t.entries[t.k-1]
		if score < last.score || (score == last.score && ss <= last.ss) {
			return
		}
	}
	// A slice identity may occupy at most one top-K slot. With candidate
	// deduplication disabled (the Figure 3 config-5 ablation) the same slice
	// is enumerated once per parent pair and re-offered with bit-identical
	// statistics; without this check the duplicates would crowd genuinely
	// distinct slices out of the top-K and break the exactness guarantee.
	for i := range t.entries {
		if t.entries[i].score == score && equalCols(t.entries[i].cols, cols) {
			return
		}
	}
	e := tkEntry{cols: cols, score: score, ss: ss, se: se, sm: sm}
	pos := sort.Search(len(t.entries), func(i int) bool {
		if t.entries[i].score != score {
			return t.entries[i].score < score
		}
		// Deterministic tie-break: larger slices first, then lexicographic.
		if t.entries[i].ss != ss {
			return t.entries[i].ss < ss
		}
		return !lessCols(t.entries[i].cols, cols)
	})
	t.entries = append(t.entries, tkEntry{})
	copy(t.entries[pos+1:], t.entries[pos:])
	t.entries[pos] = e
	if len(t.entries) > t.k {
		t.entries = t.entries[:t.k]
	}
}

// threshold returns sc_k: the K-th best score when the list is full, else 0
// (every valid slice must beat 0 anyway).
func (t *topK) threshold() float64 {
	if len(t.entries) < t.k {
		return 0
	}
	return t.entries[len(t.entries)-1].score
}
