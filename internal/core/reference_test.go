package core

import (
	"math/rand"
	"testing"
)

// TestReferenceMatchesOptimized: the literal linear-algebra program of the
// paper and the fused production engine must return identical top-K scores
// on random datasets — the executable-specification check.
func TestReferenceMatchesOptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	trials := 40
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		ds, e := randomDataset(rng, 60+rng.Intn(120), 2+rng.Intn(4), 4)
		cfg := Config{
			K:     1 + rng.Intn(5),
			Sigma: 2 + rng.Intn(8),
			Alpha: 0.4 + 0.59*rng.Float64(),
		}
		ref, err := RunReference(ds, e, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt, err := Run(ds, e, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !approxEqualScores(scoresOf(ref.TopK), scoresOf(opt.TopK)) {
			t.Fatalf("trial %d: reference %v vs optimized %v",
				trial, scoresOf(ref.TopK), scoresOf(opt.TopK))
		}
	}
}

// TestReferenceMatchesBruteForce closes the triangle: the reference program
// must also be exact.
func TestReferenceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 10; trial++ {
		ds, e := randomDataset(rng, 100, 3, 3)
		cfg := Config{K: 4, Sigma: 3, Alpha: 0.85}
		ref, err := RunReference(ds, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForce(ds, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqualScores(scoresOf(ref.TopK), scoresOf(want)) {
			t.Fatalf("trial %d: %v vs %v", trial, scoresOf(ref.TopK), scoresOf(want))
		}
	}
}

func TestReferenceValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	ds, e := randomDataset(rng, 30, 2, 3)
	if _, err := RunReference(ds, e[:10], Config{}); err == nil {
		t.Error("expected error for short error vector")
	}
	e[0] = -1
	if _, err := RunReference(ds, e, Config{Sigma: 2}); err == nil {
		t.Error("expected error for negative error")
	}
}

func TestReferenceLevelCap(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	ds, e := randomDataset(rng, 120, 4, 3)
	res, err := RunReference(ds, e, Config{K: 4, Sigma: 3, Alpha: 0.9, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.TopK {
		if len(s.Predicates) > 2 {
			t.Fatalf("slice with %d predicates despite MaxLevel 2", len(s.Predicates))
		}
	}
	for _, ls := range res.Levels {
		if ls.Level > 2 {
			t.Fatalf("level %d enumerated despite cap", ls.Level)
		}
	}
}
