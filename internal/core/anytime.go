package core

import (
	"time"

	"sliceline/internal/frame"
)

// Anytime mode: Config.Budget bounds the enumeration wall clock at lattice
// level boundaries, and Config.OnSnapshot streams the current top-K with a
// certified optimality gap after every completed level. The gap reuses the
// Equation-3 score upper bounds already computed for pruning:
//
// Every feasible slice not yet evaluated descends either from a slice on
// the surviving frontier of the last completed level, or only from pruned
// candidates. A descendant's statistics are dominated elementwise by its
// ancestor's (rows only shrink and e, w >= 0), and upperBound is monotone
// non-decreasing in (ss, se, sm), so ub(ancestor stats) bounds the whole
// subtree. Pruned branches contribute nothing beyond the current threshold:
// size-pruned subtrees are infeasible outright, and score-/parent-pruned
// ones were cut precisely because their bound was <= the threshold at prune
// time, which never decreases. Hence
//
//	gap = max(0, max over frontier of ub(ss, se, sm) − sc_k)
//
// certifies that no unexplored slice beats the K-th best score by more than
// gap. The frontier only ever produces children whose bounds are <= their
// parents' and the threshold is monotone, so the gap is non-increasing
// across snapshots; it is exactly 0 once the frontier is empty or the full
// lattice depth has been enumerated.

// gapBound computes the certified optimality gap after a completed level
// whose evaluated slices form the surviving frontier.
func (st *state) gapBound(frontier *level, completedLevel int, threshold float64) float64 {
	if completedLevel >= st.m || frontier == nil || frontier.size() == 0 {
		return 0
	}
	gap := 0.0
	for i := range frontier.cols {
		ub := st.sc.upperBound(frontier.ss[i], frontier.se[i], frontier.sm[i])
		if g := ub - threshold; g > gap {
			gap = g
		}
	}
	return gap
}

// emitSnapshot fires Config.OnSnapshot with the current decoded + annotated
// top-K and the gap certified by the given frontier. No-op without a
// callback.
func (st *state) emitSnapshot(tk *topK, frontier *level, lvl int, feats []frame.Feature, start time.Time) {
	if st.cfg.OnSnapshot == nil {
		return
	}
	slices := st.decode(tk, feats)
	st.annotate(slices, tk.entries)
	st.cfg.OnSnapshot(Snapshot{
		Level:   lvl,
		TopK:    slices,
		Gap:     st.gapBound(frontier, lvl, tk.threshold()),
		Elapsed: time.Since(start),
	})
}

// budgetExceeded reports whether the anytime budget has elapsed. A zero
// budget never expires.
func (st *state) budgetExceeded(start time.Time) bool {
	return st.cfg.Budget > 0 && time.Since(start) >= st.cfg.Budget
}
