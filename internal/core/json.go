package core

import (
	"encoding/json"
	"fmt"
	"time"
)

// ResultSchemaVersion identifies the JSON layout written by Result.
// MarshalJSON. Version 2 added the result-level optimality gap (`gap`) and
// the per-slice statistical annotations (`p_value`, `q_value`,
// `significant`, `diff_sign`); version-1 documents are a strict subset and
// UnmarshalJSON still accepts them (the new fields read as zero). Other
// versions are refused instead of silently misread.
const ResultSchemaVersion = 2

// The json* shadow structs pin the interchange layout: explicit snake_case
// field names and integer-nanosecond durations, independent of how the Go
// structs evolve. They are what `sliceline -json` emits and what
// `slreport -result` consumes.

type jsonPredicate struct {
	Feature int    `json:"feature"`
	Name    string `json:"name"`
	Value   int    `json:"value"`
	Label   string `json:"label,omitempty"`
}

type jsonSlice struct {
	Predicates  []jsonPredicate `json:"predicates"`
	Score       float64         `json:"score"`
	Size        int             `json:"size"`
	TotalError  float64         `json:"total_error"`
	MaxError    float64         `json:"max_error"`
	AvgError    float64         `json:"avg_error"`
	PValue      float64         `json:"p_value"`
	QValue      float64         `json:"q_value"`
	Significant bool            `json:"significant,omitempty"`
	DiffSign    int             `json:"diff_sign,omitempty"`
}

type jsonLevelStats struct {
	Level      int   `json:"level"`
	Candidates int   `json:"candidates"`
	Valid      int   `json:"valid"`
	Pruned     int   `json:"pruned"`
	ElapsedNS  int64 `json:"elapsed_ns"`
}

type jsonResult struct {
	SchemaVersion int              `json:"schema_version"`
	TopK          []jsonSlice      `json:"top_k"`
	Levels        []jsonLevelStats `json:"levels"`
	N             int              `json:"n"`
	AvgError      float64          `json:"avg_error"`
	Sigma         int              `json:"sigma"`
	Alpha         float64          `json:"alpha"`
	ElapsedNS     int64            `json:"elapsed_ns"`
	Truncated     bool             `json:"truncated,omitempty"`
	Gap           float64          `json:"gap,omitempty"`
}

// MarshalJSON implements the stable interchange form of a predicate.
func (p Predicate) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonPredicate(p))
}

// UnmarshalJSON implements the stable interchange form of a predicate.
func (p *Predicate) UnmarshalJSON(data []byte) error {
	var jp jsonPredicate
	if err := json.Unmarshal(data, &jp); err != nil {
		return err
	}
	*p = Predicate(jp)
	return nil
}

// MarshalJSON implements the stable interchange form of a slice.
func (s Slice) MarshalJSON() ([]byte, error) {
	js := jsonSlice{
		Predicates:  make([]jsonPredicate, len(s.Predicates)),
		Score:       s.Score,
		Size:        s.Size,
		TotalError:  s.TotalError,
		MaxError:    s.MaxError,
		AvgError:    s.AvgError,
		PValue:      s.PValue,
		QValue:      s.QValue,
		Significant: s.Significant,
		DiffSign:    s.DiffSign,
	}
	for i, p := range s.Predicates {
		js.Predicates[i] = jsonPredicate(p)
	}
	return json.Marshal(js)
}

// UnmarshalJSON implements the stable interchange form of a slice.
func (s *Slice) UnmarshalJSON(data []byte) error {
	var js jsonSlice
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	*s = Slice{
		Score:       js.Score,
		Size:        js.Size,
		TotalError:  js.TotalError,
		MaxError:    js.MaxError,
		AvgError:    js.AvgError,
		PValue:      js.PValue,
		QValue:      js.QValue,
		Significant: js.Significant,
		DiffSign:    js.DiffSign,
	}
	if len(js.Predicates) > 0 {
		s.Predicates = make([]Predicate, len(js.Predicates))
		for i, p := range js.Predicates {
			s.Predicates[i] = Predicate(p)
		}
	}
	return nil
}

// MarshalJSON implements the stable interchange form of level statistics.
func (l LevelStats) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonLevelStats{
		Level:      l.Level,
		Candidates: l.Candidates,
		Valid:      l.Valid,
		Pruned:     l.Pruned,
		ElapsedNS:  l.Elapsed.Nanoseconds(),
	})
}

// UnmarshalJSON implements the stable interchange form of level statistics.
func (l *LevelStats) UnmarshalJSON(data []byte) error {
	var jl jsonLevelStats
	if err := json.Unmarshal(data, &jl); err != nil {
		return err
	}
	*l = LevelStats{
		Level:      jl.Level,
		Candidates: jl.Candidates,
		Valid:      jl.Valid,
		Pruned:     jl.Pruned,
		Elapsed:    time.Duration(jl.ElapsedNS),
	}
	return nil
}

// MarshalJSON renders the result in its versioned interchange form.
func (r Result) MarshalJSON() ([]byte, error) {
	jr := jsonResult{
		SchemaVersion: ResultSchemaVersion,
		TopK:          make([]jsonSlice, 0, len(r.TopK)),
		Levels:        make([]jsonLevelStats, 0, len(r.Levels)),
		N:             r.N,
		AvgError:      r.AvgError,
		Sigma:         r.Sigma,
		Alpha:         r.Alpha,
		ElapsedNS:     r.Elapsed.Nanoseconds(),
		Truncated:     r.Truncated,
		Gap:           r.Gap,
	}
	for _, s := range r.TopK {
		preds := make([]jsonPredicate, len(s.Predicates))
		for i, p := range s.Predicates {
			preds[i] = jsonPredicate(p)
		}
		jr.TopK = append(jr.TopK, jsonSlice{
			Predicates: preds, Score: s.Score, Size: s.Size,
			TotalError: s.TotalError, MaxError: s.MaxError, AvgError: s.AvgError,
			PValue: s.PValue, QValue: s.QValue, Significant: s.Significant, DiffSign: s.DiffSign,
		})
	}
	for _, l := range r.Levels {
		jr.Levels = append(jr.Levels, jsonLevelStats{
			Level: l.Level, Candidates: l.Candidates, Valid: l.Valid,
			Pruned: l.Pruned, ElapsedNS: l.Elapsed.Nanoseconds(),
		})
	}
	return json.Marshal(jr)
}

// UnmarshalJSON parses the versioned interchange form, rejecting unknown
// schema versions.
func (r *Result) UnmarshalJSON(data []byte) error {
	var jr jsonResult
	if err := json.Unmarshal(data, &jr); err != nil {
		return err
	}
	// Version 1 is a strict subset of version 2 (no gap, no per-slice
	// statistics): old payloads decode with those fields zero.
	if jr.SchemaVersion != ResultSchemaVersion && jr.SchemaVersion != 1 {
		return fmt.Errorf("core: result JSON has schema_version %d, this build reads %d", jr.SchemaVersion, ResultSchemaVersion)
	}
	out := Result{
		N:         jr.N,
		AvgError:  jr.AvgError,
		Sigma:     jr.Sigma,
		Alpha:     jr.Alpha,
		Elapsed:   time.Duration(jr.ElapsedNS),
		Truncated: jr.Truncated,
		Gap:       jr.Gap,
	}
	for _, js := range jr.TopK {
		s := Slice{
			Score: js.Score, Size: js.Size,
			TotalError: js.TotalError, MaxError: js.MaxError, AvgError: js.AvgError,
			PValue: js.PValue, QValue: js.QValue, Significant: js.Significant, DiffSign: js.DiffSign,
		}
		for _, p := range js.Predicates {
			s.Predicates = append(s.Predicates, Predicate(p))
		}
		out.TopK = append(out.TopK, s)
	}
	for _, jl := range jr.Levels {
		out.Levels = append(out.Levels, LevelStats{
			Level: jl.Level, Candidates: jl.Candidates, Valid: jl.Valid,
			Pruned: jl.Pruned, Elapsed: time.Duration(jl.ElapsedNS),
		})
	}
	*r = out
	return nil
}
