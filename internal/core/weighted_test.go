package core

import (
	"math/rand"
	"testing"

	"sliceline/internal/frame"
)

// TestWeightedEqualsReplicated: running with integer weights k must be
// exactly equivalent to physically replicating every row k times — the
// deduplicated form of the paper's row-scaling construction.
func TestWeightedEqualsReplicated(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	for trial := 0; trial < 12; trial++ {
		ds, e := randomDataset(rng, 80, 3, 3)
		k := 2 + rng.Intn(4)
		rep := ds.ReplicateRows(k)
		repErr := make([]float64, 0, len(e)*k)
		for r := 0; r < k; r++ {
			repErr = append(repErr, e...)
		}
		w := make([]float64, len(e))
		for i := range w {
			w[i] = float64(k)
		}
		cfg := Config{K: 5, Sigma: 6, Alpha: 0.85}
		replicated, err := Run(rep, repErr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		weighted, err := RunWeighted(ds, e, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqualScores(scoresOf(replicated.TopK), scoresOf(weighted.TopK)) {
			t.Fatalf("trial %d (k=%d): replicated %v vs weighted %v",
				trial, k, scoresOf(replicated.TopK), scoresOf(weighted.TopK))
		}
		for i := range weighted.TopK {
			if weighted.TopK[i].Size != replicated.TopK[i].Size {
				t.Fatalf("trial %d: weighted size %d vs replicated %d",
					trial, weighted.TopK[i].Size, replicated.TopK[i].Size)
			}
		}
	}
}

// TestWeightedNonUniform: per-row weights shift both average error and
// slice sizes; verify against a manually expanded dataset.
func TestWeightedNonUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	ds, e := randomDataset(rng, 60, 3, 3)
	w := make([]float64, 60)
	var expandedRows []int
	for i := range w {
		k := 1 + rng.Intn(3)
		w[i] = float64(k)
		for r := 0; r < k; r++ {
			expandedRows = append(expandedRows, i)
		}
	}
	// Build the physically expanded dataset.
	expX := make([]int, 0, len(expandedRows)*3)
	expE := make([]float64, 0, len(expandedRows))
	for _, i := range expandedRows {
		expX = append(expX, ds.X0.Row(i)...)
		expE = append(expE, e[i])
	}
	expanded := &frame.Dataset{
		Name:     "expanded",
		X0:       &frame.IntMatrix{Rows: len(expandedRows), Cols: 3, Data: expX},
		Features: ds.Features,
	}
	cfg := Config{K: 5, Sigma: 4, Alpha: 0.85}
	want, err := Run(expanded, expE, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunWeighted(ds, e, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqualScores(scoresOf(got.TopK), scoresOf(want.TopK)) {
		t.Fatalf("weighted %v vs expanded %v", scoresOf(got.TopK), scoresOf(want.TopK))
	}
}

func TestWeightedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	ds, e := randomDataset(rng, 30, 2, 3)
	w := make([]float64, 30)
	for i := range w {
		w[i] = 1
	}
	if _, err := RunWeighted(ds, e, w[:10], Config{Sigma: 2}); err == nil {
		t.Error("expected error for short weights")
	}
	w[5] = -1
	if _, err := RunWeighted(ds, e, w, Config{Sigma: 2}); err == nil {
		t.Error("expected error for negative weight")
	}
	w[5] = 0
	if _, err := RunWeighted(ds, e, w, Config{Sigma: 2}); err != nil {
		t.Errorf("zero weight among positives must be legal (windowed retirement): %v", err)
	}
	w[5] = 1
	if _, err := RunWeighted(ds, e, w, Config{Sigma: 2, Evaluator: &faultyEvaluator{}}); err == nil {
		t.Error("expected error combining weights with external evaluator")
	}
}

// TestWeightedDenseEvalAgrees: the dense materialized path must honor
// weights too.
func TestWeightedDenseEvalAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	ds, e := randomDataset(rng, 100, 3, 3)
	w := make([]float64, 100)
	for i := range w {
		w[i] = float64(1 + rng.Intn(3))
	}
	cfg := Config{K: 4, Sigma: 4, Alpha: 0.85}
	fused, err := RunWeighted(ds, e, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DenseEval = true
	dense, err := RunWeighted(ds, e, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqualScores(scoresOf(fused.TopK), scoresOf(dense.TopK)) {
		t.Fatalf("fused %v vs dense %v", scoresOf(fused.TopK), scoresOf(dense.TopK))
	}
}
