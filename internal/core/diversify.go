package core

import "sliceline/internal/frame"

// Diversify greedily filters a score-ordered slice list so that no kept
// slice's row set has Jaccard similarity above maxJaccard with any earlier
// kept slice. Because the lattice allows overlapping slices, the raw top-K
// is often dominated by near-duplicates of one problematic subgroup (a
// parent plus its refinements, or copies induced by correlated features);
// diversification surfaces distinct problems instead. maxJaccard in [0, 1):
// 0 keeps only disjoint slices, values around 0.5 drop refinements that
// mostly repeat a kept slice.
func Diversify(ds *frame.Dataset, slices []Slice, maxJaccard float64) ([]Slice, error) {
	var kept []Slice
	var keptRows [][]int
	for _, s := range slices {
		rows, err := SliceRows(ds, s)
		if err != nil {
			return nil, err
		}
		dominated := false
		for _, prev := range keptRows {
			if jaccard(rows, prev) > maxJaccard {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		kept = append(kept, s)
		keptRows = append(keptRows, rows)
	}
	return kept, nil
}

// jaccard computes |a ∩ b| / |a ∪ b| for two sorted index sets.
func jaccard(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}
