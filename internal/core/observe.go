package core

import "sliceline/internal/obs"

// coreObs bundles the pre-resolved metric handles of the enumeration loop.
// Handles are looked up once per run; with a nil registry every handle is nil
// and all updates are no-ops, so the disabled path costs nothing beyond the
// nil checks inside the handle methods.
type coreObs struct {
	runs       *obs.Counter
	levels     *obs.Counter
	candidates *obs.Counter
	pruned     *obs.Counter
	threshold  *obs.Gauge
	levelSecs  *obs.Histogram
	evalSecs   *obs.Histogram
	ckSaves    *obs.Counter
	ckLoads    *obs.Counter
}

func newCoreObs(r *obs.Registry) coreObs {
	return coreObs{
		runs:       r.Counter("sl_core_runs_total", "SliceLine enumeration runs started."),
		levels:     r.Counter("sl_core_levels_total", "Lattice levels enumerated."),
		candidates: r.Counter("sl_core_candidates_total", "Slice candidates evaluated."),
		pruned:     r.Counter("sl_core_pruned_total", "Pair-candidates pruned before evaluation."),
		threshold:  r.Gauge("sl_core_topk_threshold", "Current top-K score pruning threshold sc_k."),
		levelSecs:  r.Histogram("sl_core_level_seconds", "Wall time per lattice level.", nil),
		evalSecs:   r.Histogram("sl_core_eval_seconds", "Wall time per candidate-evaluation call.", nil),
		ckSaves:    r.Counter("sl_core_checkpoint_saves_total", "Checkpoints written."),
		ckLoads:    r.Counter("sl_core_checkpoint_loads_total", "Checkpoints restored on resume."),
	}
}

// setPruneAttrs exposes a level's per-rule pruning breakdown as span
// attributes. A nil span skips the work entirely.
func setPruneAttrs(sp *obs.Span, pr pruneStats) {
	if sp == nil {
		return
	}
	sp.SetInt("pruned_pair_size", int64(pr.pairSize))
	sp.SetInt("pruned_pair_score", int64(pr.pairScore))
	sp.SetInt("pruned_dead_pair", int64(pr.dead))
	sp.SetInt("pruned_size", int64(pr.size))
	sp.SetInt("pruned_score", int64(pr.score))
	sp.SetInt("pruned_parents", int64(pr.parents))
}
