package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"sliceline/internal/matrix"
	"sliceline/internal/obs"
)

// ExternalEvaluator evaluates slice candidates against the (reduced) one-hot
// dataset on behalf of the enumeration loop. Implementations may distribute
// the evaluation (package dist ships row-partitioned local and TCP-based
// backends). Setup is called once per run with the reduced matrix and error
// vector before any Eval call.
//
// The context carries the run's deadline and cancellation: implementations
// that perform network calls must abort promptly when it is done, so a
// cancelled run does not leave RPCs in flight.
type ExternalEvaluator interface {
	Setup(ctx context.Context, x *matrix.CSR, e []float64) error
	// Eval returns, per candidate (a sorted list of reduced one-hot
	// columns), the slice size, total error and maximum tuple error.
	Eval(ctx context.Context, cols [][]int, level int) (ss, se, sm []float64, err error)
}

// evalSlices evaluates all level-L candidates against the reduced one-hot
// matrix, the vectorized evaluation of Section 4.4 / Equation 10:
//
//	I  = ((X Sᵀ) = L)
//	ss = colSums(I)   se = (eᵀ I)ᵀ   sm = colMaxs(I · e)
//
// The implementation is the fused, hybrid-parallel form: slices are grouped
// into blocks of cfg.BlockSize (b=1 reproduces the task-parallel plan of
// Algorithm 1 lines 16-18, b=nrow(S) the data-parallel plan), each block
// scans X once and counts predicate matches through a per-block inverted
// column index, never materializing the n × nrow(S) indicator I.
func (st *state) evalSlices(ctx context.Context, lv *level, L int) error {
	nSlices := lv.size()
	if nSlices == 0 {
		return nil
	}
	// The eval span parents under whatever span the context carries (the
	// level span during enumeration). Nil in, nil out: with tracing off this
	// whole block is a handful of nil checks and never allocates.
	sp := obs.FromContext(ctx).Child("core.eval")
	sp.SetInt("level", int64(L))
	sp.SetInt("candidates", int64(nSlices))
	evalStart := time.Now()
	switch {
	case st.eval != nil:
		sp.SetStr("backend", "external")
		ss, se, sm, err := st.eval.Eval(obs.ContextWith(ctx, sp), lv.cols, L)
		if err != nil {
			sp.End()
			return err
		}
		if len(ss) != nSlices || len(se) != nSlices || len(sm) != nSlices {
			sp.End()
			return fmt.Errorf("core: evaluator returned %d/%d/%d statistics for %d candidates",
				len(ss), len(se), len(sm), nSlices)
		}
		copy(lv.ss, ss)
		copy(lv.se, se)
		copy(lv.sm, sm)
	case st.memo != nil:
		// Incremental path: statistics memoized across generations by
		// original one-hot column ids; only rows appended since a
		// candidate's last evaluation are scanned.
		sp.SetStr("backend", "memo")
		st.memo.evalLevel(st.origCols, st.e, lv)
	case st.cfg.DenseEval:
		sp.SetStr("backend", "dense")
		st.evalDense(lv, L)
	default:
		// Per-level kernel selection (Config.BitsetEval): packed-bitset
		// AND+popcount when the reduced columns are dense enough, the fused
		// CSR kernel otherwise. The packing happens once, on the first level
		// that takes the bitset path.
		sp.SetStr("backend", st.kernel.Backend())
		st.kernel.Eval(lv.cols, L, st.cfg.BlockSize, lv.ss, lv.se, lv.sm)
	}
	st.ob.evalSecs.Observe(time.Since(evalStart).Seconds())
	sp.End()
	for i := 0; i < nSlices; i++ {
		lv.sc[i] = st.sc.score(lv.ss[i], lv.se[i])
	}
	return nil
}

// EvalPartition evaluates candidates against one row partition of the
// one-hot matrix, accumulating into ss/se/sm (callers pass zeroed slices of
// length len(cols)). blockSize <= 0 selects the automatic size. It is the
// kernel shared by the local evaluator and the distributed workers.
func EvalPartition(x *matrix.CSR, e []float64, cols [][]int, level, blockSize int, ss, se, sm []float64) {
	EvalPartitionWeighted(x, e, nil, cols, level, blockSize, ss, se, sm)
}

// EvalPartitionWeighted is EvalPartition with optional row weights: row i
// contributes w[i] to slice sizes and w[i]·e[i] to slice errors (nil w means
// unit weights). The maximum tuple error sm ignores the magnitude of positive
// weights but excludes zero-weight (retired) rows entirely.
func EvalPartitionWeighted(x *matrix.CSR, e, w []float64, cols [][]int, level, blockSize int, ss, se, sm []float64) {
	nSlices := len(cols)
	if nSlices == 0 {
		return
	}
	b := blockSize
	if b <= 0 {
		// Auto: one scan of X per block is the dominant cost, so prefer few
		// large blocks while leaving enough blocks to keep all workers busy.
		b = (nSlices + 4*matrix.MaxWorkers() - 1) / (4 * matrix.MaxWorkers())
		if b < DefaultBlockSize {
			b = DefaultBlockSize
		}
	}
	if b > nSlices {
		b = nSlices
	}
	nBlocks := (nSlices + b - 1) / b
	if nBlocks == 1 {
		evalBlockRowParallel(x, e, w, cols, level, 0, nSlices, ss, se, sm)
		return
	}
	matrix.ParallelFor(nBlocks, func(lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			s0 := blk * b
			s1 := s0 + b
			if s1 > nSlices {
				s1 = nSlices
			}
			evalBlockSerial(x, e, w, cols, level, s0, s1, ss, se, sm)
		}
	})
}

// blockIndex is the inverted index of one evaluation block: for each reduced
// column, the block-local ids of slices whose definition contains it.
type blockIndex struct {
	postings [][]int32
	touched  []int32
	counts   []int32
}

func buildBlockIndex(nCols int, cols [][]int, s0, s1 int) *blockIndex {
	bi := &blockIndex{
		postings: make([][]int32, nCols),
		counts:   make([]int32, s1-s0),
	}
	for s := s0; s < s1; s++ {
		for _, c := range cols[s] {
			bi.postings[c] = append(bi.postings[c], int32(s-s0))
		}
	}
	return bi
}

// scanRow streams one row of X through the index, incrementing per-slice
// match counters and recording which slices were touched.
func (bi *blockIndex) scanRow(cols []int) {
	for _, c := range cols {
		for _, s := range bi.postings[c] {
			if bi.counts[s] == 0 {
				bi.touched = append(bi.touched, s)
			}
			bi.counts[s]++
		}
	}
}

// evalBlockSerial scans the full partition once for slices [s0,s1), serially.
func evalBlockSerial(x *matrix.CSR, e, w []float64, cols [][]int, L, s0, s1 int, ss, se, sm []float64) {
	bi := buildBlockIndex(x.Cols(), cols, s0, s1)
	n := x.Rows()
	want := int32(L)
	for i := 0; i < n; i++ {
		rowCols, _ := x.RowEntries(i)
		bi.scanRow(rowCols)
		ei := e[i]
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		for _, s := range bi.touched {
			if bi.counts[s] == want {
				g := int(s) + s0
				ss[g] += wi
				se[g] += wi * ei
				if wi > 0 && ei > sm[g] {
					sm[g] = ei
				}
			}
			bi.counts[s] = 0
		}
		bi.touched = bi.touched[:0]
	}
}

// evalBlockRowParallel evaluates one block with row-partitioned parallelism
// (the data-parallel plan: rows of X are scanned concurrently and per-worker
// partial statistics are merged), used when all slices fit a single block.
//
// Partials are merged in row-chunk order, not goroutine-completion order:
// float64 addition is not associative, so a completion-order merge would make
// the same run return se values that differ in the last ULPs from one
// invocation to the next. The row chunking itself is deterministic (it
// depends only on n and MaxWorkers), so repeated runs are bit-identical.
func evalBlockRowParallel(x *matrix.CSR, e, w []float64, cols [][]int, L, s0, s1 int, ss, se, sm []float64) {
	width := s1 - s0
	n := x.Rows()
	workers := matrix.MaxWorkers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		evalBlockSerial(x, e, w, cols, L, s0, s1, ss, se, sm)
		return
	}
	type partial struct {
		ss, se, sm []float64
	}
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk
	partials := make([]partial, nChunks)
	want := int32(L)
	var wg sync.WaitGroup
	for c := 0; c < nChunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lo := c * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			bi := buildBlockIndex(x.Cols(), cols, s0, s1)
			p := partial{
				ss: make([]float64, width),
				se: make([]float64, width),
				sm: make([]float64, width),
			}
			for i := lo; i < hi; i++ {
				rowCols, _ := x.RowEntries(i)
				bi.scanRow(rowCols)
				ei := e[i]
				wi := 1.0
				if w != nil {
					wi = w[i]
				}
				for _, s := range bi.touched {
					if bi.counts[s] == want {
						p.ss[s] += wi
						p.se[s] += wi * ei
						if wi > 0 && ei > p.sm[s] {
							p.sm[s] = ei
						}
					}
					bi.counts[s] = 0
				}
				bi.touched = bi.touched[:0]
			}
			partials[c] = p
		}(c)
	}
	wg.Wait()
	for _, p := range partials {
		for s := 0; s < width; s++ {
			g := s + s0
			ss[g] += p.ss[s]
			se[g] += p.se[s]
			if p.sm[s] > sm[g] {
				sm[g] = p.sm[s]
			}
		}
	}
}

// evalDense evaluates candidates by materializing the X·Sᵀ product and the
// 0/1 indicator I densely in column chunks, mimicking ML systems with
// limited sparsity exploitation across operations (the concern Section 4.4
// raises). It exists for the kernel-quality comparison experiment; the
// fused kernel above is the production path.
func (st *state) evalDense(lv *level, L int) {
	const chunk = 512
	n := st.x.Rows()
	// Zero-weight (retired) rows are excluded from the max tuple error; since
	// e >= 0, zeroing their entries drops them from the column max.
	smE := st.e
	if st.w != nil {
		smE = make([]float64, len(st.e))
		for i, v := range st.e {
			if st.w[i] > 0 {
				smE[i] = v
			}
		}
	}
	for s0 := 0; s0 < lv.size(); s0 += chunk {
		s1 := s0 + chunk
		if s1 > lv.size() {
			s1 = lv.size()
		}
		// Materialize S for the chunk as CSR, then XSᵀ densely.
		var ts []matrix.Triple
		for s := s0; s < s1; s++ {
			for _, c := range lv.cols[s] {
				ts = append(ts, matrix.Triple{Row: s - s0, Col: c, Val: 1})
			}
		}
		sMat := matrix.CSRFromTriples(s1-s0, st.x.Cols(), ts)
		prod := matrix.MulCSRT(st.x, sMat)       // n × chunk dense
		ind := matrix.EqScalar(prod, float64(L)) // I = ((X Sᵀ) = L)
		var ssC, seC []float64
		if st.w == nil {
			ssC = matrix.ColSums(ind)          // ss = colSums(I)
			seC = matrix.MatVec(ind.T(), st.e) // se = (eᵀ I)ᵀ
		} else {
			ssC = matrix.MatVec(ind.T(), st.w)
			we := make([]float64, len(st.e))
			for i := range we {
				we[i] = st.w[i] * st.e[i]
			}
			seC = matrix.MatVec(ind.T(), we)
		}
		smC := matrix.ColMaxs(matrix.ScaleRows(ind, smE))
		for s := s0; s < s1; s++ {
			lv.ss[s] = ssC[s-s0]
			lv.se[s] = seC[s-s0]
			lv.sm[s] = smC[s-s0]
		}
		_ = n
	}
}
