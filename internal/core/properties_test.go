package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"sliceline/internal/fptol"
	"sliceline/internal/matrix"
)

// TestMonotonicityAlongLatticePaths verifies the Section 3.1 properties on
// random data by direct scanning: extending a slice with one more predicate
// never increases its size, total error, or maximum tuple error.
func TestMonotonicityAlongLatticePaths(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(60))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds, e := randomDataset(rng, 80, 4, 3)
		stats := func(preds map[int]int) (ss, se, sm float64) {
			for i := 0; i < ds.NumRows(); i++ {
				ok := true
				for f, v := range preds {
					if ds.X0.At(i, f) != v {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				ss++
				se += e[i]
				if e[i] > sm {
					sm = e[i]
				}
			}
			return
		}
		// Random parent slice, then a random extension.
		parent := map[int]int{}
		f1 := rng.Intn(4)
		parent[f1] = 1 + rng.Intn(ds.Features[f1].Domain)
		if rng.Intn(2) == 1 {
			f2 := (f1 + 1) % 4
			parent[f2] = 1 + rng.Intn(ds.Features[f2].Domain)
		}
		child := map[int]int{}
		for k, v := range parent {
			child[k] = v
		}
		for f := 0; f < 4; f++ {
			if _, used := child[f]; !used {
				child[f] = 1 + rng.Intn(ds.Features[f].Domain)
				break
			}
		}
		pss, pse, psm := stats(parent)
		css, cse, csm := stats(child)
		return css <= pss && cse <= pse+1e-12 && csm <= psm
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestUpperBoundDominatesChildren: for random parents, the Equation-3 upper
// bound computed from the parent's statistics must dominate the actual score
// of every child slice that meets the support threshold.
func TestUpperBoundDominatesChildren(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(61))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds, e := randomDataset(rng, 120, 3, 3)
		sigma := 2 + rng.Intn(6)
		sc := newScorer(ds.NumRows(), e, 0.3+0.69*rng.Float64(), sigma)
		stats := func(preds map[int]int) (ss, se, sm float64) {
			for i := 0; i < ds.NumRows(); i++ {
				ok := true
				for f, v := range preds {
					if ds.X0.At(i, f) != v {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				ss++
				se += e[i]
				if e[i] > sm {
					sm = e[i]
				}
			}
			return
		}
		f1 := rng.Intn(3)
		v1 := 1 + rng.Intn(ds.Features[f1].Domain)
		pss, pse, psm := stats(map[int]int{f1: v1})
		ub := sc.upperBound(pss, pse, psm)
		// Every 2-predicate child extending the parent:
		for f2 := 0; f2 < 3; f2++ {
			if f2 == f1 {
				continue
			}
			for v2 := 1; v2 <= ds.Features[f2].Domain; v2++ {
				css, cse, _ := stats(map[int]int{f1: v1, f2: v2})
				if css < float64(sigma) {
					continue
				}
				if s := sc.score(css, cse); s > ub && !fptol.DefaultTol.Close(s, ub) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// faultyEvaluator returns malformed results to exercise the driver's
// validation.
type faultyEvaluator struct {
	failSetup bool
	failEval  bool
	short     bool
}

func (f *faultyEvaluator) Setup(ctx context.Context, x *matrix.CSR, e []float64) error {
	if f.failSetup {
		return errors.New("injected setup failure")
	}
	return nil
}

func (f *faultyEvaluator) Eval(ctx context.Context, cols [][]int, level int) ([]float64, []float64, []float64, error) {
	if f.failEval {
		return nil, nil, nil, errors.New("injected eval failure")
	}
	if f.short {
		return []float64{1}, []float64{1}, []float64{1}, nil
	}
	n := len(cols)
	return make([]float64, n), make([]float64, n), make([]float64, n), nil
}

func TestEvaluatorFailureInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	ds, e := randomDataset(rng, 100, 3, 3)
	cases := []struct {
		name string
		ev   *faultyEvaluator
	}{
		{"setup-failure", &faultyEvaluator{failSetup: true}},
		{"eval-failure", &faultyEvaluator{failEval: true}},
		{"short-result", &faultyEvaluator{short: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Run(ds, e, Config{K: 4, Sigma: 2, Alpha: 0.9, Evaluator: c.ev})
			if err == nil {
				t.Fatal("expected error from faulty evaluator")
			}
		})
	}
}
