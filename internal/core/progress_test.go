package core

import (
	"math/rand"
	"testing"
)

func TestOnLevelCallback(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	ds, e := randomDataset(rng, 150, 4, 3)
	var seen []LevelStats
	cfg := Config{
		K: 4, Sigma: 3, Alpha: 0.9,
		OnLevel: func(ls LevelStats) { seen = append(seen, ls) },
	}
	res, err := Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Levels) {
		t.Fatalf("callback fired %d times, %d levels recorded", len(seen), len(res.Levels))
	}
	for i := range seen {
		if seen[i] != res.Levels[i] {
			t.Fatalf("callback level %d = %+v, recorded %+v", i, seen[i], res.Levels[i])
		}
	}
	if seen[0].Level != 1 {
		t.Fatalf("first callback level = %d, want 1", seen[0].Level)
	}
}
