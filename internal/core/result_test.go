package core

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// TestResultJSONRoundTrip: the CLI's -json output must carry the full
// result faithfully.
func TestResultJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	ds, e := randomDataset(rng, 120, 3, 3)
	res, err := Run(ds, e, Config{K: 4, Sigma: 3, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != res.N || back.Sigma != res.Sigma || len(back.TopK) != len(res.TopK) {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	for i := range res.TopK {
		if back.TopK[i].Score != res.TopK[i].Score || back.TopK[i].Size != res.TopK[i].Size {
			t.Fatalf("slice %d differs after round trip", i)
		}
		if len(back.TopK[i].Predicates) != len(res.TopK[i].Predicates) {
			t.Fatalf("slice %d predicates lost", i)
		}
	}
	if len(back.Levels) != len(res.Levels) {
		t.Fatal("level stats lost")
	}
}

func TestSliceStringFormat(t *testing.T) {
	s := Slice{
		Predicates: []Predicate{{Name: "a", Value: 1}, {Name: "b", Value: 2}},
		Score:      1.5, Size: 10, AvgError: 0.25,
	}
	got := s.String()
	want := "[a=1 AND b=2] score=1.5000 size=10 avgErr=0.2500"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestConfigAlphaClamped(t *testing.T) {
	cfg := Config{Alpha: 5}.WithDefaults(100)
	if cfg.Alpha != 1 {
		t.Fatalf("alpha = %v, want clamped to 1", cfg.Alpha)
	}
}
