package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"sliceline/internal/frame"
	"sliceline/internal/matrix"
	"sliceline/internal/obs"
)

// evalAllocFixture builds the state and candidate level used by the
// nil-observer allocation proofs: the instrumented evalSlices must cost
// exactly as many allocations as the bare kernel plus scoring loop.
func evalAllocFixture(tb testing.TB) (*state, *level) {
	tb.Helper()
	rng := rand.New(rand.NewSource(11))
	ds, e := randomDataset(rng, 500, 5, 4)
	enc, err := frame.OneHot(ds)
	if err != nil {
		tb.Fatal(err)
	}
	var pairs [][]int
	for c1 := 0; c1 < enc.Width(); c1++ {
		for c2 := c1 + 1; c2 < enc.Width(); c2++ {
			if enc.FeatureOf(c1) != enc.FeatureOf(c2) {
				pairs = append(pairs, []int{c1, c2})
			}
		}
	}
	cfg := Config{K: 4, Sigma: 10, Alpha: 0.95}.WithDefaults(len(e))
	st := &state{
		cfg:    cfg,
		sc:     newScorer(len(e), e, cfg.Alpha, cfg.Sigma),
		x:      enc.X,
		e:      e,
		kernel: NewKernel(enc.X, e, nil, cfg.BitsetEval),
	}
	lv := &level{
		cols: pairs,
		sc:   make([]float64, len(pairs)),
		se:   make([]float64, len(pairs)),
		sm:   make([]float64, len(pairs)),
		ss:   make([]float64, len(pairs)),
	}
	return st, lv
}

func zeroLevel(lv *level) {
	for i := range lv.cols {
		lv.sc[i], lv.se[i], lv.sm[i], lv.ss[i] = 0, 0, 0, 0
	}
}

// TestEvalSlicesNilObserversAddZeroAllocs is the acceptance contract of the
// observability layer: with a nil tracer and nil metrics, the instrumented
// evaluation path allocates exactly what the bare kernel allocates — the
// instrumentation adds zero allocations per call.
func TestEvalSlicesNilObserversAddZeroAllocs(t *testing.T) {
	old := matrix.SetMaxWorkers(1) // serial kernel: deterministic allocations
	defer matrix.SetMaxWorkers(old)
	st, lv := evalAllocFixture(t)
	ctx := context.Background()

	base := testing.AllocsPerRun(20, func() {
		zeroLevel(lv)
		st.kernel.Eval(lv.cols, 2, st.cfg.BlockSize, lv.ss, lv.se, lv.sm)
		for i := range lv.sc {
			lv.sc[i] = st.sc.score(lv.ss[i], lv.se[i])
		}
	})
	inst := testing.AllocsPerRun(20, func() {
		zeroLevel(lv)
		if err := st.evalSlices(ctx, lv, 2); err != nil {
			t.Fatal(err)
		}
	})
	if inst != base {
		t.Fatalf("instrumented evalSlices allocates %v/run vs %v/run bare: instrumentation must add 0", inst, base)
	}
}

// BenchmarkEvalSlicesNilObservers exposes the nil-observer eval path to
// `go test -bench` with an allocation report, next to the bare-kernel
// benchmarks of eval_bench_test.go for direct comparison.
func BenchmarkEvalSlicesNilObservers(b *testing.B) {
	st, lv := evalAllocFixture(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		zeroLevel(lv)
		if err := st.evalSlices(ctx, lv, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// TestValidateSentinels: every validation failure must be matchable with
// errors.Is against its typed sentinel.
func TestValidateSentinels(t *testing.T) {
	if err := (Config{Alpha: math.NaN()}).Validate(); !errors.Is(err, ErrBadAlpha) {
		t.Fatalf("NaN alpha: got %v, want ErrBadAlpha", err)
	}
	if err := (Config{Alpha: math.Inf(1)}).Validate(); !errors.Is(err, ErrBadAlpha) {
		t.Fatalf("Inf alpha: got %v, want ErrBadAlpha", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	if err := (Config{Alpha: 0.5, K: 8}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}

	rng := rand.New(rand.NewSource(21))
	ds, e := randomDataset(rng, 60, 3, 3)

	if _, err := Run(ds, e[:10], Config{}); !errors.Is(err, ErrBadErrorVector) {
		t.Fatalf("short error vector: got %v, want ErrBadErrorVector", err)
	}
	bad := append([]float64(nil), e...)
	bad[3] = -1
	if _, err := Run(ds, bad, Config{}); !errors.Is(err, ErrBadErrorVector) {
		t.Fatalf("negative error: got %v, want ErrBadErrorVector", err)
	}
	w := make([]float64, len(e))
	if _, err := RunWeighted(ds, e, w[:5], Config{}); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("short weights: got %v, want ErrBadWeight", err)
	}
	if _, err := RunWeighted(ds, e, w, Config{}); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("zero weight: got %v, want ErrBadWeight", err)
	}
	for i := range w {
		w[i] = 1
	}
	if _, err := RunWeighted(ds, e, w, Config{Evaluator: stubEvaluator{}}); !errors.Is(err, ErrWeightedEvaluator) {
		t.Fatalf("weighted external evaluator: got %v, want ErrWeightedEvaluator", err)
	}
	if _, err := Run(ds, e, Config{Alpha: math.NaN()}); !errors.Is(err, ErrBadAlpha) {
		t.Fatalf("Run must call Validate: got %v, want ErrBadAlpha", err)
	}
	empty := &frame.Dataset{Name: "empty", X0: frame.NewIntMatrix(0, 1), Features: []frame.Feature{{Name: "f", Domain: 1}}}
	if _, err := Run(empty, nil, Config{}); !errors.Is(err, ErrEmptyDataset) {
		t.Fatalf("empty dataset: got %v, want ErrEmptyDataset", err)
	}
}

// stubEvaluator satisfies ExternalEvaluator for validation tests.
type stubEvaluator struct{}

func (stubEvaluator) Setup(context.Context, *matrix.CSR, []float64) error { return nil }
func (stubEvaluator) Eval(context.Context, [][]int, int) ([]float64, []float64, []float64, error) {
	return nil, nil, nil, nil
}

// TestCoreTracingAndMetrics runs an instrumented enumeration and checks that
// every lattice level produced a span under the run span, evaluation spans
// parent under their level, checkpointing is traced, and the metric counters
// agree with the result's own statistics.
func TestCoreTracingAndMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ds, e := randomDataset(rng, 400, 5, 4)
	tr := obs.NewJSONTracer()
	reg := obs.NewRegistry()
	cfg := Config{
		K: 4, Sigma: 8, Alpha: 0.95,
		Tracer: tr, Metrics: reg,
		CheckpointPath: filepath.Join(t.TempDir(), "run.ck"),
	}
	res, err := Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) < 2 {
		t.Fatalf("fixture too small: only %d levels", len(res.Levels))
	}

	spans := tr.Spans()
	byName := map[string][]*obs.Span{}
	byID := map[uint64]*obs.Span{}
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
		byID[s.ID] = s
	}
	if len(byName["core.run"]) != 1 {
		t.Fatalf("got %d core.run spans, want 1", len(byName["core.run"]))
	}
	run := byName["core.run"][0]
	levels := byName["core.level"]
	if len(levels) != len(res.Levels) {
		t.Fatalf("got %d level spans for %d result levels", len(levels), len(res.Levels))
	}
	seen := map[int64]bool{}
	for _, ls := range levels {
		if ls.Parent != run.ID {
			t.Fatalf("level span %d not parented under the run span", ls.ID)
		}
		seen[ls.AttrInt("level", -1)] = true
	}
	for _, l := range res.Levels {
		if !seen[int64(l.Level)] {
			t.Fatalf("no span for lattice level %d", l.Level)
		}
	}
	evals := byName["core.eval"]
	if len(evals) == 0 {
		t.Fatal("no core.eval spans recorded")
	}
	for _, es := range evals {
		parent, ok := byID[es.Parent]
		if !ok || parent.Name != "core.level" {
			t.Fatalf("eval span parented under %v, want a core.level span", es.Parent)
		}
	}
	if len(byName["core.checkpoint.save"]) == 0 {
		t.Fatal("no checkpoint save spans recorded")
	}
	if got := run.AttrInt("levels", -1); got != int64(len(res.Levels)) {
		t.Fatalf("run span levels attr = %d, want %d", got, len(res.Levels))
	}

	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"sl_core_runs_total 1",
		"sl_core_candidates_total",
		"sl_core_level_seconds_count",
		"sl_core_checkpoint_saves_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out)
		}
	}
	if got := reg.Counter("sl_core_candidates_total", "").Value(); got != int64(res.TotalCandidates()) {
		t.Fatalf("candidates counter %d vs result total %d", got, res.TotalCandidates())
	}
}
