package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleResult() *Result {
	return &Result{
		TopK: []Slice{
			{
				Predicates: []Predicate{
					{Feature: 0, Name: "degree", Value: 2, Label: "PhD"},
					{Feature: 3, Name: "gender", Value: 1},
				},
				Score: 0.875, Size: 120, TotalError: 36.5, MaxError: 1, AvgError: 0.3042,
			},
			{Score: -0.25, Size: 48, TotalError: 3, MaxError: 0.5, AvgError: 0.0625},
		},
		Levels: []LevelStats{
			{Level: 1, Candidates: 40, Valid: 31, Elapsed: 12 * time.Millisecond},
			{Level: 2, Candidates: 210, Valid: 87, Pruned: 355, Elapsed: 47 * time.Millisecond},
		},
		N: 5000, AvgError: 0.21, Sigma: 50, Alpha: 0.95,
		Elapsed: 61 * time.Millisecond, Truncated: true,
	}
}

// TestResultJSONSchema pins the interchange layout: versioned, snake_case,
// durations in integer nanoseconds.
func TestResultJSONSchema(t *testing.T) {
	data, err := json.Marshal(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"schema_version":1`,
		`"top_k":[`,
		`"predicates":[`,
		`"total_error":36.5`,
		`"max_error":1`,
		`"avg_error":`,
		`"label":"PhD"`,
		`"elapsed_ns":61000000`,
		`"truncated":true`,
		`"levels":[`,
		`"pruned":355`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("result JSON missing %s:\n%s", want, s)
		}
	}
	// The second predicate has no label; omitempty must drop the key there.
	if strings.Count(s, `"label"`) != 1 {
		t.Fatalf("label must be omitted when empty:\n%s", s)
	}
}

// TestResultJSONStableRoundTrip: Marshal → Unmarshal reproduces every field
// exactly, including durations and nested predicates.
func TestResultJSONStableRoundTrip(t *testing.T) {
	res := sampleResult()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != res.N || back.Sigma != res.Sigma || back.Alpha != res.Alpha ||
		back.AvgError != res.AvgError || back.Elapsed != res.Elapsed || back.Truncated != res.Truncated {
		t.Fatalf("scalar fields differ after round trip: %+v", back)
	}
	if len(back.TopK) != len(res.TopK) {
		t.Fatalf("top-K lost: %d vs %d", len(back.TopK), len(res.TopK))
	}
	for i := range res.TopK {
		a, b := res.TopK[i], back.TopK[i]
		if a.Score != b.Score || a.Size != b.Size || a.TotalError != b.TotalError ||
			a.MaxError != b.MaxError || a.AvgError != b.AvgError {
			t.Fatalf("slice %d statistics differ: %+v vs %+v", i, a, b)
		}
		if len(a.Predicates) != len(b.Predicates) {
			t.Fatalf("slice %d predicates lost", i)
		}
		for j := range a.Predicates {
			if a.Predicates[j] != b.Predicates[j] {
				t.Fatalf("slice %d predicate %d differs: %+v vs %+v", i, j, a.Predicates[j], b.Predicates[j])
			}
		}
	}
	if len(back.Levels) != len(res.Levels) {
		t.Fatal("levels lost")
	}
	for i := range res.Levels {
		if back.Levels[i] != res.Levels[i] {
			t.Fatalf("level %d differs: %+v vs %+v", i, back.Levels[i], res.Levels[i])
		}
	}
}

// TestResultJSONRejectsUnknownSchema: a future or missing schema version must
// be refused, not silently half-parsed.
func TestResultJSONRejectsUnknownSchema(t *testing.T) {
	var r Result
	if err := json.Unmarshal([]byte(`{"schema_version":99,"n":5}`), &r); err == nil {
		t.Fatal("unknown schema version must be rejected")
	}
	if err := json.Unmarshal([]byte(`{"n":5}`), &r); err == nil {
		t.Fatal("missing schema version must be rejected")
	}
}
