package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleResult() *Result {
	return &Result{
		TopK: []Slice{
			{
				Predicates: []Predicate{
					{Feature: 0, Name: "degree", Value: 2, Label: "PhD"},
					{Feature: 3, Name: "gender", Value: 1},
				},
				Score: 0.875, Size: 120, TotalError: 36.5, MaxError: 1, AvgError: 0.3042,
				PValue: 0.003, QValue: 0.006, Significant: true, DiffSign: 1,
			},
			{Score: -0.25, Size: 48, TotalError: 3, MaxError: 0.5, AvgError: 0.0625,
				PValue: 0.4, QValue: 0.4, DiffSign: -1},
		},
		Levels: []LevelStats{
			{Level: 1, Candidates: 40, Valid: 31, Elapsed: 12 * time.Millisecond},
			{Level: 2, Candidates: 210, Valid: 87, Pruned: 355, Elapsed: 47 * time.Millisecond},
		},
		N: 5000, AvgError: 0.21, Sigma: 50, Alpha: 0.95,
		Elapsed: 61 * time.Millisecond, Truncated: true, Gap: 0.125,
	}
}

// TestResultJSONSchema pins the interchange layout: versioned, snake_case,
// durations in integer nanoseconds.
func TestResultJSONSchema(t *testing.T) {
	data, err := json.Marshal(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{
		`"schema_version":2`,
		`"top_k":[`,
		`"predicates":[`,
		`"total_error":36.5`,
		`"max_error":1`,
		`"avg_error":`,
		`"label":"PhD"`,
		`"elapsed_ns":61000000`,
		`"truncated":true`,
		`"levels":[`,
		`"pruned":355`,
		`"gap":0.125`,
		`"p_value":0.003`,
		`"q_value":0.006`,
		`"significant":true`,
		`"diff_sign":1`,
		`"diff_sign":-1`,
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("result JSON missing %s:\n%s", want, s)
		}
	}
	// The second predicate has no label; omitempty must drop the key there.
	if strings.Count(s, `"label"`) != 1 {
		t.Fatalf("label must be omitted when empty:\n%s", s)
	}
	// significant is omitempty: only the first (significant) slice carries it.
	if strings.Count(s, `"significant"`) != 1 {
		t.Fatalf("significant must be omitted when false:\n%s", s)
	}
}

// TestResultJSONStableRoundTrip: Marshal → Unmarshal reproduces every field
// exactly, including durations and nested predicates.
func TestResultJSONStableRoundTrip(t *testing.T) {
	res := sampleResult()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N != res.N || back.Sigma != res.Sigma || back.Alpha != res.Alpha ||
		back.AvgError != res.AvgError || back.Elapsed != res.Elapsed || back.Truncated != res.Truncated {
		t.Fatalf("scalar fields differ after round trip: %+v", back)
	}
	if len(back.TopK) != len(res.TopK) {
		t.Fatalf("top-K lost: %d vs %d", len(back.TopK), len(res.TopK))
	}
	for i := range res.TopK {
		a, b := res.TopK[i], back.TopK[i]
		if a.Score != b.Score || a.Size != b.Size || a.TotalError != b.TotalError ||
			a.MaxError != b.MaxError || a.AvgError != b.AvgError {
			t.Fatalf("slice %d statistics differ: %+v vs %+v", i, a, b)
		}
		if a.PValue != b.PValue || a.QValue != b.QValue ||
			a.Significant != b.Significant || a.DiffSign != b.DiffSign {
			t.Fatalf("slice %d annotations differ: %+v vs %+v", i, a, b)
		}
		if len(a.Predicates) != len(b.Predicates) {
			t.Fatalf("slice %d predicates lost", i)
		}
		for j := range a.Predicates {
			if a.Predicates[j] != b.Predicates[j] {
				t.Fatalf("slice %d predicate %d differs: %+v vs %+v", i, j, a.Predicates[j], b.Predicates[j])
			}
		}
	}
	if back.Gap != res.Gap {
		t.Fatalf("gap differs after round trip: %v vs %v", back.Gap, res.Gap)
	}
	if len(back.Levels) != len(res.Levels) {
		t.Fatal("levels lost")
	}
	for i := range res.Levels {
		if back.Levels[i] != res.Levels[i] {
			t.Fatalf("level %d differs: %+v vs %+v", i, back.Levels[i], res.Levels[i])
		}
	}
}

// TestResultJSONAcceptsV1 pins backward compatibility: a schema_version 1
// document (written by earlier releases, without gap or per-slice
// statistics) must still decode, with the new fields zero.
func TestResultJSONAcceptsV1(t *testing.T) {
	v1 := `{"schema_version":1,"top_k":[{"predicates":[{"feature":0,"name":"degree","value":2,"label":"PhD"}],"score":0.875,"size":120,"total_error":36.5,"max_error":1,"avg_error":0.3042}],"levels":[{"level":1,"candidates":40,"valid":31,"pruned":0,"elapsed_ns":12000000}],"n":5000,"avg_error":0.21,"sigma":50,"alpha":0.95,"elapsed_ns":61000000,"truncated":true}`
	var r Result
	if err := json.Unmarshal([]byte(v1), &r); err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	if r.N != 5000 || len(r.TopK) != 1 || r.TopK[0].Score != 0.875 || !r.Truncated {
		t.Fatalf("v1 payload misread: %+v", r)
	}
	if r.Gap != 0 || r.TopK[0].PValue != 0 || r.TopK[0].QValue != 0 ||
		r.TopK[0].Significant || r.TopK[0].DiffSign != 0 {
		t.Fatalf("v2-only fields must read as zero from a v1 payload: %+v", r)
	}
}

// TestResultJSONRejectsUnknownSchema: a future or missing schema version must
// be refused, not silently half-parsed.
func TestResultJSONRejectsUnknownSchema(t *testing.T) {
	var r Result
	if err := json.Unmarshal([]byte(`{"schema_version":99,"n":5}`), &r); err == nil {
		t.Fatal("unknown schema version must be rejected")
	}
	if err := json.Unmarshal([]byte(`{"n":5}`), &r); err == nil {
		t.Fatal("missing schema version must be rejected")
	}
}
