package core

import "sliceline/internal/frame"

// decode converts the internal top-K entries (reduced-column lists) into
// user-facing Slices with named predicates, the DECODETOPK step of
// Algorithm 1.
func (st *state) decode(tk *topK, feats []frame.Feature) []Slice {
	out := make([]Slice, 0, len(tk.entries))
	for _, e := range tk.entries {
		s := Slice{
			Score:      e.score,
			Size:       int(e.ss),
			TotalError: e.se,
			MaxError:   e.sm,
		}
		if e.ss > 0 {
			s.AvgError = e.se / e.ss
		}
		for _, c := range e.cols {
			f := st.featOf[c]
			v := st.valOf[c]
			p := Predicate{Feature: f, Value: v}
			if f < len(feats) {
				p.Name = feats[f].Name
				if v-1 < len(feats[f].Labels) {
					p.Label = feats[f].Labels[v-1]
				}
			}
			s.Predicates = append(s.Predicates, p)
		}
		out = append(out, s)
	}
	return out
}
