package core

import (
	"fmt"

	"sliceline/internal/frame"
)

// BruteForce exhaustively enumerates the entire slice lattice by depth-first
// search over feature/value assignments and returns the exact top-K under
// the constraints of Definition 2. It visits every one of the
// O(prod_j (d_j + 1)) slices with a full data scan each, so it is only
// feasible for tiny inputs — it exists as the ground truth that the pruned
// linear-algebra enumerator is checked against (SliceLine's headline claim
// is exactness), and as the unpruned baseline of the ablation study.
func BruteForce(ds *frame.Dataset, e []float64, cfg Config) ([]Slice, error) {
	n := ds.NumRows()
	if len(e) != n {
		return nil, fmt.Errorf("core: error vector length %d vs %d rows", len(e), n)
	}
	cfg = cfg.WithDefaults(n)
	maxL := ds.NumFeatures()
	if cfg.MaxLevel > 0 && cfg.MaxLevel < maxL {
		maxL = cfg.MaxLevel
	}
	sc := newScorer(n, e, cfg.Alpha, cfg.Sigma)

	type pred struct{ feat, val int }
	var cur []pred
	best := newBruteTopK(cfg.K)

	var visit func(startFeat int)
	visit = func(startFeat int) {
		if len(cur) > 0 {
			ss, se, sm := 0.0, 0.0, 0.0
			for i := 0; i < n; i++ {
				row := ds.X0.Row(i)
				match := true
				for _, p := range cur {
					if row[p.feat] != p.val {
						match = false
						break
					}
				}
				if !match {
					continue
				}
				ss++
				se += e[i]
				if e[i] > sm {
					sm = e[i]
				}
			}
			score := sc.score(ss, se)
			if score > 0 && ss >= float64(cfg.Sigma) {
				preds := make([]Predicate, len(cur))
				for k, p := range cur {
					preds[k] = Predicate{Feature: p.feat, Value: p.val, Name: ds.Features[p.feat].Name}
					if p.val-1 < len(ds.Features[p.feat].Labels) {
						preds[k].Label = ds.Features[p.feat].Labels[p.val-1]
					}
				}
				best.offer(Slice{
					Predicates: preds,
					Score:      score,
					Size:       int(ss),
					TotalError: se,
					MaxError:   sm,
					AvgError:   se / ss,
				})
			}
		}
		if len(cur) == maxL {
			return
		}
		for f := startFeat; f < ds.NumFeatures(); f++ {
			for v := 1; v <= ds.Features[f].Domain; v++ {
				cur = append(cur, pred{feat: f, val: v})
				visit(f + 1)
				cur = cur[:len(cur)-1]
			}
		}
	}
	visit(0)
	return best.slices, nil
}

// bruteTopK keeps the best K slices ordered by score descending with the
// same tie-breaking as the main enumerator (larger slices first).
type bruteTopK struct {
	k      int
	slices []Slice
}

func newBruteTopK(k int) *bruteTopK { return &bruteTopK{k: k} }

func (b *bruteTopK) offer(s Slice) {
	pos := len(b.slices)
	for i, o := range b.slices {
		if s.Score > o.Score || (s.Score == o.Score && s.Size > o.Size) {
			pos = i
			break
		}
	}
	if pos == b.k {
		return
	}
	b.slices = append(b.slices, Slice{})
	copy(b.slices[pos+1:], b.slices[pos:])
	b.slices[pos] = s
	if len(b.slices) > b.k {
		b.slices = b.slices[:b.k]
	}
}
