package core

import (
	"math"
	"math/rand"
	"testing"

	"sliceline/internal/fptol"
	"sliceline/internal/frame"
)

// randomDataset builds a small random dataset plus a non-negative error
// vector, suitable for exhaustive cross-checking.
func randomDataset(rng *rand.Rand, n, m, maxDom int) (*frame.Dataset, []float64) {
	ds := &frame.Dataset{
		Name:     "rand",
		X0:       frame.NewIntMatrix(n, m),
		Features: make([]frame.Feature, m),
	}
	for j := 0; j < m; j++ {
		dom := 2 + rng.Intn(maxDom-1)
		ds.Features[j] = frame.Feature{Name: featureName(j), Domain: dom}
		for i := 0; i < n; i++ {
			ds.X0.Set(i, j, 1+rng.Intn(dom))
		}
	}
	e := make([]float64, n)
	for i := range e {
		if rng.Float64() < 0.3 {
			e[i] = 0 // mix in exact zeros: correct models are common
		} else {
			e[i] = rng.Float64()
		}
	}
	return ds, e
}

func featureName(j int) string { return string(rune('a' + j)) }

func scoresOf(slices []Slice) []float64 {
	out := make([]float64, len(slices))
	for i, s := range slices {
		out[i] = s.Score
	}
	return out
}

// approxEqualScores compares rank-aligned scores under the shared ULP
// tolerance of internal/fptol: scores are order-dependent float64
// summations, so different evaluation plans (and brute force) legitimately
// differ in the last ULPs while agreeing on every ranking decision.
func approxEqualScores(a, b []float64) bool {
	return fptol.DefaultTol.CloseSlices(a, b)
}

// TestExactnessAgainstBruteForce is the repository's central correctness
// test: on random datasets, the pruned linear-algebra enumerator must return
// exactly the same top-K scores as exhaustive lattice enumeration — the
// paper's exactness guarantee.
func TestExactnessAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 60
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 50 + rng.Intn(150)
		m := 2 + rng.Intn(4)
		ds, e := randomDataset(rng, n, m, 4)
		cfg := Config{
			K:     1 + rng.Intn(6),
			Sigma: 2 + rng.Intn(10),
			Alpha: 0.3 + 0.69*rng.Float64(),
		}
		got, err := Run(ds, e, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := BruteForce(ds, e, cfg)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !approxEqualScores(scoresOf(got.TopK), scoresOf(want)) {
			t.Fatalf("trial %d (n=%d m=%d K=%d sigma=%d alpha=%v):\nsliceline scores %v\nbruteforce scores %v",
				trial, n, m, cfg.K, cfg.Sigma, cfg.Alpha,
				scoresOf(got.TopK), scoresOf(want))
		}
	}
}

// TestExactnessWithMaxLevel verifies that ⌈L⌉-capped runs match brute force
// capped at the same depth.
func TestExactnessWithMaxLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		ds, e := randomDataset(rng, 120, 5, 3)
		cfg := Config{K: 4, Sigma: 3, Alpha: 0.9, MaxLevel: 2}
		got, err := Run(ds, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForce(ds, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEqualScores(scoresOf(got.TopK), scoresOf(want)) {
			t.Fatalf("trial %d: %v vs %v", trial, scoresOf(got.TopK), scoresOf(want))
		}
	}
}

// TestPruningDoesNotChangeTopK compares all ablation configurations against
// the fully pruned run: pruning must only affect work, never results.
func TestPruningDoesNotChangeTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		ds, e := randomDataset(rng, 100, 4, 3)
		base := Config{K: 5, Sigma: 3, Alpha: 0.85}
		ref, err := Run(ds, e, base)
		if err != nil {
			t.Fatal(err)
		}
		variants := []Config{
			{K: 5, Sigma: 3, Alpha: 0.85, DisableParentHandling: true},
			{K: 5, Sigma: 3, Alpha: 0.85, DisableParentHandling: true, DisableScorePruning: true},
			{K: 5, Sigma: 3, Alpha: 0.85, DisableParentHandling: true, DisableScorePruning: true, DisableSizePruning: true},
			{K: 5, Sigma: 3, Alpha: 0.85, DisableParentHandling: true, DisableScorePruning: true, DisableSizePruning: true, DisableDedup: true},
		}
		for vi, vc := range variants {
			got, err := Run(ds, e, vc)
			if err != nil {
				t.Fatal(err)
			}
			if !approxEqualScores(scoresOf(got.TopK), scoresOf(ref.TopK)) {
				t.Fatalf("trial %d variant %d: %v vs ref %v", trial, vi, scoresOf(got.TopK), scoresOf(ref.TopK))
			}
		}
	}
}

// TestPruningReducesCandidates: enabling pruning must never evaluate more
// candidates than the unpruned run (the Figure 3 effect).
func TestPruningReducesCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds, e := randomDataset(rng, 200, 5, 3)
	pruned, err := Run(ds, e, Config{K: 4, Sigma: 4, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	unpruned, err := Run(ds, e, Config{
		K: 4, Sigma: 4, Alpha: 0.9,
		DisableParentHandling: true, DisableScorePruning: true,
		DisableSizePruning: true, DisableDedup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.TotalCandidates() > unpruned.TotalCandidates() {
		t.Fatalf("pruned evaluates %d > unpruned %d", pruned.TotalCandidates(), unpruned.TotalCandidates())
	}
}

func TestRunValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds, e := randomDataset(rng, 20, 2, 3)
	if _, err := Run(ds, e[:10], Config{}); err == nil {
		t.Error("expected error for short error vector")
	}
	e[3] = -1
	if _, err := Run(ds, e, Config{}); err == nil {
		t.Error("expected error for negative error value")
	}
}

func TestRunEmptyDataset(t *testing.T) {
	ds := &frame.Dataset{Name: "empty", X0: frame.NewIntMatrix(0, 1), Features: []frame.Feature{{Name: "f", Domain: 1}}}
	if _, err := Run(ds, nil, Config{}); err == nil {
		t.Error("expected error for empty dataset")
	}
}

func TestRunDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds, e := randomDataset(rng, 5000, 3, 4)
	res, err := Run(ds, e, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sigma != 50 {
		t.Errorf("default sigma = %d, want ceil(5000/100) = 50", res.Sigma)
	}
	if res.Alpha != DefaultAlpha {
		t.Errorf("default alpha = %v, want %v", res.Alpha, DefaultAlpha)
	}
	if len(res.TopK) > DefaultK {
		t.Errorf("topK = %d, want <= %d", len(res.TopK), DefaultK)
	}
}

func TestRunSigmaFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds, e := randomDataset(rng, 100, 2, 3)
	res, err := Run(ds, e, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sigma != 32 {
		t.Errorf("sigma = %d, want floor 32 for small n", res.Sigma)
	}
}

func TestResultSlicesRespectConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		ds, e := randomDataset(rng, 150, 4, 3)
		cfg := Config{K: 8, Sigma: 5, Alpha: 0.9}
		res, err := Run(ds, e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(1)
		for _, s := range res.TopK {
			if s.Score <= 0 {
				t.Errorf("slice score %v <= 0", s.Score)
			}
			if s.Size < cfg.Sigma {
				t.Errorf("slice size %d < sigma %d", s.Size, cfg.Sigma)
			}
			if s.Score > prev+1e-12 {
				t.Errorf("scores not descending: %v after %v", s.Score, prev)
			}
			prev = s.Score
			// Predicates reference distinct features with in-domain values.
			seen := map[int]bool{}
			for _, p := range s.Predicates {
				if seen[p.Feature] {
					t.Errorf("duplicate feature %d in slice", p.Feature)
				}
				seen[p.Feature] = true
				if p.Value < 1 || p.Value > ds.Features[p.Feature].Domain {
					t.Errorf("predicate value %d out of domain", p.Value)
				}
			}
		}
	}
}

// TestSliceStatsMatchDirectScan recomputes each returned slice's statistics
// by direct filtering and compares.
func TestSliceStatsMatchDirectScan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds, e := randomDataset(rng, 300, 4, 4)
	res, err := Run(ds, e, Config{K: 6, Sigma: 3, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) == 0 {
		t.Skip("no qualifying slices in this draw")
	}
	for si, s := range res.TopK {
		ss, se, sm := 0, 0.0, 0.0
		for i := 0; i < ds.NumRows(); i++ {
			match := true
			for _, p := range s.Predicates {
				if ds.X0.At(i, p.Feature) != p.Value {
					match = false
					break
				}
			}
			if !match {
				continue
			}
			ss++
			se += e[i]
			if e[i] > sm {
				sm = e[i]
			}
		}
		if ss != s.Size {
			t.Errorf("slice %d: size %d, scan says %d", si, s.Size, ss)
		}
		if math.Abs(se-s.TotalError) > 1e-9 {
			t.Errorf("slice %d: se %v, scan says %v", si, s.TotalError, se)
		}
		if math.Abs(sm-s.MaxError) > 1e-12 {
			t.Errorf("slice %d: sm %v, scan says %v", si, s.MaxError, sm)
		}
	}
}

func TestLevelStatsMonotoneElapsed(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ds, e := randomDataset(rng, 200, 5, 3)
	res, err := Run(ds, e, Config{K: 4, Sigma: 3, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) == 0 {
		t.Fatal("no level stats recorded")
	}
	if res.Levels[0].Level != 1 {
		t.Errorf("first level = %d, want 1", res.Levels[0].Level)
	}
	for i := 1; i < len(res.Levels); i++ {
		if res.Levels[i].Elapsed < res.Levels[i-1].Elapsed {
			t.Errorf("elapsed not monotone at level %d", res.Levels[i].Level)
		}
		if res.Levels[i].Level != res.Levels[i-1].Level+1 {
			t.Errorf("levels not consecutive at %d", i)
		}
	}
}

func TestMaxCandidatesTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ds, e := randomDataset(rng, 200, 6, 4)
	res, err := Run(ds, e, Config{
		K: 4, Sigma: 1, Alpha: 0.99,
		DisableSizePruning: true, DisableScorePruning: true,
		DisableParentHandling: true, DisableDedup: true,
		MaxCandidatesPerLevel: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("expected truncation with tiny candidate budget")
	}
}

// TestBlockSizesAgree: evaluation must be independent of the hybrid block
// size b (task-parallel, blocked, and data-parallel plans are equivalent).
func TestBlockSizesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	ds, e := randomDataset(rng, 250, 4, 4)
	var ref []float64
	for _, b := range []int{1, 2, 7, 16, 1 << 20} {
		res, err := Run(ds, e, Config{K: 6, Sigma: 3, Alpha: 0.9, BlockSize: b})
		if err != nil {
			t.Fatal(err)
		}
		got := scoresOf(res.TopK)
		if ref == nil {
			ref = got
			continue
		}
		if !approxEqualScores(got, ref) {
			t.Fatalf("block size %d scores %v differ from %v", b, got, ref)
		}
	}
}

func TestSingleFeatureDataset(t *testing.T) {
	ds := &frame.Dataset{
		Name:     "one",
		X0:       frame.NewIntMatrix(10, 1),
		Features: []frame.Feature{{Name: "f", Domain: 2}},
	}
	e := make([]float64, 10)
	for i := 0; i < 10; i++ {
		if i < 5 {
			ds.X0.Set(i, 0, 1)
			e[i] = 1 // all error in value 1
		} else {
			ds.X0.Set(i, 0, 2)
		}
	}
	res, err := Run(ds, e, Config{K: 2, Sigma: 2, Alpha: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TopK) != 1 {
		t.Fatalf("topK = %d slices, want 1", len(res.TopK))
	}
	s := res.TopK[0]
	if s.Size != 5 || s.Predicates[0].Value != 1 {
		t.Fatalf("unexpected slice %v", s)
	}
}

func TestAlphaOneIgnoresSize(t *testing.T) {
	// With alpha = 1 the size term vanishes; the best slice is the one with
	// the highest average error meeting the support threshold.
	rng := rand.New(rand.NewSource(17))
	ds, e := randomDataset(rng, 150, 3, 3)
	res, err := Run(ds, e, Config{K: 3, Sigma: 5, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := BruteForce(ds, e, Config{K: 3, Sigma: 5, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEqualScores(scoresOf(res.TopK), scoresOf(want)) {
		t.Fatalf("alpha=1: %v vs %v", scoresOf(res.TopK), scoresOf(want))
	}
}
