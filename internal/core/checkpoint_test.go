package core

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCheckpointResumeByteIdentical: a run killed between levels and resumed
// from its checkpoint must produce top-K byte-identical to the
// uninterrupted run — same predicates, same float64 bits.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	ds, e := randomDataset(rng, 400, 5, 4)
	base := Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref, err := Run(ds, e, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Levels) < 3 {
		t.Fatalf("reference run only reached level %d; interruption test needs >= 3", len(ref.Levels))
	}

	for _, killAfter := range []int{1, 2} {
		path := filepath.Join(t.TempDir(), "ck.gob")
		// First run: cancel the context inside the OnLevel callback after
		// killAfter levels — the checkpoint for that level is already on
		// disk (persisted before the callback fires).
		ctx, cancel := context.WithCancel(context.Background())
		cfg := base
		cfg.CheckpointPath = path
		cfg.OnLevel = func(ls LevelStats) {
			if ls.Level == killAfter {
				cancel()
			}
		}
		if _, err := RunContext(ctx, ds, e, cfg); err == nil {
			t.Fatalf("killAfter=%d: interrupted run should error", killAfter)
		}
		cancel()

		// Second run resumes from the checkpoint.
		cfg2 := base
		cfg2.CheckpointPath = path
		cfg2.Resume = true
		resumedFrom := 0
		cfg2.OnLevel = func(ls LevelStats) {
			if resumedFrom == 0 {
				resumedFrom = ls.Level
			}
		}
		got, err := Run(ds, e, cfg2)
		if err != nil {
			t.Fatalf("killAfter=%d: resume: %v", killAfter, err)
		}
		if resumedFrom != killAfter+1 {
			t.Fatalf("killAfter=%d: resumed run re-enumerated from level %d, want %d", killAfter, resumedFrom, killAfter+1)
		}
		if !reflect.DeepEqual(got.TopK, ref.TopK) {
			t.Fatalf("killAfter=%d: resumed top-K differs from uninterrupted run:\n got %v\nwant %v", killAfter, got.TopK, ref.TopK)
		}
		if len(got.Levels) != len(ref.Levels) {
			t.Fatalf("killAfter=%d: resumed run recorded %d levels, want %d", killAfter, len(got.Levels), len(ref.Levels))
		}
		for i := range got.Levels {
			g, r := got.Levels[i], ref.Levels[i]
			if g.Level != r.Level || g.Candidates != r.Candidates || g.Valid != r.Valid || g.Pruned != r.Pruned {
				t.Fatalf("killAfter=%d: level %d stats diverge after resume: got %+v want %+v", killAfter, i+1, g, r)
			}
		}
	}
}

// TestCheckpointExtendsMaxLevel: MaxLevel is excluded from the signature by
// design — a run capped at level 2 can be resumed with a deeper cap and
// must match the uncapped run exactly.
func TestCheckpointExtendsMaxLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds, e := randomDataset(rng, 400, 5, 4)
	base := Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref, err := Run(ds, e, base)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ck.gob")
	shallow := base
	shallow.MaxLevel = 2
	shallow.CheckpointPath = path
	if _, err := Run(ds, e, shallow); err != nil {
		t.Fatal(err)
	}
	deep := base
	deep.CheckpointPath = path
	deep.Resume = true
	got, err := Run(ds, e, deep)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("extended run differs from uncapped run:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
}

// TestCheckpointSignatureMismatch: a checkpoint written for different data
// or configuration must be refused, not silently mixed in.
func TestCheckpointSignatureMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	ds, e := randomDataset(rng, 300, 4, 3)
	path := filepath.Join(t.TempDir(), "ck.gob")
	cfg := Config{K: 4, Sigma: 3, Alpha: 0.9, CheckpointPath: path}
	if _, err := Run(ds, e, cfg); err != nil {
		t.Fatal(err)
	}

	t.Run("different-errors", func(t *testing.T) {
		e2 := append([]float64(nil), e...)
		e2[0] += 0.5
		r := cfg
		r.Resume = true
		if _, err := Run(ds, e2, r); err == nil {
			t.Fatal("expected signature mismatch for different error vector")
		}
	})
	t.Run("different-config", func(t *testing.T) {
		r := cfg
		r.Resume = true
		r.Alpha = 0.5
		if _, err := Run(ds, e, r); err == nil {
			t.Fatal("expected signature mismatch for different alpha")
		}
	})
}

// TestCheckpointMissingFileFreshStart: Resume with no checkpoint on disk is
// a fresh run, not an error.
func TestCheckpointMissingFileFreshStart(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ds, e := randomDataset(rng, 300, 4, 3)
	cfg := Config{K: 4, Sigma: 3, Alpha: 0.9}
	ref, err := Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := cfg
	r.CheckpointPath = filepath.Join(t.TempDir(), "never-written.gob")
	r.Resume = true
	got, err := Run(ds, e, r)
	if err != nil {
		t.Fatalf("missing checkpoint should start fresh: %v", err)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("fresh-start top-K differs from reference:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
}

// TestCheckpointCorruptFile: a torn or garbled checkpoint is an error, not
// a silent fresh start — the caller asked to resume real work.
func TestCheckpointCorruptFile(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	ds, e := randomDataset(rng, 300, 4, 3)
	path := filepath.Join(t.TempDir(), "ck.gob")
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{K: 4, Sigma: 3, Alpha: 0.9, CheckpointPath: path, Resume: true}
	if _, err := Run(ds, e, cfg); err == nil {
		t.Fatal("expected error decoding corrupt checkpoint")
	}
}

// TestCheckpointAtomicOverwrite: each level's save fully replaces the file;
// after a completed run the checkpoint holds the final level and resuming
// from it is a no-op that still returns the full result.
func TestCheckpointAtomicOverwrite(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	ds, e := randomDataset(rng, 300, 4, 3)
	path := filepath.Join(t.TempDir(), "ck.gob")
	cfg := Config{K: 4, Sigma: 3, Alpha: 0.9, CheckpointPath: path}
	ref, err := Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind after save")
	}
	r := cfg
	r.Resume = true
	got, err := Run(ds, e, r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("no-op resume differs from original run:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
}
