package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/frame"
)

var update = flag.Bool("update", false, "rewrite golden files")

func plantedDataset(rng *rand.Rand, n int) (*frame.Dataset, []float64) {
	ds := &frame.Dataset{
		Name: "planted",
		X0:   frame.NewIntMatrix(n, 3),
		Features: []frame.Feature{
			{Name: "region", Domain: 3, Labels: []string{"north", "south", "east"}},
			{Name: "plan", Domain: 2, Labels: []string{"basic", "premium"}},
			{Name: "tier", Domain: 2},
		},
	}
	e := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			ds.X0.Set(i, j, 1+rng.Intn(ds.Features[j].Domain))
		}
		if ds.X0.At(i, 0) == 2 && ds.X0.At(i, 1) == 1 {
			e[i] = 1
		} else if rng.Float64() < 0.05 {
			e[i] = 1
		}
	}
	return ds, e
}

func TestGenerateFullReport(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds, e := plantedDataset(rng, 2000)
	var buf bytes.Buffer
	if err := Generate(&buf, ds, e, Options{K: 3, Sigma: 20, IncludeTree: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Model debugging report: planted",
		"## Dataset",
		"## Model errors",
		"## Problematic slices",
		"region=south", // the planted slice, decoded with labels
		"plan=basic",
		"## Enumeration",
		"## Non-overlapping partition",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q\n---\n%s", want, out)
		}
	}
}

func TestGenerateWithoutTree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds, e := plantedDataset(rng, 800)
	var buf bytes.Buffer
	if err := Generate(&buf, ds, e, Options{Sigma: 10}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Non-overlapping partition") {
		t.Error("tree section present despite IncludeTree=false")
	}
}

func TestGenerateNoProblematicSlices(t *testing.T) {
	// Uniform errors: no slice scores above zero.
	ds := &frame.Dataset{
		Name:     "uniform",
		X0:       frame.NewIntMatrix(200, 2),
		Features: []frame.Feature{{Name: "a", Domain: 2}, {Name: "b", Domain: 2}},
	}
	e := make([]float64, 200)
	for i := 0; i < 200; i++ {
		ds.X0.Set(i, 0, 1+i%2)
		ds.X0.Set(i, 1, 1+(i/2)%2)
		e[i] = 0.5
	}
	var buf bytes.Buffer
	if err := Generate(&buf, ds, e, Options{Sigma: 10}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No slice scores above 0") {
		t.Errorf("expected empty-result message:\n%s", buf.String())
	}
}

func TestGenerateFromResultJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, e := plantedDataset(rng, 2000)
	res, err := core.Run(ds, e, core.Config{K: 3, Sigma: 20, Alpha: 0.95, MaxLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var restored core.Result
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := GenerateFromResult(&buf, "planted", &restored, Options{K: 3}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Model debugging report: planted",
		"## Stored result",
		"## Problematic slices",
		"region=south",
		"plan=basic",
		"## Enumeration",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("result-only report missing %q\n---\n%s", want, out)
		}
	}
	for _, reject := range []string{"## Dataset", "## Model errors", "example rows", "Non-overlapping partition"} {
		if strings.Contains(out, reject) {
			t.Errorf("result-only report should not contain %q\n---\n%s", reject, out)
		}
	}
}

// TestGenerateFromResultGolden pins the rendered Markdown for a result
// carrying every schema-v2 annotation: the optimality gap of a partial run,
// per-slice p/q values with a significance marker, and diff directions.
// Regenerate with `go test ./internal/report -run Golden -update`.
func TestGenerateFromResultGolden(t *testing.T) {
	res := &core.Result{
		TopK: []core.Slice{
			{
				Predicates: []core.Predicate{
					{Feature: 0, Name: "region", Value: 2, Label: "south"},
					{Feature: 1, Name: "plan", Value: 1, Label: "basic"},
				},
				Score: 1.8125, Size: 240, TotalError: 230, MaxError: 1, AvgError: 0.9583,
				PValue: 0.00125, QValue: 0.0025, Significant: true, DiffSign: 1,
			},
			{
				Predicates: []core.Predicate{
					{Feature: 2, Name: "tier", Value: 2},
				},
				Score: 0.4375, Size: 980, TotalError: 310, MaxError: 1, AvgError: 0.3163,
				PValue: 0.21, QValue: 0.21, DiffSign: -1,
			},
		},
		Levels: []core.LevelStats{
			{Level: 1, Candidates: 7, Valid: 7, Pruned: 0, Elapsed: 2 * time.Millisecond},
			{Level: 2, Candidates: 18, Valid: 11, Pruned: 7, Elapsed: 5 * time.Millisecond},
		},
		N: 2000, AvgError: 0.138, Sigma: 20, Alpha: 0.95,
		Elapsed: 9 * time.Millisecond, Gap: 0.0625,
	}
	var buf bytes.Buffer
	if err := GenerateFromResult(&buf, "golden", res, Options{K: 3}); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "stored_result.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != string(want) {
		t.Errorf("report differs from %s (re-run with -update after intentional changes)\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}
}

func TestGeneratePropagatesError(t *testing.T) {
	ds := &frame.Dataset{
		Name:     "bad",
		X0:       frame.NewIntMatrix(2, 1),
		Features: []frame.Feature{{Name: "f", Domain: 1}},
	}
	ds.X0.Set(0, 0, 1)
	ds.X0.Set(1, 0, 1)
	var buf bytes.Buffer
	if err := Generate(&buf, ds, []float64{1}, Options{}); err == nil {
		t.Fatal("expected error for mismatched vector")
	}
}

func TestErrStats(t *testing.T) {
	s := errStats([]float64{0, 0, 1, 2, 3})
	if s.mean != 1.2 || s.max != 3 || s.median != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.zeroFrac != 0.4 {
		t.Errorf("zeroFrac = %v, want 0.4", s.zeroFrac)
	}
	if z := errStats(nil); z.mean != 0 {
		t.Error("empty input should yield zero stats")
	}
}
