// Package report renders a complete model-debugging report in Markdown:
// dataset and error summaries, the SliceLine top-K with per-slice
// drill-downs, the decision-tree partition for comparison, and the
// enumeration statistics. It is the human-facing layer over the core
// algorithm — the artifact a practitioner files with a model review.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"

	"sliceline/internal/baseline"
	"sliceline/internal/core"
	"sliceline/internal/frame"
)

// Options configures report generation.
type Options struct {
	// K is the number of slices to report. <= 0 defaults to 5.
	K int
	// Alpha is the SliceLine weight parameter. <= 0 defaults to 0.95.
	Alpha float64
	// Sigma is the minimum support. <= 0 defaults to max(32, n/100).
	Sigma int
	// MaxLevel caps the lattice level. <= 0 defaults to 3.
	MaxLevel int
	// SampleRows is the number of example row indices listed per slice.
	// <= 0 defaults to 5.
	SampleRows int
	// IncludeTree adds the non-overlapping decision-tree partition section.
	IncludeTree bool
}

func (o Options) withDefaults() Options {
	if o.K <= 0 {
		o.K = 5
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.95
	}
	if o.MaxLevel <= 0 {
		o.MaxLevel = 3
	}
	if o.SampleRows <= 0 {
		o.SampleRows = 5
	}
	return o
}

// Generate runs slice finding on (ds, e) and writes the Markdown report.
func Generate(w io.Writer, ds *frame.Dataset, e []float64, opt Options) error {
	opt = opt.withDefaults()
	res, err := core.Run(ds, e, core.Config{
		K: opt.K, Alpha: opt.Alpha, Sigma: opt.Sigma, MaxLevel: opt.MaxLevel,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "# Model debugging report: %s\n\n", ds.Name)

	// Dataset summary.
	fmt.Fprintf(w, "## Dataset\n\n")
	fmt.Fprintf(w, "- rows: %d\n- features: %d (one-hot width %d)\n",
		ds.NumRows(), ds.NumFeatures(), ds.OneHotWidth())
	doms := ds.TopDomains(3)
	fmt.Fprintf(w, "- largest feature domains: %v\n\n", doms)

	// Error summary.
	fmt.Fprintf(w, "## Model errors\n\n")
	stats := errStats(e)
	fmt.Fprintf(w, "- mean: %.4f\n- median: %.4f\n- p95: %.4f\n- max: %.4f\n- rows with zero error: %.1f%%\n\n",
		stats.mean, stats.median, stats.p95, stats.max, 100*stats.zeroFrac)

	writeSlices(w, ds, res, opt)
	writeEnumeration(w, res)

	if opt.IncludeTree {
		tree, err := baseline.TrainErrorTree(ds, e, baseline.TreeConfig{MaxDepth: opt.MaxLevel})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## Non-overlapping partition (error tree)\n\n")
		fmt.Fprintf(w, "| leaf | size | mean error |\n|---|---|---|\n")
		for _, leaf := range tree.WorstLeaves(opt.K) {
			path := leaf.Path
			if path == "" {
				path = "(root)"
			}
			fmt.Fprintf(w, "| %s | %d | %.4f |\n", path, leaf.Size, leaf.MeanError)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// GenerateFromResult renders a report from a previously saved enumeration
// result — the versioned JSON document written by `sliceline -json` — without
// re-running slice finding or needing the dataset. Sections that require the
// raw rows (dataset summary, error statistics, per-slice example rows, the
// error-tree partition) are omitted; the top-K slices and enumeration
// statistics are rendered in full.
func GenerateFromResult(w io.Writer, name string, res *core.Result, opt Options) error {
	opt = opt.withDefaults()
	if name == "" {
		name = "(stored result)"
	}
	fmt.Fprintf(w, "# Model debugging report: %s\n\n", name)
	fmt.Fprintf(w, "## Stored result\n\n")
	fmt.Fprintf(w, "- rows: %d\n- overall average error: %.4f\n- enumeration time: %v\n",
		res.N, res.AvgError, res.Elapsed.Round(1e6))
	if res.Gap > 0 {
		fmt.Fprintf(w, "- partial enumeration: certified optimality gap %.4f (no unexplored slice can beat the reported top-K by more)\n", res.Gap)
	}
	fmt.Fprintln(w)
	writeSlices(w, nil, res, opt)
	writeEnumeration(w, res)
	return nil
}

// writeSlices renders the top-K section. ds may be nil (result-only reports),
// in which case the per-slice example rows are skipped.
func writeSlices(w io.Writer, ds *frame.Dataset, res *core.Result, opt Options) {
	maxLevel := opt.MaxLevel
	fmt.Fprintf(w, "## Problematic slices (SliceLine, alpha=%.2f, sigma=%d, L<=%d)\n\n",
		res.Alpha, res.Sigma, maxLevel)
	if len(res.TopK) == 0 {
		fmt.Fprintf(w, "No slice scores above 0: the model's errors are not concentrated in any sufficiently large subgroup.\n\n")
	}
	for i, s := range res.TopK {
		fmt.Fprintf(w, "### #%d score %.4f\n\n", i+1, s.Score)
		fmt.Fprintf(w, "- predicates: %s\n", predString(s))
		switch s.DiffSign {
		case 1:
			fmt.Fprintf(w, "- direction: regression (new model worse on this slice)\n")
		case -1:
			fmt.Fprintf(w, "- direction: improvement (new model better on this slice)\n")
		}
		fmt.Fprintf(w, "- size: %d rows (%.1f%% of data)\n", s.Size, 100*float64(s.Size)/float64(res.N))
		lift := 0.0
		if res.AvgError > 0 {
			lift = s.AvgError / res.AvgError
		}
		fmt.Fprintf(w, "- average error: %.4f (%.1fx the overall %.4f)\n", s.AvgError, lift, res.AvgError)
		fmt.Fprintf(w, "- maximum tuple error: %.4f\n", s.MaxError)
		// Schema v1 documents carry no statistics; both fields decode as
		// zero there, and a real run never produces p = q = 0 exactly.
		if s.PValue != 0 || s.QValue != 0 {
			marker := "not significant"
			if s.Significant {
				marker = "significant"
			}
			fmt.Fprintf(w, "- statistics: p=%.4g, q=%.4g (%s, one-sided Welch vs rest, BH-adjusted)\n", s.PValue, s.QValue, marker)
		}
		if ds != nil {
			rows, err := core.SliceRows(ds, s)
			if err == nil {
				k := opt.SampleRows
				if k > len(rows) {
					k = len(rows)
				}
				fmt.Fprintf(w, "- example rows: %v\n", rows[:k])
			}
		}
		fmt.Fprintln(w)
	}
}

// writeEnumeration renders the per-level enumeration statistics table.
func writeEnumeration(w io.Writer, res *core.Result) {
	fmt.Fprintf(w, "## Enumeration\n\n")
	fmt.Fprintf(w, "| level | candidates | valid | pruned |\n|---|---|---|---|\n")
	for _, ls := range res.Levels {
		fmt.Fprintf(w, "| %d | %d | %d | %d |\n", ls.Level, ls.Candidates, ls.Valid, ls.Pruned)
	}
	fmt.Fprintf(w, "\nTotal: %d candidates evaluated in %v.\n\n", res.TotalCandidates(), res.Elapsed.Round(1e6))
}

func predString(s core.Slice) string {
	out := ""
	for i, p := range s.Predicates {
		if i > 0 {
			out += " AND "
		}
		out += p.String()
	}
	return out
}

type summary struct {
	mean, median, p95, max float64
	zeroFrac               float64
}

func errStats(e []float64) summary {
	var s summary
	if len(e) == 0 {
		return s
	}
	sorted := append([]float64(nil), e...)
	sort.Float64s(sorted)
	total, zeros := 0.0, 0
	for _, v := range e {
		total += v
		if v == 0 {
			zeros++
		}
	}
	n := len(e)
	s.mean = total / float64(n)
	s.median = sorted[n/2]
	s.p95 = sorted[int(math.Min(float64(n-1), float64(n)*0.95))]
	s.max = sorted[n-1]
	s.zeroFrac = float64(zeros) / float64(n)
	return s
}
