package ml

import (
	"errors"
	"fmt"
	"math"

	"sliceline/internal/matrix"
)

// LinReg is a ridge-regularized linear regression model over a sparse
// design matrix, the `lm` algorithm of the paper's evaluation.
type LinReg struct {
	W         []float64 // one weight per one-hot column
	Intercept float64
	Lambda    float64
	Iters     int // conjugate-gradient iterations actually used
}

// LinRegConfig controls training.
type LinRegConfig struct {
	Lambda   float64 // ridge penalty; <= 0 defaults to 1e-3
	MaxIters int     // CG iteration cap; <= 0 defaults to 200
	Tol      float64 // residual-norm stop; <= 0 defaults to 1e-10
}

func (c *LinRegConfig) defaults() {
	if c.Lambda <= 0 {
		c.Lambda = 1e-3
	}
	if c.MaxIters <= 0 {
		c.MaxIters = 200
	}
	if c.Tol <= 0 {
		c.Tol = 1e-10
	}
}

// TrainLinReg fits (XᵀX + λI)w = Xᵀ(y - ȳ) by conjugate gradient, operating
// matrix-free on the sparse one-hot design so wide encodings (KDD98 has
// l=8378 columns) never materialize a dense Gram matrix. The intercept is
// the label mean.
func TrainLinReg(x *matrix.CSR, y []float64, cfg LinRegConfig) (*LinReg, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("ml: %d rows vs %d labels", x.Rows(), len(y))
	}
	if x.Rows() == 0 {
		return nil, errors.New("ml: empty training set")
	}
	cfg.defaults()
	n, l := x.Rows(), x.Cols()
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - mean
	}
	xt := x.T()
	// b = Xᵀ yc
	b := matrix.MulCSRVec(xt, yc)
	// A·w = Xᵀ(X·w) + λw, applied matrix-free.
	apply := func(w []float64) []float64 {
		xw := matrix.MulCSRVec(x, w)
		out := matrix.MulCSRVec(xt, xw)
		for i := range out {
			out[i] += cfg.Lambda * w[i]
		}
		return out
	}
	w := make([]float64, l)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	rs := dot(r, r)
	iters := 0
	for k := 0; k < cfg.MaxIters && rs > cfg.Tol; k++ {
		ap := apply(p)
		alpha := rs / dot(p, ap)
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			break
		}
		for i := range w {
			w[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rsNew := dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
		iters = k + 1
	}
	return &LinReg{W: w, Intercept: mean, Lambda: cfg.Lambda, Iters: iters}, nil
}

// Predict returns ŷ for each row of x.
func (m *LinReg) Predict(x *matrix.CSR) []float64 {
	out := matrix.MulCSRVec(x, m.W)
	for i := range out {
		out[i] += m.Intercept
	}
	return out
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
