package ml

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// ConfusionMatrix is the label-by-label count matrix of true versus
// predicted classes — the manual model-error analysis tool the paper's
// introduction contrasts with automated slice finding.
type ConfusionMatrix struct {
	Classes []float64 // sorted distinct labels
	Counts  [][]int   // Counts[i][j] = rows with true class i predicted as j
	N       int
}

// Confusion builds the confusion matrix of y (true) versus yhat (predicted).
func Confusion(y, yhat []float64) (*ConfusionMatrix, error) {
	if len(y) != len(yhat) {
		return nil, fmt.Errorf("ml: %d labels vs %d predictions", len(y), len(yhat))
	}
	seen := map[float64]bool{}
	for _, v := range y {
		seen[v] = true
	}
	for _, v := range yhat {
		seen[v] = true
	}
	classes := make([]float64, 0, len(seen))
	for v := range seen {
		classes = append(classes, v)
	}
	sort.Float64s(classes)
	idx := make(map[float64]int, len(classes))
	for i, v := range classes {
		idx[v] = i
	}
	cm := &ConfusionMatrix{Classes: classes, N: len(y)}
	cm.Counts = make([][]int, len(classes))
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, len(classes))
	}
	for i := range y {
		cm.Counts[idx[y[i]]][idx[yhat[i]]]++
	}
	return cm, nil
}

// Accuracy returns the fraction of correctly classified rows.
func (cm *ConfusionMatrix) Accuracy() float64 {
	if cm.N == 0 {
		return 0
	}
	correct := 0
	for i := range cm.Counts {
		correct += cm.Counts[i][i]
	}
	return float64(correct) / float64(cm.N)
}

// Precision returns the precision of the given class (true positives over
// predicted positives); 0 when the class was never predicted.
func (cm *ConfusionMatrix) Precision(class float64) float64 {
	j := cm.classIndex(class)
	if j < 0 {
		return 0
	}
	pred := 0
	for i := range cm.Counts {
		pred += cm.Counts[i][j]
	}
	if pred == 0 {
		return 0
	}
	return float64(cm.Counts[j][j]) / float64(pred)
}

// Recall returns the recall of the given class (true positives over actual
// positives); 0 when the class never occurs.
func (cm *ConfusionMatrix) Recall(class float64) float64 {
	i := cm.classIndex(class)
	if i < 0 {
		return 0
	}
	actual := 0
	for j := range cm.Counts[i] {
		actual += cm.Counts[i][j]
	}
	if actual == 0 {
		return 0
	}
	return float64(cm.Counts[i][i]) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall for a class.
func (cm *ConfusionMatrix) F1(class float64) float64 {
	p := cm.Precision(class)
	r := cm.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (cm *ConfusionMatrix) classIndex(class float64) int {
	for i, v := range cm.Classes {
		if v == class {
			return i
		}
	}
	return -1
}

// String renders the matrix with true classes as rows.
func (cm *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprint(&b, "true\\pred")
	for _, c := range cm.Classes {
		fmt.Fprintf(&b, "\t%g", c)
	}
	for i, c := range cm.Classes {
		fmt.Fprintf(&b, "\n%g", c)
		for j := range cm.Classes {
			fmt.Fprintf(&b, "\t%d", cm.Counts[i][j])
		}
	}
	return b.String()
}

// RMSE returns the root mean squared error of predictions.
func RMSE(y, yhat []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	s := 0.0
	for i := range y {
		d := y[i] - yhat[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

// R2 returns the coefficient of determination; 1 is a perfect fit, 0 the
// mean predictor, negative worse than the mean.
func R2(y, yhat []float64) float64 {
	if len(y) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	ssRes, ssTot := 0.0, 0.0
	for i := range y {
		d := y[i] - yhat[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}
