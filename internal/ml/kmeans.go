package ml

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"sliceline/internal/matrix"
)

// KMeans holds the result of Lloyd's algorithm: cluster centroids and the
// assignment of every input row. The paper uses k-means to derive artificial
// labels for the unlabeled USCensus dataset.
type KMeans struct {
	Centroids *matrix.Dense // k × d
	Assign    []int         // cluster per row
	Iters     int
	Inertia   float64 // total within-cluster squared distance
}

// KMeansConfig controls clustering.
type KMeansConfig struct {
	K        int   // number of clusters; must be >= 1
	MaxIters int   // <= 0 defaults to 50
	Seed     int64 // RNG seed for centroid init
}

// TrainKMeans runs Lloyd's algorithm with k-means++ style seeding on a dense
// feature matrix.
func TrainKMeans(x *matrix.Dense, cfg KMeansConfig) (*KMeans, error) {
	n, d := x.Rows(), x.Cols()
	if cfg.K < 1 {
		return nil, fmt.Errorf("ml: k = %d, want >= 1", cfg.K)
	}
	if n < cfg.K {
		return nil, errors.New("ml: fewer rows than clusters")
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// k-means++ seeding.
	cent := matrix.NewDense(cfg.K, d)
	copy(cent.Row(0), x.Row(rng.Intn(n)))
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(x.Row(i), cent.Row(0))
	}
	for c := 1; c < cfg.K; c++ {
		total := 0.0
		for _, v := range dist {
			total += v
		}
		pick := 0
		if total > 0 {
			r := rng.Float64() * total
			acc := 0.0
			for i, v := range dist {
				acc += v
				if acc >= r {
					pick = i
					break
				}
			}
		} else {
			pick = rng.Intn(n)
		}
		copy(cent.Row(c), x.Row(pick))
		for i := range dist {
			if d2 := sqDist(x.Row(i), cent.Row(c)); d2 < dist[i] {
				dist[i] = d2
			}
		}
	}

	assign := make([]int, n)
	iters := 0
	for it := 0; it < cfg.MaxIters; it++ {
		iters = it + 1
		changed := 0
		matrix.ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				best, bc := math.Inf(1), 0
				for c := 0; c < cfg.K; c++ {
					if d2 := sqDist(x.Row(i), cent.Row(c)); d2 < best {
						best, bc = d2, c
					}
				}
				if assign[i] != bc {
					assign[i] = bc
					// changed is updated below to avoid a data race.
				}
			}
		})
		// Recompute centroids and count moves serially (n·d work dominates).
		newCent := matrix.NewDense(cfg.K, d)
		counts := make([]int, cfg.K)
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			nc := newCent.Row(c)
			for j, v := range x.Row(i) {
				nc[j] += v
			}
		}
		for c := 0; c < cfg.K; c++ {
			if counts[c] == 0 {
				copy(newCent.Row(c), x.Row(rng.Intn(n)))
				continue
			}
			inv := 1.0 / float64(counts[c])
			nc := newCent.Row(c)
			for j := range nc {
				nc[j] *= inv
			}
		}
		for c := 0; c < cfg.K; c++ {
			if sqDist(cent.Row(c), newCent.Row(c)) > 1e-12 {
				changed++
			}
		}
		cent = newCent
		if changed == 0 {
			break
		}
	}
	inertia := 0.0
	for i := 0; i < n; i++ {
		inertia += sqDist(x.Row(i), cent.Row(assign[i]))
	}
	return &KMeans{Centroids: cent, Assign: assign, Iters: iters, Inertia: inertia}, nil
}

// Labels returns the cluster assignments as float64 labels, suitable as an
// artificial label vector y.
func (k *KMeans) Labels() []float64 {
	out := make([]float64, len(k.Assign))
	for i, a := range k.Assign {
		out[i] = float64(a)
	}
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
