package ml

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionMatrix(t *testing.T) {
	y := []float64{0, 0, 1, 1, 1, 2}
	yhat := []float64{0, 1, 1, 1, 0, 2}
	cm, err := Confusion(y, yhat)
	if err != nil {
		t.Fatal(err)
	}
	if len(cm.Classes) != 3 {
		t.Fatalf("classes = %v", cm.Classes)
	}
	if cm.Counts[0][0] != 1 || cm.Counts[0][1] != 1 {
		t.Errorf("row 0 = %v", cm.Counts[0])
	}
	if cm.Counts[1][1] != 2 || cm.Counts[1][0] != 1 {
		t.Errorf("row 1 = %v", cm.Counts[1])
	}
	if got := cm.Accuracy(); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestConfusionMismatch(t *testing.T) {
	if _, err := Confusion([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error")
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	// Class 1: predicted 3 times (2 correct), actually occurs 3 times
	// (2 found).
	y := []float64{1, 1, 1, 0, 0, 0}
	yhat := []float64{1, 1, 0, 1, 0, 0}
	cm, err := Confusion(y, yhat)
	if err != nil {
		t.Fatal(err)
	}
	if p := cm.Precision(1); math.Abs(p-2.0/3.0) > 1e-12 {
		t.Errorf("precision = %v", p)
	}
	if r := cm.Recall(1); math.Abs(r-2.0/3.0) > 1e-12 {
		t.Errorf("recall = %v", r)
	}
	if f := cm.F1(1); math.Abs(f-2.0/3.0) > 1e-12 {
		t.Errorf("f1 = %v", f)
	}
	if cm.Precision(99) != 0 || cm.Recall(99) != 0 || cm.F1(99) != 0 {
		t.Error("unknown class should score 0")
	}
}

func TestConfusionString(t *testing.T) {
	cm, err := Confusion([]float64{0, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	s := cm.String()
	if !strings.Contains(s, "true\\pred") || !strings.Contains(s, "\t1") {
		t.Errorf("String = %q", s)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("RMSE perfect = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
	if got := RMSE(nil, nil); got != 0 {
		t.Errorf("RMSE empty = %v", got)
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := R2(y, y); got != 1 {
		t.Errorf("R2 perfect = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(y, mean); math.Abs(got) > 1e-12 {
		t.Errorf("R2 mean predictor = %v", got)
	}
	if got := R2([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Errorf("R2 constant perfect = %v", got)
	}
	if got := R2([]float64{5, 5}, []float64{1, 1}); got != 0 {
		t.Errorf("R2 constant wrong = %v", got)
	}
}
