package ml

import (
	"math/rand"
	"testing"

	"sliceline/internal/matrix"
)

func TestTrainMlogitSeparableBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, codes := onehotDesign(rng, 300, []int{2, 3})
	y := make([]float64, 300)
	for i := range y {
		if codes[i][0] == 1 {
			y[i] = 1
		}
	}
	m, err := TrainMlogit(x, y, MlogitConfig{Epochs: 200, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	if acc := m.Accuracy(x, y); acc < 0.99 {
		t.Fatalf("accuracy = %v on separable data, want >= 0.99", acc)
	}
}

func TestTrainMlogitMulticlass(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, codes := onehotDesign(rng, 600, []int{4, 3})
	y := make([]float64, 600)
	for i := range y {
		y[i] = float64(codes[i][0]) // 4-way label fully determined by feature 0
	}
	m, err := TrainMlogit(x, y, MlogitConfig{Epochs: 300, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 4 {
		t.Fatalf("classes = %d, want 4", len(m.Classes))
	}
	if acc := m.Accuracy(x, y); acc < 0.99 {
		t.Fatalf("accuracy = %v, want >= 0.99", acc)
	}
}

func TestTrainMlogitPreservesOriginalLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, codes := onehotDesign(rng, 200, []int{2})
	y := make([]float64, 200)
	for i := range y {
		y[i] = 10 // labels are 10 and 20, not 0/1
		if codes[i][0] == 1 {
			y[i] = 20
		}
	}
	m, err := TrainMlogit(x, y, MlogitConfig{Epochs: 150, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Predict(x) {
		if p != 10 && p != 20 {
			t.Fatalf("prediction %v outside original label set", p)
		}
	}
}

func TestTrainMlogitSingleClassRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, _ := onehotDesign(rng, 10, []int{2})
	y := make([]float64, 10)
	if _, err := TrainMlogit(x, y, MlogitConfig{}); err == nil {
		t.Fatal("expected error for single-class input")
	}
}

func TestTrainMlogitEmptyRejected(t *testing.T) {
	x := matrix.CSRFromTriples(0, 2, nil)
	if _, err := TrainMlogit(x, nil, MlogitConfig{}); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestTrainMlogitMismatchRejected(t *testing.T) {
	x := matrix.CSRFromTriples(3, 2, nil)
	if _, err := TrainMlogit(x, []float64{1}, MlogitConfig{}); err == nil {
		t.Fatal("expected error for label mismatch")
	}
}

func TestMlogitErrorsConcentrateOnHardSlice(t *testing.T) {
	// Labels follow feature 0 except in one subgroup where they are flipped;
	// a linear model keeps following feature 0, so inaccuracy concentrates
	// exactly on the planted slice. This is the mechanism the SliceLine
	// experiments rely on.
	rng := rand.New(rand.NewSource(5))
	x, codes := onehotDesign(rng, 1000, []int{2, 4})
	y := make([]float64, 1000)
	for i := range y {
		y[i] = float64(codes[i][0])
		if codes[i][1] == 2 { // planted slice: label flipped
			y[i] = 1 - y[i]
		}
	}
	m, err := TrainMlogit(x, y, MlogitConfig{Epochs: 200, Step: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := Inaccuracy(y, m.Predict(x))
	var in, out, inN, outN float64
	for i := range e {
		if codes[i][1] == 2 {
			in += e[i]
			inN++
		} else {
			out += e[i]
			outN++
		}
	}
	if in/inN <= out/outN {
		t.Fatalf("planted slice error rate %v not above rest %v", in/inN, out/outN)
	}
}
