package ml

import "fmt"

// GroupRates summarizes the confusion behaviour of a binary classifier on
// one subgroup, the quantities behind the standard fairness criteria.
type GroupRates struct {
	N            int     // subgroup rows
	PositiveRate float64 // P(ŷ=positive | group): selection rate
	TPR          float64 // true positive rate (recall on positives)
	FPR          float64 // false positive rate
	FNR          float64 // false negative rate
}

// BinaryGroupRates computes the selection and error rates of a binary
// classifier restricted to the rows where member[i] is true. positive is
// the favourable label. Rates over empty denominators are 0.
func BinaryGroupRates(y, yhat []float64, member []bool, positive float64) (GroupRates, error) {
	if len(y) != len(yhat) || len(y) != len(member) {
		return GroupRates{}, fmt.Errorf("ml: mismatched lengths %d/%d/%d", len(y), len(yhat), len(member))
	}
	var g GroupRates
	var tp, fp, tn, fn int
	for i := range y {
		if !member[i] {
			continue
		}
		g.N++
		predPos := yhat[i] == positive
		actPos := y[i] == positive
		switch {
		case predPos && actPos:
			tp++
		case predPos && !actPos:
			fp++
		case !predPos && actPos:
			fn++
		default:
			tn++
		}
	}
	if g.N > 0 {
		g.PositiveRate = float64(tp+fp) / float64(g.N)
	}
	if tp+fn > 0 {
		g.TPR = float64(tp) / float64(tp+fn)
		g.FNR = float64(fn) / float64(tp+fn)
	}
	if fp+tn > 0 {
		g.FPR = float64(fp) / float64(fp+tn)
	}
	return g, nil
}

// DemographicParityGap returns |selectionRate(A) − selectionRate(B)|, the
// demographic parity violation between two subgroups.
func DemographicParityGap(a, b GroupRates) float64 {
	return abs(a.PositiveRate - b.PositiveRate)
}

// EqualizedOddsGap returns max(|TPR gap|, |FPR gap|), the equalized-odds
// violation between two subgroups (Hardt et al.'s criterion, the
// disparate-mistreatment notion cited by the paper's future work).
func EqualizedOddsGap(a, b GroupRates) float64 {
	t := abs(a.TPR - b.TPR)
	f := abs(a.FPR - b.FPR)
	if f > t {
		return f
	}
	return t
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
