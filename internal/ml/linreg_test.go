package ml

import (
	"math"
	"math/rand"
	"testing"

	"sliceline/internal/matrix"
)

// onehotDesign builds a random one-hot CSR design matrix with the given
// feature domains, returning the matrix and the chosen codes.
func onehotDesign(rng *rand.Rand, n int, doms []int) (*matrix.CSR, [][]int) {
	l := 0
	begs := make([]int, len(doms))
	for j, d := range doms {
		begs[j] = l
		l += d
	}
	codes := make([][]int, n)
	var ts []matrix.Triple
	for i := 0; i < n; i++ {
		codes[i] = make([]int, len(doms))
		for j, d := range doms {
			c := rng.Intn(d)
			codes[i][j] = c
			ts = append(ts, matrix.Triple{Row: i, Col: begs[j] + c, Val: 1})
		}
	}
	return matrix.CSRFromTriples(n, l, ts), codes
}

func TestTrainLinRegRecoversAdditiveModel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x, codes := onehotDesign(rng, 500, []int{3, 4})
	// y = effect(feature0 code) + effect(feature1 code), an exactly linear
	// target in the one-hot basis.
	eff0 := []float64{1, 5, -2}
	eff1 := []float64{0, 2, 4, 6}
	y := make([]float64, 500)
	for i := range y {
		y[i] = eff0[codes[i][0]] + eff1[codes[i][1]]
	}
	m, err := TrainLinReg(x, y, LinRegConfig{Lambda: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	yhat := m.Predict(x)
	for i := range y {
		if math.Abs(y[i]-yhat[i]) > 1e-3 {
			t.Fatalf("row %d: prediction %v, want %v", i, yhat[i], y[i])
		}
	}
}

func TestTrainLinRegEmptyInput(t *testing.T) {
	x := matrix.CSRFromTriples(0, 3, nil)
	if _, err := TrainLinReg(x, nil, LinRegConfig{}); err == nil {
		t.Fatal("expected error for empty training set")
	}
}

func TestTrainLinRegDimensionMismatch(t *testing.T) {
	x := matrix.CSRFromTriples(2, 3, nil)
	if _, err := TrainLinReg(x, []float64{1}, LinRegConfig{}); err == nil {
		t.Fatal("expected error for label mismatch")
	}
}

func TestLinRegInterceptOnly(t *testing.T) {
	// With no informative features (all-zero design), prediction is the mean.
	x := matrix.CSRFromTriples(4, 2, nil)
	y := []float64{1, 2, 3, 4}
	m, err := TrainLinReg(x, y, LinRegConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Predict(x) {
		if math.Abs(p-2.5) > 1e-9 {
			t.Fatalf("prediction = %v, want mean 2.5", p)
		}
	}
}

func TestLinRegResidualsDriveSliceErrors(t *testing.T) {
	// A planted bad subgroup must surface as larger squared loss.
	rng := rand.New(rand.NewSource(7))
	x, codes := onehotDesign(rng, 400, []int{2, 5})
	y := make([]float64, 400)
	for i := range y {
		y[i] = 1
		if codes[i][0] == 0 && codes[i][1] == 3 {
			y[i] = 10 // subgroup the linear model cannot express jointly
		}
	}
	m, err := TrainLinReg(x, y, LinRegConfig{Lambda: 1.0, MaxIters: 100})
	if err != nil {
		t.Fatal(err)
	}
	e := SquaredLoss(y, m.Predict(x))
	var inErr, outErr float64
	var inN, outN int
	for i := range e {
		if codes[i][0] == 0 && codes[i][1] == 3 {
			inErr += e[i]
			inN++
		} else {
			outErr += e[i]
			outN++
		}
	}
	if inN == 0 {
		t.Skip("no subgroup rows sampled")
	}
	if inErr/float64(inN) <= outErr/float64(outN) {
		t.Fatalf("subgroup mean error %v not larger than rest %v", inErr/float64(inN), outErr/float64(outN))
	}
}
