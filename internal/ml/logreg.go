package ml

import (
	"errors"
	"fmt"
	"math"

	"sliceline/internal/matrix"
)

// Mlogit is a multinomial (softmax) logistic regression model, the paper's
// `mlogit` classifier. Class labels are the distinct values of y, recoded
// internally to 0..K-1.
type Mlogit struct {
	W       *matrix.Dense // K × l weight matrix
	B       []float64     // K intercepts
	Classes []float64     // Classes[k] is the original label of class k
	Epochs  int
}

// MlogitConfig controls training.
type MlogitConfig struct {
	Epochs   int     // full-batch gradient steps; <= 0 defaults to 100
	Step     float64 // learning rate; <= 0 defaults to 1.0
	L2       float64 // weight decay; < 0 treated as 0
	Parallel bool    // use parallel matvec kernels (on by default semantics: always parallel via matrix package)
}

func (c *MlogitConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.Step <= 0 {
		c.Step = 1.0
	}
	if c.L2 < 0 {
		c.L2 = 0
	}
}

// TrainMlogit fits a softmax classifier with full-batch gradient descent and
// a decaying step size. It handles any number of classes, covering the
// paper's 2-class (Adult, Criteo), 4-class (USCensus) and 7-class (Covtype)
// tasks.
func TrainMlogit(x *matrix.CSR, y []float64, cfg MlogitConfig) (*Mlogit, error) {
	if x.Rows() != len(y) {
		return nil, fmt.Errorf("ml: %d rows vs %d labels", x.Rows(), len(y))
	}
	if x.Rows() == 0 {
		return nil, errors.New("ml: empty training set")
	}
	cfg.defaults()
	n, l := x.Rows(), x.Cols()

	// Recode labels to class indexes in order of first appearance.
	classIdx := make(map[float64]int)
	var classes []float64
	yi := make([]int, n)
	for i, v := range y {
		k, ok := classIdx[v]
		if !ok {
			k = len(classes)
			classes = append(classes, v)
			classIdx[v] = k
		}
		yi[i] = k
	}
	k := len(classes)
	if k < 2 {
		return nil, fmt.Errorf("ml: need >= 2 classes, got %d", k)
	}

	w := matrix.NewDense(k, l)
	b := make([]float64, k)
	probs := matrix.NewDense(n, k)
	inv := 1.0 / float64(n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Scores: n×k, computed as X·Wᵀ using the sparse rows.
		matrix.ParallelFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				cols, _ := x.RowEntries(i)
				pi := probs.Row(i)
				for c := 0; c < k; c++ {
					s := b[c]
					wc := w.Row(c)
					for _, j := range cols {
						s += wc[j]
					}
					pi[c] = s
				}
				softmaxInPlace(pi)
			}
		})
		// Gradient: Wᵀ grad = Xᵀ (P - Y) / n, accumulated per class.
		step := cfg.Step / (1 + 0.05*float64(epoch))
		grad := matrix.NewDense(k, l)
		gb := make([]float64, k)
		for i := 0; i < n; i++ {
			cols, _ := x.RowEntries(i)
			pi := probs.Row(i)
			for c := 0; c < k; c++ {
				g := pi[c]
				if yi[i] == c {
					g -= 1
				}
				g *= inv
				gb[c] += g
				gc := grad.Row(c)
				for _, j := range cols {
					gc[j] += g
				}
			}
		}
		for c := 0; c < k; c++ {
			wc := w.Row(c)
			gc := grad.Row(c)
			for j := 0; j < l; j++ {
				wc[j] -= step * (gc[j] + cfg.L2*wc[j])
			}
			b[c] -= step * gb[c]
		}
	}
	return &Mlogit{W: w, B: b, Classes: classes, Epochs: cfg.Epochs}, nil
}

func softmaxInPlace(s []float64) {
	m := s[0]
	for _, v := range s[1:] {
		if v > m {
			m = v
		}
	}
	sum := 0.0
	for i, v := range s {
		e := math.Exp(v - m)
		s[i] = e
		sum += e
	}
	for i := range s {
		s[i] /= sum
	}
}

// Predict returns the predicted original class label per row.
func (m *Mlogit) Predict(x *matrix.CSR) []float64 {
	n := x.Rows()
	out := make([]float64, n)
	k := m.W.Rows()
	matrix.ParallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			cols, _ := x.RowEntries(i)
			best, bc := math.Inf(-1), 0
			for c := 0; c < k; c++ {
				s := m.B[c]
				wc := m.W.Row(c)
				for _, j := range cols {
					s += wc[j]
				}
				if s > best {
					best, bc = s, c
				}
			}
			out[i] = m.Classes[bc]
		}
	})
	return out
}

// Accuracy returns the fraction of rows where Predict(x) equals y.
func (m *Mlogit) Accuracy(x *matrix.CSR, y []float64) float64 {
	yhat := m.Predict(x)
	correct := 0
	for i := range y {
		if y[i] == yhat[i] {
			correct++
		}
	}
	if len(y) == 0 {
		return 0
	}
	return float64(correct) / float64(len(y))
}
