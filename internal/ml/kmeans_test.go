package ml

import (
	"math/rand"
	"testing"

	"sliceline/internal/matrix"
)

func clusteredData(rng *rand.Rand, perCluster int, centers [][]float64) *matrix.Dense {
	n := perCluster * len(centers)
	d := len(centers[0])
	x := matrix.NewDense(n, d)
	for c, ctr := range centers {
		for i := 0; i < perCluster; i++ {
			row := x.Row(c*perCluster + i)
			for j := range row {
				row[j] = ctr[j] + rng.NormFloat64()*0.1
			}
		}
	}
	return x
}

func TestKMeansSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := clusteredData(rng, 50, [][]float64{{0, 0}, {10, 10}, {-10, 10}})
	km, err := TrainKMeans(x, KMeansConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// All rows of each ground-truth cluster must share one assignment.
	for c := 0; c < 3; c++ {
		first := km.Assign[c*50]
		for i := 1; i < 50; i++ {
			if km.Assign[c*50+i] != first {
				t.Fatalf("cluster %d split across assignments", c)
			}
		}
	}
	if km.Inertia > 50*3*2*0.1*0.1*10 {
		t.Fatalf("inertia = %v, unexpectedly large", km.Inertia)
	}
}

func TestKMeansLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := clusteredData(rng, 10, [][]float64{{0, 0}, {5, 5}})
	km, err := TrainKMeans(x, KMeansConfig{K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	labels := km.Labels()
	if len(labels) != 20 {
		t.Fatalf("labels = %d, want 20", len(labels))
	}
	distinct := map[float64]bool{}
	for _, l := range labels {
		distinct[l] = true
	}
	if len(distinct) != 2 {
		t.Fatalf("distinct labels = %d, want 2", len(distinct))
	}
}

func TestKMeansValidation(t *testing.T) {
	x := matrix.NewDense(3, 2)
	if _, err := TrainKMeans(x, KMeansConfig{K: 0}); err == nil {
		t.Error("expected error for k=0")
	}
	if _, err := TrainKMeans(x, KMeansConfig{K: 5}); err == nil {
		t.Error("expected error for k > n")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	x := matrix.NewDenseData(3, 1, []float64{0, 10, 20})
	km, err := TrainKMeans(x, KMeansConfig{K: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if km.Inertia > 1e-9 {
		t.Fatalf("inertia = %v, want ~0 when k = n", km.Inertia)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := clusteredData(rng, 20, [][]float64{{0, 0}, {8, 8}})
	a, err := TrainKMeans(x, KMeansConfig{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainKMeans(x, KMeansConfig{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}
