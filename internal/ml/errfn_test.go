package ml

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestSquaredLoss(t *testing.T) {
	got := SquaredLoss([]float64{1, 2, 3}, []float64{1, 4, 0})
	if !reflect.DeepEqual(got, []float64{0, 4, 9}) {
		t.Fatalf("SquaredLoss = %v, want [0 4 9]", got)
	}
}

func TestInaccuracy(t *testing.T) {
	got := Inaccuracy([]float64{1, 0, 1}, []float64{1, 1, 0})
	if !reflect.DeepEqual(got, []float64{0, 1, 1}) {
		t.Fatalf("Inaccuracy = %v, want [0 1 1]", got)
	}
}

func TestAbsLoss(t *testing.T) {
	got := AbsLoss([]float64{1, -2}, []float64{3, -5})
	if !reflect.DeepEqual(got, []float64{2, 3}) {
		t.Fatalf("AbsLoss = %v, want [2 3]", got)
	}
}

func TestErrorVectorsNonNegativeProperty(t *testing.T) {
	// SliceLine requires e >= 0 for any error function; verify on random
	// inputs.
	f := func(y, yhat []float64) bool {
		n := len(y)
		if len(yhat) < n {
			n = len(yhat)
		}
		y, yhat = y[:n], yhat[:n]
		for _, e := range SquaredLoss(y, yhat) {
			if e < 0 {
				return false
			}
		}
		for _, e := range AbsLoss(y, yhat) {
			if e < 0 {
				return false
			}
		}
		for _, e := range Inaccuracy(y, yhat) {
			if e != 0 && e != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	for i, f := range []func(){
		func() { SquaredLoss([]float64{1}, []float64{1, 2}) },
		func() { Inaccuracy([]float64{1}, nil) },
		func() { AbsLoss(nil, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMeanError(t *testing.T) {
	if got := MeanError([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("MeanError = %v, want 2", got)
	}
	if got := MeanError(nil); got != 0 {
		t.Fatalf("MeanError(nil) = %v, want 0", got)
	}
}
