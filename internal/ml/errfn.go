// Package ml supplies the model-training substrate the paper debugs: linear
// regression (squared loss), multinomial logistic regression (classification
// inaccuracy), and k-means clustering (for deriving artificial labels on
// unlabeled data, as the paper does for USCensus). Models consume the sparse
// one-hot matrix produced by package frame and emit the row-aligned error
// vector e >= 0 that SliceLine's scoring function is defined over.
package ml

import "fmt"

// SquaredLoss returns e_i = (y_i - yhat_i)^2, the paper's regression error
// function.
func SquaredLoss(y, yhat []float64) []float64 {
	if len(y) != len(yhat) {
		panic(fmt.Sprintf("ml: SquaredLoss length mismatch %d vs %d", len(y), len(yhat)))
	}
	e := make([]float64, len(y))
	for i := range y {
		d := y[i] - yhat[i]
		e[i] = d * d
	}
	return e
}

// Inaccuracy returns e_i = 1 if y_i != yhat_i else 0, the paper's
// classification error function.
func Inaccuracy(y, yhat []float64) []float64 {
	if len(y) != len(yhat) {
		panic(fmt.Sprintf("ml: Inaccuracy length mismatch %d vs %d", len(y), len(yhat)))
	}
	e := make([]float64, len(y))
	for i := range y {
		if y[i] != yhat[i] {
			e[i] = 1
		}
	}
	return e
}

// AbsLoss returns e_i = |y_i - yhat_i|, an additional algorithm-specific
// loss usable with SliceLine (any non-negative error vector is valid input).
func AbsLoss(y, yhat []float64) []float64 {
	if len(y) != len(yhat) {
		panic(fmt.Sprintf("ml: AbsLoss length mismatch %d vs %d", len(y), len(yhat)))
	}
	e := make([]float64, len(y))
	for i := range y {
		d := y[i] - yhat[i]
		if d < 0 {
			d = -d
		}
		e[i] = d
	}
	return e
}

// MeanError returns the average of an error vector, the paper's ē.
func MeanError(e []float64) float64 {
	if len(e) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range e {
		s += v
	}
	return s / float64(len(e))
}
