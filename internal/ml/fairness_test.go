package ml

import (
	"math"
	"testing"
)

func TestBinaryGroupRates(t *testing.T) {
	//            TP  FP  FN  TN  (group members only)
	y := []float64{1, 0, 1, 0, 1, 1}
	yhat := []float64{1, 1, 0, 0, 1, 0}
	member := []bool{true, true, true, true, false, false}
	g, err := BinaryGroupRates(y, yhat, member, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 {
		t.Fatalf("N = %d, want 4", g.N)
	}
	if math.Abs(g.PositiveRate-0.5) > 1e-12 {
		t.Errorf("positive rate = %v, want 0.5", g.PositiveRate)
	}
	if math.Abs(g.TPR-0.5) > 1e-12 {
		t.Errorf("TPR = %v, want 0.5", g.TPR)
	}
	if math.Abs(g.FPR-0.5) > 1e-12 {
		t.Errorf("FPR = %v, want 0.5", g.FPR)
	}
	if math.Abs(g.FNR-0.5) > 1e-12 {
		t.Errorf("FNR = %v, want 0.5", g.FNR)
	}
}

func TestBinaryGroupRatesEmptyGroup(t *testing.T) {
	g, err := BinaryGroupRates([]float64{1}, []float64{1}, []bool{false}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 0 || g.PositiveRate != 0 || g.TPR != 0 {
		t.Errorf("empty group rates = %+v", g)
	}
}

func TestBinaryGroupRatesMismatch(t *testing.T) {
	if _, err := BinaryGroupRates([]float64{1}, []float64{1, 2}, []bool{true}, 1); err == nil {
		t.Fatal("expected error")
	}
}

func TestFairnessGaps(t *testing.T) {
	a := GroupRates{PositiveRate: 0.8, TPR: 0.9, FPR: 0.3}
	b := GroupRates{PositiveRate: 0.5, TPR: 0.7, FPR: 0.35}
	if got := DemographicParityGap(a, b); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("parity gap = %v, want 0.3", got)
	}
	if got := EqualizedOddsGap(a, b); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("odds gap = %v, want 0.2 (TPR gap dominates)", got)
	}
	b.FPR = 0.8
	if got := EqualizedOddsGap(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("odds gap = %v, want 0.5 (FPR gap dominates)", got)
	}
}
