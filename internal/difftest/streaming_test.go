package difftest

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sliceline/internal/core"
	"sliceline/internal/frame"
)

// streamCase is one appendable differential case: a FromFrame-built dataset
// (Generate's raw datasets carry no column encoders, so they cannot append),
// its appender, the accumulated error vector, and the run configuration.
type streamCase struct {
	ds  *frame.Dataset
	enc *frame.Encoding
	ap  *frame.Appender
	e   []float64
	cfg core.Config
	rng *rand.Rand
}

// genStreamCase derives an appendable case deterministically from a seed by
// rendering a random categorical CSV through the production ingestion path
// (ReadCSV → FromFrame → OneHot → NewAppender). Values are non-numeric
// strings so every column stays categorical.
func genStreamCase(t *testing.T, seed int64) *streamCase {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nFeats := 2 + rng.Intn(3)
	nRows := 40 + rng.Intn(80)
	doms := make([]int, nFeats)
	var b strings.Builder
	for j := 0; j < nFeats; j++ {
		doms[j] = 2 + rng.Intn(3)
		if j > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "f%d", j)
	}
	b.WriteByte('\n')
	for i := 0; i < nRows; i++ {
		for j := 0; j < nFeats; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "v%d", rng.Intn(doms[j]))
		}
		b.WriteByte('\n')
	}
	f, err := frame.ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("seed %d: ReadCSV: %v", seed, err)
	}
	ds, err := frame.FromFrame(f, "", 10)
	if err != nil {
		t.Fatalf("seed %d: FromFrame: %v", seed, err)
	}
	enc, err := frame.OneHot(ds)
	if err != nil {
		t.Fatalf("seed %d: OneHot: %v", seed, err)
	}
	ap, err := frame.NewAppender(ds, enc)
	if err != nil {
		t.Fatalf("seed %d: NewAppender: %v", seed, err)
	}
	sc := &streamCase{ds: ds, enc: enc, ap: ap, rng: rng}
	sc.e = sc.randErrs(nRows)
	sc.cfg = core.Config{
		K:          1 + rng.Intn(6),
		Sigma:      1 + rng.Intn(6),
		Alpha:      0.5 + 0.5*rng.Float64(),
		BitsetEval: core.BitsetOn,
	}
	return sc
}

// randErrs mixes exact zeros with continuous positive errors, like Generate.
func (sc *streamCase) randErrs(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if sc.rng.Float64() >= 0.3 {
			out[i] = sc.rng.Float64()
		}
	}
	return out
}

// randBatch renders one append batch over the current feature domains; when
// grow is true the first row introduces one brand-new value per feature with
// probability ½ (at least one feature always grows).
func (sc *streamCase) randBatch(gen int, grow bool) [][]string {
	feats := sc.ap.Dataset().Features
	rows := 3 + sc.rng.Intn(8)
	out := make([][]string, rows)
	for i := range out {
		cells := make([]string, len(feats))
		for j, ft := range feats {
			cells[j] = fmt.Sprintf("v%d", sc.rng.Intn(ft.Domain))
		}
		out[i] = cells
	}
	if grow {
		grown := false
		for j := range feats {
			if sc.rng.Intn(2) == 0 || (!grown && j == len(feats)-1) {
				out[0][j] = fmt.Sprintf("g%d_%d", gen, j)
				grown = true
			}
		}
	}
	return out
}

// TestDiffStreamingGenerations is the streaming differential plan: seed an
// incremental evaluator, then append several batches — including ones that
// grow feature domains — and at EVERY generation require the maintained
// top-K to be bit-identical (CompareExact) to a frozen from-scratch run over
// the accumulated encoding under the same BitsetOn plan, and tolerance-equal
// to the builtin auto plan (different kernels may differ in the last ULP).
func TestDiffStreamingGenerations(t *testing.T) {
	const testName = "TestDiffStreamingGenerations"
	ctx := context.Background()
	for _, seed := range Seeds(seedCount(15, 4)) {
		sc := genStreamCase(t, seed)
		inc, err := core.NewIncremental(sc.enc, sc.ds.Features, sc.e, sc.cfg)
		if err != nil {
			t.Fatalf("seed %d: NewIncremental: %v", seed, err)
		}

		curEnc, curFeats := sc.enc, sc.ds.Features
		check := func(gen int) {
			got, err := inc.Run(ctx)
			if err != nil {
				failf(t, testName, seed, "generation %d: incremental run: %v", gen, err)
				return
			}
			ref, err := core.RunEncoded(curEnc, curFeats, sc.e, sc.cfg)
			if err != nil {
				failf(t, testName, seed, "generation %d: reference run: %v", gen, err)
				return
			}
			if err := CompareExact(ref, got); err != nil {
				failf(t, testName, seed, "generation %d: incremental vs frozen bitset/on run: %v", gen, err)
			}
			autoCfg := sc.cfg
			autoCfg.BitsetEval = core.BitsetAuto
			alt, err := core.RunEncoded(curEnc, curFeats, sc.e, autoCfg)
			if err != nil {
				failf(t, testName, seed, "generation %d: auto-plan run: %v", gen, err)
				return
			}
			if err := CompareResults(alt, got, Tol); err != nil {
				failf(t, testName, seed, "generation %d: incremental vs builtin/auto: %v", gen, err)
			}
		}
		check(0)

		generations := 5 + sc.rng.Intn(3)
		for gen := 1; gen <= generations; gen++ {
			// Two guaranteed growth generations; others grow randomly.
			grow := gen == 2 || gen == generations || sc.rng.Intn(4) == 0
			batch := sc.randBatch(gen, grow)
			res, err := sc.ap.AppendRows(batch)
			if err != nil {
				t.Fatalf("seed %d: generation %d: AppendRows: %v", seed, gen, err)
			}
			if grow && len(res.Grown) == 0 {
				t.Fatalf("seed %d: generation %d planted a new value but nothing grew", seed, gen)
			}
			errs := sc.randErrs(res.NewRows)
			if err := inc.Append(res, errs); err != nil {
				failf(t, testName, seed, "generation %d: incremental append: %v", gen, err)
				break
			}
			sc.e = append(append([]float64(nil), sc.e...), errs...)
			curEnc, curFeats = res.Enc, res.DS.Features
			check(gen)
			if gen2 := inc.Generation(); gen2 != gen {
				t.Fatalf("seed %d: evaluator reports generation %d, want %d", seed, gen2, gen)
			}
		}

		// The memo must actually be doing the incremental work: after
		// several re-runs over a growing dataset, continued evaluations
		// (hits) should exist unless the lattice never reached level 2.
		if st := inc.Stats(); st.Entries > 0 && st.Hits == 0 && st.Misses > st.Entries {
			t.Errorf("seed %d: memo never continued a candidate (entries=%d misses=%d)", seed, st.Entries, st.Misses)
		}
	}
}
