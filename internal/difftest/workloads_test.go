package difftest

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/stats"
)

// Differential scenarios for the three workloads that share the batch
// enumeration engine:
//
//   - anytime: a budgeted run is bit-identical — top-K, gap certificate and
//     statistical annotations — to a batch run capped at the level where the
//     budget stopped it, and snapshot gaps only ever shrink;
//   - diff: RunDiff lowers onto two weighted runs over the rectified error
//     deltas, so each signed direction of the merged top-K must be the
//     corresponding standalone run, bit for bit;
//   - statistics: the p-values recovered from kernel accumulators match a
//     brute-force Welch test over the raw rows, and the q-values obey the
//     Benjamini–Hochberg structure.

// runCase dispatches a case through the public batch entry point, weighted
// when the case carries weights.
func runCase(c *Case, cfg core.Config) (*core.Result, error) {
	if c.W != nil {
		return core.RunWeighted(c.DS, c.E, c.W, cfg)
	}
	return core.Run(c.DS, c.E, cfg)
}

// TestWorkloadAnytimeGenerousBudget: with a budget the run cannot exhaust,
// anytime mode is the batch run — same top-K, annotations and a zero gap —
// and every snapshot stream is monotone.
func TestWorkloadAnytimeGenerousBudget(t *testing.T) {
	for _, seed := range Seeds(12) {
		c := Generate(seed, Defaults)
		batch, err := core.Run(c.DS, c.E, c.Cfg)
		if err != nil {
			t.Fatalf("seed %d: batch: %v\n%s", seed, err, ReproLine(t.Name(), seed))
		}

		var snaps []core.Snapshot
		anyCfg := c.Cfg
		anyCfg.Budget = time.Hour
		anyCfg.OnSnapshot = func(s core.Snapshot) { snaps = append(snaps, s) }
		anyRes, err := core.Run(c.DS, c.E, anyCfg)
		if err != nil {
			t.Fatalf("seed %d: anytime: %v\n%s", seed, err, ReproLine(t.Name(), seed))
		}

		if err := CompareAnnotated(batch, anyRes); err != nil {
			t.Fatalf("seed %d: anytime differs from batch: %v\n%s", seed, err, ReproLine(t.Name(), seed))
		}
		if anyRes.Gap != 0 {
			t.Fatalf("seed %d: exhausted run certifies gap %v, want 0\n%s", seed, anyRes.Gap, ReproLine(t.Name(), seed))
		}
		if len(snaps) == 0 {
			t.Fatalf("seed %d: no snapshots emitted\n%s", seed, ReproLine(t.Name(), seed))
		}
		for i := 1; i < len(snaps); i++ {
			if snaps[i].Gap > snaps[i-1].Gap {
				t.Fatalf("seed %d: snapshot gap increased %v -> %v at level %d\n%s",
					seed, snaps[i-1].Gap, snaps[i].Gap, snaps[i].Level, ReproLine(t.Name(), seed))
			}
			if snaps[i].Level <= snaps[i-1].Level {
				t.Fatalf("seed %d: snapshot levels not increasing (%d after %d)\n%s",
					seed, snaps[i].Level, snaps[i-1].Level, ReproLine(t.Name(), seed))
			}
		}
		if last := snaps[len(snaps)-1]; !anyRes.Truncated && last.Gap != anyRes.Gap {
			t.Fatalf("seed %d: final snapshot gap %v vs result gap %v\n%s",
				seed, last.Gap, anyRes.Gap, ReproLine(t.Name(), seed))
		}
	}
}

// TestWorkloadAnytimeBudgetStop: the budget is consulted only at level
// boundaries, so a budget-stopped run must be bit-identical — including the
// certified gap — to a batch run with MaxLevel pinned at the level the
// budget allowed. Exercised both with an immediately-expiring budget
// (deterministically stops after level 1) and with a short real budget whose
// stopping level is read back from the run itself.
func TestWorkloadAnytimeBudgetStop(t *testing.T) {
	for _, seed := range Seeds(12) {
		c := Generate(seed, Defaults)
		for _, budget := range []time.Duration{time.Nanosecond, 2 * time.Millisecond} {
			anyCfg := c.Cfg
			anyCfg.Budget = budget
			anyRes, err := core.Run(c.DS, c.E, anyCfg)
			if err != nil {
				t.Fatalf("seed %d: anytime(%v): %v\n%s", seed, budget, err, ReproLine(t.Name(), seed))
			}
			if anyRes.Truncated {
				continue // candidate-budget abort has its own semantics
			}
			// The last recorded level is the last completed one; a batch run
			// capped there must reproduce the anytime state exactly.
			stopped := anyRes.Levels[len(anyRes.Levels)-1].Level
			batchCfg := c.Cfg
			batchCfg.MaxLevel = stopped
			batch, err := core.Run(c.DS, c.E, batchCfg)
			if err != nil {
				t.Fatalf("seed %d: batch MaxLevel=%d: %v\n%s", seed, stopped, err, ReproLine(t.Name(), seed))
			}
			if err := CompareAnnotated(batch, anyRes); err != nil {
				t.Fatalf("seed %d: anytime(%v, stopped at %d) differs from batch MaxLevel=%d: %v\n%s",
					seed, budget, stopped, stopped, err, ReproLine(t.Name(), seed))
			}
			if budget == time.Nanosecond && stopped != 1 {
				t.Fatalf("seed %d: 1ns budget survived to level %d\n%s", seed, stopped, ReproLine(t.Name(), seed))
			}
		}
	}
}

// TestWorkloadDiffEquivalence: RunDiff is exactly two weighted runs over the
// rectified error deltas. Filtering the merged top-K by sign must recover
// each standalone run bit for bit, annotations included, and the merged gap
// is the worse of the two directions' certificates.
func TestWorkloadDiffEquivalence(t *testing.T) {
	for _, seed := range Seeds(12) {
		c := Generate(seed, Defaults)
		eBase := c.E
		// A deterministic "new model": some rows regress, some improve.
		rng := rand.New(rand.NewSource(seed + 7919))
		eNew := make([]float64, len(eBase))
		for i := range eNew {
			switch r := rng.Float64(); {
			case r < 0.3:
				eNew[i] = eBase[i] + rng.Float64() // regression
			case r < 0.6:
				eNew[i] = eBase[i] * rng.Float64() // improvement
			default:
				eNew[i] = eBase[i]
			}
		}

		diff, err := core.RunDiff(c.DS, eBase, eNew, c.Cfg)
		if err != nil {
			t.Fatalf("seed %d: RunDiff: %v\n%s", seed, err, ReproLine(t.Name(), seed))
		}

		reg := make([]float64, len(eBase))
		imp := make([]float64, len(eBase))
		ones := make([]float64, len(eBase))
		for i := range eBase {
			reg[i] = math.Max(0, eNew[i]-eBase[i])
			imp[i] = math.Max(0, eBase[i]-eNew[i])
			ones[i] = 1
		}
		regRes, err := core.RunWeighted(c.DS, reg, ones, c.Cfg)
		if err != nil {
			t.Fatalf("seed %d: regression direction: %v\n%s", seed, err, ReproLine(t.Name(), seed))
		}
		impRes, err := core.RunWeighted(c.DS, imp, ones, c.Cfg)
		if err != nil {
			t.Fatalf("seed %d: improvement direction: %v\n%s", seed, err, ReproLine(t.Name(), seed))
		}

		checkDirection(t, seed, diff, regRes, 1)
		checkDirection(t, seed, diff, impRes, -1)
		if want := math.Max(regRes.Gap, impRes.Gap); diff.Gap != want {
			t.Fatalf("seed %d: merged gap %v, want max of directions %v\n%s", seed, diff.Gap, want, ReproLine(t.Name(), seed))
		}
		if len(diff.TopK) != len(regRes.TopK)+len(impRes.TopK) {
			t.Fatalf("seed %d: merged top-K holds %d slices, directions hold %d+%d\n%s",
				seed, len(diff.TopK), len(regRes.TopK), len(impRes.TopK), ReproLine(t.Name(), seed))
		}
	}
}

// checkDirection asserts that the signed slices of a merged diff result are
// exactly the standalone run for that direction: same slices in the same
// order, same statistics, same p/q annotations.
func checkDirection(t *testing.T, seed int64, diff, want *core.Result, sign int) {
	t.Helper()
	var got []core.Slice
	for _, s := range diff.TopK {
		if s.DiffSign == sign {
			got = append(got, s)
		}
	}
	if err := CompareExact(&core.Result{TopK: got}, want); err != nil {
		t.Fatalf("seed %d: direction %+d: %v\n%s", seed, sign, err, ReproLine(t.Name(), seed))
	}
	for i := range got {
		g, w := got[i], want.TopK[i]
		if g.PValue != w.PValue || g.QValue != w.QValue || g.Significant != w.Significant {
			t.Fatalf("seed %d: direction %+d rank %d annotations differ: p=%v/%v q=%v/%v sig=%v/%v\n%s",
				seed, sign, i, g.PValue, w.PValue, g.QValue, w.QValue, g.Significant, w.Significant,
				ReproLine(t.Name(), seed))
		}
	}
}

// TestWorkloadStatisticsBruteForce: per-slice p-values recovered from the
// enumeration's (ss, se) accumulators plus the decode-time sum of squares
// must match a from-scratch Welch test over the raw rows, and q-values must
// carry the Benjamini–Hochberg structure (q >= p, within [p, 1], monotone
// in p-rank, significance marker consistent with the configured level).
func TestWorkloadStatisticsBruteForce(t *testing.T) {
	for _, seed := range Seeds(12) {
		opts := Defaults
		opts.Weighted = seed%2 == 0 // alternate weighted and unweighted
		c := Generate(seed, opts)
		res, err := runCase(c, c.Cfg)
		if err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, ReproLine(t.Name(), seed))
		}
		for i, s := range res.TopK {
			want := bruteForceWelchP(c, s)
			if !Tol.Close(want, s.PValue) {
				t.Fatalf("seed %d: rank %d p-value %v vs brute force %v\n%s",
					seed, i, s.PValue, want, ReproLine(t.Name(), seed))
			}
			if s.QValue < s.PValue || s.QValue > 1 {
				t.Fatalf("seed %d: rank %d q-value %v outside [p=%v, 1]\n%s",
					seed, i, s.QValue, s.PValue, ReproLine(t.Name(), seed))
			}
			if s.Significant != (s.QValue <= core.DefaultSignificance) {
				t.Fatalf("seed %d: rank %d significance marker disagrees with q=%v at level %v\n%s",
					seed, i, s.QValue, core.DefaultSignificance, ReproLine(t.Name(), seed))
			}
		}
		// BH monotonicity: ordering slices by ascending p must order their
		// q-values weakly ascending too (step-up q is monotone in p-rank).
		byP := append([]core.Slice(nil), res.TopK...)
		for i := 1; i < len(byP); i++ {
			for j := i; j > 0 && byP[j].PValue < byP[j-1].PValue; j-- {
				byP[j], byP[j-1] = byP[j-1], byP[j]
			}
		}
		for i := 1; i < len(byP); i++ {
			if byP[i].QValue < byP[i-1].QValue {
				t.Fatalf("seed %d: q-values not monotone in p-rank: q=%v (p=%v) after q=%v (p=%v)\n%s",
					seed, byP[i].QValue, byP[i].PValue, byP[i-1].QValue, byP[i-1].PValue,
					ReproLine(t.Name(), seed))
			}
		}
	}
}

// bruteForceWelchP recomputes a slice's one-sided p-value from the raw rows:
// membership by predicate conjunction over the original matrix, a two-pass
// weighted variance on each side of the partition, then Welch + the upper
// t-tail — deliberately not the accumulator-subtraction path the engine
// uses. Mirrors the engine's conventions: degenerate partitions report 1,
// and the result is floored at the smallest positive float64.
func bruteForceWelchP(c *Case, s core.Slice) float64 {
	n := c.DS.NumRows()
	member := make([]bool, n)
	for i := 0; i < n; i++ {
		in := true
		for _, p := range s.Predicates {
			if c.DS.X0.At(i, p.Feature) != p.Value {
				in = false
				break
			}
		}
		member[i] = in
	}
	weight := func(i int) float64 {
		if c.W == nil {
			return 1
		}
		return c.W[i]
	}
	var n1, n2, se1, se2 float64
	for i := 0; i < n; i++ {
		w := weight(i)
		if member[i] {
			n1 += w
			se1 += w * c.E[i]
		} else {
			n2 += w
			se2 += w * c.E[i]
		}
	}
	if n1 <= 1 || n2 <= 1 {
		return 1
	}
	m1, m2 := se1/n1, se2/n2
	var v1, v2 float64
	for i := 0; i < n; i++ {
		w := weight(i)
		d := c.E[i]
		if member[i] {
			v1 += w * (d - m1) * (d - m1)
		} else {
			v2 += w * (d - m2) * (d - m2)
		}
	}
	v1 /= n1 - 1
	v2 /= n2 - 1
	tStat, df := stats.Welch(m1, v1, n1, m2, v2, n2)
	return math.Max(stats.TCDFUpper(tStat, df), math.SmallestNonzeroFloat64)
}
