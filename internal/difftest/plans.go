package difftest

import (
	"fmt"
	"net"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/dist"
	"sliceline/internal/faults"
)

// Plan is one named execution backend. Run executes the case's
// configuration through that backend and returns the result; backends that
// allocate external resources (TCP workers) clean them up before returning.
type Plan struct {
	Name string
	// Weighted reports whether the plan supports row-weighted cases;
	// external evaluators do not (core rejects the combination by design).
	Weighted bool
	run      func(c *Case) (*core.Result, error)
}

// Run executes the plan on the case.
func (p Plan) Run(c *Case) (*core.Result, error) { return p.run(c) }

// runBuiltin executes the in-process enumerator, honoring case weights.
func runBuiltin(c *Case, mutate func(*core.Config)) (*core.Result, error) {
	cfg := c.Cfg
	if mutate != nil {
		mutate(&cfg)
	}
	if c.W != nil {
		return core.RunWeighted(c.DS, c.E, c.W, cfg)
	}
	return core.Run(c.DS, c.E, cfg)
}

// BuiltinPlans enumerates the single-process execution plans of Section 4.4:
// the fused sparse kernel at several block sizes — b=1 is the task-parallel
// plan, a huge b the data-parallel plan, intermediate values the hybrid —
// plus the dense chunked kernel, the packed-bitset kernel forced on and off,
// and priority-ordered enumeration.
func BuiltinPlans() []Plan {
	plans := []Plan{
		{Name: "builtin/auto", Weighted: true, run: func(c *Case) (*core.Result, error) {
			return runBuiltin(c, nil)
		}},
		{Name: "dense", Weighted: true, run: func(c *Case) (*core.Result, error) {
			return runBuiltin(c, func(cfg *core.Config) { cfg.DenseEval = true })
		}},
		{Name: "priority", Weighted: true, run: func(c *Case) (*core.Result, error) {
			return runBuiltin(c, func(cfg *core.Config) { cfg.PriorityEnumeration = true })
		}},
		{Name: "bitset/on", Weighted: true, run: func(c *Case) (*core.Result, error) {
			return runBuiltin(c, func(cfg *core.Config) { cfg.BitsetEval = core.BitsetOn })
		}},
		{Name: "bitset/off", Weighted: true, run: func(c *Case) (*core.Result, error) {
			return runBuiltin(c, func(cfg *core.Config) { cfg.BitsetEval = core.BitsetOff })
		}},
	}
	for _, b := range []int{1, 3, 16, 1 << 30} {
		b := b
		name := fmt.Sprintf("blocked/b=%d", b)
		if b == 1<<30 {
			name = "blocked/b=nrow"
		}
		plans = append(plans, Plan{Name: name, Weighted: true, run: func(c *Case) (*core.Result, error) {
			return runBuiltin(c, func(cfg *core.Config) { cfg.BlockSize = b })
		}})
	}
	return plans
}

// LocalPlans enumerates the multi-threaded local evaluators of Figure 7(b)
// — MT-Ops (barrier per operation) and MT-PFor (parallel-for over blocks) —
// each under every kernel mode (auto/bitset/CSR).
func LocalPlans() []Plan {
	var plans []Plan
	for _, s := range []dist.Strategy{dist.MTOps, dist.MTPFor} {
		for _, mode := range []core.BitsetMode{core.BitsetAuto, core.BitsetOn, core.BitsetOff} {
			s, mode := s, mode
			name := "local/" + s.String()
			if mode != core.BitsetAuto {
				name += "-bitset-" + mode.String()
			}
			plans = append(plans, Plan{Name: name, run: func(c *Case) (*core.Result, error) {
				ev, err := dist.NewLocalMode(s, 8, mode)
				if err != nil {
					return nil, err
				}
				cfg := c.Cfg
				cfg.Evaluator = ev
				return core.Run(c.DS, c.E, cfg)
			}})
		}
	}
	return plans
}

// ClusterPlans enumerates Dist-PFor over in-process workers, one plan per
// requested worker count.
func ClusterPlans(workerCounts ...int) []Plan {
	var plans []Plan
	for _, nw := range workerCounts {
		nw := nw
		plans = append(plans, Plan{Name: fmt.Sprintf("cluster/inproc-%d", nw), run: func(c *Case) (*core.Result, error) {
			workers := make([]dist.Worker, nw)
			for i := range workers {
				workers[i] = &dist.InProcessWorker{}
			}
			cl, err := dist.NewCluster(workers, 0)
			if err != nil {
				return nil, err
			}
			cfg := c.Cfg
			cfg.Evaluator = cl
			return core.Run(c.DS, c.E, cfg)
		}})
	}
	return plans
}

// BitsetClusterPlans enumerates Dist-PFor over in-process workers whose
// worker-side kernel knob forces the packed-bitset kernel — the partitioned
// analogue of the bitset/on builtin plan.
func BitsetClusterPlans(workerCounts ...int) []Plan {
	var plans []Plan
	for _, nw := range workerCounts {
		nw := nw
		plans = append(plans, Plan{Name: fmt.Sprintf("cluster/inproc-%d-bitset", nw), run: func(c *Case) (*core.Result, error) {
			workers := make([]dist.Worker, nw)
			for i := range workers {
				workers[i] = &dist.InProcessWorker{BitsetEval: core.BitsetOn}
			}
			cl, err := dist.NewCluster(workers, 0)
			if err != nil {
				return nil, err
			}
			cfg := c.Cfg
			cfg.Evaluator = cl
			return core.Run(c.DS, c.E, cfg)
		}})
	}
	return plans
}

// TCPPlans enumerates Dist-PFor over real TCP workers served on ephemeral
// localhost ports, exercising the full gob-RPC serialization path. Workers
// are spun up and torn down per Run.
func TCPPlans(workerCounts ...int) []Plan {
	return TCPPlansMode(core.BitsetAuto, workerCounts...)
}

// TCPPlansMode is TCPPlans with an explicit worker-side kernel mode, the
// path cmd/slworker's -bitset flag configures in production.
func TCPPlansMode(mode core.BitsetMode, workerCounts ...int) []Plan {
	var plans []Plan
	for _, nw := range workerCounts {
		nw := nw
		name := fmt.Sprintf("cluster/tcp-%d", nw)
		if mode != core.BitsetAuto {
			name += "-bitset-" + mode.String()
		}
		plans = append(plans, Plan{Name: name, run: func(c *Case) (*core.Result, error) {
			listeners := make([]net.Listener, 0, nw)
			defer func() {
				for _, lis := range listeners {
					lis.Close()
				}
			}()
			workers := make([]dist.Worker, 0, nw)
			for i := 0; i < nw; i++ {
				lis, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					return nil, err
				}
				listeners = append(listeners, lis)
				srv, err := dist.NewServerOpts(lis, dist.ServerOptions{BitsetEval: mode})
				if err != nil {
					return nil, err
				}
				go srv.Serve() //nolint:errcheck // lifetime bound to listener
				w, err := dist.Dial(lis.Addr().String())
				if err != nil {
					return nil, err
				}
				workers = append(workers, w)
			}
			cl, err := dist.NewCluster(workers, 0)
			if err != nil {
				return nil, err
			}
			defer cl.Close()
			cfg := c.Cfg
			cfg.Evaluator = cl
			return core.Run(c.DS, c.E, cfg)
		}})
	}
	return plans
}

// ChaosPlans enumerates Dist-PFor clusters with seeded fault injection: one
// clean worker plus faulty workers running the faults.Chaos profile, with
// deadlines, hedging and heartbeats enabled. Differentially comparing them
// against the fault-free plans asserts the self-healing runtime's core
// guarantee — faults change performance, never results. The fault pattern is
// a pure function of the plan's seed, so a differential failure reproduces
// from the case seed and plan name alone.
func ChaosPlans(seeds ...int64) []Plan {
	var plans []Plan
	for _, seed := range seeds {
		seed := seed
		plans = append(plans, Plan{Name: fmt.Sprintf("cluster/chaos-%d", seed), run: func(c *Case) (*core.Result, error) {
			workers := []dist.Worker{
				&dist.InProcessWorker{}, // always one clean exit
				faults.Wrap(&dist.InProcessWorker{}, faults.Seeded(seed, faults.Chaos)),
				faults.Wrap(&dist.InProcessWorker{}, faults.Seeded(seed+1000, faults.Chaos)),
			}
			cl, err := dist.NewClusterOpts(workers, dist.Options{
				CallTimeout:       500 * time.Millisecond,
				HedgeDelay:        50 * time.Millisecond,
				HeartbeatInterval: 25 * time.Millisecond,
				HeartbeatTimeout:  100 * time.Millisecond,
			})
			if err != nil {
				return nil, err
			}
			defer cl.Close()
			cfg := c.Cfg
			cfg.Evaluator = cl
			return core.Run(c.DS, c.E, cfg)
		}})
	}
	return plans
}

// ReferencePlan runs the literal materialized linear-algebra program of the
// paper (RunReference), the executable specification. It ignores weights
// and is only intended for small cases.
func ReferencePlan() Plan {
	return Plan{Name: "reference", run: func(c *Case) (*core.Result, error) {
		return core.RunReference(c.DS, c.E, c.Cfg)
	}}
}

// AllPlans is the full cross-backend matrix used by the main differential
// test: builtin variants (including the bitset kernel forced on and off),
// local evaluators under every kernel mode, and in-process clusters both
// with auto and forced-bitset workers. TCP plans are listed separately
// because of their per-run setup cost.
func AllPlans() []Plan {
	plans := BuiltinPlans()
	plans = append(plans, LocalPlans()...)
	plans = append(plans, ClusterPlans(1, 2, 4)...)
	plans = append(plans, BitsetClusterPlans(2)...)
	return plans
}
