package difftest

import (
	"fmt"
	"testing"

	"sliceline/internal/core"
	"sliceline/internal/datagen"
	"sliceline/internal/fptol"
	"sliceline/internal/frame"
)

func init() { datagen.RegisterSeedFlag() }

// ablation is one pruning/config combination of the Figure 3 ablation study.
type ablation struct {
	name  string
	apply func(*core.Config)
}

// ablations is the pruning on/off matrix: every rule individually disabled,
// everything on, and everything off. All of them must be result-preserving.
func ablations() []ablation {
	return []ablation{
		{"all-pruning", func(*core.Config) {}},
		{"no-size-pruning", func(c *core.Config) { c.DisableSizePruning = true }},
		{"no-score-pruning", func(c *core.Config) { c.DisableScorePruning = true }},
		{"no-parent-handling", func(c *core.Config) { c.DisableParentHandling = true }},
		{"no-dedup", func(c *core.Config) { c.DisableDedup = true }},
		{"no-pruning", func(c *core.Config) {
			c.DisableSizePruning = true
			c.DisableScorePruning = true
			c.DisableParentHandling = true
			c.DisableDedup = true
		}},
	}
}

func seedCount(full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// failf reports a differential failure with its one-line reproducer.
func failf(t *testing.T, testName string, seed int64, format string, args ...interface{}) {
	t.Helper()
	t.Errorf("seed %d: %s\n%s", seed, fmt.Sprintf(format, args...), ReproLine(testName, seed))
}

// TestDiffBackendsAgree is the heart of the harness: on every seed, every
// execution plan — blocked sparse eval at several block sizes, dense eval,
// priority enumeration, MT-Ops/MT-PFor local evaluators, and in-process
// Dist-PFor clusters with 1–4 workers — must produce the same top-K as the
// builtin plan, under a rotating pruning-ablation configuration.
func TestDiffBackendsAgree(t *testing.T) {
	abl := ablations()
	for _, seed := range Seeds(seedCount(30, 6)) {
		c := Generate(seed, Defaults)
		a := abl[int(seed)%len(abl)]
		a.apply(&c.Cfg)
		ref, err := BuiltinPlans()[0].Run(c)
		if err != nil {
			failf(t, "TestDiffBackendsAgree", seed, "builtin (%s): %v", a.name, err)
			continue
		}
		if err := CheckInvariants(ref, c.DS.NumFeatures()); err != nil {
			failf(t, "TestDiffBackendsAgree", seed, "builtin invariants (%s): %v", a.name, err)
		}
		for _, plan := range AllPlans()[1:] {
			got, err := plan.Run(c)
			if err != nil {
				failf(t, "TestDiffBackendsAgree", seed, "plan %s (%s): %v", plan.Name, a.name, err)
				continue
			}
			if err := CheckInvariants(got, c.DS.NumFeatures()); err != nil {
				failf(t, "TestDiffBackendsAgree", seed, "plan %s invariants (%s): %v", plan.Name, a.name, err)
			}
			if err := CompareResults(ref, got, Tol); err != nil {
				failf(t, "TestDiffBackendsAgree", seed, "plan %s disagrees with builtin (%s): %v", plan.Name, a.name, err)
			}
		}
	}
}

// bruteForcePlans selects the backends checked against exhaustive
// enumeration: the builtin auto plan, the dense kernel, the bitset kernel
// forced on and off, and in-process clusters with auto and forced-bitset
// workers.
func bruteForcePlans() []Plan {
	var plans []Plan
	for _, p := range BuiltinPlans() {
		switch p.Name {
		case "builtin/auto", "dense", "bitset/on", "bitset/off":
			plans = append(plans, p)
		}
	}
	plans = append(plans, ClusterPlans(2)...)
	plans = append(plans, BitsetClusterPlans(2)...)
	return plans
}

// TestDiffBruteForce checks the exactness claim itself: on small instances,
// several backends must agree with exhaustive lattice enumeration, across
// the pruning-ablation matrix, on at least 50 random seeds.
func TestDiffBruteForce(t *testing.T) {
	abl := ablations()
	plans := bruteForcePlans()
	for _, seed := range Seeds(seedCount(60, 10)) {
		c := Generate(seed, Tiny)
		a := abl[int(seed)%len(abl)]
		a.apply(&c.Cfg)
		truth, err := core.BruteForce(c.DS, c.E, c.Cfg)
		if err != nil {
			failf(t, "TestDiffBruteForce", seed, "brute force: %v", err)
			continue
		}
		for _, plan := range plans {
			got, err := plan.Run(c)
			if err != nil {
				failf(t, "TestDiffBruteForce", seed, "plan %s (%s): %v", plan.Name, a.name, err)
				continue
			}
			if err := CompareToBruteForce(got, truth, Tol); err != nil {
				failf(t, "TestDiffBruteForce", seed, "plan %s vs brute force (%s): %v", plan.Name, a.name, err)
			}
		}
	}
}

// TestDiffPruningAblations pins every pruning rule as result-preserving:
// for each seed, all ablation configurations of the builtin plan must agree
// with the fully-unpruned enumeration.
func TestDiffPruningAblations(t *testing.T) {
	abl := ablations()
	for _, seed := range Seeds(seedCount(12, 4)) {
		c := Generate(seed, Defaults)
		base := c.Clone()
		abl[len(abl)-1].apply(&base.Cfg) // no-pruning ground truth
		ref, err := BuiltinPlans()[0].Run(base)
		if err != nil {
			failf(t, "TestDiffPruningAblations", seed, "unpruned run: %v", err)
			continue
		}
		for _, a := range abl[:len(abl)-1] {
			cc := c.Clone()
			a.apply(&cc.Cfg)
			got, err := BuiltinPlans()[0].Run(cc)
			if err != nil {
				failf(t, "TestDiffPruningAblations", seed, "%s: %v", a.name, err)
				continue
			}
			if err := CompareResults(ref, got, Tol); err != nil {
				failf(t, "TestDiffPruningAblations", seed, "%s changed the result: %v", a.name, err)
			}
		}
	}
}

// TestDiffTCPCluster runs the full TCP worker path (gob RPC serialization,
// partition shipping, concurrent partial aggregation) against the builtin
// plan on a smaller seed sweep.
func TestDiffTCPCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP cluster sweep skipped in short mode")
	}
	for _, seed := range Seeds(6) {
		c := Generate(seed, Defaults)
		ref, err := BuiltinPlans()[0].Run(c)
		if err != nil {
			failf(t, "TestDiffTCPCluster", seed, "builtin: %v", err)
			continue
		}
		plans := TCPPlans(1, 2, 4)
		plans = append(plans, TCPPlansMode(core.BitsetOn, 2)...)
		plans = append(plans, TCPPlansMode(core.BitsetOff, 2)...)
		for _, plan := range plans {
			got, err := plan.Run(c)
			if err != nil {
				failf(t, "TestDiffTCPCluster", seed, "plan %s: %v", plan.Name, err)
				continue
			}
			if err := CompareResults(ref, got, Tol); err != nil {
				failf(t, "TestDiffTCPCluster", seed, "plan %s disagrees with builtin: %v", plan.Name, err)
			}
		}
	}
}

// TestDiffWeightedUnitEqualsUnweighted: unit row weights multiply every
// aggregate by exactly 1.0, so the weighted path must be bit-identical to
// the unweighted one.
func TestDiffWeightedUnitEqualsUnweighted(t *testing.T) {
	for _, seed := range Seeds(seedCount(20, 5)) {
		c := Generate(seed, Defaults)
		ref, err := core.Run(c.DS, c.E, c.Cfg)
		if err != nil {
			failf(t, "TestDiffWeightedUnitEqualsUnweighted", seed, "unweighted: %v", err)
			continue
		}
		w := make([]float64, c.DS.NumRows())
		for i := range w {
			w[i] = 1
		}
		got, err := core.RunWeighted(c.DS, c.E, w, c.Cfg)
		if err != nil {
			failf(t, "TestDiffWeightedUnitEqualsUnweighted", seed, "weighted: %v", err)
			continue
		}
		if err := CompareExact(ref, got); err != nil {
			failf(t, "TestDiffWeightedUnitEqualsUnweighted", seed, "unit weights not bit-identical: %v", err)
		}
	}
}

// TestDiffWeightedEqualsReplicated: integer weights must be equivalent to
// physically replicating each row weight-many times — the deduplicated
// representation the RunWeighted API exists for.
func TestDiffWeightedEqualsReplicated(t *testing.T) {
	for _, seed := range Seeds(seedCount(20, 5)) {
		o := Tiny
		o.Weighted, o.IntWeights = true, true
		c := Generate(seed, o)
		wRes, err := core.RunWeighted(c.DS, c.E, c.W, c.Cfg)
		if err != nil {
			failf(t, "TestDiffWeightedEqualsReplicated", seed, "weighted: %v", err)
			continue
		}
		exp, expE := replicateByWeight(c)
		rRes, err := core.Run(exp, expE, c.Cfg)
		if err != nil {
			failf(t, "TestDiffWeightedEqualsReplicated", seed, "replicated: %v", err)
			continue
		}
		if err := CompareResults(rRes, wRes, Tol); err != nil {
			failf(t, "TestDiffWeightedEqualsReplicated", seed, "weighted vs replicated: %v", err)
		}
	}
}

// TestDiffBitsetWeighted: the weighted bitset kernel must agree with the
// weighted CSR kernel on genuinely weighted cases (non-unit weights change
// the ss/se accumulation paths inside the kernels), and with physical row
// replication for integral weights.
func TestDiffBitsetWeighted(t *testing.T) {
	var on, off Plan
	for _, p := range BuiltinPlans() {
		switch p.Name {
		case "bitset/on":
			on = p
		case "bitset/off":
			off = p
		}
	}
	if on.Name == "" || off.Name == "" {
		t.Fatal("bitset plans missing from BuiltinPlans")
	}
	for _, seed := range Seeds(seedCount(20, 5)) {
		o := Tiny
		o.Weighted, o.IntWeights = true, true
		c := Generate(seed, o)
		ref, err := off.Run(c)
		if err != nil {
			failf(t, "TestDiffBitsetWeighted", seed, "bitset/off: %v", err)
			continue
		}
		got, err := on.Run(c)
		if err != nil {
			failf(t, "TestDiffBitsetWeighted", seed, "bitset/on: %v", err)
			continue
		}
		if err := CompareResults(ref, got, Tol); err != nil {
			failf(t, "TestDiffBitsetWeighted", seed, "weighted bitset vs CSR: %v", err)
		}
		exp, expE := replicateByWeight(c)
		cfg := c.Cfg
		cfg.BitsetEval = core.BitsetOn
		rRes, err := core.Run(exp, expE, cfg)
		if err != nil {
			failf(t, "TestDiffBitsetWeighted", seed, "replicated bitset run: %v", err)
			continue
		}
		if err := CompareResults(rRes, got, Tol); err != nil {
			failf(t, "TestDiffBitsetWeighted", seed, "weighted bitset vs replicated rows: %v", err)
		}
	}
}

// replicateByWeight expands a weighted case into its unweighted equivalent:
// row i appears W[i] times (W must be integral).
func replicateByWeight(c *Case) (*frame.Dataset, []float64) {
	n, m := c.DS.NumRows(), c.DS.NumFeatures()
	total := 0
	for _, w := range c.W {
		total += int(w)
	}
	out := &frame.Dataset{
		Name:     c.DS.Name + "_expanded",
		X0:       frame.NewIntMatrix(total, m),
		Features: c.DS.Features,
	}
	e := make([]float64, 0, total)
	r := 0
	for i := 0; i < n; i++ {
		for k := 0; k < int(c.W[i]); k++ {
			copy(out.X0.Row(r), c.DS.X0.Row(i))
			e = append(e, c.E[i])
			r++
		}
	}
	return out, e
}

// TestDiffReferenceProgram cross-checks the fused production path against
// the literal materialized linear-algebra program of the paper.
func TestDiffReferenceProgram(t *testing.T) {
	ref := ReferencePlan()
	for _, seed := range Seeds(seedCount(10, 3)) {
		c := Generate(seed, Tiny)
		want, err := BuiltinPlans()[0].Run(c)
		if err != nil {
			failf(t, "TestDiffReferenceProgram", seed, "builtin: %v", err)
			continue
		}
		got, err := ref.Run(c)
		if err != nil {
			failf(t, "TestDiffReferenceProgram", seed, "reference: %v", err)
			continue
		}
		if err := CompareResults(want, got, Tol); err != nil {
			failf(t, "TestDiffReferenceProgram", seed, "reference program disagrees: %v", err)
		}
	}
}

// TestDiffDeterminism: every plan run twice on the same case must return
// bit-identical results. This pins the ordered parallel reductions in the
// row-parallel kernel and the cluster aggregation — completion-order merges
// would make the same plan wobble in the last ULPs between runs.
func TestDiffDeterminism(t *testing.T) {
	plans := AllPlans()
	if !testing.Short() {
		plans = append(plans, TCPPlans(2)...)
	}
	for _, seed := range Seeds(seedCount(6, 2)) {
		c := Generate(seed, Defaults)
		for _, plan := range plans {
			a, err := plan.Run(c)
			if err != nil {
				failf(t, "TestDiffDeterminism", seed, "plan %s: %v", plan.Name, err)
				continue
			}
			b, err := plan.Run(c)
			if err != nil {
				failf(t, "TestDiffDeterminism", seed, "plan %s rerun: %v", plan.Name, err)
				continue
			}
			if err := CompareExact(a, b); err != nil {
				failf(t, "TestDiffDeterminism", seed, "plan %s nondeterministic: %v", plan.Name, err)
			}
		}
	}
}

// TestDiffChaosCluster: the self-healing runtime's differential guarantee.
// A cluster with two seeded-chaos workers (timeouts, hedging, heartbeats
// all live) must return results bit-identical to a fault-free cluster of
// the same shape — failover and hedging re-execute whole partitions on
// identical data and merge in partition order, so faults may change
// performance but never a single ULP of the result — and agree with the
// builtin plan within cross-plan tolerance.
func TestDiffChaosCluster(t *testing.T) {
	cleanRef := ClusterPlans(3)[0]
	for _, seed := range Seeds(seedCount(6, 2)) {
		c := Generate(seed, Defaults)
		builtin, err := BuiltinPlans()[0].Run(c)
		if err != nil {
			failf(t, "TestDiffChaosCluster", seed, "builtin: %v", err)
			continue
		}
		ref, err := cleanRef.Run(c)
		if err != nil {
			failf(t, "TestDiffChaosCluster", seed, "fault-free cluster: %v", err)
			continue
		}
		for _, plan := range ChaosPlans(seed, seed+500) {
			got, err := plan.Run(c)
			if err != nil {
				failf(t, "TestDiffChaosCluster", seed, "plan %s: %v", plan.Name, err)
				continue
			}
			if err := CompareExact(ref, got); err != nil {
				failf(t, "TestDiffChaosCluster", seed, "plan %s not bit-identical to fault-free cluster: %v", plan.Name, err)
			}
			if err := CompareResults(builtin, got, Tol); err != nil {
				failf(t, "TestDiffChaosCluster", seed, "plan %s disagrees with builtin: %v", plan.Name, err)
			}
		}
	}
}

// TestShrink exercises the case minimizer on a synthetic failure predicate.
func TestShrink(t *testing.T) {
	c := Generate(1, Defaults)
	evals := 0
	fails := func(cand *Case) bool {
		evals++
		return cand.DS.NumRows() >= 10 && cand.DS.NumFeatures() >= 2
	}
	small := Shrink(c, fails)
	if !fails(small) {
		t.Fatal("shrunk case no longer fails")
	}
	if small.DS.NumRows() >= c.DS.NumRows() && small.DS.NumFeatures() >= c.DS.NumFeatures() {
		t.Fatalf("shrink made no progress: %dx%d -> %dx%d",
			c.DS.NumRows(), c.DS.NumFeatures(), small.DS.NumRows(), small.DS.NumFeatures())
	}
	if small.DS.NumRows() > 20 {
		t.Fatalf("shrink stopped early at %d rows", small.DS.NumRows())
	}
	if err := small.DS.Validate(); err != nil {
		t.Fatalf("shrunk dataset invalid: %v", err)
	}
	if len(small.E) != small.DS.NumRows() {
		t.Fatalf("shrunk error vector misaligned: %d vs %d rows", len(small.E), small.DS.NumRows())
	}
}

// TestGenerateDeterministic: equal seeds must produce equal cases — the
// foundation of the -seed reproducer.
func TestGenerateDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := Generate(seed, Defaults)
		b := Generate(seed, Defaults)
		if a.DS.NumRows() != b.DS.NumRows() || a.DS.NumFeatures() != b.DS.NumFeatures() {
			t.Fatalf("seed %d: shapes differ", seed)
		}
		for i, v := range a.DS.X0.Data {
			if b.DS.X0.Data[i] != v {
				t.Fatalf("seed %d: X0 differs at %d", seed, i)
			}
		}
		if !fptol.Exact.CloseSlices(a.E, b.E) {
			t.Fatalf("seed %d: error vectors differ", seed)
		}
		if a.Cfg.K != b.Cfg.K || a.Cfg.Sigma != b.Cfg.Sigma || a.Cfg.Alpha != b.Cfg.Alpha {
			t.Fatalf("seed %d: configs differ", seed)
		}
	}
}
