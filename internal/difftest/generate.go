package difftest

import (
	"fmt"
	"math/rand"

	"sliceline/internal/core"
	"sliceline/internal/frame"
)

// GenOpts bounds the randomized case generator. The zero value is replaced
// by Defaults (suitable for cross-backend comparison); brute-force tests use
// Tiny to keep exhaustive enumeration fast.
type GenOpts struct {
	MinRows, MaxRows   int
	MinFeats, MaxFeats int
	MaxDomain          int     // per-feature domain in [2, MaxDomain]
	ZeroErrFrac        float64 // fraction of exactly-zero errors (correct rows)
	PlantFrac          float64 // probability of planting a high-error slice
	Weighted           bool    // attach positive random row weights
	IntWeights         bool    // with Weighted: integer weights (replication-equivalent)
}

// Defaults are sized so that enumeration exercises several lattice levels
// while a full plan × config sweep stays fast.
var Defaults = GenOpts{
	MinRows: 60, MaxRows: 220,
	MinFeats: 2, MaxFeats: 5,
	MaxDomain:   4,
	ZeroErrFrac: 0.3,
	PlantFrac:   0.5,
}

// Tiny keeps the slice lattice small enough for brute-force ground truth.
var Tiny = GenOpts{
	MinRows: 30, MaxRows: 120,
	MinFeats: 2, MaxFeats: 4,
	MaxDomain:   3,
	ZeroErrFrac: 0.3,
	PlantFrac:   0.5,
}

func (o GenOpts) withDefaults() GenOpts {
	if o.MaxRows == 0 {
		d := Defaults
		d.Weighted, d.IntWeights = o.Weighted, o.IntWeights
		return d
	}
	return o
}

// Generate derives a Case deterministically from the seed: a random
// categorical dataset, a non-negative error vector mixing exact zeros with
// continuous values (optionally concentrated on a planted slice, so scores
// are meaningfully positive), optional row weights, and a randomized
// configuration covering the α / K / σ axes. Ablation switches and
// evaluator choice are left to the caller.
func Generate(seed int64, o GenOpts) *Case {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	n := o.MinRows + rng.Intn(o.MaxRows-o.MinRows+1)
	m := o.MinFeats + rng.Intn(o.MaxFeats-o.MinFeats+1)
	ds := &frame.Dataset{
		Name:     fmt.Sprintf("diff-%d", seed),
		X0:       frame.NewIntMatrix(n, m),
		Features: make([]frame.Feature, m),
	}
	for j := 0; j < m; j++ {
		dom := 2 + rng.Intn(o.MaxDomain-1)
		ds.Features[j] = frame.Feature{Name: fmt.Sprintf("f%d", j), Domain: dom}
		for i := 0; i < n; i++ {
			ds.X0.Set(i, j, 1+rng.Intn(dom))
		}
	}

	// Optionally plant a problematic conjunction whose rows get elevated
	// errors, mirroring internal/datagen's construction: differential bugs
	// in pruning only surface when slices actually beat the score threshold.
	planted := map[int]int{}
	if rng.Float64() < o.PlantFrac {
		nPreds := 1 + rng.Intn(2)
		for len(planted) < nPreds {
			f := rng.Intn(m)
			if _, ok := planted[f]; !ok {
				planted[f] = 1 + rng.Intn(ds.Features[f].Domain)
			}
		}
	}
	e := make([]float64, n)
	for i := range e {
		inPlant := len(planted) > 0
		for f, v := range planted {
			if ds.X0.At(i, f) != v {
				inPlant = false
				break
			}
		}
		switch {
		case inPlant:
			e[i] = 0.5 + rng.Float64()
		case rng.Float64() < o.ZeroErrFrac:
			e[i] = 0
		default:
			e[i] = rng.Float64()
		}
	}

	c := &Case{Seed: seed, DS: ds, E: e}
	if o.Weighted {
		c.W = make([]float64, n)
		for i := range c.W {
			if o.IntWeights {
				c.W[i] = float64(1 + rng.Intn(3))
			} else {
				c.W[i] = 0.25 + 2*rng.Float64()
			}
		}
	}
	c.Cfg = core.Config{
		K:     1 + rng.Intn(6),
		Sigma: 2 + rng.Intn(10),
		Alpha: 0.3 + 0.69*rng.Float64(),
	}
	return c
}
