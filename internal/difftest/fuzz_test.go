package difftest

import (
	"testing"

	"sliceline/internal/core"
)

// FuzzDiffBruteForce is the differential harness as a fuzz target: any seed
// produces a tiny random dataset on which the pruned enumerator must agree
// with exhaustive brute-force enumeration. The fuzzer explores the seed
// space far beyond the fixed seed list of TestDiffBruteForce.
func FuzzDiffBruteForce(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c := Generate(seed, Tiny)
		c.W = nil // brute force is unweighted
		truth, err := core.BruteForce(c.DS, c.E, c.Cfg)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		got, err := core.Run(c.DS, c.E, c.Cfg)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if err := CompareToBruteForce(got, truth, Tol); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, ReproLine("TestDiffBruteForce", seed))
		}
		if err := CheckInvariants(got, c.DS.NumFeatures()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}
