package difftest

import (
	"fmt"
	"strings"

	"sliceline/internal/core"
	"sliceline/internal/fptol"
)

// Tol is the harness-wide tolerance for cross-plan comparisons. Slice sizes
// and max errors are order-independent reductions and must match exactly;
// total errors and scores are order-dependent float64 summations, compared
// within fptol.DefaultTol (see that package for the derivation). Tests may
// tighten this to fptol.Exact when comparing a plan against itself
// (run-to-run determinism).
var Tol = fptol.DefaultTol

// CompareResults asserts that two results describe the same top-K slices.
// Slices are matched by predicate set within score-tolerance windows, so a
// pair of truly tied slices may legally appear in either order; any slice of
// ref that has no tolerant counterpart in got is an error. Matched slices
// must agree exactly on size and max error (order-independent statistics)
// and within tol on total error, average error and score.
func CompareResults(ref, got *core.Result, tol fptol.Tol) error {
	if len(ref.TopK) != len(got.TopK) {
		return fmt.Errorf("top-K length mismatch: %d vs %d\nref: %s\ngot: %s",
			len(ref.TopK), len(got.TopK), formatTopK(ref.TopK), formatTopK(got.TopK))
	}
	// Rank-aligned score agreement: the k-th best score must match.
	for i := range ref.TopK {
		if !tol.Close(ref.TopK[i].Score, got.TopK[i].Score) {
			return fmt.Errorf("rank %d score mismatch: %v vs %v (ulps=%d)\nref: %s\ngot: %s",
				i, ref.TopK[i].Score, got.TopK[i].Score,
				fptol.ULPDiff(ref.TopK[i].Score, got.TopK[i].Score),
				formatTopK(ref.TopK), formatTopK(got.TopK))
		}
	}
	// Slice-by-slice matching by predicates.
	used := make([]bool, len(got.TopK))
	for i, rs := range ref.TopK {
		match := -1
		for j, gs := range got.TopK {
			if used[j] || !predsEqual(rs.Predicates, gs.Predicates) {
				continue
			}
			match = j
			break
		}
		if match < 0 {
			return fmt.Errorf("ref slice %d (%v) has no counterpart\nref: %s\ngot: %s",
				i, rs, formatTopK(ref.TopK), formatTopK(got.TopK))
		}
		used[match] = true
		gs := got.TopK[match]
		// A matched slice may sit at a different rank only inside a tie.
		if match != i && !tol.Close(rs.Score, got.TopK[i].Score) {
			return fmt.Errorf("slice %v moved from rank %d to %d without a score tie", rs, i, match)
		}
		if err := compareSlice(rs, gs, tol); err != nil {
			return fmt.Errorf("slice %v: %w", rs.Predicates, err)
		}
	}
	return nil
}

func compareSlice(a, b core.Slice, tol fptol.Tol) error {
	if a.Size != b.Size {
		return fmt.Errorf("size %d vs %d", a.Size, b.Size)
	}
	if a.MaxError != b.MaxError {
		return fmt.Errorf("max error %v vs %v (order-independent reduction must be exact)", a.MaxError, b.MaxError)
	}
	if !tol.Close(a.TotalError, b.TotalError) {
		return fmt.Errorf("total error %v vs %v (ulps=%d)", a.TotalError, b.TotalError, fptol.ULPDiff(a.TotalError, b.TotalError))
	}
	if !tol.Close(a.AvgError, b.AvgError) {
		return fmt.Errorf("avg error %v vs %v", a.AvgError, b.AvgError)
	}
	if !tol.Close(a.Score, b.Score) {
		return fmt.Errorf("score %v vs %v (ulps=%d)", a.Score, b.Score, fptol.ULPDiff(a.Score, b.Score))
	}
	return nil
}

// CompareExact asserts bit-identical results (same plan run twice must be
// deterministic): identical predicates, ranks, and float statistics.
func CompareExact(a, b *core.Result) error {
	if len(a.TopK) != len(b.TopK) {
		return fmt.Errorf("top-K length mismatch: %d vs %d", len(a.TopK), len(b.TopK))
	}
	for i := range a.TopK {
		x, y := a.TopK[i], b.TopK[i]
		if !predsEqual(x.Predicates, y.Predicates) {
			return fmt.Errorf("rank %d predicates %v vs %v", i, x.Predicates, y.Predicates)
		}
		if x.Score != y.Score || x.Size != y.Size || x.TotalError != y.TotalError || x.MaxError != y.MaxError {
			return fmt.Errorf("rank %d statistics differ: %v vs %v", i, x, y)
		}
	}
	return nil
}

// CompareAnnotated is CompareExact extended to the schema-v2 surface: the
// certified optimality gap and the per-slice statistical annotations and
// diff signs must also be bit-identical. Use it when the two runs share the
// full configuration (same depth cap, budget-equivalent), so every derived
// quantity is deterministic.
func CompareAnnotated(a, b *core.Result) error {
	if err := CompareExact(a, b); err != nil {
		return err
	}
	if a.Gap != b.Gap {
		return fmt.Errorf("gap %v vs %v", a.Gap, b.Gap)
	}
	for i := range a.TopK {
		x, y := a.TopK[i], b.TopK[i]
		if x.PValue != y.PValue || x.QValue != y.QValue || x.Significant != y.Significant {
			return fmt.Errorf("rank %d annotations differ: p=%v/%v q=%v/%v sig=%v/%v",
				i, x.PValue, y.PValue, x.QValue, y.QValue, x.Significant, y.Significant)
		}
		if x.DiffSign != y.DiffSign {
			return fmt.Errorf("rank %d diff sign %d vs %d", i, x.DiffSign, y.DiffSign)
		}
	}
	return nil
}

// CompareToBruteForce asserts that a result's top-K scores match exhaustive
// lattice enumeration. Predicate sets are compared per rank except inside
// score ties, where brute force and the enumerator may legally order tied
// slices differently.
func CompareToBruteForce(got *core.Result, truth []core.Slice, tol fptol.Tol) error {
	if len(got.TopK) != len(truth) {
		return fmt.Errorf("top-K length %d vs brute force %d\ngot: %s\ntruth: %s",
			len(got.TopK), len(truth), formatTopK(got.TopK), formatTopK(truth))
	}
	for i := range truth {
		if !tol.Close(truth[i].Score, got.TopK[i].Score) {
			return fmt.Errorf("rank %d score %v vs brute force %v\ngot: %s\ntruth: %s",
				i, got.TopK[i].Score, truth[i].Score, formatTopK(got.TopK), formatTopK(truth))
		}
	}
	// Where predicates align, the full statistics must agree.
	used := make([]bool, len(got.TopK))
	for _, ts := range truth {
		for j, gs := range got.TopK {
			if used[j] || !predsEqual(ts.Predicates, gs.Predicates) {
				continue
			}
			used[j] = true
			if err := compareSlice(ts, gs, tol); err != nil {
				return fmt.Errorf("slice %v: %w", ts.Predicates, err)
			}
			break
		}
	}
	return nil
}

// CheckInvariants validates the internal consistency of one result, the
// decoding invariants every backend must preserve: scores strictly positive
// and sorted, sizes at or above the support threshold, average error
// consistent with total error and size, and the TS/TR matrix encodings
// aligned with the decoded predicates.
func CheckInvariants(res *core.Result, m int) error {
	for i, s := range res.TopK {
		if s.Score <= 0 {
			return fmt.Errorf("rank %d: non-positive score %v in top-K", i, s.Score)
		}
		if i > 0 && res.TopK[i-1].Score < s.Score {
			return fmt.Errorf("rank %d: scores not descending (%v after %v)", i, s.Score, res.TopK[i-1].Score)
		}
		if s.Size < res.Sigma {
			return fmt.Errorf("rank %d: size %d below sigma %d", i, s.Size, res.Sigma)
		}
		if s.Size > 0 && !Tol.Close(s.AvgError, s.TotalError/float64(s.Size)) {
			return fmt.Errorf("rank %d: avg error %v inconsistent with se/ss = %v", i, s.AvgError, s.TotalError/float64(s.Size))
		}
		if s.MaxError*float64(s.Size) < s.TotalError && !Tol.Close(s.MaxError*float64(s.Size), s.TotalError) {
			return fmt.Errorf("rank %d: total error %v exceeds size*maxError %v", i, s.TotalError, s.MaxError*float64(s.Size))
		}
		if len(s.Predicates) == 0 {
			return fmt.Errorf("rank %d: empty predicate list", i)
		}
		seen := map[int]bool{}
		for _, p := range s.Predicates {
			if p.Feature < 0 || p.Feature >= m {
				return fmt.Errorf("rank %d: predicate feature %d out of range [0,%d)", i, p.Feature, m)
			}
			if seen[p.Feature] {
				return fmt.Errorf("rank %d: duplicate predicate on feature %d", i, p.Feature)
			}
			seen[p.Feature] = true
			if p.Value < 1 {
				return fmt.Errorf("rank %d: non-positive value code %d", i, p.Value)
			}
		}
	}
	// TS/TR must re-encode the decoded predicates, aligned rank by rank.
	ts := res.TS(m)
	tr := res.TR()
	if len(ts) != len(res.TopK) || len(tr) != len(res.TopK) {
		return fmt.Errorf("TS/TR length %d/%d vs top-K %d", len(ts), len(tr), len(res.TopK))
	}
	for i, s := range res.TopK {
		nonZero := 0
		for f, v := range ts[i] {
			if v == 0 {
				continue
			}
			nonZero++
			found := false
			for _, p := range s.Predicates {
				if p.Feature == f && p.Value == v {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("rank %d: TS entry f%d=%d not among predicates %v", i, f, v, s.Predicates)
			}
		}
		if nonZero != len(s.Predicates) {
			return fmt.Errorf("rank %d: TS has %d assignments vs %d predicates", i, nonZero, len(s.Predicates))
		}
		if tr[i] != [4]float64{s.Score, s.TotalError, s.MaxError, float64(s.Size)} {
			return fmt.Errorf("rank %d: TR row %v misaligned with slice %v", i, tr[i], s)
		}
	}
	return nil
}

func predsEqual(a, b []core.Predicate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Feature != b[i].Feature || a[i].Value != b[i].Value {
			return false
		}
	}
	return true
}

func formatTopK(slices []core.Slice) string {
	if len(slices) == 0 {
		return "(empty)"
	}
	var sb strings.Builder
	for i, s := range slices {
		if i > 0 {
			sb.WriteString("; ")
		}
		fmt.Fprintf(&sb, "#%d %v", i, s)
	}
	return sb.String()
}
