// Package difftest is the differential correctness harness for SliceLine.
//
// SliceLine's headline claim is that the pruned, linear-algebra enumeration
// is an *exact* algorithm: every pruning rule (size, score upper bound,
// missing-parent) is result-preserving, and every execution plan — blocked
// fused-sparse evaluation at any block size, dense chunked evaluation,
// multi-threaded local evaluators, and row-partitioned distributed clusters
// over in-process or TCP workers — must return the same top-K slices. This
// package turns that claim into a reusable test asset:
//
//   - Generate derives randomized categorical datasets, error vectors and
//     optional row weights deterministically from a seed.
//   - Plans enumerates named execution backends that all evaluate the same
//     enumeration (see plans.go).
//   - CompareResults / CompareToBruteForce assert agreement between plans,
//     and against exhaustive lattice enumeration on small instances, within
//     the principled ULP tolerance of package fptol (plans sum slice errors
//     in different orders, so last-ULP wobble is expected; anything larger
//     is a bug).
//   - Shrink minimizes a failing case while preserving its failure, and
//     ReproLine prints the one-line reproducer for a failing seed.
//
// Every future perf PR that touches the evaluation kernels or the
// enumeration is expected to keep this harness green.
package difftest

import (
	"fmt"

	"sliceline/internal/core"
	"sliceline/internal/datagen"
	"sliceline/internal/frame"
)

// Case is one differential test case: a dataset, an aligned error vector,
// optional row weights, and the SliceLine configuration to run it under.
type Case struct {
	Seed int64
	DS   *frame.Dataset
	E    []float64
	W    []float64 // nil = unweighted
	Cfg  core.Config
}

// Clone deep-copies the case so shrinking can mutate candidates freely.
func (c *Case) Clone() *Case {
	out := &Case{Seed: c.Seed, Cfg: c.Cfg}
	out.DS = &frame.Dataset{
		Name:     c.DS.Name,
		X0:       c.DS.X0.Clone(),
		Features: append([]frame.Feature(nil), c.DS.Features...),
	}
	if c.DS.Y != nil {
		out.DS.Y = append([]float64(nil), c.DS.Y...)
	}
	out.E = append([]float64(nil), c.E...)
	if c.W != nil {
		out.W = append([]float64(nil), c.W...)
	}
	return out
}

// ReproLine formats the one-line reproducer for a failing seed: re-running
// the named test with -seed pins the sweep to exactly this case.
func ReproLine(testName string, seed int64) string {
	return fmt.Sprintf("reproduce: go test ./internal/difftest -run %s -seed=%d", testName, seed)
}

// Seeds returns the seed sweep for a differential test: seeds 1..n, unless
// the -seed flag (registered via datagen.RegisterSeedFlag) pins a single
// seed, in which case only that one runs.
func Seeds(n int) []int64 {
	if s, ok := datagen.SeedOverride(); ok {
		return []int64{s}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// Shrink greedily minimizes a failing case while fails(c) stays true,
// trying progressively smaller row prefixes, dropped features, and smaller
// K / MaxLevel. It never mutates the input case and returns the smallest
// still-failing variant found (possibly the input itself). fails must be
// pure — it is invoked many times.
func Shrink(c *Case, fails func(*Case) bool) *Case {
	best := c
	improved := true
	for improved {
		improved = false
		// Rows: binary-search style prefix truncation.
		n := best.DS.NumRows()
		for _, keep := range []int{n / 2, (3 * n) / 4, n - 1} {
			if keep < 1 || keep >= n {
				continue
			}
			if cand := truncateRows(best, keep); fails(cand) {
				best = cand
				improved = true
				break
			}
		}
		// Features: drop one at a time (only when >= 2 remain).
		for j := 0; j < best.DS.NumFeatures() && best.DS.NumFeatures() > 1; j++ {
			if cand := dropFeature(best, j); fails(cand) {
				best = cand
				improved = true
				break
			}
		}
		// Config: smaller K, tighter level cap.
		if best.Cfg.K > 1 {
			cand := best.Clone()
			cand.Cfg.K = best.Cfg.K - 1
			if fails(cand) {
				best = cand
				improved = true
			}
		}
		if best.Cfg.MaxLevel == 0 || best.Cfg.MaxLevel > 2 {
			cand := best.Clone()
			if cand.Cfg.MaxLevel == 0 {
				cand.Cfg.MaxLevel = best.DS.NumFeatures()
			}
			cand.Cfg.MaxLevel--
			if cand.Cfg.MaxLevel >= 1 && fails(cand) {
				best = cand
				improved = true
			}
		}
	}
	return best
}

func truncateRows(c *Case, keep int) *Case {
	out := c.Clone()
	m := out.DS.NumFeatures()
	out.DS.X0 = &frame.IntMatrix{Rows: keep, Cols: m, Data: out.DS.X0.Data[:keep*m]}
	if out.DS.Y != nil {
		out.DS.Y = out.DS.Y[:keep]
	}
	out.E = out.E[:keep]
	if out.W != nil {
		out.W = out.W[:keep]
	}
	return out
}

func dropFeature(c *Case, j int) *Case {
	out := c.Clone()
	n, m := out.DS.NumRows(), out.DS.NumFeatures()
	x := frame.NewIntMatrix(n, m-1)
	for i := 0; i < n; i++ {
		src := out.DS.X0.Row(i)
		dst := x.Row(i)
		copy(dst, src[:j])
		copy(dst[j:], src[j+1:])
	}
	out.DS.X0 = x
	out.DS.Features = append(out.DS.Features[:j], out.DS.Features[j+1:]...)
	return out
}
