// Package bench is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation (Section 5), each printing the
// same rows/series the paper reports. Experiments run in quick mode
// (reduced scales, suitable for CI) or full mode (the defaults documented in
// DESIGN.md). EXPERIMENTS.md records paper-vs-measured for every entry.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/obs"
)

// Options controls experiment execution.
type Options struct {
	Quick bool  // reduced dataset scales and sweeps
	Seed  int64 // dataset generation seed (0 = 1)

	// Tracer, when non-nil, receives spans from every enumeration an
	// experiment runs, so a harness invocation can dump per-level timing
	// breakdowns next to the printed tables (slbench -span-out).
	Tracer obs.Tracer
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// config stamps the harness observability onto one experiment run's Config.
func (o Options) config(c core.Config) core.Config {
	c.Tracer = o.Tracer
	return c
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Paper string // which table/figure of the paper this regenerates
	Run   func(w io.Writer, opt Options) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments in registration order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment, writing a header per experiment. With
// opt.Tracer set, each experiment additionally gets a bench.<id> root span so
// the span dump groups enumerations by experiment.
func RunAll(w io.Writer, opt Options) error {
	for _, e := range registry {
		fmt.Fprintf(w, "\n=== %s — %s (%s) ===\n", e.ID, e.Title, e.Paper)
		start := time.Now()
		if err := RunOne(w, e, opt); err != nil {
			return err
		}
		fmt.Fprintf(w, "[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// RunOne executes a single experiment under a bench.<id> span.
func RunOne(w io.Writer, e Experiment, opt Options) error {
	sp := obs.Start(opt.Tracer, "bench."+e.ID)
	err := e.Run(w, opt)
	sp.End()
	if err != nil {
		return fmt.Errorf("bench: experiment %s: %w", e.ID, err)
	}
	return nil
}

// table returns a tabwriter for aligned experiment output.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}
