// Package bench is the experiment harness: one registered experiment per
// table and figure of the paper's evaluation (Section 5), each printing the
// same rows/series the paper reports. Experiments run in quick mode
// (reduced scales, suitable for CI) or full mode (the defaults documented in
// DESIGN.md). EXPERIMENTS.md records paper-vs-measured for every entry.
package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// Options controls experiment execution.
type Options struct {
	Quick bool  // reduced dataset scales and sweeps
	Seed  int64 // dataset generation seed (0 = 1)
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Paper string // which table/figure of the paper this regenerates
	Run   func(w io.Writer, opt Options) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments in registration order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment, writing a header per experiment.
func RunAll(w io.Writer, opt Options) error {
	for _, e := range registry {
		fmt.Fprintf(w, "\n=== %s — %s (%s) ===\n", e.ID, e.Title, e.Paper)
		start := time.Now()
		if err := e.Run(w, opt); err != nil {
			return fmt.Errorf("bench: experiment %s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// table returns a tabwriter for aligned experiment output.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}
