package bench

import (
	"math/rand"
	"runtime"
	"testing"

	"sliceline/internal/benchfmt"
	"sliceline/internal/core"
	"sliceline/internal/frame"
	"sliceline/internal/matrix"
)

// This file measures the eval-kernel benchmark suite behind the committed
// BENCH_<date>.json artifact (slbench -bench-out) and the CI regression gate
// (cmd/slbenchdiff). The gated kernel benchmarks run single-threaded
// (matrix.SetMaxWorkers(1)): allocs/op must not depend on the runner's core
// count, and single-threaded ns/op is far less noisy on shared CI machines.
// The ungated run/* entries measure the end-to-end enumeration at ambient
// parallelism and are informational.

// kernelWorkload is the fixed workload of the gated kernel benchmarks: the
// quick-scale dataset of the core package's eval benchmarks (2000 rows, 6
// features, domains up to 5) with its full cross-feature candidate lists.
type kernelWorkload struct {
	ds      *frame.Dataset
	x       *matrix.CSR
	e, w    []float64
	pairs   [][]int // all level-2 cross-feature column pairs
	triples [][]int // all level-3 cross-feature column triples
	packed  *matrix.ColumnBits
}

// newKernelWorkload generates the workload. The seed fixes the dataset, so
// baseline and candidate gate runs measure identical inputs.
func newKernelWorkload(seed int64) (*kernelWorkload, error) {
	const (
		n      = 2000
		m      = 6
		maxDom = 5
	)
	rng := rand.New(rand.NewSource(seed))
	ds := &frame.Dataset{
		Name:     "kernel-bench",
		X0:       frame.NewIntMatrix(n, m),
		Features: make([]frame.Feature, m),
	}
	for j := 0; j < m; j++ {
		dom := 2 + rng.Intn(maxDom-1)
		ds.Features[j] = frame.Feature{Name: string(rune('a' + j)), Domain: dom}
		for i := 0; i < n; i++ {
			ds.X0.Set(i, j, 1+rng.Intn(dom))
		}
	}
	e := make([]float64, n)
	for i := range e {
		if rng.Float64() < 0.3 {
			e[i] = 0
		} else {
			e[i] = rng.Float64()
		}
	}
	enc, err := frame.OneHot(ds)
	if err != nil {
		return nil, err
	}
	wl := &kernelWorkload{ds: ds, x: enc.X, e: e, w: make([]float64, n)}
	for i := range wl.w {
		wl.w[i] = 1 + float64(i%3)
	}
	width := enc.Width()
	for c1 := 0; c1 < width; c1++ {
		for c2 := c1 + 1; c2 < width; c2++ {
			if enc.FeatureOf(c1) == enc.FeatureOf(c2) {
				continue
			}
			wl.pairs = append(wl.pairs, []int{c1, c2})
			for c3 := c2 + 1; c3 < width; c3++ {
				if enc.FeatureOf(c3) == enc.FeatureOf(c1) || enc.FeatureOf(c3) == enc.FeatureOf(c2) {
					continue
				}
				wl.triples = append(wl.triples, []int{c1, c2, c3})
			}
		}
	}
	return wl, nil
}

// kernelCase is one gated benchmark: a name and the op it measures.
type kernelCase struct {
	name string
	cols [][]int
	run  func(wl *kernelWorkload, cols [][]int, ss, se, sm []float64)
}

func csrOp(level int) func(*kernelWorkload, [][]int, []float64, []float64, []float64) {
	return func(wl *kernelWorkload, cols [][]int, ss, se, sm []float64) {
		core.EvalPartition(wl.x, wl.e, cols, level, core.DefaultBlockSize, ss, se, sm)
	}
}

func bitsetOp(weighted bool) func(*kernelWorkload, [][]int, []float64, []float64, []float64) {
	return func(wl *kernelWorkload, cols [][]int, ss, se, sm []float64) {
		w := wl.w
		if !weighted {
			w = nil
		}
		core.EvalBitsetSerial(wl.bits(), wl.e, w, cols, ss, se, sm)
	}
}

// bits lazily packs the workload's one-hot columns (outside the timed loop:
// every benchmark iteration measures the steady-state level loop, packing is
// a once-per-run setup cost).
func (wl *kernelWorkload) bits() *matrix.ColumnBits {
	if wl.packed == nil {
		wl.packed = matrix.PackColumns(wl.x)
	}
	return wl.packed
}

// KernelSuite measures the gated eval-kernel benchmarks and returns them as
// artifact entries. RowsPerSec is dataset rows scanned per second of
// benchmark time (rows × iterations / elapsed).
func KernelSuite(seed int64) ([]benchfmt.Benchmark, error) {
	wl, err := newKernelWorkload(seed)
	if err != nil {
		return nil, err
	}
	cases := []kernelCase{
		{name: "eval/csr/pairs-l2", cols: wl.pairs, run: csrOp(2)},
		{name: "eval/bitset/pairs-l2", cols: wl.pairs, run: bitsetOp(false)},
		{name: "eval/csr/triples-l3", cols: wl.triples, run: csrOp(3)},
		{name: "eval/bitset/triples-l3", cols: wl.triples, run: bitsetOp(false)},
		{name: "eval/bitset/weighted-pairs-l2", cols: wl.pairs, run: bitsetOp(true)},
	}
	// Pin the measured region single-threaded and pre-pack the bitsets so
	// neither worker fan-out nor one-time setup leaks into any timed loop.
	old := matrix.SetMaxWorkers(1)
	defer matrix.SetMaxWorkers(old)
	wl.bits()
	out := make([]benchfmt.Benchmark, 0, len(cases))
	for _, kc := range cases {
		kc := kc
		ss := make([]float64, len(kc.cols))
		se := make([]float64, len(kc.cols))
		sm := make([]float64, len(kc.cols))
		// Best of kernelRepeats runs: min ns/op is the standard
		// noise-robust statistic, and the gate compares two best-of-N
		// measurements, so scheduler hiccups on shared CI runners do not
		// masquerade as kernel regressions. Allocation counts are exact and
		// identical across repeats; the max is kept so a nondeterministic
		// allocation could never hide.
		var best benchfmt.Benchmark
		for rep := 0; rep < kernelRepeats; rep++ {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for j := range ss {
						ss[j], se[j], sm[j] = 0, 0, 0
					}
					kc.run(wl, kc.cols, ss, se, sm)
				}
			})
			ns := float64(r.NsPerOp())
			if rep == 0 || ns < best.NsPerOp {
				best.NsPerOp = ns
				best.RowsPerSec = rowsPerSec(wl.x.Rows(), r)
			}
			if a := r.AllocsPerOp(); a > best.AllocsPerOp {
				best.AllocsPerOp = a
			}
			if by := r.AllocedBytesPerOp(); by > best.BytesPerOp {
				best.BytesPerOp = by
			}
		}
		best.Name = kc.name
		best.Gate = true
		out = append(out, best)
	}
	return out, nil
}

// kernelRepeats is the best-of-N repeat count for gated measurements.
const kernelRepeats = 3

// RunSuite measures the ungated end-to-end enumeration benchmarks: one full
// Run per op through each kernel mode at ambient parallelism. These entries
// track the perf trajectory without failing CI on machine-dependent noise.
func RunSuite(seed int64) ([]benchfmt.Benchmark, error) {
	wl, err := newKernelWorkload(seed)
	if err != nil {
		return nil, err
	}
	ds := wl.ds
	modes := []struct {
		name string
		mode core.BitsetMode
	}{
		{"run/bitset-on", core.BitsetOn},
		{"run/bitset-off", core.BitsetOff},
	}
	out := make([]benchfmt.Benchmark, 0, len(modes))
	for _, mc := range modes {
		cfg := core.Config{K: 4, Sigma: 20, Alpha: 0.95, BitsetEval: mc.mode}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(ds, wl.e, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, benchfmt.Benchmark{
			Name:        mc.name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			RowsPerSec:  rowsPerSec(wl.x.Rows(), r),
		})
	}
	return out, nil
}

func rowsPerSec(rows int, r testing.BenchmarkResult) float64 {
	secs := r.T.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(rows) * float64(r.N) / secs
}

// MachineInfo describes the measuring machine for the artifact header.
func MachineInfo() benchfmt.Machine {
	return benchfmt.Machine{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}
