package bench

import (
	"fmt"
	"io"
	"net"
	"time"

	"sliceline/internal/baseline"
	"sliceline/internal/core"
	"sliceline/internal/datagen"
	"sliceline/internal/dist"
	"sliceline/internal/frame"
)

func init() {
	register(Experiment{ID: "table1", Title: "Dataset characteristics", Paper: "Table 1", Run: runTable1})
	register(Experiment{ID: "fig3a", Title: "Pruning ablation: slices per level", Paper: "Figure 3(a)", Run: runFig3a})
	register(Experiment{ID: "fig3b", Title: "Pruning ablation: runtime", Paper: "Figure 3(b)", Run: runFig3b})
	register(Experiment{ID: "fig4a", Title: "Adult slice enumeration per level", Paper: "Figure 4(a)", Run: runFig4a})
	register(Experiment{ID: "fig4b", Title: "KDD98/USCensus/Covtype enumeration per level", Paper: "Figure 4(b)", Run: runFig4b})
	register(Experiment{ID: "fig5a", Title: "Top-1 score vs alpha", Paper: "Figure 5(a)", Run: runFig5})
	register(Experiment{ID: "fig5b", Title: "Top-1 size vs alpha", Paper: "Figure 5(b)", Run: runFig5})
	register(Experiment{ID: "sigma", Title: "Varying the sigma constraint", Paper: "Section 5.3 (text)", Run: runSigma})
	register(Experiment{ID: "fig6a", Title: "Local end-to-end runtime", Paper: "Figure 6(a)", Run: runFig6a})
	register(Experiment{ID: "fig6b", Title: "Evaluation block size sweep", Paper: "Figure 6(b)", Run: runFig6b})
	register(Experiment{ID: "fig7a", Title: "Scalability with rows", Paper: "Figure 7(a)", Run: runFig7a})
	register(Experiment{ID: "fig7b", Title: "Parallelization strategies", Paper: "Figure 7(b)", Run: runFig7b})
	register(Experiment{ID: "table2", Title: "Criteo enumeration statistics", Paper: "Table 2", Run: runTable2})
	register(Experiment{ID: "mlsys", Title: "Kernel and baseline comparison", Paper: "Section 5.4 (text)", Run: runMLSys})
}

// runTable1 regenerates Table 1: rows, original features, one-hot width and
// task per dataset.
func runTable1(w io.Writer, opt Options) error {
	sc := scaleFor(opt)
	gens := []struct {
		paperN int
		g      *datagen.Generated
	}{
		{32561, adultGen(opt)},
		{581012, datagen.Covtype(sc.covtype, opt.seed())},
		{95412, datagen.KDD98(sc.kdd98, opt.seed())},
		{2458285, datagen.USCensus(sc.uscensus, opt.seed())},
		{397, datagen.Salaries(opt.seed())},
		{192215183, datagen.Criteo(sc.criteo, opt.seed())},
	}
	tw := table(w)
	fmt.Fprintln(tw, "Dataset\tn\tpaper n\tm\tl\tML Alg.")
	for _, it := range gens {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%s\n",
			it.g.DS.Name, it.g.DS.NumRows(), it.paperN,
			it.g.DS.NumFeatures(), it.g.DS.OneHotWidth(), it.g.Task)
	}
	return tw.Flush()
}

// ablationConfigs are the five configurations of Figure 3.
func ablationConfigs() []struct {
	name string
	cfg  core.Config
} {
	base := core.Config{K: 4, Alpha: 0.95, MaxCandidatesPerLevel: 500_000}
	noPar := base
	noPar.DisableParentHandling = true
	noParScore := noPar
	noParScore.DisableScorePruning = true
	noParScoreSize := noParScore
	noParScoreSize.DisableSizePruning = true
	nothing := noParScoreSize
	nothing.DisableDedup = true
	return []struct {
		name string
		cfg  core.Config
	}{
		{"all-pruning", base},
		{"no-parents", noPar},
		{"no-parents,-score", noParScore},
		{"no-parents,-score,-size", noParScoreSize},
		{"no-pruning,-dedup", nothing},
	}
}

func salaries2x2(opt Options) *datagen.Generated {
	return datagen.Salaries(opt.seed()).ReplicateCols(2).ReplicateRows(2)
}

// runFig3a prints enumerated slices per level for the five pruning configs
// on Salaries 2x2 (m = 10 features).
func runFig3a(w io.Writer, opt Options) error {
	g := salaries2x2(opt)
	sigma := (g.DS.NumRows() + 99) / 100
	tw := table(w)
	fmt.Fprint(tw, "config")
	for l := 1; l <= 10; l++ {
		fmt.Fprintf(tw, "\tL%d", l)
	}
	fmt.Fprintln(tw, "\ttruncated")
	for _, c := range ablationConfigs() {
		cfg := c.cfg
		cfg.Sigma = sigma
		res, err := core.Run(g.DS, g.Err, opt.config(cfg))
		if err != nil {
			return err
		}
		counts := make(map[int]int)
		for _, ls := range res.Levels {
			counts[ls.Level] = ls.Candidates
		}
		fmt.Fprint(tw, c.name)
		for l := 1; l <= 10; l++ {
			if v, ok := counts[l]; ok {
				fmt.Fprintf(tw, "\t%d", v)
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintf(tw, "\t%v\n", res.Truncated)
	}
	return tw.Flush()
}

// runFig3b prints end-to-end runtime for the same five configs.
func runFig3b(w io.Writer, opt Options) error {
	g := salaries2x2(opt)
	sigma := (g.DS.NumRows() + 99) / 100
	tw := table(w)
	fmt.Fprintln(tw, "config\telapsed\tevaluated\ttruncated")
	for _, c := range ablationConfigs() {
		cfg := c.cfg
		cfg.Sigma = sigma
		start := time.Now()
		res, err := core.Run(g.DS, g.Err, opt.config(cfg))
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%v\n", c.name, fmtDur(time.Since(start)), res.TotalCandidates(), res.Truncated)
	}
	return tw.Flush()
}

func printLevels(w io.Writer, name string, res *core.Result) error {
	tw := table(w)
	fmt.Fprintf(tw, "%s\tlevel\tcandidates\tvalid\tpruned\telapsed\n", name)
	for _, ls := range res.Levels {
		fmt.Fprintf(tw, "\t%d\t%d\t%d\t%d\t%s\n", ls.Level, ls.Candidates, ls.Valid, ls.Pruned, fmtDur(ls.Elapsed))
	}
	if res.Truncated {
		fmt.Fprintln(tw, "\t(truncated by candidate budget)")
	}
	return tw.Flush()
}

// runFig4a: Adult slice enumeration with unbounded level.
func runFig4a(w io.Writer, opt Options) error {
	g := adultGen(opt)
	res, err := core.Run(g.DS, g.Err, opt.config(core.Config{Alpha: 0.95}))
	if err != nil {
		return err
	}
	return printLevels(w, "Adult", res)
}

// runFig4b: the correlated/wide datasets with level caps as in the paper
// (⌈L⌉ = 3 for USCensus, 4 for Covtype; KDD98 capped at 2 on this
// single-core setup — see EXPERIMENTS.md).
func runFig4b(w io.Writer, opt Options) error {
	sc := scaleFor(opt)
	covL := 4
	if opt.Quick {
		covL = 3
	}
	runs := []struct {
		g   *datagen.Generated
		cap int
	}{
		{datagen.KDD98(sc.kdd98, opt.seed()), 2},
		{datagen.USCensus(sc.uscensus, opt.seed()), 3},
		{datagen.Covtype(sc.covtype, opt.seed()), covL},
	}
	for _, r := range runs {
		res, err := core.Run(r.g.DS, r.g.Err, opt.config(core.Config{Alpha: 0.95, MaxLevel: r.cap}))
		if err != nil {
			return err
		}
		if err := printLevels(w, r.g.DS.Name, res); err != nil {
			return err
		}
	}
	return nil
}

// runFig5: top-1 score and size across the alpha sweep.
func runFig5(w io.Writer, opt Options) error {
	alphas := []float64{0.36, 0.68, 0.84, 0.92, 0.96, 0.98, 0.99}
	sc := scaleFor(opt)
	gens := []*datagen.Generated{
		adultGen(opt),
		datagen.USCensus(sc.uscensus, opt.seed()),
	}
	if !opt.Quick {
		gens = append(gens, datagen.Covtype(sc.covtype, opt.seed()))
	}
	tw := table(w)
	fmt.Fprint(tw, "dataset")
	for _, a := range alphas {
		fmt.Fprintf(tw, "\ta=%.2f", a)
	}
	fmt.Fprintln(tw)
	for _, g := range gens {
		enc, err := frame.OneHot(g.DS)
		if err != nil {
			return err
		}
		scoreRow := fmt.Sprintf("%s score", g.DS.Name)
		sizeRow := fmt.Sprintf("%s size", g.DS.Name)
		for _, a := range alphas {
			res, err := core.RunEncoded(enc, g.DS.Features, g.Err, opt.config(core.Config{
				K: 10, Alpha: a, MaxLevel: 3,
			}))
			if err != nil {
				return err
			}
			if len(res.TopK) > 0 {
				scoreRow += fmt.Sprintf("\t%.3f", res.TopK[0].Score)
				sizeRow += fmt.Sprintf("\t%d", res.TopK[0].Size)
			} else {
				scoreRow += "\t-"
				sizeRow += "\t-"
			}
		}
		fmt.Fprintln(tw, scoreRow)
		fmt.Fprintln(tw, sizeRow)
	}
	return tw.Flush()
}

// runSigma: the minimum-support sweep of Section 5.3.
func runSigma(w io.Writer, opt Options) error {
	fracs := []float64{1e-4, 1e-3, 1e-2, 1e-1}
	if opt.Quick {
		fracs = []float64{1e-3, 1e-2, 1e-1}
	}
	gens := []*datagen.Generated{adultGen(opt)}
	if !opt.Quick {
		gens = append(gens, datagen.USCensus(scaleFor(opt).uscensus, opt.seed()))
	}
	tw := table(w)
	fmt.Fprintln(tw, "dataset\tsigma/n\tsigma\ttop-1 score\tevaluated\telapsed\ttruncated")
	for _, g := range gens {
		enc, err := frame.OneHot(g.DS)
		if err != nil {
			return err
		}
		n := g.DS.NumRows()
		for _, f := range fracs {
			sigma := int(f * float64(n))
			if sigma < 1 {
				sigma = 1
			}
			start := time.Now()
			res, err := core.RunEncoded(enc, g.DS.Features, g.Err, opt.config(core.Config{
				K: 10, Alpha: 0.95, Sigma: sigma, MaxLevel: 3,
			}))
			if err != nil {
				return err
			}
			top1 := "-"
			if len(res.TopK) > 0 {
				top1 = fmt.Sprintf("%.3f", res.TopK[0].Score)
			}
			fmt.Fprintf(tw, "%s\t%.0e\t%d\t%s\t%d\t%s\t%v\n",
				g.DS.Name, f, sigma, top1, res.TotalCandidates(), fmtDur(time.Since(start)), res.Truncated)
		}
	}
	return tw.Flush()
}

// runFig6a: end-to-end local runtime per dataset (including one-hot
// encoding, as the paper measures), with ⌈L⌉ = 3 and defaults.
func runFig6a(w io.Writer, opt Options) error {
	sc := scaleFor(opt)
	runs := []struct {
		g   *datagen.Generated
		cap int
	}{
		{salaries2x2(opt), 3},
		{adultGen(opt), 3},
		{datagen.Covtype(sc.covtype, opt.seed()), 3},
		{datagen.KDD98(sc.kdd98, opt.seed()), 2},
		{datagen.USCensus(sc.uscensus, opt.seed()), 3},
		{datagen.Criteo(sc.criteo, opt.seed()), 3},
	}
	tw := table(w)
	fmt.Fprintln(tw, "dataset\tn\tl\tlevels\telapsed\ttop-1 score\tevaluated")
	for _, r := range runs {
		start := time.Now()
		res, err := core.Run(r.g.DS, r.g.Err, opt.config(core.Config{Alpha: 0.95, MaxLevel: r.cap}))
		if err != nil {
			return err
		}
		top1 := "-"
		if len(res.TopK) > 0 {
			top1 = fmt.Sprintf("%.3f", res.TopK[0].Score)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%s\t%d\n",
			r.g.DS.Name, r.g.DS.NumRows(), r.g.DS.OneHotWidth(),
			len(res.Levels), fmtDur(time.Since(start)), top1, res.TotalCandidates())
	}
	return tw.Flush()
}

// runFig6b: hybrid evaluation block size sweep on Adult and USCensus.
func runFig6b(w io.Writer, opt Options) error {
	blocks := []int{1, 4, 16, 64, 256, 1024}
	gens := []*datagen.Generated{adultGen(opt)}
	if !opt.Quick {
		gens = append(gens, datagen.USCensus(scaleFor(opt).uscensus, opt.seed()))
	}
	tw := table(w)
	fmt.Fprint(tw, "dataset")
	for _, b := range blocks {
		fmt.Fprintf(tw, "\tb=%d", b)
	}
	fmt.Fprintln(tw, "\tauto")
	for _, g := range gens {
		enc, err := frame.OneHot(g.DS)
		if err != nil {
			return err
		}
		fmt.Fprint(tw, g.DS.Name)
		for _, b := range append(blocks, 0) {
			start := time.Now()
			if _, err := core.RunEncoded(enc, g.DS.Features, g.Err, opt.config(core.Config{
				Alpha: 0.95, MaxLevel: 3, BlockSize: b,
			})); err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", fmtDur(time.Since(start)))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// runFig7a: scalability with row replication of USCensus (relative support
// preserves enumeration characteristics), against ideal scaling. The paper
// fixes b=4 here; on a single core that multiplies dataset scans, so the
// automatic block size is used instead (the subject of the experiment is
// row scaling, not block size).
func runFig7a(w io.Writer, opt Options) error {
	factors := []int{1, 2, 4, 8}
	if opt.Quick {
		factors = []int{1, 2, 4}
	}
	base := datagen.USCensus(scaleFor(opt).uscensus, opt.seed())
	tw := table(w)
	fmt.Fprintln(tw, "replication\trows\telapsed\tideal\tL2 slices\tL3 slices")
	var baseElapsed time.Duration
	for _, f := range factors {
		g := base.ReplicateRows(f)
		start := time.Now()
		res, err := core.Run(g.DS, g.Err, opt.config(core.Config{Alpha: 0.95, MaxLevel: 3}))
		if err != nil {
			return err
		}
		elapsed := time.Since(start)
		if f == 1 {
			baseElapsed = elapsed
		}
		l2, l3 := 0, 0
		for _, ls := range res.Levels {
			if ls.Level == 2 {
				l2 = ls.Candidates
			}
			if ls.Level == 3 {
				l3 = ls.Candidates
			}
		}
		fmt.Fprintf(tw, "x%d\t%d\t%s\t%s\t%d\t%d\n",
			f, g.DS.NumRows(), fmtDur(elapsed), fmtDur(baseElapsed*time.Duration(f)), l2, l3)
	}
	return tw.Flush()
}

// runFig7b: parallelization strategies — MT-Ops, MT-PFor, and Dist-PFor over
// TCP workers with gob serialization (a simulated scale-out cluster on
// localhost).
func runFig7b(w io.Writer, opt Options) error {
	g := datagen.USCensus(scaleFor(opt).uscensus, opt.seed())
	enc, err := frame.OneHot(g.DS)
	if err != nil {
		return err
	}
	cfg := core.Config{Alpha: 0.95, MaxLevel: 3}

	tw := table(w)
	fmt.Fprintln(tw, "strategy\tworkers\telapsed\ttop-1 score")
	report := func(name string, workers int, ev core.ExternalEvaluator) error {
		c := cfg
		c.Evaluator = ev
		start := time.Now()
		res, err := core.RunEncoded(enc, g.DS.Features, g.Err, opt.config(c))
		if err != nil {
			return err
		}
		top1 := "-"
		if len(res.TopK) > 0 {
			top1 = fmt.Sprintf("%.3f", res.TopK[0].Score)
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%s\n", name, workers, fmtDur(time.Since(start)), top1)
		return nil
	}

	// All strategies share one block size so the comparison isolates the
	// orchestration (barriers, broadcast, serialization), not scan sharing.
	const b = 256
	mtOps, err := dist.NewLocal(dist.MTOps, b)
	if err != nil {
		return err
	}
	if err := report("MT-Ops", 1, mtOps); err != nil {
		return err
	}
	mtPFor, err := dist.NewLocal(dist.MTPFor, b)
	if err != nil {
		return err
	}
	if err := report("MT-PFor", 1, mtPFor); err != nil {
		return err
	}
	for _, nw := range []int{2, 4} {
		cluster, shutdown, err := localTCPCluster(nw, b)
		if err != nil {
			return err
		}
		if err := report("Dist-PFor", nw, cluster); err != nil {
			shutdown()
			return err
		}
		cluster.Close()
		shutdown()
	}
	return tw.Flush()
}

// localTCPCluster spins up n worker servers on loopback TCP and returns a
// connected cluster plus a shutdown function.
func localTCPCluster(n, blockSize int) (*dist.Cluster, func(), error) {
	listeners := make([]net.Listener, 0, n)
	workers := make([]dist.Worker, 0, n)
	shutdown := func() {
		for _, l := range listeners {
			l.Close()
		}
	}
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		listeners = append(listeners, lis)
		go dist.Serve(lis) //nolint:errcheck // lifetime bound to listener
		wk, err := dist.Dial(lis.Addr().String())
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		workers = append(workers, wk)
	}
	cluster, err := dist.NewCluster(workers, blockSize)
	if err != nil {
		shutdown()
		return nil, nil, err
	}
	return cluster, shutdown, nil
}

// runTable2: Criteo enumeration statistics through lattice level 6.
func runTable2(w io.Writer, opt Options) error {
	g := datagen.Criteo(scaleFor(opt).criteo, opt.seed())
	res, err := core.Run(g.DS, g.Err, opt.config(core.Config{Alpha: 0.95, MaxLevel: 6}))
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprint(tw, "Lattice Level:")
	for _, ls := range res.Levels {
		fmt.Fprintf(tw, "\t%d", ls.Level)
	}
	fmt.Fprint(tw, "\nCandidates:")
	for _, ls := range res.Levels {
		fmt.Fprintf(tw, "\t%d", ls.Candidates)
	}
	fmt.Fprint(tw, "\nValid Slices:")
	for _, ls := range res.Levels {
		fmt.Fprintf(tw, "\t%d", ls.Valid)
	}
	fmt.Fprint(tw, "\nElapsed Time:")
	for _, ls := range res.Levels {
		fmt.Fprintf(tw, "\t%s", fmtDur(ls.Elapsed))
	}
	fmt.Fprintln(tw)
	return tw.Flush()
}

// runMLSys: the Section 5.4 comparison — fused sparse kernel vs dense
// materialized intermediates (limited-sparsity ML system) vs the
// SliceFinder-style heuristic lattice search.
func runMLSys(w io.Writer, opt Options) error {
	g := adultGen(opt)
	enc, err := frame.OneHot(g.DS)
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "system\telapsed\ttop result")

	start := time.Now()
	res, err := core.RunEncoded(enc, g.DS.Features, g.Err, opt.config(core.Config{Alpha: 0.95, MaxLevel: 3}))
	if err != nil {
		return err
	}
	fused := time.Since(start)
	top := "-"
	if len(res.TopK) > 0 {
		top = fmt.Sprintf("score %.3f size %d", res.TopK[0].Score, res.TopK[0].Size)
	}
	fmt.Fprintf(tw, "SliceLine (fused sparse)\t%s\t%s\n", fmtDur(fused), top)

	start = time.Now()
	resD, err := core.RunEncoded(enc, g.DS.Features, g.Err, opt.config(core.Config{Alpha: 0.95, MaxLevel: 3, DenseEval: true}))
	if err != nil {
		return err
	}
	topD := "-"
	if len(resD.TopK) > 0 {
		topD = fmt.Sprintf("score %.3f size %d", resD.TopK[0].Score, resD.TopK[0].Size)
	}
	fmt.Fprintf(tw, "SliceLine (dense intermediates)\t%s\t%s\n", fmtDur(time.Since(start)), topD)

	start = time.Now()
	sf, err := baseline.Run(g.DS, g.Err, baseline.Config{K: 4, MaxLevel: 3})
	if err != nil {
		return err
	}
	topSF := "-"
	if len(sf.Slices) > 0 {
		topSF = fmt.Sprintf("effect %.3f size %d", sf.Slices[0].EffectSize, sf.Slices[0].Size)
	}
	fmt.Fprintf(tw, "SliceFinder (heuristic)\t%s\t%s\n", fmtDur(time.Since(start)), topSF)

	start = time.Now()
	tree, err := baseline.TrainErrorTree(g.DS, g.Err, baseline.TreeConfig{MaxDepth: 3})
	if err != nil {
		return err
	}
	topDT := "-"
	if worst := tree.WorstLeaves(1); len(worst) > 0 {
		topDT = fmt.Sprintf("mean err %.3f size %d", worst[0].MeanError, worst[0].Size)
	}
	fmt.Fprintf(tw, "Decision tree (non-overlapping)\t%s\t%s\n", fmtDur(time.Since(start)), topDT)
	return tw.Flush()
}
