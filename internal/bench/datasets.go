package bench

import (
	"sliceline/internal/datagen"
)

// Dataset scales per mode. Full mode uses the DESIGN.md defaults; quick mode
// shrinks rows so the whole suite runs in a couple of minutes on one core.
type scales struct {
	adult, covtype, kdd98, uscensus, criteo int
}

func scaleFor(opt Options) scales {
	if opt.Quick {
		return scales{adult: 8000, covtype: 6000, kdd98: 1500, uscensus: 6000, criteo: 30000}
	}
	return scales{
		adult:    datagen.AdultRows,
		covtype:  datagen.CovtypeRows,
		kdd98:    datagen.KDD98Rows,
		uscensus: datagen.USCensusRows,
		criteo:   datagen.CriteoRows,
	}
}

// adultGen generates the Adult stand-in, truncated to n rows in quick mode.
func adultGen(opt Options) *datagen.Generated {
	g := datagen.Adult(opt.seed())
	sc := scaleFor(opt)
	if sc.adult < g.DS.NumRows() {
		g = truncate(g, sc.adult)
	}
	return g
}

// truncate keeps the first n rows of a generated dataset.
func truncate(g *datagen.Generated, n int) *datagen.Generated {
	train, _ := g.DS.Split(n)
	train.Name = g.DS.Name
	return &datagen.Generated{DS: train, Err: g.Err[:n], Task: g.Task}
}
