package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig3a", "fig3b", "fig4a", "fig4b", "fig5a", "fig5b",
		"sigma", "fig6a", "fig6b", "fig7a", "fig7b", "table2", "mlsys",
	}
	got := map[string]bool{}
	for _, e := range Experiments() {
		got[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely registered", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(got), len(want))
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("table1"); !ok {
		t.Error("Lookup(table1) failed")
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Error("Lookup(nonsense) unexpectedly succeeded")
	}
}

func TestIDsSorted(t *testing.T) {
	ids := IDs()
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("IDs not strictly sorted: %v", ids)
		}
	}
}

func TestTable1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation is slow in -short mode")
	}
	var buf bytes.Buffer
	e, _ := Lookup("table1")
	if err := e.Run(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"Adult", "Covtype", "KDD98", "USCensus", "Salaries", "CriteoD21"} {
		if !strings.Contains(out, name) {
			t.Errorf("table1 output missing %s:\n%s", name, out)
		}
	}
}

func TestMLSysQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment execution is slow in -short mode")
	}
	var buf bytes.Buffer
	e, _ := Lookup("mlsys")
	if err := e.Run(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, s := range []string{"fused sparse", "dense intermediates", "SliceFinder"} {
		if !strings.Contains(out, s) {
			t.Errorf("mlsys output missing %q:\n%s", s, out)
		}
	}
}

func TestFig4aQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment execution is slow in -short mode")
	}
	var buf bytes.Buffer
	e, _ := Lookup("fig4a")
	if err := e.Run(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "candidates") {
		t.Errorf("fig4a output lacks level table:\n%s", buf.String())
	}
}

func TestScaleForModes(t *testing.T) {
	q := scaleFor(Options{Quick: true})
	f := scaleFor(Options{Quick: false})
	if q.adult >= f.adult || q.uscensus >= f.uscensus || q.criteo >= f.criteo {
		t.Errorf("quick scales %+v not smaller than full %+v", q, f)
	}
}

func TestSeedDefault(t *testing.T) {
	if (Options{}).seed() != 1 {
		t.Error("zero seed should default to 1")
	}
	if (Options{Seed: 9}).seed() != 9 {
		t.Error("explicit seed not honored")
	}
}
