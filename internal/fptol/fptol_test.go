package fptol

import (
	"math"
	"testing"
)

func TestULPDiff(t *testing.T) {
	cases := []struct {
		a, b float64
		want uint64
	}{
		{1, 1, 0},
		{0, math.Copysign(0, -1), 0},
		{1, math.Nextafter(1, 2), 1},
		{1, math.Nextafter(math.Nextafter(1, 2), 2), 2},
		{-1, math.Nextafter(-1, -2), 1},
		// Across zero: smallest positive and smallest negative subnormal
		// are two ULPs apart (one step each to +0/-0, which coincide).
		{math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, 2},
		{math.Inf(1), math.Inf(1), 0},
	}
	for _, c := range cases {
		if got := ULPDiff(c.a, c.b); got != c.want {
			t.Errorf("ULPDiff(%g, %g) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := ULPDiff(c.b, c.a); got != c.want {
			t.Errorf("ULPDiff(%g, %g) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
	if got := ULPDiff(math.NaN(), 1); got != math.MaxUint64 {
		t.Errorf("ULPDiff(NaN, 1) = %d, want MaxUint64", got)
	}
	if got := ULPDiff(math.Inf(1), math.Inf(-1)); got != math.MaxUint64 {
		t.Errorf("ULPDiff(+Inf, -Inf) = %d, want MaxUint64", got)
	}
}

func TestClose(t *testing.T) {
	tol := Tol{ULPs: 4, Abs: 1e-12}
	if !tol.Close(1, math.Nextafter(1, 2)) {
		t.Error("1 ULP apart should be close")
	}
	wide := 1.0
	for i := 0; i < 8; i++ {
		wide = math.Nextafter(wide, 2)
	}
	if (Tol{ULPs: 4}).Close(1, wide) {
		t.Error("8 ULPs apart should not be close under a 4-ULP tolerance")
	}
	if !tol.Close(1e-13, -1e-13) {
		t.Error("values within the absolute floor should be close")
	}
	if !Exact.Close(3.25, 3.25) {
		t.Error("identical values must be Exact-close")
	}
	if Exact.Close(1, math.Nextafter(1, 2)) {
		t.Error("Exact must reject any difference")
	}
}

func TestCloseSlices(t *testing.T) {
	tol := Tol{ULPs: 1}
	if !tol.CloseSlices([]float64{1, 2}, []float64{1, math.Nextafter(2, 3)}) {
		t.Error("element-wise close slices rejected")
	}
	if tol.CloseSlices([]float64{1}, []float64{1, 1}) {
		t.Error("length mismatch must not be close")
	}
	if tol.CloseSlices([]float64{1, 2}, []float64{1, 2.5}) {
		t.Error("far elements must not be close")
	}
}

// TestReorderedSummationWithinDefaultTol demonstrates the bound DefaultTol is
// sized for: summing the same non-negative values in different orders and
// groupings stays within tolerance.
func TestReorderedSummationWithinDefaultTol(t *testing.T) {
	n := 100000
	vals := make([]float64, n)
	x := 0.5
	for i := range vals {
		// Deterministic pseudo-random values in (0, 1).
		x = math.Mod(x*997.13+0.7331, 1)
		vals[i] = x
	}
	fwd := 0.0
	for _, v := range vals {
		fwd += v
	}
	rev := 0.0
	for i := n - 1; i >= 0; i-- {
		rev += vals[i]
	}
	// Pairwise/blocked grouping, like per-partition partials.
	blocked := 0.0
	for lo := 0; lo < n; lo += 1000 {
		part := 0.0
		for i := lo; i < lo+1000; i++ {
			part += vals[i]
		}
		blocked += part
	}
	if !DefaultTol.Close(fwd, rev) || !DefaultTol.Close(fwd, blocked) {
		t.Errorf("reordered sums outside DefaultTol: fwd=%v rev=%v blocked=%v", fwd, rev, blocked)
	}
}
