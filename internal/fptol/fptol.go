// Package fptol is the repository's single source of truth for comparing
// floating-point slice statistics across SliceLine execution plans.
//
// The enumeration logic (candidate generation, pruning, top-K maintenance)
// is identical across every backend, so slice sizes (sums of 1.0, exact in
// float64 far beyond any realistic row count) and maximum tuple errors
// (max-reductions, order-independent) must match bit-for-bit. Total slice
// errors, however, are float64 summations whose parenthesization differs
// between plans: the serial blocked kernel adds matching rows in row order,
// the row-parallel kernel adds per-chunk partial sums, the dense kernel
// reduces indicator columns, and the distributed backend adds per-partition
// partials. IEEE-754 addition is not associative, so these plans can
// legitimately differ in the last units-in-the-last-place (ULPs), and every
// derived score inherits that wobble.
//
// The principled bound: summing n non-negative terms in any order yields a
// relative error of at most (n-1)·eps (the condition number of a
// non-negative sum is 1), i.e. at most about n ULPs. Scores apply a further
// subtraction of the size penalty, which can amplify the relative error when
// the two terms nearly cancel; DefaultTol therefore combines a ULP bound
// sized for the row counts used in differential tests with a small absolute
// floor for scores near zero. Tests must use these helpers instead of
// ad-hoc epsilons so the tolerance story stays in one place.
package fptol

import "math"

// Tol is a two-sided tolerance: values are considered equal when they are
// within ULPs units-in-the-last-place of each other, or when their absolute
// difference is below Abs (covering near-zero values, whose ULP spacing is
// tiny and whose sign may flip under cancellation).
type Tol struct {
	ULPs uint64
	Abs  float64
}

// DefaultTol covers reordered non-negative summations of up to ~10^5 terms
// (n·eps ≈ 2^17·2^-52) plus score-level cancellation: 1<<18 ULPs is a
// relative error of about 6e-11, and the absolute floor handles scores that
// cancel toward zero. It is deliberately orders of magnitude tighter than
// the 1e-9 absolute epsilons it replaces for typical O(1) score magnitudes.
var DefaultTol = Tol{ULPs: 1 << 18, Abs: 1e-10}

// Exact demands bit-identical values (modulo +0/-0).
var Exact = Tol{ULPs: 0, Abs: 0}

// ULPDiff returns the distance between a and b in units-in-the-last-place:
// the number of representable float64 values strictly between them, plus one
// if they differ. NaNs and opposite-infinity pairs return MaxUint64.
func ULPDiff(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	if a == b {
		return 0 // also covers +0 == -0 and equal infinities
	}
	ia, ib := orderedBits(a), orderedBits(b)
	if ia > ib {
		ia, ib = ib, ia
	}
	d := uint64(ib - ia)
	if int64(d) < 0 { // crossed more than half the number line
		return math.MaxUint64
	}
	return d
}

// orderedBits maps a float64 onto a monotone int64 scale, so that ULP
// distance is plain integer subtraction even across the zero crossing.
func orderedBits(f float64) int64 {
	b := int64(math.Float64bits(f))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}

// Close reports whether a and b are equal within the tolerance.
func (t Tol) Close(a, b float64) bool {
	if a == b {
		return true
	}
	if math.Abs(a-b) <= t.Abs {
		return true
	}
	return ULPDiff(a, b) <= t.ULPs
}

// CloseSlices reports whether two equal-length slices are element-wise Close.
// Length mismatch is never close.
func (t Tol) CloseSlices(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !t.Close(a[i], b[i]) {
			return false
		}
	}
	return true
}
