package server

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// levelEvent is the SSE payload for one completed lattice level.
type levelEvent struct {
	Level      int   `json:"level"`
	Candidates int   `json:"candidates"`
	Valid      int   `json:"valid"`
	Pruned     int   `json:"pruned"`
	ElapsedMS  int64 `json:"elapsed_ms"`
}

// terminalEvent is the SSE payload of the final "status" event.
type terminalEvent struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// handleJobEvents implements GET /v1/jobs/{id}/events: a Server-Sent Events
// stream with one "level" event per completed lattice level (history first,
// then live), one "result" event per monitor refresh (the maintained top-K
// for each new dataset generation), one "snapshot" event per completed level
// of an anytime job (the improving top-K plus certified optimality gap), and
// a final "status" event carrying the terminal state. The handler returns when the job reaches a terminal state
// or the client disconnects; a finished job still yields its full history, so
// the stream is safe to open at any point in the job's life. Monitor streams
// stay open until the monitor is cancelled.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no such job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("server: response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	from := 0
	for {
		entries, terminal, errMsg, wait := j.events.next(from)
		for i, e := range entries {
			switch e.kind {
			case "level":
				ls := e.level
				writeSSE(w, "level", from+i, levelEvent{
					Level:      ls.Level,
					Candidates: ls.Candidates,
					Valid:      ls.Valid,
					Pruned:     ls.Pruned,
					ElapsedMS:  ls.Elapsed.Milliseconds(),
				})
			case "result":
				writeSSE(w, "result", from+i, e.result)
			case "snapshot":
				writeSSE(w, "snapshot", from+i, e.snapshot)
			}
		}
		from += len(entries)
		if len(entries) > 0 {
			flusher.Flush()
		}
		if terminal != "" {
			writeSSE(w, "status", from, terminalEvent{Status: terminal, Error: errMsg})
			flusher.Flush()
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one event frame (id, event, data lines).
func writeSSE(w http.ResponseWriter, event string, id int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data)
}
