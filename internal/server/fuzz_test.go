package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// FuzzDecodeJobSpec drives the strict job-spec decoder with arbitrary
// request bodies. Properties: it never panics; whatever it accepts survives
// a marshal/decode round trip unchanged (so an admitted spec is exactly what
// the server will journal and execute); every rejection wraps ErrBadJobSpec;
// and an accepted spec always re-validates.
func FuzzDecodeJobSpec(f *testing.F) {
	f.Add(`{"dataset":"ds_0011223344556677"}`)
	f.Add(`{"dataset":"ds_0011223344556677","config":{"k":4,"sigma":3,"alpha":0.9}}`)
	f.Add(`{"dataset":"d","config":{"max_level":2,"block_size":16,"priority":true,"dense":true},"evaluator":"dist","timeout_ms":5000}`)
	f.Add(`{"dataset":"d","evaluator":"local"}`)
	f.Add(`{"dataset":"d","evaluator":"quantum"}`)
	f.Add(`{"dataset":""}`)
	f.Add(`{"dataset":"d","timeout_ms":-1}`)
	f.Add(`{"dataset":"d","unknown_field":1}`)
	f.Add(`{"dataset":"d"} {"second":"doc"}`)
	f.Add(`{"dataset":"d","config":{"alpha":1e999}}`)
	f.Add(`{"spec_version":1,"dataset":"d","mode":"monitor"}`)
	f.Add(`{"spec_version":1,"dataset":"d","window":{"last_rows":100}}`)
	f.Add(`{"spec_version":2,"dataset":"d","mode":"anytime","budget_ms":500}`)
	f.Add(`{"spec_version":2,"dataset":"d","mode":"anytime"}`)
	f.Add(`{"spec_version":2,"dataset":"d","mode":"windowed","window":{"last_ms":60000}}`)
	f.Add(`{"spec_version":2,"dataset":"d","mode":"diff","baseline":"ds_base"}`)
	f.Add(`{"spec_version":2,"dataset":"d","mode":"diff"}`)
	f.Add(`{"spec_version":2,"dataset":"d","mode":"diff","baseline":"b","evaluator":"dist"}`)
	f.Add(`{"spec_version":2,"dataset":"d","baseline":"b"}`)
	f.Add(`{"spec_version":2,"dataset":"d","budget_ms":-5}`)
	f.Add(`{"spec_version":2,"dataset":"d","config":{"significance":0.01},"mode":"anytime","budget_ms":100}`)
	f.Add(`{"spec_version":2,"dataset":"d","config":{"significance":1.5}}`)
	f.Add(`[]`)
	f.Add(``)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, body string) {
		spec, err := DecodeJobSpec(strings.NewReader(body))
		if err != nil {
			if !errors.Is(err, ErrBadJobSpec) {
				t.Fatalf("rejection does not wrap ErrBadJobSpec: %v", err)
			}
			return
		}
		if err := spec.validate(); err != nil {
			t.Fatalf("accepted spec fails re-validation: %v", err)
		}
		// Round trip: the accepted spec re-encodes to a body the decoder
		// accepts and maps to the same spec.
		enc, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshalling accepted spec: %v", err)
		}
		again, err := DecodeJobSpec(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("decoder rejects its own accepted spec %s: %v", enc, err)
		}
		// Compare the re-marshaled forms: JobSpec holds a *WindowSpec, so
		// direct struct equality would compare pointers, not contents.
		enc2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("marshalling round-tripped spec: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed the spec:\n was: %s\n now: %s", enc, enc2)
		}
	})
}
