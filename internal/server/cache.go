package server

import (
	"sync"

	"sliceline/internal/core"
)

// cacheKey identifies a result: the dataset's content address, the
// result-affecting configuration signature, and the lattice depth cap.
// MaxLevel is outside core.ConfigSignature (checkpoint resume legitimately
// extends it) but two runs with different depth caps return different
// Results, so the cache keys on it explicitly; likewise the job mode, the
// baseline dataset signature (diff jobs) and the resolved significance level
// (it flips per-slice Significant markers) are outside the core signature
// but result-affecting, so they key explicitly too. Execution-plan fields
// (BlockSize, evaluator, DenseEval, PriorityEnumeration-chunking) are
// equivalent by design: a cached local result satisfies an identical
// distributed submission, with the documented cross-plan last-ULP caveat on
// summed statistics. Anytime results never enter the cache at all — they
// depend on wall-clock budgets.
type cacheKey struct {
	dataSig  uint64
	cfgSig   uint64
	maxLevel int
	mode     string
	baseSig  uint64  // baseline dataset signature; 0 outside diff mode
	sigLevel float64 // resolved FDR level behind Slice.Significant
}

// cacheEntry pairs the decoded result with its rendered JSON so repeated
// fetches never re-marshal.
type cacheEntry struct {
	res  *core.Result
	json []byte
}

// resultCache maps (dataset, config) to completed results. Entries are
// immutable; a dataset's results are only as large as its top-K plus level
// stats, so no eviction is implemented — the registry, not the cache, owns
// the big allocations.
type resultCache struct {
	mu sync.RWMutex
	m  map[cacheKey]cacheEntry
}

func newResultCache() *resultCache {
	return &resultCache{m: make(map[cacheKey]cacheEntry)}
}

func (c *resultCache) get(k cacheKey) (cacheEntry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.m[k]
	return e, ok
}

func (c *resultCache) put(k cacheKey, res *core.Result, js []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.m[k]; !ok {
		c.m[k] = cacheEntry{res: res, json: js}
	}
}

func (c *resultCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
