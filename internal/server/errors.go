package server

import "net/http"

// The /v1 surface reports every failure with one JSON envelope:
//
//	{"error": {"code": "not_found", "message": "server: no such dataset"}}
//
// Codes are stable, machine-matchable strings (the HTTP status carries the
// coarse class, the code the specific condition); messages are human-readable
// and may change between releases. See API.md, "Errors".

// Error codes used across the /v1 handlers.
const (
	codeBadRequest     = "bad_request"     // malformed body, params, or CSV
	codeBadJobSpec     = "bad_job_spec"    // job spec failed validation
	codeNotFound       = "not_found"       // unknown dataset or job id
	codeNotAppendable  = "not_appendable"  // dataset was not registered in err-column mode
	codeQueueFull      = "queue_full"      // admission control rejected the job
	codeDraining       = "draining"        // server is shutting down
	codeMonitorLimit   = "monitor_limit"   // resident monitor cap reached
	codeDeprecatedForm = "deprecated_form" // removed legacy query-param registration
	codeInternal       = "internal"        // unexpected server-side failure
)

// apiErrorBody is the inner object of the error envelope.
type apiErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// apiError is the uniform JSON error envelope of every /v1 error response.
type apiError struct {
	Error apiErrorBody `json:"error"`
}

// defaultCode maps an HTTP status to the envelope code used when the call
// site has no more specific one.
func defaultCode(status int) string {
	switch status {
	case http.StatusNotFound:
		return codeNotFound
	case http.StatusTooManyRequests:
		return codeQueueFull
	case http.StatusServiceUnavailable:
		return codeDraining
	case http.StatusBadRequest:
		return codeBadRequest
	default:
		return codeInternal
	}
}

// writeError emits the envelope with the status's default code.
func writeError(w http.ResponseWriter, status int, err error) {
	writeErrorCode(w, status, defaultCode(status), err)
}

// writeErrorCode emits the envelope with an explicit code.
func writeErrorCode(w http.ResponseWriter, status int, code string, err error) {
	writeJSON(w, status, apiError{Error: apiErrorBody{Code: code, Message: err.Error()}})
}
