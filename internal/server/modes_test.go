package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"sliceline/internal/core"
)

// modeCSV renders a deterministic dataset whose err column is supplied per
// row, so two registrations can share rows while differing only in errors
// (the diff-mode setup).
func modeCSV(rows int, errFor func(i int) float64) string {
	var b strings.Builder
	b.WriteString("dev,os,region,err\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&b, "d%d,o%d,r%d,%g\n", i%4, i%3, i%2, errFor(i))
	}
	return b.String()
}

// sseEvent is one raw SSE frame captured from a job's event stream.
type sseEvent struct {
	kind string
	data string
}

// drainEvents opens a job's SSE stream and returns every frame up to and
// including the terminal "status" event. Safe on finished jobs: the log
// replays its full history to late subscribers.
func drainEvents(t *testing.T, ts *httptest.Server, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	var (
		out   []sseEvent
		event string
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			out = append(out, sseEvent{kind: event, data: strings.TrimPrefix(line, "data: ")})
			if event == "status" {
				return out
			}
		}
	}
	t.Fatalf("event stream ended without a status frame (%d events)", len(out))
	return nil
}

func decodeResult(t *testing.T, raw json.RawMessage) core.Result {
	t.Helper()
	var res core.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding result: %v (%s)", err, raw)
	}
	return res
}

// TestAnytimeJobEndToEnd: a generously-budgeted anytime job must return the
// batch run's exact top-K with gap 0, stream monotone snapshot events, and
// stay out of the result cache.
func TestAnytimeJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2, QueueDepth: 8})
	info, code := registerCSV(t, ts, testCSV(48), "err=err&name=anytime")
	if code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}

	cfg := JobConfig{K: 3, Sigma: 2}
	batch, st, body := postJob(t, ts, JobSpec{Dataset: info.ID, Config: cfg})
	if st != http.StatusAccepted {
		t.Fatalf("batch submit: %d %s", st, body)
	}
	batchInfo := waitJob(t, ts, batch.ID, 30*time.Second)
	if batchInfo.Status != string(jobDone) {
		t.Fatalf("batch job: %s (%s)", batchInfo.Status, batchInfo.Error)
	}
	batchRes := decodeResult(t, batchInfo.Result)

	spec := JobSpec{SpecVersion: 2, Dataset: info.ID, Config: cfg, Mode: ModeAnytime, BudgetMS: 60_000}
	any1, st, body := postJob(t, ts, spec)
	if st != http.StatusAccepted {
		t.Fatalf("anytime submit: %d %s", st, body)
	}
	anyInfo := waitJob(t, ts, any1.ID, 30*time.Second)
	if anyInfo.Status != string(jobDone) {
		t.Fatalf("anytime job: %s (%s)", anyInfo.Status, anyInfo.Error)
	}
	if anyInfo.Cached {
		t.Fatal("anytime job answered from the cache")
	}
	anyRes := decodeResult(t, anyInfo.Result)
	if anyRes.Gap != 0 {
		t.Fatalf("completed anytime run reports gap %v, want 0", anyRes.Gap)
	}
	if !reflect.DeepEqual(anyRes.TopK, batchRes.TopK) {
		t.Fatalf("anytime top-K differs from batch:\n any:  %+v\n batch: %+v", anyRes.TopK, batchRes.TopK)
	}

	// Snapshot events: at least one per completed level, with a
	// non-increasing gap sequence.
	var snaps []snapshotEvent
	for _, ev := range drainEvents(t, ts, any1.ID) {
		if ev.kind != "snapshot" {
			continue
		}
		var se snapshotEvent
		if err := json.Unmarshal([]byte(ev.data), &se); err != nil {
			t.Fatalf("decoding snapshot event: %v (%s)", err, ev.data)
		}
		snaps = append(snaps, se)
	}
	if len(snaps) == 0 {
		t.Fatal("anytime job emitted no snapshot events")
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Gap > snaps[i-1].Gap {
			t.Fatalf("snapshot gap increased: %v after %v", snaps[i].Gap, snaps[i-1].Gap)
		}
	}
	var last []core.Slice
	if err := json.Unmarshal(snaps[len(snaps)-1].TopK, &last); err != nil {
		t.Fatalf("decoding final snapshot top-K: %v", err)
	}
	if len(last) != len(anyRes.TopK) {
		t.Fatalf("final snapshot carries %d slices, result %d", len(last), len(anyRes.TopK))
	}

	// A second identical anytime submission must re-run, never hit the cache.
	any2, st, body := postJob(t, ts, spec)
	if st != http.StatusAccepted {
		t.Fatalf("anytime resubmit: %d %s", st, body)
	}
	if info2 := waitJob(t, ts, any2.ID, 30*time.Second); info2.Cached {
		t.Fatal("second anytime submission answered from the cache")
	}

	// The batch result, however, is cacheable — and an anytime run must not
	// have polluted its entry.
	batch2, st, body := postJob(t, ts, JobSpec{Dataset: info.ID, Config: cfg})
	if st != http.StatusAccepted {
		t.Fatalf("batch resubmit: %d %s", st, body)
	}
	if info2 := waitJob(t, ts, batch2.ID, 30*time.Second); !info2.Cached {
		t.Fatal("identical batch resubmission missed the cache")
	}
}

// TestDiffJobEndToEnd: a diff job over two registered error vectors reports
// signed slices, and its failure modes carry the right statuses.
func TestDiffJobEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2, QueueDepth: 8})
	// Baseline: errors concentrated on dev=d0; new model fixes d0 but
	// regresses on os=o1.
	baseCSV := modeCSV(60, func(i int) float64 {
		if i%4 == 0 {
			return 1
		}
		return 0.1
	})
	newCSV := modeCSV(60, func(i int) float64 {
		if i%3 == 1 {
			return 1
		}
		return 0.1
	})
	baseInfo, code := registerCSV(t, ts, baseCSV, "err=err&name=base")
	if code != http.StatusCreated {
		t.Fatalf("register base: status %d", code)
	}
	newInfo, code := registerCSV(t, ts, newCSV, "err=err&name=new")
	if code != http.StatusCreated {
		t.Fatalf("register new: status %d", code)
	}

	spec := JobSpec{SpecVersion: 2, Dataset: newInfo.ID, Config: JobConfig{K: 4, Sigma: 2}, Mode: ModeDiff, Baseline: baseInfo.ID}
	j, st, body := postJob(t, ts, spec)
	if st != http.StatusAccepted {
		t.Fatalf("diff submit: %d %s", st, body)
	}
	done := waitJob(t, ts, j.ID, 30*time.Second)
	if done.Status != string(jobDone) {
		t.Fatalf("diff job: %s (%s)", done.Status, done.Error)
	}
	res := decodeResult(t, done.Result)
	if len(res.TopK) == 0 {
		t.Fatal("diff job found no signed slices")
	}
	sawReg, sawImp := false, false
	for _, s := range res.TopK {
		switch s.DiffSign {
		case 1:
			sawReg = true
		case -1:
			sawImp = true
		default:
			t.Fatalf("diff slice without a direction: %+v", s)
		}
	}
	if !sawReg || !sawImp {
		t.Fatalf("diff top-K misses a direction (regressions=%v improvements=%v): %+v", sawReg, sawImp, res.TopK)
	}

	// Identical diff resubmission is deterministic, so it may answer from
	// the cache.
	j2, st, body := postJob(t, ts, spec)
	if st != http.StatusAccepted {
		t.Fatalf("diff resubmit: %d %s", st, body)
	}
	if info2 := waitJob(t, ts, j2.ID, 30*time.Second); !info2.Cached {
		t.Fatal("identical diff resubmission missed the cache")
	}

	// Unknown baseline: 404.
	if _, st, _ := postJob(t, ts, JobSpec{SpecVersion: 2, Dataset: newInfo.ID, Mode: ModeDiff, Baseline: "ds_nope"}); st != http.StatusNotFound {
		t.Fatalf("unknown baseline: status %d, want 404", st)
	}
	// Row-count mismatch: 400.
	shortInfo, code := registerCSV(t, ts, modeCSV(30, func(int) float64 { return 0.2 }), "err=err&name=short")
	if code != http.StatusCreated {
		t.Fatalf("register short: status %d", code)
	}
	if _, st, _ := postJob(t, ts, JobSpec{SpecVersion: 2, Dataset: newInfo.ID, Mode: ModeDiff, Baseline: shortInfo.ID}); st != http.StatusBadRequest {
		t.Fatalf("row mismatch: status %d, want 400", st)
	}
}

// TestBatchResultCarriesStatistics: every v2 result slice is annotated with
// a p-value and BH q-value, and the significance knob reaches the run.
func TestBatchResultCarriesStatistics(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 4})
	info, code := registerCSV(t, ts, testCSV(48), "err=err&name=stats")
	if code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	j, st, body := postJob(t, ts, JobSpec{
		SpecVersion: 2,
		Dataset:     info.ID,
		Config:      JobConfig{K: 3, Sigma: 2, Significance: 0.01},
	})
	if st != http.StatusAccepted {
		t.Fatalf("submit: %d %s", st, body)
	}
	done := waitJob(t, ts, j.ID, 30*time.Second)
	if done.Status != string(jobDone) {
		t.Fatalf("job: %s (%s)", done.Status, done.Error)
	}
	res := decodeResult(t, done.Result)
	if len(res.TopK) == 0 {
		t.Fatal("no slices found")
	}
	for _, s := range res.TopK {
		if s.PValue <= 0 || s.PValue > 1 {
			t.Fatalf("p-value %v out of (0,1]: %+v", s.PValue, s)
		}
		if s.QValue < s.PValue || s.QValue > 1 {
			t.Fatalf("q-value %v inconsistent with p %v: %+v", s.QValue, s.PValue, s)
		}
		if s.Significant != (s.QValue <= 0.01) {
			t.Fatalf("significance marker disagrees with q=%v at level 0.01: %+v", s.QValue, s)
		}
	}
}
