package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/dist"
	"sliceline/internal/obs"
)

// startDistWorkers spawns n TCP evaluation workers on ephemeral localhost
// ports, as cmd/slworker would.
func startDistWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		go dist.Serve(lis) //nolint:errcheck // lifetime bound to listener
		t.Cleanup(func() { lis.Close() })
	}
	return addrs
}

// compactResult normalizes a result document for byte comparison (the HTTP
// layer re-indents the cached JSON when embedding it in JobInfo).
func compactResult(t *testing.T, raw []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compacting result JSON: %v", err)
	}
	return buf.String()
}

// canonicalResult re-renders a result document with wall-clock fields zeroed,
// so two runs of the same enumeration compare byte-identically.
func canonicalResult(t *testing.T, raw []byte) string {
	t.Helper()
	var res core.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding result JSON: %v", err)
	}
	res.Elapsed = 0
	for i := range res.Levels {
		res.Levels[i].Elapsed = 0
	}
	out, err := json.Marshal(&res)
	if err != nil {
		t.Fatalf("re-encoding result JSON: %v", err)
	}
	return string(out)
}

// countSpans returns how many finished spans carry the given name.
func countSpans(tr *obs.JSONTracer, name string) int {
	n := 0
	for _, sp := range tr.Spans() {
		if sp.Name == name {
			n++
		}
	}
	return n
}

// TestEndToEnd is the acceptance test of ISSUE 5: N concurrent jobs over
// HTTP against local and distributed evaluators, each byte-identical to a
// direct core run; repeated submissions served from the result cache with no
// new enumeration; SSE streams reporting every lattice level; and one span
// tree per job.
func TestEndToEnd(t *testing.T) {
	workers := startDistWorkers(t, 2)
	metrics := obs.NewRegistry()
	tracer := obs.NewJSONTracer()
	s, ts := newTestServer(t, Config{
		Pool:        3,
		QueueDepth:  32,
		DistWorkers: workers,
		Metrics:     metrics,
		Tracer:      tracer,
	})

	csv := testCSV(60)
	info, code := registerCSV(t, ts, csv, "err=err&name=e2e")
	if code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}

	// The same dataset, built directly, for reference runs.
	entry, err := buildDataset(strings.NewReader(csv), registerOptions{Err: "err", Name: "e2e"})
	if err != nil {
		t.Fatalf("direct buildDataset: %v", err)
	}
	if datasetID(entry.Sig) != info.ID {
		t.Fatalf("direct signature %s != registered %s", datasetID(entry.Sig), info.ID)
	}
	rows := entry.DS.NumRows()

	// Six job specs: four local, two distributed. Their result-affecting
	// configs are pairwise distinct (evaluator and BlockSize are outside
	// the cache key by design), so no submission is answered by another's
	// cache entry.
	specs := []JobSpec{
		{Dataset: info.ID, Evaluator: EvalLocal, Config: JobConfig{K: 4, Sigma: 3}},
		{Dataset: info.ID, Evaluator: EvalLocal, Config: JobConfig{K: 6, Sigma: 2, MaxLevel: 2}},
		{Dataset: info.ID, Evaluator: EvalLocal, Config: JobConfig{K: 3, Sigma: 4, Alpha: 0.9}},
		{Dataset: info.ID, Evaluator: EvalLocal, Config: JobConfig{K: 5, Sigma: 3, PriorityEnumeration: true}},
		{Dataset: info.ID, Evaluator: EvalDist, Config: JobConfig{K: 4, Sigma: 2, BlockSize: 8}},
		{Dataset: info.ID, Evaluator: EvalDist, Config: JobConfig{K: 5, Sigma: 2, MaxLevel: 2, BlockSize: 8}},
	}

	// Submit all jobs concurrently.
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			js, _ := json.Marshal(spec)
			resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(js))
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			var ji JobInfo
			if resp.StatusCode != http.StatusAccepted {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("job %d: status %d", i, resp.StatusCode)
				}
				mu.Unlock()
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&ji); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			ids[i] = ji.ID
		}(i, spec)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	results := make([]JobInfo, len(specs))
	for i, id := range ids {
		results[i] = waitJob(t, ts, id, 30*time.Second)
		if results[i].Status != string(jobDone) {
			t.Fatalf("job %d (%s) finished %q: %s", i, id, results[i].Status, results[i].Error)
		}
	}

	// Reference runs AFTER all server jobs completed: distributed reference
	// clusters reuse the same workers, which hold partitions in one shared
	// map, so they must not overlap server-side distributed jobs.
	for i, spec := range specs {
		cfg := spec.Config.ToCore().WithDefaults(rows)
		if spec.Evaluator == EvalDist {
			cluster, err := dialCluster(workers, dist.Options{BlockSize: cfg.BlockSize})
			if err != nil {
				t.Fatalf("reference cluster: %v", err)
			}
			cfg.Evaluator = cluster
		}
		want, err := core.RunEncodedContext(context.Background(), entry.Enc, entry.DS.Features, entry.ErrVec, cfg)
		if c, ok := cfg.Evaluator.(*dist.Cluster); ok {
			c.Close()
		}
		if err != nil {
			t.Fatalf("reference run %d: %v", i, err)
		}
		wantJSON, err := json.Marshal(want)
		if err != nil {
			t.Fatal(err)
		}
		got := canonicalResult(t, results[i].Result)
		if want := canonicalResult(t, wantJSON); got != want {
			t.Errorf("job %d (%s): result differs from direct run\n got: %.200s\nwant: %.200s",
				i, specs[i].Evaluator, got, want)
		}
	}

	// --- Result cache: resubmitting spec 0 must be a hit with no new run.
	hitsBefore := metrics.Counter("sl_server_cache_hits_total", "").Value()
	runsBefore := countSpans(tracer, "core.run")

	rejob, code, body := postJob(t, ts, specs[0])
	if code != http.StatusAccepted {
		t.Fatalf("cache resubmission: status %d (%s)", code, body)
	}
	if !rejob.Cached || rejob.Status != string(jobDone) {
		t.Errorf("resubmission: cached=%v status=%q, want cached done", rejob.Cached, rejob.Status)
	}
	if got := compactResult(t, rejob.Result); got != compactResult(t, results[0].Result) {
		t.Error("cached result differs from the original")
	}
	if hits := metrics.Counter("sl_server_cache_hits_total", "").Value(); hits != hitsBefore+1 {
		t.Errorf("sl_server_cache_hits_total = %d, want %d", hits, hitsBefore+1)
	}
	if runs := countSpans(tracer, "core.run"); runs != runsBefore {
		t.Errorf("cache hit started a new enumeration: %d core.run spans, want %d", runs, runsBefore)
	}
	// A local result satisfies an equivalent dist submission (plan fields
	// are outside the cache key).
	crossPlan := specs[0]
	crossPlan.Evaluator = EvalDist
	xj, code, _ := postJob(t, ts, crossPlan)
	if code != http.StatusAccepted || !xj.Cached {
		t.Errorf("cross-plan resubmission: status=%d cached=%v, want 202 cached", code, xj.Cached)
	}

	// --- SSE: the stream must report every lattice level plus a terminal
	// status, for a live or finished job alike.
	var res0 core.Result
	if err := json.Unmarshal(results[0].Result, &res0); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	levels, status := readSSE(t, ts, ids[0])
	if levels != len(res0.Levels) {
		t.Errorf("SSE delivered %d level events, result has %d levels", levels, len(res0.Levels))
	}
	if status != string(jobDone) {
		t.Errorf("SSE terminal status %q, want done", status)
	}

	// --- Tracing: every core.run span parents under a server.job span.
	jobSpanIDs := make(map[uint64]bool)
	for _, sp := range tracer.Spans() {
		if sp.Name == "server.job" {
			jobSpanIDs[sp.ID] = true
		}
	}
	if len(jobSpanIDs) != len(specs) {
		t.Errorf("%d server.job spans, want %d", len(jobSpanIDs), len(specs))
	}
	coreRuns := 0
	for _, sp := range tracer.Spans() {
		if sp.Name != "core.run" {
			continue
		}
		coreRuns++
		if !jobSpanIDs[sp.Parent] {
			t.Errorf("core.run span %d has parent %d, not a server.job span", sp.ID, sp.Parent)
		}
	}
	if coreRuns != len(specs) {
		t.Errorf("%d core.run spans, want %d (one per non-cached job)", coreRuns, len(specs))
	}

	// --- Metrics sanity on the full workload.
	if v := metrics.Counter("sl_server_jobs_done_total", "").Value(); v < int64(len(specs)) {
		t.Errorf("sl_server_jobs_done_total = %d, want >= %d", v, len(specs))
	}
	if v := s.ob.inflight.Value(); v != 0 {
		t.Errorf("inflight gauge = %v after drain, want 0", v)
	}
}

// readSSE consumes a job's event stream until the terminal status event,
// returning the number of level events and the terminal status.
func readSSE(t *testing.T, ts *httptest.Server, id string) (levels int, status string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "level":
				var lv levelEvent
				if err := json.Unmarshal([]byte(data), &lv); err != nil {
					t.Fatalf("bad level event %q: %v", data, err)
				}
				if lv.Level != levels+1 {
					t.Errorf("level event %d reports level %d, want %d", levels, lv.Level, levels+1)
				}
				levels++
			case "status":
				var te terminalEvent
				if err := json.Unmarshal([]byte(data), &te); err != nil {
					t.Fatalf("bad status event %q: %v", data, err)
				}
				return levels, te.Status
			}
		}
	}
	t.Fatalf("event stream ended without a status event (read %d levels): %v", levels, sc.Err())
	return 0, ""
}
