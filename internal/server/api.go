package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"sliceline/internal/core"
	"sliceline/internal/membership"
)

// This file pins the service's JSON wire types. Job results reuse the
// versioned interchange form of internal/core/json.go; everything here is
// the thin envelope around it (dataset descriptors, job specs, statuses).

// Evaluator selector values accepted in a JobSpec.
const (
	// EvalAuto picks distributed evaluation when the server was started
	// with workers, local fused evaluation otherwise.
	EvalAuto = ""
	// EvalLocal forces in-process fused evaluation.
	EvalLocal = "local"
	// EvalDist forces distributed evaluation; submitting it to a server
	// without configured workers is a validation error.
	EvalDist = "dist"
)

// maxJobSpecBytes bounds the POST /v1/jobs body. Specs are a dataset
// reference plus a handful of scalars; anything bigger is malformed.
const maxJobSpecBytes = 1 << 20

// JobConfig is the user-settable subset of core.Config carried in a job
// spec. Zero values select the library defaults, exactly like core.Config.
type JobConfig struct {
	K                     int     `json:"k,omitempty"`
	Sigma                 int     `json:"sigma,omitempty"`
	Alpha                 float64 `json:"alpha,omitempty"`
	MaxLevel              int     `json:"max_level,omitempty"`
	BlockSize             int     `json:"block_size,omitempty"`
	MaxCandidatesPerLevel int     `json:"max_candidates_per_level,omitempty"`
	PriorityEnumeration   bool    `json:"priority,omitempty"`
	DenseEval             bool    `json:"dense,omitempty"`
	// Bitset selects the slice-membership kernel for local evaluation:
	// "" or "auto" (by density), "on" (packed bitset), "off" (fused CSR).
	// Like block_size it changes the execution plan, never results, so it
	// does not participate in the result-cache key.
	Bitset string `json:"bitset,omitempty"`
}

// ToCore converts the wire config into a core.Config (hooks unset). An
// invalid Bitset selector maps to an invalid core BitsetMode so that
// Validate rejects it; DecodeJobSpec reports it with the nicer parse error
// first.
func (jc JobConfig) ToCore() core.Config {
	mode, err := core.ParseBitsetMode(jc.Bitset)
	if err != nil {
		mode = core.BitsetMode(-1)
	}
	return core.Config{
		K:                     jc.K,
		Sigma:                 jc.Sigma,
		Alpha:                 jc.Alpha,
		MaxLevel:              jc.MaxLevel,
		BlockSize:             jc.BlockSize,
		MaxCandidatesPerLevel: jc.MaxCandidatesPerLevel,
		PriorityEnumeration:   jc.PriorityEnumeration,
		DenseEval:             jc.DenseEval,
		BitsetEval:            mode,
	}
}

// JobSpec is the request body of POST /v1/jobs.
type JobSpec struct {
	// Dataset references a registered dataset by id (POST /v1/datasets).
	Dataset string `json:"dataset"`
	// Config holds the SliceLine parameters for this job.
	Config JobConfig `json:"config"`
	// Evaluator selects where candidates are evaluated: "" (auto),
	// "local", or "dist".
	Evaluator string `json:"evaluator,omitempty"`
	// TimeoutMS, when > 0, bounds the job's wall-clock execution; an
	// exceeded deadline fails the job. 0 inherits the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// ErrBadJobSpec wraps every job-spec validation failure, matchable with
// errors.Is.
var ErrBadJobSpec = errors.New("invalid job spec")

// DecodeJobSpec strictly decodes and validates a job spec: unknown fields,
// trailing garbage, out-of-range scalars and unknown evaluator selectors are
// all rejected up front, so a job that is admitted never fails on a
// malformed request. It is the surface the fuzz target drives.
func DecodeJobSpec(r io.Reader) (JobSpec, error) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r, maxJobSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrBadJobSpec, err)
	}
	// A second Decode must hit EOF: reject trailing documents.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return spec, fmt.Errorf("%w: trailing data after job spec", ErrBadJobSpec)
	}
	return spec, spec.validate()
}

func (s JobSpec) validate() error {
	if s.Dataset == "" {
		return fmt.Errorf("%w: missing dataset reference", ErrBadJobSpec)
	}
	switch s.Evaluator {
	case EvalAuto, EvalLocal, EvalDist:
	default:
		return fmt.Errorf("%w: unknown evaluator %q (want \"\", %q or %q)", ErrBadJobSpec, s.Evaluator, EvalLocal, EvalDist)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("%w: negative timeout_ms %d", ErrBadJobSpec, s.TimeoutMS)
	}
	if _, err := core.ParseBitsetMode(s.Config.Bitset); err != nil {
		return fmt.Errorf("%w: %v", ErrBadJobSpec, err)
	}
	if err := s.Config.ToCore().Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadJobSpec, err)
	}
	return nil
}

// DatasetInfo describes a registered dataset (responses of the /v1/datasets
// endpoints).
type DatasetInfo struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Rows        int    `json:"rows"`
	Features    int    `json:"features"`
	OneHotWidth int    `json:"onehot_width"`
	Signature   string `json:"signature"` // hex FNV data signature
	// Reused reports that the upload matched an already-registered
	// dataset byte for byte and no new entry was created.
	Reused bool `json:"reused,omitempty"`
}

// JobInfo describes a job (responses of the /v1/jobs endpoints). Result is
// the versioned core result document, present only once the job is done.
type JobInfo struct {
	ID        string          `json:"id"`
	Dataset   string          `json:"dataset"`
	Status    string          `json:"status"`
	Cached    bool            `json:"cached,omitempty"`
	Error     string          `json:"error,omitempty"`
	Evaluator string          `json:"evaluator,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// Healthz is the response of GET /v1/healthz.
type Healthz struct {
	Status    string         `json:"status"`
	Version   string         `json:"version"`
	Datasets  int            `json:"datasets"`
	Jobs      map[string]int `json:"jobs"`
	QueueLen  int            `json:"queue_len"`
	QueueCap  int            `json:"queue_cap"`
	Inflight  int            `json:"inflight"`
	PoolSize  int            `json:"pool_size"`
	Journal   bool           `json:"journal"`
	DistAddrs []string       `json:"dist_workers,omitempty"`
	Elastic   bool           `json:"elastic,omitempty"` // membership-driven fleet configured
}

// ClusterInfo is the response of GET /v1/cluster: the membership view the
// server's elastic jobs place partitions against. The shape matches the
// worker-facing GET /v1/cluster of internal/membership's Handler.
type ClusterInfo struct {
	Version uint64                    `json:"version"`
	Members []membership.MemberStatus `json:"members"`
}

// apiError is the uniform JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}
