package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"sliceline/internal/core"
	"sliceline/internal/membership"
)

// This file pins the service's JSON wire types. Job results reuse the
// versioned interchange form of internal/core/json.go; everything here is
// the thin envelope around it (dataset descriptors, job specs, statuses).

// Evaluator selector values accepted in a JobSpec.
const (
	// EvalAuto picks distributed evaluation when the server was started
	// with workers, local fused evaluation otherwise.
	EvalAuto = ""
	// EvalLocal forces in-process fused evaluation.
	EvalLocal = "local"
	// EvalDist forces distributed evaluation; submitting it to a server
	// without configured workers is a validation error.
	EvalDist = "dist"
)

// maxJobSpecBytes bounds the POST /v1/jobs body. Specs are a dataset
// reference plus a handful of scalars; anything bigger is malformed.
const maxJobSpecBytes = 1 << 20

// JobConfig is the user-settable subset of core.Config carried in a job
// spec. Zero values select the library defaults, exactly like core.Config.
type JobConfig struct {
	K                     int     `json:"k,omitempty"`
	Sigma                 int     `json:"sigma,omitempty"`
	Alpha                 float64 `json:"alpha,omitempty"`
	MaxLevel              int     `json:"max_level,omitempty"`
	BlockSize             int     `json:"block_size,omitempty"`
	MaxCandidatesPerLevel int     `json:"max_candidates_per_level,omitempty"`
	PriorityEnumeration   bool    `json:"priority,omitempty"`
	DenseEval             bool    `json:"dense,omitempty"`
	// Bitset selects the slice-membership kernel for local evaluation:
	// "" or "auto" (by density), "on" (packed bitset), "off" (fused CSR).
	// Like block_size it changes the execution plan, never results, so it
	// does not participate in the result-cache key.
	Bitset string `json:"bitset,omitempty"`
	// Significance is the Benjamini-Hochberg FDR level behind each result
	// slice's "significant" marker; 0 selects the library default (0.05).
	// Must be in [0, 1).
	Significance float64 `json:"significance,omitempty"`
}

// ToCore converts the wire config into a core.Config (hooks unset). An
// invalid Bitset selector maps to an invalid core BitsetMode so that
// Validate rejects it; DecodeJobSpec reports it with the nicer parse error
// first.
func (jc JobConfig) ToCore() core.Config {
	mode, err := core.ParseBitsetMode(jc.Bitset)
	if err != nil {
		mode = core.BitsetMode(-1)
	}
	return core.Config{
		K:                     jc.K,
		Sigma:                 jc.Sigma,
		Alpha:                 jc.Alpha,
		MaxLevel:              jc.MaxLevel,
		BlockSize:             jc.BlockSize,
		MaxCandidatesPerLevel: jc.MaxCandidatesPerLevel,
		PriorityEnumeration:   jc.PriorityEnumeration,
		DenseEval:             jc.DenseEval,
		BitsetEval:            mode,
		Significance:          jc.Significance,
	}
}

// Job modes accepted in a JobSpec.
const (
	// ModeBatch is the classic one-shot run (the zero value).
	ModeBatch = ""
	// ModeMonitor keeps the job resident: it recomputes the top-K after
	// every dataset append and re-emits it over the job's SSE stream as a
	// "result" event, until cancelled.
	ModeMonitor = "monitor"
	// ModeAnytime is a budget-bounded one-shot run: enumeration stops once
	// budget_ms has elapsed (at a lattice-level boundary) and the result
	// carries the certified optimality gap. Progress streams over the job's
	// SSE channel as "snapshot" events after every completed level.
	ModeAnytime = "anytime"
	// ModeWindowed restricts the run to recent rows via the window spec —
	// the explicit spelling of the legacy "window without mode" form, which
	// remains accepted for spec_version 1 clients.
	ModeWindowed = "windowed"
	// ModeDiff compares two error vectors over the same rows: the job's
	// dataset supplies the new model's errors and baseline references a
	// second registered dataset (same rows, same features) supplying the
	// baseline errors. The result interleaves regression (diff_sign +1) and
	// improvement (-1) slices. Diff jobs evaluate locally.
	ModeDiff = "diff"
)

// SpecVersion is the current job-spec wire version. Version 0 (the field
// absent) is the pre-streaming spec; version 1 adds mode and window;
// version 2 adds the anytime/windowed/diff modes with budget_ms and
// baseline. Journaled version-0/1 specs decode and replay unchanged.
const SpecVersion = 2

// WindowSpec restricts a job to recent rows: the slice statistics are
// computed as a weighted run with rows outside the window down-weighted to
// zero, so "worst slices over the last N rows / last W duration". When both
// bounds are set, a row must satisfy both. Duration windows resolve at
// append-batch granularity: a batch is inside the window iff its arrival time
// is (base rows carry the registration time).
type WindowSpec struct {
	// LastRows keeps only the most recent n rows.
	LastRows int `json:"last_rows,omitempty"`
	// LastMS keeps only rows that arrived within the last d milliseconds.
	LastMS int64 `json:"last_ms,omitempty"`
}

// JobSpec is the request body of POST /v1/jobs.
type JobSpec struct {
	// SpecVersion is the wire version of this spec: 0 (legacy, field
	// absent) or 1. Specs using Mode or Window must be version 1.
	SpecVersion int `json:"spec_version,omitempty"`
	// Dataset references a registered dataset by id (POST /v1/datasets).
	Dataset string `json:"dataset"`
	// Config holds the SliceLine parameters for this job.
	Config JobConfig `json:"config"`
	// Evaluator selects where candidates are evaluated: "" (auto),
	// "local", or "dist".
	Evaluator string `json:"evaluator,omitempty"`
	// TimeoutMS, when > 0, bounds the job's wall-clock execution; an
	// exceeded deadline fails the job. 0 inherits the server default.
	// Ignored for monitor jobs, which are resident until cancelled.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Mode selects the job's workload: "" (one-shot batch), "anytime",
	// "monitor", "windowed", or "diff".
	Mode string `json:"mode,omitempty"`
	// Window, when set, restricts the run to recent rows (windowed slices).
	// Required for mode "windowed"; also accepted with mode "" for
	// spec_version 1 compatibility.
	Window *WindowSpec `json:"window,omitempty"`
	// BudgetMS is the anytime enumeration budget in milliseconds; required
	// (> 0) for mode "anytime", rejected elsewhere.
	BudgetMS int64 `json:"budget_ms,omitempty"`
	// Baseline references the registered dataset holding the baseline
	// model's error vector for mode "diff"; required there, rejected
	// elsewhere. It must have the same row count as the job's dataset.
	Baseline string `json:"baseline,omitempty"`
}

// ErrBadJobSpec wraps every job-spec validation failure, matchable with
// errors.Is.
var ErrBadJobSpec = errors.New("invalid job spec")

// DecodeJobSpec strictly decodes and validates a job spec: unknown fields,
// trailing garbage, out-of-range scalars and unknown evaluator selectors are
// all rejected up front, so a job that is admitted never fails on a
// malformed request. It is the surface the fuzz target drives.
func DecodeJobSpec(r io.Reader) (JobSpec, error) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(r, maxJobSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return spec, fmt.Errorf("%w: %v", ErrBadJobSpec, err)
	}
	// A second Decode must hit EOF: reject trailing documents.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return spec, fmt.Errorf("%w: trailing data after job spec", ErrBadJobSpec)
	}
	return spec, spec.validate()
}

func (s JobSpec) validate() error {
	if s.SpecVersion < 0 || s.SpecVersion > SpecVersion {
		return fmt.Errorf("%w: spec_version %d not supported (this build speaks 0..%d)", ErrBadJobSpec, s.SpecVersion, SpecVersion)
	}
	if s.Dataset == "" {
		return fmt.Errorf("%w: missing dataset reference", ErrBadJobSpec)
	}
	switch s.Evaluator {
	case EvalAuto, EvalLocal, EvalDist:
	default:
		return fmt.Errorf("%w: unknown evaluator %q (want \"\", %q or %q)", ErrBadJobSpec, s.Evaluator, EvalLocal, EvalDist)
	}
	if s.TimeoutMS < 0 {
		return fmt.Errorf("%w: negative timeout_ms %d", ErrBadJobSpec, s.TimeoutMS)
	}
	switch s.Mode {
	case ModeBatch:
	case ModeMonitor:
		if s.SpecVersion < 1 {
			return fmt.Errorf("%w: mode %q requires spec_version 1", ErrBadJobSpec, s.Mode)
		}
		if s.Evaluator == EvalDist {
			return fmt.Errorf("%w: monitor jobs evaluate locally (incremental maintenance), not %q", ErrBadJobSpec, EvalDist)
		}
		if s.Window != nil {
			return fmt.Errorf("%w: monitor jobs track the full dataset; window is not supported", ErrBadJobSpec)
		}
		// The incremental evaluator owns the execution plan.
		if s.Config.DenseEval || s.Config.PriorityEnumeration {
			return fmt.Errorf("%w: monitor jobs cannot use dense or priority evaluation", ErrBadJobSpec)
		}
	case ModeAnytime:
		if s.SpecVersion < 2 {
			return fmt.Errorf("%w: mode %q requires spec_version 2", ErrBadJobSpec, s.Mode)
		}
		if s.BudgetMS <= 0 {
			return fmt.Errorf("%w: mode %q requires budget_ms > 0", ErrBadJobSpec, s.Mode)
		}
		if s.Window != nil {
			return fmt.Errorf("%w: anytime jobs run over the full dataset; window is not supported", ErrBadJobSpec)
		}
	case ModeWindowed:
		if s.SpecVersion < 2 {
			return fmt.Errorf("%w: mode %q requires spec_version 2", ErrBadJobSpec, s.Mode)
		}
		if s.Window == nil {
			return fmt.Errorf("%w: mode %q requires a window", ErrBadJobSpec, s.Mode)
		}
	case ModeDiff:
		if s.SpecVersion < 2 {
			return fmt.Errorf("%w: mode %q requires spec_version 2", ErrBadJobSpec, s.Mode)
		}
		if s.Baseline == "" {
			return fmt.Errorf("%w: mode %q requires a baseline dataset reference", ErrBadJobSpec, s.Mode)
		}
		if s.Evaluator == EvalDist {
			return fmt.Errorf("%w: diff jobs evaluate locally (weighted lowering), not %q", ErrBadJobSpec, EvalDist)
		}
		if s.Window != nil {
			return fmt.Errorf("%w: diff jobs run over the full dataset; window is not supported", ErrBadJobSpec)
		}
	default:
		return fmt.Errorf("%w: unknown mode %q (want \"\", %q, %q, %q or %q)", ErrBadJobSpec, s.Mode, ModeAnytime, ModeMonitor, ModeWindowed, ModeDiff)
	}
	if s.BudgetMS < 0 {
		return fmt.Errorf("%w: negative budget_ms %d", ErrBadJobSpec, s.BudgetMS)
	}
	if s.BudgetMS > 0 && s.Mode != ModeAnytime {
		return fmt.Errorf("%w: budget_ms is only valid with mode %q", ErrBadJobSpec, ModeAnytime)
	}
	if s.Baseline != "" && s.Mode != ModeDiff {
		return fmt.Errorf("%w: baseline is only valid with mode %q", ErrBadJobSpec, ModeDiff)
	}
	if w := s.Window; w != nil {
		if s.SpecVersion < 1 {
			return fmt.Errorf("%w: window requires spec_version 1", ErrBadJobSpec)
		}
		if w.LastRows < 0 || w.LastMS < 0 {
			return fmt.Errorf("%w: negative window bounds", ErrBadJobSpec)
		}
		if w.LastRows == 0 && w.LastMS == 0 {
			return fmt.Errorf("%w: empty window (set last_rows and/or last_ms)", ErrBadJobSpec)
		}
		if s.Evaluator == EvalDist {
			return fmt.Errorf("%w: windowed jobs evaluate locally (row weights), not %q", ErrBadJobSpec, EvalDist)
		}
	}
	if _, err := core.ParseBitsetMode(s.Config.Bitset); err != nil {
		return fmt.Errorf("%w: %v", ErrBadJobSpec, err)
	}
	if err := s.Config.ToCore().Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadJobSpec, err)
	}
	return nil
}

// DatasetInfo describes a registered dataset (responses of the /v1/datasets
// endpoints).
type DatasetInfo struct {
	ID          string `json:"id"`
	Name        string `json:"name"`
	Rows        int    `json:"rows"`
	Features    int    `json:"features"`
	OneHotWidth int    `json:"onehot_width"`
	Signature   string `json:"signature"` // hex FNV data signature of the current generation
	// Generation counts applied appends; 0 is the registered base.
	Generation int `json:"generation"`
	// Appendable reports that the dataset accepts POST /v1/datasets/{id}/rows
	// (registered in err-column mode).
	Appendable bool `json:"appendable,omitempty"`
	// Reused reports that the upload matched an already-registered
	// dataset byte for byte and no new entry was created.
	Reused bool `json:"reused,omitempty"`
}

// JobInfo describes a job (responses of the /v1/jobs endpoints). Result is
// the versioned core result document, present once the job is done — or, for
// a running monitor job, the latest refreshed result (Generation says which
// dataset generation it covers).
type JobInfo struct {
	ID         string          `json:"id"`
	Dataset    string          `json:"dataset"`
	Status     string          `json:"status"`
	Mode       string          `json:"mode,omitempty"`
	Cached     bool            `json:"cached,omitempty"`
	Error      string          `json:"error,omitempty"`
	Evaluator  string          `json:"evaluator,omitempty"`
	Generation int             `json:"generation,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
}

// Healthz is the response of GET /v1/healthz.
type Healthz struct {
	Status    string         `json:"status"`
	Version   string         `json:"version"`
	Datasets  int            `json:"datasets"`
	Jobs      map[string]int `json:"jobs"`
	QueueLen  int            `json:"queue_len"`
	QueueCap  int            `json:"queue_cap"`
	Inflight  int            `json:"inflight"`
	PoolSize  int            `json:"pool_size"`
	Journal   bool           `json:"journal"`
	DistAddrs []string       `json:"dist_workers,omitempty"`
	Elastic   bool           `json:"elastic,omitempty"` // membership-driven fleet configured
}

// ClusterInfo is the response of GET /v1/cluster: the membership view the
// server's elastic jobs place partitions against. The shape matches the
// worker-facing GET /v1/cluster of internal/membership's Handler.
type ClusterInfo struct {
	Version uint64                    `json:"version"`
	Members []membership.MemberStatus `json:"members"`
}

// AppendInfo is the response of POST /v1/datasets/{id}/rows.
type AppendInfo struct {
	ID         string   `json:"id"`
	Generation int      `json:"generation"`
	Rows       int      `json:"rows"`     // accumulated row count after the append
	NewRows    int      `json:"new_rows"` // rows this batch added
	Grown      []string `json:"grown,omitempty"`
	Signature  string   `json:"signature"` // hex data signature of this generation
}
