// Package server implements slserve's multi-tenant slice-finding service: a
// zero-dependency HTTP/JSON front end over the core enumeration with a
// dataset registry (upload once, one-hot encode once, content-addressed by
// the core FNV data signature), an asynchronous bounded worker pool with
// admission control (full queue → 429), a result cache keyed by
// (data signature, config signature, depth cap), per-level SSE progress
// streaming, an optional gob job journal for restart/resume, and the
// sl_server_* observability families. See DESIGN.md, "HTTP service".
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/dist"
	"sliceline/internal/membership"
	"sliceline/internal/obs"
)

// Defaults for Config zero values.
const (
	DefaultPool        = 4
	DefaultQueueDepth  = 64
	DefaultMaxMonitors = 8
)

// Config configures a Server.
type Config struct {
	// Pool is the number of concurrent job executors. <= 0 selects 4.
	Pool int
	// QueueDepth bounds the number of accepted-but-not-running jobs;
	// submissions beyond it are rejected with HTTP 429. <= 0 selects 64.
	QueueDepth int
	// JobTimeout, when > 0, is the default per-job execution deadline;
	// a job spec's timeout_ms overrides it. Exceeding it fails the job
	// through the usual context-cancellation paths. Monitor jobs ignore
	// it (resident until cancelled).
	JobTimeout time.Duration
	// MaxMonitors bounds the resident monitor jobs (mode "monitor");
	// submissions beyond it are rejected with HTTP 429 and code
	// monitor_limit. <= 0 selects 8.
	MaxMonitors int
	// JournalDir, when non-empty, persists datasets, job records and
	// per-level enumeration checkpoints there, so a restarted server
	// re-serves completed jobs and resumes in-flight ones.
	JournalDir string
	// DistWorkers lists worker addresses (host:port) for distributed
	// evaluation; empty means all jobs evaluate in-process.
	DistWorkers []string
	// Dist carries the cluster runtime knobs (call timeout, hedging,
	// heartbeat) applied to every distributed job.
	Dist dist.Options
	// Membership, when non-nil, switches distributed jobs to the elastic
	// fleet: workers announce themselves to this registrar (slworker -join)
	// instead of being listed in DistWorkers, partitions are placed by
	// consistent hash of the dataset signature, and jobs survive mid-run
	// joins, crashes, and full fleet loss (degrading to driver-local
	// evaluation). DistWorkers is ignored for placement when set.
	Membership *membership.Registrar
	// Tracer, when non-nil, receives one span tree per job (server.job →
	// core.run → levels/evals/RPCs).
	Tracer obs.Tracer
	// Metrics, when non-nil, receives the sl_server_* families plus the
	// sl_core_*/sl_dist_* families of the runs the server executes.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Pool <= 0 {
		c.Pool = DefaultPool
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	return c
}

// Server is the slice-finding service. Create with New, mount Handler on an
// http.Server, and drain with Shutdown.
type Server struct {
	cfg     Config
	reg     *registry
	cache   *resultCache
	journal *journal
	ob      serverObs

	mu           sync.Mutex
	jobs         map[string]*job
	order        []string
	closed       bool
	queue        chan *job
	monitorCount int // resident monitors, capped by maxMonitors()

	nextID atomic.Int64
	wg     sync.WaitGroup
	distMu sync.Mutex // serializes static dist jobs: workers share one partition map

	// journalLogAt rate-limits the journal-write-failure log line (the
	// counter records every failure; the log fires at most once per window).
	journalLogAt atomic.Int64

	// runJob executes one job; tests substitute a controllable stub to
	// drive admission-control and cancellation paths deterministically.
	runJob func(ctx context.Context, j *job) (*core.Result, error)
}

// New builds a Server, restores the journal (when configured), and starts
// the worker pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		reg:   newRegistry(),
		cache: newResultCache(),
		ob:    newServerObs(cfg.Metrics),
		jobs:  make(map[string]*job),
		queue: make(chan *job, cfg.QueueDepth),
	}
	s.runJob = s.runJobReal

	var restored []*journalJob
	if cfg.JournalDir != "" {
		var err error
		s.journal, err = openJournal(cfg.JournalDir)
		if err != nil {
			return nil, err
		}
		if restored, err = s.restoreDatasetsAndLoadJobs(); err != nil {
			return nil, err
		}
	}

	s.wg.Add(cfg.Pool)
	for i := 0; i < cfg.Pool; i++ {
		go s.worker()
	}

	// Re-enqueue after the pool is running so restored backlogs larger
	// than the queue depth drain instead of deadlocking New.
	s.restoreJobs(restored)
	return s, nil
}

// restoreDatasetsAndLoadJobs replays the journal's dataset files into the
// registry — base upload first, then every journaled append batch in
// generation order through the live append path, so each restored entry
// reaches its pre-restart generation with the same signature — and loads the
// raw job records.
func (s *Server) restoreDatasetsAndLoadJobs() ([]*journalJob, error) {
	entries, err := s.journal.loadDatasets()
	if err != nil {
		return nil, err
	}
	for _, d := range entries {
		s.reg.add(d)
		recs, err := s.journal.loadAppends(d.ID)
		if err != nil {
			return nil, err
		}
		for _, rec := range recs {
			if _, err := d.appendRows(rec.Rows, rec.Errs, time.Unix(0, rec.AtUnix)); err != nil {
				return nil, fmt.Errorf("server: replaying journaled append %d for %s: %w", rec.Gen, d.ID, err)
			}
		}
	}
	recs, maxSeq, err := s.journal.loadJobs()
	if err != nil {
		return nil, err
	}
	s.nextID.Store(maxSeq)
	return recs, nil
}

// restoreJobs rebuilds the job table from journal records: terminal jobs are
// re-served (done results also feed the cache, keyed by the generation
// signature they actually ran against), unfinished batch jobs are re-enqueued
// with Resume set so they continue from their last completed lattice level,
// and unfinished monitor jobs restart as fresh residents over the restored
// dataset's current generation.
func (s *Server) restoreJobs(recs []*journalJob) {
	for _, rec := range recs {
		ds, haveDS := s.reg.get(rec.Spec.Dataset)
		j := &job{
			id:      rec.ID,
			spec:    rec.Spec,
			ds:      ds,
			monitor: rec.Spec.Mode == ModeMonitor,
			cached:  rec.Cached,
			events:  newEventLog(),
			done:    make(chan struct{}),
		}
		var snap dsSnapshot
		if haveDS {
			snap = ds.snapshot()
			j.snap = snap
		}
		st := jobState(rec.Status)
		if st.terminal() {
			j.state = st
			j.errMsg = rec.ErrMsg
			if st == jobDone && len(rec.ResultJSON) > 0 && haveDS {
				var res core.Result
				if err := json.Unmarshal(rec.ResultJSON, &res); err == nil {
					j.result = &res
					j.resultJSON = rec.ResultJSON
					// Feed the cache only when the result still speaks
					// for the dataset's current generation (legacy
					// records carry no signature and predate appends).
					// A result pinned to an older generation is re-served
					// by id but must not answer fresh submissions; nor may
					// anytime results, which depend on wall-clock budgets.
					// Diff results additionally need their baseline dataset
					// still registered to rebuild the full key.
					baseSig, haveBase := uint64(0), true
					if rec.Spec.Mode == ModeDiff {
						if base, ok := s.reg.get(rec.Spec.Baseline); ok {
							baseSig = base.snapshot().Sig
						} else {
							haveBase = false
						}
					}
					if !j.monitor && rec.Spec.Window == nil &&
						rec.Spec.Mode != ModeAnytime && haveBase &&
						(rec.DataSig == 0 || rec.DataSig == snap.Sig) {
						cfg := rec.Spec.Config.ToCore().WithDefaults(snap.DS.NumRows())
						s.cache.put(jobCacheKey(rec.Spec, cfg, snap.Sig, baseSig), &res, rec.ResultJSON)
					}
					j.events.replay(res.Levels)
				}
			}
			j.events.finish(string(st), rec.ErrMsg)
			close(j.done)
			s.addRestored(j)
			continue
		}
		if !haveDS {
			j.state = jobFailed
			j.errMsg = fmt.Sprintf("dataset %s not present in journal after restart", rec.Spec.Dataset)
			j.events.finish(string(jobFailed), j.errMsg)
			close(j.done)
			s.addRestored(j)
			continue
		}
		if j.monitor {
			// Monitors restart fresh over the current generation (their
			// in-memory incremental state is not journaled).
			j.cfg = rec.Spec.Config.ToCore()
			j.state = jobRunning
			j.ctx, j.cancel = context.WithCancel(context.Background())
			s.mu.Lock()
			over := s.monitorCount >= s.maxMonitors()
			if !over {
				s.monitorCount++
				s.wg.Add(1)
			}
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			s.mu.Unlock()
			if over {
				s.finishJob(j, nil, errMonitorLimit)
				continue
			}
			s.ob.resumed.Inc()
			s.ob.monitors.Add(1)
			go s.runMonitor(j)
			continue
		}
		// Diff jobs need their baseline dataset back too; without it the
		// job cannot rerun, so it fails in place like a missing dataset.
		if rec.Spec.Mode == ModeDiff {
			base, haveBase := s.reg.get(rec.Spec.Baseline)
			if !haveBase {
				j.state = jobFailed
				j.errMsg = fmt.Sprintf("baseline dataset %s not present in journal after restart", rec.Spec.Baseline)
				j.events.finish(string(jobFailed), j.errMsg)
				close(j.done)
				s.addRestored(j)
				continue
			}
			j.baseSnap = base.snapshot()
		}
		// Re-enqueue with resume: the checkpoint file (when one was
		// written before the crash) carries the completed levels. If the
		// dataset advanced past the job's journaled generation, the
		// checkpoint no longer matches the data — drop it and run fresh
		// against the current generation instead.
		cfg := rec.Spec.Config.ToCore().WithDefaults(snap.DS.NumRows())
		if rec.Spec.Mode == ModeAnytime {
			cfg.Budget = time.Duration(rec.Spec.BudgetMS) * time.Millisecond
		}
		j.cfg = cfg
		j.key = jobCacheKey(rec.Spec, cfg, snap.Sig, j.baseSnap.Sig)
		j.useDist = rec.Spec.Evaluator == EvalDist ||
			(rec.Spec.Evaluator == EvalAuto && !localOnly(rec.Spec) && s.distCapable())
		j.resume = rec.DataSig == 0 || rec.DataSig == snap.Sig
		if !j.resume {
			s.journal.dropCheckpoint(j.id)
		}
		j.state = jobQueued
		j.enqueued = time.Now()
		if rec.Spec.TimeoutMS > 0 {
			j.ctx, j.cancel = context.WithTimeout(context.Background(), time.Duration(rec.Spec.TimeoutMS)*time.Millisecond)
		} else if s.cfg.JobTimeout > 0 {
			j.ctx, j.cancel = context.WithTimeout(context.Background(), s.cfg.JobTimeout)
		} else {
			j.ctx, j.cancel = context.WithCancel(context.Background())
		}
		s.addRestored(j)
		s.ob.resumed.Inc()
		s.ob.queueDepth.Add(1)
		s.queue <- j // blocking is fine: the pool is already draining
	}
}

// distCapable reports whether the server can run distributed jobs: either a
// static worker list or a membership registrar (elastic fleet) is configured.
func (s *Server) distCapable() bool {
	return len(s.cfg.DistWorkers) > 0 || s.cfg.Membership != nil
}

func (s *Server) addRestored(j *job) {
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
}

// registerDataset builds, registers and journals a dataset entry, returning
// its info with Reused set when the content was already present.
func (s *Server) registerDataset(d *datasetEntry) (DatasetInfo, error) {
	canonical, existed := s.reg.add(d)
	info := canonical.info()
	info.Reused = existed
	if !existed {
		s.ob.datasets.Inc()
		if err := s.journal.saveDataset(canonical); err != nil {
			return info, err
		}
	}
	return info, nil
}

// Shutdown drains the server: no new jobs are accepted (503), queued and
// running batch jobs are allowed to finish, resident monitors are cancelled
// (they would otherwise never exit), and the pool exits. If ctx expires
// first, every remaining job is cancelled and Shutdown waits for the pool
// to observe the cancellations before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	for _, j := range s.listJobs() {
		if j.monitor && !j.currentState().terminal() && j.cancel != nil {
			j.cancel()
		}
	}

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		for _, j := range s.listJobs() {
			if !j.currentState().terminal() && j.cancel != nil {
				j.cancel()
			}
		}
		<-drained
		return ctx.Err()
	}
}
