package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"sliceline/internal/core"
)

// Monitor jobs are resident: instead of passing through the worker pool once,
// each one owns a goroutine that holds a core.Incremental over its dataset,
// re-evaluates the exact top-K after every append, and re-emits it over the
// job's SSE stream as a "result" event — until the job is cancelled or the
// server shuts down. The pool is never involved, so monitors cannot starve
// batch jobs; a separate cap (Config.MaxMonitors) bounds the residents.

// submitMonitor admits one monitor job, bypassing the queue. The spec was
// already validated (monitor mode excludes dist/dense/priority/window), so
// the incremental evaluator's own rejections cannot fire for an admitted job.
func (s *Server) submitMonitor(spec JobSpec, ds *datasetEntry, snap dsSnapshot) (*job, int, error) {
	// No WithDefaults: the incremental run re-resolves σ against the
	// growing row count every generation, exactly like a batch run would.
	cfg := spec.Config.ToCore()
	if err := cfg.Validate(); err != nil {
		return nil, http.StatusBadRequest, err
	}
	j := &job{
		spec:    spec,
		ds:      ds,
		snap:    snap,
		cfg:     cfg,
		monitor: true,
		state:   jobRunning,
		events:  newEventLog(),
		done:    make(chan struct{}),
	}
	// No timeout: monitors are resident until cancelled (TimeoutMS is
	// documented as ignored for them).
	j.ctx, j.cancel = context.WithCancel(context.Background())

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.cancel()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server: draining, not accepting jobs")
	}
	if s.monitorCount >= s.maxMonitors() {
		s.mu.Unlock()
		j.cancel()
		s.ob.rejected.Inc()
		return nil, http.StatusTooManyRequests, errMonitorLimit
	}
	s.monitorCount++
	j.id = s.newJobID()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.wg.Add(1)
	s.mu.Unlock()

	s.ob.submitted.Inc()
	s.ob.monitors.Add(1)
	s.journalFailed("monitor start", s.journal.saveJob(j))
	go s.runMonitor(j)
	return j, http.StatusAccepted, nil
}

// maxMonitors resolves the resident-monitor cap (<= 0 selects the default).
func (s *Server) maxMonitors() int {
	if s.cfg.MaxMonitors > 0 {
		return s.cfg.MaxMonitors
	}
	return DefaultMaxMonitors
}

// runMonitor is one resident monitor: evaluate, emit, wait for the next
// generation, fold it in, repeat. The incremental evaluator is owned by this
// goroutine; appends are folded in as deltas via the dataset's bounded append
// log, falling back to a full rebuild from the current snapshot when the log
// has evicted a needed record.
func (s *Server) runMonitor(j *job) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		s.monitorCount--
		s.mu.Unlock()
		s.ob.monitors.Add(-1)
	}()

	cfg := j.cfg
	cfg.Tracer = s.cfg.Tracer
	cfg.Metrics = s.cfg.Metrics
	cfg.OnLevel = j.events.addLevel

	inc, err := core.NewIncremental(j.snap.Enc, j.snap.DS.Features, j.snap.ErrVec, cfg)
	if err != nil {
		s.finishJob(j, nil, err)
		return
	}
	gen := j.snap.Gen // dataset generation the evaluator currently holds

	for {
		res, err := inc.Run(j.ctx)
		if err != nil {
			s.finishJob(j, nil, err)
			return
		}
		js, err := json.Marshal(res)
		if err != nil {
			s.finishJob(j, nil, err)
			return
		}
		j.setRefreshed(res, js, gen)
		j.events.addResult(resultEvent{Generation: gen, Rows: inc.Rows(), Result: js})
		s.ob.refreshes.Inc()

		// Wait for a generation beyond the one just emitted.
		for {
			cur, change := j.ds.changed()
			if cur.Gen > gen {
				break
			}
			select {
			case <-change:
			case <-j.ctx.Done():
				s.finishJob(j, nil, j.ctx.Err())
				return
			}
		}

		// Delta path: replay the append records for (gen, current]. The
		// snapshot is taken AFTER appendsSince, so its error vector covers
		// every returned record's row range.
		recs, ok := j.ds.appendsSince(gen)
		cur := j.ds.snapshot()
		if ok {
			for _, rec := range recs {
				if aerr := inc.Append(rec.Res, cur.ErrVec[rec.Start:rec.End]); aerr != nil {
					ok = false
					break
				}
				gen = rec.Gen
			}
		}
		if !ok {
			// The bounded log evicted a needed record (or a delta failed
			// to apply): rebuild from the current snapshot. The memo is
			// lost but correctness is not — the next Run scans fresh.
			inc, err = core.NewIncremental(cur.Enc, cur.DS.Features, cur.ErrVec, cfg)
			if err != nil {
				s.finishJob(j, nil, err)
				return
			}
			gen = cur.Gen
		}
	}
}
