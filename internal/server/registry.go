package server

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"sliceline/internal/core"
	"sliceline/internal/frame"
	"sliceline/internal/ml"
)

// datasetEntry is one registered dataset: the integer-encoded frame, its
// one-hot encoding (computed exactly once, at registration — jobs never
// re-encode), the row-aligned error vector every job on it consumes, and the
// FNV data signature that content-addresses it.
type datasetEntry struct {
	ID     string
	Name   string
	DS     *frame.Dataset
	Enc    *frame.Encoding
	ErrVec []float64
	Sig    uint64
}

func (d *datasetEntry) info() DatasetInfo {
	return DatasetInfo{
		ID:          d.ID,
		Name:        d.Name,
		Rows:        d.DS.NumRows(),
		Features:    d.DS.NumFeatures(),
		OneHotWidth: d.DS.OneHotWidth(),
		Signature:   fmt.Sprintf("%016x", d.Sig),
	}
}

// datasetID derives the content address of a dataset from its signature.
func datasetID(sig uint64) string { return fmt.Sprintf("ds_%016x", sig) }

// registry is the in-memory dataset store. Entries are immutable once
// registered; re-registering identical content is an idempotent no-op that
// returns the existing entry.
type registry struct {
	mu   sync.RWMutex
	byID map[string]*datasetEntry
}

func newRegistry() *registry {
	return &registry{byID: make(map[string]*datasetEntry)}
}

// add registers an entry, returning the canonical entry and whether an
// identical one already existed.
func (r *registry) add(d *datasetEntry) (*datasetEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byID[d.ID]; ok {
		return old, true
	}
	r.byID[d.ID] = d
	return d, false
}

func (r *registry) get(id string) (*datasetEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byID[id]
	return d, ok
}

func (r *registry) list() []*datasetEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*datasetEntry, 0, len(r.byID))
	for _, d := range r.byID {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// registerOptions carries the query parameters of POST /v1/datasets.
type registerOptions struct {
	Name  string // display name; defaults to the id
	Label string // numeric label column used for model training
	Task  string // "class" (mlogit) or "reg" (linear); used with Label
	Err   string // column holding a precomputed error vector; overrides Label/Task
	Bins  int    // equi-width bins for continuous features (<= 0: 10)
}

// buildDataset turns an uploaded CSV stream into a registry entry. Two modes
// mirror the CLI workflows:
//
//   - error-column mode (err= query parameter): the named numeric column is
//     taken verbatim as the per-row error vector e and excluded from the
//     features — for callers that score their own models;
//   - training mode (label= plus task=): a model is fitted server-side on
//     the label column and e is its per-row loss, the TrainAndScore loop.
//
// The one-hot encoding happens here, once; every job on the dataset reuses
// it, which is the service's whole reason to exist over one-shot CLI runs.
func buildDataset(r io.Reader, opt registerOptions) (*datasetEntry, error) {
	if opt.Bins <= 0 {
		opt.Bins = 10
	}
	f, err := frame.ReadCSV(r)
	if err != nil {
		return nil, err
	}

	var (
		ds     *frame.Dataset
		errVec []float64
	)
	switch {
	case opt.Err != "":
		col, cerr := f.Column(opt.Err)
		if cerr != nil {
			return nil, fmt.Errorf("server: error column: %w", cerr)
		}
		if col.Kind != frame.Numeric {
			return nil, fmt.Errorf("server: error column %q must be numeric", opt.Err)
		}
		for i, v := range col.Floats {
			if v < 0 {
				return nil, fmt.Errorf("server: error column %q has negative value %v at row %d", opt.Err, v, i)
			}
		}
		errVec = append([]float64(nil), col.Floats...)
		// The label column (when named) is still extracted as Y but the
		// error column itself must not leak into the features.
		ds, err = frame.FromFrame(f, opt.Label, opt.Bins, opt.Err)
		if err != nil {
			return nil, err
		}
	case opt.Label != "":
		ds, err = frame.FromFrame(f, opt.Label, opt.Bins)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("server: dataset registration needs either label= (train a model server-side) or err= (precomputed error column)")
	}
	if ds.NumRows() == 0 {
		return nil, fmt.Errorf("server: dataset has no rows")
	}
	if ds.NumFeatures() == 0 {
		return nil, fmt.Errorf("server: dataset has no feature columns")
	}
	ds.Name = opt.Name

	enc, err := frame.OneHot(ds)
	if err != nil {
		return nil, err
	}
	if errVec == nil {
		errVec, err = trainErrVec(ds, enc, opt.Task)
		if err != nil {
			return nil, err
		}
	}
	return finishEntry(ds, enc, errVec, opt.Name)
}

// trainErrVec fits the requested model on the dataset and returns its
// per-row loss.
func trainErrVec(ds *frame.Dataset, enc *frame.Encoding, task string) ([]float64, error) {
	if ds.Y == nil {
		return nil, fmt.Errorf("server: dataset has no labels to train on")
	}
	switch task {
	case "reg":
		m, err := ml.TrainLinReg(enc.X, ds.Y, ml.LinRegConfig{})
		if err != nil {
			return nil, err
		}
		return ml.SquaredLoss(ds.Y, m.Predict(enc.X)), nil
	case "", "class":
		m, err := ml.TrainMlogit(enc.X, ds.Y, ml.MlogitConfig{})
		if err != nil {
			return nil, err
		}
		return ml.Inaccuracy(ds.Y, m.Predict(enc.X)), nil
	default:
		return nil, fmt.Errorf("server: unknown task %q (want class or reg)", task)
	}
}

// finishEntry computes the content address and assembles the entry.
func finishEntry(ds *frame.Dataset, enc *frame.Encoding, errVec []float64, name string) (*datasetEntry, error) {
	if len(errVec) != ds.NumRows() {
		return nil, fmt.Errorf("server: error vector length %d vs %d rows", len(errVec), ds.NumRows())
	}
	sig := core.DataSignature(enc, errVec, nil)
	id := datasetID(sig)
	if name == "" {
		name = id
	}
	ds.Name = name
	return &datasetEntry{ID: id, Name: name, DS: ds, Enc: enc, ErrVec: errVec, Sig: sig}, nil
}
