package server

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/frame"
	"sliceline/internal/ml"
)

// appendLogCap bounds the per-dataset append history kept for monitor delta
// composition. A monitor that falls further behind than this rebuilds its
// incremental state from the current snapshot instead of replaying deltas.
const appendLogCap = 128

// datasetEntry is one registered dataset: the integer-encoded frame, its
// one-hot encoding (computed at registration, extended incrementally on
// append — jobs never re-encode), the row-aligned error vector every job on
// it consumes, and the FNV data signature that content-addresses it.
//
// Entries registered in err-column mode are mutable: POST
// /v1/datasets/{id}/rows appends rows, advancing the entry's generation. The
// ID stays the content address of the base upload — the (BaseSig, Gen) pair
// names a generation — while Sig is recomputed per generation over the
// accumulated content, so result-cache keys and warm-worker partition
// addresses (dist placement seeds) from earlier generations can never alias
// the new data. All generation state is guarded by mu; jobs capture an
// immutable snapshot at submission.
type datasetEntry struct {
	ID      string // ds_<base signature>, stable across generations
	Name    string
	ErrCol  string // err-column registration mode; "" = train-mode (not appendable)
	BaseSig uint64

	mu     sync.Mutex
	DS     *frame.Dataset
	Enc    *frame.Encoding
	ErrVec []float64
	Sig    uint64 // data signature of the current generation
	Gen    int    // applied appends; 0 is the registered base

	ap     *frame.Appender
	log    []appendRecord
	genEnd []int         // genEnd[g] = accumulated row count at generation g
	genAt  []time.Time   // genAt[g] = when generation g became current
	change chan struct{} // closed and replaced on every append (monitor wakeup)
}

// appendRecord is one applied append batch, kept for monitor delta
// composition and windowed-duration resolution.
type appendRecord struct {
	Gen        int
	Res        *frame.AppendResult
	Start, End int // appended rows occupy [Start, End)
	At         time.Time
}

// dsSnapshot is an immutable view of one dataset generation. Jobs capture it
// at submission, so a concurrent append never changes what a running job
// evaluates. The slices are never mutated after the snapshot is taken
// (appends are copy-on-write throughout).
type dsSnapshot struct {
	ID     string
	DS     *frame.Dataset
	Enc    *frame.Encoding
	ErrVec []float64
	Sig    uint64
	Gen    int
	GenEnd []int
	GenAt  []time.Time
}

// snapshot captures the current generation.
func (d *datasetEntry) snapshot() dsSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked()
}

func (d *datasetEntry) snapshotLocked() dsSnapshot {
	return dsSnapshot{
		ID:     d.ID,
		DS:     d.DS,
		Enc:    d.Enc,
		ErrVec: d.ErrVec,
		Sig:    d.Sig,
		Gen:    d.Gen,
		GenEnd: append([]int(nil), d.genEnd...),
		GenAt:  append([]time.Time(nil), d.genAt...),
	}
}

// changed returns the current snapshot plus a channel closed on the next
// append, so a monitor can wait for new generations without polling.
func (d *datasetEntry) changed() (dsSnapshot, <-chan struct{}) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.snapshotLocked(), d.change
}

// appendable reports whether the entry accepts row appends.
func (d *datasetEntry) appendable() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ap != nil
}

// appendRows applies one batch of raw rows plus their error values,
// advancing the entry's generation. The error vector, dataset and encoding
// are replaced copy-on-write, so earlier snapshots stay valid.
func (d *datasetEntry) appendRows(rows [][]string, errs []float64, at time.Time) (AppendInfo, error) {
	if len(rows) != len(errs) {
		return AppendInfo{}, fmt.Errorf("server: %d rows vs %d error values", len(rows), len(errs))
	}
	for i, v := range errs {
		if v < 0 || v != v {
			return AppendInfo{}, fmt.Errorf("server: invalid error value %v at appended row %d", v, i)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ap == nil {
		return AppendInfo{}, fmt.Errorf("server: dataset %s is not appendable (register with an err column)", d.ID)
	}
	res, err := d.ap.AppendRows(rows)
	if err != nil {
		return AppendInfo{}, err
	}
	start := len(d.ErrVec)
	errVec := make([]float64, 0, start+len(errs))
	errVec = append(append(errVec, d.ErrVec...), errs...)
	d.DS, d.Enc, d.ErrVec = res.DS, res.Enc, errVec
	d.Sig = core.DataSignature(res.Enc, errVec, nil)
	d.Gen++
	d.genEnd = append(d.genEnd, res.Enc.X.Rows())
	d.genAt = append(d.genAt, at)
	d.log = append(d.log, appendRecord{Gen: d.Gen, Res: res, Start: start, End: start + res.NewRows, At: at})
	if len(d.log) > appendLogCap {
		d.log = append([]appendRecord(nil), d.log[len(d.log)-appendLogCap:]...)
	}
	close(d.change)
	d.change = make(chan struct{})
	return AppendInfo{
		ID:         d.ID,
		Generation: d.Gen,
		Rows:       res.Enc.X.Rows(),
		NewRows:    res.NewRows,
		Grown:      res.Grown,
		Signature:  fmt.Sprintf("%016x", d.Sig),
	}, nil
}

// appendsSince returns the append records for generations (gen, current], in
// order, and whether the history is complete (false once the bounded log has
// evicted a needed record — the caller rebuilds from a snapshot instead).
func (d *datasetEntry) appendsSince(gen int) ([]appendRecord, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if gen >= d.Gen {
		return nil, true
	}
	need := d.Gen - gen
	if need > len(d.log) {
		return nil, false
	}
	out := d.log[len(d.log)-need:]
	if out[0].Gen != gen+1 {
		return nil, false
	}
	return append([]appendRecord(nil), out...), true
}

func (d *datasetEntry) info() DatasetInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DatasetInfo{
		ID:          d.ID,
		Name:        d.Name,
		Rows:        d.DS.NumRows(),
		Features:    d.DS.NumFeatures(),
		OneHotWidth: d.DS.OneHotWidth(),
		Signature:   fmt.Sprintf("%016x", d.Sig),
		Generation:  d.Gen,
		Appendable:  d.ap != nil,
	}
}

// datasetID derives the content address of a dataset from its signature.
func datasetID(sig uint64) string { return fmt.Sprintf("ds_%016x", sig) }

// registry is the in-memory dataset store. Entries are immutable once
// registered; re-registering identical content is an idempotent no-op that
// returns the existing entry.
type registry struct {
	mu   sync.RWMutex
	byID map[string]*datasetEntry
}

func newRegistry() *registry {
	return &registry{byID: make(map[string]*datasetEntry)}
}

// add registers an entry, returning the canonical entry and whether an
// identical one already existed.
func (r *registry) add(d *datasetEntry) (*datasetEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byID[d.ID]; ok {
		return old, true
	}
	r.byID[d.ID] = d
	return d, false
}

func (r *registry) get(id string) (*datasetEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byID[id]
	return d, ok
}

func (r *registry) list() []*datasetEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*datasetEntry, 0, len(r.byID))
	for _, d := range r.byID {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}

// registerOptions carries the query parameters of POST /v1/datasets.
type registerOptions struct {
	Name  string // display name; defaults to the id
	Label string // numeric label column used for model training
	Task  string // "class" (mlogit) or "reg" (linear); used with Label
	Err   string // column holding a precomputed error vector; overrides Label/Task
	Bins  int    // equi-width bins for continuous features (<= 0: 10)
}

// buildDataset turns an uploaded CSV stream into a registry entry. Two modes
// mirror the CLI workflows:
//
//   - error-column mode (err= query parameter): the named numeric column is
//     taken verbatim as the per-row error vector e and excluded from the
//     features — for callers that score their own models;
//   - training mode (label= plus task=): a model is fitted server-side on
//     the label column and e is its per-row loss, the TrainAndScore loop.
//
// The one-hot encoding happens here, once; every job on the dataset reuses
// it, which is the service's whole reason to exist over one-shot CLI runs.
func buildDataset(r io.Reader, opt registerOptions) (*datasetEntry, error) {
	if opt.Bins <= 0 {
		opt.Bins = 10
	}
	f, err := frame.ReadCSV(r)
	if err != nil {
		return nil, err
	}

	var (
		ds     *frame.Dataset
		errVec []float64
	)
	switch {
	case opt.Err != "":
		col, cerr := f.Column(opt.Err)
		if cerr != nil {
			return nil, fmt.Errorf("server: error column: %w", cerr)
		}
		if col.Kind != frame.Numeric {
			return nil, fmt.Errorf("server: error column %q must be numeric", opt.Err)
		}
		for i, v := range col.Floats {
			if v < 0 {
				return nil, fmt.Errorf("server: error column %q has negative value %v at row %d", opt.Err, v, i)
			}
		}
		errVec = append([]float64(nil), col.Floats...)
		// The label column (when named) is still extracted as Y but the
		// error column itself must not leak into the features.
		ds, err = frame.FromFrame(f, opt.Label, opt.Bins, opt.Err)
		if err != nil {
			return nil, err
		}
	case opt.Label != "":
		ds, err = frame.FromFrame(f, opt.Label, opt.Bins)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("server: dataset registration needs either label= (train a model server-side) or err= (precomputed error column)")
	}
	if ds.NumRows() == 0 {
		return nil, fmt.Errorf("server: dataset has no rows")
	}
	if ds.NumFeatures() == 0 {
		return nil, fmt.Errorf("server: dataset has no feature columns")
	}
	ds.Name = opt.Name

	enc, err := frame.OneHot(ds)
	if err != nil {
		return nil, err
	}
	if errVec == nil {
		errVec, err = trainErrVec(ds, enc, opt.Task)
		if err != nil {
			return nil, err
		}
	}
	return finishEntry(ds, enc, errVec, opt.Name, opt.Err)
}

// trainErrVec fits the requested model on the dataset and returns its
// per-row loss.
func trainErrVec(ds *frame.Dataset, enc *frame.Encoding, task string) ([]float64, error) {
	if ds.Y == nil {
		return nil, fmt.Errorf("server: dataset has no labels to train on")
	}
	switch task {
	case "reg":
		m, err := ml.TrainLinReg(enc.X, ds.Y, ml.LinRegConfig{})
		if err != nil {
			return nil, err
		}
		return ml.SquaredLoss(ds.Y, m.Predict(enc.X)), nil
	case "", "class":
		m, err := ml.TrainMlogit(enc.X, ds.Y, ml.MlogitConfig{})
		if err != nil {
			return nil, err
		}
		return ml.Inaccuracy(ds.Y, m.Predict(enc.X)), nil
	default:
		return nil, fmt.Errorf("server: unknown task %q (want class or reg)", task)
	}
}

// finishEntry computes the content address and assembles the entry.
// err-column registrations get an appender (the streaming path): appended
// rows carry their own error values, so no server-side model is involved.
func finishEntry(ds *frame.Dataset, enc *frame.Encoding, errVec []float64, name, errCol string) (*datasetEntry, error) {
	if len(errVec) != ds.NumRows() {
		return nil, fmt.Errorf("server: error vector length %d vs %d rows", len(errVec), ds.NumRows())
	}
	sig := core.DataSignature(enc, errVec, nil)
	id := datasetID(sig)
	if name == "" {
		name = id
	}
	ds.Name = name
	d := &datasetEntry{
		ID: id, Name: name, ErrCol: errCol, BaseSig: sig,
		DS: ds, Enc: enc, ErrVec: errVec, Sig: sig,
		genEnd: []int{ds.NumRows()},
		genAt:  []time.Time{time.Now()},
		change: make(chan struct{}),
	}
	if errCol != "" {
		ap, err := frame.NewAppender(ds, enc)
		if err == nil {
			d.ap = ap
		}
	}
	return d, nil
}

// parseAppendCSV parses the body of POST /v1/datasets/{id}/rows: a CSV
// document whose header names every feature column of the dataset plus its
// err column, in any order (extra columns are ignored, mirroring err-column
// registration). Returns the feature cells in dataset feature order plus the
// per-row error values.
func parseAppendCSV(r io.Reader, feats []frame.Feature, errCol string) ([][]string, []float64, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, nil, fmt.Errorf("server: reading append header: %w", err)
	}
	colOf := make(map[string]int, len(header))
	for i, name := range header {
		colOf[name] = i
	}
	featIdx := make([]int, len(feats))
	for j, f := range feats {
		i, ok := colOf[f.Name]
		if !ok {
			return nil, nil, fmt.Errorf("server: append body misses feature column %q", f.Name)
		}
		featIdx[j] = i
	}
	errIdx, ok := colOf[errCol]
	if !ok {
		return nil, nil, fmt.Errorf("server: append body misses error column %q", errCol)
	}
	var (
		rows [][]string
		errs []float64
	)
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("server: reading append row %d: %w", len(rows), err)
		}
		cells := make([]string, len(feats))
		for j, i := range featIdx {
			cells[j] = rec[i]
		}
		e, perr := strconv.ParseFloat(rec[errIdx], 64)
		if perr != nil {
			return nil, nil, fmt.Errorf("server: append row %d: error column: %v", len(rows), perr)
		}
		rows = append(rows, cells)
		errs = append(errs, e)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("server: append body has no rows")
	}
	return rows, errs, nil
}
