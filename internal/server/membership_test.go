package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/dist"
	"sliceline/internal/membership"
	"sliceline/internal/obs"
)

// mustAnnounce registers a worker with the registrar as slworker -join would.
func mustAnnounce(t *testing.T, reg *membership.Registrar, id, addr string, inc uint64) {
	t.Helper()
	if _, err := reg.Announce(membership.Announce{
		Member: membership.Member{ID: id, Addr: addr, Incarnation: inc},
	}); err != nil {
		t.Fatalf("announce %s: %v", id, err)
	}
}

// elasticReference runs the job's configuration against a single-member
// in-process elastic cluster: the fixed partition split makes its result the
// bit-exact expectation for any fleet size, including zero.
func elasticReference(t *testing.T, entry *datasetEntry, cfg core.Config) *core.Result {
	t.Helper()
	ref, err := dist.NewElasticCluster(func(_ context.Context, _ membership.Member) (dist.Worker, error) {
		return &dist.InProcessWorker{}, nil
	}, dist.Options{PlacementSeed: entry.Sig})
	if err != nil {
		t.Fatalf("reference cluster: %v", err)
	}
	defer ref.Close()
	ref.ApplyView(context.Background(), membership.View{
		Version: 1,
		Members: []membership.Member{{ID: "ref", Addr: "ref:0", Incarnation: 1}},
	})
	cfg.Evaluator = ref
	want, err := core.RunEncodedContext(context.Background(), entry.Enc, entry.DS.Features, entry.ErrVec, cfg)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return want
}

func fetchCluster(t *testing.T, url string) (ClusterInfo, int) {
	t.Helper()
	resp, err := http.Get(url + "/v1/cluster")
	if err != nil {
		t.Fatalf("GET /v1/cluster: %v", err)
	}
	defer resp.Body.Close()
	var ci ClusterInfo
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ci); err != nil {
			t.Fatalf("decode cluster info: %v", err)
		}
	}
	return ci, resp.StatusCode
}

// TestElasticFleetEndToEnd drives the membership path through the HTTP
// surface: workers announce to a registrar instead of appearing in
// DistWorkers, jobs place partitions on whoever is in the view at run time,
// and a worker joining between jobs is picked up without reconfiguration.
func TestElasticFleetEndToEnd(t *testing.T) {
	addrs := startDistWorkers(t, 2)
	reg := membership.NewRegistrar(membership.RegistrarConfig{})
	mustAnnounce(t, reg, "w1", addrs[0], 1)

	metrics := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Pool: 2, QueueDepth: 8, Membership: reg, Metrics: metrics})

	csv := testCSV(60)
	info, code := registerCSV(t, ts, csv, "err=err&name=fleet")
	if code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	entry, err := buildDataset(strings.NewReader(csv), registerOptions{Err: "err", Name: "fleet"})
	if err != nil {
		t.Fatalf("direct buildDataset: %v", err)
	}
	rows := entry.DS.NumRows()

	// The operator view reflects the announced fleet.
	ci, code := fetchCluster(t, ts.URL)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/cluster: status %d", code)
	}
	if len(ci.Members) != 1 || ci.Members[0].ID != "w1" {
		t.Fatalf("cluster members: %+v", ci.Members)
	}

	// Healthz advertises the elastic fleet.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !h.Elastic {
		t.Fatal("healthz did not report the elastic fleet")
	}

	// EvalAuto must select distributed evaluation off the registrar alone
	// (DistWorkers is empty).
	spec := JobSpec{Dataset: info.ID, Evaluator: EvalAuto, Config: JobConfig{K: 4, Sigma: 3}}
	ji, code, body := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	if ji.Evaluator != EvalDist {
		t.Fatalf("EvalAuto with a registrar resolved to %q, want %q", ji.Evaluator, EvalDist)
	}
	done := waitJob(t, ts, ji.ID, 30*time.Second)
	if done.Status != string(jobDone) {
		t.Fatalf("job finished %q: %s", done.Status, done.Error)
	}
	want := elasticReference(t, entry, spec.Config.ToCore().WithDefaults(rows))
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalResult(t, done.Result) != canonicalResult(t, wantJSON) {
		t.Fatal("one-worker fleet result differs from the single-member reference")
	}

	// A second worker joins between jobs; the next job's fleet has both and
	// the result bits do not move.
	mustAnnounce(t, reg, "w2", addrs[1], 1)
	if ci, _ := fetchCluster(t, ts.URL); len(ci.Members) != 2 {
		t.Fatalf("cluster members after join: %+v", ci.Members)
	}
	spec2 := JobSpec{Dataset: info.ID, Evaluator: EvalDist, Config: JobConfig{K: 5, Sigma: 2}}
	ji2, code, body := postJob(t, ts, spec2)
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: status %d: %s", code, body)
	}
	done2 := waitJob(t, ts, ji2.ID, 30*time.Second)
	if done2.Status != string(jobDone) {
		t.Fatalf("job 2 finished %q: %s", done2.Status, done2.Error)
	}
	want2 := elasticReference(t, entry, spec2.Config.ToCore().WithDefaults(rows))
	want2JSON, err := json.Marshal(want2)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalResult(t, done2.Result) != canonicalResult(t, want2JSON) {
		t.Fatal("two-worker fleet result differs from the single-member reference")
	}
}

// TestElasticEmptyFleetJobDegrades is the full-fleet-loss acceptance path at
// the service level: a distributed job against a registrar nobody has joined
// completes on the driver (degraded), bit-identical, instead of erroring.
func TestElasticEmptyFleetJobDegrades(t *testing.T) {
	reg := membership.NewRegistrar(membership.RegistrarConfig{})
	metrics := obs.NewRegistry()
	_, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 4, Membership: reg, Metrics: metrics})

	csv := testCSV(48)
	info, code := registerCSV(t, ts, csv, "err=err&name=empty")
	if code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	entry, err := buildDataset(strings.NewReader(csv), registerOptions{Err: "err", Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}

	spec := JobSpec{Dataset: info.ID, Evaluator: EvalDist, Config: JobConfig{K: 4, Sigma: 3}}
	ji, code, body := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	done := waitJob(t, ts, ji.ID, 30*time.Second)
	if done.Status != string(jobDone) {
		t.Fatalf("empty-fleet job must degrade, finished %q: %s", done.Status, done.Error)
	}

	want := elasticReference(t, entry, spec.Config.ToCore().WithDefaults(entry.DS.NumRows()))
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if canonicalResult(t, done.Result) != canonicalResult(t, wantJSON) {
		t.Fatal("degraded result differs from the fleet reference")
	}
	if n := metrics.Counter("sl_dist_degraded_total", "").Value(); n == 0 {
		t.Fatal("degraded counter never incremented")
	}
}

// TestClusterEndpointRequiresMembership: without a registrar the endpoint is
// not mounted.
func TestClusterEndpointRequiresMembership(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 2})
	if _, code := fetchCluster(t, ts.URL); code != http.StatusNotFound {
		t.Fatalf("GET /v1/cluster without membership: status %d, want 404", code)
	}
}
