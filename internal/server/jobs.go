package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/dist"
	"sliceline/internal/obs"
)

// jobState is a job's lifecycle position. Transitions are strictly
// queued → running → {done, failed, cancelled}, except that a queued job
// can jump straight to cancelled (DELETE before a worker picked it up) and
// a cache hit is born done.
type jobState string

// Job lifecycle states as reported in JobInfo.Status.
const (
	jobQueued    jobState = "queued"
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

func (s jobState) terminal() bool {
	return s == jobDone || s == jobFailed || s == jobCancelled
}

// errMonitorLimit rejects a monitor submission once the resident cap is
// reached (HTTP 429 with code monitor_limit).
var errMonitorLimit = errors.New("server: monitor limit reached")

// job is one slice-finding request moving through the pool — or, in monitor
// mode, resident beside it.
type job struct {
	id   string
	spec JobSpec
	// ds is the live registry entry; only monitors touch it after
	// submission (to wait for appends). Batch execution reads snap.
	ds *datasetEntry
	// snap is the dataset generation captured at submission: batch jobs
	// evaluate exactly this generation no matter what is appended
	// meanwhile, and the cache key and journal record pin its signature.
	snap dsSnapshot
	// baseSnap is the baseline dataset's snapshot for diff jobs: its error
	// vector supplies the baseline model's per-row errors.
	baseSnap dsSnapshot
	cfg      core.Config // resolved via WithDefaults; hooks unset
	key      cacheKey
	useDist  bool
	monitor  bool
	resume   bool // restored from the journal: resume from the checkpoint

	// ctx is created at submission so DELETE can cancel a job that is
	// still queued; the worker hands it to the enumeration.
	ctx    context.Context
	cancel context.CancelFunc

	enqueued time.Time

	mu         sync.Mutex
	state      jobState
	cached     bool
	result     *core.Result
	resultJSON []byte
	errMsg     string
	gen        int // dataset generation resultJSON covers (monitor refreshes)

	events *eventLog
	done   chan struct{} // closed on terminal state
}

func (j *job) info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:      j.id,
		Dataset: j.spec.Dataset,
		Status:  string(j.state),
		Mode:    j.spec.Mode,
		Cached:  j.cached,
		Error:   j.errMsg,
	}
	if j.useDist {
		info.Evaluator = EvalDist
	} else {
		info.Evaluator = EvalLocal
	}
	// A monitor carries its latest refreshed result while still running.
	if j.state == jobDone || (j.monitor && j.resultJSON != nil) {
		info.Result = json.RawMessage(j.resultJSON)
		info.Generation = j.gen
	}
	return info
}

// setRefreshed records a monitor's latest maintained result (non-terminal).
func (j *job) setRefreshed(res *core.Result, js []byte, gen int) {
	j.mu.Lock()
	j.result = res
	j.resultJSON = js
	j.gen = gen
	j.mu.Unlock()
}

func (j *job) currentState() jobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// localOnly reports whether a spec's workload is pinned to in-process
// evaluation: monitors (incremental maintenance), windowed runs (row
// weights), and diff runs (weighted lowering over two error vectors).
// validate rejects an explicit "dist" for all three; auto must not pick it
// either.
func localOnly(spec JobSpec) bool {
	return spec.Mode == ModeMonitor || spec.Mode == ModeDiff || spec.Window != nil
}

// jobCacheKey builds a spec's result-cache identity from its resolved
// configuration and dataset signatures. The significance level is resolved
// to the default here so an explicit 0.05 and an absent field key
// identically — they produce identical results.
func jobCacheKey(spec JobSpec, cfg core.Config, dataSig, baseSig uint64) cacheKey {
	sig := cfg.Significance
	if sig == 0 {
		sig = core.DefaultSignificance
	}
	return cacheKey{
		dataSig:  dataSig,
		cfgSig:   core.ConfigSignature(cfg),
		maxLevel: cfg.MaxLevel,
		mode:     spec.Mode,
		baseSig:  baseSig,
		sigLevel: sig,
	}
}

// submit validates a spec against the registry, resolves its configuration,
// consults the result cache, and either completes the job instantly (cache
// hit), enqueues it, or rejects it. The returned HTTP status is 202 on
// acceptance, 404/400/429/503 on the corresponding failures.
func (s *Server) submit(spec JobSpec) (*job, int, error) {
	ds, ok := s.reg.get(spec.Dataset)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("server: unknown dataset %q", spec.Dataset)
	}
	// Jobs evaluate a point-in-time snapshot: appends arriving after this
	// line do not change what this job computes.
	snap := ds.snapshot()

	useDist := spec.Evaluator == EvalDist ||
		(spec.Evaluator == EvalAuto && !localOnly(spec) && s.distCapable())
	if useDist && !s.distCapable() {
		return nil, http.StatusBadRequest, fmt.Errorf("server: job requests distributed evaluation but the server has no workers or membership configured")
	}

	if spec.Mode == ModeMonitor {
		return s.submitMonitor(spec, ds, snap)
	}

	// Diff jobs reference a second dataset for the baseline error vector; it
	// must exist and cover the same rows as the job's dataset.
	var baseSnap dsSnapshot
	if spec.Mode == ModeDiff {
		base, ok := s.reg.get(spec.Baseline)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("server: unknown baseline dataset %q", spec.Baseline)
		}
		baseSnap = base.snapshot()
		if got, want := len(baseSnap.ErrVec), snap.DS.NumRows(); got != want {
			return nil, http.StatusBadRequest, fmt.Errorf("server: baseline dataset %q has %d rows, job dataset %q has %d; diff requires the same rows", spec.Baseline, got, spec.Dataset, want)
		}
	}

	cfg := spec.Config.ToCore().WithDefaults(snap.DS.NumRows())
	if spec.Mode == ModeAnytime {
		cfg.Budget = time.Duration(spec.BudgetMS) * time.Millisecond
	}
	if err := cfg.Validate(); err != nil {
		return nil, http.StatusBadRequest, err
	}
	j := &job{
		spec:     spec,
		ds:       ds,
		snap:     snap,
		baseSnap: baseSnap,
		cfg:      cfg,
		key:      jobCacheKey(spec, cfg, snap.Sig, baseSnap.Sig),
		useDist:  useDist,
		state:    jobQueued,
		events:   newEventLog(),
		done:     make(chan struct{}),
	}

	// Result cache: an identical completed run answers without touching
	// the pool (and without emitting any new core.run span). Windowed jobs
	// skip the cache entirely — their answer depends on wall-clock time,
	// not just (data, config) — and so do anytime jobs, whose stopping
	// point depends on how fast this machine happened to enumerate.
	if spec.Window == nil && spec.Mode != ModeAnytime {
		if hit, ok := s.cache.get(j.key); ok {
			j.id = s.newJobID()
			j.cached = true
			j.state = jobDone
			j.result = hit.res
			j.resultJSON = hit.json
			j.gen = snap.Gen
			j.events.replay(hit.res.Levels)
			j.events.finish(string(jobDone), "")
			close(j.done)
			s.addJob(j)
			s.ob.submitted.Inc()
			s.ob.cacheHits.Inc()
			s.ob.done.Inc()
			// Serving beats journaling; the next save retries the file.
			s.journalFailed("cache hit", s.journal.saveJob(j))
			return j, http.StatusAccepted, nil
		}
		s.ob.cacheMiss.Inc()
	}

	timeout := s.cfg.JobTimeout
	if spec.TimeoutMS > 0 {
		timeout = time.Duration(spec.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		j.ctx, j.cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		j.ctx, j.cancel = context.WithCancel(context.Background())
	}

	// Admission control. The queue send and the closed check share s.mu
	// with Shutdown's close(s.queue), so a submission can never race a
	// drain into a send-on-closed-channel panic.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		j.cancel()
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server: draining, not accepting jobs")
	}
	j.id = s.newJobID()
	j.enqueued = time.Now()
	select {
	case s.queue <- j:
	default:
		s.mu.Unlock()
		j.cancel()
		s.ob.rejected.Inc()
		return nil, http.StatusTooManyRequests, fmt.Errorf("server: job queue full (%d waiting); retry later", cap(s.queue))
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	s.ob.submitted.Inc()
	s.ob.queueDepth.Add(1)
	// The job is already queued; journaling is best-effort per write (the
	// terminal save will retry the file).
	s.journalFailed("enqueue", s.journal.saveJob(j))
	return j, http.StatusAccepted, nil
}

func (s *Server) newJobID() string {
	return fmt.Sprintf("job-%d", s.nextID.Add(1))
}

// addJob registers a job in the table without touching the queue (cache
// hits, restored terminal jobs).
func (s *Server) addJob(j *job) {
	s.mu.Lock()
	if j.id == "" {
		j.id = s.newJobID()
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
}

func (s *Server) getJob(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) listJobs() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// cancelJob implements DELETE /v1/jobs/{id}: it cancels the job's context
// and, for still-queued jobs, finalizes immediately (the worker skips
// cancelled jobs at dequeue, so the slot is never consumed). Cancelling a
// terminal job is a no-op that reports the existing state.
func (s *Server) cancelJob(j *job) jobState {
	j.mu.Lock()
	st := j.state
	if st.terminal() {
		j.mu.Unlock()
		return st
	}
	if st == jobQueued {
		j.state = jobCancelled
		j.errMsg = "cancelled while queued"
		j.mu.Unlock()
		if j.cancel != nil {
			j.cancel()
		}
		j.events.finish(string(jobCancelled), "cancelled while queued")
		close(j.done)
		s.ob.cancelled.Inc()
		s.ob.queueDepth.Add(-1)
		s.journalFailed("cancel", s.journal.saveJob(j))
		return jobCancelled
	}
	// Running: cancel the context; the worker observes the enumeration
	// abort and finalizes.
	j.mu.Unlock()
	if j.cancel != nil {
		j.cancel()
	}
	return jobRunning
}

// worker is one pool goroutine: it drains the queue until Shutdown closes
// it, skipping jobs that were cancelled while queued.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		j.mu.Lock()
		if j.state != jobQueued {
			// Cancelled while waiting; its terminal state is already set.
			j.mu.Unlock()
			continue
		}
		j.state = jobRunning
		j.mu.Unlock()
		s.ob.queueDepth.Add(-1)
		s.ob.queueSecs.Observe(time.Since(j.enqueued).Seconds())
		s.runOne(j)
	}
}

// runOne executes one job and finalizes it.
func (s *Server) runOne(j *job) {
	s.ob.inflight.Add(1)
	start := time.Now()
	res, err := s.runJob(j.ctx, j)
	s.ob.inflight.Add(-1)
	s.ob.jobSecs.Observe(time.Since(start).Seconds())
	j.cancel()
	s.finishJob(j, res, err)
}

// finishJob records a job's terminal state, feeds the result cache, and
// journals the outcome.
func (s *Server) finishJob(j *job, res *core.Result, err error) {
	var (
		st  jobState
		msg string
	)
	switch {
	case err == nil:
		st = jobDone
	case errors.Is(err, context.Canceled):
		st, msg = jobCancelled, "cancelled"
		s.ob.cancelled.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		st, msg = jobFailed, "deadline exceeded: "+err.Error()
		s.ob.failed.Inc()
	default:
		st, msg = jobFailed, err.Error()
		s.ob.failed.Inc()
	}

	var js []byte
	if st == jobDone {
		var merr error
		js, merr = json.Marshal(res)
		if merr != nil {
			st, msg = jobFailed, "encoding result: "+merr.Error()
			s.ob.failed.Inc()
		}
	}

	j.mu.Lock()
	j.state = st
	j.errMsg = msg
	if st == jobDone {
		j.result = res
		j.resultJSON = js
		j.gen = j.snap.Gen
	}
	j.mu.Unlock()

	if st == jobDone {
		// Windowed results are a function of wall-clock time, monitor
		// results of a moving generation, anytime results of this
		// machine's enumeration speed; none may answer a later
		// submission from the cache.
		if j.spec.Window == nil && !j.monitor && j.spec.Mode != ModeAnytime {
			s.cache.put(j.key, res, js)
		}
		s.ob.done.Inc()
		s.journal.dropCheckpoint(j.id)
	}
	j.events.finish(string(st), msg)
	close(j.done)
	s.journalFailed("finish", s.journal.saveJob(j))
}

// journalErrorLogWindow spaces journal-failure log lines: a dead disk fails
// every write, and one line per window tells the story as well as thousands.
const journalErrorLogWindow = 10 * time.Second

// journalFailed records a failed journal write: every failure increments
// sl_server_journal_errors_total, and at most one log line per window names
// the failing site. A nil error is a no-op, so call sites stay one line.
func (s *Server) journalFailed(site string, err error) {
	if err == nil {
		return
	}
	s.ob.journalErrs.Inc()
	now := time.Now().UnixNano()
	last := s.journalLogAt.Load()
	if now-last >= int64(journalErrorLogWindow) && s.journalLogAt.CompareAndSwap(last, now) {
		log.Printf("server: journal write failed (%s): %v", site, err)
	}
}

// runJobReal is the production job runner (Server.runJob): it wires the
// job's event log, checkpoint path, observability and evaluator into the
// core enumeration. Distributed jobs serialize on distMu because TCP
// workers key partitions by id in one shared map — two concurrent clusters
// would overwrite each other's shipped partitions.
func (s *Server) runJobReal(ctx context.Context, j *job) (*core.Result, error) {
	cfg := j.cfg
	cfg.Tracer = s.cfg.Tracer
	cfg.Metrics = s.cfg.Metrics
	cfg.OnLevel = j.events.addLevel
	if s.journal != nil {
		cfg.CheckpointPath = s.journal.checkpointPath(j.id)
		cfg.Resume = j.resume
	}
	// A diff job runs two enumerations (regressions, improvements); sharing
	// one checkpoint file between them would corrupt resume, so diff jobs
	// run checkpoint-free and restart from scratch after a crash.
	if j.spec.Mode == ModeDiff {
		cfg.CheckpointPath = ""
		cfg.Resume = false
	}
	// Anytime jobs stream their improving top-K and certified gap over the
	// job's event log after every completed level.
	if j.spec.Mode == ModeAnytime {
		events := j.events
		cfg.OnSnapshot = func(snap core.Snapshot) {
			topK, err := json.Marshal(snap.TopK)
			if err != nil {
				return
			}
			events.addSnapshot(snapshotEvent{
				Level:     snap.Level,
				Gap:       snap.Gap,
				ElapsedMS: snap.Elapsed.Milliseconds(),
				TopK:      topK,
			})
		}
	}

	// One span tree per job: the job span carries the context into the
	// enumeration, so core.run (and through it every level, eval and RPC
	// span) parents under it.
	sp := obs.Start(s.cfg.Tracer, "server.job")
	sp.SetStr("job", j.id)
	sp.SetStr("dataset", j.snap.ID)
	sp.SetBool("dist", j.useDist)
	sp.SetBool("resume", j.resume)
	defer sp.End()
	ctx = obs.ContextWith(ctx, sp)

	if j.useDist {
		opts := s.cfg.Dist
		opts.Tracer = s.cfg.Tracer
		opts.Metrics = s.cfg.Metrics
		if s.cfg.Membership != nil {
			// Elastic fleet: partition keys are content-addressed by the
			// dataset signature of the job's generation, so concurrent jobs
			// on shared workers cannot collide — and a partition shipped for
			// an earlier generation can never answer for a newer one. The
			// cluster follows the registrar for the job's duration, so
			// members that join, crash, or flap mid-run are absorbed by
			// rebalancing.
			opts.PlacementSeed = j.snap.Sig
			cluster, err := dist.NewElasticCluster(dist.MemberDialer(dist.DialOptions{}), opts)
			if err != nil {
				return nil, fmt.Errorf("server: building elastic cluster: %w", err)
			}
			defer cluster.Close()
			stop := cluster.Follow(ctx, s.cfg.Membership)
			defer stop()
			cfg.Evaluator = cluster
		} else {
			s.distMu.Lock()
			defer s.distMu.Unlock()
			cluster, err := dialCluster(s.cfg.DistWorkers, opts)
			if err != nil {
				return nil, fmt.Errorf("server: dialing workers: %w", err)
			}
			defer cluster.Close()
			cfg.Evaluator = cluster
		}
	}
	if j.spec.Mode == ModeDiff {
		return core.RunDiffEncodedContext(ctx, j.snap.Enc, j.snap.DS.Features, j.baseSnap.ErrVec, j.snap.ErrVec, cfg)
	}
	if j.spec.Window != nil {
		w, err := windowWeights(j.snap, j.spec.Window, time.Now())
		if err != nil {
			return nil, err
		}
		return core.RunEncodedWeightedContext(ctx, j.snap.Enc, j.snap.DS.Features, j.snap.ErrVec, w, cfg)
	}
	return core.RunEncodedContext(ctx, j.snap.Enc, j.snap.DS.Features, j.snap.ErrVec, cfg)
}

// windowWeights turns a WindowSpec into a 0/1 row-weight vector over the
// snapshot: rows outside the window weigh zero, so the weighted run computes
// "worst slices over the recent rows" — bit-identical to running on the
// suffix alone, because zero-weight rows contribute exact +0.0 terms to every
// aggregate. Duration bounds resolve at append-batch granularity: generation
// g's rows arrived at snap.GenAt[g] and occupy [GenEnd[g-1], GenEnd[g]).
func windowWeights(snap dsSnapshot, w *WindowSpec, now time.Time) ([]float64, error) {
	n := snap.DS.NumRows()
	lo := 0
	if w.LastRows > 0 && n-w.LastRows > lo {
		lo = n - w.LastRows
	}
	if w.LastMS > 0 {
		cutoff := now.Add(-time.Duration(w.LastMS) * time.Millisecond)
		tlo := n // nothing recent enough until proven otherwise
		for g := len(snap.GenAt) - 1; g >= 0; g-- {
			if snap.GenAt[g].Before(cutoff) {
				break
			}
			if g == 0 {
				tlo = 0
			} else {
				tlo = snap.GenEnd[g-1]
			}
		}
		if tlo > lo {
			lo = tlo
		}
	}
	if lo >= n {
		return nil, fmt.Errorf("server: window selects no rows (dataset has %d, all older than the window)", n)
	}
	weights := make([]float64, n)
	for i := lo; i < n; i++ {
		weights[i] = 1
	}
	return weights, nil
}

// dialCluster connects to every worker address and assembles the cluster.
func dialCluster(addrs []string, opts dist.Options) (*dist.Cluster, error) {
	workers := make([]dist.Worker, 0, len(addrs))
	for _, a := range addrs {
		w, err := dist.Dial(a)
		if err != nil {
			for _, prev := range workers {
				if c, ok := prev.(*dist.RemoteWorker); ok {
					c.Close()
				}
			}
			return nil, err
		}
		workers = append(workers, w)
	}
	return dist.NewClusterOpts(workers, opts)
}
