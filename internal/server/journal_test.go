package server

import (
	"context"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"sliceline/internal/obs"
)

// TestJournalRestartReservesCompletedJobs runs a job to completion on a
// journaled server, restarts from the same directory, and verifies the
// dataset, the job record, and the primed result cache all survive.
func TestJournalRestartReservesCompletedJobs(t *testing.T) {
	dir := t.TempDir()
	csv := testCSV(40)
	spec := JobConfig{K: 4, Sigma: 3}

	_, ts := newTestServer(t, Config{JournalDir: dir})
	info, code := registerCSV(t, ts, csv, "err=err&name=journaled")
	if code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	j, code, body := postJob(t, ts, JobSpec{Dataset: info.ID, Config: spec})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", code, body)
	}
	done := waitJob(t, ts, j.ID, 30*time.Second)
	if done.Status != string(jobDone) {
		t.Fatalf("job finished %q: %s", done.Status, done.Error)
	}
	// (newTestServer's cleanup shuts this instance down at test end; the
	// journal files are already on disk, so the restart below is valid.)

	// Restart from the same journal.
	reg := obs.NewRegistry()
	s2, ts2 := newTestServer(t, Config{JournalDir: dir, Metrics: reg})
	if s2.reg.len() != 1 {
		t.Fatalf("restarted registry holds %d datasets, want 1", s2.reg.len())
	}
	restored := getJob(t, ts2, j.ID)
	if restored.Status != string(jobDone) {
		t.Fatalf("restored job status %q, want done", restored.Status)
	}
	if canonicalResult(t, restored.Result) != canonicalResult(t, done.Result) {
		t.Error("restored result differs from the original")
	}

	// The restored result must have primed the cache: an identical
	// submission is served without a worker.
	rejob, code, _ := postJob(t, ts2, JobSpec{Dataset: info.ID, Config: spec})
	if code != http.StatusAccepted || !rejob.Cached || rejob.Status != string(jobDone) {
		t.Errorf("post-restart resubmission: status=%d cached=%v state=%q, want 202 cached done",
			code, rejob.Cached, rejob.Status)
	}
	if v := reg.Counter("sl_server_cache_hits_total", "").Value(); v != 1 {
		t.Errorf("sl_server_cache_hits_total = %d, want 1", v)
	}

	// SSE replay still reports every lattice level after the restart.
	levels, status := readSSE(t, ts2, j.ID)
	if levels == 0 || status != string(jobDone) {
		t.Errorf("restored SSE: %d levels, status %q", levels, status)
	}
}

// TestJournalRestartResumesUnfinishedJobs simulates a crash mid-job: a job
// record journaled in the running state (with no checkpoint yet) must be
// re-enqueued on restart and run to completion.
func TestJournalRestartResumesUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	csv := testCSV(40)

	// First life: only a dataset registration.
	_, ts := newTestServer(t, Config{JournalDir: dir})
	info, code := registerCSV(t, ts, csv, "err=err")
	if code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}

	// Forge the crash artifact: a job that died while running.
	rec := &journalJob{
		Version: journalVersion,
		ID:      "job-7",
		Spec:    JobSpec{Dataset: info.ID, Config: JobConfig{K: 4, Sigma: 3}},
		Status:  string(jobRunning),
	}
	if err := writeGob(filepath.Join(dir, rec.ID+journalJobSuffix), rec); err != nil {
		t.Fatalf("forging journal record: %v", err)
	}

	reg := obs.NewRegistry()
	_, ts2 := newTestServer(t, Config{JournalDir: dir, Metrics: reg})
	got := waitJob(t, ts2, "job-7", 30*time.Second)
	if got.Status != string(jobDone) {
		t.Fatalf("resumed job finished %q: %s", got.Status, got.Error)
	}
	if v := reg.Counter("sl_server_jobs_resumed_total", "").Value(); v != 1 {
		t.Errorf("sl_server_jobs_resumed_total = %d, want 1", v)
	}

	// Fresh submissions continue the ID sequence past the restored record.
	next, code, _ := postJob(t, ts2, JobSpec{Dataset: info.ID, Config: JobConfig{K: 5, Sigma: 3}})
	if code != http.StatusAccepted {
		t.Fatalf("post-restart submission: status %d", code)
	}
	if seq := jobSeq(next.ID); seq <= 7 {
		t.Errorf("post-restart job id %s does not continue the sequence", next.ID)
	}
}

// TestJournalRestartFailsJobWithMissingDataset covers the one restore path
// that cannot make progress: a journaled job whose dataset file is gone.
func TestJournalRestartFailsJobWithMissingDataset(t *testing.T) {
	dir := t.TempDir()
	rec := &journalJob{
		Version: journalVersion,
		ID:      "job-1",
		Spec:    JobSpec{Dataset: "ds_feedfacecafebeef", Config: JobConfig{K: 4}},
		Status:  string(jobQueued),
	}
	if err := writeGob(filepath.Join(dir, rec.ID+journalJobSuffix), rec); err != nil {
		t.Fatalf("forging journal record: %v", err)
	}
	_, ts := newTestServer(t, Config{JournalDir: dir})
	got := waitJob(t, ts, "job-1", 5*time.Second)
	if got.Status != string(jobFailed) {
		t.Errorf("orphaned job status %q, want failed", got.Status)
	}
}

// TestJournalCheckpointWrittenAndDropped verifies the per-job enumeration
// checkpoint path is wired through: it must not outlive a completed job.
func TestJournalCheckpointWrittenAndDropped(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{JournalDir: dir})
	info, _ := registerCSV(t, ts, testCSV(40), "err=err")
	j, _, _ := postJob(t, ts, JobSpec{Dataset: info.ID, Config: JobConfig{K: 4, Sigma: 3}})
	done := waitJob(t, ts, j.ID, 30*time.Second)
	if done.Status != string(jobDone) {
		t.Fatalf("job finished %q", done.Status)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.ck"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("checkpoint files survive job completion: %v", matches)
	}
}

// TestShutdownDeadlineCancelsJobs covers the forced-drain path: when the
// Shutdown context expires, running jobs are cancelled rather than awaited.
func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	s, err := New(Config{Pool: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	stub := newBlockingStub(s, 8)
	defer close(stub.release)
	ts := newHTTPTestServer(t, s)
	info, _ := registerCSV(t, ts, testCSV(12), "err=err")
	j, _, _ := postJob(t, ts, JobSpec{Dataset: info.ID})
	<-stub.started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want context.DeadlineExceeded", err)
	}
	if got := getJob(t, ts, j.ID); got.Status != string(jobCancelled) {
		t.Errorf("in-flight job after forced drain: %q, want cancelled", got.Status)
	}
}
