package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sliceline/internal/core"
)

func newShutdownCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 15*time.Second)
}

// appendCSV renders one append batch: rows cycle through the planted-slice
// pattern of testCSV, offset so batches differ, with an optional extra row
// carrying a brand-new dev value (domain growth).
func appendBatchCSV(offset, rows int, growDev string) string {
	var b strings.Builder
	b.WriteString("dev,os,region,err\n")
	for i := offset; i < offset+rows; i++ {
		dev := fmt.Sprintf("d%d", i%4)
		os := fmt.Sprintf("o%d", i%3)
		region := fmt.Sprintf("r%d", i%2)
		e := 0.1
		if i%4 == 0 && i%3 == 0 {
			e = 1.0
		}
		fmt.Fprintf(&b, "%s,%s,%s,%g\n", dev, os, region, e)
	}
	if growDev != "" {
		fmt.Fprintf(&b, "%s,o0,r0,0.9\n", growDev)
	}
	return b.String()
}

func postAppend(t *testing.T, ts *httptest.Server, id, csv string) (AppendInfo, int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/datasets/"+id+"/rows", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatalf("POST rows: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var info AppendInfo
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &info); err != nil {
			t.Fatalf("decoding append info: %v (%s)", err, raw)
		}
	}
	return info, resp.StatusCode, string(raw)
}

// decodeEnvelope asserts a response body is the JSON error envelope and
// returns its code.
func decodeEnvelope(t *testing.T, body string) string {
	t.Helper()
	var env apiError
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("response is not the error envelope: %v (%s)", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope misses code or message: %s", body)
	}
	return env.Error.Code
}

// sseResult is one decoded monitor "result" SSE event.
type sseResult struct {
	ev  resultEvent
	end string // terminal status instead, when the stream finished
}

// streamResults opens a job's SSE stream and forwards every "result" event
// (and finally the terminal status) on the returned channel until the stream
// ends or the test finishes.
func streamResults(t *testing.T, ts *httptest.Server, id string) <-chan sseResult {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	out := make(chan sseResult, 64)
	go func() {
		defer close(out)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		event := ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data := strings.TrimPrefix(line, "data: ")
				switch event {
				case "result":
					var ev resultEvent
					if err := json.Unmarshal([]byte(data), &ev); err == nil {
						out <- sseResult{ev: ev}
					}
				case "status":
					var te terminalEvent
					if err := json.Unmarshal([]byte(data), &te); err == nil {
						out <- sseResult{end: te.Status}
					}
					return
				}
			}
		}
	}()
	return out
}

func nextResult(t *testing.T, ch <-chan sseResult, wantGen int) resultEvent {
	t.Helper()
	select {
	case r, ok := <-ch:
		if !ok || r.end != "" {
			t.Fatalf("stream ended (%q) while waiting for generation %d", r.end, wantGen)
		}
		if r.ev.Generation != wantGen {
			t.Fatalf("result event for generation %d, want %d", r.ev.Generation, wantGen)
		}
		return r.ev
	case <-time.After(30 * time.Second):
		t.Fatalf("no result event for generation %d", wantGen)
	}
	return resultEvent{}
}

// TestStreamingMonitorEndToEnd is the streaming tentpole test: a resident
// monitor job must re-emit the maintained top-K after every append, and each
// emitted result must be bit-identical to a from-scratch run (BitsetOn
// reference kernel) over the accumulated encoding of that generation —
// including appends that grow a feature domain.
func TestStreamingMonitorEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 2, QueueDepth: 8})
	info, code := registerCSV(t, ts, testCSV(24), "name=stream&err=err")
	if code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	if !info.Appendable || info.Generation != 0 {
		t.Fatalf("streaming registration: appendable=%v generation=%d", info.Appendable, info.Generation)
	}

	spec := fmt.Sprintf(`{"spec_version":1,"dataset":%q,"mode":"monitor","config":{"k":4,"sigma":2,"bitset":"on"}}`, info.ID)
	jinfo, code, raw := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit monitor: status %d (%s)", code, raw)
	}
	if jinfo.Status != string(jobRunning) || jinfo.Mode != ModeMonitor {
		t.Fatalf("monitor info: status=%q mode=%q", jinfo.Status, jinfo.Mode)
	}

	entry, ok := s.reg.get(info.ID)
	if !ok {
		t.Fatal("registered dataset not in registry")
	}
	refCfg := core.Config{K: 4, Sigma: 2, BitsetEval: core.BitsetOn}
	reference := func(snap dsSnapshot) string {
		res, err := core.RunEncoded(snap.Enc, snap.DS.Features, snap.ErrVec, refCfg)
		if err != nil {
			t.Fatalf("reference run: %v", err)
		}
		js, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal reference: %v", err)
		}
		return canonicalResult(t, js)
	}

	results := streamResults(t, ts, jinfo.ID)
	ev := nextResult(t, results, 0)
	if got, want := canonicalResult(t, ev.Result), reference(entry.snapshot()); got != want {
		t.Fatalf("generation 0 monitor result differs from reference run:\n got %s\nwant %s", got, want)
	}

	rows := 24
	for gen := 1; gen <= 5; gen++ {
		grow := ""
		if gen == 3 {
			grow = "d9" // new dev value: domain growth mid-stream
		}
		batch := appendBatchCSV(24+gen*7, 6, grow)
		ainfo, code, raw := postAppend(t, ts, info.ID, batch)
		if code != http.StatusOK {
			t.Fatalf("append %d: status %d (%s)", gen, code, raw)
		}
		wantNew := 6
		if grow != "" {
			wantNew = 7
		}
		rows += wantNew
		if ainfo.Generation != gen || ainfo.NewRows != wantNew || ainfo.Rows != rows {
			t.Fatalf("append %d info: %+v (want gen=%d new=%d rows=%d)", gen, ainfo, gen, wantNew, rows)
		}
		if grow != "" && len(ainfo.Grown) == 0 {
			t.Fatalf("append %d grew the dev domain but Grown is empty", gen)
		}
		snap := entry.snapshot() // the test appends sequentially, so this is generation gen
		if snap.Gen != gen {
			t.Fatalf("snapshot generation %d, want %d", snap.Gen, gen)
		}
		ev := nextResult(t, results, gen)
		if ev.Rows != rows {
			t.Fatalf("generation %d result covers %d rows, want %d", gen, ev.Rows, rows)
		}
		if got, want := canonicalResult(t, ev.Result), reference(snap); got != want {
			t.Fatalf("generation %d monitor result differs from reference run:\n got %s\nwant %s", gen, got, want)
		}
		// The polled job view must carry the same refreshed result.
		ji := getJob(t, ts, jinfo.ID)
		if ji.Status != string(jobRunning) || ji.Generation != gen {
			t.Fatalf("generation %d job view: status=%q generation=%d", gen, ji.Status, ji.Generation)
		}
		if canonicalResult(t, ji.Result) != canonicalResult(t, ev.Result) {
			t.Fatalf("generation %d: GET /v1/jobs result differs from SSE result", gen)
		}
	}

	// Dataset info reflects the advanced generation and a moved signature.
	dresp, err := http.Get(ts.URL + "/v1/datasets/" + info.ID)
	if err != nil {
		t.Fatalf("GET dataset: %v", err)
	}
	var dinfo DatasetInfo
	if err := json.NewDecoder(dresp.Body).Decode(&dinfo); err != nil {
		t.Fatalf("decoding dataset info: %v", err)
	}
	dresp.Body.Close()
	if dinfo.Generation != 5 || dinfo.Signature == info.Signature || dinfo.ID != info.ID {
		t.Fatalf("dataset after appends: gen=%d sig=%s (base sig %s, id must stay %s)", dinfo.Generation, dinfo.Signature, info.Signature, info.ID)
	}

	// Cancel ends the resident monitor and terminates the stream.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+jinfo.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatalf("DELETE job: %v", err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case r, ok := <-results:
			if !ok {
				t.Fatal("stream closed without a terminal status event")
			}
			if r.end != "" {
				if r.end != string(jobCancelled) {
					t.Fatalf("monitor terminal status %q, want cancelled", r.end)
				}
				return
			}
		case <-deadline:
			t.Fatal("stream did not terminate after cancel")
		}
	}
}

// TestBatchJobSnapshotIsolation: a batch job submitted at generation g must
// answer for generation g even if rows are appended while it is queued, and a
// resubmission after an append must NOT be answered from the older
// generation's cache entry.
func TestBatchJobSnapshotIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2, QueueDepth: 8})
	info, _ := registerCSV(t, ts, testCSV(24), "name=iso&err=err")

	spec := fmt.Sprintf(`{"dataset":%q,"config":{"k":4,"sigma":2,"bitset":"on"}}`, info.ID)
	j1, _, _ := postJob(t, ts, spec)
	done1 := waitJob(t, ts, j1.ID, 30*time.Second)
	if done1.Status != string(jobDone) {
		t.Fatalf("job 1: %q (%s)", done1.Status, done1.Error)
	}

	if _, code, raw := postAppend(t, ts, info.ID, appendBatchCSV(60, 8, "d7")); code != http.StatusOK {
		t.Fatalf("append: status %d (%s)", code, raw)
	}

	// Same spec, new generation: must be a fresh run, not a cache hit.
	j2, _, _ := postJob(t, ts, spec)
	done2 := waitJob(t, ts, j2.ID, 30*time.Second)
	if done2.Status != string(jobDone) {
		t.Fatalf("job 2: %q (%s)", done2.Status, done2.Error)
	}
	if done2.Cached {
		t.Fatal("post-append resubmission was served from the pre-append cache entry")
	}
	if canonicalResult(t, done1.Result) == canonicalResult(t, done2.Result) {
		t.Fatal("results across generations are identical; the appended rows were not evaluated")
	}

	// Identical resubmission at the same generation still hits the cache.
	j3, _, _ := postJob(t, ts, spec)
	done3 := waitJob(t, ts, j3.ID, 30*time.Second)
	if !done3.Cached {
		t.Fatal("same-generation resubmission missed the cache")
	}
}

// TestWindowedJob: a windowed run must equal a weighted reference run with
// rows outside the window zero-weighted — and differ from the full run when
// the recent rows carry a different worst slice.
func TestWindowedJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 2, QueueDepth: 8})
	// Base: benign rows (planted slice errors included). Appended batch:
	// every d1&o1 row is maximally wrong, so the windowed worst slice moves.
	info, _ := registerCSV(t, ts, testCSV(24), "name=win&err=err")
	var b strings.Builder
	b.WriteString("dev,os,region,err\n")
	for i := 0; i < 12; i++ {
		e := 0.05
		if i%2 == 0 {
			b.WriteString("d1,o1,r0,1.0\n")
			continue
		}
		fmt.Fprintf(&b, "d%d,o%d,r%d,%g\n", i%4, i%3, i%2, e)
	}
	if _, code, raw := postAppend(t, ts, info.ID, b.String()); code != http.StatusOK {
		t.Fatalf("append: status %d (%s)", code, raw)
	}

	spec := fmt.Sprintf(`{"spec_version":1,"dataset":%q,"window":{"last_rows":12},"config":{"k":4,"sigma":2,"bitset":"on"}}`, info.ID)
	j, code, raw := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit windowed: status %d (%s)", code, raw)
	}
	done := waitJob(t, ts, j.ID, 30*time.Second)
	if done.Status != string(jobDone) {
		t.Fatalf("windowed job: %q (%s)", done.Status, done.Error)
	}
	if done.Cached {
		t.Fatal("windowed job was served from the result cache")
	}

	entry, _ := s.reg.get(info.ID)
	snap := entry.snapshot()
	n := snap.DS.NumRows()
	w := make([]float64, n)
	for i := n - 12; i < n; i++ {
		w[i] = 1
	}
	cfg := core.Config{K: 4, Sigma: 2, BitsetEval: core.BitsetOn}.WithDefaults(n)
	ref, err := core.RunEncodedWeighted(snap.Enc, snap.DS.Features, snap.ErrVec, w, cfg)
	if err != nil {
		t.Fatalf("weighted reference: %v", err)
	}
	refJS, _ := json.Marshal(ref)
	if canonicalResult(t, done.Result) != canonicalResult(t, refJS) {
		t.Fatalf("windowed result differs from zero-weighted reference:\n got %s\nwant %s",
			canonicalResult(t, done.Result), canonicalResult(t, refJS))
	}

	// The full (unwindowed) run sees 24 benign base rows too and must differ.
	full, _, _ := postJob(t, ts, fmt.Sprintf(`{"dataset":%q,"config":{"k":4,"sigma":2,"bitset":"on"}}`, info.ID))
	fullDone := waitJob(t, ts, full.ID, 30*time.Second)
	if canonicalResult(t, fullDone.Result) == canonicalResult(t, done.Result) {
		t.Fatal("windowed and full results are identical; the window had no effect")
	}
}

// TestWindowWeights exercises the row/time window resolution directly,
// including the empty-window error that is hard to reach end to end.
func TestWindowWeights(t *testing.T) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	entry, err := buildDataset(strings.NewReader(testCSV(10)), registerOptions{Err: "err", Name: "w"})
	if err != nil {
		t.Fatalf("buildDataset: %v", err)
	}
	snap := entry.snapshot()
	// Fabricate a 3-generation history: 6 base rows at t0, then 2 rows at
	// t0+1h, then 2 rows at t0+2h (row counts only matter for bounds).
	snap.GenEnd = []int{6, 8, 10}
	snap.GenAt = []time.Time{base, base.Add(time.Hour), base.Add(2 * time.Hour)}
	snap.Gen = 2
	now := base.Add(2*time.Hour + time.Minute)

	sum := func(w []float64) (lo int) {
		lo = len(w)
		for i, v := range w {
			if v != 0 {
				if i < lo {
					lo = i
				}
				if v != 1 {
					t.Fatalf("weight %v at row %d, want 0 or 1", v, i)
				}
			}
		}
		return lo
	}

	w, err := windowWeights(snap, &WindowSpec{LastRows: 4}, now)
	if err != nil || sum(w) != 6 {
		t.Fatalf("last_rows=4: lo=%d err=%v, want lo=6", sum(w), err)
	}
	// 90 minutes back: generations at +1h and +2h qualify, base does not.
	w, err = windowWeights(snap, &WindowSpec{LastMS: int64(90 * time.Minute / time.Millisecond)}, now)
	if err != nil || sum(w) != 6 {
		t.Fatalf("last_ms=90m: lo=%d err=%v, want lo=6", sum(w), err)
	}
	// Intersection: last 6 rows AND last 50 minutes → only the final batch
	// (the +1h batch is 61 minutes old at now).
	w, err = windowWeights(snap, &WindowSpec{LastRows: 6, LastMS: int64(50 * time.Minute / time.Millisecond)}, now)
	if err != nil || sum(w) != 8 {
		t.Fatalf("intersection: lo=%d err=%v, want lo=8", sum(w), err)
	}
	// A window older than every batch selects nothing.
	if _, err = windowWeights(snap, &WindowSpec{LastMS: 1}, now.Add(24*time.Hour)); err == nil {
		t.Fatal("empty window did not error")
	}
}

// TestErrorEnvelope pins the JSON error envelope across the 404 and
// validation surfaces.
func TestErrorEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 2})

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}

	if st, body := get("/v1/datasets/ds_missing"); st != http.StatusNotFound || decodeEnvelope(t, body) != codeNotFound {
		t.Fatalf("GET missing dataset: %d %s", st, body)
	}
	if st, body := get("/v1/jobs/job-999"); st != http.StatusNotFound || decodeEnvelope(t, body) != codeNotFound {
		t.Fatalf("GET missing job: %d %s", st, body)
	}
	if st, body := get("/v1/jobs/job-999/events"); st != http.StatusNotFound || decodeEnvelope(t, body) != codeNotFound {
		t.Fatalf("GET missing job events: %d %s", st, body)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || decodeEnvelope(t, string(raw)) != codeNotFound {
		t.Fatalf("DELETE missing job: %d %s", resp.StatusCode, raw)
	}

	if _, st, body := postAppend(t, ts, "ds_missing", "dev,os,region,err\nd0,o0,r0,0.5\n"); st != http.StatusNotFound || decodeEnvelope(t, body) != codeNotFound {
		t.Fatalf("append to missing dataset: %d %s", st, body)
	}

	// Train-mode datasets are not appendable.
	var b strings.Builder
	b.WriteString("dev,os,label\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "d%d,o%d,%d\n", i%3, i%2, i%2)
	}
	tinfo, code := registerCSV(t, ts, b.String(), "name=train&label=label&task=class")
	if code != http.StatusCreated {
		t.Fatalf("train register: %d", code)
	}
	if tinfo.Appendable {
		t.Fatal("train-mode dataset reports appendable")
	}
	if _, st, body := postAppend(t, ts, tinfo.ID, "dev,os,err\nd0,o0,0.5\n"); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeNotAppendable {
		t.Fatalf("append to train dataset: %d %s", st, body)
	}

	// Bad job specs carry the bad_job_spec code.
	if _, st, body := postJob(t, ts, `{"dataset":"x","mode":"monitor"}`); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeBadJobSpec {
		t.Fatalf("monitor without spec_version: %d %s", st, body)
	}
	if _, st, body := postJob(t, ts, `{"dataset":"x","spec_version":3}`); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeBadJobSpec {
		t.Fatalf("future spec_version: %d %s", st, body)
	}
	// New-mode validation failures also carry bad_job_spec.
	if _, st, body := postJob(t, ts, `{"dataset":"x","spec_version":2,"mode":"anytime"}`); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeBadJobSpec {
		t.Fatalf("anytime without budget: %d %s", st, body)
	}
	if _, st, body := postJob(t, ts, `{"dataset":"x","spec_version":2,"mode":"diff"}`); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeBadJobSpec {
		t.Fatalf("diff without baseline: %d %s", st, body)
	}
	if _, st, body := postJob(t, ts, `{"dataset":"x","spec_version":2,"mode":"windowed"}`); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeBadJobSpec {
		t.Fatalf("windowed without window: %d %s", st, body)
	}
	if _, st, body := postJob(t, ts, `{"dataset":"x","spec_version":2,"budget_ms":100}`); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeBadJobSpec {
		t.Fatalf("budget_ms outside anytime: %d %s", st, body)
	}
	if _, st, body := postJob(t, ts, `{"dataset":"x","spec_version":1,"window":{}}`); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeBadJobSpec {
		t.Fatalf("empty window: %d %s", st, body)
	}
	if _, st, body := postJob(t, ts, `{"dataset":"x","spec_version":1,"mode":"monitor","window":{"last_rows":5}}`); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeBadJobSpec {
		t.Fatalf("monitor+window: %d %s", st, body)
	}
	if _, st, body := postJob(t, ts, `{"dataset":"x","spec_version":1,"mode":"monitor","evaluator":"dist"}`); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeBadJobSpec {
		t.Fatalf("monitor+dist: %d %s", st, body)
	}
	if _, st, body := postJob(t, ts, `{"dataset":"x","window":{"last_rows":5}}`); st != http.StatusBadRequest || decodeEnvelope(t, body) != codeBadJobSpec {
		t.Fatalf("window without spec_version: %d %s", st, body)
	}
}

// TestRegisterBodyForms: the two supported registration body forms must land
// on the same content address, and the removed legacy query-param form must
// be rejected with the stable deprecated_form code.
func TestRegisterBodyForms(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 2})
	csv := testCSV(18)

	// Removed legacy query-param form: 400 with a stable error code.
	resp, err := http.Post(ts.URL+"/v1/datasets?name=legacy&err=err", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatalf("legacy register: %v", err)
	}
	raw0, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || decodeEnvelope(t, string(raw0)) != codeDeprecatedForm {
		t.Fatalf("legacy register: %d %s, want 400 %s", resp.StatusCode, raw0, codeDeprecatedForm)
	}

	// JSON body form.
	body, _ := json.Marshal(registerRequest{Name: "jsonform", Err: "err", CSV: csv})
	resp, err = http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("json register: %v", err)
	}
	var fromJSON DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&fromJSON); err != nil {
		t.Fatalf("decoding json info: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("json register: status %d, want 201", resp.StatusCode)
	}
	if fromJSON.Reused {
		t.Fatal("first registration reported reused")
	}

	// Multipart form.
	var mp bytes.Buffer
	mw := multipart.NewWriter(&mp)
	_ = mw.WriteField("name", "mpform")
	_ = mw.WriteField("err", "err")
	fw, _ := mw.CreateFormFile("csv", "data.csv")
	_, _ = fw.Write([]byte(csv))
	mw.Close()
	resp, err = http.Post(ts.URL+"/v1/datasets", mw.FormDataContentType(), &mp)
	if err != nil {
		t.Fatalf("multipart register: %v", err)
	}
	var fromMP DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&fromMP); err != nil {
		t.Fatalf("decoding multipart info: %v", err)
	}
	resp.Body.Close()
	if !fromMP.Reused || fromMP.ID != fromJSON.ID {
		t.Fatalf("multipart registration: reused=%v id=%s, want reuse of %s", fromMP.Reused, fromMP.ID, fromJSON.ID)
	}

	// Malformed JSON body → envelope.
	resp, err = http.Post(ts.URL+"/v1/datasets", "application/json", strings.NewReader(`{"csv":""}`))
	if err != nil {
		t.Fatalf("empty-csv register: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || decodeEnvelope(t, string(raw)) != codeBadRequest {
		t.Fatalf("empty-csv register: %d %s", resp.StatusCode, raw)
	}
}

// TestMonitorLimit: the resident-monitor cap rejects with 429/monitor_limit,
// and cancelling a monitor frees its slot.
func TestMonitorLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 2, MaxMonitors: 1})
	info, _ := registerCSV(t, ts, testCSV(24), "name=cap&err=err")
	spec := fmt.Sprintf(`{"spec_version":1,"dataset":%q,"mode":"monitor","config":{"k":3}}`, info.ID)

	j1, code, raw := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("monitor 1: %d (%s)", code, raw)
	}
	if _, code, raw := postJob(t, ts, spec); code != http.StatusTooManyRequests || decodeEnvelope(t, raw) != codeMonitorLimit {
		t.Fatalf("monitor 2 over cap: %d %s", code, raw)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j1.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatalf("DELETE monitor: %v", err)
	}
	waitJob(t, ts, j1.ID, 10*time.Second)
	// The slot frees when the resident goroutine exits; poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, code, _ := postJob(t, ts, spec)
		if code == http.StatusAccepted {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("monitor slot never freed after cancel (last status %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAppendLogEviction: once the bounded append log evicts old records,
// appendsSince reports an incomplete history (the monitor's rebuild signal).
func TestAppendLogEviction(t *testing.T) {
	entry, err := buildDataset(strings.NewReader(testCSV(12)), registerOptions{Err: "err", Name: "evict"})
	if err != nil {
		t.Fatalf("buildDataset: %v", err)
	}
	total := appendLogCap + 5
	for i := 0; i < total; i++ {
		row := [][]string{{fmt.Sprintf("d%d", i%4), fmt.Sprintf("o%d", i%3), fmt.Sprintf("r%d", i%2)}}
		if _, err := entry.appendRows(row, []float64{0.2}, time.Now()); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, ok := entry.appendsSince(0); ok {
		t.Fatal("appendsSince(0) reported a complete history past the log cap")
	}
	recs, ok := entry.appendsSince(total - 3)
	if !ok || len(recs) != 3 {
		t.Fatalf("appendsSince(%d): ok=%v len=%d, want 3 in-log records", total-3, ok, len(recs))
	}
	for i, rec := range recs {
		if rec.Gen != total-2+i {
			t.Fatalf("record %d has generation %d, want %d", i, rec.Gen, total-2+i)
		}
	}
}

// TestStreamingJournalReplay: appended generations must survive a restart —
// the restored dataset reaches the same generation and signature, completed
// jobs re-serve, and a same-generation resubmission hits the restored cache.
func TestStreamingJournalReplay(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Pool: 1, QueueDepth: 4, JournalDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := newHTTPTestServer(t, s1)

	info, _ := registerCSV(t, ts1, testCSV(24), "name=jr&err=err")
	if _, code, raw := postAppend(t, ts1, info.ID, appendBatchCSV(31, 5, "")); code != http.StatusOK {
		t.Fatalf("append 1: %d (%s)", code, raw)
	}
	a2, code, raw := postAppend(t, ts1, info.ID, appendBatchCSV(77, 4, "d8"))
	if code != http.StatusOK {
		t.Fatalf("append 2: %d (%s)", code, raw)
	}
	spec := fmt.Sprintf(`{"dataset":%q,"config":{"k":4,"sigma":2,"bitset":"on"}}`, info.ID)
	j1, _, _ := postJob(t, ts1, spec)
	done1 := waitJob(t, ts1, j1.ID, 30*time.Second)
	if done1.Status != string(jobDone) {
		t.Fatalf("pre-restart job: %q (%s)", done1.Status, done1.Error)
	}
	sctx, scancel := newShutdownCtx()
	defer scancel()
	if err := s1.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2, err := New(Config{Pool: 1, QueueDepth: 4, JournalDir: dir})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	defer func() {
		ctx, cancel := newShutdownCtx()
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	ts2 := newHTTPTestServer(t, s2)

	resp, err := http.Get(ts2.URL + "/v1/datasets/" + info.ID)
	if err != nil {
		t.Fatalf("GET restored dataset: %v", err)
	}
	var dinfo DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&dinfo); err != nil {
		t.Fatalf("decoding restored dataset: %v", err)
	}
	resp.Body.Close()
	if dinfo.Generation != 2 || dinfo.Signature != a2.Signature || !dinfo.Appendable {
		t.Fatalf("restored dataset: gen=%d sig=%s appendable=%v, want gen=2 sig=%s",
			dinfo.Generation, dinfo.Signature, dinfo.Appendable, a2.Signature)
	}

	// The completed job re-serves with its result.
	restored := getJob(t, ts2, j1.ID)
	if restored.Status != string(jobDone) || canonicalResult(t, restored.Result) != canonicalResult(t, done1.Result) {
		t.Fatalf("restored job: status=%q, result mismatch", restored.Status)
	}

	// Same spec at the same (restored) generation: served from the cache.
	j2, _, _ := postJob(t, ts2, spec)
	done2 := waitJob(t, ts2, j2.ID, 30*time.Second)
	if !done2.Cached {
		t.Fatal("same-generation resubmission after restart missed the restored cache")
	}

	// Appending continues the generation sequence after restart.
	a3, code, raw := postAppend(t, ts2, info.ID, appendBatchCSV(5, 3, ""))
	if code != http.StatusOK || a3.Generation != 3 {
		t.Fatalf("post-restart append: %d gen=%d (%s)", code, a3.Generation, raw)
	}
}

// TestMonitorJournalRestart: a monitor whose server dies (no graceful drain)
// restarts as a fresh resident over the restored dataset.
func TestMonitorJournalRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{Pool: 1, QueueDepth: 4, JournalDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := newHTTPTestServer(t, s1)
	info, _ := registerCSV(t, ts1, testCSV(24), "name=mr&err=err")
	spec := fmt.Sprintf(`{"spec_version":1,"dataset":%q,"mode":"monitor","config":{"k":3,"bitset":"on"}}`, info.ID)
	j1, code, raw := postJob(t, ts1, spec)
	if code != http.StatusAccepted {
		t.Fatalf("monitor: %d (%s)", code, raw)
	}

	// Simulate a crash: bring up a second server over the same journal
	// WITHOUT draining the first (a graceful drain would journal the
	// monitor as cancelled).
	s2, err := New(Config{Pool: 1, QueueDepth: 4, JournalDir: dir})
	if err != nil {
		t.Fatalf("restart New: %v", err)
	}
	ts2 := newHTTPTestServer(t, s2)
	defer func() {
		ctx, cancel := newShutdownCtx()
		defer cancel()
		_ = s2.Shutdown(ctx)
		ctx2, cancel2 := newShutdownCtx()
		defer cancel2()
		_ = s1.Shutdown(ctx2)
	}()

	ji := getJob(t, ts2, j1.ID)
	if ji.Status != string(jobRunning) || ji.Mode != ModeMonitor {
		t.Fatalf("restored monitor: status=%q mode=%q, want running monitor", ji.Status, ji.Mode)
	}
	// It must react to appends on the restored dataset.
	results := streamResults(t, ts2, j1.ID)
	nextResult(t, results, 0)
	if _, code, raw := postAppend(t, ts2, info.ID, appendBatchCSV(9, 4, "")); code != http.StatusOK {
		t.Fatalf("append on restored server: %d (%s)", code, raw)
	}
	nextResult(t, results, 1)
}
