package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"sliceline/internal/obs"
	"sliceline/internal/version"
)

// maxDatasetBytes bounds an uploaded CSV body (64 MiB). Bigger corpora
// belong on shared storage with a loader-side registration path.
const maxDatasetBytes = 64 << 20

// Handler returns the service's HTTP surface:
//
//	POST   /v1/datasets            register a CSV dataset (body: CSV)
//	GET    /v1/datasets            list registered datasets
//	GET    /v1/datasets/{id}       one dataset's descriptor
//	POST   /v1/jobs                submit a job (body: JobSpec JSON)
//	GET    /v1/jobs                list jobs
//	GET    /v1/jobs/{id}           job status + result when done
//	GET    /v1/jobs/{id}/events    SSE per-level progress stream
//	DELETE /v1/jobs/{id}           cancel a job
//	GET    /v1/healthz             liveness, version, pool/queue state
//	GET    /v1/cluster             elastic fleet membership (when configured)
//
// plus the observability surface of internal/obs (/metrics, /metrics.json,
// /debug/vars, /debug/pprof/) when the server has a metrics registry.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("GET /v1/datasets/{id}", s.handleGetDataset)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	if s.cfg.Membership != nil {
		mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	}
	if s.cfg.Metrics != nil {
		om := obs.Handler(s.cfg.Metrics)
		mux.Handle("/metrics", om)
		mux.Handle("/metrics.json", om)
		mux.Handle("/debug/", om)
	}
	return s.countRequests(mux)
}

// countRequests is the outermost middleware: one counter increment per
// request.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.ob.httpReqs.Inc()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// handleRegisterDataset implements POST /v1/datasets. The body is the CSV;
// registration parameters ride the query string: name, label, task
// (class|reg), err (precomputed error column), bins.
func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	opt := registerOptions{
		Name:  q.Get("name"),
		Label: q.Get("label"),
		Task:  q.Get("task"),
		Err:   q.Get("err"),
	}
	if b := q.Get("bins"); b != "" {
		n, err := strconv.Atoi(b)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, errors.New("server: bins must be a positive integer"))
			return
		}
		opt.Bins = n
	}
	entry, err := buildDataset(http.MaxBytesReader(w, r.Body, maxDatasetBytes), opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.registerDataset(entry)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusCreated
	if info.Reused {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.list()
	out := make([]DatasetInfo, len(entries))
	for i, d := range entries {
		out[i] = d.info()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: no such dataset"))
		return
	}
	writeJSON(w, http.StatusOK, d.info())
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeJobSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, status, err := s.submit(spec)
	if err != nil {
		writeError(w, status, err)
		return
	}
	writeJSON(w, status, j.info())
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.listJobs()
	out := make([]JobInfo, 0, len(jobs))
	for _, j := range jobs {
		info := j.info()
		info.Result = nil // list view stays light; fetch one job for the result
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: no such job"))
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.info())
}

// handleCluster implements GET /v1/cluster: the operator view of the elastic
// fleet, mirrored from the registrar the server's distributed jobs follow.
func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ClusterInfo{
		Version: s.cfg.Membership.Version(),
		Members: s.cfg.Membership.Status(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	byState := make(map[string]int)
	for _, j := range s.listJobs() {
		byState[string(j.currentState())]++
	}
	writeJSON(w, http.StatusOK, Healthz{
		Status:    "ok",
		Version:   version.String(),
		Datasets:  s.reg.len(),
		Jobs:      byState,
		QueueLen:  len(s.queue),
		QueueCap:  cap(s.queue),
		Inflight:  int(s.ob.inflight.Value()),
		PoolSize:  s.cfg.Pool,
		Journal:   s.journal != nil,
		DistAddrs: s.cfg.DistWorkers,
		Elastic:   s.cfg.Membership != nil,
	})
}
