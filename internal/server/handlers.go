package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sliceline/internal/obs"
	"sliceline/internal/version"
)

// maxDatasetBytes bounds an uploaded CSV body (64 MiB). Bigger corpora
// belong on shared storage with a loader-side registration path.
const maxDatasetBytes = 64 << 20

// Handler returns the service's HTTP surface:
//
//	POST   /v1/datasets            register a CSV dataset (JSON or multipart)
//	GET    /v1/datasets            list registered datasets
//	GET    /v1/datasets/{id}       one dataset's descriptor
//	POST   /v1/datasets/{id}/rows  append rows (body: CSV with err column)
//	POST   /v1/jobs                submit a job (body: JobSpec JSON)
//	GET    /v1/jobs                list jobs
//	GET    /v1/jobs/{id}           job status + result when done
//	GET    /v1/jobs/{id}/events    SSE per-level progress + result stream
//	DELETE /v1/jobs/{id}           cancel a job (including monitors)
//	GET    /v1/healthz             liveness, version, pool/queue state
//	GET    /v1/cluster             elastic fleet membership (when configured)
//
// plus the observability surface of internal/obs (/metrics, /metrics.json,
// /debug/vars, /debug/pprof/) when the server has a metrics registry. The
// wire contract, including the JSON error envelope, is documented in API.md.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/datasets", s.handleRegisterDataset)
	mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	mux.HandleFunc("GET /v1/datasets/{id}", s.handleGetDataset)
	mux.HandleFunc("POST /v1/datasets/{id}/rows", s.handleAppendRows)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	if s.cfg.Membership != nil {
		mux.HandleFunc("GET /v1/cluster", s.handleCluster)
	}
	if s.cfg.Metrics != nil {
		om := obs.Handler(s.cfg.Metrics)
		mux.Handle("/metrics", om)
		mux.Handle("/metrics.json", om)
		mux.Handle("/debug/", om)
	}
	return s.countRequests(mux)
}

// countRequests is the outermost middleware: one counter increment per
// request.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.ob.httpReqs.Inc()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// registerRequest is the JSON registration body of POST /v1/datasets.
type registerRequest struct {
	Name  string `json:"name,omitempty"`
	Label string `json:"label,omitempty"`
	Task  string `json:"task,omitempty"`
	Err   string `json:"err,omitempty"`
	Bins  int    `json:"bins,omitempty"`
	CSV   string `json:"csv"`
}

// handleRegisterDataset implements POST /v1/datasets. Two body forms:
//
//   - application/json: a registerRequest carrying the metadata and the CSV
//     document inline;
//   - multipart/form-data: fields name/label/task/err/bins plus a "csv" file
//     part (the form for big uploads).
//
// The legacy form — raw CSV body with metadata in the query string — was
// deprecated (Deprecation header) and is now removed: it answers 400 with
// the stable code "deprecated_form" pointing at the two supported bodies.
func (s *Server) handleRegisterDataset(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxDatasetBytes)
	var (
		opt registerOptions
		csv io.Reader
	)
	ct := r.Header.Get("Content-Type")
	mt, _, _ := mime.ParseMediaType(ct)
	switch {
	case mt == "application/json":
		var req registerRequest
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: decoding registration body: %v", err))
			return
		}
		if req.CSV == "" {
			writeError(w, http.StatusBadRequest, errors.New("server: registration body misses the csv document"))
			return
		}
		opt = registerOptions{Name: req.Name, Label: req.Label, Task: req.Task, Err: req.Err, Bins: req.Bins}
		if req.Bins < 0 {
			writeError(w, http.StatusBadRequest, errors.New("server: bins must be a positive integer"))
			return
		}
		csv = strings.NewReader(req.CSV)
	case mt == "multipart/form-data":
		mr, err := r.MultipartReader()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: reading multipart body: %v", err))
			return
		}
		form, err := mr.ReadForm(maxDatasetBytes)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: reading multipart form: %v", err))
			return
		}
		defer form.RemoveAll() //nolint:errcheck // best-effort temp cleanup
		field := func(name string) string {
			if v := form.Value[name]; len(v) > 0 {
				return v[0]
			}
			return ""
		}
		opt = registerOptions{Name: field("name"), Label: field("label"), Task: field("task"), Err: field("err")}
		if b := field("bins"); b != "" {
			n, err := strconv.Atoi(b)
			if err != nil || n < 1 {
				writeError(w, http.StatusBadRequest, errors.New("server: bins must be a positive integer"))
				return
			}
			opt.Bins = n
		}
		files := form.File["csv"]
		if len(files) == 0 {
			files = form.File["file"]
		}
		if len(files) == 0 {
			writeError(w, http.StatusBadRequest, errors.New("server: multipart registration misses the csv file part"))
			return
		}
		f, err := files[0].Open()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("server: opening csv part: %v", err))
			return
		}
		defer f.Close()
		csv = f
	default:
		writeErrorCode(w, http.StatusBadRequest, codeDeprecatedForm,
			fmt.Errorf("server: the query-param + raw CSV registration form was removed; register with application/json or multipart/form-data (got Content-Type %q)", ct))
		return
	}

	entry, err := buildDataset(csv, opt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.registerDataset(entry)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusCreated
	if info.Reused {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

// handleAppendRows implements POST /v1/datasets/{id}/rows: the body is a CSV
// document with the dataset's feature columns plus its err column. The append
// advances the dataset's generation, wakes resident monitor jobs, and is
// journaled so a restarted server replays to the current generation.
func (s *Server) handleAppendRows(w http.ResponseWriter, r *http.Request) {
	d, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: no such dataset"))
		return
	}
	if !d.appendable() {
		writeErrorCode(w, http.StatusBadRequest, codeNotAppendable,
			errors.New("server: dataset was not registered with an err column; only err-column datasets accept appends"))
		return
	}
	snap := d.snapshot()
	rows, errs, err := parseAppendCSV(http.MaxBytesReader(w, r.Body, maxDatasetBytes), snap.DS.Features, d.ErrCol)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	at := time.Now()
	info, err := d.appendRows(rows, errs, at)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.ob.appends.Inc()
	s.journalFailed("append", s.journal.saveAppend(d.ID, info.Generation, rows, errs, at.UnixNano()))
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, _ *http.Request) {
	entries := s.reg.list()
	out := make([]DatasetInfo, len(entries))
	for i, d := range entries {
		out[i] = d.info()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, ok := s.reg.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: no such dataset"))
		return
	}
	writeJSON(w, http.StatusOK, d.info())
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	spec, err := DecodeJobSpec(r.Body)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeBadJobSpec, err)
		return
	}
	j, status, err := s.submit(spec)
	if err != nil {
		code := defaultCode(status)
		switch {
		case errors.Is(err, ErrBadJobSpec):
			code = codeBadJobSpec
		case errors.Is(err, errMonitorLimit):
			code = codeMonitorLimit
		}
		writeErrorCode(w, status, code, err)
		return
	}
	writeJSON(w, status, j.info())
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.listJobs()
	out := make([]JobInfo, 0, len(jobs))
	for _, j := range jobs {
		info := j.info()
		info.Result = nil // list view stays light; fetch one job for the result
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.info())
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.getJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("server: no such job"))
		return
	}
	s.cancelJob(j)
	writeJSON(w, http.StatusOK, j.info())
}

// handleCluster implements GET /v1/cluster: the operator view of the elastic
// fleet, mirrored from the registrar the server's distributed jobs follow.
func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ClusterInfo{
		Version: s.cfg.Membership.Version(),
		Members: s.cfg.Membership.Status(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	byState := make(map[string]int)
	for _, j := range s.listJobs() {
		byState[string(j.currentState())]++
	}
	writeJSON(w, http.StatusOK, Healthz{
		Status:    "ok",
		Version:   version.String(),
		Datasets:  s.reg.len(),
		Jobs:      byState,
		QueueLen:  len(s.queue),
		QueueCap:  cap(s.queue),
		Inflight:  int(s.ob.inflight.Value()),
		PoolSize:  s.cfg.Pool,
		Journal:   s.journal != nil,
		DistAddrs: s.cfg.DistWorkers,
		Elastic:   s.cfg.Membership != nil,
	})
}
