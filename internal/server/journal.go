package server

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sliceline/internal/frame"
)

// The job journal makes the service restartable: datasets and job records
// are gob files in one directory, and running jobs additionally write the
// core checkpoint machinery's level-by-level state. After a crash, New()
// reloads the directory — completed jobs are re-served from their stored
// result, in-flight and queued jobs are re-enqueued with Resume set so they
// continue from their last completed lattice level instead of starting over.
//
// Layout (all writes are atomic temp-file + rename, like core checkpoints):
//
//	<dir>/ds_<sig>.dataset.gob        registered dataset + error vector (generation 0)
//	<dir>/ds_<sig>.gen<n>.rows.gob    one appended row batch (generation n)
//	<dir>/job-<n>.job.gob             job record (spec, status, result JSON)
//	<dir>/job-<n>.ck                  core enumeration checkpoint (while running)
//
// Appends are journaled as raw string rows, not encoded matrices: on restore
// the base dataset is rebuilt from its file and every batch is re-applied in
// generation order through the exact same append path the live server used,
// so the restored entry reaches the same generation with the same signature.

const (
	journalDatasetSuffix = ".dataset.gob"
	journalJobSuffix     = ".job.gob"
	journalAppendSuffix  = ".rows.gob"
	journalVersion       = 1
)

// journalDataset is the on-disk form of a registry entry. The one-hot
// encoding and signature are recomputed on load (cheaper to redo than to
// store, and it revalidates the file). Fields added after v1 (ErrCol) decode
// as zero values from old files — gob tolerates missing fields — which is
// exactly the pre-streaming behaviour (not appendable).
type journalDataset struct {
	Version int
	ID      string
	Name    string
	DS      *frame.Dataset
	ErrVec  []float64
	ErrCol  string
}

// journalJob is the on-disk form of a job record. DataSig pins the dataset
// generation the job ran against, so a completed job restored after further
// appends does not seed the result cache under the newer generation's key.
type journalJob struct {
	Version    int
	ID         string
	Spec       JobSpec
	Status     string
	Cached     bool
	ErrMsg     string
	ResultJSON []byte
	DataSig    uint64
}

// journalAppend is one appended row batch. Rows are the raw CSV cell values
// in feature order (plus the error values split out), i.e. the validated
// input of datasetEntry.appendRows.
type journalAppend struct {
	Version int
	ID      string // dataset id
	Gen     int    // generation this batch produced (1-based)
	Rows    [][]string
	Errs    []float64
	AtUnix  int64 // arrival time (unix nanos) so duration windows survive restarts
}

type journal struct {
	dir string
}

func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating journal directory: %w", err)
	}
	return &journal{dir: dir}, nil
}

func (j *journal) datasetPath(id string) string {
	return filepath.Join(j.dir, id+journalDatasetSuffix)
}

func (j *journal) jobPath(id string) string {
	return filepath.Join(j.dir, id+journalJobSuffix)
}

// checkpointPath is handed to core.Config.CheckpointPath for running jobs.
func (j *journal) checkpointPath(id string) string {
	return filepath.Join(j.dir, id+".ck")
}

func (j *journal) appendPath(id string, gen int) string {
	return filepath.Join(j.dir, fmt.Sprintf("%s.gen%d%s", id, gen, journalAppendSuffix))
}

// writeGob atomically writes one gob document.
func writeGob(path string, v any) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("server: writing journal: %w", err)
	}
	if err := gob.NewEncoder(f).Encode(v); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("server: encoding journal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: writing journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: committing journal: %w", err)
	}
	return nil
}

func readGob(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewDecoder(f).Decode(v)
}

// saveDataset journals a registered dataset. A nil journal is a no-op.
func (j *journal) saveDataset(d *datasetEntry) error {
	if j == nil {
		return nil
	}
	return writeGob(j.datasetPath(d.ID), &journalDataset{
		Version: journalVersion, ID: d.ID, Name: d.Name, DS: d.DS, ErrVec: d.ErrVec, ErrCol: d.ErrCol,
	})
}

// saveAppend journals one appended row batch. A nil journal is a no-op.
func (j *journal) saveAppend(id string, gen int, rows [][]string, errs []float64, atUnix int64) error {
	if j == nil {
		return nil
	}
	return writeGob(j.appendPath(id, gen), &journalAppend{
		Version: journalVersion, ID: id, Gen: gen, Rows: rows, Errs: errs, AtUnix: atUnix,
	})
}

// loadAppends returns a dataset's journaled append batches in generation
// order. A gap in the sequence fails the load (the entry could not be
// replayed to its last journaled generation).
func (j *journal) loadAppends(id string) ([]*journalAppend, error) {
	paths, err := filepath.Glob(filepath.Join(j.dir, id+".gen*"+journalAppendSuffix))
	if err != nil {
		return nil, err
	}
	recs := make([]*journalAppend, 0, len(paths))
	for _, p := range paths {
		var rec journalAppend
		if err := readGob(p, &rec); err != nil {
			return nil, fmt.Errorf("server: reading journaled append %s: %w", p, err)
		}
		if rec.Version != journalVersion {
			return nil, fmt.Errorf("server: journaled append %s has version %d, this build reads %d", p, rec.Version, journalVersion)
		}
		recs = append(recs, &rec)
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].Gen < recs[b].Gen })
	for i, rec := range recs {
		if rec.Gen != i+1 {
			return nil, fmt.Errorf("server: journaled appends for %s have a gap: want generation %d, found %d", id, i+1, rec.Gen)
		}
	}
	return recs, nil
}

// saveJob journals a job's current record. A nil journal is a no-op.
func (j *journal) saveJob(jb *job) error {
	if j == nil {
		return nil
	}
	jb.mu.Lock()
	rec := &journalJob{
		Version: journalVersion,
		ID:      jb.id,
		Spec:    jb.spec,
		Status:  string(jb.state),
		Cached:  jb.cached,
		ErrMsg:  jb.errMsg,
		DataSig: jb.snap.Sig,
	}
	if jb.state == jobDone {
		rec.ResultJSON = jb.resultJSON
	}
	jb.mu.Unlock()
	return writeGob(j.jobPath(rec.ID), rec)
}

// dropCheckpoint removes a finished job's enumeration checkpoint.
func (j *journal) dropCheckpoint(id string) {
	if j == nil {
		return
	}
	os.Remove(j.checkpointPath(id))
}

// loadDatasets restores every journaled dataset, re-encoding and
// re-validating each. Corrupt files fail the load: a server told to journal
// must not silently come up with half its state.
func (j *journal) loadDatasets() ([]*datasetEntry, error) {
	paths, err := filepath.Glob(filepath.Join(j.dir, "*"+journalDatasetSuffix))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*datasetEntry, 0, len(paths))
	for _, p := range paths {
		var rec journalDataset
		if err := readGob(p, &rec); err != nil {
			return nil, fmt.Errorf("server: reading journaled dataset %s: %w", p, err)
		}
		if rec.Version != journalVersion {
			return nil, fmt.Errorf("server: journaled dataset %s has version %d, this build reads %d", p, rec.Version, journalVersion)
		}
		enc, err := frame.OneHot(rec.DS)
		if err != nil {
			return nil, fmt.Errorf("server: re-encoding journaled dataset %s: %w", p, err)
		}
		entry, err := finishEntry(rec.DS, enc, rec.ErrVec, rec.Name, rec.ErrCol)
		if err != nil {
			return nil, fmt.Errorf("server: restoring journaled dataset %s: %w", p, err)
		}
		if entry.ID != rec.ID {
			return nil, fmt.Errorf("server: journaled dataset %s signature mismatch: file says %s, content hashes to %s", p, rec.ID, entry.ID)
		}
		out = append(out, entry)
	}
	return out, nil
}

// loadJobs restores every journaled job record in submission order and
// returns them along with the highest job sequence number seen, so fresh
// submissions continue the ID sequence without collisions.
func (j *journal) loadJobs() ([]*journalJob, int64, error) {
	paths, err := filepath.Glob(filepath.Join(j.dir, "*"+journalJobSuffix))
	if err != nil {
		return nil, 0, err
	}
	recs := make([]*journalJob, 0, len(paths))
	var maxSeq int64
	for _, p := range paths {
		var rec journalJob
		if err := readGob(p, &rec); err != nil {
			return nil, 0, fmt.Errorf("server: reading journaled job %s: %w", p, err)
		}
		if rec.Version != journalVersion {
			return nil, 0, fmt.Errorf("server: journaled job %s has version %d, this build reads %d", p, rec.Version, journalVersion)
		}
		if seq := jobSeq(rec.ID); seq > maxSeq {
			maxSeq = seq
		}
		recs = append(recs, &rec)
	}
	sort.Slice(recs, func(a, b int) bool { return jobSeq(recs[a].ID) < jobSeq(recs[b].ID) })
	return recs, maxSeq, nil
}

// jobSeq extracts the numeric suffix of a job id ("job-17" → 17).
func jobSeq(id string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(id, "job-"), 10, 64)
	if err != nil {
		return 0
	}
	return n
}
