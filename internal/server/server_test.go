package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/obs"
)

// testCSV renders a small deterministic dataset with a planted slice
// (dev=d0 & os=o0 rows carry error 1) and an explicit err column, so
// registrations in err-column mode are fully reproducible.
func testCSV(rows int) string {
	var b strings.Builder
	b.WriteString("dev,os,region,err\n")
	for i := 0; i < rows; i++ {
		dev := fmt.Sprintf("d%d", i%4)
		os := fmt.Sprintf("o%d", i%3)
		region := fmt.Sprintf("r%d", i%2)
		e := 0.1
		if i%4 == 0 && i%3 == 0 {
			e = 1.0
		}
		fmt.Fprintf(&b, "%s,%s,%s,%g\n", dev, os, region, e)
	}
	return b.String()
}

// newTestServer builds a Server plus an httptest front end and tears both
// down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

// newHTTPTestServer wraps an existing Server in an httptest front end only
// (the caller owns the Server's shutdown).
func newHTTPTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// registerCSV registers a dataset through the JSON body form. The metadata
// still arrives as a query string so the many call sites read unchanged; a
// bins value that is not an integer is forwarded as a JSON string, which the
// strict decoder rejects — preserving the malformed-input cases.
func registerCSV(t *testing.T, ts *httptest.Server, csv, query string) (DatasetInfo, int) {
	t.Helper()
	q, err := url.ParseQuery(query)
	if err != nil {
		t.Fatalf("parsing query %q: %v", query, err)
	}
	req := map[string]any{"csv": csv}
	for _, k := range []string{"name", "label", "task", "err"} {
		if v := q.Get(k); v != "" {
			req[k] = v
		}
	}
	if b := q.Get("bins"); b != "" {
		if n, aerr := strconv.Atoi(b); aerr == nil {
			req["bins"] = n
		} else {
			req["bins"] = b
		}
	}
	js, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal registration: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/datasets", "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatalf("POST /v1/datasets: %v", err)
	}
	defer resp.Body.Close()
	var info DatasetInfo
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusCreated || resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatalf("decoding dataset info: %v (%s)", err, body)
		}
	}
	return info, resp.StatusCode
}

func postJob(t *testing.T, ts *httptest.Server, spec any) (JobInfo, int, string) {
	t.Helper()
	var body io.Reader
	switch v := spec.(type) {
	case string:
		body = strings.NewReader(v)
	default:
		js, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal spec: %v", err)
		}
		body = strings.NewReader(string(js))
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var info JobInfo
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &info); err != nil {
			t.Fatalf("decoding job info: %v (%s)", err, raw)
		}
	}
	return info, resp.StatusCode, string(raw)
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobInfo {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding job info: %v", err)
	}
	return info
}

// waitJob polls until the job reaches a terminal status.
func waitJob(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobInfo {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		info := getJob(t, ts, id)
		if jobState(info.Status).terminal() {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %q after %v", id, info.Status, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHealthzReportsVersion(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2, QueueDepth: 4})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	defer resp.Body.Close()
	var h Healthz
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q, want ok", h.Status)
	}
	if h.Version == "" {
		t.Error("healthz did not report a version")
	}
	if h.PoolSize != 2 || h.QueueCap != 4 {
		t.Errorf("pool/queue = %d/%d, want 2/4", h.PoolSize, h.QueueCap)
	}
}

func TestDatasetRegistrationIdempotent(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Metrics: reg})
	csv := testCSV(24)

	first, code := registerCSV(t, ts, csv, "err=err&name=demo")
	if code != http.StatusCreated {
		t.Fatalf("first registration: status %d", code)
	}
	if first.Reused {
		t.Error("first registration reported reused")
	}
	if first.Rows != 24 || first.Features != 3 {
		t.Errorf("rows/features = %d/%d, want 24/3", first.Rows, first.Features)
	}

	second, code := registerCSV(t, ts, csv, "err=err&name=demo")
	if code != http.StatusOK {
		t.Fatalf("re-registration: status %d", code)
	}
	if !second.Reused || second.ID != first.ID {
		t.Errorf("re-registration: reused=%v id=%s, want reused of %s", second.Reused, second.ID, first.ID)
	}
	if s.reg.len() != 1 {
		t.Errorf("registry holds %d datasets, want 1", s.reg.len())
	}
	if v := s.ob.datasets.Value(); v != 1 {
		t.Errorf("sl_server_datasets_registered_total = %d, want 1", v)
	}
}

func TestDatasetRegistrationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, csv, query string
	}{
		{"no mode", testCSV(8), ""},
		{"bad bins", testCSV(8), "err=err&bins=zero"},
		{"missing err column", testCSV(8), "err=nope"},
		{"non-numeric err column", "a,err\nx,bad\ny,worse\n", "err=err"},
		{"empty body", "", "err=err"},
		{"ragged rows", "a,b,err\nx,y,1\nz,2\n", "err=err"},
	}
	for _, tc := range cases {
		if _, code := registerCSV(t, ts, tc.csv, tc.query); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info, code := registerCSV(t, ts, testCSV(12), "err=err")
	if code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}

	if _, code, _ := postJob(t, ts, JobSpec{Dataset: "ds_nope"}); code != http.StatusNotFound {
		t.Errorf("unknown dataset: status %d, want 404", code)
	}
	if _, code, _ := postJob(t, ts, `{"dataset":"`+info.ID+`","surprise":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", code)
	}
	if _, code, _ := postJob(t, ts, `{"dataset":"`+info.ID+`"} {"trailing":true}`); code != http.StatusBadRequest {
		t.Errorf("trailing document: status %d, want 400", code)
	}
	if _, code, _ := postJob(t, ts, JobSpec{Dataset: info.ID, Evaluator: "quantum"}); code != http.StatusBadRequest {
		t.Errorf("unknown evaluator: status %d, want 400", code)
	}
	if _, code, _ := postJob(t, ts, `{"dataset":"`+info.ID+`","config":{"alpha":1e999}}`); code != http.StatusBadRequest {
		t.Errorf("unrepresentable alpha: status %d, want 400", code)
	}
	// Dist without workers is rejected up front, not at execution time.
	if _, code, _ := postJob(t, ts, JobSpec{Dataset: info.ID, Evaluator: EvalDist}); code != http.StatusBadRequest {
		t.Errorf("dist without workers: status %d, want 400", code)
	}
}

// blockingStub replaces Server.runJob with a runner that parks until
// released (or until the job's context ends), so admission-control and
// cancellation paths can be driven deterministically.
type blockingStub struct {
	release chan struct{}
	started chan string // job ids that actually reached a worker
}

func newBlockingStub(s *Server, buf int) *blockingStub {
	st := &blockingStub{
		release: make(chan struct{}),
		started: make(chan string, buf),
	}
	s.runJob = func(ctx context.Context, j *job) (*core.Result, error) {
		st.started <- j.id
		select {
		case <-st.release:
			return &core.Result{N: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return st
}

func TestAdmissionControl429(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 1, Metrics: reg})
	stub := newBlockingStub(s, 8)
	info, _ := registerCSV(t, ts, testCSV(12), "err=err")
	spec := JobSpec{Dataset: info.ID}

	// First job occupies the single worker.
	running, code, _ := postJob(t, ts, spec)
	if code != http.StatusAccepted {
		t.Fatalf("first job: status %d", code)
	}
	<-stub.started

	// Second job fills the queue. Distinct config avoids the result cache.
	queued, code, _ := postJob(t, ts, JobSpec{Dataset: info.ID, Config: JobConfig{K: 3}})
	if code != http.StatusAccepted {
		t.Fatalf("second job: status %d", code)
	}

	// Third submission must bounce with 429.
	_, code, body := postJob(t, ts, JobSpec{Dataset: info.ID, Config: JobConfig{K: 5}})
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submission: status %d (%s), want 429", code, body)
	}
	if v := s.ob.rejected.Value(); v != 1 {
		t.Errorf("sl_server_jobs_rejected_total = %d, want 1", v)
	}

	close(stub.release)
	for _, id := range []string{running.ID, queued.ID} {
		if got := waitJob(t, ts, id, 5*time.Second); got.Status != string(jobDone) {
			t.Errorf("job %s finished %q, want done", id, got.Status)
		}
	}
}

func TestCancelQueuedJobFreesSlot(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 4, Metrics: obs.NewRegistry()})
	stub := newBlockingStub(s, 8)
	info, _ := registerCSV(t, ts, testCSV(12), "err=err")

	blocker, _, _ := postJob(t, ts, JobSpec{Dataset: info.ID})
	<-stub.started
	queued, _, _ := postJob(t, ts, JobSpec{Dataset: info.ID, Config: JobConfig{K: 3}})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if got := waitJob(t, ts, queued.ID, time.Second); got.Status != string(jobCancelled) {
		t.Fatalf("queued job status %q, want cancelled", got.Status)
	}
	if d := s.ob.queueDepth.Value(); d != 0 {
		t.Errorf("queue depth after cancel = %v, want 0", d)
	}

	close(stub.release)
	if got := waitJob(t, ts, blocker.ID, 5*time.Second); got.Status != string(jobDone) {
		t.Errorf("blocker finished %q, want done", got.Status)
	}
	// The cancelled job must never have consumed the worker.
	close(stub.started)
	for id := range stub.started {
		if id == queued.ID {
			t.Error("cancelled-while-queued job reached a worker")
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 4, Metrics: obs.NewRegistry()})
	stub := newBlockingStub(s, 8)
	info, _ := registerCSV(t, ts, testCSV(12), "err=err")

	j, _, _ := postJob(t, ts, JobSpec{Dataset: info.ID})
	<-stub.started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()

	if got := waitJob(t, ts, j.ID, 5*time.Second); got.Status != string(jobCancelled) {
		t.Fatalf("running job status %q, want cancelled", got.Status)
	}
	if v := s.ob.cancelled.Value(); v != 1 {
		t.Errorf("sl_server_jobs_cancelled_total = %d, want 1", v)
	}

	// The freed slot must accept the next job.
	next, code, _ := postJob(t, ts, JobSpec{Dataset: info.ID, Config: JobConfig{K: 3}})
	if code != http.StatusAccepted {
		t.Fatalf("post-cancel submission: status %d", code)
	}
	<-stub.started
	close(stub.release)
	if got := waitJob(t, ts, next.ID, 5*time.Second); got.Status != string(jobDone) {
		t.Errorf("post-cancel job finished %q, want done", got.Status)
	}
}

func TestJobTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 4})
	newBlockingStub(s, 8) // never released: only the deadline can end the job
	info, _ := registerCSV(t, ts, testCSV(12), "err=err")

	j, code, _ := postJob(t, ts, JobSpec{Dataset: info.ID, TimeoutMS: 30})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	got := waitJob(t, ts, j.ID, 5*time.Second)
	if got.Status != string(jobFailed) {
		t.Fatalf("timed-out job status %q, want failed", got.Status)
	}
	if !strings.Contains(got.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", got.Error)
	}
}

func TestShutdownRejectsNewJobs(t *testing.T) {
	s, err := New(Config{Pool: 1, QueueDepth: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	info, _ := registerCSV(t, ts, testCSV(12), "err=err")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, code, _ := postJob(t, ts, JobSpec{Dataset: info.ID}); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submission: status %d, want 503", code)
	}
}

func TestJobListOmitsResults(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 4})
	stub := newBlockingStub(s, 8)
	close(stub.release) // jobs complete immediately
	info, _ := registerCSV(t, ts, testCSV(12), "err=err")
	j, _, _ := postJob(t, ts, JobSpec{Dataset: info.ID})
	waitJob(t, ts, j.ID, 5*time.Second)

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var list []JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(list) != 1 {
		t.Fatalf("list has %d jobs, want 1", len(list))
	}
	if list[0].Result != nil {
		t.Error("list view carries a full result")
	}
	if full := getJob(t, ts, j.ID); full.Result == nil {
		t.Error("single-job view misses the result")
	}
}
