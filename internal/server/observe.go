package server

import "sliceline/internal/obs"

// serverObs bundles the pre-resolved sl_server_* metric handles. With a nil
// registry every handle is nil and all updates are no-ops, matching the
// zero-cost-off convention of internal/core and internal/dist.
type serverObs struct {
	httpReqs    *obs.Counter
	datasets    *obs.Counter
	submitted   *obs.Counter
	rejected    *obs.Counter
	done        *obs.Counter
	failed      *obs.Counter
	cancelled   *obs.Counter
	cacheHits   *obs.Counter
	cacheMiss   *obs.Counter
	resumed     *obs.Counter
	journalErrs *obs.Counter
	appends     *obs.Counter
	refreshes   *obs.Counter
	queueDepth  *obs.Gauge
	inflight    *obs.Gauge
	monitors    *obs.Gauge
	jobSecs     *obs.Histogram
	queueSecs   *obs.Histogram
}

func newServerObs(r *obs.Registry) serverObs {
	return serverObs{
		httpReqs:  r.Counter("sl_server_http_requests_total", "HTTP requests served."),
		datasets:  r.Counter("sl_server_datasets_registered_total", "Datasets registered (excluding idempotent re-uploads)."),
		submitted: r.Counter("sl_server_jobs_submitted_total", "Jobs accepted into the queue or served from cache."),
		rejected:  r.Counter("sl_server_jobs_rejected_total", "Jobs rejected by admission control (HTTP 429)."),
		done:      r.Counter("sl_server_jobs_done_total", "Jobs completed successfully."),
		failed:    r.Counter("sl_server_jobs_failed_total", "Jobs that ended in an error."),
		cancelled: r.Counter("sl_server_jobs_cancelled_total", "Jobs cancelled via DELETE or shutdown."),
		cacheHits: r.Counter("sl_server_cache_hits_total", "Submissions served from the result cache without re-enumeration."),
		cacheMiss: r.Counter("sl_server_cache_misses_total", "Submissions that required a fresh enumeration."),
		resumed:   r.Counter("sl_server_jobs_resumed_total", "Journaled jobs re-enqueued after a server restart."),
		journalErrs: r.Counter("sl_server_journal_errors_total",
			"Journal writes that failed (the job kept serving; the next save retries the file)."),
		appends:    r.Counter("sl_server_appends_total", "Dataset append batches applied."),
		refreshes:  r.Counter("sl_server_monitor_refreshes_total", "Monitor top-K refreshes emitted."),
		queueDepth: r.Gauge("sl_server_queue_depth", "Jobs waiting for a worker slot."),
		inflight:   r.Gauge("sl_server_inflight_jobs", "Jobs currently executing."),
		monitors:   r.Gauge("sl_server_monitor_jobs", "Resident monitor jobs currently running."),
		jobSecs:    r.Histogram("sl_server_job_seconds", "Job execution wall time (excluding queue wait).", nil),
		queueSecs:  r.Histogram("sl_server_queue_wait_seconds", "Time a job spent queued before execution.", nil),
	}
}
