package server

import (
	"encoding/json"
	"sync"

	"sliceline/internal/core"
)

// logEvent is one entry of a job's event history. Exactly one payload is set,
// selected by kind: "level" (a completed lattice level), "result" (a
// monitor's refreshed top-K for one dataset generation), or "snapshot" (an
// anytime job's improving top-K with its certified optimality gap).
type logEvent struct {
	kind     string
	level    core.LevelStats
	result   resultEvent
	snapshot snapshotEvent
}

// resultEvent is the SSE payload of a monitor's "result" event: the full
// versioned result document plus the dataset generation it covers.
type resultEvent struct {
	Generation int             `json:"generation"`
	Rows       int             `json:"rows"`
	Result     json.RawMessage `json:"result"`
}

// snapshotEvent is the SSE payload of an anytime job's "snapshot" event: the
// decoded, annotated top-K after one completed lattice level plus the
// optimality gap certified at that point. Across one job's snapshots the
// top-K only improves and gap never increases.
type snapshotEvent struct {
	Level     int             `json:"level"`
	Gap       float64         `json:"gap"`
	ElapsedMS int64           `json:"elapsed_ms"`
	TopK      json.RawMessage `json:"top_k"`
}

// eventLog accumulates a job's progress events and terminal state, and lets
// any number of SSE subscribers replay the history and then follow live
// updates. Broadcast is by channel close: every update closes the current
// change channel and installs a fresh one, so a subscriber waits on one
// channel receive with no per-subscriber bookkeeping (a subscriber that
// disconnects simply stops reading).
type eventLog struct {
	mu       sync.Mutex
	entries  []logEvent
	terminal string // "", or a terminal job status
	errMsg   string
	change   chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{change: make(chan struct{})}
}

// addLevel appends one completed lattice level and wakes subscribers. It is
// wired into the run through core.Config.OnLevel.
func (l *eventLog) addLevel(ls core.LevelStats) {
	l.mu.Lock()
	l.entries = append(l.entries, logEvent{kind: "level", level: ls})
	l.wake()
	l.mu.Unlock()
}

// addResult appends one refreshed monitor result and wakes subscribers.
func (l *eventLog) addResult(ev resultEvent) {
	l.mu.Lock()
	l.entries = append(l.entries, logEvent{kind: "result", result: ev})
	l.wake()
	l.mu.Unlock()
}

// addSnapshot appends one anytime progress snapshot and wakes subscribers.
// It is wired into the run through core.Config.OnSnapshot.
func (l *eventLog) addSnapshot(ev snapshotEvent) {
	l.mu.Lock()
	l.entries = append(l.entries, logEvent{kind: "snapshot", snapshot: ev})
	l.wake()
	l.mu.Unlock()
}

// replay seeds the log with the levels of an already-complete result (cache
// hits, journal re-serves) so late subscribers still see the full history.
func (l *eventLog) replay(levels []core.LevelStats) {
	l.mu.Lock()
	l.entries = l.entries[:0]
	for _, ls := range levels {
		l.entries = append(l.entries, logEvent{kind: "level", level: ls})
	}
	l.wake()
	l.mu.Unlock()
}

// finish records the terminal state and wakes subscribers one last time.
func (l *eventLog) finish(status, errMsg string) {
	l.mu.Lock()
	if l.terminal == "" {
		l.terminal = status
		l.errMsg = errMsg
	}
	l.wake()
	l.mu.Unlock()
}

// wake must be called with l.mu held.
func (l *eventLog) wake() {
	close(l.change)
	l.change = make(chan struct{})
}

// next returns the entries at index >= from, the terminal status ("" while
// running), and a channel that is closed on the next update. A subscriber
// loops: drain new entries, stop on terminal, otherwise wait on the channel.
func (l *eventLog) next(from int) (entries []logEvent, terminal, errMsg string, wait <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.entries) {
		entries = append([]logEvent(nil), l.entries[from:]...)
	}
	return entries, l.terminal, l.errMsg, l.change
}
