package server

import (
	"sync"

	"sliceline/internal/core"
)

// eventLog accumulates a job's per-level progress events and terminal state,
// and lets any number of SSE subscribers replay the history and then follow
// live updates. Broadcast is by channel close: every update closes the
// current change channel and installs a fresh one, so a subscriber waits on
// one channel receive with no per-subscriber bookkeeping (a subscriber that
// disconnects simply stops reading).
type eventLog struct {
	mu       sync.Mutex
	levels   []core.LevelStats
	terminal string // "", or a terminal job status
	errMsg   string
	change   chan struct{}
}

func newEventLog() *eventLog {
	return &eventLog{change: make(chan struct{})}
}

// addLevel appends one completed lattice level and wakes subscribers. It is
// wired into the run through core.Config.OnLevel.
func (l *eventLog) addLevel(ls core.LevelStats) {
	l.mu.Lock()
	l.levels = append(l.levels, ls)
	l.wake()
	l.mu.Unlock()
}

// replay seeds the log with the levels of an already-complete result (cache
// hits, journal re-serves) so late subscribers still see the full history.
func (l *eventLog) replay(levels []core.LevelStats) {
	l.mu.Lock()
	l.levels = append([]core.LevelStats(nil), levels...)
	l.wake()
	l.mu.Unlock()
}

// finish records the terminal state and wakes subscribers one last time.
func (l *eventLog) finish(status, errMsg string) {
	l.mu.Lock()
	if l.terminal == "" {
		l.terminal = status
		l.errMsg = errMsg
	}
	l.wake()
	l.mu.Unlock()
}

// wake must be called with l.mu held.
func (l *eventLog) wake() {
	close(l.change)
	l.change = make(chan struct{})
}

// next returns the levels at index >= from, the terminal status ("" while
// running), and a channel that is closed on the next update. A subscriber
// loops: drain new levels, stop on terminal, otherwise wait on the channel.
func (l *eventLog) next(from int) (levels []core.LevelStats, terminal, errMsg string, wait <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.levels) {
		levels = append([]core.LevelStats(nil), l.levels[from:]...)
	}
	return levels, l.terminal, l.errMsg, l.change
}
