package dist

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"sliceline/internal/core"
	"sliceline/internal/matrix"
)

// LoadArgs ships a row partition to a remote worker (gob-encoded).
type LoadArgs struct {
	Part       int
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
	Err        []float64
}

// LoadReply acknowledges a Load.
type LoadReply struct{}

// EvalArgs broadcasts slice candidates to a worker.
type EvalArgs struct {
	Part      int
	Cols      [][]int
	Level     int
	BlockSize int
}

// EvalReply carries the partial statistics of one partition.
type EvalReply struct {
	SS, SE, SM []float64
}

// Service is the RPC service a worker process exposes. Register it with
// net/rpc and serve on a TCP listener (see Serve and cmd/slworker). It
// holds any number of partitions keyed by id, supporting driver-side
// failover.
type Service struct {
	mu    sync.Mutex
	parts map[int]partition
}

// Load implements the worker side of partition shipping.
func (s *Service) Load(args *LoadArgs, _ *LoadReply) error {
	if len(args.RowPtr) != args.Rows+1 {
		return fmt.Errorf("dist: bad partition: %d rowPtr entries for %d rows", len(args.RowPtr), args.Rows)
	}
	if len(args.Err) != args.Rows {
		return fmt.Errorf("dist: bad partition: %d errors for %d rows", len(args.Err), args.Rows)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.parts == nil {
		s.parts = make(map[int]partition)
	}
	s.parts[args.Part] = partition{
		x: matrix.NewCSR(args.Rows, args.Cols, args.RowPtr, args.ColIdx, args.Val),
		e: args.Err,
	}
	return nil
}

// Eval implements the worker side of candidate evaluation.
func (s *Service) Eval(args *EvalArgs, reply *EvalReply) error {
	s.mu.Lock()
	p, ok := s.parts[args.Part]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("dist: worker holds no partition %d", args.Part)
	}
	n := len(args.Cols)
	reply.SS = make([]float64, n)
	reply.SE = make([]float64, n)
	reply.SM = make([]float64, n)
	core.EvalPartition(p.x, p.e, args.Cols, args.Level, args.BlockSize, reply.SS, reply.SE, reply.SM)
	return nil
}

// Server serves worker RPCs on a listener and supports abrupt Stop,
// modelling worker crashes for failover drills: Stop closes the listener
// and every established connection, so in-flight and future calls from
// drivers fail with transport errors. A restarted Server on the same
// address starts with an empty partition map, like a respawned process.
type Server struct {
	lis net.Listener
	srv *rpc.Server

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewServer wraps a listener in a worker RPC server; call Serve to run it.
func NewServer(lis net.Listener) (*Server, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &Service{}); err != nil {
		return nil, err
	}
	return &Server{lis: lis, srv: srv, conns: make(map[net.Conn]struct{})}, nil
}

// Serve accepts and serves connections until the listener closes. Each
// connection is served concurrently. It returns nil when Stop (or a direct
// listener Close) ends the accept loop.
func (s *Server) Serve() error {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			s.srv.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Stop abruptly shuts the server down: the listener and all established
// connections are closed, as if the worker process died.
func (s *Server) Stop() {
	s.lis.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
	}
}

// Serve accepts worker connections on the listener until it is closed. Each
// connection is served concurrently. It returns when the listener closes.
func Serve(lis net.Listener) error {
	s, err := NewServer(lis)
	if err != nil {
		return err
	}
	return s.Serve()
}

// RemoteWorker talks to a worker process over TCP with gob-encoded RPC. It
// models the broadcast/serialization overheads of the paper's distributed
// backend. When a call fails at the transport level (worker crashed,
// connection dropped), the next call transparently redials the worker's
// address once, so a worker restarted on the same address — with its
// partitions gone, but alive — rejoins the cluster instead of being lost
// for the rest of the run.
type RemoteWorker struct {
	addr string

	mu     sync.Mutex
	client *rpc.Client
}

// Dial connects to a worker at addr (host:port).
func Dial(addr string) (*RemoteWorker, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: dialing %s: %w", addr, err)
	}
	return &RemoteWorker{addr: addr, client: client}, nil
}

// call performs one RPC, redialing once on transport-level failure.
// Server-side application errors (rpc.ServerError) are returned as-is:
// the connection is fine, the worker just rejected the request.
func (w *RemoteWorker) call(method string, args, reply interface{}) error {
	w.mu.Lock()
	client := w.client
	w.mu.Unlock()
	err := client.Call(method, args, reply)
	if err == nil || isServerError(err) {
		return err
	}
	// Transport failure: the worker may have restarted — redial once.
	nc, derr := rpc.Dial("tcp", w.addr)
	if derr != nil {
		return err // still unreachable; report the original failure
	}
	w.mu.Lock()
	old := w.client
	w.client = nc
	w.mu.Unlock()
	old.Close()
	return nc.Call(method, args, reply)
}

func isServerError(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se)
}

// Load implements Worker.
func (w *RemoteWorker) Load(part int, x *matrix.CSR, e []float64) error {
	rowPtr, colIdx, val := x.Components()
	args := &LoadArgs{
		Part: part,
		Rows: x.Rows(), Cols: x.Cols(),
		RowPtr: rowPtr, ColIdx: colIdx, Val: val, Err: e,
	}
	return w.call("Worker.Load", args, &LoadReply{})
}

// Eval implements Worker.
func (w *RemoteWorker) Eval(part int, cols [][]int, level, blockSize int) (ss, se, sm []float64, err error) {
	var reply EvalReply
	err = w.call("Worker.Eval", &EvalArgs{Part: part, Cols: cols, Level: level, BlockSize: blockSize}, &reply)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dist: eval on %s: %w", w.addr, err)
	}
	return reply.SS, reply.SE, reply.SM, nil
}

// Close implements Worker.
func (w *RemoteWorker) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.client.Close()
}

var _ Worker = (*RemoteWorker)(nil)
var _ Worker = (*InProcessWorker)(nil)
