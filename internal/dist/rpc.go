package dist

import (
	"bufio"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/rpc"
	"sort"
	"strings"
	"sync"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/matrix"
	"sliceline/internal/obs"
)

// LoadArgs ships a row partition to a remote worker (gob-encoded).
type LoadArgs struct {
	Part       int
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
	Err        []float64
}

// LoadReply acknowledges a Load.
type LoadReply struct{}

// EvalArgs broadcasts slice candidates to a worker.
type EvalArgs struct {
	Part      int
	Cols      [][]int
	Level     int
	BlockSize int
}

// EvalReply carries the partial statistics of one partition.
type EvalReply struct {
	SS, SE, SM []float64
}

// PingArgs is the (empty) request of the liveness probe.
type PingArgs struct{}

// PingReply is the (empty) response of the liveness probe.
type PingReply struct{}

// PartsArgs is the (empty) request of the held-partition query.
type PartsArgs struct{}

// PartsReply lists the partition keys a worker currently holds. The elastic
// cluster asks a rejoining worker so warm partitions re-attach by key
// instead of being re-shipped.
type PartsReply struct {
	Keys []int
}

// PartitionLister is the optional Worker capability behind warm re-attach:
// a worker that can report which partition keys it holds lets the elastic
// cluster skip re-shipping data a rejoining member never lost.
type PartitionLister interface {
	Parts(ctx context.Context) ([]int, error)
}

// Service is the RPC service a worker process exposes. Register it with
// net/rpc and serve on a TCP listener (see Serve and cmd/slworker). It
// holds any number of partitions keyed by id, supporting driver-side
// failover. With content-addressed keys the held set accrues across jobs
// (that is what makes rejoins warm), so maxParts bounds it with
// least-recently-used eviction.
type Service struct {
	mode     core.BitsetMode
	maxParts int
	mu       sync.Mutex
	parts    map[int]*core.Kernel
	lastUse  map[int]uint64
	useSeq   uint64
	ob       svcObs
}

// Load implements the worker side of partition shipping.
func (s *Service) Load(args *LoadArgs, _ *LoadReply) error {
	if len(args.RowPtr) != args.Rows+1 {
		return fmt.Errorf("dist: bad partition: %d rowPtr entries for %d rows", len(args.RowPtr), args.Rows)
	}
	if len(args.Err) != args.Rows {
		return fmt.Errorf("dist: bad partition: %d errors for %d rows", len(args.Err), args.Rows)
	}
	s.ob.loads.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.parts == nil {
		s.parts = make(map[int]*core.Kernel)
		s.lastUse = make(map[int]uint64)
	}
	if _, held := s.parts[args.Part]; !held && s.maxParts > 0 && len(s.parts) >= s.maxParts {
		s.evictLRULocked()
	}
	x := matrix.NewCSR(args.Rows, args.Cols, args.RowPtr, args.ColIdx, args.Val)
	s.parts[args.Part] = core.NewKernel(x, args.Err, nil, s.mode)
	s.touchLocked(args.Part)
	rows := 0
	for _, k := range s.parts {
		rows += k.Rows()
	}
	s.ob.parts.Set(float64(len(s.parts)))
	s.ob.rows.Set(float64(rows))
	return nil
}

// evictLRULocked drops the least-recently-used partition to make room.
func (s *Service) evictLRULocked() {
	victim, best := -1, uint64(0)
	for key, seq := range s.lastUse {
		if victim < 0 || seq < best {
			victim, best = key, seq
		}
	}
	if victim >= 0 {
		delete(s.parts, victim)
		delete(s.lastUse, victim)
		s.ob.evictedParts.Inc()
	}
}

func (s *Service) touchLocked(key int) {
	s.useSeq++
	s.lastUse[key] = s.useSeq
}

// Eval implements the worker side of candidate evaluation.
func (s *Service) Eval(args *EvalArgs, reply *EvalReply) error {
	s.ob.evals.Inc()
	s.mu.Lock()
	k, ok := s.parts[args.Part]
	if ok {
		s.touchLocked(args.Part)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("dist: worker holds no partition %d", args.Part)
	}
	n := len(args.Cols)
	s.ob.cands.Add(int64(n))
	reply.SS = make([]float64, n)
	reply.SE = make([]float64, n)
	reply.SM = make([]float64, n)
	start := time.Now()
	k.Eval(args.Cols, args.Level, args.BlockSize, reply.SS, reply.SE, reply.SM)
	s.ob.evalSecs.Observe(time.Since(start).Seconds())
	return nil
}

// Ping implements the worker side of the liveness probe used by the
// cluster's background health checker.
func (s *Service) Ping(_ *PingArgs, _ *PingReply) error {
	s.ob.pings.Inc()
	return nil
}

// Parts implements the worker side of the held-partition query (warm
// re-attach reconciliation). Keys are returned sorted for determinism.
func (s *Service) Parts(_ *PartsArgs, reply *PartsReply) error {
	s.mu.Lock()
	reply.Keys = make([]int, 0, len(s.parts))
	for key := range s.parts {
		reply.Keys = append(reply.Keys, key)
	}
	s.mu.Unlock()
	sort.Ints(reply.Keys)
	return nil
}

// Server serves worker RPCs on a listener. It supports abrupt Stop —
// modelling worker crashes for failover drills — and graceful Shutdown,
// which stops accepting connections, waits for in-flight calls to complete,
// and only then tears connections down, so a drained worker never leaves a
// driver holding a torn half-written reply. A restarted Server on the same
// address starts with an empty partition map, like a respawned process.
type Server struct {
	lis net.Listener
	srv *rpc.Server

	mu       sync.Mutex
	idle     *sync.Cond // signalled when inflight drops to zero while draining
	conns    map[net.Conn]struct{}
	inflight int
	draining bool
}

// ServerOptions configures a worker RPC server's observability and kernel
// selection.
type ServerOptions struct {
	// Metrics, when non-nil, receives the worker-side RPC counters, eval
	// latency histogram and partition/row gauges (the sl_worker_* families).
	// Expose the registry over HTTP with obs.Handler (see cmd/slworker's
	// -metrics-addr flag).
	Metrics *obs.Registry

	// BitsetEval selects the worker-side slice-membership kernel
	// (Config.BitsetEval semantics) for every partition this server loads;
	// the zero value is automatic selection by partition density. Exposed as
	// cmd/slworker's -bitset flag.
	BitsetEval core.BitsetMode

	// MaxPartitions bounds how many partitions this worker holds at once;
	// the least-recently-used one is evicted to make room. Content-addressed
	// keys accrue across jobs (that is what makes rejoins warm), so
	// long-lived fleet workers should set a cap. <= 0 means unbounded.
	MaxPartitions int
}

// NewServer wraps a listener in a worker RPC server; call Serve to run it.
func NewServer(lis net.Listener) (*Server, error) {
	return NewServerOpts(lis, ServerOptions{})
}

// NewServerOpts is NewServer with explicit observability options.
func NewServerOpts(lis net.Listener, opts ServerOptions) (*Server, error) {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", &Service{mode: opts.BitsetEval, maxParts: opts.MaxPartitions, ob: newSvcObs(opts.Metrics)}); err != nil {
		return nil, err
	}
	s := &Server{lis: lis, srv: srv, conns: make(map[net.Conn]struct{})}
	s.idle = sync.NewCond(&s.mu)
	return s, nil
}

// Serve accepts and serves connections until the listener closes. Each
// connection is served concurrently. It returns nil when Stop, Shutdown, or
// a direct listener Close ends the accept loop.
func (s *Server) Serve() error {
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			// Refuse connections that raced with shutdown.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			s.srv.ServeCodec(newCountingCodec(conn, s))
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Stop abruptly shuts the server down: the listener and all established
// connections are closed, as if the worker process died.
func (s *Server) Stop() {
	s.lis.Close()
	s.mu.Lock()
	defer s.mu.Unlock()
	for conn := range s.conns {
		conn.Close()
	}
}

// Shutdown drains the server gracefully: it closes the listener (refusing
// new connections), waits for every in-flight call to finish writing its
// reply, then closes the remaining connections. It returns the context's
// error if the deadline expires with calls still in flight (those are then
// cut, as Stop would).
func (s *Server) Shutdown(ctx context.Context) error {
	s.lis.Close()
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	go func() {
		<-wctx.Done()
		s.mu.Lock()
		s.idle.Broadcast()
		s.mu.Unlock()
	}()
	s.mu.Lock()
	s.draining = true
	for s.inflight > 0 && ctx.Err() == nil {
		s.idle.Wait()
	}
	drained := s.inflight == 0
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	if !drained {
		return ctx.Err()
	}
	return nil
}

func (s *Server) requestStarted() {
	s.mu.Lock()
	s.inflight++
	s.mu.Unlock()
}

func (s *Server) requestDone() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 && s.draining {
		s.idle.Broadcast()
	}
	s.mu.Unlock()
}

// countingCodec is the standard gob server codec with in-flight request
// accounting hooked in: a request counts from the moment its header is read
// until its response has been flushed, which is exactly the window Shutdown
// must wait out.
type countingCodec struct {
	rwc    io.ReadWriteCloser
	dec    *gob.Decoder
	enc    *gob.Encoder
	encBuf *bufio.Writer
	srv    *Server
	closed bool
}

func newCountingCodec(conn io.ReadWriteCloser, srv *Server) *countingCodec {
	buf := bufio.NewWriter(conn)
	return &countingCodec{
		rwc:    conn,
		dec:    gob.NewDecoder(conn),
		enc:    gob.NewEncoder(buf),
		encBuf: buf,
		srv:    srv,
	}
}

func (c *countingCodec) ReadRequestHeader(r *rpc.Request) error {
	if err := c.dec.Decode(r); err != nil {
		return err
	}
	c.srv.requestStarted()
	return nil
}

func (c *countingCodec) ReadRequestBody(body interface{}) error {
	return c.dec.Decode(body)
}

func (c *countingCodec) WriteResponse(r *rpc.Response, body interface{}) error {
	defer c.srv.requestDone()
	if err := c.enc.Encode(r); err != nil {
		return err
	}
	if err := c.enc.Encode(body); err != nil {
		return err
	}
	return c.encBuf.Flush()
}

func (c *countingCodec) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.rwc.Close()
}

// Serve accepts worker connections on the listener until it is closed. Each
// connection is served concurrently. It returns when the listener closes.
func Serve(lis net.Listener) error {
	s, err := NewServer(lis)
	if err != nil {
		return err
	}
	return s.Serve()
}

// DialOptions bounds reconnection behavior of a RemoteWorker.
type DialOptions struct {
	// DialTimeout caps one TCP connection attempt. <= 0 defaults to 5s.
	DialTimeout time.Duration
	// MaxAttempts is the number of dial attempts per outage before the
	// reconnect is abandoned. <= 0 defaults to 4.
	MaxAttempts int
	// BaseBackoff is the wait before the second attempt; it doubles per
	// attempt with ±50% jitter. <= 0 defaults to 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the growing backoff. <= 0 defaults to 2s.
	MaxBackoff time.Duration
}

func (o DialOptions) withDefaults() DialOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	return o
}

// RemoteWorker talks to a worker process over TCP with gob-encoded RPC. It
// models the broadcast/serialization overheads of the paper's distributed
// backend. When a call fails at the transport level (worker crashed,
// connection dropped), the next call transparently reconnects with bounded
// exponential backoff, so a worker restarted on the same address — with its
// partitions gone, but alive — rejoins the cluster instead of being lost
// for the rest of the run. Reconnection is single-flight: concurrent calls
// failing on the same dead connection share one dial instead of racing to
// replace (and close) each other's fresh clients.
type RemoteWorker struct {
	addr string
	opts DialOptions

	mu          sync.Mutex
	cond        *sync.Cond  // guards the single-flight dial hand-off
	client      *rpc.Client // nil while disconnected
	gen         int         // increments per successful dial; identifies a connection
	dialing     bool        // a dial is in flight; waiters block on cond
	dialGen     int         // increments per finished dial attempt (success or failure)
	lastDialErr error       // outcome of the most recent failed dial
	closed      bool
}

// Dial connects to a worker at addr (host:port) with default options.
func Dial(addr string) (*RemoteWorker, error) {
	return DialOpts(addr, DialOptions{})
}

// DialOpts connects to a worker at addr with explicit reconnect options.
// The initial connection is attempted eagerly so a bad address fails fast.
func DialOpts(addr string, opts DialOptions) (*RemoteWorker, error) {
	w := &RemoteWorker{addr: addr, opts: opts.withDefaults()}
	w.cond = sync.NewCond(&w.mu)
	client, err := w.dialOnce(context.Background())
	if err != nil {
		return nil, fmt.Errorf("dist: dialing %s: %w", addr, err)
	}
	w.client = client
	w.gen = 1
	return w, nil
}

func (w *RemoteWorker) dialOnce(ctx context.Context) (*rpc.Client, error) {
	d := net.Dialer{Timeout: w.opts.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", w.addr)
	if err != nil {
		return nil, err
	}
	return rpc.NewClient(conn), nil
}

// dialBackoff retries dialOnce with exponential backoff and jitter, bounded
// by MaxAttempts and the context.
func (w *RemoteWorker) dialBackoff(ctx context.Context) (*rpc.Client, error) {
	backoff := w.opts.BaseBackoff
	var lastErr error
	for attempt := 0; attempt < w.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Full jitter on the upper half de-synchronizes workers that all
			// lost the same peer at the same moment.
			sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if backoff *= 2; backoff > w.opts.MaxBackoff {
				backoff = w.opts.MaxBackoff
			}
		}
		client, err := w.dialOnce(ctx)
		if err == nil {
			return client, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("dist: redialing %s after %d attempts: %w", w.addr, w.opts.MaxAttempts, lastErr)
}

// conn returns the live client, reconnecting (single-flight) when the
// previous connection was invalidated. Callers that arrive while another
// goroutine is dialing wait for that dial instead of starting their own; if
// it fails they inherit its error, so one outage costs one dial sequence.
func (w *RemoteWorker) conn(ctx context.Context) (*rpc.Client, int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.closed {
			return nil, 0, fmt.Errorf("dist: worker %s is closed", w.addr)
		}
		if w.client != nil {
			return w.client, w.gen, nil
		}
		if w.dialing {
			g := w.dialGen
			w.cond.Wait()
			if w.client == nil && w.dialGen != g && w.lastDialErr != nil {
				return nil, 0, w.lastDialErr
			}
			continue
		}
		w.dialing = true
		w.mu.Unlock()
		client, err := w.dialBackoff(ctx)
		w.mu.Lock()
		w.dialing = false
		w.dialGen++
		switch {
		case err != nil:
			w.lastDialErr = err
		case w.closed:
			client.Close()
			err = fmt.Errorf("dist: worker %s is closed", w.addr)
		default:
			w.client = client
			w.gen++
			w.lastDialErr = nil
		}
		w.cond.Broadcast()
		if err != nil {
			return nil, 0, err
		}
	}
}

// invalidate retires a failed connection. The generation check makes it
// idempotent under races: if another goroutine already replaced the client,
// the fresh connection is left alone.
func (w *RemoteWorker) invalidate(client *rpc.Client, gen int) {
	w.mu.Lock()
	if w.gen == gen && w.client == client {
		w.client = nil
	}
	w.mu.Unlock()
	client.Close()
}

// call performs one RPC under the context's deadline, reconnecting once on
// transport-level failure. Server-side application errors (rpc.ServerError)
// are returned as-is: the connection is fine, the worker just rejected the
// request. When the context expires mid-call the connection is poisoned —
// its gob stream now carries an orphan reply — and the next call redials.
func (w *RemoteWorker) call(ctx context.Context, method string, args, reply interface{}) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		client, gen, err := w.conn(ctx)
		if err != nil {
			if lastErr != nil {
				return lastErr
			}
			return err
		}
		err = w.invoke(ctx, client, gen, method, args, reply)
		if err == nil || isServerError(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		w.invalidate(client, gen)
		lastErr = err
	}
	return lastErr
}

// invoke runs one RPC on a specific connection, aborting when the context
// is done. net/rpc has no native deadline support, so an abandoned call's
// connection cannot be reused — it is invalidated and the in-flight call
// unblocks with ErrShutdown when the client closes.
func (w *RemoteWorker) invoke(ctx context.Context, client *rpc.Client, gen int, method string, args, reply interface{}) error {
	call := client.Go(method, args, reply, make(chan *rpc.Call, 1))
	select {
	case <-ctx.Done():
		w.invalidate(client, gen)
		return fmt.Errorf("dist: %s on %s: %w", method, w.addr, ctx.Err())
	case done := <-call.Done:
		return done.Error
	}
}

func isServerError(err error) bool {
	var se rpc.ServerError
	return errors.As(err, &se)
}

// Load implements Worker.
func (w *RemoteWorker) Load(ctx context.Context, part int, x *matrix.CSR, e []float64) error {
	rowPtr, colIdx, val := x.Components()
	args := &LoadArgs{
		Part: part,
		Rows: x.Rows(), Cols: x.Cols(),
		RowPtr: rowPtr, ColIdx: colIdx, Val: val, Err: e,
	}
	return w.call(ctx, "Worker.Load", args, &LoadReply{})
}

// Eval implements Worker.
func (w *RemoteWorker) Eval(ctx context.Context, part int, cols [][]int, level, blockSize int) (ss, se, sm []float64, err error) {
	var reply EvalReply
	err = w.call(ctx, "Worker.Eval", &EvalArgs{Part: part, Cols: cols, Level: level, BlockSize: blockSize}, &reply)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dist: eval on %s: %w", w.addr, err)
	}
	return reply.SS, reply.SE, reply.SM, nil
}

// Ping implements Worker.
func (w *RemoteWorker) Ping(ctx context.Context) error {
	return w.call(ctx, "Worker.Ping", &PingArgs{}, &PingReply{})
}

// Parts implements PartitionLister: the partition keys the worker process
// currently holds.
func (w *RemoteWorker) Parts(ctx context.Context) ([]int, error) {
	var reply PartsReply
	if err := w.call(ctx, "Worker.Parts", &PartsArgs{}, &reply); err != nil {
		return nil, fmt.Errorf("dist: parts on %s: %w", w.addr, err)
	}
	return reply.Keys, nil
}

// ParseWorkerList parses a comma-separated -workers flag value into a clean
// address list: entries are trimmed, empty entries are dropped, a value with
// no addresses at all is an error, and duplicate addresses are rejected — a
// duplicate would silently halve a static cluster's capacity by shipping two
// partitions to one process.
func ParseWorkerList(s string) ([]string, error) {
	var out []string
	seen := make(map[string]struct{})
	for _, raw := range strings.Split(s, ",") {
		addr := strings.TrimSpace(raw)
		if addr == "" {
			continue
		}
		if _, dup := seen[addr]; dup {
			return nil, fmt.Errorf("dist: duplicate worker address %q", addr)
		}
		seen[addr] = struct{}{}
		out = append(out, addr)
	}
	if len(out) == 0 {
		return nil, errors.New("dist: no worker addresses in list")
	}
	return out, nil
}

// Close implements Worker.
func (w *RemoteWorker) Close() error {
	w.mu.Lock()
	w.closed = true
	client := w.client
	w.client = nil
	w.cond.Broadcast()
	w.mu.Unlock()
	if client != nil {
		return client.Close()
	}
	return nil
}

var _ Worker = (*RemoteWorker)(nil)
var _ Worker = (*InProcessWorker)(nil)
