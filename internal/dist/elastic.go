package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/matrix"
	"sliceline/internal/membership"
	"sliceline/internal/obs"
)

var _ core.ExternalEvaluator = (*ElasticCluster)(nil)

// DefaultElasticPartitions is the partition count an elastic cluster uses
// when Options.Partitions is unset. A fixed, worker-count-independent split
// is what keeps the deterministic partition-order merge — and therefore the
// result bits — stable while the fleet churns.
const DefaultElasticPartitions = 8

// Dialer turns a fleet member into a Worker connection. The production
// implementation is MemberDialer (TCP gob RPC); tests inject in-process
// workers.
type Dialer func(ctx context.Context, m membership.Member) (Worker, error)

// MemberDialer returns a Dialer connecting to members' advertised addresses
// over the standard RemoteWorker transport.
func MemberDialer(opts DialOptions) Dialer {
	return func(_ context.Context, m membership.Member) (Worker, error) {
		return DialOpts(m.Addr, opts)
	}
}

// memberSlot is the elastic cluster's per-member bookkeeping: which worker
// slot the member occupies, whether it is in the current view, and which
// partition keys it reported holding when it last (re)joined.
type memberSlot struct {
	member membership.Member
	wi     int
	live   bool
	warm   map[int]bool
}

// ElasticCluster is a Dist-PFor evaluator over a self-forming fleet: instead
// of a fixed worker list it consumes membership views (from a Registrar via
// Follow, or directly via ApplyView) and keeps the underlying Cluster's
// worker set, liveness, and partition placement in sync.
//
// Placement goes through a consistent-hash ring over the live member IDs
// with content-addressed partition keys, so
//
//   - a member that flaps and rejoins with the same incarnation is handed
//     back exactly the partitions it already holds (warm re-attach, no data
//     motion),
//   - a joining member takes over only the ring arcs it owns (bounded
//     re-shipping), and
//   - a departing member's partitions move to their next ring owners while
//     evaluations already in flight fail over mid-run.
//
// Because Options.Partitions fixes the merge structure and the degraded
// driver-local path uses the same kernel as workers, results are
// bit-identical at every fleet size, including zero.
type ElasticCluster struct {
	c      *Cluster
	dial   Dialer
	vnodes int

	mu      sync.Mutex
	slots   map[string]*memberSlot
	ring    *membership.Ring
	version uint64
	closed  bool
}

// NewElasticCluster builds an elastic Dist-PFor evaluator. The cluster
// starts with an empty fleet; feed it views with ApplyView or Follow.
// Options.Partitions defaults to DefaultElasticPartitions and LocalFallback
// defaults on — an elastic fleet that empties out mid-run degrades to
// driver-local evaluation rather than failing the job. Set
// Options.PlacementSeed (e.g. the dataset's content signature) to make
// partition keys content-addressed across jobs.
func NewElasticCluster(dial Dialer, opts Options) (*ElasticCluster, error) {
	if dial == nil {
		return nil, errors.New("dist: elastic cluster needs a dialer")
	}
	if opts.Partitions <= 0 {
		opts.Partitions = DefaultElasticPartitions
	}
	opts.LocalFallback = true
	ec := &ElasticCluster{
		dial:   dial,
		vnodes: membership.DefaultVnodes,
		slots:  make(map[string]*memberSlot),
	}
	c := &Cluster{opts: opts.withDefaults(), ob: newDistObs(opts.Metrics, 0), elastic: true}
	c.place = ec.place
	c.warm = ec.warmForKey
	ec.c = c
	return ec, nil
}

// Setup implements core.ExternalEvaluator: partition X and e and ship the
// partitions to the current fleet per the placement ring. With no members
// yet, every partition is held on the driver and handed out as workers join.
func (ec *ElasticCluster) Setup(ctx context.Context, x *matrix.CSR, e []float64) error {
	return ec.c.Setup(ctx, x, e)
}

// Eval implements core.ExternalEvaluator, inheriting the static cluster's
// failover, hedging, and deterministic partition-order merge.
func (ec *ElasticCluster) Eval(ctx context.Context, cols [][]int, level int) (ss, se, sm []float64, err error) {
	return ec.c.Eval(ctx, cols, level)
}

// Close shuts down every dialed worker.
func (ec *ElasticCluster) Close() error {
	ec.mu.Lock()
	ec.closed = true
	ec.mu.Unlock()
	return ec.c.Close()
}

// LiveMembers returns the IDs of members in the current view, sorted.
func (ec *ElasticCluster) LiveMembers() []string {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	ids := ec.liveIDsLocked()
	return ids
}

func (ec *ElasticCluster) liveIDsLocked() []string {
	ids := make([]string, 0, len(ec.slots))
	for id, s := range ec.slots {
		if s.live {
			ids = append(ids, id)
		}
	}
	// BuildRing sorts internally; sort here too so LiveMembers is stable.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

// place is the Cluster's placement hook: the ring owner's worker slot for a
// partition, or -1 when no live member owns it.
func (ec *ElasticCluster) place(part, nParts int) int {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.placeLocked(part, nParts)
}

func (ec *ElasticCluster) placeLocked(part, nParts int) int {
	if ec.ring == nil {
		return -1
	}
	owner, ok := ec.ring.Owner(ec.key64(part, nParts))
	if !ok {
		return -1
	}
	s := ec.slots[owner]
	if s == nil || !s.live {
		return -1
	}
	return s.wi
}

// key64 is the full-width placement key of a partition (wireKey is this with
// the top bit cleared when seeded; the ring uses all 64 bits).
func (ec *ElasticCluster) key64(part, nParts int) uint64 {
	return membership.PartitionKey(ec.c.opts.PlacementSeed, nParts, part)
}

// warmForKey is the Cluster's Setup-time warm hook: true when the live
// member in slot wi reported holding this wire key when it was last asked
// (queryWarm at dial or rejoin time).
func (ec *ElasticCluster) warmForKey(key, wi int) bool {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	for _, s := range ec.slots {
		if s.wi == wi && s.live && s.warm[key] {
			return true
		}
	}
	return false
}

// ApplyView reconciles the cluster against one membership view: new members
// are dialed and added, departed members are marked dead (in-flight
// evaluations on them fail over mid-run), rejoining members are revived —
// warm when their incarnation is unchanged — and partition placement is
// rebalanced onto the new ring. Stale views (older than one already applied)
// are ignored. It never fails the cluster: a member that cannot be dialed
// is simply not added, and Follow retries on its next tick.
func (ec *ElasticCluster) ApplyView(ctx context.Context, v membership.View) {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if ec.closed || (v.Version != 0 && v.Version < ec.version) {
		return
	}
	ec.version = v.Version

	inView := make(map[string]membership.Member, len(v.Members))
	for _, m := range v.Members {
		inView[m.ID] = m
	}
	// Departures first, so their slots are dead before placement reconverges.
	for id, s := range ec.slots {
		if _, ok := inView[id]; !ok && s.live {
			s.live = false
			ec.c.markDead(s.wi)
			ec.c.ob.leaves.Inc()
		}
	}
	for id, m := range inView {
		s := ec.slots[id]
		switch {
		case s == nil:
			w, err := ec.dial(ctx, m)
			if err != nil {
				continue // not reachable yet; Follow's next tick retries
			}
			s = &memberSlot{member: m, wi: ec.c.addWorker(w), live: true}
			s.warm = ec.queryWarm(ctx, w)
			ec.slots[id] = s
			ec.c.ob.joins.Inc()
		case !s.live || s.member != m:
			if m.Addr != s.member.Addr {
				// Re-homed: the old slot's connection dials the old address.
				// Retire it and dial the new home into a fresh slot.
				ec.c.markDead(s.wi)
				w, err := ec.dial(ctx, m)
				if err != nil {
					s.live = false
					continue
				}
				s.wi = ec.c.addWorker(w)
			} else {
				ec.c.reviveWorker(s.wi)
			}
			// An unchanged incarnation means the process never died — its
			// partitions are still loaded and re-attach warm. A higher one is
			// a restarted, amnesiac process; asking it (queryWarm) returns
			// the truth either way.
			s.warm = ec.queryWarm(ctx, ec.c.workerAt(s.wi))
			s.member = m
			s.live = true
			ec.c.ob.joins.Inc()
		}
	}
	ids := ec.liveIDsLocked()
	ec.ring = membership.BuildRing(ids, ec.vnodes)
	ec.c.ob.members.Set(float64(len(ids)))
	ec.rebalanceLocked(ctx)
}

// queryWarm asks a worker which partition keys it holds, bounded by the
// heartbeat timeout. Workers without the PartitionLister capability (or
// failing the call) report cold — the only cost is a re-ship.
func (ec *ElasticCluster) queryWarm(ctx context.Context, w Worker) map[int]bool {
	pl, ok := w.(PartitionLister)
	if !ok {
		return nil
	}
	qctx, cancel := context.WithTimeout(ctx, ec.c.opts.HeartbeatTimeout)
	defer cancel()
	keys, err := pl.Parts(qctx)
	if err != nil || len(keys) == 0 {
		return nil
	}
	warm := make(map[int]bool, len(keys))
	for _, k := range keys {
		warm[k] = true
	}
	return warm
}

// rebalanceLocked converges partition assignments onto the current ring:
// every partition whose ring owner differs from its assignment moves there —
// without any data motion when the owner is warm for the partition's key.
// A failed ship leaves the old assignment for the mid-run failover (or
// degraded local) path to handle. Callers hold ec.mu.
func (ec *ElasticCluster) rebalanceLocked(ctx context.Context) {
	nParts := ec.c.partitionCount()
	if nParts == 0 {
		return // before Setup (or a zero-row dataset): nothing placed yet
	}
	sp := obs.Start(ec.c.opts.Tracer, "dist.rebalance")
	defer sp.End()
	sp.SetInt("version", int64(ec.version))
	sp.SetInt("partitions", int64(nParts))
	moved, warm := 0, 0
	for p := 0; p < nParts; p++ {
		desired := ec.placeLocked(p, nParts)
		cur := ec.c.assignOf(p)
		if desired < 0 || desired == cur {
			// No live owner: keep the current assignment; if that worker is
			// gone too, the eval chain degrades to the driver.
			continue
		}
		owner, _ := ec.ring.Owner(ec.key64(p, nParts))
		if s := ec.slots[owner]; s != nil && s.warm[ec.c.wireKey(p)] {
			// The owner already holds this partition from a previous run or
			// a pre-flap load — re-attach without re-shipping the rows.
			ec.c.setAssign(p, desired)
			ec.c.ob.warmAttach.Inc()
			ec.c.decide(Decision{Kind: DecideWarmAttach, Part: p, Worker: desired, Target: -1})
			warm++
			continue
		}
		// Bound the ship so a hung target cannot wedge view application.
		lctx, cancel := context.WithTimeout(ctx, ec.c.opts.HeartbeatTimeout)
		err := ec.c.loadPartition(obs.ContextWith(lctx, sp), desired, p)
		cancel()
		if err != nil {
			sp.Event(fmt.Sprintf("partition %d failed to ship to worker %d: %v", p, desired, err))
			continue
		}
		ec.c.setAssign(p, desired)
		ec.c.ob.rebalances.Inc()
		ec.c.decide(Decision{Kind: DecideRebalance, Part: p, Worker: cur, Target: desired})
		moved++
	}
	sp.SetInt("moved", int64(moved))
	sp.SetInt("warm_attached", int64(warm))
}

// Follow tracks a registrar until stop is called (or ctx ends): the initial
// snapshot is applied immediately, every view change as it is published, and
// the latest view again on a lease-interval ticker — the retry path for
// members whose dial failed on first sight.
func (ec *ElasticCluster) Follow(ctx context.Context, reg *membership.Registrar) (stop func()) {
	ch, cancelWatch := reg.Watch()
	fctx, cancel := context.WithCancel(ctx)
	// Apply the current view before returning: a caller that runs Setup
	// right after Follow must place partitions on the fleet that already
	// exists, not race the watcher goroutine and hold everything on the
	// driver until the first mid-run rebalance.
	ec.ApplyView(fctx, reg.Snapshot())
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(reg.LeaseInterval())
		defer ticker.Stop()
		for {
			select {
			case <-fctx.Done():
				return
			case v := <-ch:
				ec.ApplyView(fctx, v)
			case <-ticker.C:
				ec.ApplyView(fctx, reg.Snapshot())
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancelWatch()
			cancel()
			<-done
		})
	}
}
