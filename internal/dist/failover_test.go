package dist

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/matrix"
)

// flakyWorker wraps an InProcessWorker and starts failing after a trigger.
type flakyWorker struct {
	InProcessWorker
	dead bool
}

func (w *flakyWorker) Eval(ctx context.Context, part int, cols [][]int, level, blockSize int) ([]float64, []float64, []float64, error) {
	if w.dead {
		return nil, nil, nil, errors.New("injected worker crash")
	}
	return w.InProcessWorker.Eval(ctx, part, cols, level, blockSize)
}

func (w *flakyWorker) Load(ctx context.Context, part int, x *matrix.CSR, e []float64) error {
	if w.dead {
		return errors.New("injected worker crash")
	}
	return w.InProcessWorker.Load(ctx, part, x, e)
}

func (w *flakyWorker) Ping(context.Context) error {
	if w.dead {
		return errors.New("injected worker crash")
	}
	return nil
}

// TestClusterFailoverMidRun: killing a worker after Setup must not change
// the result — its partition fails over to the surviving workers.
func TestClusterFailoverMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds, e := randomDataset(rng, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}

	w0 := &flakyWorker{}
	w1 := &flakyWorker{}
	w2 := &flakyWorker{}
	cl, err := NewCluster([]Worker{w0, w1, w2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drive Setup manually with a small matrix, then kill w1 and check
	// Eval still sums all partitions.
	x := matrix.CSRFromDense(matrix.NewDenseData(6, 2, []float64{
		1, 0,
		1, 0,
		0, 1,
		0, 1,
		1, 0,
		0, 1,
	}))
	ev := []float64{1, 1, 1, 1, 1, 1}
	if err := cl.Setup(context.Background(), x, ev); err != nil {
		t.Fatal(err)
	}
	w1.dead = true
	ss, se, _, err := cl.Eval(context.Background(), [][]int{{0}, {1}}, 1)
	if err != nil {
		t.Fatalf("failover Eval: %v", err)
	}
	if ss[0] != 3 || ss[1] != 3 {
		t.Fatalf("ss = %v, want [3 3] (all partitions counted)", ss)
	}
	if se[0] != 3 || se[1] != 3 {
		t.Fatalf("se = %v, want [3 3]", se)
	}

	// End-to-end: a fresh cluster where one worker dies right after Setup
	// still produces the exact reference result.
	wa, wb := &flakyWorker{}, &flakyWorker{}
	cl2, err := NewCluster([]Worker{wa, wb}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Evaluator = &killAfterSetup{Cluster: cl2, victim: wb}
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if !equalScores(scores(got.TopK), scores(ref.TopK)) {
		t.Fatalf("failover scores %v differ from builtin %v", scores(got.TopK), scores(ref.TopK))
	}
}

// killAfterSetup kills the victim worker right after cluster setup.
type killAfterSetup struct {
	*Cluster
	victim *flakyWorker
}

func (k *killAfterSetup) Setup(ctx context.Context, x *matrix.CSR, e []float64) error {
	if err := k.Cluster.Setup(ctx, x, e); err != nil {
		return err
	}
	k.victim.dead = true
	return nil
}

// countdownWorker succeeds for a fixed number of Eval calls, then crashes —
// a worker dying mid-level, partway through an enumeration.
type countdownWorker struct {
	InProcessWorker
	callMu    sync.Mutex
	calls     int
	failAfter int
}

func (w *countdownWorker) Eval(ctx context.Context, part int, cols [][]int, level, blockSize int) ([]float64, []float64, []float64, error) {
	w.callMu.Lock()
	w.calls++
	crashed := w.calls > w.failAfter
	w.callMu.Unlock()
	if crashed {
		return nil, nil, nil, errors.New("injected crash mid-level")
	}
	return w.InProcessWorker.Eval(ctx, part, cols, level, blockSize)
}

// TestClusterWorkerDeathMidLevel: a worker crashing in the middle of
// enumeration — after several successful evaluation rounds — must not change
// the result; its partition fails over and the run completes.
func TestClusterWorkerDeathMidLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds, e := randomDataset(rng, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}

	victim := &countdownWorker{failAfter: 1}
	cl, err := NewCluster([]Worker{victim, &flakyWorker{}, &flakyWorker{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Evaluator = cl
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if !equalScores(scores(got.TopK), scores(ref.TopK)) {
		t.Fatalf("mid-level failover scores %v differ from builtin %v", scores(got.TopK), scores(ref.TopK))
	}
	victim.callMu.Lock()
	crashed := victim.calls > victim.failAfter
	victim.callMu.Unlock()
	if !crashed {
		t.Fatalf("victim never reached its crash point (%d calls); test exercised nothing", victim.calls)
	}
	cl.mu.Lock()
	alive0 := cl.alive[0]
	cl.mu.Unlock()
	if alive0 {
		t.Fatal("crashed worker still marked alive")
	}
}

// shortWorker returns truncated statistic vectors — a worker replying with
// partial Eval results. The cluster must treat it like a crash: folding
// short vectors into the aggregate would silently corrupt every statistic.
type shortWorker struct {
	InProcessWorker
}

func (w *shortWorker) Eval(ctx context.Context, part int, cols [][]int, level, blockSize int) ([]float64, []float64, []float64, error) {
	ss, se, sm, err := w.InProcessWorker.Eval(ctx, part, cols, level, blockSize)
	if err != nil {
		return nil, nil, nil, err
	}
	half := len(ss) / 2
	return ss[:half], se[:half], sm[:half], nil
}

// TestClusterPartialResultsFailover: unit-level check that a short reply
// fails over to a healthy worker and the aggregate stays correct.
func TestClusterPartialResultsFailover(t *testing.T) {
	bad := &shortWorker{}
	good := &flakyWorker{}
	cl, err := NewCluster([]Worker{bad, good}, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.CSRFromDense(matrix.NewDenseData(6, 2, []float64{
		1, 0,
		1, 0,
		0, 1,
		0, 1,
		1, 0,
		0, 1,
	}))
	ev := []float64{1, 1, 1, 1, 1, 1}
	if err := cl.Setup(context.Background(), x, ev); err != nil {
		t.Fatal(err)
	}
	ss, se, _, err := cl.Eval(context.Background(), [][]int{{0}, {1}}, 1)
	if err != nil {
		t.Fatalf("partial-result failover Eval: %v", err)
	}
	if ss[0] != 3 || ss[1] != 3 || se[0] != 3 || se[1] != 3 {
		t.Fatalf("ss = %v, se = %v, want [3 3] each (short reply must not corrupt the aggregate)", ss, se)
	}
	cl.mu.Lock()
	alive0 := cl.alive[0]
	cl.mu.Unlock()
	if alive0 {
		t.Fatal("partial-result worker still marked alive")
	}
}

// TestClusterPartialResultsEndToEnd: a full run with a partial-result worker
// in the cluster must still match the builtin plan exactly.
func TestClusterPartialResultsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds, e := randomDataset(rng, 300, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster([]Worker{&shortWorker{}, &flakyWorker{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Evaluator = cl
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if !equalScores(scores(got.TopK), scores(ref.TopK)) {
		t.Fatalf("partial-result run scores %v differ from builtin %v", scores(got.TopK), scores(ref.TopK))
	}
}

// TestClusterReloadsAmnesiacWorker: a worker that lost its partitions but
// still answers (the in-process analogue of a restarted process) must be
// reloaded in place and stay in the rotation, not fail over.
func TestClusterReloadsAmnesiacWorker(t *testing.T) {
	w0 := &InProcessWorker{}
	cl, err := NewCluster([]Worker{w0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.CSRFromDense(matrix.NewDenseData(4, 1, []float64{1, 1, 0, 1}))
	if err := cl.Setup(context.Background(), x, []float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate the restart: the worker forgets every partition.
	w0.mu.Lock()
	w0.parts = nil
	w0.mu.Unlock()
	ss, se, _, err := cl.Eval(context.Background(), [][]int{{0}}, 1)
	if err != nil {
		t.Fatalf("Eval after amnesia: %v", err)
	}
	if ss[0] != 3 || se[0] != 3 {
		t.Fatalf("ss=%v se=%v, want 3 each after in-place reload", ss, se)
	}
	cl.mu.Lock()
	alive0 := cl.alive[0]
	cl.mu.Unlock()
	if !alive0 {
		t.Fatal("reloaded worker marked dead; in-place recovery did not happen")
	}
}

// restartServer rebinds a worker server on the exact address it previously
// occupied, retrying briefly in case the OS has not released the port yet.
func restartServer(t *testing.T, addr string) *Server {
	t.Helper()
	var lis net.Listener
	var err error
	for i := 0; i < 100; i++ {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	srv, err := NewServer(lis)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck // lifetime bound to Stop
	return srv
}

// TestTCPWorkerRestartReconnect: a single-worker TCP cluster — no failover
// target exists — survives the worker being killed and restarted on the same
// address. RemoteWorker must redial, and the cluster must reload the lost
// partition in place.
func TestTCPWorkerRestartReconnect(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck // lifetime bound to Stop
	addr := lis.Addr().String()

	w, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cl, err := NewCluster([]Worker{w}, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.CSRFromDense(matrix.NewDenseData(6, 2, []float64{
		1, 0,
		1, 0,
		0, 1,
		0, 1,
		1, 0,
		0, 1,
	}))
	ev := []float64{1, 1, 1, 1, 1, 1}
	if err := cl.Setup(context.Background(), x, ev); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cl.Eval(context.Background(), [][]int{{0}, {1}}, 1); err != nil {
		t.Fatalf("Eval before restart: %v", err)
	}

	// Kill the worker process and restart it on the same address: the new
	// server has no partitions.
	srv.Stop()
	srv2 := restartServer(t, addr)
	defer srv2.Stop()

	ss, se, _, err := cl.Eval(context.Background(), [][]int{{0}, {1}}, 1)
	if err != nil {
		t.Fatalf("Eval after restart: %v (reconnect + reload should recover)", err)
	}
	if ss[0] != 3 || ss[1] != 3 || se[0] != 3 || se[1] != 3 {
		t.Fatalf("ss = %v, se = %v after restart, want [3 3] each", ss, se)
	}
	cl.mu.Lock()
	alive0 := cl.alive[0]
	cl.mu.Unlock()
	if !alive0 {
		t.Fatal("restarted worker marked dead; reconnect did not keep it in rotation")
	}
}

// TestTCPWorkerRestartMidRun: end-to-end — a TCP worker is killed and
// restarted between lattice levels of a live run. The run must complete with
// results matching the builtin plan, and the worker must remain alive.
func TestTCPWorkerRestartMidRun(t *testing.T) {
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv0, err := NewServer(lis0)
	if err != nil {
		t.Fatal(err)
	}
	go srv0.Serve() //nolint:errcheck // lifetime bound to Stop
	addr0 := lis0.Addr().String()

	addrs, shutdown := startWorkers(t, 1)
	defer shutdown()

	w0, err := Dial(addr0)
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w1, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	cl, err := NewCluster([]Worker{w0, w1}, 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(13))
	ds, e := randomDataset(rng, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var srv0b *Server
	restarted := false
	c := cfg
	c.Evaluator = cl
	c.OnLevel = func(ls core.LevelStats) {
		if restarted || ls.Level != 1 {
			return
		}
		restarted = true
		srv0.Stop()
		srv0b = restartServer(t, addr0)
	}
	got, err := core.Run(ds, e, c)
	if srv0b != nil {
		defer srv0b.Stop()
	}
	if err != nil {
		t.Fatalf("run with mid-run restart: %v", err)
	}
	if !restarted {
		t.Fatal("restart hook never fired; test exercised nothing")
	}
	if !equalScores(scores(got.TopK), scores(ref.TopK)) {
		t.Fatalf("mid-run restart scores %v differ from builtin %v", scores(got.TopK), scores(ref.TopK))
	}
	cl.mu.Lock()
	alive0 := cl.alive[0]
	cl.mu.Unlock()
	if !alive0 {
		t.Fatal("restarted worker marked dead after run")
	}
}

// TestTCPWorkerDeathMidRunFailsOver: end-to-end — a TCP worker dies between
// lattice levels and never comes back. The run must fail over to the
// surviving worker and still match the builtin plan.
func TestTCPWorkerDeathMidRunFailsOver(t *testing.T) {
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv0, err := NewServer(lis0)
	if err != nil {
		t.Fatal(err)
	}
	go srv0.Serve() //nolint:errcheck // lifetime bound to Stop

	addrs, shutdown := startWorkers(t, 1)
	defer shutdown()

	w0, err := Dial(lis0.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	w1, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer w1.Close()
	cl, err := NewCluster([]Worker{w0, w1}, 0)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(14))
	ds, e := randomDataset(rng, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}

	killed := false
	c := cfg
	c.Evaluator = cl
	c.OnLevel = func(ls core.LevelStats) {
		if !killed && ls.Level == 1 {
			killed = true
			srv0.Stop()
		}
	}
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatalf("run with mid-run death: %v", err)
	}
	if !killed {
		t.Fatal("kill hook never fired; test exercised nothing")
	}
	if !equalScores(scores(got.TopK), scores(ref.TopK)) {
		t.Fatalf("mid-run death scores %v differ from builtin %v", scores(got.TopK), scores(ref.TopK))
	}
	cl.mu.Lock()
	alive0 := cl.alive[0]
	cl.mu.Unlock()
	if alive0 {
		t.Fatal("dead worker still marked alive after run")
	}
}

// TestClusterAllWorkersDead: when every worker is gone the error must
// surface.
func TestClusterAllWorkersDead(t *testing.T) {
	w0 := &flakyWorker{}
	cl, err := NewCluster([]Worker{w0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.CSRFromDense(matrix.NewDenseData(2, 1, []float64{1, 1}))
	if err := cl.Setup(context.Background(), x, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	w0.dead = true
	if _, _, _, err := cl.Eval(context.Background(), [][]int{{0}}, 1); err == nil {
		t.Fatal("expected error when all workers are dead")
	}
}
