package dist

import (
	"errors"
	"math/rand"
	"testing"

	"sliceline/internal/core"
	"sliceline/internal/matrix"
)

// flakyWorker wraps an InProcessWorker and starts failing after a trigger.
type flakyWorker struct {
	InProcessWorker
	dead bool
}

func (w *flakyWorker) Eval(part int, cols [][]int, level, blockSize int) ([]float64, []float64, []float64, error) {
	if w.dead {
		return nil, nil, nil, errors.New("injected worker crash")
	}
	return w.InProcessWorker.Eval(part, cols, level, blockSize)
}

func (w *flakyWorker) Load(part int, x *matrix.CSR, e []float64) error {
	if w.dead {
		return errors.New("injected worker crash")
	}
	return w.InProcessWorker.Load(part, x, e)
}

// TestClusterFailoverMidRun: killing a worker after Setup must not change
// the result — its partition fails over to the surviving workers.
func TestClusterFailoverMidRun(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ds, e := randomDataset(rng, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}

	w0 := &flakyWorker{}
	w1 := &flakyWorker{}
	w2 := &flakyWorker{}
	cl, err := NewCluster([]Worker{w0, w1, w2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drive Setup manually with a small matrix, then kill w1 and check
	// Eval still sums all partitions.
	x := matrix.CSRFromDense(matrix.NewDenseData(6, 2, []float64{
		1, 0,
		1, 0,
		0, 1,
		0, 1,
		1, 0,
		0, 1,
	}))
	ev := []float64{1, 1, 1, 1, 1, 1}
	if err := cl.Setup(x, ev); err != nil {
		t.Fatal(err)
	}
	w1.dead = true
	ss, se, _, err := cl.Eval([][]int{{0}, {1}}, 1)
	if err != nil {
		t.Fatalf("failover Eval: %v", err)
	}
	if ss[0] != 3 || ss[1] != 3 {
		t.Fatalf("ss = %v, want [3 3] (all partitions counted)", ss)
	}
	if se[0] != 3 || se[1] != 3 {
		t.Fatalf("se = %v, want [3 3]", se)
	}

	// End-to-end: a fresh cluster where one worker dies right after Setup
	// still produces the exact reference result.
	wa, wb := &flakyWorker{}, &flakyWorker{}
	cl2, err := NewCluster([]Worker{wa, wb}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Evaluator = &killAfterSetup{Cluster: cl2, victim: wb}
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if !equalScores(scores(got.TopK), scores(ref.TopK)) {
		t.Fatalf("failover scores %v differ from builtin %v", scores(got.TopK), scores(ref.TopK))
	}
}

// killAfterSetup kills the victim worker right after cluster setup.
type killAfterSetup struct {
	*Cluster
	victim *flakyWorker
}

func (k *killAfterSetup) Setup(x *matrix.CSR, e []float64) error {
	if err := k.Cluster.Setup(x, e); err != nil {
		return err
	}
	k.victim.dead = true
	return nil
}

// TestClusterAllWorkersDead: when every worker is gone the error must
// surface.
func TestClusterAllWorkersDead(t *testing.T) {
	w0 := &flakyWorker{}
	cl, err := NewCluster([]Worker{w0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := matrix.CSRFromDense(matrix.NewDenseData(2, 1, []float64{1, 1}))
	if err := cl.Setup(x, []float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	w0.dead = true
	if _, _, _, err := cl.Eval([][]int{{0}}, 1); err == nil {
		t.Fatal("expected error when all workers are dead")
	}
}
