package dist

import (
	"testing"
	"time"
)

func TestPartitionSizes(t *testing.T) {
	cases := []struct {
		rows, parts int
		want        []int
	}{
		{10, 3, []int{4, 3, 3}},
		{9, 3, []int{3, 3, 3}},
		{3, 3, []int{1, 1, 1}},
		{7, 1, []int{7}},
		{0, 2, []int{0, 0}},
		{5, 0, nil},
	}
	for _, c := range cases {
		got := PartitionSizes(c.rows, c.parts)
		if len(got) != len(c.want) {
			t.Fatalf("PartitionSizes(%d,%d) = %v, want %v", c.rows, c.parts, got, c.want)
		}
		total := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("PartitionSizes(%d,%d) = %v, want %v", c.rows, c.parts, got, c.want)
			}
			total += got[i]
		}
		if c.parts > 0 && total != c.rows {
			t.Fatalf("PartitionSizes(%d,%d) sums to %d", c.rows, c.parts, total)
		}
	}
}

func TestNextLiveWorker(t *testing.T) {
	alive := []bool{false, true, true, false}
	if got := NextLiveWorker(alive, -1); got != 1 {
		t.Fatalf("NextLiveWorker(avoid=-1) = %d, want 1", got)
	}
	if got := NextLiveWorker(alive, 1); got != 2 {
		t.Fatalf("NextLiveWorker(avoid=1) = %d, want 2", got)
	}
	if got := NextLiveWorker([]bool{false, false}, -1); got != -1 {
		t.Fatalf("NextLiveWorker(none) = %d, want -1", got)
	}
	if got := NextLiveWorker([]bool{true}, 0); got != -1 {
		t.Fatalf("NextLiveWorker(only avoid live) = %d, want -1", got)
	}
}

func TestReshipPlan(t *testing.T) {
	assign := []int{2, 0, 2, 1, 2}
	alive := []bool{true, true, false}
	moves := ReshipPlan(assign, alive, 2)
	want := [][2]int{{0, 0}, {2, 1}, {4, 0}} // round-robin over live {0,1}
	if len(moves) != len(want) {
		t.Fatalf("ReshipPlan = %v, want %v", moves, want)
	}
	for i := range moves {
		if moves[i] != want[i] {
			t.Fatalf("ReshipPlan = %v, want %v", moves, want)
		}
	}
	if got := ReshipPlan(assign, []bool{false, false, false}, 2); got != nil {
		t.Fatalf("ReshipPlan with no live workers = %v, want nil", got)
	}
}

func TestProbeStep(t *testing.T) {
	// A live worker striking out at the limit is evicted.
	alive, strikes, v := ProbeStep(true, 1, 2, false)
	if alive || strikes != 2 || v != ProbeEvict {
		t.Fatalf("strike-out: got alive=%v strikes=%d verdict=%v", alive, strikes, v)
	}
	// Below the limit it just takes a strike.
	alive, strikes, v = ProbeStep(true, 0, 2, false)
	if !alive || strikes != 1 || v != ProbeStrike {
		t.Fatalf("first strike: got alive=%v strikes=%d verdict=%v", alive, strikes, v)
	}
	// A successful probe clears strikes.
	alive, strikes, v = ProbeStep(true, 1, 2, true)
	if !alive || strikes != 0 || v != ProbeOK {
		t.Fatalf("clear: got alive=%v strikes=%d verdict=%v", alive, strikes, v)
	}
	// A dead worker answering again is resurrected.
	alive, strikes, v = ProbeStep(false, 5, 2, true)
	if !alive || strikes != 0 || v != ProbeResurrect {
		t.Fatalf("resurrect: got alive=%v strikes=%d verdict=%v", alive, strikes, v)
	}
	// A dead worker failing more probes stays dead without re-evicting.
	alive, _, v = ProbeStep(false, 5, 2, false)
	if alive || v != ProbeStrike {
		t.Fatalf("dead stays dead: got alive=%v verdict=%v", alive, v)
	}
}

func TestHedgePolicyFixed(t *testing.T) {
	h := NewHedgePolicy(30*time.Millisecond, 0, 4)
	if th, ok := h.Threshold(); !ok || th != 30*time.Millisecond {
		t.Fatalf("fixed threshold = %v,%v", th, ok)
	}
	if h.Adaptive() {
		t.Fatal("fixed policy reported adaptive")
	}
	if h.ShouldHedge(29 * time.Millisecond) {
		t.Fatal("hedged below the fixed threshold")
	}
	if !h.ShouldHedge(30 * time.Millisecond) {
		t.Fatal("did not hedge at the fixed threshold")
	}
}

func TestHedgePolicyAdaptive(t *testing.T) {
	h := NewHedgePolicy(0, 2.0, 4)
	if !h.Adaptive() {
		t.Fatal("adaptive policy not adaptive")
	}
	if _, ok := h.Threshold(); ok {
		t.Fatal("threshold available before any completion")
	}
	h.Record(10 * time.Millisecond)
	if _, ok := h.Threshold(); ok {
		t.Fatal("threshold available below half the partitions")
	}
	h.Record(20 * time.Millisecond)
	th, ok := h.Threshold()
	if !ok {
		t.Fatal("threshold unavailable at half the partitions")
	}
	// Median of {10ms, 20ms} picks the upper middle (20ms); ×2 = 40ms.
	if th != 40*time.Millisecond {
		t.Fatalf("adaptive threshold = %v, want 40ms", th)
	}
	// Sub-millisecond thresholds floor at 1ms.
	h2 := NewHedgePolicy(0, 2.0, 2)
	h2.Record(10 * time.Microsecond)
	if th, _ := h2.Threshold(); th != time.Millisecond {
		t.Fatalf("floored threshold = %v, want 1ms", th)
	}
}

func TestHedgePolicyDisabled(t *testing.T) {
	if h := NewHedgePolicy(0, 0, 8); h != nil {
		t.Fatal("disabled policy is non-nil")
	}
	var h *HedgePolicy
	h.Record(time.Second) // must not panic
	if h.ShouldHedge(time.Hour) {
		t.Fatal("nil policy hedged")
	}
	if h.Adaptive() {
		t.Fatal("nil policy adaptive")
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{Kind: DecideFailover, Part: 3, Worker: 1, Target: 2}
	if got := d.String(); got != "failover p3 w1→w2" {
		t.Fatalf("Decision.String() = %q", got)
	}
	e := Decision{Kind: DecideEvict, Part: -1, Worker: 4, Target: -1, Strikes: 2}
	if got := e.String(); got != "evict w4 strikes=2" {
		t.Fatalf("Decision.String() = %q", got)
	}
}
