// Membership chaos matrix for the elastic fleet: a seeded churn script
// mutates cluster membership at every lattice level — joins, crashes,
// same-incarnation flaps, higher-incarnation resurrections — while some
// workers also inject RPC faults, and the run must stay bit-identical to the
// single-stable-member reference. Lives in package dist_test for the same
// reason as chaos_test.go: faults wraps dist.Worker.
package dist_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/dist"
	"sliceline/internal/faults"
	"sliceline/internal/membership"
	"sliceline/internal/obs"
)

// fleetScript drives deterministic membership churn: a fixed member pool, a
// live set, per-member incarnations, and a monotonically increasing view
// version. All mutations funnel through apply, so a failing seed replays
// exactly.
type fleetScript struct {
	ec      *dist.ElasticCluster
	ids     []string
	live    map[string]bool
	inc     map[string]uint64
	version uint64
}

func newFleetScript(ec *dist.ElasticCluster, ids ...string) *fleetScript {
	fs := &fleetScript{ec: ec, ids: ids, live: map[string]bool{}, inc: map[string]uint64{}}
	for _, id := range ids {
		fs.inc[id] = 1
	}
	return fs
}

func (fs *fleetScript) apply() {
	fs.version++
	var ms []membership.Member
	for _, id := range fs.ids {
		if fs.live[id] {
			ms = append(ms, membership.Member{ID: id, Addr: id + ":0", Incarnation: fs.inc[id]})
		}
	}
	fs.ec.ApplyView(context.Background(), membership.View{Version: fs.version, Members: ms})
}

// step performs one churn action. The action kinds cycle through a seeded
// permutation so every run of >= 4 levels exercises all four.
func (fs *fleetScript) step(action int) {
	switch action {
	case 0: // join: first absent member enters the view
		for _, id := range fs.ids {
			if !fs.live[id] {
				fs.live[id] = true
				break
			}
		}
	case 1: // crash: first live member vanishes from the view
		for _, id := range fs.ids {
			if fs.live[id] {
				fs.live[id] = false
				break
			}
		}
	case 2: // flap: leave and rejoin with the same incarnation (warm path)
		for _, id := range fs.ids {
			if fs.live[id] {
				fs.live[id] = false
				fs.apply()
				fs.live[id] = true
				break
			}
		}
	case 3: // resurrect: a departed member returns as a restarted process
		for _, id := range fs.ids {
			if !fs.live[id] {
				fs.inc[id]++
				fs.live[id] = true
				break
			}
		}
	}
	fs.apply()
}

// TestChaosMembershipSeededChurn is the acceptance matrix: at every lattice
// level the fleet joins, crashes, flaps, or resurrects a member (order seeded),
// two of the four members also inject seeded RPC faults, and the top-K must be
// bit-identical to the single-stable-member reference. Failures reproduce
// from the seed alone.
func TestChaosMembershipSeededChurn(t *testing.T) {
	ds, e := chaosDataset(95, 400, 5, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref := elasticRef(t, cfg, dsPair{ds, e})

	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			reg := obs.NewRegistry()
			pool := map[string]dist.Worker{
				"m0": &dist.InProcessWorker{},
				"m1": faults.Wrap(&dist.InProcessWorker{}, faults.Seeded(seed, faults.Chaos)),
				"m2": &dist.InProcessWorker{},
				"m3": faults.Wrap(&dist.InProcessWorker{}, faults.Seeded(seed+1000, faults.Chaos)),
			}
			ec, err := dist.NewElasticCluster(testDialer(pool), dist.Options{
				Metrics:     reg,
				CallTimeout: 500 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer ec.Close()

			script := newFleetScript(ec, "m0", "m1", "m2", "m3")
			script.live["m0"], script.live["m1"] = true, true
			script.apply()

			order := rng.Perm(4) // all four churn kinds, seeded order
			level := 0
			c := cfg
			c.Evaluator = ec
			c.OnLevel = func(core.LevelStats) {
				script.step(order[level%4])
				level++
			}
			start := time.Now()
			got, err := core.Run(ds, e, c)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if elapsed := time.Since(start); elapsed > 60*time.Second {
				t.Fatalf("seed %d: churned run took %v", seed, elapsed)
			}
			if level < 4 {
				t.Fatalf("seed %d: only %d levels ran; churn matrix not fully exercised", seed, level)
			}
			if !reflect.DeepEqual(got.TopK, ref.TopK) {
				t.Fatalf("seed %d: top-K under membership churn differs from stable reference:\n got %v\nwant %v",
					seed, got.TopK, ref.TopK)
			}
			if n := reg.Counter("sl_dist_member_joins_total", "").Value(); n == 0 {
				t.Fatalf("seed %d: no member ever joined; script exercised nothing", seed)
			}
			if n := reg.Counter("sl_dist_member_leaves_total", "").Value(); n == 0 {
				t.Fatalf("seed %d: no member ever left; script exercised nothing", seed)
			}
		})
	}
}

// TestChaosMembershipFullFleetLossMidRun: every member vanishes after the
// first level. The job must complete on the driver — degraded, counted, and
// bit-identical — rather than erroring out.
func TestChaosMembershipFullFleetLossMidRun(t *testing.T) {
	ds, e := chaosDataset(96, 300, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref := elasticRef(t, cfg, dsPair{ds, e})

	reg := obs.NewRegistry()
	pool := map[string]dist.Worker{
		"m0": &dist.InProcessWorker{},
		"m1": &dist.InProcessWorker{},
	}
	ec, err := dist.NewElasticCluster(testDialer(pool), dist.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	script := newFleetScript(ec, "m0", "m1")
	script.live["m0"], script.live["m1"] = true, true
	script.apply()

	lost := false
	c := cfg
	c.Evaluator = ec
	c.OnLevel = func(core.LevelStats) {
		if !lost {
			lost = true
			script.live["m0"], script.live["m1"] = false, false
			script.apply()
		}
	}
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatalf("full fleet loss mid-run must degrade, not error: %v", err)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("degraded top-K differs from fleet reference:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
	if n := reg.Counter("sl_dist_degraded_total", "").Value(); n == 0 {
		t.Fatal("degraded counter never incremented after full fleet loss")
	}
	if got := ec.LiveMembers(); len(got) != 0 {
		t.Fatalf("live members after full loss: %v", got)
	}
}

// TestChaosMembershipCrashResurrectCycle: the same member crashes and comes
// back as a new incarnation repeatedly — the amnesiac-process path — while a
// second member carries the run. Placement must reconverge every cycle.
func TestChaosMembershipCrashResurrectCycle(t *testing.T) {
	ds, e := chaosDataset(97, 300, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref := elasticRef(t, cfg, dsPair{ds, e})

	reg := obs.NewRegistry()
	pool := map[string]dist.Worker{
		"steady": &dist.InProcessWorker{},
		"cycler": &dist.InProcessWorker{},
	}
	ec, err := dist.NewElasticCluster(testDialer(pool), dist.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	script := newFleetScript(ec, "steady", "cycler")
	script.live["steady"], script.live["cycler"] = true, true
	script.apply()

	level := 0
	c := cfg
	c.Evaluator = ec
	c.OnLevel = func(core.LevelStats) {
		if level%2 == 0 {
			script.live["cycler"] = false
		} else {
			script.inc["cycler"]++ // restarted process: higher incarnation
			script.live["cycler"] = true
		}
		script.apply()
		level++
	}
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("top-K under crash/resurrect cycling differs:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
	if n := reg.Counter("sl_dist_rebalances_total", "").Value(); n == 0 {
		t.Fatal("no partition ever rebalanced across the crash/resurrect cycles")
	}
}
