package dist

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sliceline/internal/matrix"
)

// countingListener counts accepted connections — the observable cost of
// redials.
type countingListener struct {
	net.Listener
	accepted atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepted.Add(1)
	}
	return c, err
}

// TestRemoteWorkerSingleFlightRedial: when many concurrent calls hit the
// same dead connection, exactly one of them dials — the rest share the
// fresh connection instead of racing to replace each other's.
func TestRemoteWorkerSingleFlightRedial(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck // lifetime bound to Stop
	addr := lis.Addr().String()

	w, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Kill the worker and restart it behind an accept counter.
	srv.Stop()
	var lis2 net.Listener
	for i := 0; i < 100; i++ {
		lis2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	counter := &countingListener{Listener: lis2}
	srv2, err := NewServer(counter)
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Serve() //nolint:errcheck // lifetime bound to Stop
	defer srv2.Stop()

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Ping(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := counter.accepted.Load(); got != 1 {
		t.Fatalf("%d connections dialed for one outage, want 1 (single-flight)", got)
	}
}

// TestRemoteWorkerBoundedRetry: a permanently dead worker fails calls after
// the configured attempts instead of retrying forever.
func TestRemoteWorkerBoundedRetry(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck // lifetime bound to Stop
	w, err := DialOpts(lis.Addr().String(), DialOptions{
		MaxAttempts: 2,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	srv.Stop() // never comes back
	start := time.Now()
	if err := w.Ping(context.Background()); err == nil {
		t.Fatal("expected error pinging a permanently dead worker")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("bounded retry took %v; backoff is not bounded", elapsed)
	}
}

// TestRemoteWorkerCallDeadline: a call whose context expires returns
// promptly and the next call transparently recovers on a fresh connection.
func TestRemoteWorkerCallDeadline(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck // lifetime bound to Stop
	defer srv.Stop()
	w, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	// An already-expired context: the call must not block.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w.Ping(ctx); err == nil {
		t.Fatal("expected error from expired context")
	}
	// The poisoned connection is replaced on the next call.
	if err := w.Ping(context.Background()); err != nil {
		t.Fatalf("recovery ping: %v", err)
	}
}

// TestServerShutdownGraceful: Shutdown refuses new connections, lets
// in-flight calls finish, and returns nil once drained.
func TestServerShutdownGraceful(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(lis)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck // lifetime bound to Shutdown
	addr := lis.Addr().String()

	w, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// A sizeable partition so the concurrent Eval plausibly overlaps the
	// drain; the test passes either way, it only requires that an accepted
	// call is never cut off.
	n := 50000
	data := make([]float64, 2*n)
	e := make([]float64, n)
	for i := 0; i < n; i++ {
		data[2*i+i%2] = 1
		e[i] = 1
	}
	x := matrix.CSRFromDense(matrix.NewDenseData(n, 2, data))
	if err := w.Load(context.Background(), 0, x, e); err != nil {
		t.Fatal(err)
	}

	evalErr := make(chan error, 1)
	go func() {
		_, _, _, err := w.Eval(context.Background(), 0, [][]int{{0}, {1}, {0, 1}}, 2, 0)
		evalErr <- err
	}()
	time.Sleep(2 * time.Millisecond) // let the call reach the server
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-evalErr; err != nil {
		t.Fatalf("in-flight Eval was cut off by graceful shutdown: %v", err)
	}
	// New connections must be refused now.
	if _, err := Dial(addr); err == nil {
		t.Fatal("expected dial failure after shutdown")
	}
}
