package dist

import (
	"context"
	"math/rand"
	"net"
	"testing"

	"sliceline/internal/core"
	"sliceline/internal/fptol"
	"sliceline/internal/frame"
)

func randomDataset(rng *rand.Rand, n, m, maxDom int) (*frame.Dataset, []float64) {
	ds := &frame.Dataset{
		Name:     "rand",
		X0:       frame.NewIntMatrix(n, m),
		Features: make([]frame.Feature, m),
	}
	for j := 0; j < m; j++ {
		dom := 2 + rng.Intn(maxDom-1)
		ds.Features[j] = frame.Feature{Name: "f", Domain: dom}
		for i := 0; i < n; i++ {
			ds.X0.Set(i, j, 1+rng.Intn(dom))
		}
	}
	e := make([]float64, n)
	for i := range e {
		e[i] = rng.Float64()
	}
	return ds, e
}

func scores(slices []core.Slice) []float64 {
	out := make([]float64, len(slices))
	for i, s := range slices {
		out[i] = s.Score
	}
	return out
}

// equalScores compares rank-aligned scores under the shared cross-plan
// tolerance: scores are order-dependent summations, so plans may differ in
// the last ULPs (see internal/fptol for the derivation).
func equalScores(a, b []float64) bool {
	return fptol.DefaultTol.CloseSlices(a, b)
}

func TestLocalStrategiesMatchBuiltin(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds, e := randomDataset(rng, 300, 4, 4)
	cfg := core.Config{K: 6, Sigma: 3, Alpha: 0.9}
	ref, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{MTOps, MTPFor} {
		ev, err := NewLocal(strat, 16)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Evaluator = ev
		got, err := core.Run(ds, e, c)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !equalScores(scores(got.TopK), scores(ref.TopK)) {
			t.Fatalf("%v: scores %v differ from builtin %v", strat, scores(got.TopK), scores(ref.TopK))
		}
	}
}

func TestNewLocalRejectsDistPFor(t *testing.T) {
	if _, err := NewLocal(DistPFor, 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestInProcessClusterMatchesBuiltin(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds, e := randomDataset(rng, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, nWorkers := range []int{1, 2, 4, 7} {
		workers := make([]Worker, nWorkers)
		for i := range workers {
			workers[i] = &InProcessWorker{}
		}
		cl, err := NewCluster(workers, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Evaluator = cl
		got, err := core.Run(ds, e, c)
		if err != nil {
			t.Fatalf("%d workers: %v", nWorkers, err)
		}
		if !equalScores(scores(got.TopK), scores(ref.TopK)) {
			t.Fatalf("%d workers: scores %v differ from builtin %v", nWorkers, scores(got.TopK), scores(ref.TopK))
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, 0); err == nil {
		t.Fatal("expected error for empty cluster")
	}
}

func TestWorkerEvalBeforeLoad(t *testing.T) {
	w := &InProcessWorker{}
	if _, _, _, err := w.Eval(context.Background(), 0, [][]int{{0}}, 1, 0); err == nil {
		t.Fatal("expected error for eval before load")
	}
}

// startWorkers spawns n TCP worker servers on ephemeral localhost ports and
// returns their addresses and a shutdown func.
func startWorkers(t *testing.T, n int) ([]string, func()) {
	t.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = lis
		addrs[i] = lis.Addr().String()
		go Serve(lis) //nolint:errcheck // test server lifetime bound to listener
	}
	return addrs, func() {
		for _, lis := range listeners {
			lis.Close()
		}
	}
}

func TestTCPClusterMatchesBuiltin(t *testing.T) {
	addrs, shutdown := startWorkers(t, 3)
	defer shutdown()

	rng := rand.New(rand.NewSource(3))
	ds, e := randomDataset(rng, 500, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}

	workers := make([]Worker, len(addrs))
	for i, a := range addrs {
		w, err := Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	cl, err := NewCluster(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	c := cfg
	c.Evaluator = cl
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if !equalScores(scores(got.TopK), scores(ref.TopK)) {
		t.Fatalf("tcp cluster scores %v differ from builtin %v", scores(got.TopK), scores(ref.TopK))
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestRemoteEvalBeforeLoad(t *testing.T) {
	addrs, shutdown := startWorkers(t, 1)
	defer shutdown()
	w, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, _, _, err := w.Eval(context.Background(), 0, [][]int{{0}}, 1, 0); err == nil {
		t.Fatal("expected error for remote eval before load")
	}
}

func TestClusterSurfacesWorkerFailure(t *testing.T) {
	// A worker that dies mid-run must surface as an error from core.Run,
	// not as silent data loss.
	addrs, shutdown := startWorkers(t, 2)
	rng := rand.New(rand.NewSource(4))
	ds, e := randomDataset(rng, 300, 3, 3)

	workers := make([]Worker, len(addrs))
	for i, a := range addrs {
		w, err := Dial(a)
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	cl, err := NewCluster(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the workers before the run; Setup (Load) must fail.
	shutdown()
	workers[0].Close()
	workers[1].Close()
	cfg := core.Config{K: 4, Sigma: 3, Alpha: 0.9, Evaluator: cl}
	if _, err := core.Run(ds, e, cfg); err == nil {
		t.Fatal("expected error from dead cluster")
	}
}

func TestServeStopsOnClose(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- Serve(lis) }()
	lis.Close()
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v on close, want nil", err)
	}
}
