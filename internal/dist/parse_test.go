package dist

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseWorkerList(t *testing.T) {
	cases := []struct {
		in      string
		want    []string
		wantErr string
	}{
		{in: "a:1,b:2", want: []string{"a:1", "b:2"}},
		{in: " a:1 , b:2 ", want: []string{"a:1", "b:2"}}, // whitespace trimmed
		{in: "a:1,,b:2,", want: []string{"a:1", "b:2"}},   // empties dropped
		{in: ",,,", wantErr: "no worker addresses"},       // nothing left
		{in: "", wantErr: "no worker addresses"},          //
		{in: "a:1,b:2,a:1", wantErr: `duplicate worker address "a:1"`},
		{in: "a:1, a:1", wantErr: `duplicate worker address "a:1"`}, // dup after trim
	}
	for _, tc := range cases {
		got, err := ParseWorkerList(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseWorkerList(%q) error = %v, want containing %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseWorkerList(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseWorkerList(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
