// Package dist provides distributed and multi-threaded backends for
// SliceLine's slice evaluation, modelling the parallelization strategies of
// the paper's Figure 7(b):
//
//   - MTOps: multi-threaded operations with a synchronization barrier after
//     every evaluation block (each "operation" is parallel internally but
//     the operation sequence is serial).
//   - MTPFor: multi-threaded parallel-for over slice blocks without per-
//     operation barriers, the paper's preferred local plan.
//   - DistPFor: row-partitioned data-parallel execution across workers that
//     each hold a partition of X and e. Workers may live in-process or
//     behind TCP (gob-encoded RPC), modelling Spark's broadcast-based
//     distributed matrix multiplications including serialization and
//     network overheads.
//
// Every backend implements core.ExternalEvaluator, so it plugs directly
// into core.Config.Evaluator while enumeration, pruning, and top-K
// maintenance stay on the driver — exactly the paper's architecture where
// the candidate matrix S is broadcast and X is scanned data-locally.
package dist

import (
	"errors"
	"fmt"
	"sync"

	"sliceline/internal/core"
	"sliceline/internal/matrix"
)

// Strategy selects a parallelization plan.
type Strategy int

// Parallelization strategies of Figure 7(b).
const (
	MTOps Strategy = iota
	MTPFor
	DistPFor
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case MTOps:
		return "MT-Ops"
	case MTPFor:
		return "MT-PFor"
	case DistPFor:
		return "Dist-PFor"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Local is an in-process evaluator implementing the MT-Ops and MT-PFor
// strategies.
type Local struct {
	strategy  Strategy
	blockSize int
	x         *matrix.CSR
	e         []float64
}

// NewLocal returns a local evaluator. blockSize <= 0 selects the automatic
// size. DistPFor is not a local strategy; use NewCluster.
func NewLocal(strategy Strategy, blockSize int) (*Local, error) {
	if strategy == DistPFor {
		return nil, errors.New("dist: DistPFor requires a cluster; use NewCluster")
	}
	return &Local{strategy: strategy, blockSize: blockSize}, nil
}

// Setup implements core.ExternalEvaluator.
func (l *Local) Setup(x *matrix.CSR, e []float64) error {
	l.x = x
	l.e = e
	return nil
}

// Eval implements core.ExternalEvaluator.
func (l *Local) Eval(cols [][]int, level int) (ss, se, sm []float64, err error) {
	if l.x == nil {
		return nil, nil, nil, errors.New("dist: Eval before Setup")
	}
	n := len(cols)
	ss = make([]float64, n)
	se = make([]float64, n)
	sm = make([]float64, n)
	b := l.blockSize
	if b <= 0 {
		b = core.DefaultBlockSize
	}
	switch l.strategy {
	case MTOps:
		// Barrier per block: blocks run strictly one after another, each
		// internally row-parallel (one "operation" at a time).
		for s0 := 0; s0 < n; s0 += b {
			s1 := s0 + b
			if s1 > n {
				s1 = n
			}
			core.EvalPartition(l.x, l.e, cols[s0:s1], level, s1-s0, ss[s0:s1], se[s0:s1], sm[s0:s1])
		}
	case MTPFor:
		// Parallel for over blocks, no barriers between them.
		core.EvalPartition(l.x, l.e, cols, level, b, ss, se, sm)
	}
	return ss, se, sm, nil
}

// Cluster is a row-partitioned data-parallel evaluator (Dist-PFor). Each
// worker holds one partition; Eval broadcasts the candidate slices to every
// worker and aggregates the returned partial statistics. When a worker
// fails mid-run, its partition fails over to a healthy worker (the driver
// retains the partitions it shipped at Setup), so a run survives up to
// len(workers)-1 crashes.
type Cluster struct {
	workers   []Worker
	blockSize int

	mu     sync.Mutex
	alive  []bool
	parts  []partition // partition p as shipped at Setup
	assign []int       // partition p → worker index currently holding it
}

type partition struct {
	x *matrix.CSR
	e []float64
}

// Worker is one executor holding row partitions of the dataset, keyed by
// partition id so failed partitions can fail over to workers that already
// hold their own.
type Worker interface {
	// Load ships partition part to the worker.
	Load(part int, x *matrix.CSR, e []float64) error
	// Eval evaluates the candidates against the worker's copy of partition
	// part.
	Eval(part int, cols [][]int, level, blockSize int) (ss, se, sm []float64, err error)
	// Close releases the worker.
	Close() error
}

// NewCluster returns a Dist-PFor evaluator over the given workers.
// blockSize <= 0 selects the automatic size on each worker.
func NewCluster(workers []Worker, blockSize int) (*Cluster, error) {
	if len(workers) == 0 {
		return nil, errors.New("dist: cluster needs at least one worker")
	}
	return &Cluster{workers: workers, blockSize: blockSize}, nil
}

// Setup partitions X and e row-wise across the workers and ships the
// partitions, the data-locality setup of the paper's distributed plan. The
// driver retains the partitions so they can fail over to healthy workers.
func (c *Cluster) Setup(x *matrix.CSR, e []float64) error {
	n := x.Rows()
	w := len(c.workers)
	per := (n + w - 1) / w
	c.mu.Lock()
	c.alive = make([]bool, w)
	c.parts = c.parts[:0]
	c.assign = c.assign[:0]
	c.mu.Unlock()
	for k, wk := range c.workers {
		lo := k * per
		hi := lo + per
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		part := partition{x: x.SelectRows(seq(lo, hi)), e: e[lo:hi]}
		if err := wk.Load(k, part.x, part.e); err != nil {
			return fmt.Errorf("dist: loading worker %d: %w", k, err)
		}
		c.mu.Lock()
		c.alive[k] = true
		c.parts = append(c.parts, part)
		c.assign = append(c.assign, k)
		c.mu.Unlock()
	}
	return nil
}

// Eval broadcasts the candidates, evaluates every partition concurrently,
// and sums the partial (ss, se) vectors and maxes the sm vectors. A failed
// worker is marked dead and its partition retried on a healthy worker.
//
// Partials are merged in partition order after all evaluations complete:
// float64 addition is not associative, so merging in goroutine-completion
// order would make repeated evaluations of the same candidates return se
// values differing in the last ULPs — the differential test harness asserts
// run-to-run determinism per plan.
func (c *Cluster) Eval(cols [][]int, level int) (ss, se, sm []float64, err error) {
	if len(c.parts) == 0 {
		return nil, nil, nil, errors.New("dist: Eval before Setup")
	}
	n := len(cols)
	type partial struct {
		ss, se, sm []float64
	}
	partials := make([]partial, len(c.parts))
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for p := range c.parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pss, pse, psm, werr := c.evalPartition(p, cols, level)
			if werr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = werr
				}
				mu.Unlock()
				return
			}
			partials[p] = partial{ss: pss, se: pse, sm: psm}
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, nil, firstErr
	}
	ss = make([]float64, n)
	se = make([]float64, n)
	sm = make([]float64, n)
	for _, pt := range partials {
		for i := 0; i < n; i++ {
			ss[i] += pt.ss[i]
			se[i] += pt.se[i]
			if pt.sm[i] > sm[i] {
				sm[i] = pt.sm[i]
			}
		}
	}
	return ss, se, sm, nil
}

// tryEval runs one Eval on worker wi and validates the result shape. A
// worker answering with partial results (wrong vector lengths) is treated
// exactly like a crashed worker: silently folding short vectors into the
// aggregate would corrupt every slice statistic downstream.
func (c *Cluster) tryEval(wi, p int, cols [][]int, level int) (ss, se, sm []float64, err error) {
	ss, se, sm, err = c.workers[wi].Eval(p, cols, level, c.blockSize)
	if err == nil && (len(ss) != len(cols) || len(se) != len(cols) || len(sm) != len(cols)) {
		err = fmt.Errorf("dist: worker %d returned %d/%d/%d statistics for %d candidates",
			wi, len(ss), len(se), len(sm), len(cols))
	}
	return ss, se, sm, err
}

// evalPartition evaluates one partition, failing over to other live workers
// when the assigned one errors or returns malformed statistics.
func (c *Cluster) evalPartition(p int, cols [][]int, level int) (ss, se, sm []float64, err error) {
	for attempt := 0; attempt < len(c.workers); attempt++ {
		c.mu.Lock()
		wi := c.assign[p]
		ok := c.alive[wi]
		c.mu.Unlock()
		if ok {
			ss, se, sm, err = c.tryEval(wi, p, cols, level)
			if err == nil {
				return ss, se, sm, nil
			}
			// The worker may be alive but amnesiac: a TCP worker restarted
			// on the same address answers RemoteWorker's redial but has lost
			// every partition. Reload the partition in place once before
			// declaring the worker dead, so a restarted worker rejoins the
			// run instead of shifting its load onto the survivors.
			if lerr := c.workers[wi].Load(p, c.parts[p].x, c.parts[p].e); lerr == nil {
				ss, se, sm, err = c.tryEval(wi, p, cols, level)
				if err == nil {
					return ss, se, sm, nil
				}
			}
			// Mark the worker dead; its other partitions will fail over as
			// their own evaluations error out.
			c.mu.Lock()
			c.alive[wi] = false
			c.mu.Unlock()
		}
		// Find a healthy worker, reship the partition, and retry.
		c.mu.Lock()
		next := -1
		for k, a := range c.alive {
			if a {
				next = k
				break
			}
		}
		if next >= 0 {
			c.assign[p] = next
		}
		c.mu.Unlock()
		if next < 0 {
			return nil, nil, nil, fmt.Errorf("dist: no live workers left for partition %d: %w", p, err)
		}
		if lerr := c.workers[next].Load(p, c.parts[p].x, c.parts[p].e); lerr != nil {
			c.mu.Lock()
			c.alive[next] = false
			c.mu.Unlock()
			continue
		}
	}
	return nil, nil, nil, fmt.Errorf("dist: partition %d failed on every worker: %w", p, err)
}

// Close shuts down all workers, returning the first error.
func (c *Cluster) Close() error {
	var first error
	for _, wk := range c.workers {
		if err := wk.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// InProcessWorker executes partitions in the driver process; it is the
// no-network reference worker used by tests and the simulated cluster.
type InProcessWorker struct {
	mu    sync.Mutex
	parts map[int]partition
}

// Load implements Worker.
func (w *InProcessWorker) Load(part int, x *matrix.CSR, e []float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.parts == nil {
		w.parts = make(map[int]partition)
	}
	w.parts[part] = partition{x: x, e: e}
	return nil
}

// Eval implements Worker.
func (w *InProcessWorker) Eval(part int, cols [][]int, level, blockSize int) (ss, se, sm []float64, err error) {
	w.mu.Lock()
	p, ok := w.parts[part]
	w.mu.Unlock()
	if !ok {
		return nil, nil, nil, fmt.Errorf("dist: worker holds no partition %d", part)
	}
	n := len(cols)
	ss = make([]float64, n)
	se = make([]float64, n)
	sm = make([]float64, n)
	core.EvalPartition(p.x, p.e, cols, level, blockSize, ss, se, sm)
	return ss, se, sm, nil
}

// Close implements Worker.
func (w *InProcessWorker) Close() error { return nil }

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

var _ core.ExternalEvaluator = (*Local)(nil)
var _ core.ExternalEvaluator = (*Cluster)(nil)
