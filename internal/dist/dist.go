// Package dist provides distributed and multi-threaded backends for
// SliceLine's slice evaluation, modelling the parallelization strategies of
// the paper's Figure 7(b):
//
//   - MTOps: multi-threaded operations with a synchronization barrier after
//     every evaluation block (each "operation" is parallel internally but
//     the operation sequence is serial).
//   - MTPFor: multi-threaded parallel-for over slice blocks without per-
//     operation barriers, the paper's preferred local plan.
//   - DistPFor: row-partitioned data-parallel execution across workers that
//     each hold a partition of X and e. Workers may live in-process or
//     behind TCP (gob-encoded RPC), modelling Spark's broadcast-based
//     distributed matrix multiplications including serialization and
//     network overheads.
//
// Every backend implements core.ExternalEvaluator, so it plugs directly
// into core.Config.Evaluator while enumeration, pruning, and top-K
// maintenance stay on the driver — exactly the paper's architecture where
// the candidate matrix S is broadcast and X is scanned data-locally.
//
// The Dist-PFor cluster is self-healing: per-call deadlines bound slow and
// hung workers, partitions fail over off dead workers (with in-place reload
// for restarted-but-amnesiac ones), stragglers are hedged by speculative
// re-execution on a second worker, and an optional background heartbeat
// probes workers between levels so death is detected proactively rather
// than mid-Eval. All of it preserves the deterministic partition-order
// merge, so a faulty run returns bit-identical statistics to a fault-free
// one.
package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/matrix"
	"sliceline/internal/membership"
	"sliceline/internal/obs"
)

// Strategy selects a parallelization plan.
type Strategy int

// Parallelization strategies of Figure 7(b).
const (
	MTOps Strategy = iota
	MTPFor
	DistPFor
)

// String returns the paper's name for the strategy.
func (s Strategy) String() string {
	switch s {
	case MTOps:
		return "MT-Ops"
	case MTPFor:
		return "MT-PFor"
	case DistPFor:
		return "Dist-PFor"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Local is an in-process evaluator implementing the MT-Ops and MT-PFor
// strategies.
type Local struct {
	strategy  Strategy
	blockSize int
	mode      core.BitsetMode
	kernel    *core.Kernel
}

// NewLocal returns a local evaluator. blockSize <= 0 selects the automatic
// size. DistPFor is not a local strategy; use NewCluster.
func NewLocal(strategy Strategy, blockSize int) (*Local, error) {
	return NewLocalMode(strategy, blockSize, core.BitsetAuto)
}

// NewLocalMode is NewLocal with an explicit slice-membership kernel
// selection (Config.BitsetEval semantics): auto by density, or forced
// bitset/CSR for ablations and differential tests.
func NewLocalMode(strategy Strategy, blockSize int, mode core.BitsetMode) (*Local, error) {
	if strategy == DistPFor {
		return nil, errors.New("dist: DistPFor requires a cluster; use NewCluster")
	}
	return &Local{strategy: strategy, blockSize: blockSize, mode: mode}, nil
}

// Setup implements core.ExternalEvaluator.
func (l *Local) Setup(_ context.Context, x *matrix.CSR, e []float64) error {
	l.kernel = core.NewKernel(x, e, nil, l.mode)
	return nil
}

// Eval implements core.ExternalEvaluator.
func (l *Local) Eval(_ context.Context, cols [][]int, level int) (ss, se, sm []float64, err error) {
	if l.kernel == nil {
		return nil, nil, nil, errors.New("dist: Eval before Setup")
	}
	n := len(cols)
	ss = make([]float64, n)
	se = make([]float64, n)
	sm = make([]float64, n)
	b := l.blockSize
	if b <= 0 {
		b = core.DefaultBlockSize
	}
	switch l.strategy {
	case MTOps:
		// Barrier per block: blocks run strictly one after another, each
		// internally parallel (one "operation" at a time).
		for s0 := 0; s0 < n; s0 += b {
			s1 := s0 + b
			if s1 > n {
				s1 = n
			}
			l.kernel.Eval(cols[s0:s1], level, s1-s0, ss[s0:s1], se[s0:s1], sm[s0:s1])
		}
	case MTPFor:
		// Parallel for over blocks (CSR) or candidates (bitset), no barriers.
		l.kernel.Eval(cols, level, b, ss, se, sm)
	}
	return ss, se, sm, nil
}

// Options configures the Dist-PFor cluster's execution and self-healing
// behavior. The zero value disables every timeout and mitigation, matching
// the pre-robustness semantics.
type Options struct {
	// BlockSize is the per-worker evaluation block size. <= 0 selects the
	// automatic size on each worker.
	BlockSize int

	// CallTimeout bounds every Load/Eval/Ping RPC. A call exceeding it is
	// treated as a worker failure and fails over. 0 means no deadline.
	CallTimeout time.Duration

	// HedgeDelay, when > 0, speculatively re-executes a partition on a
	// second live worker once its evaluation has run longer than this fixed
	// threshold; the first well-formed result wins.
	HedgeDelay time.Duration

	// HedgeMultiplier, when > 0, enables adaptive hedging: once at least
	// half of a level's partitions have completed, a still-running
	// partition is hedged when its elapsed time exceeds the multiplier
	// times the median completed-partition duration. Combined with
	// HedgeDelay, the fixed threshold takes precedence.
	HedgeMultiplier float64

	// HeartbeatInterval, when > 0, starts a background health checker at
	// Setup that pings every worker at this interval, between levels, and
	// proactively re-ships partitions off suspected-dead workers instead of
	// discovering death mid-Eval. A previously dead worker that answers a
	// probe again rejoins the rotation as a failover/hedge target.
	HeartbeatInterval time.Duration

	// HeartbeatTimeout bounds one probe. <= 0 defaults to CallTimeout, or
	// 2s when no call timeout is set.
	HeartbeatTimeout time.Duration

	// HeartbeatStrikes is the number of consecutive failed probes before a
	// worker is declared suspect and its partitions are re-shipped. <= 0
	// defaults to 2.
	HeartbeatStrikes int

	// Partitions, when > 0, fixes the row-partition count independent of the
	// worker count (still clamped to the row count). A fixed count keeps the
	// deterministic partition-order merge — and therefore the result bits —
	// stable while workers join and leave mid-run; it is mandatory in elastic
	// clusters, where the worker count is not a constant. 0 selects the
	// legacy one-partition-per-worker split.
	Partitions int

	// PlacementSeed, when non-zero, content-addresses partitions: the wire
	// partition key becomes a pure function of (seed, partition count,
	// partition index) instead of the bare index. Keyed this way, a worker's
	// partition cache is addressable across jobs and restarts — a rejoining
	// worker that still holds a key re-attaches warm instead of being
	// re-shipped the rows. Use the dataset's content signature as the seed.
	PlacementSeed uint64

	// OnDecision, when non-nil, receives every scheduling decision the
	// cluster takes (failover, hedge, eviction, re-ship, …) as a typed
	// Decision. Decisions from concurrent partition evaluations may arrive
	// concurrently; the hook must be safe for concurrent use. The simulator's
	// fidelity tests compare this stream against a simulated run's.
	OnDecision func(Decision)

	// LocalFallback, when set, degrades gracefully instead of failing the
	// run when no live worker remains for a partition: the driver evaluates
	// that partition itself with the same kernel a worker would use, so the
	// results stay bit-identical and the job completes (slower) rather than
	// erroring. Each degraded partition evaluation increments
	// sl_dist_degraded_total and leaves a span event.
	LocalFallback bool

	// Tracer, when non-nil, receives spans for cluster setup, heartbeat
	// evictions, and — when the driver's run context does not already carry a
	// span — evaluations. RPC and partition spans parent under the context's
	// span when one is present (core places its eval span there), so the
	// cluster's trace nests inside the enumeration's even with a nil Tracer
	// here.
	Tracer obs.Tracer

	// Metrics, when non-nil, receives per-RPC latency histograms, retry /
	// failover / hedge / eviction counters and per-worker queue-depth gauges
	// (the sl_dist_* families). Nil disables metric recording at zero cost.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.HeartbeatTimeout <= 0 {
		if o.CallTimeout > 0 {
			o.HeartbeatTimeout = o.CallTimeout
		} else {
			o.HeartbeatTimeout = 2 * time.Second
		}
	}
	if o.HeartbeatStrikes <= 0 {
		o.HeartbeatStrikes = DefaultHeartbeatStrikes
	}
	return o
}

// Cluster is a row-partitioned data-parallel evaluator (Dist-PFor). Each
// worker holds one partition; Eval broadcasts the candidate slices to every
// worker and aggregates the returned partial statistics. When a worker
// fails mid-run, its partition fails over to a healthy worker (the driver
// retains the partitions it shipped at Setup), so a run survives up to
// len(workers)-1 crashes.
type Cluster struct {
	opts Options
	ob   distObs

	// elastic marks a membership-driven cluster (see ElasticCluster): the
	// worker slice grows as members join, liveness survives Setup (the
	// membership view is the authority, not Setup), and place chooses each
	// partition's preferred worker.
	elastic bool
	place   func(part, nParts int) int // preferred worker for a partition, -1 for none
	warm    func(key, wi int) bool     // true when worker wi already holds wire key

	mu      sync.Mutex
	workers []Worker // append-only in elastic clusters; index = worker slot
	ready   bool
	alive   []bool
	strikes []int       // consecutive failed heartbeat probes per worker
	parts   []partition // partition p as shipped at Setup
	assign  []int       // partition p → worker slot holding it, -1 = driver-local
	keys    []int       // partition p → wire key (content-addressed when seeded)
	local   []*core.Kernel

	hbStop chan struct{}
	hbDone chan struct{}
}

type partition struct {
	x *matrix.CSR
	e []float64
}

// Worker is one executor holding row partitions of the dataset, keyed by
// partition id so failed partitions can fail over to workers that already
// hold their own. Every operation takes a context carrying the driver's
// per-call deadline; implementations must abort promptly when it is done.
type Worker interface {
	// Load ships partition part to the worker.
	Load(ctx context.Context, part int, x *matrix.CSR, e []float64) error
	// Eval evaluates the candidates against the worker's copy of partition
	// part.
	Eval(ctx context.Context, part int, cols [][]int, level, blockSize int) (ss, se, sm []float64, err error)
	// Ping probes liveness; the cluster's heartbeat checker calls it
	// between levels.
	Ping(ctx context.Context) error
	// Close releases the worker.
	Close() error
}

// NewCluster returns a Dist-PFor evaluator over the given workers.
// blockSize <= 0 selects the automatic size on each worker. Timeouts,
// hedging and heartbeats are disabled; use NewClusterOpts to enable them.
func NewCluster(workers []Worker, blockSize int) (*Cluster, error) {
	return NewClusterOpts(workers, Options{BlockSize: blockSize})
}

// NewClusterOpts returns a Dist-PFor evaluator with explicit robustness
// options.
func NewClusterOpts(workers []Worker, opts Options) (*Cluster, error) {
	if len(workers) == 0 {
		return nil, errors.New("dist: cluster needs at least one worker")
	}
	return &Cluster{
		workers: workers,
		opts:    opts.withDefaults(),
		ob:      newDistObs(opts.Metrics, len(workers)),
	}, nil
}

// callCtx derives the per-RPC context from the run context.
func (c *Cluster) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.opts.CallTimeout > 0 {
		return context.WithTimeout(ctx, c.opts.CallTimeout)
	}
	return context.WithCancel(ctx)
}

// Setup partitions X and e row-wise across the workers and ships the
// partitions, the data-locality setup of the paper's distributed plan. The
// driver retains the partitions so they can fail over to healthy workers.
//
// Partitioning is balanced: sizes differ by at most one row, and no worker
// is shipped an empty partition — with fewer rows than workers only the
// first n workers receive one; the rest stay pure failover/hedge targets.
func (c *Cluster) Setup(ctx context.Context, x *matrix.CSR, e []float64) error {
	c.stopHeartbeat()
	sp := c.startSpan(ctx, "dist.setup")
	defer sp.End()
	n := x.Rows()
	w := c.workerCount()
	nParts := w
	if c.opts.Partitions > 0 {
		nParts = c.opts.Partitions
	}
	if n < nParts {
		nParts = n
	}
	if w == 0 && !c.opts.LocalFallback {
		return errors.New("dist: cluster has no workers")
	}
	sp.SetInt("workers", int64(w))
	sp.SetInt("rows", int64(n))
	sp.SetInt("partitions", int64(nParts))
	c.ob.partitions.Set(float64(nParts))
	c.mu.Lock()
	c.ready = false
	if !c.elastic {
		// Static cluster: Setup is the liveness authority and every worker
		// starts presumed-live. An elastic cluster's liveness belongs to the
		// membership view and survives re-Setups.
		c.alive = make([]bool, w)
		for k := range c.alive {
			c.alive[k] = true
		}
		c.strikes = make([]int, w)
	}
	c.parts = c.parts[:0]
	c.assign = c.assign[:0]
	c.keys = c.keys[:0]
	c.local = nil
	for p := 0; p < nParts; p++ {
		if c.opts.PlacementSeed != 0 {
			// Clearing the top bit keeps the key a non-negative int while
			// preserving 63 bits of the content address.
			c.keys = append(c.keys, int(membership.PartitionKey(c.opts.PlacementSeed, nParts, p)>>1))
		} else {
			c.keys = append(c.keys, p)
		}
	}
	c.mu.Unlock()
	sizes := PartitionSizes(n, nParts)
	lo := 0
	for k := 0; k < nParts; k++ {
		hi := lo + sizes[k]
		part := partition{x: x.SelectRows(seq(lo, hi)), e: e[lo:hi]}
		// Prefer the placed worker (ring owner in elastic clusters, index
		// modulo worker count otherwise), but a worker whose initial Load
		// fails is marked dead and its partition shipped to another live one
		// — a cluster with a dead member at startup still comes up.
		wi := -1
		switch {
		case c.place != nil:
			wi = c.place(k, nParts)
		case w > 0:
			wi = k % w
		}
		if wi >= 0 && !c.isAlive(wi) {
			wi = c.nextLive(-1)
		}
		// Content-addressed keys let Setup re-attach without re-shipping: a
		// worker that still caches this exact partition from an earlier job
		// (or before a flap) reports warm and keeps it. A stale claim is
		// harmless — the first Eval on it fails and reloads in place.
		if wi >= 0 && c.warm != nil && c.opts.PlacementSeed != 0 && c.warm(c.wireKey(k), wi) {
			sp.Event(fmt.Sprintf("partition %d re-attached warm on worker %d", k, wi))
			c.ob.warmAttach.Inc()
			c.decide(Decision{Kind: DecideWarmAttach, Part: k, Worker: wi, Target: -1})
			c.mu.Lock()
			c.parts = append(c.parts, part)
			c.assign = append(c.assign, wi)
			c.mu.Unlock()
			lo = hi
			continue
		}
		for wi >= 0 {
			err := c.loadRPC(ctx, sp, wi, k, part)
			if err == nil {
				break
			}
			if ctx.Err() != nil {
				return fmt.Errorf("dist: loading worker %d: %w", wi, err)
			}
			sp.Event(fmt.Sprintf("worker %d failed initial load, failing over", wi))
			c.markDead(wi)
			if wi = c.nextLive(-1); wi < 0 && !c.opts.LocalFallback {
				return fmt.Errorf("dist: no live worker accepts partition %d: %w", k, err)
			}
		}
		if wi < 0 && !c.opts.LocalFallback {
			return fmt.Errorf("dist: no live worker accepts partition %d", k)
		}
		if wi < 0 {
			sp.Event(fmt.Sprintf("partition %d held on the driver (no live workers)", k))
		}
		c.mu.Lock()
		c.parts = append(c.parts, part)
		c.assign = append(c.assign, wi)
		c.mu.Unlock()
		lo = hi
	}
	c.mu.Lock()
	c.ready = true
	c.mu.Unlock()
	c.startHeartbeat()
	return nil
}

// workerCount returns the current worker-slot count (elastic clusters grow).
func (c *Cluster) workerCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// workerAt snapshots one worker slot; the slice is append-only, so the
// returned Worker stays valid without holding the lock across the RPC.
func (c *Cluster) workerAt(wi int) Worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workers[wi]
}

func (c *Cluster) isAlive(wi int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return wi >= 0 && wi < len(c.alive) && c.alive[wi]
}

// wireKey maps a partition index to the key used on the Worker interface:
// the bare index, or the content address when PlacementSeed is set. keys is
// written once per Setup before ready flips, then read-only.
func (c *Cluster) wireKey(p int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.keys[p]
}

// addWorker appends a worker slot (the elastic membership join path) and
// returns its index. Slots are never removed — a departed member's slot is
// marked dead so partition assignments stay dense integers.
func (c *Cluster) addWorker(w Worker) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers = append(c.workers, w)
	c.alive = append(c.alive, true)
	c.strikes = append(c.strikes, 0)
	return len(c.workers) - 1
}

// reviveWorker marks a slot live again (a member rejoined).
func (c *Cluster) reviveWorker(wi int) {
	c.mu.Lock()
	was := c.alive[wi]
	c.alive[wi] = true
	c.strikes[wi] = 0
	c.mu.Unlock()
	if !was {
		c.ob.resurrections.Inc()
		c.decide(Decision{Kind: DecideResurrect, Part: -1, Worker: wi, Target: -1})
	}
}

func (c *Cluster) assignOf(p int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.assign[p]
}

func (c *Cluster) partitionCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.ready {
		return 0
	}
	return len(c.parts)
}

// Eval broadcasts the candidates, evaluates every partition concurrently,
// and sums the partial (ss, se) vectors and maxes the sm vectors. A failed
// worker is marked dead and its partition retried on a healthy worker; a
// straggling partition is speculatively re-executed on a second worker when
// hedging is enabled (first well-formed result wins).
//
// Partials are merged in partition order after all evaluations complete:
// float64 addition is not associative, so merging in goroutine-completion
// order — or folding in a hedged duplicate — would make repeated
// evaluations of the same candidates return se values differing in the last
// ULPs. The differential test harness asserts run-to-run determinism per
// plan, faults or not.
func (c *Cluster) Eval(ctx context.Context, cols [][]int, level int) (ss, se, sm []float64, err error) {
	c.mu.Lock()
	ready := c.ready
	nParts := len(c.parts)
	c.mu.Unlock()
	if !ready {
		return nil, nil, nil, errors.New("dist: Eval before Setup")
	}
	esp := c.startSpan(ctx, "dist.eval")
	defer esp.End()
	esp.SetInt("level", int64(level))
	esp.SetInt("candidates", int64(len(cols)))
	esp.SetInt("partitions", int64(nParts))
	ctx = obs.ContextWith(ctx, esp)
	n := len(cols)
	ss = make([]float64, n)
	se = make([]float64, n)
	sm = make([]float64, n)
	if nParts == 0 {
		// Zero-row dataset: nothing was shipped, every statistic is zero.
		return ss, se, sm, nil
	}
	type partial struct {
		ss, se, sm []float64
	}
	hc := c.newHedger(nParts)
	partials := make([]partial, nParts)
	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for p := 0; p < nParts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pss, pse, psm, werr := c.evalPartitionHedged(ctx, hc, p, cols, level)
			if werr != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = werr
				}
				mu.Unlock()
				return
			}
			partials[p] = partial{ss: pss, se: pse, sm: psm}
		}(p)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, nil, firstErr
	}
	for _, pt := range partials {
		for i := 0; i < n; i++ {
			ss[i] += pt.ss[i]
			se[i] += pt.se[i]
			if pt.sm[i] > sm[i] {
				sm[i] = pt.sm[i]
			}
		}
	}
	return ss, se, sm, nil
}

// tryEval runs one Eval on worker wi and validates the result shape and
// domain. A worker answering with partial results (wrong vector lengths) or
// corrupt statistics (NaN, infinite, or negative values — e.g. a torn or
// garbled reply) is treated exactly like a crashed worker: silently folding
// malformed vectors into the aggregate would corrupt every slice statistic
// downstream.
func (c *Cluster) tryEval(ctx context.Context, wi, p int, cols [][]int, level int) (ss, se, sm []float64, err error) {
	sp := obs.FromContext(ctx).Child("dist.rpc")
	sp.SetStr("op", "eval")
	sp.SetInt("worker", int64(wi))
	sp.SetInt("partition", int64(p))
	sp.SetInt("level", int64(level))
	sp.SetInt("candidates", int64(len(cols)))
	g := c.ob.inflightFor(wi)
	g.Add(1)
	start := time.Now()
	defer func() {
		g.Add(-1)
		c.ob.evalSecs.Observe(time.Since(start).Seconds())
		if err != nil {
			c.ob.evalErrs.Inc()
			sp.SetBool("error", true)
			sp.Event("error: " + err.Error())
		}
		sp.End()
	}()
	cctx, cancel := c.callCtx(obs.ContextWith(ctx, sp))
	defer cancel()
	ss, se, sm, err = c.workerAt(wi).Eval(cctx, c.wireKey(p), cols, level, c.opts.BlockSize)
	if err != nil {
		return nil, nil, nil, err
	}
	if len(ss) != len(cols) || len(se) != len(cols) || len(sm) != len(cols) {
		return nil, nil, nil, fmt.Errorf("dist: worker %d returned %d/%d/%d statistics for %d candidates",
			wi, len(ss), len(se), len(sm), len(cols))
	}
	for i := range ss {
		if !validStat(ss[i]) || !validStat(se[i]) || !validStat(sm[i]) {
			return nil, nil, nil, fmt.Errorf("dist: worker %d returned corrupt statistics (ss=%v se=%v sm=%v at %d)",
				wi, ss[i], se[i], sm[i], i)
		}
	}
	return ss, se, sm, nil
}

// validStat reports whether one partial statistic is in its domain: slice
// sizes, error sums, and error maxima are all finite and non-negative.
func validStat(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

func (c *Cluster) loadPartition(ctx context.Context, wi, p int) error {
	c.mu.Lock()
	part := c.parts[p]
	c.mu.Unlock()
	return c.loadRPC(ctx, obs.FromContext(ctx), wi, p, part)
}

// loadRPC ships one partition to a worker under the per-call deadline, with
// an RPC span (parented under parent when tracing is on) and latency /
// queue-depth / error metrics.
func (c *Cluster) loadRPC(ctx context.Context, parent *obs.Span, wi, p int, part partition) (err error) {
	sp := parent.Child("dist.rpc")
	sp.SetStr("op", "load")
	sp.SetInt("worker", int64(wi))
	sp.SetInt("partition", int64(p))
	sp.SetInt("rows", int64(part.x.Rows()))
	g := c.ob.inflightFor(wi)
	g.Add(1)
	start := time.Now()
	defer func() {
		g.Add(-1)
		c.ob.loadSecs.Observe(time.Since(start).Seconds())
		if err != nil {
			c.ob.loadErrs.Inc()
			sp.SetBool("error", true)
			sp.Event("error: " + err.Error())
		}
		sp.End()
	}()
	lctx, cancel := c.callCtx(obs.ContextWith(ctx, sp))
	defer cancel()
	return c.workerAt(wi).Load(lctx, c.wireKey(p), part.x, part.e)
}

func (c *Cluster) markDead(wi int) {
	c.mu.Lock()
	was := c.alive[wi]
	c.alive[wi] = false
	c.mu.Unlock()
	if was {
		c.ob.deaths.Inc()
	}
}

func (c *Cluster) setAssign(p, wi int) {
	c.mu.Lock()
	c.assign[p] = wi
	c.mu.Unlock()
}

// nextLive returns the lowest-indexed live worker excluding avoid, or -1,
// per the shared NextLiveWorker selection policy.
func (c *Cluster) nextLive(avoid int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return NextLiveWorker(c.alive, avoid)
}

// evalPartitionChain evaluates one partition, failing over to other live
// workers when the assigned one errors, times out, or returns malformed
// statistics. avoid (when >= 0) excludes one worker from selection — hedged
// requests must not land on the straggler they are hedging against. It
// returns the worker that produced the result so the caller can update the
// assignment.
func (c *Cluster) evalPartitionChain(ctx context.Context, p int, cols [][]int, level, avoid int) (ss, se, sm []float64, winner int, err error) {
	sp := obs.FromContext(ctx) // the partition (or hedge) span, nil when tracing is off
	for attempt := 0; attempt <= c.workerCount(); attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return nil, nil, nil, -1, err
		}
		c.mu.Lock()
		wi := c.assign[p]
		ok := wi >= 0 && c.alive[wi] && wi != avoid
		c.mu.Unlock()
		if ok {
			ss, se, sm, err = c.tryEval(ctx, wi, p, cols, level)
			if err == nil {
				return ss, se, sm, wi, nil
			}
			if ctx.Err() != nil {
				// The run (or this hedge attempt) was cancelled, not the
				// worker misbehaving — do not poison its liveness.
				return nil, nil, nil, -1, err
			}
			// The worker may be alive but amnesiac: a TCP worker restarted
			// on the same address answers RemoteWorker's redial but has lost
			// every partition. Reload the partition in place once before
			// declaring the worker dead, so a restarted worker rejoins the
			// run instead of shifting its load onto the survivors.
			sp.Event(fmt.Sprintf("reloading partition in place on worker %d", wi))
			c.ob.retries.Inc()
			c.decide(Decision{Kind: DecideRetryInPlace, Part: p, Worker: wi, Target: -1})
			if lerr := c.loadPartition(ctx, wi, p); lerr == nil {
				ss, se, sm, err = c.tryEval(ctx, wi, p, cols, level)
				if err == nil {
					return ss, se, sm, wi, nil
				}
			}
			if ctx.Err() != nil {
				return nil, nil, nil, -1, err
			}
			// Mark the worker dead; its other partitions will fail over as
			// their own evaluations error out.
			sp.Event(fmt.Sprintf("marking worker %d dead", wi))
			c.markDead(wi)
		}
		// Find a healthy worker, reship the partition, and retry.
		next := c.nextLive(avoid)
		if next < 0 {
			if c.opts.LocalFallback {
				// The fleet is gone (or never arrived): evaluate the
				// partition on the driver with the same kernel a worker
				// would use, so the run completes degraded with
				// bit-identical statistics instead of erroring.
				sp.Event(fmt.Sprintf("degraded: evaluating partition %d on the driver", p))
				c.ob.degraded.Inc()
				c.decide(Decision{Kind: DecideDegrade, Part: p, Worker: -1, Target: -1})
				ss, se, sm = c.evalLocal(p, cols, level)
				return ss, se, sm, -1, nil
			}
			if err == nil {
				err = errors.New("dist: worker unavailable")
			}
			return nil, nil, nil, -1, fmt.Errorf("dist: no live workers left for partition %d: %w", p, err)
		}
		// A hedge chain's first reroute is just the hedge picking a worker
		// other than the straggler, not a failover.
		if avoid < 0 || attempt > 0 {
			sp.Event(fmt.Sprintf("failing over partition to worker %d", next))
			c.ob.failovers.Inc()
			c.ob.retries.Inc()
			c.decide(Decision{Kind: DecideFailover, Part: p, Worker: c.assignOf(p), Target: next})
		}
		c.setAssign(p, next)
		if lerr := c.loadPartition(ctx, next, p); lerr != nil {
			if ctx.Err() != nil {
				return nil, nil, nil, -1, lerr
			}
			c.markDead(next)
			continue
		}
	}
	if c.opts.LocalFallback && ctx.Err() == nil {
		sp.Event(fmt.Sprintf("degraded: partition %d failed on every worker, evaluating on the driver", p))
		c.ob.degraded.Inc()
		c.decide(Decision{Kind: DecideDegrade, Part: p, Worker: -1, Target: -1})
		ss, se, sm = c.evalLocal(p, cols, level)
		return ss, se, sm, -1, nil
	}
	return nil, nil, nil, -1, fmt.Errorf("dist: partition %d failed on every worker: %w", p, err)
}

// evalLocal evaluates one partition on the driver — the degraded path when
// no worker can take it. It uses the same kernel construction as
// InProcessWorker and the worker-side Service (automatic bitset selection),
// so a degraded run's statistics are bit-identical to a healthy one's. The
// kernel is built lazily on first degradation and cached per partition.
func (c *Cluster) evalLocal(p int, cols [][]int, level int) (ss, se, sm []float64) {
	c.mu.Lock()
	if c.local == nil {
		c.local = make([]*core.Kernel, len(c.parts))
	}
	k := c.local[p]
	if k == nil {
		part := c.parts[p]
		k = core.NewKernel(part.x, part.e, nil, core.BitsetAuto)
		c.local[p] = k
	}
	c.mu.Unlock()
	n := len(cols)
	ss = make([]float64, n)
	se = make([]float64, n)
	sm = make([]float64, n)
	k.Eval(cols, level, c.opts.BlockSize, ss, se, sm)
	return ss, se, sm
}

// newHedger builds the level's straggler policy from the cluster knobs; the
// policy logic itself lives in HedgePolicy (policy.go), shared with the
// simulator.
func (c *Cluster) newHedger(nParts int) *HedgePolicy {
	return NewHedgePolicy(c.opts.HedgeDelay, c.opts.HedgeMultiplier, nParts)
}

// hedgeRecheck is how often an adaptive hedger re-evaluates its evidence
// while no threshold is available yet.
const hedgeRecheck = 2 * time.Millisecond

// evalPartitionHedged evaluates one partition with straggler mitigation:
// when the primary attempt outlives the hedge threshold, the partition is
// speculatively re-executed on another live worker (shipping it there if
// needed) and the first well-formed result wins. The loser is cancelled;
// its result, if any, is discarded whole — never merged — so determinism is
// preserved.
func (c *Cluster) evalPartitionHedged(ctx context.Context, hc *HedgePolicy, p int, cols [][]int, level int) (ss, se, sm []float64, err error) {
	type outcome struct {
		ss, se, sm []float64
		winner     int
		err        error
	}
	psp := obs.FromContext(ctx).Child("dist.partition")
	psp.SetInt("partition", int64(p))
	psp.SetInt("level", int64(level))
	defer psp.End()
	ctx = obs.ContextWith(ctx, psp)
	start := time.Now()
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	primary := make(chan outcome, 1)
	go func() {
		oss, ose, osm, wi, oerr := c.evalPartitionChain(pctx, p, cols, level, -1)
		primary <- outcome{oss, ose, osm, wi, oerr}
	}()
	if hc == nil {
		out := <-primary
		if out.err == nil {
			c.setAssign(p, out.winner)
			psp.SetInt("winner", int64(out.winner))
		}
		return out.ss, out.se, out.sm, out.err
	}

	hcancel := func() {}
	defer func() { hcancel() }()
	var hedge chan outcome
	var primaryErr error
	for {
		var timer *time.Timer
		var timerC <-chan time.Time
		if hedge == nil && primary != nil {
			if th, ok := hc.Threshold(); ok {
				wait := th - time.Since(start)
				if wait < 0 {
					wait = 0
				}
				timer = time.NewTimer(wait)
			} else if hc.Adaptive() {
				timer = time.NewTimer(hedgeRecheck)
			}
			if timer != nil {
				timerC = timer.C
			}
		}
		select {
		case out := <-primary:
			stopTimer(timer)
			if out.err == nil {
				hcancel()
				hc.Record(time.Since(start))
				c.setAssign(p, out.winner)
				psp.SetInt("winner", int64(out.winner))
				return out.ss, out.se, out.sm, nil
			}
			if hedge == nil {
				return nil, nil, nil, out.err
			}
			primary, primaryErr = nil, out.err
		case out := <-hedge:
			stopTimer(timer)
			if out.err == nil {
				pcancel()
				hc.Record(time.Since(start))
				c.setAssign(p, out.winner)
				c.ob.hedgeWins.Inc()
				c.decide(Decision{Kind: DecideHedgeWin, Part: p, Worker: out.winner, Target: -1})
				psp.SetInt("winner", int64(out.winner))
				psp.SetBool("hedge_won", true)
				return out.ss, out.se, out.sm, nil
			}
			if primary == nil {
				return nil, nil, nil, primaryErr
			}
			hedge = nil // primary may still succeed; keep waiting
		case <-timerC:
			stopTimer(timer)
			if th, ok := hc.Threshold(); !ok || time.Since(start) < th {
				continue // adaptive evidence not conclusive yet
			}
			c.mu.Lock()
			straggler := c.assign[p]
			c.mu.Unlock()
			if c.nextLive(straggler) < 0 {
				continue // nowhere to hedge; keep waiting on the primary
			}
			c.ob.hedges.Inc()
			c.decide(Decision{Kind: DecideHedge, Part: p, Worker: straggler, Target: -1})
			psp.Event(fmt.Sprintf("hedge fired against straggling worker %d", straggler))
			psp.SetBool("hedged", true)
			hctx, cancel := context.WithCancel(ctx)
			hcancel = cancel
			ch := make(chan outcome, 1)
			hedge = ch
			go func() {
				oss, ose, osm, wi, oerr := c.evalPartitionChain(hctx, p, cols, level, straggler)
				ch <- outcome{oss, ose, osm, wi, oerr}
			}()
		case <-ctx.Done():
			stopTimer(timer)
			return nil, nil, nil, ctx.Err()
		}
	}
}

func stopTimer(t *time.Timer) {
	if t != nil {
		t.Stop()
	}
}

// startHeartbeat launches the background health checker when configured.
func (c *Cluster) startHeartbeat() {
	if c.opts.HeartbeatInterval <= 0 {
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	c.mu.Lock()
	c.hbStop, c.hbDone = stop, done
	c.mu.Unlock()
	go c.heartbeatLoop(stop, done)
}

func (c *Cluster) stopHeartbeat() {
	c.mu.Lock()
	stop, done := c.hbStop, c.hbDone
	c.hbStop, c.hbDone = nil, nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

func (c *Cluster) heartbeatLoop(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		c.probeAll(stop)
	}
}

// probeAll pings every worker once. A worker failing HeartbeatStrikes
// consecutive probes is declared suspect: it is marked dead and its
// partitions are re-shipped to live workers immediately, so the next Eval
// never has to discover the death the hard way. A dead worker that answers
// again is resurrected into the rotation (its partitions were already moved;
// it serves as a failover/hedge target until one lands on it).
func (c *Cluster) probeAll(stop chan struct{}) {
	c.mu.Lock()
	workers := append([]Worker(nil), c.workers...)
	c.mu.Unlock()
	for wi := range workers {
		select {
		case <-stop:
			return
		default:
		}
		pctx, cancel := context.WithTimeout(context.Background(), c.opts.HeartbeatTimeout)
		pstart := time.Now()
		err := workers[wi].Ping(pctx)
		cancel()
		c.ob.pingSecs.Observe(time.Since(pstart).Seconds())
		if err != nil {
			c.ob.pingErrs.Inc()
		}
		// The strike discipline itself is the shared ProbeStep policy; this
		// loop only measures probes and applies the verdicts.
		c.mu.Lock()
		newAlive, newStrikes, verdict := ProbeStep(c.alive[wi], c.strikes[wi], c.opts.HeartbeatStrikes, err == nil)
		c.alive[wi], c.strikes[wi] = newAlive, newStrikes
		c.mu.Unlock()
		switch verdict {
		case ProbeResurrect:
			c.ob.resurrections.Inc()
			c.decide(Decision{Kind: DecideResurrect, Part: -1, Worker: wi, Target: -1})
			rsp := obs.Start(c.opts.Tracer, "dist.resurrection")
			rsp.SetInt("worker", int64(wi))
			rsp.End()
		case ProbeEvict:
			c.ob.evictions.Inc()
			c.decide(Decision{Kind: DecideEvict, Part: -1, Worker: wi, Target: -1, Strikes: newStrikes})
			esp := obs.Start(c.opts.Tracer, "dist.eviction")
			esp.SetInt("worker", int64(wi))
			esp.SetInt("strikes", int64(newStrikes))
			esp.Event("worker evicted by heartbeat; re-shipping its partitions")
			c.reshipFrom(wi, esp)
			esp.End()
		}
	}
}

// reshipFrom moves every partition assigned to a suspected-dead worker onto
// live workers, round-robin. A failed re-ship leaves the assignment for the
// mid-Eval failover path to retry.
func (c *Cluster) reshipFrom(dead int, sp *obs.Span) {
	c.mu.Lock()
	moves := ReshipPlan(c.assign, c.alive, dead)
	c.mu.Unlock()
	for _, m := range moves {
		p, target := m[0], m[1]
		// Bound the re-ship even when no CallTimeout is configured — a hung
		// target must not wedge the heartbeat loop (Close waits for it).
		rctx, cancel := context.WithTimeout(context.Background(), c.opts.HeartbeatTimeout)
		err := c.loadPartition(obs.ContextWith(rctx, sp), target, p)
		cancel()
		if err == nil {
			c.ob.reships.Inc()
			c.decide(Decision{Kind: DecideReship, Part: p, Worker: dead, Target: target})
			sp.Event(fmt.Sprintf("partition %d re-shipped to worker %d", p, target))
			c.setAssign(p, target)
		}
	}
}

// Close stops the health checker and shuts down all workers, returning the
// first error.
func (c *Cluster) Close() error {
	c.stopHeartbeat()
	c.mu.Lock()
	workers := append([]Worker(nil), c.workers...)
	c.mu.Unlock()
	var first error
	for _, wk := range workers {
		if err := wk.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// InProcessWorker executes partitions in the driver process; it is the
// no-network reference worker used by tests and the simulated cluster.
type InProcessWorker struct {
	// BitsetEval selects the slice-membership kernel (Config.BitsetEval
	// semantics) for partitions loaded after it is set; the zero value is
	// automatic selection by partition density. Like the driver-side knob it
	// changes execution plan, never results.
	BitsetEval core.BitsetMode

	mu    sync.Mutex
	parts map[int]*core.Kernel
}

// Load implements Worker.
func (w *InProcessWorker) Load(_ context.Context, part int, x *matrix.CSR, e []float64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.parts == nil {
		w.parts = make(map[int]*core.Kernel)
	}
	w.parts[part] = core.NewKernel(x, e, nil, w.BitsetEval)
	return nil
}

// Eval implements Worker.
func (w *InProcessWorker) Eval(_ context.Context, part int, cols [][]int, level, blockSize int) (ss, se, sm []float64, err error) {
	w.mu.Lock()
	k, ok := w.parts[part]
	w.mu.Unlock()
	if !ok {
		return nil, nil, nil, fmt.Errorf("dist: worker holds no partition %d", part)
	}
	n := len(cols)
	ss = make([]float64, n)
	se = make([]float64, n)
	sm = make([]float64, n)
	k.Eval(cols, level, blockSize, ss, se, sm)
	return ss, se, sm, nil
}

// Ping implements Worker.
func (w *InProcessWorker) Ping(context.Context) error { return nil }

// Parts implements PartitionLister: the partition keys this worker holds,
// sorted for determinism.
func (w *InProcessWorker) Parts(context.Context) ([]int, error) {
	w.mu.Lock()
	keys := make([]int, 0, len(w.parts))
	for key := range w.parts {
		keys = append(keys, key)
	}
	w.mu.Unlock()
	sort.Ints(keys)
	return keys, nil
}

// Close implements Worker.
func (w *InProcessWorker) Close() error { return nil }

func seq(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}

var _ core.ExternalEvaluator = (*Local)(nil)
var _ core.ExternalEvaluator = (*Cluster)(nil)
