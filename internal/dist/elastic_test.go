package dist_test

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"sliceline/internal/core"
	"sliceline/internal/dist"
	"sliceline/internal/frame"
	"sliceline/internal/matrix"
	"sliceline/internal/membership"
	"sliceline/internal/obs"
)

// dsPair bundles a dataset with its error vector for the test helpers.
type dsPair struct {
	ds *frame.Dataset
	e  []float64
}

// testDialer resolves member IDs to pre-built workers; unknown members fail
// to dial like an unreachable address would.
func testDialer(workers map[string]dist.Worker) dist.Dialer {
	return func(_ context.Context, m membership.Member) (dist.Worker, error) {
		w, ok := workers[m.ID]
		if !ok {
			return nil, errors.New("no route to member " + m.ID)
		}
		return w, nil
	}
}

func view(version uint64, members ...membership.Member) membership.View {
	return membership.View{Version: version, Members: members}
}

func fleetMember(id string, inc uint64) membership.Member {
	return membership.Member{ID: id, Addr: id + ":0", Incarnation: inc}
}

// countingWorker counts Load calls so tests can assert when data actually
// moved versus re-attached warm.
type countingWorker struct {
	*dist.InProcessWorker
	loads atomic.Int64
}

func (w *countingWorker) Load(ctx context.Context, part int, x *matrix.CSR, e []float64) error {
	w.loads.Add(1)
	return w.InProcessWorker.Load(ctx, part, x, e)
}

// elasticRef runs the single-stable-member reference: same Partitions, so
// the merge structure — and the result bits — must match any churned run.
func elasticRef(t *testing.T, cfg core.Config, ds dsPair) *core.Result {
	t.Helper()
	ref, err := dist.NewElasticCluster(
		testDialer(map[string]dist.Worker{"ref": &dist.InProcessWorker{}}), dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref.ApplyView(context.Background(), view(1, fleetMember("ref", 1)))
	c := cfg
	c.Evaluator = ref
	res, err := core.Run(ds.ds, ds.e, c)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestElasticEmptyFleetDegradesLocally(t *testing.T) {
	ds, e := chaosDataset(91, 300, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref := elasticRef(t, cfg, dsPair{ds, e})

	reg := obs.NewRegistry()
	ec, err := dist.NewElasticCluster(testDialer(nil), dist.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	c := cfg
	c.Evaluator = ec
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatalf("empty-fleet run must degrade, not error: %v", err)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("degraded top-K differs from fleet reference:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
	if n := reg.Counter("sl_dist_degraded_total", "").Value(); n == 0 {
		t.Fatal("degraded counter never incremented on an empty fleet")
	}
}

func TestElasticJoinMidRunRebalances(t *testing.T) {
	ds, e := chaosDataset(92, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref := elasticRef(t, cfg, dsPair{ds, e})

	reg := obs.NewRegistry()
	w1 := &dist.InProcessWorker{}
	w2 := &countingWorker{InProcessWorker: &dist.InProcessWorker{}}
	ec, err := dist.NewElasticCluster(
		testDialer(map[string]dist.Worker{"w1": w1, "w2": w2}), dist.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	ec.ApplyView(context.Background(), view(1, fleetMember("w1", 1)))

	c := cfg
	c.Evaluator = ec
	joined := false
	c.OnLevel = func(core.LevelStats) {
		if !joined {
			joined = true
			ec.ApplyView(context.Background(), view(2, fleetMember("w1", 1), fleetMember("w2", 1)))
		}
	}
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("top-K after mid-run join differs:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
	if w2.loads.Load() == 0 {
		t.Fatal("joining worker was never shipped a partition")
	}
	if n := reg.Counter("sl_dist_rebalances_total", "").Value(); n == 0 {
		t.Fatal("rebalance counter never incremented on a join")
	}
	if got := ec.LiveMembers(); !reflect.DeepEqual(got, []string{"w1", "w2"}) {
		t.Fatalf("live members: %v", got)
	}
}

func TestElasticFlapReattachesWarm(t *testing.T) {
	ds, e := chaosDataset(93, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	ref := elasticRef(t, cfg, dsPair{ds, e})

	reg := obs.NewRegistry()
	w1 := &countingWorker{InProcessWorker: &dist.InProcessWorker{}}
	w2 := &dist.InProcessWorker{}
	ec, err := dist.NewElasticCluster(
		testDialer(map[string]dist.Worker{"w1": w1, "w2": w2}), dist.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	both := view(1, fleetMember("w1", 1), fleetMember("w2", 1))
	ec.ApplyView(context.Background(), both)

	c := cfg
	c.Evaluator = ec
	level := 0
	c.OnLevel = func(core.LevelStats) {
		level++
		switch level {
		case 1:
			// w1's lease flaps: it leaves the view but the process (and its
			// loaded partitions) lives on.
			ec.ApplyView(context.Background(), view(2, fleetMember("w2", 1)))
		case 2:
			// Same incarnation rejoins: its partitions must re-attach warm.
			ec.ApplyView(context.Background(), view(3, fleetMember("w1", 1), fleetMember("w2", 1)))
		}
	}
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("top-K after flap differs:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
	if n := reg.Counter("sl_dist_warm_attach_total", "").Value(); n == 0 {
		t.Fatal("flapped worker was re-shipped data it still held (no warm attach)")
	}
}

// TestElasticDialFailureSkipsMember: a member that cannot be dialed is left
// out of the fleet without failing view application; the run proceeds on the
// reachable members.
func TestElasticDialFailureSkipsMember(t *testing.T) {
	ds, e := chaosDataset(94, 200, 3, 3)
	cfg := core.Config{K: 3, Sigma: 4, Alpha: 0.9}
	ref := elasticRef(t, cfg, dsPair{ds, e})

	ec, err := dist.NewElasticCluster(
		testDialer(map[string]dist.Worker{"w1": &dist.InProcessWorker{}}), dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	ec.ApplyView(context.Background(), view(1, fleetMember("w1", 1), fleetMember("ghost", 1)))
	if got := ec.LiveMembers(); !reflect.DeepEqual(got, []string{"w1"}) {
		t.Fatalf("live members: %v", got)
	}
	c := cfg
	c.Evaluator = ec
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("top-K with an undialable member differs:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
}

// TestElasticStaleViewIgnored: views must apply monotonically.
func TestElasticStaleViewIgnored(t *testing.T) {
	ec, err := dist.NewElasticCluster(
		testDialer(map[string]dist.Worker{
			"w1": &dist.InProcessWorker{},
			"w2": &dist.InProcessWorker{},
		}), dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	ec.ApplyView(context.Background(), view(5, fleetMember("w1", 1)))
	// An older view listing w2 must not roll the fleet back.
	ec.ApplyView(context.Background(), view(3, fleetMember("w2", 1)))
	if got := ec.LiveMembers(); !reflect.DeepEqual(got, []string{"w1"}) {
		t.Fatalf("stale view applied: %v", got)
	}
}

// TestFollowAppliesInitialViewSynchronously: by the time Follow returns, the
// registrar's current members must already be dialed in — a Setup issued
// immediately after must place partitions on the existing fleet instead of
// racing the watcher goroutine and holding everything on the driver.
func TestFollowAppliesInitialViewSynchronously(t *testing.T) {
	reg := membership.NewRegistrar(membership.RegistrarConfig{})
	if _, err := reg.Announce(membership.Announce{Member: fleetMember("w1", 1)}); err != nil {
		t.Fatal(err)
	}
	ec, err := dist.NewElasticCluster(
		testDialer(map[string]dist.Worker{"w1": &dist.InProcessWorker{}}), dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ec.Close()
	stop := ec.Follow(context.Background(), reg)
	defer stop()
	if got := ec.LiveMembers(); !reflect.DeepEqual(got, []string{"w1"}) {
		t.Fatalf("initial view not applied before Follow returned: live = %v", got)
	}
}

// TestElasticCrossJobWarmAttach: content-addressed partition keys survive on
// the worker between jobs, so a second cluster over the same dataset (same
// PlacementSeed) re-attaches every partition warm instead of re-shipping.
func TestElasticCrossJobWarmAttach(t *testing.T) {
	ds, e := chaosDataset(96, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	w := &countingWorker{InProcessWorker: &dist.InProcessWorker{}}
	seed := uint64(0xfeedface)

	run := func(reg *obs.Registry) *core.Result {
		ec, err := dist.NewElasticCluster(testDialer(map[string]dist.Worker{"w1": w}),
			dist.Options{PlacementSeed: seed, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer ec.Close()
		ec.ApplyView(context.Background(), view(1, fleetMember("w1", 1)))
		c := cfg
		c.Evaluator = ec
		res, err := core.Run(ds, e, c)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	first := run(obs.NewRegistry())
	shipped := w.loads.Load()
	if shipped == 0 {
		t.Fatal("first job shipped nothing")
	}

	reg2 := obs.NewRegistry()
	second := run(reg2)
	if n := w.loads.Load(); n != shipped {
		t.Fatalf("second job re-shipped partitions: loads %d -> %d", shipped, n)
	}
	if n := reg2.Counter("sl_dist_warm_attach_total", "").Value(); n == 0 {
		t.Fatal("warm attach counter never incremented on the second job")
	}
	if !reflect.DeepEqual(first.TopK, second.TopK) {
		t.Fatal("warm-attached result differs from the shipped one")
	}
}
