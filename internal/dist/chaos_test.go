// Chaos test matrix for the self-healing Dist-PFor runtime: every fault
// kind of internal/faults is injected into a live cluster and the run must
// produce top-K results identical to a fault-free cluster of the same
// shape. The file lives in package dist_test because faults wraps
// dist.Worker (importing faults from package dist would be a cycle).
package dist_test

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/dist"
	"sliceline/internal/faults"
	"sliceline/internal/fptol"
	"sliceline/internal/frame"
)

func chaosDataset(seed int64, n, m, maxDom int) (*frame.Dataset, []float64) {
	rng := rand.New(rand.NewSource(seed))
	ds := &frame.Dataset{
		Name:     "chaos",
		X0:       frame.NewIntMatrix(n, m),
		Features: make([]frame.Feature, m),
	}
	for j := 0; j < m; j++ {
		dom := 2 + rng.Intn(maxDom-1)
		ds.Features[j] = frame.Feature{Name: "f", Domain: dom}
		for i := 0; i < n; i++ {
			ds.X0.Set(i, j, 1+rng.Intn(dom))
		}
	}
	e := make([]float64, n)
	for i := range e {
		e[i] = rng.Float64()
	}
	return ds, e
}

// everyEval scripts the same fault on the first 500 Eval calls — from the
// driver's perspective the worker is persistently broken in this one way.
func everyEval(a faults.Action) *faults.Schedule {
	s := faults.NewSchedule()
	for i := 0; i < 500; i++ {
		s.On(faults.OpEval, i, a)
	}
	return s
}

// chaosRef runs the fault-free reference: the same dataset on a clean
// cluster with the same worker count, so the partition split — and thus the
// exact floating-point merge order — is identical.
func chaosRef(t *testing.T, ds *frame.Dataset, e []float64, cfg core.Config, workers int) *core.Result {
	t.Helper()
	ws := make([]dist.Worker, workers)
	for i := range ws {
		ws[i] = &dist.InProcessWorker{}
	}
	cl, err := dist.NewCluster(ws, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Evaluator = cl
	ref, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestChaosMatrix: one faulty worker per fault kind; the run must complete
// and the top-K must be identical — not merely close — to the fault-free
// reference, because failover and hedging re-execute whole partitions on
// identical data and the merge is by partition order.
func TestChaosMatrix(t *testing.T) {
	ds, e := chaosDataset(30, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	const nWorkers = 3
	ref := chaosRef(t, ds, e, cfg, nWorkers)

	cases := []struct {
		name     string
		schedule *faults.Schedule
		opts     dist.Options
		budget   time.Duration // max wall clock; 0 = default 60s
	}{
		{
			name:     "delay",
			schedule: everyEval(faults.Action{Kind: faults.Delay, Delay: 5 * time.Millisecond}),
		},
		{
			name:     "hang-call-timeout",
			schedule: everyEval(faults.Action{Kind: faults.Hang}),
			opts:     dist.Options{CallTimeout: 300 * time.Millisecond},
			// Each hang burns at most two call timeouts before failover;
			// well under this budget, and infinitely under no deadline.
			budget: 30 * time.Second,
		},
		{
			name:     "hang-hedged",
			schedule: everyEval(faults.Action{Kind: faults.Hang}),
			opts:     dist.Options{HedgeDelay: 20 * time.Millisecond},
			budget:   30 * time.Second,
		},
		{
			name:     "crash-before",
			schedule: everyEval(faults.Action{Kind: faults.CrashBefore}),
		},
		{
			name:     "crash-after",
			schedule: everyEval(faults.Action{Kind: faults.CrashAfter}),
		},
		{
			name:     "short-reply",
			schedule: everyEval(faults.Action{Kind: faults.ShortReply}),
		},
		{
			name:     "corrupt-reply",
			schedule: everyEval(faults.Action{Kind: faults.CorruptReply}),
		},
		{
			name: "flappy",
			schedule: faults.NewSchedule().
				On(faults.OpEval, 0, faults.Action{Kind: faults.CrashBefore}).
				On(faults.OpEval, 2, faults.Action{Kind: faults.CrashBefore}).
				On(faults.OpEval, 4, faults.Action{Kind: faults.CrashBefore}),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faulty := faults.Wrap(&dist.InProcessWorker{}, tc.schedule)
			workers := []dist.Worker{&dist.InProcessWorker{}, faulty, &dist.InProcessWorker{}}
			cl, err := dist.NewClusterOpts(workers, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			c := cfg
			c.Evaluator = cl
			start := time.Now()
			got, err := core.Run(ds, e, c)
			elapsed := time.Since(start)
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			budget := tc.budget
			if budget == 0 {
				budget = 60 * time.Second
			}
			if elapsed > budget {
				t.Fatalf("chaos run took %v, deadline budget %v", elapsed, budget)
			}
			if faulty.Calls(faults.OpEval) == 0 {
				t.Fatal("faulty worker never evaluated; test exercised nothing")
			}
			if !reflect.DeepEqual(got.TopK, ref.TopK) {
				t.Fatalf("top-K under %s faults differs from fault-free reference:\n got %v\nwant %v",
					tc.name, got.TopK, ref.TopK)
			}
		})
	}
}

// TestChaosSeededSweep: two of three workers run a seeded pseudo-random
// fault profile mixing every kind. Whatever the interleaving, the result
// must be identical to the fault-free reference. Failures reproduce from
// the seed alone.
func TestChaosSeededSweep(t *testing.T) {
	ds, e := chaosDataset(31, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	const nWorkers = 3
	ref := chaosRef(t, ds, e, cfg, nWorkers)
	opts := dist.Options{
		CallTimeout:       500 * time.Millisecond,
		HedgeDelay:        50 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatTimeout:  100 * time.Millisecond,
	}
	for _, seed := range []int64{1, 7, 42} {
		workers := []dist.Worker{
			&dist.InProcessWorker{}, // worker 0 stays clean: the run must always have an exit
			faults.Wrap(&dist.InProcessWorker{}, faults.Seeded(seed, faults.Chaos)),
			faults.Wrap(&dist.InProcessWorker{}, faults.Seeded(seed+1000, faults.Chaos)),
		}
		cl, err := dist.NewClusterOpts(workers, opts)
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.Evaluator = cl
		got, err := core.Run(ds, e, c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got.TopK, ref.TopK) {
			t.Fatalf("seed %d: top-K under seeded chaos differs from fault-free reference:\n got %v\nwant %v",
				seed, got.TopK, ref.TopK)
		}
		if err := cl.Close(); err != nil {
			t.Fatalf("seed %d: Close: %v", seed, err)
		}
	}
}

// TestChaosAdaptiveHedging: no timeouts at all — only the adaptive
// straggler detector (multiple of the level median) rescues a partition
// stuck behind a hanging worker.
func TestChaosAdaptiveHedging(t *testing.T) {
	ds, e := chaosDataset(32, 300, 3, 3)
	cfg := core.Config{K: 4, Sigma: 3, Alpha: 0.9}
	const nWorkers = 4
	ref := chaosRef(t, ds, e, cfg, nWorkers)
	faulty := faults.Wrap(&dist.InProcessWorker{}, everyEval(faults.Action{Kind: faults.Hang}))
	workers := []dist.Worker{
		&dist.InProcessWorker{}, faulty, &dist.InProcessWorker{}, &dist.InProcessWorker{},
	}
	cl, err := dist.NewClusterOpts(workers, dist.Options{HedgeMultiplier: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Evaluator = cl
	start := time.Now()
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("adaptive hedging took %v; the hang was not mitigated", elapsed)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("adaptive hedging top-K differs from reference:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
}

// TestChaosHeartbeatReships: a worker that dies completely between levels is
// detected by the background prober and its partitions move before the next
// Eval ever touches it.
func TestChaosHeartbeatReships(t *testing.T) {
	ds, e := chaosDataset(33, 300, 3, 3)
	cfg := core.Config{K: 4, Sigma: 3, Alpha: 0.9}
	ref := chaosRef(t, ds, e, cfg, 2)

	// The faulty worker answers Eval call 0 (level 1), then every later call
	// crashes — and its Pings start failing immediately, so the prober
	// should move its partition between levels.
	sched := faults.NewSchedule()
	for i := 1; i < 500; i++ {
		sched.On(faults.OpEval, i, faults.Action{Kind: faults.CrashBefore})
	}
	for i := 0; i < 10000; i++ {
		sched.On(faults.OpPing, i, faults.Action{Kind: faults.CrashBefore})
	}
	faulty := faults.Wrap(&dist.InProcessWorker{}, sched)
	cl, err := dist.NewClusterOpts([]dist.Worker{&dist.InProcessWorker{}, faulty}, dist.Options{
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatTimeout:  50 * time.Millisecond,
		HeartbeatStrikes:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	c := cfg
	c.Evaluator = cl
	// Give the prober time to strike out the worker between levels.
	c.OnLevel = func(core.LevelStats) { time.Sleep(60 * time.Millisecond) }
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("heartbeat re-ship top-K differs from reference:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
	if faulty.Calls(faults.OpPing) == 0 {
		t.Fatal("prober never pinged the worker; heartbeat did not run")
	}
}

// TestChaosMatchesBuiltinPlan: the chaos result must also match the builtin
// single-process plan within cross-plan float tolerance — guarding against
// the degenerate failure where both chaos and reference clusters are wrong
// the same way.
func TestChaosMatchesBuiltinPlan(t *testing.T) {
	ds, e := chaosDataset(34, 400, 4, 4)
	cfg := core.Config{K: 5, Sigma: 4, Alpha: 0.9}
	builtin, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	faulty := faults.Wrap(&dist.InProcessWorker{}, faults.Seeded(99, faults.Chaos))
	cl, err := dist.NewClusterOpts([]dist.Worker{&dist.InProcessWorker{}, faulty}, dist.Options{
		CallTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Evaluator = cl
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.TopK) != len(builtin.TopK) {
		t.Fatalf("chaos returned %d slices, builtin %d", len(got.TopK), len(builtin.TopK))
	}
	for i := range got.TopK {
		if !fptol.DefaultTol.Close(got.TopK[i].Score, builtin.TopK[i].Score) {
			t.Fatalf("slice %d: chaos score %v vs builtin %v", i, got.TopK[i].Score, builtin.TopK[i].Score)
		}
	}
}

// TestChaosAllWorkersFaulty: when every worker persistently crashes, the
// run must fail with a clear error instead of hanging or silently dropping
// partitions.
func TestChaosAllWorkersFaulty(t *testing.T) {
	ds, e := chaosDataset(35, 200, 3, 3)
	crash := func() *faults.Schedule {
		s := faults.NewSchedule()
		for i := 0; i < 500; i++ {
			s.On(faults.OpEval, i, faults.Action{Kind: faults.CrashBefore})
		}
		return s
	}
	workers := []dist.Worker{
		faults.Wrap(&dist.InProcessWorker{}, crash()),
		faults.Wrap(&dist.InProcessWorker{}, crash()),
	}
	cl, err := dist.NewCluster(workers, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{K: 4, Sigma: 3, Alpha: 0.9, Evaluator: cl}
	_, err = core.Run(ds, e, cfg)
	if err == nil {
		t.Fatal("expected error when every worker is faulty")
	}
	// The winning goroutine reports the injected crash; a racing partition
	// may instead find every worker already marked dead.
	if !errors.Is(err, faults.ErrInjected) && !strings.Contains(err.Error(), "no live workers") {
		t.Fatalf("error should carry the injected cause or report worker exhaustion, got: %v", err)
	}
}

// TestChaosFlappyTransport: a TCP worker whose first connection drops
// mid-stream — torn gob frames and all — must be recovered by the bounded
// redial, and the run must match the fault-free reference exactly.
func TestChaosFlappyTransport(t *testing.T) {
	ds, e := chaosDataset(37, 300, 3, 3)
	cfg := core.Config{K: 4, Sigma: 3, Alpha: 0.9}
	ref := chaosRef(t, ds, e, cfg, 2)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flappy := &faults.Listener{Listener: lis, Scripts: []faults.ConnScript{
		{CloseAfterReads: 2}, // first conn dies mid-stream; later conns are clean
	}}
	srv, err := dist.NewServer(flappy)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve() //nolint:errcheck // lifetime bound to Stop
	defer srv.Stop()

	w, err := dist.DialOpts(lis.Addr().String(), dist.DialOptions{
		MaxAttempts: 4,
		BaseBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	cl, err := dist.NewCluster([]dist.Worker{w, &dist.InProcessWorker{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg
	c.Evaluator = cl
	got, err := core.Run(ds, e, c)
	if err != nil {
		t.Fatalf("run over flappy transport: %v", err)
	}
	if flappy.Accepted() < 2 {
		t.Fatalf("only %d connections accepted; the flap never forced a redial", flappy.Accepted())
	}
	if !reflect.DeepEqual(got.TopK, ref.TopK) {
		t.Fatalf("flappy-transport top-K differs from reference:\n got %v\nwant %v", got.TopK, ref.TopK)
	}
}

// TestChaosCancellation: cancelling the run context mid-enumeration must
// abort promptly even while a worker hangs, and must surface the
// cancellation.
func TestChaosCancellation(t *testing.T) {
	ds, e := chaosDataset(36, 300, 4, 4)
	faulty := faults.Wrap(&dist.InProcessWorker{}, everyEval(faults.Action{Kind: faults.Hang}))
	cl, err := dist.NewCluster([]dist.Worker{faulty}, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	cfg := core.Config{K: 4, Sigma: 3, Alpha: 0.9, Evaluator: cl}
	start := time.Now()
	_, err = core.RunContext(ctx, ds, e, cfg)
	if err == nil {
		t.Fatal("expected error from cancelled run")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error should carry the deadline cause, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; the hang leaked past the context", elapsed)
	}
}
