package dist

import (
	"context"
	"errors"
	"sync"
	"testing"

	"sliceline/internal/matrix"
	"sliceline/internal/obs"
)

// pingFlakyWorker evaluates normally but fails Ping on demand — a worker
// whose data path is healthy while its control path looks partitioned.
type pingFlakyWorker struct {
	InProcessWorker
	mu       sync.Mutex
	failPing bool
	pings    int
}

func (w *pingFlakyWorker) Ping(context.Context) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pings++
	if w.failPing {
		return errors.New("injected ping failure")
	}
	return nil
}

func (w *pingFlakyWorker) setFailPing(v bool) {
	w.mu.Lock()
	w.failPing = v
	w.mu.Unlock()
}

// setupTiny ships the canonical 6x2 matrix (3 rows in each column) so Eval
// sums are known constants: ss = se = [3 3] for candidates {0} and {1}.
func setupTiny(t *testing.T, cl *Cluster) {
	t.Helper()
	x := matrix.CSRFromDense(matrix.NewDenseData(6, 2, []float64{
		1, 0,
		1, 0,
		0, 1,
		0, 1,
		1, 0,
		0, 1,
	}))
	ev := []float64{1, 1, 1, 1, 1, 1}
	if err := cl.Setup(context.Background(), x, ev); err != nil {
		t.Fatal(err)
	}
}

func (c *Cluster) aliveAt(wi int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.alive[wi]
}

// TestHeartbeatStrikeResetOnProbeSuccess: one successful probe must clear the
// strike count entirely — otherwise an intermittently slow worker accumulates
// strikes across unrelated blips and is eventually evicted for no reason.
func TestHeartbeatStrikeResetOnProbeSuccess(t *testing.T) {
	reg := obs.NewRegistry()
	w1 := &pingFlakyWorker{}
	cl, err := NewClusterOpts([]Worker{&InProcessWorker{}, w1}, Options{
		HeartbeatStrikes: 2,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupTiny(t, cl)

	w1.setFailPing(true)
	cl.probeAll(nil) // strike 1 of 2: still alive
	if !cl.aliveAt(1) {
		t.Fatal("worker evicted after a single strike with HeartbeatStrikes=2")
	}
	w1.setFailPing(false)
	cl.probeAll(nil) // success: strikes reset to 0
	w1.setFailPing(true)
	cl.probeAll(nil) // strike 1 again — would be strike 2 (eviction) without the reset
	if !cl.aliveAt(1) {
		t.Fatal("one successful probe did not reset the strike count")
	}
	if n := reg.Counter("sl_dist_evictions_total", "").Value(); n != 0 {
		t.Fatalf("evictions = %d before the strike budget was consumed", n)
	}
	cl.probeAll(nil) // strike 2: now the eviction is earned
	if cl.aliveAt(1) {
		t.Fatal("worker survived HeartbeatStrikes consecutive failed probes")
	}
	if n := reg.Counter("sl_dist_evictions_total", "").Value(); n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}
}

// TestHeartbeatEvictionRacesEvalCompletion: the prober evicting a worker
// while Evals are completing on it must never corrupt results — partitions
// re-ship, in-flight winners still merge, and every Eval sums all rows.
// Run under -race this also proves the bookkeeping is data-race-free.
func TestHeartbeatEvictionRacesEvalCompletion(t *testing.T) {
	reg := obs.NewRegistry()
	w1 := &pingFlakyWorker{}
	cl, err := NewClusterOpts([]Worker{&InProcessWorker{}, w1}, Options{
		HeartbeatStrikes: 1,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupTiny(t, cl)

	w1.setFailPing(true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				cl.probeAll(nil)
			}
		}
	}()
	for i := 0; i < 50; i++ {
		ss, se, _, err := cl.Eval(context.Background(), [][]int{{0}, {1}}, 1)
		if err != nil {
			t.Errorf("eval %d during eviction: %v", i, err)
			break
		}
		if ss[0] != 3 || ss[1] != 3 || se[0] != 3 || se[1] != 3 {
			t.Errorf("eval %d: ss=%v se=%v, want [3 3] each (a partition was dropped)", i, ss, se)
			break
		}
	}
	close(stop)
	wg.Wait()
	if n := reg.Counter("sl_dist_evictions_total", "").Value(); n == 0 {
		t.Fatal("prober never evicted the ping-dead worker; the race was not exercised")
	}
}

// TestHeartbeatResurrectsLastWorker: with every worker struck out the cluster
// errors plainly, and the moment the sole worker answers a probe again it is
// resurrected — its partitions were never reassigned (there was nowhere to
// go), so the next Eval works immediately.
func TestHeartbeatResurrectsLastWorker(t *testing.T) {
	reg := obs.NewRegistry()
	w := &pingFlakyWorker{}
	cl, err := NewClusterOpts([]Worker{w}, Options{
		HeartbeatStrikes: 1,
		Metrics:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupTiny(t, cl)

	w.setFailPing(true)
	cl.probeAll(nil)
	if cl.aliveAt(0) {
		t.Fatal("sole worker still alive after a failed probe with HeartbeatStrikes=1")
	}
	if _, _, _, err := cl.Eval(context.Background(), [][]int{{0}}, 1); err == nil {
		t.Fatal("Eval succeeded with every worker dead")
	}

	w.setFailPing(false)
	cl.probeAll(nil)
	if !cl.aliveAt(0) {
		t.Fatal("successful probe did not resurrect the last worker")
	}
	if n := reg.Counter("sl_dist_resurrections_total", "").Value(); n != 1 {
		t.Fatalf("resurrections = %d, want 1", n)
	}
	ss, se, _, err := cl.Eval(context.Background(), [][]int{{0}, {1}}, 1)
	if err != nil {
		t.Fatalf("Eval after resurrection: %v", err)
	}
	if ss[0] != 3 || ss[1] != 3 || se[0] != 3 || se[1] != 3 {
		t.Fatalf("post-resurrection ss=%v se=%v, want [3 3] each", ss, se)
	}
}
