// Scheduling-policy seams.
//
// The Dist-PFor runtime's self-healing behavior — when to hedge a straggling
// partition, when to evict a silent worker, where a dead worker's partitions
// go, how rows split into partitions — is decided by the small pure types
// and functions in this file. They hold no clocks, no sockets, and no
// goroutines: the TCP runtime feeds them wall-clock measurements and the
// deterministic cluster simulator (internal/sim) feeds them virtual-time
// measurements, so both execute the *same* policy code and cannot drift
// apart. The simulator's fidelity test asserts exactly that: the decision
// sequence of a simulated run matches a real in-process cluster run under
// the equivalent fault script.
//
// Every externally visible scheduling decision is also announced through
// Options.OnDecision as a typed Decision, which is what the fidelity test
// (and any curious operator) observes.
package dist

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Default scheduling knobs, shared by cmd/sliceline, cmd/slserve,
// cmd/slworker and the simulator's knob grids. The hedge multiplier and
// heartbeat cadence were chosen by the committed internal/sim scenario
// sweeps (reports/SIM_REPORT_{hedge,heartbeat,elastic}_2026-08-08.json,
// re-verified byte-for-byte by CI; see DESIGN.md, "Scheduling policies and
// how they were tuned"), not by intuition:
//
//   - Hedge multiplier 1.5: over lognormal service times with a 5% Pareto
//     straggler tail at 200 workers, no hedging makespans at 22.0s while any
//     hedging lands near 1s. Mult 1.25 is fastest (0.996s) but wastes 11.7s
//     of duplicate compute; 1.5 is within 5% (1.05s) with half the waste and
//     the best p99 level latency (252ms); 2.0 trades 10% makespan for
//     another 3× waste reduction. 1.5 wins the composite objective.
//   - Heartbeat 1s × 2 strikes: under crash, flap and network-partition
//     faults at 150 workers, a 1s probe cadence beats 2s/4s on makespan
//     (16.9s vs 18.0/18.1s), wasted hedge work and re-shipped bytes — a
//     blackholed worker taxes every level with a rescue hedge until the
//     prober evicts it. 500ms buys slightly better p99 only when paired
//     with a 1-strike limit, which also falsely evicts a flapping worker;
//     at 1s the strike limit makes no measurable difference, so it stays at
//     2 for flap tolerance.
//
// The elastic sweep likewise confirmed membership.DefaultLeaseStrikes = 3:
// 1 strike spuriously expires a flapper and a transiently-down worker (9MB
// re-shipped), 4 detects a real death too slowly; 3 wins makespan, p99 and
// wasted work.
const (
	// DefaultCallTimeout bounds one Load/Eval/Ping RPC.
	DefaultCallTimeout = 10 * time.Second

	// DefaultHedgeMultiplier is the adaptive straggler threshold: hedge a
	// partition once it runs longer than this multiple of the level's median
	// completed-partition duration.
	DefaultHedgeMultiplier = 1.5

	// DefaultHeartbeatInterval is the between-level liveness probe cadence.
	DefaultHeartbeatInterval = 1 * time.Second

	// DefaultHeartbeatStrikes is how many consecutive failed probes evict a
	// worker and re-ship its partitions.
	DefaultHeartbeatStrikes = 2

	// DefaultDrainTimeout bounds the graceful-shutdown drain in slserve and
	// slworker (not simulator-tuned; just deduplicated here).
	DefaultDrainTimeout = 30 * time.Second
)

// PartitionSizes splits rows into nParts balanced contiguous partitions:
// sizes differ by at most one row and every partition is non-empty (callers
// clamp nParts to rows first). It is the single row-partitioning policy,
// used by Cluster.Setup and by the simulator's cost model.
func PartitionSizes(rows, nParts int) []int {
	if nParts <= 0 {
		return nil
	}
	base, rem := rows/nParts, rows%nParts
	sizes := make([]int, nParts)
	for k := range sizes {
		sizes[k] = base
		if k < rem {
			sizes[k]++
		}
	}
	return sizes
}

// NextLiveWorker returns the lowest-indexed live worker excluding avoid, or
// -1 when none is left. This is the failover and hedge target selection
// policy: deterministic (lowest index first) so a faulty run reroutes the
// same way every time.
func NextLiveWorker(alive []bool, avoid int) int {
	for k, a := range alive {
		if a && k != avoid {
			return k
		}
	}
	return -1
}

// ReshipPlan distributes the partitions assigned to a dead worker over the
// live ones, round-robin in partition order. It returns (partition, target)
// moves; an empty plan means no live worker remains. Both the heartbeat
// evictor and the simulator apply this exact plan.
func ReshipPlan(assign []int, alive []bool, dead int) [][2]int {
	live := make([]int, 0, len(alive))
	for k, a := range alive {
		if a {
			live = append(live, k)
		}
	}
	if len(live) == 0 {
		return nil
	}
	var moves [][2]int
	r := 0
	for p, wi := range assign {
		if wi != dead {
			continue
		}
		moves = append(moves, [2]int{p, live[r%len(live)]})
		r++
	}
	return moves
}

// ProbeVerdict classifies one health-probe observation.
type ProbeVerdict int

// Probe verdicts: nothing changed, the worker just came back, or the worker
// crossed the strike limit and must be evicted.
const (
	ProbeOK ProbeVerdict = iota
	ProbeResurrect
	ProbeStrike
	ProbeEvict
)

// ProbeStep is the heartbeat strike discipline as a pure transition: given a
// worker's liveness belief and strike count, apply one probe result. A
// success clears strikes and resurrects a dead worker; a failure strikes,
// and a live worker reaching the limit is evicted. The cluster's prober and
// the simulator both step through this function.
func ProbeStep(alive bool, strikes, limit int, ok bool) (newAlive bool, newStrikes int, v ProbeVerdict) {
	if ok {
		if !alive {
			return true, 0, ProbeResurrect
		}
		return true, 0, ProbeOK
	}
	strikes++
	if alive && strikes >= limit {
		return false, strikes, ProbeEvict
	}
	return alive, strikes, ProbeStrike
}

// HedgePolicy decides when a still-running partition evaluation counts as a
// straggler worth speculative re-execution. It is pure over durations: the
// caller measures elapsed time (wall clock in the TCP runtime, virtual time
// in the simulator) and the policy only does arithmetic on it.
//
// With a fixed threshold the decision is immediate; in adaptive mode the
// threshold is Multiplier × the median completed-partition duration of the
// current level, available only once at least half the level's partitions
// have completed. A zero policy (no fixed delay, no multiplier) never fires.
type HedgePolicy struct {
	fixed time.Duration
	mult  float64
	parts int

	mu   sync.Mutex
	durs []time.Duration
}

// NewHedgePolicy builds the policy for one level evaluation over nParts
// partitions. It returns nil when both knobs are off; a nil policy is valid
// and never fires.
func NewHedgePolicy(fixed time.Duration, mult float64, nParts int) *HedgePolicy {
	if fixed <= 0 && mult <= 0 {
		return nil
	}
	return &HedgePolicy{fixed: fixed, mult: mult, parts: nParts}
}

// Record feeds one completed partition duration into the adaptive median.
func (h *HedgePolicy) Record(d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.durs = append(h.durs, d)
	h.mu.Unlock()
}

// Threshold returns the current straggler threshold. With a fixed delay it
// is always available; in adaptive mode it needs completions from at least
// half the level's partitions first. The adaptive threshold is floored at
// one millisecond so a level of near-instant partitions does not hedge
// everything.
func (h *HedgePolicy) Threshold() (time.Duration, bool) {
	if h == nil {
		return 0, false
	}
	if h.fixed > 0 {
		return h.fixed, true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.durs) == 0 || len(h.durs)*2 < h.parts {
		return 0, false
	}
	durs := append([]time.Duration(nil), h.durs...)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	med := durs[len(durs)/2]
	th := time.Duration(float64(med) * h.mult)
	if th < time.Millisecond {
		th = time.Millisecond
	}
	return th, true
}

// Adaptive reports whether the threshold may still become available as more
// partitions complete, so a waiter should re-check periodically.
func (h *HedgePolicy) Adaptive() bool { return h != nil && h.fixed <= 0 && h.mult > 0 }

// ShouldHedge reports whether a partition that has been running for elapsed
// counts as a straggler right now.
func (h *HedgePolicy) ShouldHedge(elapsed time.Duration) bool {
	th, ok := h.Threshold()
	return ok && elapsed >= th
}

// DecisionKind enumerates the scheduling decisions the runtime announces.
type DecisionKind int

// Decision kinds, in rough lifecycle order. Each corresponds to one
// sl_dist_* metric increment, so the decision stream is the metric stream
// with identities attached.
const (
	// DecideRetryInPlace: a failed evaluation is retried on the same worker
	// after reloading its partition (the restarted-amnesiac-worker path).
	DecideRetryInPlace DecisionKind = iota
	// DecideFailover: a partition moved off a failed worker mid-evaluation.
	DecideFailover
	// DecideHedge: a speculative duplicate evaluation was launched against a
	// straggling worker.
	DecideHedge
	// DecideHedgeWin: the speculative duplicate finished first.
	DecideHedgeWin
	// DecideEvict: the heartbeat prober struck a worker out.
	DecideEvict
	// DecideReship: a partition was proactively re-shipped off an evicted
	// worker.
	DecideReship
	// DecideResurrect: a previously dead worker answered a probe and rejoined
	// the rotation.
	DecideResurrect
	// DecideDegrade: no live worker remained and the driver evaluated the
	// partition itself.
	DecideDegrade
	// DecideWarmAttach: a partition re-attached to a worker that already held
	// it, without shipping rows.
	DecideWarmAttach
	// DecideRebalance: a membership view change moved a partition to its new
	// ring owner.
	DecideRebalance
)

// String returns the decision name.
func (k DecisionKind) String() string {
	switch k {
	case DecideRetryInPlace:
		return "retry-in-place"
	case DecideFailover:
		return "failover"
	case DecideHedge:
		return "hedge"
	case DecideHedgeWin:
		return "hedge-win"
	case DecideEvict:
		return "evict"
	case DecideReship:
		return "reship"
	case DecideResurrect:
		return "resurrect"
	case DecideDegrade:
		return "degrade"
	case DecideWarmAttach:
		return "warm-attach"
	case DecideRebalance:
		return "rebalance"
	default:
		return fmt.Sprintf("DecisionKind(%d)", int(k))
	}
}

// Decision is one scheduling decision. Worker is the subject (the straggler
// hedged against, the evicted or resurrected worker, the worker retried in
// place); Target is the destination worker where one exists (failover,
// reship, hedge and hedge-win targets); Part is the partition involved, -1
// for worker-scoped decisions. Strikes carries the strike count on evictions.
type Decision struct {
	Kind    DecisionKind
	Part    int
	Worker  int
	Target  int
	Strikes int
}

// String renders a decision compactly, e.g. "failover p3 w1→w2".
func (d Decision) String() string {
	s := d.Kind.String()
	if d.Part >= 0 {
		s += fmt.Sprintf(" p%d", d.Part)
	}
	if d.Worker >= 0 {
		s += fmt.Sprintf(" w%d", d.Worker)
	}
	if d.Target >= 0 {
		s += fmt.Sprintf("→w%d", d.Target)
	}
	if d.Strikes > 0 {
		s += fmt.Sprintf(" strikes=%d", d.Strikes)
	}
	return s
}

// decide announces one decision to the OnDecision hook, if any. Decisions
// from concurrent partition evaluations may arrive concurrently; the hook
// must be safe for concurrent use.
func (c *Cluster) decide(d Decision) {
	if c.opts.OnDecision != nil {
		c.opts.OnDecision(d)
	}
}
