package dist

import (
	"context"
	"fmt"

	"sliceline/internal/obs"
)

// distObs bundles the cluster's pre-resolved metric handles. With a nil
// registry every handle is nil and all updates are no-ops, so an unobserved
// cluster pays nothing beyond the nil checks inside the handle methods.
type distObs struct {
	evalSecs *obs.Histogram
	loadSecs *obs.Histogram
	pingSecs *obs.Histogram
	evalErrs *obs.Counter
	loadErrs *obs.Counter
	pingErrs *obs.Counter

	retries       *obs.Counter
	failovers     *obs.Counter
	hedges        *obs.Counter
	hedgeWins     *obs.Counter
	deaths        *obs.Counter
	evictions     *obs.Counter
	resurrections *obs.Counter
	reships       *obs.Counter

	joins      *obs.Counter
	leaves     *obs.Counter
	rebalances *obs.Counter
	warmAttach *obs.Counter
	degraded   *obs.Counter
	members    *obs.Gauge

	partitions *obs.Gauge
	inflight   []*obs.Gauge // per worker, sl_dist_worker_inflight{worker="N"}
}

func newDistObs(r *obs.Registry, workers int) distObs {
	const rpcHelp = "Latency of worker RPCs by operation."
	const errHelp = "Failed worker RPCs by operation."
	d := distObs{
		evalSecs: r.Histogram(`sl_dist_rpc_seconds{op="eval"}`, rpcHelp, nil),
		loadSecs: r.Histogram(`sl_dist_rpc_seconds{op="load"}`, rpcHelp, nil),
		pingSecs: r.Histogram(`sl_dist_rpc_seconds{op="ping"}`, rpcHelp, nil),
		evalErrs: r.Counter(`sl_dist_rpc_errors_total{op="eval"}`, errHelp),
		loadErrs: r.Counter(`sl_dist_rpc_errors_total{op="load"}`, errHelp),
		pingErrs: r.Counter(`sl_dist_rpc_errors_total{op="ping"}`, errHelp),

		retries:       r.Counter("sl_dist_retries_total", "Partition evaluations retried after a failed attempt."),
		failovers:     r.Counter("sl_dist_failovers_total", "Partitions re-shipped to another worker mid-evaluation."),
		hedges:        r.Counter("sl_dist_hedges_total", "Speculative straggler re-executions launched."),
		hedgeWins:     r.Counter("sl_dist_hedge_wins_total", "Hedged re-executions that beat the primary."),
		deaths:        r.Counter("sl_dist_worker_deaths_total", "Workers declared dead after a failed call."),
		evictions:     r.Counter("sl_dist_evictions_total", "Workers evicted by the heartbeat checker."),
		resurrections: r.Counter("sl_dist_resurrections_total", "Dead workers resurrected by a successful probe."),
		reships:       r.Counter("sl_dist_reships_total", "Partitions proactively re-shipped off suspect workers."),

		joins:      r.Counter("sl_dist_member_joins_total", "Fleet members joined or rejoined via a membership view."),
		leaves:     r.Counter("sl_dist_member_leaves_total", "Fleet members departed from a membership view."),
		rebalances: r.Counter("sl_dist_rebalances_total", "Partitions moved by membership-driven rebalancing."),
		warmAttach: r.Counter("sl_dist_warm_attach_total", "Partitions re-attached to a warm rejoining worker without re-shipping."),
		degraded:   r.Counter("sl_dist_degraded_total", "Partition evaluations degraded to the driver after full fleet loss."),
		members:    r.Gauge("sl_dist_members", "Live fleet members known to the elastic cluster."),

		partitions: r.Gauge("sl_dist_partitions", "Row partitions shipped at Setup."),
	}
	if r != nil {
		d.inflight = make([]*obs.Gauge, workers)
		for i := range d.inflight {
			d.inflight[i] = r.Gauge(fmt.Sprintf(`sl_dist_worker_inflight{worker="%d"}`, i),
				"In-flight RPCs per worker (queue depth).")
		}
	}
	return d
}

// inflightFor returns the queue-depth gauge of one worker; nil (inert) when
// metrics are disabled or the index is out of range.
func (d *distObs) inflightFor(wi int) *obs.Gauge {
	if wi < 0 || wi >= len(d.inflight) {
		return nil
	}
	return d.inflight[wi]
}

// svcObs bundles the worker-process-side metric handles of a Service. Like
// distObs, the zero value (nil registry) is fully inert.
type svcObs struct {
	loads        *obs.Counter
	evals        *obs.Counter
	pings        *obs.Counter
	evalSecs     *obs.Histogram
	cands        *obs.Counter
	parts        *obs.Gauge
	rows         *obs.Gauge
	evictedParts *obs.Counter
}

func newSvcObs(r *obs.Registry) svcObs {
	const rpcHelp = "RPCs served by this worker, by operation."
	return svcObs{
		loads:    r.Counter(`sl_worker_rpc_total{op="load"}`, rpcHelp),
		evals:    r.Counter(`sl_worker_rpc_total{op="eval"}`, rpcHelp),
		pings:    r.Counter(`sl_worker_rpc_total{op="ping"}`, rpcHelp),
		evalSecs: r.Histogram("sl_worker_eval_seconds", "Wall time of one Eval RPC on this worker.", nil),
		cands:    r.Counter("sl_worker_candidates_total", "Slice candidates evaluated by this worker."),
		parts:    r.Gauge("sl_worker_partitions", "Partitions currently loaded on this worker."),
		rows:     r.Gauge("sl_worker_rows", "Total rows across loaded partitions."),
		evictedParts: r.Counter("sl_worker_evicted_partitions_total",
			"Partitions dropped by the worker-side LRU cap."),
	}
}

// startSpan opens a span as a child of the context's span when one is there
// (core places its eval span in the context it hands to evaluators), falling
// back to a root span on the cluster's own tracer, and to an inert nil span
// when neither is configured.
func (c *Cluster) startSpan(ctx context.Context, name string) *obs.Span {
	if parent := obs.FromContext(ctx); parent != nil {
		return parent.Child(name)
	}
	return obs.Start(c.opts.Tracer, name)
}
