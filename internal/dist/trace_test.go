// Tracing acceptance for the distributed runtime: an instrumented run over a
// fault-injected cluster must emit spans for every lattice level and every
// worker RPC — including the retries and hedges the faults provoke — with the
// dist spans nested under the enumeration's spans. Lives in package dist_test
// because it drives the cluster through core.Run with faults-wrapped workers.
package dist_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"sliceline/internal/core"
	"sliceline/internal/dist"
	"sliceline/internal/faults"
	"sliceline/internal/obs"
)

func attrStr(sp *obs.Span, key string) string {
	for _, a := range sp.Attrs() {
		if a.Key == key && a.Kind == obs.KindStr {
			return a.Str
		}
	}
	return ""
}

func hasEvent(sp *obs.Span, substr string) bool {
	for _, ev := range sp.Events() {
		if strings.Contains(ev.Name, substr) {
			return true
		}
	}
	return false
}

func TestDistTracingUnderFaults(t *testing.T) {
	ds, e := chaosDataset(77, 400, 4, 4)
	tr := obs.NewJSONTracer()
	reg := obs.NewRegistry()

	// Worker 0 hangs on every Eval, so its partition only ever completes via
	// a hedge; worker 1 crashes its first Eval, forcing a reload-in-place
	// retry. Workers 2 and 3 are clean.
	ws := []dist.Worker{
		faults.Wrap(&dist.InProcessWorker{}, everyEval(faults.Action{Kind: faults.Hang})),
		faults.Wrap(&dist.InProcessWorker{}, faults.NewSchedule().
			On(faults.OpEval, 0, faults.Action{Kind: faults.CrashBefore})),
		&dist.InProcessWorker{},
		&dist.InProcessWorker{},
	}
	cl, err := dist.NewClusterOpts(ws, dist.Options{
		HedgeDelay: 20 * time.Millisecond,
		Tracer:     tr,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	cfg := core.Config{
		K: 4, Sigma: 4, Alpha: 0.9,
		Evaluator: cl, Tracer: tr, Metrics: reg,
	}
	res, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}

	spans := tr.Spans()
	byName := map[string][]*obs.Span{}
	byID := map[uint64]*obs.Span{}
	for _, sp := range spans {
		byName[sp.Name] = append(byName[sp.Name], sp)
		byID[sp.ID] = sp
	}

	// Every lattice level of the result has a span.
	levelSeen := map[int64]bool{}
	for _, sp := range byName["core.level"] {
		levelSeen[sp.AttrInt("level", -1)] = true
	}
	for _, l := range res.Levels {
		if !levelSeen[int64(l.Level)] {
			t.Errorf("no span for lattice level %d", l.Level)
		}
	}

	// Setup was traced, with one load RPC span per partition under it.
	if len(byName["dist.setup"]) != 1 {
		t.Fatalf("got %d dist.setup spans, want 1", len(byName["dist.setup"]))
	}
	setup := byName["dist.setup"][0]
	nParts := setup.AttrInt("partitions", -1)
	if nParts != 4 {
		t.Fatalf("setup span partitions = %d, want 4", nParts)
	}

	// Every level the evaluator served has at least one dist.eval span, each
	// nested under a core.eval span with one partition span per partition.
	// Level 1 is computed driver-side, and a truncated final level records no
	// evaluation, so only levels >= 2 with candidates count.
	wantEvals := 0
	for _, l := range res.Levels {
		if l.Level >= 2 && l.Candidates > 0 {
			wantEvals++
		}
	}
	if wantEvals == 0 {
		t.Fatal("fixture too small: no level went through the evaluator")
	}
	evals := byName["dist.eval"]
	if len(evals) < wantEvals {
		t.Fatalf("got %d dist.eval spans for %d evaluated levels", len(evals), wantEvals)
	}
	evalIDs := map[uint64]bool{}
	for _, sp := range evals {
		parent, ok := byID[sp.Parent]
		if !ok || parent.Name != "core.eval" {
			t.Fatalf("dist.eval span %d parented under %v, want a core.eval span", sp.ID, sp.Parent)
		}
		evalIDs[sp.ID] = true
	}
	parts := byName["dist.partition"]
	if want := len(evals) * int(nParts); len(parts) != want {
		t.Fatalf("got %d dist.partition spans, want %d (%d evals x %d partitions)",
			len(parts), want, len(evals), nParts)
	}

	// Every partition evaluation produced at least one eval RPC span, and
	// every RPC span names its worker.
	rpcEvals := 0
	var sawFaultEvent, sawRPCError bool
	for _, sp := range byName["dist.rpc"] {
		if attrStr(sp, "op") != "eval" {
			continue
		}
		rpcEvals++
		if sp.AttrInt("worker", -1) < 0 {
			t.Fatalf("eval RPC span %d has no worker attribute", sp.ID)
		}
		if _, ok := byID[sp.Parent]; !ok {
			t.Fatalf("eval RPC span %d is an orphan", sp.ID)
		}
		if hasEvent(sp, "fault injected") {
			sawFaultEvent = true
		}
		if hasEvent(sp, "error:") {
			sawRPCError = true
		}
	}
	if rpcEvals < len(parts) {
		t.Fatalf("got %d eval RPC spans for %d partition evaluations", rpcEvals, len(parts))
	}
	if !sawFaultEvent {
		t.Error("no RPC span carries a fault-injection event")
	}
	if !sawRPCError {
		t.Error("no RPC span recorded the provoked error")
	}

	// The hung worker's partition was hedged, and the crash forced a retry.
	var sawHedge bool
	for _, sp := range parts {
		if hasEvent(sp, "hedge fired") {
			sawHedge = true
		}
	}
	if !sawHedge {
		t.Error("no partition span carries a hedge-fired event")
	}
	if got := reg.Counter("sl_dist_hedges_total", "").Value(); got < 1 {
		t.Errorf("hedges counter = %d, want >= 1", got)
	}
	if got := reg.Counter("sl_dist_retries_total", "").Value(); got < 1 {
		t.Errorf("retries counter = %d, want >= 1", got)
	}

	// The registry exports the dist families alongside the core ones.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		`sl_dist_rpc_seconds_count{op="eval"}`,
		`sl_dist_rpc_errors_total{op="eval"}`,
		"sl_dist_hedges_total",
		"sl_dist_partitions 4",
		"sl_core_runs_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}
