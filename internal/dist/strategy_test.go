package dist

import (
	"context"
	"math/rand"
	"testing"

	"sliceline/internal/core"
	"sliceline/internal/matrix"
)

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		MTOps:        "MT-Ops",
		MTPFor:       "MT-PFor",
		DistPFor:     "Dist-PFor",
		Strategy(99): "Strategy(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestLocalEvalBeforeSetup(t *testing.T) {
	ev, err := NewLocal(MTPFor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ev.Eval(context.Background(), [][]int{{0}}, 1); err == nil {
		t.Fatal("expected error for Eval before Setup")
	}
}

func TestClusterEvalBeforeSetup(t *testing.T) {
	cl, err := NewCluster([]Worker{&InProcessWorker{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cl.Eval(context.Background(), [][]int{{0}}, 1); err == nil {
		t.Fatal("expected error for Eval before Setup")
	}
}

// inProcessCluster builds a Dist-PFor cluster of n in-process workers.
func inProcessCluster(t *testing.T, n, blockSize int) *Cluster {
	t.Helper()
	workers := make([]Worker, n)
	for i := range workers {
		workers[i] = &InProcessWorker{}
	}
	cl, err := NewCluster(workers, blockSize)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// oneHot returns an n×2 one-hot matrix where rows alternate between the two
// columns, plus an all-ones error vector. Column 0 owns ceil(n/2) rows.
func oneHot(n int) (*matrix.CSR, []float64) {
	data := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		data[2*i+i%2] = 1
	}
	e := make([]float64, n)
	for i := range e {
		e[i] = 1
	}
	return matrix.CSRFromDense(matrix.NewDenseData(n, 2, data)), e
}

// TestClusterPartitioningBalanced: Setup must split the rows so partition
// sizes differ by at most one and no shipped partition is empty, for every
// rows/workers ratio including fewer rows than workers.
func TestClusterPartitioningBalanced(t *testing.T) {
	cases := []struct{ rows, workers int }{
		{10, 3}, {11, 3}, {12, 3}, {7, 7}, {3, 5}, {1, 4}, {0, 3}, {100, 7},
	}
	for _, tc := range cases {
		cl := inProcessCluster(t, tc.workers, 0)
		x, e := oneHot(tc.rows)
		if err := cl.Setup(context.Background(), x, e); err != nil {
			t.Fatalf("rows=%d workers=%d: Setup: %v", tc.rows, tc.workers, err)
		}
		wantParts := tc.workers
		if tc.rows < wantParts {
			wantParts = tc.rows
		}
		if len(cl.parts) != wantParts {
			t.Fatalf("rows=%d workers=%d: %d partitions, want %d", tc.rows, tc.workers, len(cl.parts), wantParts)
		}
		minSize, maxSize, total := int(^uint(0)>>1), 0, 0
		for p, part := range cl.parts {
			sz := part.x.Rows()
			if sz == 0 {
				t.Fatalf("rows=%d workers=%d: partition %d is empty", tc.rows, tc.workers, p)
			}
			if sz != len(part.e) {
				t.Fatalf("rows=%d workers=%d: partition %d has %d rows but %d errors", tc.rows, tc.workers, p, sz, len(part.e))
			}
			if sz < minSize {
				minSize = sz
			}
			if sz > maxSize {
				maxSize = sz
			}
			total += sz
		}
		if total != tc.rows {
			t.Fatalf("rows=%d workers=%d: partitions cover %d rows", tc.rows, tc.workers, total)
		}
		if wantParts > 0 && maxSize-minSize > 1 {
			t.Fatalf("rows=%d workers=%d: partition sizes range [%d,%d], want spread <= 1", tc.rows, tc.workers, minSize, maxSize)
		}
	}
}

// TestClusterFewerRowsThanWorkers: with n < workers only n workers receive a
// partition, yet Eval still aggregates every row exactly.
func TestClusterFewerRowsThanWorkers(t *testing.T) {
	cl := inProcessCluster(t, 5, 0)
	x, e := oneHot(3) // rows hit columns 0,1,0
	if err := cl.Setup(context.Background(), x, e); err != nil {
		t.Fatal(err)
	}
	ss, se, sm, err := cl.Eval(context.Background(), [][]int{{0}, {1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ss[0] != 2 || ss[1] != 1 || se[0] != 2 || se[1] != 1 || sm[0] != 1 || sm[1] != 1 {
		t.Fatalf("ss=%v se=%v sm=%v, want [2 1] [2 1] [1 1]", ss, se, sm)
	}
}

// TestClusterZeroRows: an empty dataset is degenerate but must not crash —
// no partitions are shipped and every statistic is zero.
func TestClusterZeroRows(t *testing.T) {
	cl := inProcessCluster(t, 3, 0)
	x, e := oneHot(0)
	if err := cl.Setup(context.Background(), x, e); err != nil {
		t.Fatal(err)
	}
	ss, se, sm, err := cl.Eval(context.Background(), [][]int{{0}, {1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ss {
		if ss[i] != 0 || se[i] != 0 || sm[i] != 0 {
			t.Fatalf("ss=%v se=%v sm=%v, want all zero on empty data", ss, se, sm)
		}
	}
}

// TestClusterSingleRow: one row, many workers.
func TestClusterSingleRow(t *testing.T) {
	cl := inProcessCluster(t, 4, 0)
	x, e := oneHot(1)
	if err := cl.Setup(context.Background(), x, e); err != nil {
		t.Fatal(err)
	}
	ss, se, _, err := cl.Eval(context.Background(), [][]int{{0}, {1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ss[0] != 1 || ss[1] != 0 || se[0] != 1 || se[1] != 0 {
		t.Fatalf("ss=%v se=%v, want [1 0] each", ss, se)
	}
}

// TestStrategiesBlockSizeExceedsCandidates: a block size far larger than the
// candidate count must degrade to a single block on every strategy and still
// match the builtin plan exactly.
func TestStrategiesBlockSizeExceedsCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ds, e := randomDataset(rng, 200, 3, 3)
	cfg := core.Config{K: 4, Sigma: 3, Alpha: 0.9}
	ref, err := core.Run(ds, e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const huge = 1 << 20
	evals := map[string]core.ExternalEvaluator{}
	for _, strat := range []Strategy{MTOps, MTPFor} {
		ev, err := NewLocal(strat, huge)
		if err != nil {
			t.Fatal(err)
		}
		evals[strat.String()] = ev
	}
	evals["Dist-PFor"] = inProcessCluster(t, 3, huge)
	for name, ev := range evals {
		c := cfg
		c.Evaluator = ev
		got, err := core.Run(ds, e, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !equalScores(scores(got.TopK), scores(ref.TopK)) {
			t.Fatalf("%s with oversized block: scores %v differ from builtin %v", name, scores(got.TopK), scores(ref.TopK))
		}
	}
}
