package dist

import "testing"

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		MTOps:        "MT-Ops",
		MTPFor:       "MT-PFor",
		DistPFor:     "Dist-PFor",
		Strategy(99): "Strategy(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestLocalEvalBeforeSetup(t *testing.T) {
	ev, err := NewLocal(MTPFor, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ev.Eval([][]int{{0}}, 1); err == nil {
		t.Fatal("expected error for Eval before Setup")
	}
}

func TestClusterEvalBeforeSetup(t *testing.T) {
	cl, err := NewCluster([]Worker{&InProcessWorker{}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := cl.Eval([][]int{{0}}, 1); err == nil {
		t.Fatal("expected error for Eval before Setup")
	}
}
