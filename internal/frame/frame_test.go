package frame

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRecode(t *testing.T) {
	codes, labels := Recode([]string{"b", "a", "b", "c", "a"})
	if !reflect.DeepEqual(codes, []int{1, 2, 1, 3, 2}) {
		t.Errorf("codes = %v, want [1 2 1 3 2]", codes)
	}
	if !reflect.DeepEqual(labels, []string{"b", "a", "c"}) {
		t.Errorf("labels = %v, want [b a c]", labels)
	}
}

func TestRecodeEmpty(t *testing.T) {
	codes, labels := Recode(nil)
	if len(codes) != 0 || len(labels) != 0 {
		t.Fatalf("Recode(nil) = %v, %v", codes, labels)
	}
}

func TestRecodeRoundTripProperty(t *testing.T) {
	f := func(vals []string) bool {
		codes, labels := Recode(vals)
		for i, c := range codes {
			if labels[c-1] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBinEquiWidth(t *testing.T) {
	codes, edges := BinEquiWidth([]float64{0, 2.5, 5, 7.5, 10}, 4)
	if !reflect.DeepEqual(codes, []int{1, 2, 3, 4, 4}) {
		t.Errorf("codes = %v, want [1 2 3 4 4]", codes)
	}
	if edges[0] != 0 || edges[4] != 10 {
		t.Errorf("edges = %v, want boundaries 0 and 10", edges)
	}
}

func TestBinEquiWidthConstantColumn(t *testing.T) {
	codes, _ := BinEquiWidth([]float64{3, 3, 3}, 10)
	if !reflect.DeepEqual(codes, []int{1, 1, 1}) {
		t.Fatalf("codes = %v, want all 1", codes)
	}
}

func TestBinEquiWidthNaN(t *testing.T) {
	codes, _ := BinEquiWidth([]float64{1, math.NaN(), 2}, 2)
	if codes[1] != 3 {
		t.Fatalf("NaN code = %d, want 3 (missing bin)", codes[1])
	}
}

func TestBinEquiWidthCodesInRangeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
		}
		bins := 1 + rng.Intn(10)
		codes, _ := BinEquiWidth(vals, bins)
		for _, c := range codes {
			if c < 1 || c > bins {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNewFrameRejectsRagged(t *testing.T) {
	_, err := NewFrame([]Column{
		{Name: "a", Kind: Numeric, Floats: []float64{1, 2}},
		{Name: "b", Kind: Categorical, Strings: []string{"x"}},
	})
	if err == nil {
		t.Fatal("expected error for ragged columns")
	}
}

func testFrame(t *testing.T) *Frame {
	t.Helper()
	f, err := NewFrame([]Column{
		{Name: "color", Kind: Categorical, Strings: []string{"r", "g", "r", "b"}},
		{Name: "size", Kind: Numeric, Floats: []float64{1, 2, 3, 4}},
		{Name: "id", Kind: Numeric, Floats: []float64{100, 101, 102, 103}},
		{Name: "y", Kind: Numeric, Floats: []float64{0, 1, 0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFromFrame(t *testing.T) {
	ds, err := FromFrame(testFrame(t), "y", 2, "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.NumFeatures() != 2 {
		t.Fatalf("features = %d, want 2 (id dropped, y is label)", ds.NumFeatures())
	}
	if !reflect.DeepEqual(ds.Y, []float64{0, 1, 0, 1}) {
		t.Errorf("Y = %v", ds.Y)
	}
	if ds.Features[0].Domain != 3 {
		t.Errorf("color domain = %d, want 3", ds.Features[0].Domain)
	}
	if ds.Features[1].Domain != 2 {
		t.Errorf("size domain = %d, want 2", ds.Features[1].Domain)
	}
	if got := ds.OneHotWidth(); got != 5 {
		t.Errorf("OneHotWidth = %d, want 5", got)
	}
}

func TestFromFrameMissingLabel(t *testing.T) {
	if _, err := FromFrame(testFrame(t), "nope", 2); err == nil {
		t.Fatal("expected error for missing label column")
	}
}

func TestFromFrameCategoricalLabelRejected(t *testing.T) {
	if _, err := FromFrame(testFrame(t), "color", 2); err == nil {
		t.Fatal("expected error for categorical label")
	}
}

func TestDatasetValidateRejectsBadCodes(t *testing.T) {
	ds := &Dataset{
		Name:     "bad",
		X0:       &IntMatrix{Rows: 1, Cols: 1, Data: []int{5}},
		Features: []Feature{{Name: "f", Domain: 3}},
	}
	if err := ds.Validate(); err == nil {
		t.Fatal("expected error for out-of-range code")
	}
	ds.X0.Data[0] = 0
	if err := ds.Validate(); err == nil {
		t.Fatal("expected error for zero code")
	}
}

func TestReplicateRows(t *testing.T) {
	ds, err := FromFrame(testFrame(t), "y", 2, "id")
	if err != nil {
		t.Fatal(err)
	}
	r := ds.ReplicateRows(3)
	if r.NumRows() != 12 || len(r.Y) != 12 {
		t.Fatalf("replicated rows = %d labels = %d, want 12/12", r.NumRows(), len(r.Y))
	}
	for rep := 0; rep < 3; rep++ {
		for i := 0; i < 4; i++ {
			if !reflect.DeepEqual(r.X0.Row(rep*4+i), ds.X0.Row(i)) {
				t.Fatalf("replica %d row %d differs", rep, i)
			}
		}
	}
}

func TestSplit(t *testing.T) {
	ds, err := FromFrame(testFrame(t), "y", 2, "id")
	if err != nil {
		t.Fatal(err)
	}
	train, test := ds.Split(3)
	if train.NumRows() != 3 || test.NumRows() != 1 {
		t.Fatalf("split = %d/%d, want 3/1", train.NumRows(), test.NumRows())
	}
	if len(train.Y) != 3 || len(test.Y) != 1 {
		t.Fatalf("label split = %d/%d, want 3/1", len(train.Y), len(test.Y))
	}
}

func TestTopDomains(t *testing.T) {
	ds := &Dataset{
		Name: "d",
		X0:   NewIntMatrix(0, 3),
		Features: []Feature{
			{Name: "a", Domain: 2}, {Name: "b", Domain: 9}, {Name: "c", Domain: 5},
		},
	}
	if got := ds.TopDomains(2); !reflect.DeepEqual(got, []int{9, 5}) {
		t.Fatalf("TopDomains = %v, want [9 5]", got)
	}
	if got := ds.TopDomains(10); len(got) != 3 {
		t.Fatalf("TopDomains(10) length = %d, want 3", len(got))
	}
}
