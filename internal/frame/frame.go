// Package frame implements the data-preparation substrate SliceLine expects
// from its host ML system: tabular frames with categorical and numeric
// columns, recoding of categories to 1-based integer codes, equi-width
// binning of continuous features, one-hot encoding into a sparse matrix, and
// CSV ingestion. The output of this package is the integer-encoded feature
// matrix X0 (1-based, continuous integer ranges per feature) that Algorithm 1
// consumes.
package frame

import (
	"fmt"
	"math"
	"sort"
)

// Kind describes the type of a column.
type Kind int

// Column kinds.
const (
	Categorical Kind = iota
	Numeric
)

// Column is a single named column of a frame. Exactly one of Strings or
// Floats is populated, according to Kind.
type Column struct {
	Name    string
	Kind    Kind
	Strings []string
	Floats  []float64
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	if c.Kind == Categorical {
		return len(c.Strings)
	}
	return len(c.Floats)
}

// Frame is a collection of equal-length columns.
type Frame struct {
	cols []Column
}

// NewFrame validates that all columns have equal length and returns a frame.
func NewFrame(cols []Column) (*Frame, error) {
	if len(cols) == 0 {
		return &Frame{}, nil
	}
	n := cols[0].Len()
	for i := range cols {
		if cols[i].Len() != n {
			return nil, fmt.Errorf("frame: column %q has %d rows, want %d", cols[i].Name, cols[i].Len(), n)
		}
	}
	return &Frame{cols: cols}, nil
}

// NumRows returns the number of rows.
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].Len()
}

// NumCols returns the number of columns.
func (f *Frame) NumCols() int { return len(f.cols) }

// Column returns the column with the given name.
func (f *Frame) Column(name string) (*Column, error) {
	for i := range f.cols {
		if f.cols[i].Name == name {
			return &f.cols[i], nil
		}
	}
	return nil, fmt.Errorf("frame: no column %q", name)
}

// Columns returns all columns.
func (f *Frame) Columns() []Column { return f.cols }

// IntMatrix is a row-major matrix of integers holding the recoded/binned
// feature matrix X0. Values are 1-based codes; 0 is reserved (never a valid
// code) so that decoded top-K slice rows can use 0 for "free feature".
type IntMatrix struct {
	Rows, Cols int
	Data       []int
}

// NewIntMatrix returns a zeroed r×c integer matrix.
func NewIntMatrix(r, c int) *IntMatrix {
	return &IntMatrix{Rows: r, Cols: c, Data: make([]int, r*c)}
}

// At returns element (i, j).
func (m *IntMatrix) At(i, j int) int { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *IntMatrix) Set(i, j, v int) { m.Data[i*m.Cols+j] = v }

// Row returns row i aliasing the underlying storage.
func (m *IntMatrix) Row(i int) []int { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *IntMatrix) Clone() *IntMatrix {
	c := NewIntMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Recode maps arbitrary category strings to dense 1-based integer codes in
// order of first appearance, the behaviour of SystemDS frame recoding. It
// returns the codes and the decode table (labels[k-1] is the category of
// code k).
func Recode(values []string) (codes []int, labels []string) {
	codes = make([]int, len(values))
	idx := make(map[string]int, 16)
	for i, v := range values {
		k, ok := idx[v]
		if !ok {
			labels = append(labels, v)
			k = len(labels)
			idx[v] = k
		}
		codes[i] = k
	}
	return codes, labels
}

// BinEquiWidth assigns each value to one of nBins equi-width bins over
// [min, max], producing 1-based codes. NaN values map to an extra
// "missing" bin code nBins+1 when present. The returned edges slice has
// nBins+1 boundaries. A constant column maps entirely to bin 1.
func BinEquiWidth(values []float64, nBins int) (codes []int, edges []float64) {
	if nBins < 1 {
		panic(fmt.Sprintf("frame: nBins = %d, want >= 1", nBins))
	}
	codes = make([]int, len(values))
	lo, hi := math.Inf(1), math.Inf(-1)
	hasNaN := false
	for _, v := range values {
		if math.IsNaN(v) {
			hasNaN = true
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi { // all NaN or empty
		lo, hi = 0, 0
	}
	edges = make([]float64, nBins+1)
	width := (hi - lo) / float64(nBins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	edges[nBins] = hi
	for i, v := range values {
		switch {
		case math.IsNaN(v):
			codes[i] = nBins + 1
		case width == 0:
			codes[i] = 1
		default:
			b := int((v-lo)/width) + 1
			if b > nBins {
				b = nBins
			}
			codes[i] = b
		}
	}
	_ = hasNaN
	return codes, edges
}

// Feature describes one encoded feature of a dataset: its name, domain size
// (number of distinct 1-based codes) and, when available, human-readable
// labels per code.
type Feature struct {
	Name   string
	Domain int
	Labels []string // optional; Labels[k-1] decodes code k
}

// Dataset is an integer-encoded feature matrix X0 with per-feature metadata
// and an aligned label vector Y. It is the direct input of the SliceLine
// algorithm.
type Dataset struct {
	Name     string
	X0       *IntMatrix
	Features []Feature
	Y        []float64

	// Encoders freezes the per-feature value→code mapping used to encode
	// X0, when known (FromFrame records it). It is what makes a dataset
	// appendable: new rows are encoded against the frozen mapping instead
	// of re-deriving it, so codes stay stable across appends and only new
	// categorical values (or previously unseen bins) grow a domain. Nil for
	// datasets built directly from integer codes.
	Encoders []ColumnEncoder
}

// Validate checks structural invariants: code ranges, alignment, and
// positive domains. Enumeration correctness depends on codes forming the
// continuous range 1..Domain per feature.
func (d *Dataset) Validate() error {
	if d.X0 == nil {
		return fmt.Errorf("dataset %s: nil X0", d.Name)
	}
	if d.X0.Cols != len(d.Features) {
		return fmt.Errorf("dataset %s: %d feature columns vs %d feature descriptors", d.Name, d.X0.Cols, len(d.Features))
	}
	if d.Y != nil && len(d.Y) != d.X0.Rows {
		return fmt.Errorf("dataset %s: %d labels vs %d rows", d.Name, len(d.Y), d.X0.Rows)
	}
	for j, f := range d.Features {
		if f.Domain < 1 {
			return fmt.Errorf("dataset %s: feature %q has domain %d", d.Name, f.Name, f.Domain)
		}
		for i := 0; i < d.X0.Rows; i++ {
			v := d.X0.At(i, j)
			if v < 1 || v > f.Domain {
				return fmt.Errorf("dataset %s: code %d out of range [1,%d] at row %d feature %q", d.Name, v, f.Domain, i, f.Name)
			}
		}
	}
	return nil
}

// NumRows returns the number of rows.
func (d *Dataset) NumRows() int { return d.X0.Rows }

// NumFeatures returns the number of original (pre-one-hot) features.
func (d *Dataset) NumFeatures() int { return d.X0.Cols }

// OneHotWidth returns l, the total one-hot width sum(domains).
func (d *Dataset) OneHotWidth() int {
	l := 0
	for _, f := range d.Features {
		l += f.Domain
	}
	return l
}

// ReplicateRows returns a dataset with the rows (and labels) repeated
// factor times, the row-scaling construction of the paper's Figure 7(a).
func (d *Dataset) ReplicateRows(factor int) *Dataset {
	if factor < 1 {
		panic(fmt.Sprintf("frame: replication factor %d, want >= 1", factor))
	}
	n := d.X0.Rows
	out := &Dataset{
		Name:     fmt.Sprintf("%s_x%d", d.Name, factor),
		X0:       NewIntMatrix(n*factor, d.X0.Cols),
		Features: append([]Feature(nil), d.Features...),
	}
	for r := 0; r < factor; r++ {
		copy(out.X0.Data[r*len(d.X0.Data):], d.X0.Data)
	}
	if d.Y != nil {
		out.Y = make([]float64, 0, n*factor)
		for r := 0; r < factor; r++ {
			out.Y = append(out.Y, d.Y...)
		}
	}
	return out
}

// FromFrame encodes a frame into a Dataset: categorical columns are recoded,
// numeric columns are binned into nBins equi-width bins, and the named label
// column is extracted as Y (it must be numeric, and is not binned). Columns
// listed in drop are skipped, mirroring the paper's preprocessing (drop ID
// columns, bin continuous features into 10 equi-width bins, recode
// categories).
func FromFrame(f *Frame, labelCol string, nBins int, drop ...string) (*Dataset, error) {
	dropped := make(map[string]bool, len(drop))
	for _, d := range drop {
		dropped[d] = true
	}
	ds := &Dataset{}
	var featCols []Column
	for _, c := range f.Columns() {
		if c.Name == labelCol {
			if c.Kind != Numeric {
				return nil, fmt.Errorf("frame: label column %q must be numeric", labelCol)
			}
			ds.Y = append([]float64(nil), c.Floats...)
			continue
		}
		if dropped[c.Name] {
			continue
		}
		featCols = append(featCols, c)
	}
	if labelCol != "" && ds.Y == nil {
		return nil, fmt.Errorf("frame: label column %q not found", labelCol)
	}
	n := f.NumRows()
	if n == 0 && len(featCols) > 0 {
		// Zero rows would yield features with domain 0, which Validate
		// rejects; reject the input up front with a clearer message.
		return nil, fmt.Errorf("frame: cannot encode a frame with no rows")
	}
	ds.X0 = NewIntMatrix(n, len(featCols))
	ds.Features = make([]Feature, len(featCols))
	ds.Encoders = make([]ColumnEncoder, len(featCols))
	for j, c := range featCols {
		var codes []int
		feat := Feature{Name: c.Name}
		enc := ColumnEncoder{Name: c.Name, Kind: c.Kind}
		if c.Kind == Categorical {
			var labels []string
			codes, labels = Recode(c.Strings)
			feat.Domain = len(labels)
			feat.Labels = labels
			enc.Labels = labels
		} else {
			var edges []float64
			codes, edges = BinEquiWidth(c.Floats, nBins)
			maxCode := 0
			for _, v := range codes {
				if v > maxCode {
					maxCode = v
				}
			}
			feat.Domain = maxCode
			feat.Labels = binLabels(edges, maxCode)
			enc.Lo = edges[0]
			enc.Hi = edges[nBins]
			enc.NBins = nBins
		}
		for i, v := range codes {
			ds.X0.Set(i, j, v)
		}
		ds.Features[j] = feat
		ds.Encoders[j] = enc
	}
	return ds, nil
}

func binLabels(edges []float64, maxCode int) []string {
	labels := make([]string, maxCode)
	for b := 0; b < maxCode; b++ {
		if b < len(edges)-1 {
			labels[b] = fmt.Sprintf("[%.4g,%.4g)", edges[b], edges[b+1])
		} else {
			labels[b] = "missing"
		}
	}
	return labels
}

// Split partitions the dataset into train and test subsets by row index:
// rows with index < cut go to train. Callers shuffle beforehand if needed.
func (d *Dataset) Split(cut int) (train, test *Dataset) {
	if cut < 0 || cut > d.X0.Rows {
		panic(fmt.Sprintf("frame: split point %d out of range [0,%d]", cut, d.X0.Rows))
	}
	mk := func(name string, lo, hi int) *Dataset {
		out := &Dataset{
			Name:     name,
			X0:       &IntMatrix{Rows: hi - lo, Cols: d.X0.Cols, Data: d.X0.Data[lo*d.X0.Cols : hi*d.X0.Cols]},
			Features: d.Features,
		}
		if d.Y != nil {
			out.Y = d.Y[lo:hi]
		}
		return out
	}
	return mk(d.Name+"_train", 0, cut), mk(d.Name+"_test", cut, d.X0.Rows)
}

// SortedDomains returns the per-feature domains in feature order; it is a
// convenience for reporting Table 1 style statistics.
func (d *Dataset) SortedDomains() []int {
	out := make([]int, len(d.Features))
	for i, f := range d.Features {
		out[i] = f.Domain
	}
	return out
}

// TopDomains returns the k largest feature domains, descending, for
// dataset characterization.
func (d *Dataset) TopDomains(k int) []int {
	doms := d.SortedDomains()
	sort.Sort(sort.Reverse(sort.IntSlice(doms)))
	if k > len(doms) {
		k = len(doms)
	}
	return doms[:k]
}
