package frame

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses a CSV stream with a header row into a Frame. Columns where
// every non-empty value parses as a float become Numeric; all others become
// Categorical. Empty numeric cells become NaN-free zeros only if allowEmpty
// is set via the empty sentinel ""; they are otherwise errors — SliceLine's
// preprocessing expects complete, recodeable inputs.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("frame: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("frame: empty csv input")
	}
	header := records[0]
	rows := records[1:]
	nCols := len(header)
	for i, rec := range rows {
		if len(rec) != nCols {
			return nil, fmt.Errorf("frame: row %d has %d fields, want %d", i+2, len(rec), nCols)
		}
	}
	cols := make([]Column, nCols)
	for j := 0; j < nCols; j++ {
		numeric := true
		for _, rec := range rows {
			if rec[j] == "" {
				numeric = false
				break
			}
			if _, err := strconv.ParseFloat(rec[j], 64); err != nil {
				numeric = false
				break
			}
		}
		if numeric && len(rows) > 0 {
			floats := make([]float64, len(rows))
			for i, rec := range rows {
				floats[i], _ = strconv.ParseFloat(rec[j], 64)
			}
			cols[j] = Column{Name: header[j], Kind: Numeric, Floats: floats}
		} else {
			strs := make([]string, len(rows))
			for i, rec := range rows {
				strs[i] = rec[j]
			}
			cols[j] = Column{Name: header[j], Kind: Categorical, Strings: strs}
		}
	}
	return NewFrame(cols)
}

// WriteCSV renders a frame as CSV with a header row.
func WriteCSV(w io.Writer, f *Frame) error {
	cw := csv.NewWriter(w)
	header := make([]string, f.NumCols())
	for j, c := range f.Columns() {
		header[j] = c.Name
	}
	if err := writeRecord(cw, w, header); err != nil {
		return fmt.Errorf("frame: writing csv header: %w", err)
	}
	rec := make([]string, f.NumCols())
	for i := 0; i < f.NumRows(); i++ {
		for j, c := range f.Columns() {
			if c.Kind == Categorical {
				rec[j] = c.Strings[i]
			} else {
				rec[j] = strconv.FormatFloat(c.Floats[i], 'g', -1, 64)
			}
		}
		if err := writeRecord(cw, w, rec); err != nil {
			return fmt.Errorf("frame: writing csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// writeRecord writes one CSV record, working around an encoding/csv
// asymmetry: the writer renders a record holding a single empty field as a
// blank line, which the reader then skips entirely — a one-column frame with
// an empty name or empty cells would silently lose rows across a round
// trip. Such records are written as an explicitly quoted empty field.
func writeRecord(cw *csv.Writer, w io.Writer, rec []string) error {
	if len(rec) == 1 && rec[0] == "" {
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
		_, err := io.WriteString(w, "\"\"\n")
		return err
	}
	return cw.Write(rec)
}
