package frame

import (
	"fmt"
	"math"
	"strconv"

	"sliceline/internal/matrix"
)

// ColumnEncoder is the frozen value→code mapping of one encoded feature.
// Categorical features carry the recode table (Labels[k-1] is the category of
// code k, in first-appearance order); numeric features carry the equi-width
// binning range fixed at registration. Appended rows are encoded against this
// mapping, so existing codes never change: a known category or an in-range
// value reuses its code, an unseen category allocates the next code (growing
// the domain), and an out-of-range numeric value clamps to the nearest edge
// bin. NaN maps to the dedicated missing bin NBins+1, allocating it on first
// appearance exactly like BinEquiWidth does at registration.
type ColumnEncoder struct {
	Name   string
	Kind   Kind
	Labels []string // categorical decode table; index+1 = code
	Lo, Hi float64  // numeric: frozen bin range [Lo, Hi]
	NBins  int      // numeric: equi-width bin count (missing bin = NBins+1)
}

// edges reconstructs the bin boundaries exactly as BinEquiWidth produced them.
func (ce *ColumnEncoder) edges() []float64 {
	edges := make([]float64, ce.NBins+1)
	width := (ce.Hi - ce.Lo) / float64(ce.NBins)
	for i := range edges {
		edges[i] = ce.Lo + float64(i)*width
	}
	edges[ce.NBins] = ce.Hi
	return edges
}

// binCode encodes one numeric value with the frozen edges, replicating
// BinEquiWidth's in-range arithmetic bit for bit and clamping out-of-range
// values to the first/last bin.
func (ce *ColumnEncoder) binCode(v float64) int {
	if math.IsNaN(v) {
		return ce.NBins + 1
	}
	width := (ce.Hi - ce.Lo) / float64(ce.NBins)
	if width == 0 {
		return 1
	}
	b := int((v-ce.Lo)/width) + 1
	if b > ce.NBins {
		b = ce.NBins
	}
	if b < 1 {
		b = 1
	}
	return b
}

// AppendResult describes one applied append batch: the accumulated dataset
// and encoding after the batch, plus the column remap callers need to carry
// derived per-column state (packed bitsets, memoized statistics) across a
// domain growth.
type AppendResult struct {
	// DS and Enc are the accumulated dataset and one-hot encoding after the
	// append. Both are fresh values; snapshots taken before the append stay
	// valid and unchanged.
	DS  *Dataset
	Enc *Encoding
	// NewRows is the number of rows this batch appended.
	NewRows int
	// ColRemap maps each pre-append one-hot column index to its post-append
	// index. Nil when no feature domain grew (columns kept their indices).
	// New columns (codes allocated by this batch) have no preimage.
	ColRemap []int
	// Grown lists the features whose domain grew, by name.
	Grown []string
}

// Appender encodes appended rows against a dataset's frozen column encoders,
// maintaining the accumulated integer matrix and one-hot encoding across
// batches. Appends are copy-on-write: every batch produces fresh Dataset and
// Encoding values, so concurrent readers of an earlier snapshot are never
// invalidated. Encoding an appended batch is O(batch + nnz) — the nnz term
// only when a domain grows (existing one-hot columns shift to keep the
// per-feature block layout, so the column index array is rewritten).
//
// The invariant that makes incremental maintenance tractable downstream: the
// accumulated encoding after any sequence of appends is byte-identical to
// encoding the concatenated rows in one shot (for categorical features; for
// numeric features the bin edges stay frozen at their registration values
// instead of being re-derived from the grown value range).
type Appender struct {
	name  string
	feats []Feature
	encs  []ColumnEncoder
	cat   []map[string]int // per-feature label→code index (nil for numeric)
	x0    *IntMatrix
	enc   *Encoding
}

// NewAppender wraps a dataset and its one-hot encoding for appends. The
// dataset must carry its column encoders (FromFrame records them); datasets
// built directly from integer codes are not appendable.
func NewAppender(ds *Dataset, enc *Encoding) (*Appender, error) {
	if len(ds.Encoders) == 0 {
		return nil, fmt.Errorf("frame: dataset %s has no column encoders; only FromFrame datasets are appendable", ds.Name)
	}
	if len(ds.Encoders) != len(ds.Features) {
		return nil, fmt.Errorf("frame: dataset %s has %d encoders vs %d features", ds.Name, len(ds.Encoders), len(ds.Features))
	}
	a := &Appender{
		name:  ds.Name,
		feats: append([]Feature(nil), ds.Features...),
		encs:  append([]ColumnEncoder(nil), ds.Encoders...),
		cat:   make([]map[string]int, len(ds.Features)),
		x0:    ds.X0,
		enc:   enc,
	}
	for j, ce := range a.encs {
		if ce.Kind == Categorical {
			idx := make(map[string]int, len(ce.Labels))
			for k, lab := range ce.Labels {
				idx[lab] = k + 1
			}
			a.cat[j] = idx
			if len(ce.Labels) != ds.Features[j].Domain {
				return nil, fmt.Errorf("frame: feature %q has %d labels vs domain %d", ce.Name, len(ce.Labels), ds.Features[j].Domain)
			}
		}
	}
	return a, nil
}

// Rows returns the accumulated row count.
func (a *Appender) Rows() int { return a.x0.Rows }

// Dataset returns the current accumulated dataset. The label vector is not
// carried across appends (streaming operates on precomputed error vectors).
func (a *Appender) Dataset() *Dataset {
	return &Dataset{Name: a.name, X0: a.x0, Features: a.feats, Encoders: a.encs}
}

// Encoding returns the current accumulated one-hot encoding.
func (a *Appender) Encoding() *Encoding { return a.enc }

// AppendRows encodes and appends one batch of raw rows. vals[i][j] is the
// cell of appended row i for feature j (in the dataset's feature order);
// numeric features are parsed with ParseFloat. An error leaves the appender
// unchanged — a batch either applies whole or not at all.
func (a *Appender) AppendRows(vals [][]string) (*AppendResult, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("frame: empty append batch")
	}
	m := len(a.feats)
	// Pass 1: encode every cell against the frozen encoders, staging domain
	// growth in copied label tables so a failed batch leaves no trace.
	codes := make([]int, 0, len(vals)*m)
	newDom := make([]int, m)
	newLabels := make([][]string, m) // staged categorical labels (nil = unchanged)
	for j := range a.feats {
		newDom[j] = a.feats[j].Domain
	}
	for i, row := range vals {
		if len(row) != m {
			return nil, fmt.Errorf("frame: append row %d has %d cells, want %d", i, len(row), m)
		}
		for j, cell := range row {
			ce := &a.encs[j]
			var code int
			if ce.Kind == Categorical {
				var ok bool
				code, ok = a.cat[j][cell]
				if !ok {
					// Staged allocation: visible to later rows of this batch
					// through newLabels, committed only on success.
					if newLabels[j] == nil {
						newLabels[j] = append([]string(nil), ce.Labels...)
					}
					idx := indexOf(newLabels[j], cell, len(ce.Labels))
					if idx < 0 {
						newLabels[j] = append(newLabels[j], cell)
						idx = len(newLabels[j])
					} else {
						idx++
					}
					code = idx
					if code > newDom[j] {
						newDom[j] = code
					}
				}
			} else {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("frame: append row %d: feature %q: %v", i, ce.Name, err)
				}
				code = ce.binCode(v)
				if code > newDom[j] {
					newDom[j] = code
				}
			}
			codes = append(codes, code)
		}
	}

	// Pass 2: commit. Compute the column remap if any domain grew.
	oldEnc := a.enc
	oldL := oldEnc.Width()
	var remap []int
	var grown []string
	growth := 0
	for j := range a.feats {
		if newDom[j] > a.feats[j].Domain {
			growth += newDom[j] - a.feats[j].Domain
			grown = append(grown, a.feats[j].Name)
		}
	}
	newBeg := make([]int, m)
	newEnd := make([]int, m)
	l := 0
	for j := range a.feats {
		newBeg[j] = l
		l += newDom[j]
		newEnd[j] = l
	}
	if growth > 0 {
		remap = make([]int, oldL)
		for j := 0; j < m; j++ {
			for c := oldEnc.Beg[j]; c < oldEnc.End[j]; c++ {
				remap[c] = newBeg[j] + (c - oldEnc.Beg[j])
			}
		}
	}

	// New CSR: remapped copy of the old entries plus one block of m entries
	// per appended row (columns ascend because feature blocks ascend).
	nOld := a.x0.Rows
	k := len(vals)
	oldPtr, oldCol, oldVal := oldEnc.X.Components()
	rowPtr := make([]int, nOld+k+1)
	copy(rowPtr, oldPtr)
	colIdx := make([]int, len(oldCol)+k*m)
	val := make([]float64, len(oldVal)+k*m)
	if remap == nil {
		copy(colIdx, oldCol)
	} else {
		for i, c := range oldCol {
			colIdx[i] = remap[c]
		}
	}
	copy(val, oldVal)
	base := len(oldCol)
	for i := 0; i < k; i++ {
		for j := 0; j < m; j++ {
			colIdx[base+i*m+j] = newBeg[j] + codes[i*m+j] - 1
			val[base+i*m+j] = 1
		}
		rowPtr[nOld+i+1] = base + (i+1)*m
	}

	// Commit feature metadata (copy-on-write: fresh slices, so snapshots of
	// the previous generation keep their view).
	feats := append([]Feature(nil), a.feats...)
	encs := append([]ColumnEncoder(nil), a.encs...)
	for j := range feats {
		if newDom[j] == feats[j].Domain && newLabels[j] == nil {
			continue
		}
		feats[j].Domain = newDom[j]
		if encs[j].Kind == Categorical {
			labels := newLabels[j]
			if labels == nil {
				labels = encs[j].Labels
			}
			feats[j].Labels = labels
			encs[j].Labels = labels
			for kk := len(a.encs[j].Labels); kk < len(labels); kk++ {
				a.cat[j][labels[kk]] = kk + 1
			}
		} else {
			feats[j].Labels = binLabels(encs[j].edges(), newDom[j])
		}
	}

	// Grow X0 (copy-on-write via append: earlier snapshots keep their length).
	data := append(append(make([]int, 0, len(a.x0.Data)+k*m), a.x0.Data...), codes...)
	a.x0 = &IntMatrix{Rows: nOld + k, Cols: m, Data: data}
	a.feats = feats
	a.encs = encs
	a.enc = &Encoding{
		X:    matrix.NewCSR(nOld+k, l, rowPtr, colIdx, val),
		Beg:  newBeg,
		End:  newEnd,
		Doms: append([]int(nil), newDom...),
	}
	return &AppendResult{
		DS:       a.Dataset(),
		Enc:      a.enc,
		NewRows:  k,
		ColRemap: remap,
		Grown:    grown,
	}, nil
}

// indexOf finds lab among labels staged beyond from (0-based), returning its
// 0-based index or -1. Values before from are covered by the committed map.
func indexOf(labels []string, lab string, from int) int {
	for i := from; i < len(labels); i++ {
		if labels[i] == lab {
			return i
		}
	}
	return -1
}
