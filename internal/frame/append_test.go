package frame

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
)

// catFrame builds a categorical-only frame from row-major cells.
func catFrame(t *testing.T, names []string, rows [][]string) *Frame {
	t.Helper()
	cols := make([]Column, len(names))
	for j, name := range names {
		c := Column{Name: name, Kind: Categorical}
		for _, r := range rows {
			c.Strings = append(c.Strings, r[j])
		}
		cols[j] = c
	}
	fr, err := NewFrame(cols)
	if err != nil {
		t.Fatalf("NewFrame: %v", err)
	}
	return fr
}

// requireSameEncoding asserts two encodings are byte-identical: same CSR
// components, same block layout.
func requireSameEncoding(t *testing.T, got, want *Encoding) {
	t.Helper()
	gp, gc, gv := got.X.Components()
	wp, wc, wv := want.X.Components()
	if got.X.Rows() != want.X.Rows() || got.X.Cols() != want.X.Cols() {
		t.Fatalf("shape: got %dx%d, want %dx%d", got.X.Rows(), got.X.Cols(), want.X.Rows(), want.X.Cols())
	}
	if !reflect.DeepEqual(gp, wp) {
		t.Fatalf("rowPtr mismatch:\ngot  %v\nwant %v", gp, wp)
	}
	if !reflect.DeepEqual(gc, wc) {
		t.Fatalf("colIdx mismatch:\ngot  %v\nwant %v", gc, wc)
	}
	if !reflect.DeepEqual(gv, wv) {
		t.Fatalf("val mismatch:\ngot  %v\nwant %v", gv, wv)
	}
	if !reflect.DeepEqual(got.Beg, want.Beg) || !reflect.DeepEqual(got.End, want.End) || !reflect.DeepEqual(got.Doms, want.Doms) {
		t.Fatalf("layout mismatch: got Beg=%v End=%v Doms=%v, want Beg=%v End=%v Doms=%v",
			got.Beg, got.End, got.Doms, want.Beg, want.End, want.Doms)
	}
}

func newTestAppender(t *testing.T, names []string, rows [][]string) *Appender {
	t.Helper()
	ds, err := FromFrame(catFrame(t, names, rows), "", 5)
	if err != nil {
		t.Fatalf("FromFrame: %v", err)
	}
	enc, err := OneHot(ds)
	if err != nil {
		t.Fatalf("OneHot: %v", err)
	}
	a, err := NewAppender(ds, enc)
	if err != nil {
		t.Fatalf("NewAppender: %v", err)
	}
	return a
}

// TestAppendMatchesConcat is the core byte-identity contract: K appends must
// reproduce exactly the encoding of the concatenated rows in one shot,
// including appends that grow a feature's domain.
func TestAppendMatchesConcat(t *testing.T) {
	names := []string{"dev", "os"}
	base := [][]string{{"d0", "o0"}, {"d1", "o0"}, {"d0", "o1"}}
	batches := [][][]string{
		{{"d1", "o1"}},                             // no growth
		{{"d2", "o0"}, {"d0", "o2"}},               // both features grow
		{{"d2", "o2"}, {"d3", "o3"}, {"d3", "o0"}}, // growth incl. repeat within batch
	}
	a := newTestAppender(t, names, base)
	all := append([][]string(nil), base...)
	for bi, b := range batches {
		res, err := a.AppendRows(b)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		all = append(all, b...)
		ds, err := FromFrame(catFrame(t, names, all), "", 5)
		if err != nil {
			t.Fatalf("FromFrame(concat): %v", err)
		}
		want, err := OneHot(ds)
		if err != nil {
			t.Fatalf("OneHot(concat): %v", err)
		}
		requireSameEncoding(t, res.Enc, want)
		if !reflect.DeepEqual(res.DS.X0.Data, ds.X0.Data) {
			t.Fatalf("batch %d: X0 mismatch:\ngot  %v\nwant %v", bi, res.DS.X0.Data, ds.X0.Data)
		}
		if !reflect.DeepEqual(res.DS.Features, ds.Features) {
			t.Fatalf("batch %d: features mismatch:\ngot  %+v\nwant %+v", bi, res.DS.Features, ds.Features)
		}
	}
}

// TestAppendColRemap pins the remap semantics: old columns keep their
// in-block offset, blocks shift by the cumulative growth of earlier features.
func TestAppendColRemap(t *testing.T) {
	a := newTestAppender(t, []string{"f1", "f2"}, [][]string{{"a", "x"}, {"b", "y"}})
	// f1 grows by one ("c"): f1 block [0,2) stays, f2 block [2,4) shifts to [3,5).
	res, err := a.AppendRows([][]string{{"c", "x"}})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{0, 1, 3, 4}; !reflect.DeepEqual(res.ColRemap, want) {
		t.Fatalf("ColRemap = %v, want %v", res.ColRemap, want)
	}
	if want := []string{"f1"}; !reflect.DeepEqual(res.Grown, want) {
		t.Fatalf("Grown = %v, want %v", res.Grown, want)
	}
	// No-growth append: remap must be nil.
	res, err = a.AppendRows([][]string{{"a", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ColRemap != nil || res.Grown != nil {
		t.Fatalf("no-growth append: ColRemap=%v Grown=%v, want nil/nil", res.ColRemap, res.Grown)
	}
}

// TestAppendSnapshotIsolation: an append must not mutate encodings or
// datasets handed out before it.
func TestAppendSnapshotIsolation(t *testing.T) {
	a := newTestAppender(t, []string{"f"}, [][]string{{"a"}, {"b"}})
	snapDS := a.Dataset()
	snapEnc := a.Encoding()
	rows := snapDS.NumRows()
	_, cIdx, _ := snapEnc.X.Components()
	before := append([]int(nil), cIdx...)
	if _, err := a.AppendRows([][]string{{"c"}, {"a"}}); err != nil {
		t.Fatal(err)
	}
	if snapDS.NumRows() != rows || snapDS.Features[0].Domain != 2 {
		t.Fatalf("snapshot dataset mutated: rows=%d domain=%d", snapDS.NumRows(), snapDS.Features[0].Domain)
	}
	_, after, _ := snapEnc.X.Components()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("snapshot encoding mutated: %v -> %v", before, after)
	}
}

// TestAppendNumericFrozenBins: numeric appends reuse the registration-time
// bin edges; in-range values land in the same bin FromFrame chose,
// out-of-range values clamp, NaN hits the missing bin (growing the domain on
// first appearance).
func TestAppendNumericFrozenBins(t *testing.T) {
	fr, err := NewFrame([]Column{
		{Name: "v", Kind: Numeric, Floats: []float64{0, 2.5, 5, 7.5, 10}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := FromFrame(fr, "", 4) // edges 0,2.5,5,7.5,10
	if err != nil {
		t.Fatal(err)
	}
	enc, err := OneHot(ds)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAppender(ds, enc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.AppendRows([][]string{{"3.0"}, {"-100"}, {"1e9"}, {"NaN"}})
	if err != nil {
		t.Fatal(err)
	}
	n := ds.NumRows()
	got := res.DS.X0.Data[n:]
	// 3.0 → bin 2; -100 clamps to 1; 1e9 clamps to 4; NaN → missing bin 5.
	if want := []int{2, 1, 4, 5}; !reflect.DeepEqual(got, want) {
		t.Fatalf("appended codes = %v, want %v", got, want)
	}
	if res.DS.Features[0].Domain != 5 {
		t.Fatalf("domain = %d, want 5 (missing bin allocated)", res.DS.Features[0].Domain)
	}
	if res.DS.Features[0].Labels[4] != "missing" {
		t.Fatalf("missing-bin label = %q", res.DS.Features[0].Labels[4])
	}
}

// TestAppendAtomicity: a batch with a bad row must leave the appender
// unchanged, including staged categorical allocations from earlier rows.
func TestAppendAtomicity(t *testing.T) {
	fr, err := NewFrame([]Column{
		{Name: "c", Kind: Categorical, Strings: []string{"a", "b"}},
		{Name: "v", Kind: Numeric, Floats: []float64{1, 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := FromFrame(fr, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := OneHot(ds)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAppender(ds, enc)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 stages a new category "z"; row 1 fails to parse.
	if _, err := a.AppendRows([][]string{{"z", "1.5"}, {"a", "not-a-number"}}); err == nil {
		t.Fatal("want parse error")
	}
	if a.Rows() != 2 {
		t.Fatalf("failed batch changed row count: %d", a.Rows())
	}
	if a.Dataset().Features[0].Domain != 2 {
		t.Fatalf("failed batch leaked staged category: domain=%d", a.Dataset().Features[0].Domain)
	}
	// "z" must now allocate fresh as code 3, not reuse a leaked slot.
	res, err := a.AppendRows([][]string{{"z", "1.5"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DS.X0.At(2, 0); got != 3 {
		t.Fatalf("code for z = %d, want 3", got)
	}
}

func TestAppendErrors(t *testing.T) {
	a := newTestAppender(t, []string{"f"}, [][]string{{"a"}})
	if _, err := a.AppendRows(nil); err == nil {
		t.Error("empty batch: want error")
	}
	if _, err := a.AppendRows([][]string{{"a", "extra"}}); err == nil {
		t.Error("wrong arity: want error")
	}
	// Datasets without encoders are not appendable.
	ds := &Dataset{X0: NewIntMatrix(1, 1), Features: []Feature{{Name: "f", Domain: 1}}}
	if _, err := NewAppender(ds, nil); err == nil {
		t.Error("no encoders: want error")
	}
}

// FuzzAppendRows drives the byte-identity contract with arbitrary seeded
// schedules: split a random categorical table at random points into a base
// frame plus K append batches, and require the accumulated encoding to be
// byte-identical to encoding the whole table at once. Categorical-only by
// construction: numeric bin edges are frozen at registration, so numeric
// append-vs-concat identity intentionally does not hold.
func FuzzAppendRows(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(2), uint8(3), uint8(4))
	f.Add(int64(2), uint8(20), uint8(3), uint8(2), uint8(1))
	f.Add(int64(42), uint8(5), uint8(1), uint8(9), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nRows, nCols, domain, nBatches uint8) {
		n := 1 + int(nRows)%40
		m := 1 + int(nCols)%4
		dom := 1 + int(domain)%6
		k := 1 + int(nBatches)%5
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]string, n)
		for i := range rows {
			rows[i] = make([]string, m)
			for j := range rows[i] {
				rows[i][j] = "v" + strconv.Itoa(rng.Intn(dom))
			}
		}
		names := make([]string, m)
		for j := range names {
			names[j] = "f" + strconv.Itoa(j)
		}
		// Random split points: base gets at least one row, each batch at
		// least one row (drop batches when rows run out).
		baseN := 1 + rng.Intn(n)
		a := newTestAppender(t, names, rows[:baseN])
		at := baseN
		for b := 0; b < k && at < n; b++ {
			size := 1 + rng.Intn(n-at)
			if b == k-1 {
				size = n - at // last batch takes the rest
			}
			if _, err := a.AppendRows(rows[at : at+size]); err != nil {
				t.Fatalf("AppendRows: %v", err)
			}
			at += size
		}
		ds, err := FromFrame(catFrame(t, names, rows[:at]), "", 5)
		if err != nil {
			t.Fatalf("FromFrame(concat): %v", err)
		}
		want, err := OneHot(ds)
		if err != nil {
			t.Fatalf("OneHot(concat): %v", err)
		}
		requireSameEncoding(t, a.Encoding(), want)
		if !reflect.DeepEqual(a.Dataset().X0.Data, ds.X0.Data) {
			t.Fatal("X0 mismatch after appends")
		}
	})
}

// TestAppendManyBatches exercises a longer schedule with steady growth.
func TestAppendManyBatches(t *testing.T) {
	names := []string{"a", "b", "c"}
	rng := rand.New(rand.NewSource(7))
	row := func(gen int) []string {
		// Occasionally mint a generation-tagged value to force growth.
		cells := make([]string, 3)
		for j := range cells {
			if rng.Intn(4) == 0 {
				cells[j] = fmt.Sprintf("g%d_%d", gen, j)
			} else {
				cells[j] = "v" + strconv.Itoa(rng.Intn(3))
			}
		}
		return cells
	}
	base := [][]string{row(0), row(0), row(0), row(0)}
	a := newTestAppender(t, names, base)
	all := append([][]string(nil), base...)
	for gen := 1; gen <= 8; gen++ {
		batch := [][]string{row(gen), row(gen)}
		if _, err := a.AppendRows(batch); err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		all = append(all, batch...)
	}
	ds, err := FromFrame(catFrame(t, names, all), "", 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := OneHot(ds)
	if err != nil {
		t.Fatal(err)
	}
	requireSameEncoding(t, a.Encoding(), want)
}
