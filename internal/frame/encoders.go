package frame

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// RecodeHash maps category strings to 1-based codes in [1, buckets] via
// feature hashing (FNV-1a), the paper's third encoding option for
// high-cardinality categorical features where full recode maps are too
// large. Collisions are intentional; the returned domain is always buckets.
func RecodeHash(values []string, buckets int) []int {
	if buckets < 1 {
		panic(fmt.Sprintf("frame: buckets = %d, want >= 1", buckets))
	}
	codes := make([]int, len(values))
	for i, v := range values {
		h := fnv.New32a()
		h.Write([]byte(v)) //nolint:errcheck // hash.Write never fails
		codes[i] = int(h.Sum32()%uint32(buckets)) + 1
	}
	return codes
}

// BinEquiHeight assigns each value to one of up to nBins equi-height
// (quantile) bins, producing 1-based continuous codes. Ties across quantile
// boundaries collapse bins, so the effective domain can be smaller than
// nBins; the returned cut points have one entry per bin boundary. NaN-free
// input is assumed (bin the output of cleaning passes).
func BinEquiHeight(values []float64, nBins int) (codes []int, cuts []float64) {
	if nBins < 1 {
		panic(fmt.Sprintf("frame: nBins = %d, want >= 1", nBins))
	}
	n := len(values)
	codes = make([]int, n)
	if n == 0 {
		return codes, nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	// Candidate cut points at the quantile boundaries, deduplicated.
	for b := 1; b < nBins; b++ {
		q := sorted[b*n/nBins]
		if len(cuts) == 0 || q > cuts[len(cuts)-1] {
			cuts = append(cuts, q)
		}
	}
	for i, v := range values {
		// bin = 1 + number of cuts <= v, so each cut opens a new bin.
		codes[i] = 1 + sort.Search(len(cuts), func(k int) bool { return cuts[k] > v })
	}
	// Compact to a continuous 1..d range (SliceLine requires continuous
	// integer codes).
	seen := map[int]bool{}
	for _, c := range codes {
		seen[c] = true
	}
	remap := make(map[int]int, len(seen))
	var keys []int
	for c := range seen {
		keys = append(keys, c)
	}
	sort.Ints(keys)
	for rank, c := range keys {
		remap[c] = rank + 1
	}
	for i, c := range codes {
		codes[i] = remap[c]
	}
	return codes, cuts
}
