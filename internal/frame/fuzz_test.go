package frame

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// FuzzCSVRoundTrip checks that the CSV codec reaches a fixed point after one
// write: whatever normalization ReadCSV applies to arbitrary input, writing
// the resulting frame and re-reading it must reproduce the frame and the
// bytes exactly. This pins column-kind inference (a column must not flip
// between categorical and numeric across round trips) and float formatting.
func FuzzCSVRoundTrip(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n"))
	f.Add([]byte("f1,f2,f3\n0.5,cat,3\n1.5,dog,4\n"))
	f.Add([]byte("n\nNaN\n+Inf\n1e300\n"))
	f.Add([]byte("q\n\" spaced\"\n\"com,ma\"\n\"quo\"\"te\"\n"))
	f.Add([]byte("only_header\n"))
	f.Add([]byte("\"\"\nx\n")) // lone empty header name: must not vanish on write
	f.Add([]byte("a\n\"\"\n")) // lone empty cell: must not be skipped as a blank line
	f.Fuzz(func(t *testing.T, data []byte) {
		f1, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		var b1 bytes.Buffer
		if err := WriteCSV(&b1, f1); err != nil {
			t.Fatalf("WriteCSV on freshly parsed frame: %v", err)
		}
		f2, err := ReadCSV(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("re-reading written csv: %v\ncsv:\n%s", err, b1.Bytes())
		}
		if f2.NumRows() != f1.NumRows() || f2.NumCols() != f1.NumCols() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				f1.NumRows(), f1.NumCols(), f2.NumRows(), f2.NumCols())
		}
		for j, c1 := range f1.Columns() {
			if f2.Columns()[j].Kind != c1.Kind {
				t.Fatalf("column %d (%q) flipped kind across round trip", j, c1.Name)
			}
		}
		var b2 bytes.Buffer
		if err := WriteCSV(&b2, f2); err != nil {
			t.Fatalf("second WriteCSV: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Fatalf("csv not a fixed point after one write:\nfirst:\n%s\nsecond:\n%s", b1.Bytes(), b2.Bytes())
		}
	})
}

// FuzzCSVToDataset checks the full ingestion pipeline: any CSV that parses
// into a frame must encode into a structurally valid dataset whose one-hot
// encoding preserves the integer codes exactly.
func FuzzCSVToDataset(f *testing.F) {
	f.Add([]byte("a,b\n1,x\n2,y\n1,x\n"))
	f.Add([]byte("v\n0.1\n0.9\n0.5\nNaN\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadCSV(bytes.NewReader(data))
		if err != nil {
			t.Skip()
		}
		if fr.NumRows() > 500 || fr.NumCols() > 20 {
			t.Skip() // keep per-input cost bounded
		}
		ds, err := FromFrame(fr, "", 5)
		if err != nil {
			t.Skip() // e.g. empty-name label column, zero rows
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("FromFrame produced an invalid dataset: %v", err)
		}
		enc, err := OneHot(ds)
		if err != nil {
			t.Fatalf("OneHot on valid dataset: %v", err)
		}
		if enc.Width() != ds.OneHotWidth() {
			t.Fatalf("one-hot width %d vs %d", enc.Width(), ds.OneHotWidth())
		}
		// Every row must have exactly one set column per feature, and the
		// column must decode back to the original code via FeatureOf/ValueOf.
		m := ds.NumFeatures()
		rowPtr, colIdx, val := enc.X.Components()
		for i := 0; i < ds.NumRows(); i++ {
			if rowPtr[i+1]-rowPtr[i] != m {
				t.Fatalf("row %d has %d nonzeros, want %d (one per feature)", i, rowPtr[i+1]-rowPtr[i], m)
			}
			for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
				if val[k] != 1 {
					t.Fatalf("row %d: one-hot value %v, want 1", i, val[k])
				}
				c := colIdx[k]
				j := enc.FeatureOf(c)
				if got, want := enc.ValueOf(c), ds.X0.At(i, j); got != want {
					t.Fatalf("row %d feature %d: one-hot column %d decodes to %d, X0 has %d", i, j, c, got, want)
				}
			}
		}
	})
}

// FuzzRecode checks the recode invariants SliceLine depends on: codes form
// the continuous range 1..d in order of first appearance, and the decode
// table inverts them exactly.
func FuzzRecode(f *testing.F) {
	f.Add("a,b,a,c")
	f.Add(",,")
	f.Add("x")
	f.Fuzz(func(t *testing.T, joined string) {
		values := strings.Split(joined, ",")
		codes, labels := Recode(values)
		if len(codes) != len(values) {
			t.Fatalf("%d codes for %d values", len(codes), len(values))
		}
		seen := make([]bool, len(labels))
		for i, c := range codes {
			if c < 1 || c > len(labels) {
				t.Fatalf("code %d out of range [1,%d]", c, len(labels))
			}
			if labels[c-1] != values[i] {
				t.Fatalf("labels[%d-1] = %q does not decode value %q", c, labels[c-1], values[i])
			}
			seen[c-1] = true
		}
		for k, s := range seen {
			if !s {
				t.Fatalf("code %d never used: codes are not dense", k+1)
			}
		}
		distinct := map[string]bool{}
		for _, l := range labels {
			if distinct[l] {
				t.Fatalf("duplicate label %q in decode table", l)
			}
			distinct[l] = true
		}
	})
}

// FuzzBinEquiHeight checks the quantile binner: codes are continuous 1..d
// with d <= nBins, binning is monotone in the value, equal values always
// share a bin, and the cut points are strictly increasing.
func FuzzBinEquiHeight(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, nb uint8) {
		nBins := 1 + int(nb%10)
		values := make([]float64, 0, len(data)/2)
		for i := 0; i+1 < len(data); i += 2 {
			// Small integers plus a fractional part: plenty of ties, no NaN.
			values = append(values, float64(int(data[i])%16)+float64(data[i+1])/256)
		}
		codes, cuts := BinEquiHeight(values, nBins)
		if len(codes) != len(values) {
			t.Fatalf("%d codes for %d values", len(codes), len(values))
		}
		for i := 1; i < len(cuts); i++ {
			if cuts[i] <= cuts[i-1] {
				t.Fatalf("cut points not strictly increasing: %v", cuts)
			}
		}
		if len(values) == 0 {
			return
		}
		d := 0
		for _, c := range codes {
			if c > d {
				d = c
			}
		}
		if d > nBins {
			t.Fatalf("max code %d exceeds nBins %d", d, nBins)
		}
		used := make([]bool, d)
		for i, c := range codes {
			if c < 1 || c > d {
				t.Fatalf("code %d out of range [1,%d]", c, d)
			}
			used[c-1] = true
			for k := i + 1; k < len(values); k++ {
				if values[i] == values[k] && codes[i] != codes[k] {
					t.Fatalf("equal values %v binned differently: %d vs %d", values[i], codes[i], codes[k])
				}
				if values[i] < values[k] && codes[i] > codes[k] {
					t.Fatalf("binning not monotone: %v->%d but %v->%d", values[i], codes[i], values[k], codes[k])
				}
			}
		}
		for k, u := range used {
			if !u {
				t.Fatalf("code %d unused: codes are not continuous 1..%d", k+1, d)
			}
		}
	})
}

// FuzzBinEquiWidth checks the equi-width binner: codes stay in [1, nBins]
// for finite values (nBins+1 is reserved for NaN), binning is monotone, and
// the edge vector brackets every finite input.
func FuzzBinEquiWidth(f *testing.F) {
	f.Add([]byte{10, 20, 30, 255}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, nb uint8) {
		nBins := 1 + int(nb%10)
		values := make([]float64, 0, len(data))
		for i, b := range data {
			if b == 255 {
				values = append(values, math.NaN())
			} else {
				values = append(values, float64(int(b)%32)+float64(i%4)/4)
			}
		}
		codes, edges := BinEquiWidth(values, nBins)
		if len(edges) != nBins+1 {
			t.Fatalf("%d edges for %d bins", len(edges), nBins)
		}
		for i, v := range values {
			c := codes[i]
			if math.IsNaN(v) {
				if c != nBins+1 {
					t.Fatalf("NaN mapped to code %d, want missing bin %d", c, nBins+1)
				}
				continue
			}
			if c < 1 || c > nBins {
				t.Fatalf("value %v mapped to code %d out of [1,%d]", v, c, nBins)
			}
			if v < edges[0] || v > edges[nBins] {
				t.Fatalf("value %v outside edge range [%v,%v]", v, edges[0], edges[nBins])
			}
			for k := i + 1; k < len(values); k++ {
				if math.IsNaN(values[k]) {
					continue
				}
				if v < values[k] && c > codes[k] {
					t.Fatalf("binning not monotone: %v->%d but %v->%d", v, c, values[k], codes[k])
				}
			}
		}
	})
}
