package frame

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReadCSVTypes(t *testing.T) {
	in := "name,age,city\nann,34,berlin\nbob,28,graz\n"
	f, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 2 || f.NumCols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", f.NumRows(), f.NumCols())
	}
	name, err := f.Column("name")
	if err != nil || name.Kind != Categorical {
		t.Fatalf("name column: err=%v kind=%v", err, name.Kind)
	}
	age, err := f.Column("age")
	if err != nil || age.Kind != Numeric {
		t.Fatalf("age column: err=%v kind=%v", err, age.Kind)
	}
	if !reflect.DeepEqual(age.Floats, []float64{34, 28}) {
		t.Fatalf("age = %v", age.Floats)
	}
}

func TestReadCSVEmptyInput(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty input")
	}
}

func TestReadCSVMalformed(t *testing.T) {
	// A quoted field that never closes is a csv syntax error.
	if _, err := ReadCSV(strings.NewReader("a,b\n\"oops,1\n")); err == nil {
		t.Fatal("expected error for malformed csv")
	}
}

func TestReadCSVEmptyCellForcesCategorical(t *testing.T) {
	f, err := ReadCSV(strings.NewReader("k,v\na,1\nb,\nc,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := f.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind != Categorical {
		t.Fatalf("kind = %v, want Categorical when empty cells exist", c.Kind)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := NewFrame([]Column{
		{Name: "cat", Kind: Categorical, Strings: []string{"x", "y"}},
		{Name: "num", Kind: Numeric, Floats: []float64{1.5, -2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cat, _ := back.Column("cat")
	num, _ := back.Column("num")
	if !reflect.DeepEqual(cat.Strings, []string{"x", "y"}) {
		t.Errorf("cat = %v", cat.Strings)
	}
	if !reflect.DeepEqual(num.Floats, []float64{1.5, -2}) {
		t.Errorf("num = %v", num.Floats)
	}
}
