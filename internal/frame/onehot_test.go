package frame

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallDataset() *Dataset {
	// Two features: f1 with domain 2, f2 with domain 3.
	x := NewIntMatrix(3, 2)
	x.Set(0, 0, 1)
	x.Set(0, 1, 2)
	x.Set(1, 0, 2)
	x.Set(1, 1, 3)
	x.Set(2, 0, 1)
	x.Set(2, 1, 1)
	return &Dataset{
		Name: "small",
		X0:   x,
		Features: []Feature{
			{Name: "f1", Domain: 2},
			{Name: "f2", Domain: 3},
		},
	}
}

func TestOneHotLayout(t *testing.T) {
	enc, err := OneHot(smallDataset())
	if err != nil {
		t.Fatal(err)
	}
	if enc.Width() != 5 {
		t.Fatalf("width = %d, want 5", enc.Width())
	}
	if enc.Beg[0] != 0 || enc.End[0] != 2 || enc.Beg[1] != 2 || enc.End[1] != 5 {
		t.Fatalf("offsets Beg=%v End=%v", enc.Beg, enc.End)
	}
	d := enc.X.ToDense()
	want := [][]float64{
		{1, 0, 0, 1, 0},
		{0, 1, 0, 0, 1},
		{1, 0, 1, 0, 0},
	}
	for i := range want {
		for j := range want[i] {
			if d.At(i, j) != want[i][j] {
				t.Fatalf("X[%d,%d] = %v, want %v", i, j, d.At(i, j), want[i][j])
			}
		}
	}
}

func TestOneHotRowNNZEqualsFeatures(t *testing.T) {
	enc, err := OneHot(smallDataset())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < enc.X.Rows(); i++ {
		if enc.X.RowNNZ(i) != 2 {
			t.Fatalf("row %d nnz = %d, want 2", i, enc.X.RowNNZ(i))
		}
	}
}

func TestOneHotFeatureOfValueOf(t *testing.T) {
	enc, err := OneHot(smallDataset())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ col, feat, val int }{
		{0, 0, 1}, {1, 0, 2}, {2, 1, 1}, {3, 1, 2}, {4, 1, 3},
	}
	for _, c := range cases {
		if got := enc.FeatureOf(c.col); got != c.feat {
			t.Errorf("FeatureOf(%d) = %d, want %d", c.col, got, c.feat)
		}
		if got := enc.ValueOf(c.col); got != c.val {
			t.Errorf("ValueOf(%d) = %d, want %d", c.col, got, c.val)
		}
	}
}

func TestOneHotRejectsInvalidDataset(t *testing.T) {
	ds := smallDataset()
	ds.X0.Set(0, 0, 99)
	if _, err := OneHot(ds); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestOneHotDecodesBack checks the fundamental round-trip property on random
// datasets: decoding the one-hot row recovers X0 exactly.
func TestOneHotDecodesBack(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(7))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(20), 1+rng.Intn(6)
		ds := &Dataset{Name: "rand", X0: NewIntMatrix(n, m), Features: make([]Feature, m)}
		for j := 0; j < m; j++ {
			dom := 1 + rng.Intn(5)
			ds.Features[j] = Feature{Name: "f", Domain: dom}
			for i := 0; i < n; i++ {
				ds.X0.Set(i, j, 1+rng.Intn(dom))
			}
		}
		enc, err := OneHot(ds)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			cols, _ := enc.X.RowEntries(i)
			if len(cols) != m {
				return false
			}
			for _, c := range cols {
				j := enc.FeatureOf(c)
				if enc.ValueOf(c) != ds.X0.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
