package frame

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestDatasetGobRoundTrip(t *testing.T) {
	ds, err := FromFrame(testFrame(t), "y", 2, "id")
	if err != nil {
		t.Fatal(err)
	}
	ds.Name = "roundtrip"
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "roundtrip" {
		t.Errorf("name = %q", back.Name)
	}
	if !reflect.DeepEqual(back.X0.Data, ds.X0.Data) {
		t.Error("X0 differs after round trip")
	}
	if !reflect.DeepEqual(back.Y, ds.Y) {
		t.Error("Y differs after round trip")
	}
	if !reflect.DeepEqual(back.Features, ds.Features) {
		t.Error("features differ after round trip")
	}
}

func TestWriteDatasetRejectsInvalid(t *testing.T) {
	ds := &Dataset{
		Name:     "bad",
		X0:       &IntMatrix{Rows: 1, Cols: 1, Data: []int{9}},
		Features: []Feature{{Name: "f", Domain: 2}},
	}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestReadDatasetCorruptStream(t *testing.T) {
	if _, err := ReadDataset(strings.NewReader("not gob data")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestReadDatasetEmptyStream(t *testing.T) {
	if _, err := ReadDataset(strings.NewReader("")); err == nil {
		t.Fatal("expected error for empty stream")
	}
}
