package frame

import (
	"fmt"

	"sliceline/internal/matrix"
)

// Encoding is the one-hot encoded form of a dataset: the sparse 0/1 matrix X
// (n × l) plus the per-feature column offsets that Algorithm 1 uses to map
// between one-hot columns and original features.
//
// For feature j (0-based), its one-hot columns occupy the half-open range
// [Beg[j], End[j]) of X, with End[j]-Beg[j] == domain(j). These correspond
// to the paper's fb (exclusive begin) and fe (inclusive end) offsets.
type Encoding struct {
	X    *matrix.CSR
	Beg  []int // Beg[j] = first one-hot column of feature j
	End  []int // End[j] = one past the last one-hot column of feature j
	Doms []int // Doms[j] = domain size of feature j
}

// NumFeatures returns m, the original feature count.
func (e *Encoding) NumFeatures() int { return len(e.Beg) }

// Width returns l, the one-hot width.
func (e *Encoding) Width() int { return e.X.Cols() }

// FeatureOf returns the original feature index owning one-hot column c.
func (e *Encoding) FeatureOf(c int) int {
	for j := range e.Beg {
		if c >= e.Beg[j] && c < e.End[j] {
			return j
		}
	}
	panic(fmt.Sprintf("frame: one-hot column %d out of range %d", c, e.Width()))
}

// ValueOf returns the 1-based feature code encoded by one-hot column c.
func (e *Encoding) ValueOf(c int) int {
	return c - e.Beg[e.FeatureOf(c)] + 1
}

// OneHot encodes a dataset into its sparse 0/1 representation, the
// `X ← onehot(X0 + fb)` step of Algorithm 1 lines 1-5. Every row of X has
// exactly m nonzeros (one per feature), so nnz = n·m and the density is 1/l
// per feature block, matching the ultra-sparse matrices the paper evaluates.
func OneHot(d *Dataset) (*Encoding, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	m := d.NumFeatures()
	enc := &Encoding{
		Beg:  make([]int, m),
		End:  make([]int, m),
		Doms: make([]int, m),
	}
	l := 0
	for j, f := range d.Features {
		enc.Beg[j] = l
		l += f.Domain
		enc.End[j] = l
		enc.Doms[j] = f.Domain
	}
	n := d.NumRows()
	rowPtr := make([]int, n+1)
	colIdx := make([]int, n*m)
	val := make([]float64, n*m)
	for i := 0; i < n; i++ {
		row := d.X0.Row(i)
		base := i * m
		for j, code := range row {
			colIdx[base+j] = enc.Beg[j] + code - 1
			val[base+j] = 1
		}
		// Columns within a row are ascending because Beg is ascending and
		// codes stay within their feature block.
		rowPtr[i+1] = base + m
	}
	enc.X = matrix.NewCSR(n, l, rowPtr, colIdx, val)
	return enc, nil
}
