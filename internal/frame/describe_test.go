package frame

import (
	"reflect"
	"testing"
)

func describeDataset() *Dataset {
	ds := &Dataset{
		Name: "d",
		X0:   NewIntMatrix(10, 2),
		Features: []Feature{
			{Name: "a", Domain: 3},
			{Name: "b", Domain: 2},
		},
	}
	// Feature a: 1 appears 6x, 2 appears 4x, 3 never.
	// Feature b: 1 appears 5x, 2 appears 5x.
	for i := 0; i < 10; i++ {
		if i < 6 {
			ds.X0.Set(i, 0, 1)
		} else {
			ds.X0.Set(i, 0, 2)
		}
		ds.X0.Set(i, 1, 1+i%2)
	}
	return ds
}

func TestDescribe(t *testing.T) {
	sums := Describe(describeDataset())
	if len(sums) != 2 {
		t.Fatalf("summaries = %d", len(sums))
	}
	a := sums[0]
	if !reflect.DeepEqual(a.Counts, []int{6, 4, 0}) {
		t.Errorf("a counts = %v", a.Counts)
	}
	if a.TopCode != 1 || a.TopShare != 0.6 || a.Distinct != 2 {
		t.Errorf("a summary = %+v", a)
	}
	b := sums[1]
	if b.TopShare != 0.5 || b.Distinct != 2 {
		t.Errorf("b summary = %+v", b)
	}
}

func TestValidBasicSlices(t *testing.T) {
	ds := describeDataset()
	got := ValidBasicSlices(ds, 5)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("ValidBasicSlices(5) = %v, want [1 2]", got)
	}
	got = ValidBasicSlices(ds, 1)
	if !reflect.DeepEqual(got, []int{2, 2}) {
		t.Fatalf("ValidBasicSlices(1) = %v, want [2 2]", got)
	}
}

func TestSkewRank(t *testing.T) {
	ds := describeDataset()
	got := SkewRank(ds)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("SkewRank = %v, want [0 1] (a is more concentrated)", got)
	}
}
