package frame

import (
	"encoding/gob"
	"fmt"
	"io"
)

// datasetWire is the gob wire format of a Dataset, kept separate from the
// in-memory type so the storage layout can evolve independently.
type datasetWire struct {
	Name     string
	Rows     int
	Cols     int
	Data     []int
	Features []Feature
	Y        []float64
}

// WriteDataset serializes a dataset in a compact binary (gob) form, used to
// cache expensive synthetic generations and to ship datasets to workers.
func WriteDataset(w io.Writer, ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	wire := datasetWire{
		Name:     ds.Name,
		Rows:     ds.X0.Rows,
		Cols:     ds.X0.Cols,
		Data:     ds.X0.Data,
		Features: ds.Features,
		Y:        ds.Y,
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("frame: encoding dataset: %w", err)
	}
	return nil
}

// ReadDataset deserializes a dataset written by WriteDataset, validating its
// structural invariants.
func ReadDataset(r io.Reader) (*Dataset, error) {
	var wire datasetWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("frame: decoding dataset: %w", err)
	}
	if len(wire.Data) != wire.Rows*wire.Cols {
		return nil, fmt.Errorf("frame: corrupt dataset: %d cells for %dx%d", len(wire.Data), wire.Rows, wire.Cols)
	}
	ds := &Dataset{
		Name:     wire.Name,
		X0:       &IntMatrix{Rows: wire.Rows, Cols: wire.Cols, Data: wire.Data},
		Features: wire.Features,
		Y:        wire.Y,
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}
