package frame

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRecodeHashDeterministicAndInRange(t *testing.T) {
	vals := []string{"alpha", "beta", "gamma", "alpha", "delta"}
	codes := RecodeHash(vals, 8)
	for i, c := range codes {
		if c < 1 || c > 8 {
			t.Fatalf("code %d out of [1,8] at %d", c, i)
		}
	}
	if codes[0] != codes[3] {
		t.Fatal("equal values hashed to different codes")
	}
	again := RecodeHash(vals, 8)
	for i := range codes {
		if codes[i] != again[i] {
			t.Fatal("hashing not deterministic")
		}
	}
}

func TestRecodeHashSingleBucket(t *testing.T) {
	codes := RecodeHash([]string{"a", "b"}, 1)
	if codes[0] != 1 || codes[1] != 1 {
		t.Fatalf("codes = %v, want all 1", codes)
	}
}

func TestRecodeHashPanicsOnBadBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RecodeHash([]string{"x"}, 0)
}

func TestBinEquiHeightBalanced(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	codes, _ := BinEquiHeight(vals, 4)
	counts := map[int]int{}
	for _, c := range codes {
		counts[c]++
	}
	if len(counts) != 4 {
		t.Fatalf("distinct bins = %d, want 4", len(counts))
	}
	for b, c := range counts {
		if c != 25 {
			t.Errorf("bin %d has %d values, want 25", b, c)
		}
	}
}

func TestBinEquiHeightSkewedCollapses(t *testing.T) {
	// 90% identical values: quantile cuts collide and bins collapse, but
	// codes must remain a continuous 1..d range.
	vals := make([]float64, 100)
	for i := 90; i < 100; i++ {
		vals[i] = float64(i)
	}
	codes, _ := BinEquiHeight(vals, 10)
	maxCode := 0
	seen := map[int]bool{}
	for _, c := range codes {
		seen[c] = true
		if c > maxCode {
			maxCode = c
		}
	}
	if len(seen) != maxCode {
		t.Fatalf("codes not continuous: %d distinct, max %d", len(seen), maxCode)
	}
	if maxCode >= 10 {
		t.Fatalf("expected collapsed bins, got %d", maxCode)
	}
}

func TestBinEquiHeightEmptyAndSingle(t *testing.T) {
	codes, _ := BinEquiHeight(nil, 3)
	if len(codes) != 0 {
		t.Fatal("non-empty codes for empty input")
	}
	codes, _ = BinEquiHeight([]float64{7}, 3)
	if len(codes) != 1 || codes[0] != 1 {
		t.Fatalf("single value codes = %v, want [1]", codes)
	}
}

func TestBinEquiHeightCodesContinuousProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(rng.Intn(20)) // heavy ties
		}
		bins := 1 + rng.Intn(8)
		codes, _ := BinEquiHeight(vals, bins)
		seen := map[int]bool{}
		maxCode := 0
		for _, c := range codes {
			if c < 1 {
				return false
			}
			seen[c] = true
			if c > maxCode {
				maxCode = c
			}
		}
		// Continuous 1..d and order-preserving: larger value → >= code.
		if len(seen) != maxCode {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if vals[i] < vals[j] && codes[i] > codes[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
