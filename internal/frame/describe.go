package frame

import "sort"

// FeatureSummary describes the empirical value distribution of one encoded
// feature: per-code counts and the concentration statistics that drive
// SliceLine's enumeration behaviour (the support of a basic slice is
// exactly a code count).
type FeatureSummary struct {
	Name     string
	Domain   int
	Counts   []int   // Counts[v-1] = rows with code v
	TopCode  int     // most frequent code (1-based)
	TopShare float64 // fraction of rows holding TopCode
	Distinct int     // codes that actually occur
}

// Describe computes per-feature summaries of a dataset.
func Describe(ds *Dataset) []FeatureSummary {
	out := make([]FeatureSummary, ds.NumFeatures())
	n := ds.NumRows()
	for j, f := range ds.Features {
		s := FeatureSummary{Name: f.Name, Domain: f.Domain, Counts: make([]int, f.Domain)}
		for i := 0; i < n; i++ {
			s.Counts[ds.X0.At(i, j)-1]++
		}
		best := 0
		for v, c := range s.Counts {
			if c > 0 {
				s.Distinct++
			}
			if c > s.Counts[best] {
				best = v
			}
		}
		s.TopCode = best + 1
		if n > 0 {
			s.TopShare = float64(s.Counts[best]) / float64(n)
		}
		out[j] = s
	}
	return out
}

// ValidBasicSlices returns, per feature, how many of its codes have support
// at least sigma — the number of valid basic slices the feature contributes
// at lattice level 1, a direct predictor of enumeration cost.
func ValidBasicSlices(ds *Dataset, sigma int) []int {
	sums := Describe(ds)
	out := make([]int, len(sums))
	for j, s := range sums {
		for _, c := range s.Counts {
			if c >= sigma {
				out[j]++
			}
		}
	}
	return out
}

// SkewRank orders features by the share of their most frequent code,
// descending — the most concentrated features first. It returns feature
// indices.
func SkewRank(ds *Dataset) []int {
	sums := Describe(ds)
	idx := make([]int, len(sums))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return sums[idx[a]].TopShare > sums[idx[b]].TopShare
	})
	return idx
}
