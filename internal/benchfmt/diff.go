package benchfmt

import (
	"fmt"
	"io"
	"math"
)

// DefaultMaxRegress is the allowed fractional ns/op growth on gated
// benchmarks before the comparator fails: 15%, loose enough to absorb
// runner noise on single-threaded benchmarks, tight enough to catch a real
// kernel regression (the bitset-vs-CSR gap this gate protects is ≥2×).
const DefaultMaxRegress = 0.15

// Finding is the comparison result for one benchmark metric.
type Finding struct {
	Name   string  // benchmark name
	Metric string  // "ns/op" or "allocs/op"
	Old    float64 // baseline value
	New    float64 // current value
	Delta  float64 // fractional change, (new-old)/old; +Inf when old == 0
	Gated  bool    // participates in the pass/fail decision
	Failed bool    // gated and regressed beyond the allowance
}

func (f Finding) String() string {
	verdict := "ok"
	if f.Failed {
		verdict = "FAIL"
	} else if !f.Gated {
		verdict = "info"
	}
	return fmt.Sprintf("%-4s %-34s %-10s %14.1f -> %14.1f  (%+.1f%%)",
		verdict, f.Name, f.Metric, f.Old, f.New, 100*f.Delta)
}

// Diff compares a freshly measured file against the committed baseline.
// Every gated baseline benchmark must exist in current — a missing or
// renamed gated benchmark is an error, never a silent pass. Gated
// benchmarks fail on ns/op growth beyond maxRegress (<= 0 selects
// DefaultMaxRegress) and on any allocs/op growth; improvements always
// pass. Ungated benchmarks present in both files are reported
// informationally and never fail.
//
// The returned failed flag is true when any finding failed; err reports
// structural problems (a gated benchmark missing from current).
func Diff(baseline, current File, maxRegress float64) (findings []Finding, failed bool, err error) {
	if maxRegress <= 0 {
		maxRegress = DefaultMaxRegress
	}
	for _, base := range baseline.Benchmarks {
		cur, ok := current.Lookup(base.Name)
		if !ok {
			if base.Gate {
				return nil, false, fmt.Errorf(
					"benchfmt: gated benchmark %q missing from current run (renamed? refresh the baseline)", base.Name)
			}
			continue
		}
		ns := Finding{
			Name:   base.Name,
			Metric: "ns/op",
			Old:    base.NsPerOp,
			New:    cur.NsPerOp,
			Delta:  frac(base.NsPerOp, cur.NsPerOp),
			Gated:  base.Gate,
		}
		ns.Failed = ns.Gated && ns.Delta > maxRegress
		al := Finding{
			Name:   base.Name,
			Metric: "allocs/op",
			Old:    float64(base.AllocsPerOp),
			New:    float64(cur.AllocsPerOp),
			Delta:  frac(float64(base.AllocsPerOp), float64(cur.AllocsPerOp)),
			Gated:  base.Gate,
		}
		// Any allocation growth on a gated benchmark fails: the hot loops
		// this gate covers are pinned at their exact committed footprint
		// (0 allocs/op for the bitset level loop).
		al.Failed = al.Gated && cur.AllocsPerOp > base.AllocsPerOp
		findings = append(findings, ns, al)
		failed = failed || ns.Failed || al.Failed
	}
	return findings, failed, nil
}

// frac returns the fractional change from old to cur. A zero old value with
// a non-zero cur value is an infinite regression (e.g. 0 -> 1 allocs/op).
func frac(old, cur float64) float64 {
	switch {
	case old == cur:
		return 0
	case old == 0:
		if cur > 0 {
			return math.Inf(1)
		}
		return -1
	default:
		return (cur - old) / old
	}
}

// Report writes the findings as an aligned text table.
func Report(w io.Writer, findings []Finding) error {
	for _, f := range findings {
		if _, err := fmt.Fprintln(w, f); err != nil {
			return err
		}
	}
	return nil
}
