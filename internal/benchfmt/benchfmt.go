// Package benchfmt defines the committed benchmark artifact format
// (BENCH_<date>.json) and the regression comparator behind cmd/slbenchdiff.
//
// The artifact is the repo's perf trajectory: cmd/slbench -bench-out writes
// one File per run, the current one is committed next to the code, and CI
// re-measures and diffs against it. Entries with Gate set participate in the
// regression gate — a gated benchmark that gets slower than the committed
// baseline by more than the allowed fraction (ns/op), or allocates more per
// op at all, fails the build.
package benchfmt

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// SchemaVersion is the format version stamped into every file. Readers
// reject other versions instead of guessing.
const SchemaVersion = 1

// Machine records where a benchmark file was measured. Cross-machine ns/op
// comparisons are noisy; the gate is meant to compare files from the same
// class of machine (the CI runner re-measures rather than trusting clocks
// from a developer laptop).
type Machine struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// Benchmark is one measured experiment.
type Benchmark struct {
	// Name identifies the experiment, e.g. "eval/bitset/pairs-l2". Names are
	// stable across runs; renaming a gated benchmark without refreshing the
	// baseline is a gate error, not a silent pass.
	Name string `json:"name"`
	// NsPerOp is the wall-clock cost of one operation.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are the steady-state heap footprint.
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// RowsPerSec is dataset rows scanned per second (rows × iterations /
	// elapsed), the throughput form the kernel comparisons report. Zero when
	// the experiment has no natural row count.
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
	// Gate marks the benchmark as regression-gated in CI.
	Gate bool `json:"gate,omitempty"`
}

// File is one committed benchmark artifact.
type File struct {
	SchemaVersion int     `json:"schema_version"`
	Generated     string  `json:"generated"` // RFC3339 UTC timestamp of the run
	Machine       Machine `json:"machine"`
	// Seed is the dataset-generation seed the suite ran with; baseline and
	// candidate must measure the same workload.
	Seed       int64       `json:"seed"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// ErrMalformed wraps every reader-side validation failure, matchable with
// errors.Is.
var ErrMalformed = errors.New("malformed benchmark file")

// Read strictly decodes and validates a benchmark file: unknown fields,
// trailing garbage, wrong schema versions, duplicate or empty names and
// out-of-domain measurements are all rejected, so the comparator never
// gates on garbage.
func Read(r io.Reader) (File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return f, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return f, fmt.Errorf("%w: trailing data after document", ErrMalformed)
	}
	return f, f.validate()
}

// ReadFile reads and validates the benchmark file at path.
func ReadFile(path string) (File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return File{}, err
	}
	defer fh.Close()
	f, err := Read(fh)
	if err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

func (f File) validate() error {
	if f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("%w: schema_version %d (want %d)", ErrMalformed, f.SchemaVersion, SchemaVersion)
	}
	if len(f.Benchmarks) == 0 {
		return fmt.Errorf("%w: no benchmarks", ErrMalformed)
	}
	seen := make(map[string]bool, len(f.Benchmarks))
	for i, b := range f.Benchmarks {
		if b.Name == "" {
			return fmt.Errorf("%w: benchmark %d has no name", ErrMalformed, i)
		}
		if seen[b.Name] {
			return fmt.Errorf("%w: duplicate benchmark %q", ErrMalformed, b.Name)
		}
		seen[b.Name] = true
		if b.NsPerOp <= 0 {
			return fmt.Errorf("%w: benchmark %q: ns_per_op %v out of domain", ErrMalformed, b.Name, b.NsPerOp)
		}
		if b.AllocsPerOp < 0 || b.BytesPerOp < 0 || b.RowsPerSec < 0 {
			return fmt.Errorf("%w: benchmark %q: negative measurement", ErrMalformed, b.Name)
		}
	}
	return nil
}

// Write emits the canonical on-disk form: indented JSON with a trailing
// newline, benchmarks in the order given. It validates before writing so a
// file that Write accepts always round-trips through Read.
func Write(w io.Writer, f File) error {
	if err := f.validate(); err != nil {
		return err
	}
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// Lookup returns the benchmark with the given name.
func (f File) Lookup(name string) (Benchmark, bool) {
	for _, b := range f.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
