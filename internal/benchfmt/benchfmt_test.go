package benchfmt

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func validFile() File {
	return File{
		SchemaVersion: SchemaVersion,
		Generated:     "2026-08-08T00:00:00Z",
		Machine:       Machine{GOOS: "linux", GOARCH: "amd64", NumCPU: 4, GoVersion: "go1.24.0"},
		Seed:          1,
		Benchmarks: []Benchmark{
			{Name: "eval/bitset/pairs-l2", NsPerOp: 100000, AllocsPerOp: 0, BytesPerOp: 0, RowsPerSec: 2e7, Gate: true},
			{Name: "eval/csr/pairs-l2", NsPerOp: 2000000, AllocsPerOp: 330, BytesPerOp: 13312, RowsPerSec: 1e6, Gate: true},
			{Name: "run/bitset-on", NsPerOp: 2200000, AllocsPerOp: 13888, BytesPerOp: 1652212},
		},
	}
}

// TestGoldenRoundTrip pins the on-disk schema: the committed golden file
// must read cleanly, and writing it back must reproduce it byte for byte —
// any schema change that breaks committed BENCH_*.json artifacts fails here
// before it lands.
func TestGoldenRoundTrip(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	f, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden file does not read: %v", err)
	}
	if f.SchemaVersion != SchemaVersion || f.Seed != 1 || len(f.Benchmarks) != 3 {
		t.Fatalf("golden decoded wrong: %+v", f)
	}
	b, ok := f.Lookup("eval/bitset/pairs-l2")
	if !ok || !b.Gate || b.AllocsPerOp != 0 {
		t.Fatalf("golden gated benchmark decoded wrong: %+v", b)
	}
	if r, ok := f.Lookup("run/bitset-on"); !ok || r.Gate {
		t.Fatalf("golden ungated benchmark decoded wrong: %+v", r)
	}
	var out bytes.Buffer
	if err := Write(&out, f); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), raw) {
		t.Fatalf("golden round-trip not byte-identical:\n--- written ---\n%s\n--- committed ---\n%s", out.Bytes(), raw)
	}
}

// TestWriteReadRoundTrip: any file Write accepts must round-trip through
// Read to an equal value.
func TestWriteReadRoundTrip(t *testing.T) {
	f := validFile()
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generated != f.Generated || got.Machine != f.Machine || got.Seed != f.Seed {
		t.Fatalf("header did not round-trip: %+v", got)
	}
	if len(got.Benchmarks) != len(f.Benchmarks) {
		t.Fatalf("benchmark count did not round-trip: %d", len(got.Benchmarks))
	}
	for i, b := range f.Benchmarks {
		if got.Benchmarks[i] != b {
			t.Fatalf("benchmark %d did not round-trip: %+v vs %+v", i, got.Benchmarks[i], b)
		}
	}
}

// TestReadRejectsMalformed: every structurally broken input is rejected
// with ErrMalformed instead of gating on garbage.
func TestReadRejectsMalformed(t *testing.T) {
	mutate := func(f func(*File)) string {
		v := validFile()
		f(&v)
		out, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	cases := map[string]string{
		"not json":          "][",
		"empty":             "",
		"unknown field":     `{"schema_version":1,"generated":"x","machine":{"goos":"l","goarch":"a","num_cpu":1,"go_version":"g"},"seed":1,"surprise":true,"benchmarks":[{"name":"a","ns_per_op":1,"allocs_per_op":0,"bytes_per_op":0}]}`,
		"trailing garbage":  mutate(func(*File) {}) + `{"again":true}`,
		"wrong version":     mutate(func(f *File) { f.SchemaVersion = 99 }),
		"zero version":      mutate(func(f *File) { f.SchemaVersion = 0 }),
		"no benchmarks":     mutate(func(f *File) { f.Benchmarks = nil }),
		"unnamed benchmark": mutate(func(f *File) { f.Benchmarks[0].Name = "" }),
		"duplicate name":    mutate(func(f *File) { f.Benchmarks[1].Name = f.Benchmarks[0].Name }),
		"zero ns":           mutate(func(f *File) { f.Benchmarks[0].NsPerOp = 0 }),
		"negative ns":       mutate(func(f *File) { f.Benchmarks[0].NsPerOp = -5 }),
		"negative allocs":   mutate(func(f *File) { f.Benchmarks[0].AllocsPerOp = -1 }),
		"negative rows/s":   mutate(func(f *File) { f.Benchmarks[0].RowsPerSec = -1 }),
	}
	for name, input := range cases {
		if _, err := Read(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if input != "" && input != "][" && !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v does not wrap ErrMalformed", name, err)
		}
	}
}

// TestWriteRejectsInvalid: Write validates too, so a buggy measurement run
// can never produce a baseline that later fails to read.
func TestWriteRejectsInvalid(t *testing.T) {
	f := validFile()
	f.Benchmarks[0].NsPerOp = -1
	if err := Write(&bytes.Buffer{}, f); err == nil {
		t.Fatal("Write accepted an out-of-domain measurement")
	}
}

// TestDiffRegressionDetected: a gated ns/op regression beyond the allowance
// and any gated allocs/op growth both fail.
func TestDiffRegressionDetected(t *testing.T) {
	base := validFile()
	cur := validFile()
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 1.5 // +50% > 15%
	findings, failed, err := Diff(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("+50%% ns/op on a gated benchmark passed the gate")
	}
	assertFinding(t, findings, "eval/bitset/pairs-l2", "ns/op", true)

	cur = validFile()
	cur.Benchmarks[0].AllocsPerOp = 1 // 0 -> 1 allocs
	findings, failed, err = Diff(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Fatal("allocs/op growth on a gated benchmark passed the gate")
	}
	assertFinding(t, findings, "eval/bitset/pairs-l2", "allocs/op", true)
	for _, fd := range findings {
		if fd.Name == "eval/bitset/pairs-l2" && fd.Metric == "allocs/op" && !math.IsInf(fd.Delta, 1) {
			t.Fatalf("0 -> 1 allocs delta = %v, want +Inf", fd.Delta)
		}
	}
}

// TestDiffImprovementAndNoisePass: improvements and small regressions
// within the allowance pass; ungated entries never fail.
func TestDiffImprovementAndNoisePass(t *testing.T) {
	base := validFile()
	cur := validFile()
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 0.5  // 2x faster
	cur.Benchmarks[1].NsPerOp = base.Benchmarks[1].NsPerOp * 1.10 // +10% < 15%
	cur.Benchmarks[2].NsPerOp = base.Benchmarks[2].NsPerOp * 9    // ungated: any growth ok
	cur.Benchmarks[2].AllocsPerOp = base.Benchmarks[2].AllocsPerOp * 2
	findings, failed, err := Diff(base, cur, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Fatalf("improvement/noise run failed the gate: %+v", findings)
	}
	for _, fd := range findings {
		if fd.Name == "run/bitset-on" && fd.Gated {
			t.Fatal("ungated benchmark marked gated")
		}
	}
}

// TestDiffMissingGatedBenchmark: a gated baseline entry absent from the
// current run (renamed without a baseline refresh) is an error, never a
// silent pass. A missing ungated entry is skipped.
func TestDiffMissingGatedBenchmark(t *testing.T) {
	base := validFile()
	cur := validFile()
	cur.Benchmarks[0].Name = "eval/bitset/pairs-l2-renamed"
	if _, _, err := Diff(base, cur, 0.15); err == nil {
		t.Fatal("missing gated benchmark did not error")
	}
	cur = validFile()
	cur.Benchmarks = cur.Benchmarks[:2] // drop the ungated run/bitset-on
	if _, failed, err := Diff(base, cur, 0.15); err != nil || failed {
		t.Fatalf("missing ungated benchmark: failed=%v err=%v", failed, err)
	}
}

// TestDiffDefaultAllowance: maxRegress <= 0 selects DefaultMaxRegress.
func TestDiffDefaultAllowance(t *testing.T) {
	base := validFile()
	cur := validFile()
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 1.10
	if _, failed, err := Diff(base, cur, 0); err != nil || failed {
		t.Fatalf("+10%% under default allowance: failed=%v err=%v", failed, err)
	}
	cur.Benchmarks[0].NsPerOp = base.Benchmarks[0].NsPerOp * 1.20
	if _, failed, err := Diff(base, cur, 0); err != nil || !failed {
		t.Fatalf("+20%% under default allowance: failed=%v err=%v", failed, err)
	}
}

func assertFinding(t *testing.T, findings []Finding, name, metric string, wantFailed bool) {
	t.Helper()
	for _, f := range findings {
		if f.Name == name && f.Metric == metric {
			if f.Failed != wantFailed {
				t.Fatalf("finding %s %s: failed=%v, want %v", name, metric, f.Failed, wantFailed)
			}
			return
		}
	}
	t.Fatalf("no finding for %s %s", name, metric)
}
