// Package version derives a human-readable build identifier from the Go
// build metadata (runtime/debug.ReadBuildInfo), so every binary can answer
// -version and the server can report what it is running without any
// link-time -ldflags ceremony.
package version

import (
	"runtime/debug"
)

// String returns the build identifier: the module version when built from a
// tagged module, otherwise "devel", suffixed with the VCS revision (and a
// ".dirty" marker for modified trees) when the build embedded one.
func String() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	v := info.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		v += "+" + rev
		if dirty {
			v += ".dirty"
		}
	}
	return v
}
