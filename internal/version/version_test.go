package version

import (
	"strings"
	"testing"
)

func TestStringNonEmptyAndStable(t *testing.T) {
	v := String()
	if v == "" {
		t.Fatal("version.String returned empty")
	}
	if strings.ContainsAny(v, " \n\t") {
		t.Fatalf("version %q contains whitespace", v)
	}
	if v != String() {
		t.Fatal("version.String is not stable across calls")
	}
}
