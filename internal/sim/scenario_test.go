package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

const validScenarioDoc = `{
  "schema_version": 1,
  "name": "smoke",
  "seed": 42,
  "workers": 4,
  "partitions": 4,
  "rows": 4000,
  "bytes_per_row": 64,
  "bandwidth_mbps": 100,
  "levels": [10, 20],
  "topology": {"kind": "two-tier", "racks": 2,
    "local_ms": {"kind": "uniform", "min": 0.1, "max": 0.3},
    "cross_ms": {"kind": "constant", "value": 0.5}},
  "service": {"per_pair_ns": {"kind": "lognormal", "mu": 5, "sigma": 0.2}},
  "faults": {
    "crashes": [{"worker": 1, "at_ms": 10, "down_ms": 50}],
    "script": [{"worker": 2, "op": "eval", "call": 0, "kind": "delay", "delay_ms": 5}]
  },
  "grid": {"hedge_mult": [0, 2.0], "heartbeat_ms": [100]}
}`

func TestDecodeScenario(t *testing.T) {
	sc, err := DecodeScenario(strings.NewReader(validScenarioDoc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "smoke" || sc.Workers != 4 || len(sc.Levels) != 2 {
		t.Fatalf("decoded scenario %+v", sc)
	}
	if len(sc.Grid.Points()) != 2 {
		t.Fatalf("grid points = %d, want 2", len(sc.Grid.Points()))
	}
}

func TestDecodeScenarioRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":    strings.Replace(validScenarioDoc, `"seed": 42`, `"seed": 42, "bogus": 1`, 1),
		"trailing garbage": validScenarioDoc + `{"more": true}`,
		"wrong version":    strings.Replace(validScenarioDoc, `"schema_version": 1`, `"schema_version": 9`, 1),
		"bad fault op":     strings.Replace(validScenarioDoc, `"op": "eval"`, `"op": "explode"`, 1),
		"bad fault kind":   strings.Replace(validScenarioDoc, `"kind": "delay", "delay_ms": 5`, `"kind": "meteor"`, 1),
		"worker oob":       strings.Replace(validScenarioDoc, `"crashes": [{"worker": 1`, `"crashes": [{"worker": 99`, 1),
		"no levels":        strings.Replace(validScenarioDoc, `"levels": [10, 20]`, `"levels": []`, 1),
		"bad topology":     strings.Replace(validScenarioDoc, `"kind": "two-tier", "racks": 2`, `"kind": "mesh"`, 1),
	}
	for name, doc := range cases {
		if _, err := DecodeScenario(strings.NewReader(doc)); !errors.Is(err, ErrBadScenario) {
			t.Errorf("%s: err = %v, want ErrBadScenario", name, err)
		}
	}
}

func TestDecodeReportRejects(t *testing.T) {
	var buf bytes.Buffer
	sc, err := DecodeScenario(strings.NewReader(validScenarioDoc))
	if err != nil {
		t.Fatal(err)
	}
	sc.Grid = Grid{HeartbeatMS: []int{100}}
	if err := EncodeReport(&buf, Sweep(sc)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReport(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("round-trip failed: %v", err)
	}
	mangled := strings.Replace(buf.String(), `"schema_version": 1`, `"schema_version": 3`, 1)
	if _, err := DecodeReport(strings.NewReader(mangled)); !errors.Is(err, ErrBadReport) {
		t.Fatalf("wrong report version accepted: %v", err)
	}
	if _, err := DecodeReport(strings.NewReader(buf.String() + "junk")); !errors.Is(err, ErrBadReport) {
		t.Fatal("trailing garbage accepted")
	}
}

// FuzzDecodeScenario drives the strict scenario decoder with arbitrary
// bytes: it must never panic, and anything it accepts must re-validate and
// survive an encode/decode round trip.
func FuzzDecodeScenario(f *testing.F) {
	f.Add([]byte(validScenarioDoc))
	f.Add([]byte(`{"schema_version":1,"name":"x","seed":0,"workers":1,"partitions":1,` +
		`"rows":1,"bytes_per_row":1,"bandwidth_mbps":1,"levels":[1],` +
		`"topology":{"kind":"star","local_ms":{}},"service":{"per_pair_ns":{"value":1}},"grid":{}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := DecodeScenario(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := sc.Validate(); verr != nil {
			t.Fatalf("decoder accepted a scenario Validate rejects: %v", verr)
		}
		b, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		if _, err := DecodeScenario(bytes.NewReader(b)); err != nil {
			t.Fatalf("accepted scenario does not round-trip: %v", err)
		}
	})
}
