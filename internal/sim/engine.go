package sim

import (
	"container/heap"
	"errors"
	"time"
)

// engine is the discrete-event core: a priority queue of callbacks keyed by
// virtual time, with a strictly monotone clock. Ties break on insertion
// order (a monotone sequence number), so execution order is a pure function
// of the schedule — never of map iteration or goroutine timing.
type engine struct {
	now    time.Duration
	seq    uint64
	pq     eventHeap
	nSteps int64
}

// timer is a cancellable scheduled event.
type timer struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
}

// stop cancels the event; a stopped event's callback never runs.
func (t *timer) stop() { t.stopped = true }

type eventHeap []*timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*timer)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// at schedules fn at absolute virtual time t (clamped to now).
func (e *engine) at(t time.Duration, fn func()) *timer {
	if t < e.now {
		t = e.now
	}
	tm := &timer{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, tm)
	return tm
}

// after schedules fn d from now.
func (e *engine) after(d time.Duration, fn func()) *timer {
	return e.at(e.now+d, fn)
}

// errStalled reports a simulation whose pending work can never complete —
// e.g. a hung RPC with no call timeout and no hedge to rescue it.
var errStalled = errors.New("sim: simulation stalled: pending work but no scheduled events (hint: set call_timeout_ms or enable hedging)")

// errRunaway bounds the event count; a scenario tripping it is almost
// certainly a bug or absurdly over-scaled.
var errRunaway = errors.New("sim: event budget exhausted")

// maxEvents bounds one run. Committed scenarios use a few hundred thousand
// events; 50M leaves two orders of magnitude of headroom.
const maxEvents = 50_000_000

// runUntil executes events in time order until done() reports true. It
// returns errStalled when the queue empties first and errRunaway past the
// event budget.
func (e *engine) runUntil(done func() bool) error {
	for !done() {
		var tm *timer
		for {
			if e.pq.Len() == 0 {
				return errStalled
			}
			tm = heap.Pop(&e.pq).(*timer)
			if !tm.stopped {
				break
			}
		}
		if e.nSteps++; e.nSteps > maxEvents {
			return errRunaway
		}
		e.now = tm.at
		tm.fn()
	}
	return nil
}
