package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"sliceline/internal/dist"
	"sliceline/internal/faults"
	"sliceline/internal/membership"
)

// ScenarioSchemaVersion is the scenario-file format version. Readers reject
// other versions instead of guessing.
const ScenarioSchemaVersion = 1

// ErrBadScenario wraps every scenario validation failure, matchable with
// errors.Is.
var ErrBadScenario = errors.New("sim: malformed scenario")

// Topology declares how driver↔worker latency is shaped.
//
//   - "star": every message samples one-way latency from LocalMS.
//   - "two-tier": workers sit in Racks racks (worker w in rack w mod Racks,
//     the driver in rack 0); a message to a worker outside rack 0 pays
//     LocalMS plus a CrossMS spine hop.
type Topology struct {
	Kind    string `json:"kind"`
	Racks   int    `json:"racks,omitempty"`
	LocalMS Dist   `json:"local_ms"`
	CrossMS Dist   `json:"cross_ms,omitempty"`
}

// Service declares per-call evaluation cost: one Eval on a partition of R
// rows with C candidate slices costs R·C·PerPairNS nanoseconds, scaled by
// the worker's permanent straggler multiplier (drawn once per worker with
// probability StragglerProb from StragglerMult) and a per-call transient
// multiplier (TransientMult; omitted means exactly 1).
type Service struct {
	PerPairNS     Dist    `json:"per_pair_ns"`
	TransientMult Dist    `json:"transient_mult,omitempty"`
	StragglerProb float64 `json:"straggler_prob,omitempty"`
	StragglerMult Dist    `json:"straggler_mult,omitempty"`
}

// CrashSpec takes one worker down at AtMS for DownMS (0 = forever).
type CrashSpec struct {
	Worker int     `json:"worker"`
	AtMS   float64 `json:"at_ms"`
	DownMS float64 `json:"down_ms,omitempty"`
}

// FlapSpec cycles one worker from FromMS on: up for UpMS, down for the rest
// of each PeriodMS window, forever.
type FlapSpec struct {
	Worker   int     `json:"worker"`
	FromMS   float64 `json:"from_ms,omitempty"`
	PeriodMS float64 `json:"period_ms"`
	UpMS     float64 `json:"up_ms"`
}

// SplitSpec makes one worker unreachable (packets silently dropped — calls
// time out rather than fail fast) from AtMS until AtMS+HealMS (0 = forever).
type SplitSpec struct {
	Worker int     `json:"worker"`
	AtMS   float64 `json:"at_ms"`
	HealMS float64 `json:"heal_ms,omitempty"`
}

// ScriptRule scripts one explicit per-call fault with the internal/faults
// DSL verbs: Op ∈ {load, eval, ping}, Kind ∈ {delay, hang, crash-before,
// crash-after, short-reply, corrupt-reply}. Call counts per (worker, op)
// from 0, exactly like faults.Schedule.On.
type ScriptRule struct {
	Worker  int     `json:"worker"`
	Op      string  `json:"op"`
	Call    int     `json:"call"`
	Kind    string  `json:"kind"`
	DelayMS float64 `json:"delay_ms,omitempty"`
}

// SeededSpec applies a faults.Seeded schedule (per-mille probabilities per
// call) to every worker, each with its own derived seed.
type SeededSpec struct {
	Seed                int64   `json:"seed"`
	DelayPerMille       int     `json:"delay_per_mille,omitempty"`
	HangPerMille        int     `json:"hang_per_mille,omitempty"`
	CrashBeforePerMille int     `json:"crash_before_per_mille,omitempty"`
	CrashAfterPerMille  int     `json:"crash_after_per_mille,omitempty"`
	ShortPerMille       int     `json:"short_per_mille,omitempty"`
	CorruptPerMille     int     `json:"corrupt_per_mille,omitempty"`
	MaxDelayMS          float64 `json:"max_delay_ms,omitempty"`
}

// FaultPlan is the scenario's failure script.
type FaultPlan struct {
	Crashes    []CrashSpec  `json:"crashes,omitempty"`
	Flaps      []FlapSpec   `json:"flaps,omitempty"`
	Partitions []SplitSpec  `json:"partitions,omitempty"`
	Script     []ScriptRule `json:"script,omitempty"`
	Seeded     *SeededSpec  `json:"seeded,omitempty"`
}

// MembershipPlan enables the elastic lease-membership model: workers
// announce every granted-lease/2 (the Announcer discipline), a registrar
// scan every LeaseMS strikes out silent members per membership.LeaseStep,
// and every view change rebuilds the consistent-hash ring and rebalances
// partition placement onto it (warm re-attach when the owner still holds
// the partition). Implies driver-local fallback, like dist.ElasticCluster.
type MembershipPlan struct {
	LeaseMS int `json:"lease_ms,omitempty"`
	Strikes int `json:"strikes,omitempty"`
}

// Grid is the knob sweep: the cross product of all axes is simulated, one
// RunResult per point, every point re-running the identical scenario seed so
// comparisons are paired. An omitted axis pins the knob to the runtime
// default (dist.Default*).
type Grid struct {
	CallTimeoutMS []int     `json:"call_timeout_ms,omitempty"`
	HedgeAfterMS  []int     `json:"hedge_after_ms,omitempty"`
	HedgeMult     []float64 `json:"hedge_mult,omitempty"`
	HeartbeatMS   []int     `json:"heartbeat_ms,omitempty"`
	Strikes       []int     `json:"strikes,omitempty"`
	// LeaseStrikes sweeps the registrar strike limit; only meaningful when
	// the scenario has a membership plan. 0 (or omitted) inherits the plan's
	// own strikes setting.
	LeaseStrikes []int `json:"lease_strikes,omitempty"`
}

// Scenario is one declarative simulator experiment.
type Scenario struct {
	SchemaVersion int    `json:"schema_version"`
	Name          string `json:"name"`
	Seed          uint64 `json:"seed"`

	Workers    int `json:"workers"`
	Partitions int `json:"partitions"`

	Rows          int     `json:"rows"`
	BytesPerRow   int     `json:"bytes_per_row"`
	BandwidthMBps float64 `json:"bandwidth_mbps"`
	Levels        []int   `json:"levels"` // candidate count per lattice level

	Topology   Topology        `json:"topology"`
	Service    Service         `json:"service"`
	Faults     *FaultPlan      `json:"faults,omitempty"`
	Membership *MembershipPlan `json:"membership,omitempty"`

	// LocalFallback lets the driver evaluate a partition itself when no live
	// worker remains, like dist.Options.LocalFallback. Forced on in
	// membership (elastic) mode.
	LocalFallback bool `json:"local_fallback,omitempty"`

	Grid Grid `json:"grid"`
}

// DecodeScenario strictly decodes one scenario document: unknown fields,
// trailing garbage, wrong schema versions, and out-of-domain parameters are
// all rejected (the benchfmt discipline), so a sweep never runs on a typo.
func DecodeScenario(r io.Reader) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return s, fmt.Errorf("%w: %v", ErrBadScenario, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return s, fmt.Errorf("%w: trailing data after document", ErrBadScenario)
	}
	return s, s.Validate()
}

// LoadScenario reads and validates the scenario file at path.
func LoadScenario(path string) (Scenario, error) {
	fh, err := os.Open(path)
	if err != nil {
		return Scenario{}, err
	}
	defer fh.Close()
	s, err := DecodeScenario(fh)
	if err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Validate checks the whole document against its domain.
func (s Scenario) Validate() error {
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: %s", ErrBadScenario, fmt.Sprintf(format, args...))
	}
	if s.SchemaVersion != ScenarioSchemaVersion {
		return bad("schema_version %d (want %d)", s.SchemaVersion, ScenarioSchemaVersion)
	}
	if s.Name == "" {
		return bad("scenario has no name")
	}
	if s.Workers < 1 || s.Workers > 10000 {
		return bad("workers %d out of range [1, 10000]", s.Workers)
	}
	if s.Partitions < 1 || s.Partitions > 100000 {
		return bad("partitions %d out of range [1, 100000]", s.Partitions)
	}
	if s.Rows < 1 {
		return bad("rows %d out of range", s.Rows)
	}
	if s.BytesPerRow < 1 {
		return bad("bytes_per_row %d out of range", s.BytesPerRow)
	}
	if s.BandwidthMBps <= 0 {
		return bad("bandwidth_mbps %v out of range", s.BandwidthMBps)
	}
	if len(s.Levels) == 0 {
		return bad("no lattice levels")
	}
	for i, c := range s.Levels {
		if c < 1 {
			return bad("level %d has %d candidates", i, c)
		}
	}
	switch s.Topology.Kind {
	case "star":
	case "two-tier":
		if s.Topology.Racks < 1 {
			return bad("two-tier topology needs racks >= 1, got %d", s.Topology.Racks)
		}
		if err := s.Topology.CrossMS.Validate(); err != nil {
			return bad("topology cross_ms: %v", err)
		}
	default:
		return bad("unknown topology kind %q", s.Topology.Kind)
	}
	if err := s.Topology.LocalMS.Validate(); err != nil {
		return bad("topology local_ms: %v", err)
	}
	if err := s.Service.PerPairNS.Validate(); err != nil {
		return bad("service per_pair_ns: %v", err)
	}
	if !s.Service.TransientMult.IsZero() {
		if err := s.Service.TransientMult.Validate(); err != nil {
			return bad("service transient_mult: %v", err)
		}
	}
	if s.Service.StragglerProb < 0 || s.Service.StragglerProb > 1 {
		return bad("service straggler_prob %v out of [0, 1]", s.Service.StragglerProb)
	}
	if s.Service.StragglerProb > 0 {
		if err := s.Service.StragglerMult.Validate(); err != nil {
			return bad("service straggler_mult: %v", err)
		}
	}
	if s.Faults != nil {
		if err := s.Faults.validate(s.Workers); err != nil {
			return bad("faults: %v", err)
		}
	}
	if s.Membership != nil {
		if s.Membership.LeaseMS < 0 || s.Membership.Strikes < 0 {
			return bad("membership lease_ms/strikes out of range")
		}
	}
	if err := s.Grid.validate(); err != nil {
		return bad("grid: %v", err)
	}
	return nil
}

func (f *FaultPlan) validate(workers int) error {
	checkWorker := func(w int) error {
		if w < 0 || w >= workers {
			return fmt.Errorf("worker %d out of range [0, %d)", w, workers)
		}
		return nil
	}
	for _, c := range f.Crashes {
		if err := checkWorker(c.Worker); err != nil {
			return err
		}
		if c.AtMS < 0 || c.DownMS < 0 {
			return fmt.Errorf("crash times out of range")
		}
	}
	for _, fl := range f.Flaps {
		if err := checkWorker(fl.Worker); err != nil {
			return err
		}
		if fl.PeriodMS <= 0 || fl.UpMS < 0 || fl.UpMS > fl.PeriodMS || fl.FromMS < 0 {
			return fmt.Errorf("flap window out of range")
		}
	}
	for _, sp := range f.Partitions {
		if err := checkWorker(sp.Worker); err != nil {
			return err
		}
		if sp.AtMS < 0 || sp.HealMS < 0 {
			return fmt.Errorf("partition times out of range")
		}
	}
	for _, r := range f.Script {
		if err := checkWorker(r.Worker); err != nil {
			return err
		}
		if _, err := faults.ParseOp(r.Op); err != nil {
			return err
		}
		k, err := faults.ParseKind(r.Kind)
		if err != nil {
			return err
		}
		if k == faults.None {
			return fmt.Errorf("script rule with kind %q is a no-op", r.Kind)
		}
		if r.Call < 0 || r.DelayMS < 0 {
			return fmt.Errorf("script rule call/delay out of range")
		}
	}
	if s := f.Seeded; s != nil {
		for _, pm := range []int{s.DelayPerMille, s.HangPerMille, s.CrashBeforePerMille,
			s.CrashAfterPerMille, s.ShortPerMille, s.CorruptPerMille} {
			if pm < 0 || pm > 1000 {
				return fmt.Errorf("seeded per-mille %d out of [0, 1000]", pm)
			}
		}
		if s.MaxDelayMS < 0 {
			return fmt.Errorf("seeded max_delay_ms out of range")
		}
	}
	return nil
}

func (g Grid) validate() error {
	for _, v := range g.CallTimeoutMS {
		if v < 0 {
			return fmt.Errorf("call_timeout_ms %d out of range", v)
		}
	}
	for _, v := range g.HedgeAfterMS {
		if v < 0 {
			return fmt.Errorf("hedge_after_ms %d out of range", v)
		}
	}
	for _, v := range g.HedgeMult {
		if v < 0 {
			return fmt.Errorf("hedge_mult %v out of range", v)
		}
	}
	for _, v := range g.HeartbeatMS {
		if v < 0 {
			return fmt.Errorf("heartbeat_ms %d out of range", v)
		}
	}
	for _, v := range g.Strikes {
		if v < 1 {
			return fmt.Errorf("strikes %d out of range", v)
		}
	}
	for _, v := range g.LeaseStrikes {
		if v < 1 {
			return fmt.Errorf("lease_strikes %d out of range", v)
		}
	}
	return nil
}

// Knobs is one grid point: the scheduling-policy configuration of one
// simulated run, mirroring dist.Options and the CLI flags.
type Knobs struct {
	CallTimeoutMS int     `json:"call_timeout_ms"`
	HedgeAfterMS  int     `json:"hedge_after_ms"`
	HedgeMult     float64 `json:"hedge_mult"`
	HeartbeatMS   int     `json:"heartbeat_ms"`
	Strikes       int     `json:"strikes"`
	// LeaseStrikes overrides the membership plan's registrar strike limit
	// when >0 (elastic scenarios only).
	LeaseStrikes int `json:"lease_strikes,omitempty"`
}

// CallTimeout returns the per-RPC deadline (0 = none).
func (k Knobs) CallTimeout() time.Duration {
	return time.Duration(k.CallTimeoutMS) * time.Millisecond
}

// Points expands the grid into its cross product, in deterministic
// (row-major) order. Omitted axes pin the runtime defaults.
func (g Grid) Points() []Knobs {
	ct := g.CallTimeoutMS
	if len(ct) == 0 {
		ct = []int{int(dist.DefaultCallTimeout.Milliseconds())}
	}
	ha := g.HedgeAfterMS
	if len(ha) == 0 {
		ha = []int{0}
	}
	hm := g.HedgeMult
	if len(hm) == 0 {
		hm = []float64{dist.DefaultHedgeMultiplier}
	}
	hb := g.HeartbeatMS
	if len(hb) == 0 {
		hb = []int{int(dist.DefaultHeartbeatInterval.Milliseconds())}
	}
	st := g.Strikes
	if len(st) == 0 {
		st = []int{dist.DefaultHeartbeatStrikes}
	}
	ls := g.LeaseStrikes
	if len(ls) == 0 {
		ls = []int{0} // inherit the membership plan's setting
	}
	var out []Knobs
	for _, c := range ct {
		for _, a := range ha {
			for _, m := range hm {
				for _, b := range hb {
					for _, s := range st {
						for _, l := range ls {
							out = append(out, Knobs{
								CallTimeoutMS: c, HedgeAfterMS: a, HedgeMult: m,
								HeartbeatMS: b, Strikes: s, LeaseStrikes: l,
							})
						}
					}
				}
			}
		}
	}
	return out
}

// leaseConfig resolves the membership plan's knobs against the registrar
// defaults.
func (m *MembershipPlan) leaseConfig() (lease time.Duration, strikes int) {
	lease = membership.DefaultLeaseInterval
	if m.LeaseMS > 0 {
		lease = time.Duration(m.LeaseMS) * time.Millisecond
	}
	strikes = membership.DefaultLeaseStrikes
	if m.Strikes > 0 {
		strikes = m.Strikes
	}
	return lease, strikes
}
