package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
)

// ReportSchemaVersion is the report format version; readers reject others.
const ReportSchemaVersion = 1

// ErrBadReport wraps every report validation failure.
var ErrBadReport = errors.New("sim: malformed report")

// RunReport is one grid point's outcome inside a report.
type RunReport struct {
	Knobs   Knobs   `json:"knobs"`
	Metrics Metrics `json:"metrics"`
	Error   string  `json:"error,omitempty"`
}

// Report is the versioned artifact cmd/slsim emits: every grid point's
// metrics plus the winner table. It contains no wall-clock timestamps and no
// map-ordered content, so the same scenario and seed produce byte-identical
// bytes from Encode — the property CI pins.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Scenario      string `json:"scenario"`
	Seed          uint64 `json:"seed"`
	Workers       int    `json:"workers"`
	Partitions    int    `json:"partitions"`
	Levels        []int  `json:"levels"`

	Runs []RunReport `json:"runs"`

	// Winners maps each objective to the knobs of the run that minimized it
	// (failed runs excluded; ties break toward earlier grid order).
	Winners map[string]Knobs `json:"winners"`

	// Recommended minimizes the composite score: normalized makespan + p99
	// level latency, with wasted speculative work as a tiebreaker tax.
	Recommended Knobs `json:"recommended"`
}

// Sweep simulates every grid point of the scenario — each point re-runs the
// identical seed, so knob comparisons are paired — and assembles the report.
func Sweep(sc Scenario) Report {
	rep := Report{
		SchemaVersion: ReportSchemaVersion,
		Scenario:      sc.Name,
		Seed:          sc.Seed,
		Workers:       sc.Workers,
		Partitions:    sc.Partitions,
		Levels:        sc.Levels,
	}
	for _, k := range sc.Grid.Points() {
		res := Run(sc, k)
		rep.Runs = append(rep.Runs, RunReport{Knobs: res.Knobs, Metrics: res.Metrics, Error: res.Err})
	}
	rep.Winners, rep.Recommended = pickWinners(rep.Runs)
	return rep
}

// pickWinners selects, per objective, the knobs minimizing it, and the
// composite recommendation.
func pickWinners(runs []RunReport) (map[string]Knobs, Knobs) {
	objectives := []struct {
		name string
		of   func(Metrics) float64
	}{
		{"makespan_ms", func(m Metrics) float64 { return m.MakespanMS }},
		{"level_p99_ms", func(m Metrics) float64 { return m.LevelP99MS }},
		{"wasted_hedge_ms", func(m Metrics) float64 { return m.WastedHedgeMS }},
		{"bytes_reshipped", func(m Metrics) float64 { return float64(m.BytesReshipped) }},
	}
	winners := make(map[string]Knobs)
	var healthy []RunReport
	for _, r := range runs {
		if r.Error == "" {
			healthy = append(healthy, r)
		}
	}
	if len(healthy) == 0 {
		return winners, Knobs{}
	}
	for _, ob := range objectives {
		best := 0
		for i, r := range healthy {
			if ob.of(r.Metrics) < ob.of(healthy[best].Metrics) {
				best = i
			}
		}
		winners[ob.name] = healthy[best].Knobs
	}
	// Composite: normalize makespan and p99 by their minima (so both weigh
	// equally regardless of scale) and tax wasted speculative work lightly —
	// hedging that buys latency with a little redundant compute should win,
	// hedging that buys nothing should not.
	minOf := func(of func(Metrics) float64) float64 {
		min := math.Inf(1)
		for _, r := range healthy {
			if v := of(r.Metrics); v < min {
				min = v
			}
		}
		if min <= 0 {
			min = 1
		}
		return min
	}
	minMake := minOf(func(m Metrics) float64 { return m.MakespanMS })
	minP99 := minOf(func(m Metrics) float64 { return m.LevelP99MS })
	best, bestScore := 0, math.Inf(1)
	for i, r := range healthy {
		score := r.Metrics.MakespanMS/minMake + r.Metrics.LevelP99MS/minP99 +
			0.1*r.Metrics.WastedHedgeMS/minMake
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return winners, healthy[best].Knobs
}

// EncodeReport writes the canonical byte encoding: two-space indented JSON
// with a trailing newline. Struct-field order and json's sorted map keys
// make the bytes a pure function of the value.
func EncodeReport(w io.Writer, rep Report) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// DecodeReport strictly decodes and validates one report document.
func DecodeReport(r io.Reader) (Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		return rep, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return rep, fmt.Errorf("%w: trailing data after document", ErrBadReport)
	}
	return rep, rep.Validate()
}

// Validate checks a decoded report's integrity.
func (rep Report) Validate() error {
	bad := func(format string, args ...interface{}) error {
		return fmt.Errorf("%w: %s", ErrBadReport, fmt.Sprintf(format, args...))
	}
	if rep.SchemaVersion != ReportSchemaVersion {
		return bad("schema_version %d (want %d)", rep.SchemaVersion, ReportSchemaVersion)
	}
	if rep.Scenario == "" {
		return bad("report has no scenario name")
	}
	if len(rep.Runs) == 0 {
		return bad("report has no runs")
	}
	for i, r := range rep.Runs {
		m := r.Metrics
		if r.Error == "" && (m.MakespanMS < 0 || math.IsNaN(m.MakespanMS) || math.IsInf(m.MakespanMS, 0)) {
			return bad("run %d has out-of-domain makespan %v", i, m.MakespanMS)
		}
	}
	return nil
}
