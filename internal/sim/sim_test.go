package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := &engine{}
	var got []int
	e.at(20*time.Millisecond, func() { got = append(got, 2) })
	e.at(10*time.Millisecond, func() { got = append(got, 1) })
	// Ties break on insertion order.
	e.at(30*time.Millisecond, func() { got = append(got, 3) })
	e.at(30*time.Millisecond, func() { got = append(got, 4) })
	tm := e.at(15*time.Millisecond, func() { got = append(got, 99) })
	tm.stop()
	if err := e.runUntil(func() bool { return len(got) == 4 }); err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("execution order %v", got)
		}
	}
	if e.now != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", e.now)
	}
}

func TestEngineStall(t *testing.T) {
	e := &engine{}
	if err := e.runUntil(func() bool { return false }); err != errStalled {
		t.Fatalf("err = %v, want errStalled", err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds collided on the first draw")
	}
	if Mix64(7, 1) == Mix64(7, 2) {
		t.Fatal("substreams collided")
	}
}

func TestDistSample(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := (Dist{Kind: "uniform", Min: 2, Max: 5}).Sample(r); v < 2 || v > 5 {
			t.Fatalf("uniform draw %v out of range", v)
		}
		if v := (Dist{Kind: "pareto", Scale: 3, Alpha: 2}).Sample(r); v < 3 {
			t.Fatalf("pareto draw %v below scale", v)
		}
		if v := (Dist{Kind: "lognormal", Mu: 0, Sigma: 1}).Sample(r); v <= 0 || math.IsInf(v, 0) {
			t.Fatalf("lognormal draw %v out of domain", v)
		}
	}
	if v := (Dist{Value: 7}).Sample(r); v != 7 {
		t.Fatalf("constant draw %v, want 7", v)
	}
	if err := (Dist{Kind: "nope"}).Validate(); err == nil {
		t.Fatal("unknown kind validated")
	}
	if err := (Dist{Kind: "pareto", Scale: 0, Alpha: 1}).Validate(); err == nil {
		t.Fatal("degenerate pareto validated")
	}
}

// baseScenario is a small healthy fleet used across behavior tests.
func baseScenario() Scenario {
	return Scenario{
		SchemaVersion: 1,
		Name:          "test",
		Seed:          7,
		Workers:       8,
		Partitions:    8,
		Rows:          8000,
		BytesPerRow:   64,
		BandwidthMBps: 100,
		Levels:        []int{20, 40, 20},
		Topology:      Topology{Kind: "star", LocalMS: Dist{Kind: "uniform", Min: 0.1, Max: 0.5}},
		Service: Service{
			PerPairNS: Dist{Kind: "lognormal", Mu: 5, Sigma: 0.3},
		},
		// HedgeMult pinned to 0 (not the tuned dist default): behavior tests
		// that want hedging enable it explicitly, so the healthy-fleet test
		// stays quiet even as the tuned default gets more aggressive.
		Grid: Grid{CallTimeoutMS: []int{2000}, HedgeMult: []float64{0}, HeartbeatMS: []int{100}, Strikes: []int{2}},
	}
}

func TestRunHealthyFleet(t *testing.T) {
	sc := baseScenario()
	res := Run(sc, sc.Grid.Points()[0])
	if res.Err != "" {
		t.Fatalf("healthy run failed: %s", res.Err)
	}
	if res.Metrics.MakespanMS <= 0 {
		t.Fatalf("makespan = %v", res.Metrics.MakespanMS)
	}
	if len(res.Decisions) != 0 {
		t.Fatalf("healthy fleet made recovery decisions: %v", res.Decisions)
	}
	if res.Metrics.BytesShipped != 8000*64 {
		t.Fatalf("bytes shipped = %d, want %d", res.Metrics.BytesShipped, 8000*64)
	}
	if res.Metrics.LevelP50MS <= 0 || res.Metrics.LevelP99MS < res.Metrics.LevelP50MS {
		t.Fatalf("level percentiles p50=%v p99=%v", res.Metrics.LevelP50MS, res.Metrics.LevelP99MS)
	}
}

func TestRunDeterminism(t *testing.T) {
	sc := baseScenario()
	sc.Service.StragglerProb = 0.2
	sc.Service.StragglerMult = Dist{Kind: "pareto", Scale: 2, Alpha: 2}
	sc.Faults = &FaultPlan{Crashes: []CrashSpec{{Worker: 3, AtMS: 5, DownMS: 200}}}
	sc.Grid.HedgeMult = []float64{2.0}
	a := Run(sc, sc.Grid.Points()[0])
	b := Run(sc, sc.Grid.Points()[0])
	if a.Err != b.Err || a.Metrics != b.Metrics {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("decision streams diverged: %d vs %d", len(a.Decisions), len(b.Decisions))
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, a.Decisions[i], b.Decisions[i])
		}
	}
}

func TestSweepByteIdentical(t *testing.T) {
	sc := baseScenario()
	sc.Grid.HedgeMult = []float64{0, 2.0}
	var buf1, buf2 bytes.Buffer
	if err := EncodeReport(&buf1, Sweep(sc)); err != nil {
		t.Fatal(err)
	}
	if err := EncodeReport(&buf2, Sweep(sc)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("same scenario and seed produced different report bytes")
	}
	// A different seed still yields a schema-valid report (and a different
	// timeline).
	sc.Seed = 8
	var buf3 bytes.Buffer
	if err := EncodeReport(&buf3, Sweep(sc)); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReport(&buf3); err != nil {
		t.Fatalf("reseeded report failed validation: %v", err)
	}
	if bytes.Equal(buf1.Bytes(), buf3.Bytes()) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestHedgingRescuesStragglers(t *testing.T) {
	sc := baseScenario()
	// One pathological straggler: worker 2 computes 50× slower.
	sc.Service.StragglerProb = 0
	sc.Faults = &FaultPlan{Script: []ScriptRule{
		{Worker: 2, Op: "eval", Call: 0, Kind: "delay", DelayMS: 400},
		{Worker: 2, Op: "eval", Call: 1, Kind: "delay", DelayMS: 400},
		{Worker: 2, Op: "eval", Call: 2, Kind: "delay", DelayMS: 400},
	}}
	off := Run(sc, Knobs{CallTimeoutMS: 5000, HeartbeatMS: 0})
	on := Run(sc, Knobs{CallTimeoutMS: 5000, HeartbeatMS: 0, HedgeAfterMS: 30})
	if off.Err != "" || on.Err != "" {
		t.Fatalf("runs failed: %q %q", off.Err, on.Err)
	}
	if on.Metrics.Hedges == 0 || on.Metrics.HedgeWins == 0 {
		t.Fatalf("hedging never fired: %+v", on.Metrics)
	}
	if on.Metrics.MakespanMS >= off.Metrics.MakespanMS {
		t.Fatalf("hedging did not help: on=%v off=%v", on.Metrics.MakespanMS, off.Metrics.MakespanMS)
	}
	if on.Metrics.WastedHedgeMS <= 0 {
		t.Fatal("hedge wins recorded but no wasted speculative work")
	}
}

func TestCrashEvictionAndReship(t *testing.T) {
	sc := baseScenario()
	// Worker 0's evaluation pins the level open for ~400ms; worker 1 crashes
	// at 50ms, after its own partition finished — so it dies *idle*, and only
	// the heartbeat can notice. Two 20ms strikes later it is evicted and its
	// partition proactively re-shipped, before any eval trips over the corpse.
	sc.Levels = []int{50, 50}
	sc.Faults = &FaultPlan{
		Crashes: []CrashSpec{{Worker: 1, AtMS: 50}},
		Script:  []ScriptRule{{Worker: 0, Op: "eval", Call: 0, Kind: "delay", DelayMS: 400}},
	}
	res := Run(sc, Knobs{CallTimeoutMS: 1000, HeartbeatMS: 20, Strikes: 2})
	if res.Err != "" {
		t.Fatalf("run failed: %s", res.Err)
	}
	if res.Metrics.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", res.Metrics.Evictions)
	}
	if res.Metrics.Reships == 0 && res.Metrics.Failovers == 0 {
		t.Fatalf("crashed worker's partition never moved: %+v", res.Metrics)
	}
	if res.Metrics.BytesReshipped == 0 {
		t.Fatal("no recovery bytes accounted")
	}
}

func TestStallDetection(t *testing.T) {
	sc := baseScenario()
	sc.Faults = &FaultPlan{Script: []ScriptRule{{Worker: 0, Op: "eval", Call: 0, Kind: "hang"}}}
	res := Run(sc, Knobs{CallTimeoutMS: 0, HeartbeatMS: 0})
	if res.Err == "" || !strings.Contains(res.Err, "stalled") {
		t.Fatalf("hung RPC without timeout did not stall: %q", res.Err)
	}
}

func TestMembershipChurn(t *testing.T) {
	sc := baseScenario()
	sc.Levels = []int{30, 30, 30, 30, 30, 30}
	sc.Membership = &MembershipPlan{LeaseMS: 20, Strikes: 2}
	sc.Faults = &FaultPlan{Crashes: []CrashSpec{{Worker: 2, AtMS: 40, DownMS: 120}}}
	res := Run(sc, Knobs{CallTimeoutMS: 500, HeartbeatMS: 0})
	if res.Err != "" {
		t.Fatalf("elastic run failed: %s", res.Err)
	}
	m := res.Metrics
	if m.Joins < sc.Workers {
		t.Fatalf("joins = %d, want at least %d", m.Joins, sc.Workers)
	}
	if m.Expiries == 0 {
		t.Fatalf("crashed worker's lease never expired: %+v", m)
	}
	if m.Rebalances == 0 && m.WarmAttaches == 0 {
		t.Fatalf("membership change moved nothing: %+v", m)
	}
}

func TestGridPoints(t *testing.T) {
	g := Grid{HedgeMult: []float64{0, 1.5, 2}, HeartbeatMS: []int{100, 200}}
	pts := g.Points()
	if len(pts) != 6 {
		t.Fatalf("grid size = %d, want 6", len(pts))
	}
	// Omitted axes pin the runtime defaults.
	if pts[0].CallTimeoutMS != 10000 || pts[0].Strikes != 2 {
		t.Fatalf("defaults not pinned: %+v", pts[0])
	}
}

func TestScaleThousandWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := baseScenario()
	sc.Workers = 1000
	sc.Partitions = 1000
	sc.Rows = 100000
	sc.Levels = []int{50}
	sc.Topology = Topology{
		Kind: "two-tier", Racks: 25,
		LocalMS: Dist{Kind: "uniform", Min: 0.05, Max: 0.2},
		CrossMS: Dist{Kind: "uniform", Min: 0.3, Max: 0.8},
	}
	sc.Service.StragglerProb = 0.02
	sc.Service.StragglerMult = Dist{Kind: "pareto", Scale: 3, Alpha: 1.5}
	res := Run(sc, Knobs{CallTimeoutMS: 10000, HeartbeatMS: 500, Strikes: 2, HedgeMult: 2})
	if res.Err != "" {
		t.Fatalf("1000-worker run failed: %s", res.Err)
	}
	if res.Metrics.Hedges == 0 {
		t.Fatalf("pareto stragglers at fleet scale never triggered a hedge: %+v", res.Metrics)
	}
}
